package chordal

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestSnapshotFacade drives the persistence surface end to end through the
// public facade: compile → save → decode → serve, plus the mmap path and
// the typed decode errors.
func TestSnapshotFacade(t *testing.T) {
	ctx := context.Background()
	b := NewBipartite()
	reader := b.AddV1("reader")
	book := b.AddV1("book")
	author := b.AddV1("author")
	loan := b.AddV2("loan")
	wrote := b.AddV2("wrote")
	b.AddEdge(reader, loan)
	b.AddEdge(book, loan)
	b.AddEdge(book, wrote)
	b.AddEdge(author, wrote)

	svc := Open(b)
	var buf bytes.Buffer
	if err := svc.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	snap, err := DecodeSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(EncodeSnapshot(snap.Frozen, snap.Class), buf.Bytes()) {
		t.Fatal("EncodeSnapshot is not the inverse of DecodeSnapshot")
	}
	loaded := OpenSnapshot(snap)
	want, err := svc.Connect(ctx, []int{reader, author})
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Connect(ctx, []int{reader, author})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("snapshot-served answer diverges:\n%+v\n%+v", want, got)
	}
	if ConnectorFromSnapshot(snap).Class() != svc.Connector().Class() {
		t.Fatal("class diverges through the facade")
	}

	path := filepath.Join(t.TempDir(), "library.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMappedSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	mgot, err := OpenSnapshot(m.Snapshot).Connect(ctx, []int{reader, author})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, mgot) {
		t.Fatal("mmap-served answer diverges")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := DecodeSnapshot([]byte("junk")); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("junk: %v", err)
	}
	corrupt := append([]byte(nil), buf.Bytes()...)
	corrupt[len(corrupt)-1] ^= 1
	if _, err := DecodeSnapshot(corrupt); !errors.Is(err, ErrSnapshotChecksum) {
		t.Fatalf("corrupt: %v", err)
	}
	if _, err := DecodeSnapshot(corrupt[:40]); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("truncated: %v", err)
	}
}

// TestRegistrySnapshotFacade exercises Registry.SaveSnapshot/LoadSnapshot
// through the facade aliases.
func TestRegistrySnapshotFacade(t *testing.T) {
	ctx := context.Background()
	b := NewBipartite()
	x := b.AddV1("x")
	y := b.AddV1("y")
	r := b.AddV2("r")
	b.AddEdge(x, r)
	b.AddEdge(y, r)

	reg := NewRegistry()
	reg.Set("tiny", b)
	var buf bytes.Buffer
	if err := reg.SaveSnapshot("tiny", &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.LoadSnapshot("tiny2", buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	c1, err := reg.Connect(ctx, "tiny", []int{x, y})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := reg.Connect(ctx, "tiny2", []int{x, y})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("registry snapshot answers diverge")
	}
	if reg.Source("tiny2") != "snapshot-v1" {
		t.Fatalf("Source = %q", reg.Source("tiny2"))
	}
}
