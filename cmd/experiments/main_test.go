package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	failed, err := run([]string{"-only", "E-FIG5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Errorf("E-FIG5 failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "E-FIG5") {
		t.Errorf("output missing table:\n%s", out.String())
	}
}

func TestRunMarkdown(t *testing.T) {
	var out bytes.Buffer
	failed, err := run([]string{"-markdown", "-only", "E-FIG5"}, &out)
	if err != nil || failed != 0 {
		t.Fatalf("failed=%d err=%v", failed, err)
	}
	if !strings.Contains(out.String(), "### E-FIG5") {
		t.Errorf("markdown heading missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "|---|") {
		t.Errorf("markdown table missing:\n%s", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"-nope"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
