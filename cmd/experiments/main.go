// Command experiments regenerates every experiment table of the
// reproduction (the E-* index of DESIGN.md §4) and prints them as plain
// text, or as the markdown body of EXPERIMENTS.md with -markdown.
//
// Usage:
//
//	experiments [-markdown] [-only E-T5]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	failed, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) FAILED\n", failed)
		os.Exit(1)
	}
}

// run implements the tool; factored out of main for tests. It returns the
// number of failed experiments.
func run(args []string, stdout io.Writer) (failed int, err error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	markdown := fs.Bool("markdown", false, "emit markdown (EXPERIMENTS.md body)")
	only := fs.String("only", "", "run a single experiment by id")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	for _, e := range experiments.All() {
		if *only != "" && e.ID != *only {
			continue
		}
		tb := e.Run(context.Background())
		if *markdown {
			fmt.Fprint(stdout, tb.Markdown())
		} else {
			fmt.Fprintln(stdout, tb.String())
		}
		if !tb.Pass() {
			failed++
		}
	}
	return failed, nil
}
