package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/snapshot"
)

// TestRunCompile: -compile persists a snapshot that decodes and carries
// the scheme.
func TestRunCompile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fig3c.snap")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-compile", out}, strings.NewReader(fig3cInput), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "compiled 6 nodes, 7 arcs") {
		t.Errorf("unexpected -compile output:\n%s", stdout.String())
	}
	snap, err := snapshot.ReadFile(out)
	if err != nil {
		t.Fatalf("compiled file does not decode: %v", err)
	}
	if snap.Frozen.N() != 6 || snap.Frozen.M() != 7 {
		t.Fatalf("snapshot has %d nodes, %d arcs", snap.Frozen.N(), snap.Frozen.M())
	}
	if !snap.Class.Chordal61 || snap.Class.Chordal62 {
		t.Fatalf("Fig 3c must be (6,1)- but not (6,2)-chordal: %+v", snap.Class)
	}
}

// TestRunCompileWarm: -compile -warm answers the query file and persists
// the settled answers as the snapshot's warmup section; a registry booted
// from the snapshot answers those queries out of the restored cache,
// identically to the live-compiled scheme.
func TestRunCompileWarm(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "fig3c.txt")
	if err := os.WriteFile(txt, []byte(fig3cInput), 0o644); err != nil {
		t.Fatal(err)
	}
	warmQ := filepath.Join(dir, "warm.txt")
	if err := os.WriteFile(warmQ, []byte("A C\nB 3\n# comment\n1 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "fig3c.snap")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-compile", out, "-warm", warmQ, txt}, nil, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "warmed 3 cache entries") {
		t.Errorf("unexpected -compile -warm output:\n%s", stdout.String())
	}
	snap, err := snapshot.ReadFile(out)
	if err != nil {
		t.Fatalf("warm snapshot does not decode: %v", err)
	}
	if len(snap.Warmup) != 3 {
		t.Fatalf("snapshot carries %d warm entries, want 3", len(snap.Warmup))
	}

	// The warmed snapshot answers exactly like a live compile.
	queries := filepath.Join(dir, "q.txt")
	if err := os.WriteFile(queries, []byte("live: A C\nwarm: A C\nlive: B 3\nwarm: B 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	if err := run([]string{"-registry", "live=" + txt + ",warm=" + out, "-batch", queries},
		nil, &stdout, &stderr); err != nil {
		t.Fatalf("registry batch over warm snapshot failed: %v\nstderr:\n%s", err, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	strip := func(s string) string {
		s = strings.Replace(s, "[live: ", "[", 1)
		return strings.Replace(s, "[warm: ", "[", 1)
	}
	for i := 0; i+1 < len(lines); i += 2 {
		a := strip(strings.SplitN(lines[i], " ", 3)[2])
		b := strip(strings.SplitN(lines[i+1], " ", 3)[2])
		if a != b {
			t.Errorf("live and warm answers diverge:\n  %s\n  %s", lines[i], lines[i+1])
		}
	}
}

// TestRunCompileWarmErrors: a bad warm query aborts the compile (no
// partial warmup is persisted), and -warm without -compile is rejected.
func TestRunCompileWarmErrors(t *testing.T) {
	dir := t.TempDir()
	warmQ := filepath.Join(dir, "warm.txt")
	if err := os.WriteFile(warmQ, []byte("A NOPE\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "g.snap")
	var discard bytes.Buffer
	err := run([]string{"-compile", out, "-warm", warmQ}, strings.NewReader(fig3cInput), &discard, &discard)
	if err == nil || !strings.Contains(err.Error(), "NOPE") {
		t.Fatalf("bad warm label error = %v", err)
	}
	if _, statErr := os.Stat(out); statErr == nil {
		t.Fatalf("failed warm compile still wrote %s", out)
	}
	err = run([]string{"-warm", warmQ}, strings.NewReader(fig3cInput), &discard, &discard)
	if err == nil || !strings.Contains(err.Error(), "-compile") {
		t.Fatalf("-warm without -compile error = %v", err)
	}
}

// TestRunCompileVerbose: -v adds timing to stderr, stdout stays stable.
func TestRunCompileVerbose(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.snap")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-v", "-compile", out}, strings.NewReader(fig3cInput), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "compiled in") {
		t.Errorf("-v produced no timing line:\n%s", stderr.String())
	}
}

// TestRunRegistryFromSnapshot: a -registry catalog may mix text schemes
// and snapshots; answers must be identical either way, and -v must report
// per-scheme provenance.
func TestRunRegistryFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "fig3c.txt")
	if err := os.WriteFile(txt, []byte(fig3cInput), 0o644); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "fig3c.snap")
	var discard bytes.Buffer
	if err := run([]string{"-compile", snap, txt}, nil, &discard, &discard); err != nil {
		t.Fatal(err)
	}
	queries := filepath.Join(dir, "q.txt")
	if err := os.WriteFile(queries, []byte("live: A C\nsnap: A C\nlive: B 3\nsnap: B 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	err := run([]string{"-registry", "live=" + txt + ",snap=" + snap, "-batch", queries, "-v"},
		nil, &stdout, &stderr)
	if err != nil {
		t.Fatalf("registry batch failed: %v\nstderr:\n%s", err, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	// Query i and i+1 are the same terminals against live vs snap; strip
	// the scheme name and the answers must match exactly.
	strip := func(s string) string {
		s = strings.Replace(s, "[live: ", "[", 1)
		return strings.Replace(s, "[snap: ", "[", 1)
	}
	for i := 0; i+1 < len(lines)-1; i += 2 {
		a := strip(strings.SplitN(lines[i], " ", 3)[2])   // drop "query N"
		b := strip(strings.SplitN(lines[i+1], " ", 3)[2]) // drop "query N"
		if a != b {
			t.Errorf("live and snapshot answers diverge:\n  %s\n  %s", lines[i], lines[i+1])
		}
	}
	verr := stderr.String()
	if !strings.Contains(verr, `scheme "snap": snapshot-v1 from`) {
		t.Errorf("-v missing snapshot provenance:\n%s", verr)
	}
	if !strings.Contains(verr, `scheme "live": compiled from`) {
		t.Errorf("-v missing compile provenance:\n%s", verr)
	}
}

// TestRunRegistryCorruptSnapshot: a damaged catalog file fails the boot
// with a scheme-attributed typed error.
func TestRunRegistryCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(txt, []byte(fig3cInput), 0o644); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "g.snap")
	var discard bytes.Buffer
	if err := run([]string{"-compile", snapPath, txt}, nil, &discard, &discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-registry", "bad=" + snapPath}, nil, &discard, &discard)
	if err == nil || !strings.Contains(err.Error(), `scheme "bad"`) || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt snapshot boot error = %v", err)
	}
}

// TestRegistrySpecErrors: duplicate names are now rejected up front (the
// catalog loads concurrently, so last-wins would be a race).
func TestRegistrySpecErrors(t *testing.T) {
	var discard bytes.Buffer
	err := run([]string{"-registry", "a=x.txt,a=y.txt"}, nil, &discard, &discard)
	if err == nil || !strings.Contains(err.Error(), `named twice`) {
		t.Fatalf("duplicate registry name error = %v", err)
	}
}

// TestCompileFlagConflicts: combinations that would silently ignore the
// user's intent are errors.
func TestCompileFlagConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"-compile", "x.snap", "-serve", ":0"},
		{"-compile", "x.snap", "-batch", "q.txt"},
		{"-compile", "x.snap", "-registry", "a=b"},
		{"-compile", "x.snap", "-json"},
		{"-compile", "x.snap", "-max-terminals", "3"},
		{"-compile", "x.snap", "-workers", "2"},
		{"-compile", "x.snap", "-timeout", "5s"},
		{"-compile"},
	} {
		var discard bytes.Buffer
		if err := run(args, strings.NewReader(fig3cInput), &discard, &discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
