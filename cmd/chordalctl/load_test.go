package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestRunLoadSelf runs a very short self-mode load and checks the printed
// report plus the full BENCH_*.json schema: version, tag, cores, merged
// benchmarks and both serving phases.
func TestRunLoadSelf(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_t.json")
	merge := filepath.Join(dir, "micro.json")
	if err := os.WriteFile(merge, []byte(`{"benchtime":"0.1s","benchmarks":[{"name":"BenchmarkX","ns_per_op":42}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	args := []string{
		"-load", "self", "-load-duration", "200ms", "-load-concurrency", "2",
		"-seed", "7", "-bench-out", out, "-bench-tag", "t", "-bench-merge", merge,
	}
	if err := run(args, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	for _, want := range []string{"load: cold", "load: warm", "(0 errors)", "schema v2"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("bench file does not parse: %v", err)
	}
	if f.SchemaVersion != 2 || f.Tag != "t" {
		t.Fatalf("header = schema %d tag %q, want 2/t", f.SchemaVersion, f.Tag)
	}
	if f.Cores.Gomaxprocs < 1 || f.Cores.Numcpu < 1 {
		t.Fatalf("cores not recorded: %+v", f.Cores)
	}
	if !bytes.Contains(f.Benchmarks, []byte("BenchmarkX")) {
		t.Fatalf("merged benchmarks missing: %s", f.Benchmarks)
	}
	if f.Serving == nil || f.Serving.Target != "self" {
		t.Fatalf("serving section missing or wrong target: %+v", f.Serving)
	}
	for phase, r := range map[string]phaseReport{"cold": f.Serving.Cold, "warm": f.Serving.Warm} {
		if r.Requests == 0 || r.Errors != 0 || r.QPS <= 0 {
			t.Errorf("%s phase implausible: %+v", phase, r)
		}
		if r.P50ms <= 0 || r.P99ms < r.P50ms {
			t.Errorf("%s quantiles implausible: p50 %.3f p99 %.3f", phase, r.P50ms, r.P99ms)
		}
	}
	if f.Serving.Warm.CacheHitRate <= 0 {
		t.Errorf("warm hit rate = %g, want > 0 (zipf reuse)", f.Serving.Warm.CacheHitRate)
	}

	// The trajectory is append-only: a second run must refuse to clobber.
	if err := run(args, strings.NewReader(""), &stdout, &stderr); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Fatalf("overwrite err = %v, want refusal", err)
	}
}

// TestRunLoadTraceRoundTrip records the warm phase to a trace file, then
// replays it and checks replay issues exactly the recorded request count.
func TestRunLoadTraceRoundTrip(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "warm.trace")
	var stdout, stderr bytes.Buffer
	rec := []string{"-load", "self", "-load-duration", "150ms", "-load-concurrency", "2",
		"-seed", "7", "-trace-record", trace}
	if err := run(rec, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("record: %v\nstderr: %s", err, stderr.String())
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var lines int
	for _, l := range strings.Split(string(raw), "\n") {
		if l != "" && !strings.HasPrefix(l, "#") {
			lines++
		}
	}
	if lines == 0 {
		t.Fatal("trace recorded no queries")
	}

	stdout.Reset()
	replay := []string{"-load", "self", "-load-concurrency", "2", "-seed", "7", "-trace", trace}
	if err := run(replay, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("replay: %v\nstderr: %s", err, stderr.String())
	}
	// Replay issues each recorded query exactly once.
	wantWarm := "warm " + strconv.Itoa(lines) + " requests (0 errors)"
	if !strings.Contains(stdout.String(), wantWarm) {
		t.Errorf("replay stdout missing %q:\n%s", wantWarm, stdout.String())
	}
}

// TestLoadFlagConflicts exercises the flag-validation surface of -load.
func TestLoadFlagConflicts(t *testing.T) {
	var out, errOut bytes.Buffer
	for _, args := range [][]string{
		{"-load", "self", "-serve", ":0"},                              // two run modes
		{"-load", "self", "-batch", "q.txt"},                           // load is not a batch
		{"-load", "ftp://x"},                                           // target must be self or http(s)
		{"-load", "self", "-load-duration", "0s"},                      // duration must be positive
		{"-load", "self", "-load-concurrency", "0"},                    // at least one worker
		{"-load", "self", "-zipf-s", "1.0"},                            // zipf needs s > 1
		{"-load", "self", "-bench-out", "x.json"},                      // bench-out needs a tag
		{"-load", "self", "-trace", "a", "-trace-record", "b"},         // replay xor record
		{"-load-duration", "1s"},                                       // load flags need -load
		{"-load", "self", "-bench-merge", "x.json", "-bench-tag", "t"}, // merge needs bench-out
	} {
		if err := run(args, strings.NewReader(""), &out, &errOut); err == nil {
			t.Errorf("args %v accepted, want a flag-conflict error", args)
		}
	}
}
