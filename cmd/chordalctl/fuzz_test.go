package main

import (
	"bufio"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
)

// FuzzParseBatch throws arbitrary query files at the batch-line parser in
// both plain and registry (scheme-prefixed) modes. The parser must never
// panic, must only fail fatally on scanner errors (over-long lines), and
// every produced query must be internally consistent: a positive line
// number, and either a recorded per-query error or a resolved service
// with in-range terminal ids.
func FuzzParseBatch(f *testing.F) {
	b := bipartite.New()
	a := b.AddV1("reader")
	bk := b.AddV1("book")
	r1 := b.AddV2("borrows")
	b.AddEdge(a, r1)
	b.AddEdge(bk, r1)
	svc := core.Open(b)
	n := b.N()

	resolve := func(name string) (*core.Service, error) {
		switch name {
		case "missing":
			return nil, fmt.Errorf("%w: %q", core.ErrUnknownScheme, name)
		case "":
			return nil, fmt.Errorf("registry mode needs a \"scheme:\" prefix on every query line")
		}
		return svc, nil
	}

	seeds := []struct {
		data     string
		prefixed bool
	}{
		{"reader book\n", false},
		{"lib: reader book\nlib: book\n", true},
		{"# comment only\n\n  \n", false},
		{"missing: reader\n", true},
		{": reader\n", true},
		{"lib: reader # trailing comment\n", true},
		{"unknown-label reader\n", false},
		{"a:b:c: reader\n", true},
		{"reader book", false},     // no trailing newline
		{"lib:\n", true},           // scheme, no labels
		{"\x00\xff bork\n", false}, // binary junk labels
		{strings.Repeat("reader book\n", 50), false},
	}
	for _, s := range seeds {
		f.Add(s.data, s.prefixed)
	}

	f.Fuzz(func(t *testing.T, data string, prefixed bool) {
		resolver := resolve
		if !prefixed {
			resolver = func(string) (*core.Service, error) { return svc, nil }
		}
		queries, err := parseQueries(strings.NewReader(data), prefixed, resolver)
		if err != nil {
			// The only fatal outcome the parser may produce is a scanner
			// failure (a line exceeding the bufio limit).
			if !errors.Is(err, bufio.ErrTooLong) {
				t.Fatalf("unexpected fatal error: %v", err)
			}
			return
		}
		last := 0
		for i, q := range queries {
			if q.lineNo <= last {
				t.Fatalf("query %d: line numbers not increasing: %d after %d", i, q.lineNo, last)
			}
			last = q.lineNo
			if strings.ContainsAny(q.display, "\n\r") {
				t.Fatalf("query %d: display leaked line breaks: %q", i, q.display)
			}
			if q.err != nil {
				continue
			}
			if q.svc == nil {
				t.Fatalf("query %d: no error but no service", i)
			}
			for _, id := range q.terms {
				if id < 0 || id >= n {
					t.Fatalf("query %d: resolved terminal %d out of range [0,%d)", i, id, n)
				}
			}
		}
	})
}
