package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/httpd"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// loadConfig carries the -load flags into runLoad.
type loadConfig struct {
	target      string        // "self" (boot an in-process server) or a base URL
	duration    time.Duration // warm-phase length (ignored when replaying a trace)
	concurrency int           // client workers
	zipfS       float64       // zipf exponent for warm-phase popularity (> 1)
	seed        int64         // workload RNG seed
	trace       string        // replay queries from this trace file
	traceRecord string        // record the warm-phase query stream here
	benchOut    string        // write the BENCH_*.json report here ("" = stdout summary only)
	benchTag    string        // tag field of the report (required with benchOut)
	benchMerge  string        // fold this go-test benchmark JSON into the report
}

// poolQuery is one prepared query of the workload: its scheme, terminals
// and the request body sent verbatim on every issue.
type poolQuery struct {
	scheme string
	terms  []int
	body   string
}

func makePoolQuery(scheme string, terms []int) poolQuery {
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = strconv.Itoa(t)
	}
	return poolQuery{
		scheme: scheme,
		terms:  terms,
		body: fmt.Sprintf(`{"scheme":%q,"terminals":[%s]}`,
			scheme, strings.Join(parts, ",")),
	}
}

// phaseReport is the measured outcome of one load phase on the wire
// schema (BENCH_*.json, schema_version 2). Latencies are client-observed,
// milliseconds.
type phaseReport struct {
	Requests     int     `json:"requests"`
	Errors       int     `json:"errors"`
	Seconds      float64 `json:"seconds"`
	QPS          float64 `json:"qps"`
	P50ms        float64 `json:"p50_ms"`
	P95ms        float64 `json:"p95_ms"`
	P99ms        float64 `json:"p99_ms"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// AllocsPerRequest is the whole-process allocation count per request
	// over the phase — server and client side together, so it is only
	// measured (and only meaningful) in self mode.
	AllocsPerRequest float64 `json:"allocs_per_request,omitempty"`
	// TracedRequests counts the requests this phase marked with a sampled
	// traceparent and found back on the target's /v1/traces ring; Phases
	// aggregates their server-side span durations by phase name. Both are
	// absent against servers that do not trace.
	TracedRequests int                       `json:"traced_requests,omitempty"`
	Phases         map[string]phaseQuantiles `json:"phases,omitempty"`
}

// phaseQuantiles summarizes one server-side phase (span name) across the
// phase's traced requests, milliseconds.
type phaseQuantiles struct {
	Count int     `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
}

// servingReport is the "serving" block of the report: the cold pass
// (every pool query once, all misses) and the warm pass (zipfian repeats
// or a trace replay).
type servingReport struct {
	Target      string      `json:"target"` // "self" or the URL
	Schemes     []string    `json:"schemes"`
	PoolQueries int         `json:"pool_queries"`
	Concurrency int         `json:"concurrency"`
	ZipfS       float64     `json:"zipf_s"`
	Seed        int64       `json:"seed"`
	Trace       string      `json:"trace,omitempty"`
	Cold        phaseReport `json:"cold"`
	Warm        phaseReport `json:"warm"`
}

// benchFile is the full BENCH_*.json schema (version 2): identification
// header, the host's core budget (so sharding numbers from a 1-core
// runner are never mistaken for contended measurements), the go-test
// benchmark rows merged via -bench-merge, and the serving measurements.
type benchFile struct {
	SchemaVersion int    `json:"schema_version"`
	Tag           string `json:"tag"`
	Benchtime     string `json:"benchtime,omitempty"`
	Cores         struct {
		Gomaxprocs int `json:"gomaxprocs"`
		Numcpu     int `json:"numcpu"`
	} `json:"cores"`
	Benchmarks json.RawMessage `json:"benchmarks,omitempty"`
	Serving    *servingReport  `json:"serving"`
}

// runLoad drives the load harness: build (or discover) the scheme mix and
// its query pool, run the cold pass then the warm pass against the target
// server, and report cold/warm QPS and latency quantiles — optionally as
// a schema-versioned BENCH_*.json file.
func runLoad(ctx context.Context, cfg loadConfig, stdout, stderr io.Writer, schemeOpts []core.Option) error {
	base := cfg.target
	if cfg.target == "self" {
		reg, err := loadSchemeMix(cfg.seed, schemeOpts)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srvCtx, stopSrv := context.WithCancel(ctx)
		srvDone := make(chan error, 1)
		// Unlimited in-flight: the harness measures solver and cache
		// throughput, and shed 429s would poison the latency sample. The
		// tracer never head-samples on its own (SampleProb 0) — only the
		// requests the driver marks with a sampled traceparent are
		// retained, over a ring deep enough to survive a fast warm phase.
		tracer := trace.New(trace.Config{RingSize: 4096, Seed: uint64(cfg.seed) + 1})
		h := httpd.New(reg, httpd.WithMaxInFlight(0), httpd.WithSchemeOptions(schemeOpts...),
			httpd.WithTracer(tracer))
		go func() { srvDone <- httpd.Serve(srvCtx, ln, h, 0) }()
		defer func() {
			stopSrv()
			<-srvDone
		}()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(stderr, "chordalctl: load target self (%s), schemes: %s\n",
			base, strings.Join(reg.Names(), " "))
	}
	base = strings.TrimSuffix(base, "/")

	schemes, err := fetchSchemeSizes(ctx, base)
	if err != nil {
		return fmt.Errorf("-load: listing schemes on %s: %w", base, err)
	}

	var pool []poolQuery
	if cfg.trace != "" {
		pool, err = readTrace(cfg.trace)
	} else {
		pool = buildQueryPool(cfg.seed, schemes)
	}
	if err != nil {
		return err
	}
	if len(pool) == 0 {
		return fmt.Errorf("-load: empty query pool")
	}

	d := &loadDriver{
		base:   base,
		client: &http.Client{Timeout: 30 * time.Second},
		seed:   cfg.seed,
	}

	// Cold pass: every pool query exactly once, shuffled across schemes,
	// so each one is a compulsory cache miss (on a fresh server).
	shuffled := append([]poolQuery(nil), pool...)
	rand.New(rand.NewSource(cfg.seed^0x5eed)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	cold, err := d.runPhase(ctx, cfg, "cold", func(issue func(poolQuery)) {
		var next atomic.Int64
		runWorkers(cfg.concurrency, func(int) {
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shuffled) || ctx.Err() != nil {
					return
				}
				issue(shuffled[i])
			}
		})
	})
	if err != nil {
		return err
	}

	// Warm pass: zipfian repeats over the pool for the configured
	// duration — or, when replaying, the recorded stream exactly once.
	var record *traceRecorder
	if cfg.traceRecord != "" {
		record = &traceRecorder{}
	}
	warm, err := d.runPhase(ctx, cfg, "warm", func(issue func(poolQuery)) {
		if cfg.trace != "" {
			var next atomic.Int64
			runWorkers(cfg.concurrency, func(int) {
				for {
					i := int(next.Add(1)) - 1
					if i >= len(pool) || ctx.Err() != nil {
						return
					}
					issue(pool[i])
				}
			})
			return
		}
		deadline := time.Now().Add(cfg.duration)
		runWorkers(cfg.concurrency, func(w int) {
			r := rand.New(rand.NewSource(cfg.seed + int64(w)*7919))
			zipf := rand.NewZipf(r, cfg.zipfS, 1, uint64(len(pool)-1))
			for time.Now().Before(deadline) && ctx.Err() == nil {
				q := pool[zipf.Uint64()]
				record.add(q)
				issue(q)
			}
		})
	})
	if err != nil {
		return err
	}
	if err := record.write(cfg.traceRecord); err != nil {
		return err
	}

	report := &servingReport{
		Target:      cfg.target,
		Schemes:     schemeNames(schemes),
		PoolQueries: len(pool),
		Concurrency: cfg.concurrency,
		ZipfS:       cfg.zipfS,
		Seed:        cfg.seed,
		Trace:       cfg.trace,
		Cold:        cold,
		Warm:        warm,
	}
	fmt.Fprintf(stdout, "load: cold %d requests (%d errors) %.0f qps, p50 %.2fms p99 %.2fms\n",
		cold.Requests, cold.Errors, cold.QPS, cold.P50ms, cold.P99ms)
	fmt.Fprintf(stdout, "load: warm %d requests (%d errors) %.0f qps, p50 %.2fms p99 %.2fms, hit rate %.2f\n",
		warm.Requests, warm.Errors, warm.QPS, warm.P50ms, warm.P99ms, warm.CacheHitRate)
	if cfg.benchOut == "" {
		return nil
	}
	return writeBenchFile(cfg, report, stdout)
}

// loadSchemeMix builds the self-mode multi-tenant catalog: one scheme per
// band of the chordality taxonomy, including the adversarial grid with no
// polynomial guarantee, all from the deterministic generators so the same
// seed reproduces the same workload bit for bit.
func loadSchemeMix(seed int64, schemeOpts []core.Option) (*core.Registry, error) {
	r := rand.New(rand.NewSource(seed))
	reg := core.NewRegistry()
	reg.Set("tree", gen.RandomTree(r, 200), schemeOpts...)
	reg.Set("dense", gen.CompleteBipartite(6, 10), schemeOpts...)
	// NestedChain is connected by construction; AlphaAcyclic's random
	// forests can split into components, which would make every terminal
	// set straddling two of them an error rather than a measurement.
	reg.Set("alpha", bipartite.FromHypergraph(gen.NestedChain(12, 4)).B, schemeOpts...)
	reg.Set("sparse", gen.RandomConnectedBipartite(r, 40, 30, 0.08), schemeOpts...)
	reg.Set("grid", gen.GridBipartite(6, 6), schemeOpts...)
	return reg, nil
}

// schemeSize is one serveable scheme and its node-id space, discovered
// over the wire so url mode works against any server.
type schemeSize struct {
	name  string
	nodes int
}

func schemeNames(schemes []schemeSize) []string {
	out := make([]string, len(schemes))
	for i, s := range schemes {
		out[i] = s.name
	}
	return out
}

// fetchSchemeSizes lists the target's schemes via GET /v1/schemes.
func fetchSchemeSizes(ctx context.Context, base string) ([]schemeSize, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/schemes", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/schemes: status %d", resp.StatusCode)
	}
	var sr httpd.SchemesResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	var out []schemeSize
	for _, s := range sr.Schemes {
		out = append(out, schemeSize{name: s.Name, nodes: s.V1Nodes + s.V2Nodes})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("target serves no schemes")
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, nil
}

// loadMaxTerminals caps the terminal-set size of generated queries: large
// enough to exercise multi-terminal planning, small enough that even the
// adversarial grid answers interactively.
const loadMaxTerminals = 8

// buildQueryPool samples a fixed pool of queries per scheme: distinct
// terminal sets of 2..loadMaxTerminals nodes. The pool is what the warm
// phase's zipf distribution ranges over, so its order is the popularity
// ranking.
func buildQueryPool(seed int64, schemes []schemeSize) []poolQuery {
	r := rand.New(rand.NewSource(seed + 1))
	const perScheme = 32
	var pool []poolQuery
	for _, s := range schemes {
		for q := 0; q < perScheme; q++ {
			k := 2 + r.Intn(loadMaxTerminals-1)
			if k > s.nodes {
				k = s.nodes
			}
			pool = append(pool, makePoolQuery(s.name, distinctInts(r, s.nodes, k)))
		}
	}
	// Interleave schemes so zipf's head is multi-tenant rather than all
	// rank-0..31 queries landing on one scheme.
	sort.SliceStable(pool, func(i, j int) bool {
		return i%perScheme < j%perScheme
	})
	return pool
}

// distinctInts samples k distinct ints in [0, n).
func distinctInts(r *rand.Rand, n, k int) []int {
	seen := map[int]bool{}
	out := make([]int, 0, k)
	for len(out) < k {
		v := r.Intn(n)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// loadDriver issues pool queries against one target and snapshots its
// cache counters around each phase.
type loadDriver struct {
	base    string
	client  *http.Client
	seed    int64
	tracker *traceTracker // current phase's traceparent marking; nil between phases
}

// traceMarkEvery is the driver's traceparent marking stride: one request
// in this many carries a sampled traceparent, forcing the server to
// retain its trace. Sparse enough not to perturb the measurement, dense
// enough that even the cold pass yields phase samples.
const traceMarkEvery = 16

// traceTracker hands out deterministic sampled traceparent headers for
// a fraction of a phase's requests and remembers the trace ids issued,
// so the phase can later recognize its own traces on /v1/traces. A nil
// tracker marks nothing.
type traceTracker struct {
	seed uint64
	n    atomic.Uint64
	mu   sync.Mutex
	ids  map[string]bool
}

func newTraceTracker(seed int64, phase string) *traceTracker {
	h := uint64(seed)*0x9e3779b97f4a7c15 + 0x517cc1b727220a95
	for _, c := range phase {
		h = (h ^ uint64(c)) * 0x9e3779b97f4a7c15
	}
	return &traceTracker{seed: h | 1, ids: map[string]bool{}}
}

// mark returns the traceparent header for this request, or "" for the
// (15 of 16) requests that travel unmarked.
func (t *traceTracker) mark() string {
	if t == nil {
		return ""
	}
	n := t.n.Add(1)
	if n%traceMarkEvery != 0 {
		return ""
	}
	// seed|1 keeps the id's high half nonzero, so the id as a whole can
	// never be the all-zero id the W3C spec rejects.
	tid := fmt.Sprintf("%016x%016x", t.seed, n)
	t.mu.Lock()
	t.ids[tid] = true
	t.mu.Unlock()
	return fmt.Sprintf("00-%s-%016x-01", tid, n)
}

// collect reports whether tid is one of this tracker's marked requests.
func (t *traceTracker) has(tid string) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ids[tid]
}

// runPhase measures one phase: wall time, client-side latency histogram,
// error count, whole-process allocations (self mode measures itself) and
// the target's cache-counter movement.
func (d *loadDriver) runPhase(ctx context.Context, cfg loadConfig, name string, body func(issue func(poolQuery))) (phaseReport, error) {
	before, err := d.cacheCounters(ctx)
	if err != nil {
		return phaseReport{}, fmt.Errorf("-load: stats before %s phase: %w", name, err)
	}
	d.tracker = newTraceTracker(cfg.seed, name)
	hist := metrics.NewHistogram(metrics.DefLatencyBounds())
	var requests, errors atomic.Int64
	var m0, m1 runtime.MemStats
	if cfg.target == "self" {
		runtime.ReadMemStats(&m0)
	}
	start := time.Now()
	body(func(q poolQuery) {
		t0 := time.Now()
		ok := d.issue(ctx, q)
		hist.ObserveDuration(time.Since(t0))
		requests.Add(1)
		if !ok {
			errors.Add(1)
		}
	})
	elapsed := time.Since(start)
	if cfg.target == "self" {
		runtime.ReadMemStats(&m1)
	}
	after, err := d.cacheCounters(ctx)
	if err != nil {
		return phaseReport{}, fmt.Errorf("-load: stats after %s phase: %w", name, err)
	}

	n := int(requests.Load())
	if n == 0 {
		return phaseReport{}, fmt.Errorf("-load: %s phase issued no requests", name)
	}
	if e := int(errors.Load()); e == n {
		return phaseReport{}, fmt.Errorf("-load: every %s-phase request failed (%d of %d)", name, e, n)
	}
	rep := phaseReport{
		Requests: n,
		Errors:   int(errors.Load()),
		Seconds:  elapsed.Seconds(),
		QPS:      float64(n) / elapsed.Seconds(),
		P50ms:    hist.Quantile(0.50) * 1e3,
		P95ms:    hist.Quantile(0.95) * 1e3,
		P99ms:    hist.Quantile(0.99) * 1e3,
	}
	if lookups := after.lookups() - before.lookups(); lookups > 0 {
		rep.CacheHitRate = float64(after.hits-before.hits) / float64(lookups)
	}
	if cfg.target == "self" {
		rep.AllocsPerRequest = float64(m1.Mallocs-m0.Mallocs) / float64(n)
	}
	rep.Phases, rep.TracedRequests = d.phaseSpans(ctx, d.tracker)
	d.tracker = nil
	return rep, nil
}

// phaseSpans fetches the target's recent traces and aggregates the span
// durations of this phase's marked requests into per-phase-name latency
// quantiles. Best-effort by design: a target without tracing (or whose
// ring already evicted our traces) just yields no phase breakdown.
func (d *loadDriver) phaseSpans(ctx context.Context, tk *traceTracker) (map[string]phaseQuantiles, int) {
	if tk == nil {
		return nil, 0
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.base+"/v1/traces", nil)
	if err != nil {
		return nil, 0
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return nil, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0
	}
	var tr httpd.TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return nil, 0
	}
	hists := map[string]*metrics.Histogram{}
	found := 0
	for _, rec := range tr.Traces {
		if !tk.has(rec.TraceID) {
			continue
		}
		found++
		for _, sp := range rec.Spans {
			h := hists[sp.Name]
			if h == nil {
				h = metrics.NewHistogram(metrics.DefLatencyBounds())
				hists[sp.Name] = h
			}
			h.Observe(sp.DurationMS / 1e3)
		}
	}
	if len(hists) == 0 {
		return nil, found
	}
	out := make(map[string]phaseQuantiles, len(hists))
	for name, h := range hists {
		out[name] = phaseQuantiles{
			Count: int(h.Count()),
			P50ms: h.Quantile(0.50) * 1e3,
			P95ms: h.Quantile(0.95) * 1e3,
			P99ms: h.Quantile(0.99) * 1e3,
		}
	}
	return out, found
}

// issue POSTs one query and reports whether it answered 200.
func (d *loadDriver) issue(ctx context.Context, q poolQuery) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		d.base+"/v1/connect", strings.NewReader(q.body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	if tp := d.tracker.mark(); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// cacheTotals aggregates the target's cache counters across schemes.
type cacheTotals struct {
	hits, misses, bypasses uint64
}

func (c cacheTotals) lookups() uint64 { return c.hits + c.misses + c.bypasses }

func (d *loadDriver) cacheCounters(ctx context.Context) (cacheTotals, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.base+"/v1/stats", nil)
	if err != nil {
		return cacheTotals{}, err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return cacheTotals{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return cacheTotals{}, fmt.Errorf("GET /v1/stats: status %d", resp.StatusCode)
	}
	var sr httpd.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return cacheTotals{}, err
	}
	var out cacheTotals
	for _, st := range sr.Schemes {
		out.hits += st.Hits
		out.misses += st.Misses
		out.bypasses += st.Bypasses
	}
	return out, nil
}

// runWorkers runs fn(worker) on n goroutines and waits for all of them.
func runWorkers(n int, fn func(worker int)) {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// traceRecorder accumulates the warm-phase query stream. A nil recorder
// is a no-op, so the hot path can call add unconditionally.
type traceRecorder struct {
	mu    sync.Mutex
	lines []string
}

func (t *traceRecorder) add(q poolQuery) {
	if t == nil {
		return
	}
	parts := make([]string, len(q.terms))
	for i, v := range q.terms {
		parts[i] = strconv.Itoa(v)
	}
	t.mu.Lock()
	t.lines = append(t.lines, q.scheme+": "+strings.Join(parts, " "))
	t.mu.Unlock()
}

func (t *traceRecorder) write(path string) error {
	if t == nil || path == "" {
		return nil
	}
	data := strings.Join(t.lines, "\n") + "\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		return fmt.Errorf("-trace-record: %w", err)
	}
	return nil
}

// readTrace parses a recorded trace: one "scheme: id id id" line per
// query ('#' comments and blank lines skipped).
func readTrace(path string) ([]poolQuery, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("-trace: %w", err)
	}
	var pool []poolQuery
	for lineNo, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		scheme, rest, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("-trace: line %d: want \"scheme: id id ...\", got %q", lineNo+1, line)
		}
		fields := strings.Fields(rest)
		terms := make([]int, len(fields))
		for i, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("-trace: line %d: terminal %q: %w", lineNo+1, f, err)
			}
			terms[i] = v
		}
		pool = append(pool, makePoolQuery(strings.TrimSpace(scheme), terms))
	}
	return pool, nil
}

// writeBenchFile assembles the schema-versioned report, folding in the
// go-test benchmark rows when -bench-merge names the distilled JSON the
// trajectory script produced. Refuses to clobber an existing file: each
// PR's trajectory point is append-only history (FORCE at the script
// level re-generates deliberately).
func writeBenchFile(cfg loadConfig, report *servingReport, stdout io.Writer) error {
	out := benchFile{SchemaVersion: 2, Tag: cfg.benchTag, Serving: report}
	out.Cores.Gomaxprocs = runtime.GOMAXPROCS(0)
	out.Cores.Numcpu = runtime.NumCPU()
	if cfg.benchMerge != "" {
		data, err := os.ReadFile(cfg.benchMerge)
		if err != nil {
			return fmt.Errorf("-bench-merge: %w", err)
		}
		var merged struct {
			Benchtime  string          `json:"benchtime"`
			Benchmarks json.RawMessage `json:"benchmarks"`
		}
		if err := json.Unmarshal(data, &merged); err != nil {
			return fmt.Errorf("-bench-merge: parsing %s: %w", cfg.benchMerge, err)
		}
		out.Benchtime = merged.Benchtime
		out.Benchmarks = merged.Benchmarks
	}
	if _, err := os.Stat(cfg.benchOut); err == nil {
		return fmt.Errorf("-bench-out: %s already exists (trajectory files are append-only; pick a new tag or remove it deliberately)", cfg.benchOut)
	}
	f, err := os.Create(cfg.benchOut)
	if err != nil {
		return fmt.Errorf("-bench-out: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return fmt.Errorf("-bench-out: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("-bench-out: %w", err)
	}
	fmt.Fprintf(stdout, "load: wrote %s (tag %s, schema v2)\n", cfg.benchOut, cfg.benchTag)
	return nil
}
