package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/httpd"
)

// serveConfig carries the -serve flags into runServe.
type serveConfig struct {
	addr        string        // listen address, e.g. ":8080" or "127.0.0.1:0"
	maxInFlight int           // concurrent-request bound (<=0: unlimited)
	schemeOpts  []core.Option // budgets applied to PUT-uploaded schemes too
}

// runServe exposes the registry over HTTP on cfg.addr until ctx is
// canceled or SIGINT/SIGTERM arrives, then shuts down gracefully. The
// bound address is announced on stdout (one line, machine-greppable) so
// scripts can use ":0" and discover the port.
func runServe(ctx context.Context, cfg serveConfig, reg *core.Registry, stdout io.Writer) error {
	if reg.Len() == 0 {
		return fmt.Errorf("-serve: no schemes loaded")
	}
	l, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	h := httpd.New(reg, httpd.WithMaxInFlight(cfg.maxInFlight),
		httpd.WithSchemeOptions(cfg.schemeOpts...))
	fmt.Fprintf(stdout, "chordalctl: serving HTTP on %s (schemes: %s)\n",
		l.Addr(), strings.Join(reg.Names(), " "))
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := httpd.Serve(ctx, l, h, 0); err != nil {
		return fmt.Errorf("-serve: %w", err)
	}
	fmt.Fprintln(stdout, "chordalctl: server stopped")
	return nil
}
