package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/httpd"
	"repro/internal/trace"
)

// serveConfig carries the -serve flags into runServe.
type serveConfig struct {
	addr        string        // listen address, e.g. ":8080" or "127.0.0.1:0"
	maxInFlight int           // concurrent-request bound (<=0: unlimited)
	schemeOpts  []core.Option // budgets applied to PUT-uploaded schemes too

	traceSample float64       // head-sampling probability for request traces
	slowQuery   time.Duration // slow-query threshold (<=0: disabled)
	logFormat   string        // "text" or "json" structured logs on stderr
}

// newServeLogger builds the server's structured logger on w in the
// requested format. Both the per-request access log and the tracer's
// slow-query log share it, so a slow query's forensic line and its
// request line carry the same trace id in the same stream.
func newServeLogger(w io.Writer, format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(w, nil))
	}
	return slog.New(slog.NewTextHandler(w, nil))
}

// runServe exposes the registry over HTTP on cfg.addr until ctx is
// canceled or SIGINT/SIGTERM arrives, then shuts down gracefully. The
// bound address is announced on stdout (one line, machine-greppable) so
// scripts can use ":0" and discover the port. Request and slow-query
// logs go to stderr as structured slog lines; every request is traced
// (head-sampled at cfg.traceSample, always retained on server error or
// past the slow-query threshold) and recent traces are served on
// GET /v1/traces.
func runServe(ctx context.Context, cfg serveConfig, reg *core.Registry, stdout, stderr io.Writer) error {
	if reg.Len() == 0 {
		return fmt.Errorf("-serve: no schemes loaded")
	}
	l, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	logger := newServeLogger(stderr, cfg.logFormat)
	tracer := trace.New(trace.Config{
		SampleProb: cfg.traceSample,
		SlowQuery:  cfg.slowQuery,
		Logger:     logger,
	})
	h := httpd.New(reg, httpd.WithMaxInFlight(cfg.maxInFlight),
		httpd.WithSchemeOptions(cfg.schemeOpts...),
		httpd.WithTracer(tracer),
		httpd.WithAccessLog(logger))
	fmt.Fprintf(stdout, "chordalctl: serving HTTP on %s (schemes: %s)\n",
		l.Addr(), strings.Join(reg.Names(), " "))
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := httpd.Serve(ctx, l, h, 0); err != nil {
		return fmt.Errorf("-serve: %w", err)
	}
	fmt.Fprintln(stdout, "chordalctl: server stopped")
	return nil
}
