// Command chordalctl classifies a bipartite graph (or a hypergraph via its
// incidence graph) against the paper's taxonomy: (4,1)/(6,2)/(6,1)
// chordality, Vi-chordality and Vi-conformity, and the acyclicity degrees
// of both associated hypergraphs, with witnesses where available.
//
// Usage:
//
//	chordalctl [-hypergraph] [-json] [file]
//
// Reads the graph from the file or standard input. See internal/graphio
// for the format.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/hypergraph"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fatal(err)
	}
}

// run implements the tool; factored out of main for tests.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	hyper, jsonOut := false, false
	var files []string
	for _, a := range args {
		switch a {
		case "-hypergraph", "--hypergraph":
			hyper = true
		case "-json", "--json":
			jsonOut = true
		default:
			files = append(files, a)
		}
	}
	in := stdin
	if len(files) > 0 {
		f, err := os.Open(files[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var b *bipartite.Graph
	if hyper {
		h, err := graphio.ReadHypergraph(in)
		if err != nil {
			return err
		}
		b = bipartite.FromHypergraph(h).B
	} else {
		var err error
		b, err = graphio.ReadBipartite(in)
		if err != nil {
			return err
		}
	}

	if jsonOut {
		return graphio.WriteReport(stdout, b)
	}
	fmt.Fprintf(stdout, "graph: %d nodes (%d in V1, %d in V2), %d arcs\n",
		b.N(), len(b.V1()), len(b.V2()), b.M())
	conn := core.New(b)
	fmt.Fprint(stdout, conn.Describe())

	h1 := b.HypergraphV1().H
	h2 := b.HypergraphV2().H
	fmt.Fprintf(stdout, "H1 (nodes=V1, edges=V2 neighbourhoods): %s\n", h1.Classify())
	fmt.Fprintf(stdout, "H2 (nodes=V2, edges=V1 neighbourhoods): %s\n", h2.Classify())
	printWitnesses(stdout, "H1", h1)
	printWitnesses(stdout, "H2", h2)
	return nil
}

func printWitnesses(w io.Writer, name string, h *hypergraph.Hypergraph) {
	if bc := h.FindBergeCycle(); bc != nil {
		fmt.Fprintf(w, "%s Berge-cycle witness: edges %v through nodes %v\n",
			name, edgeNames(h, bc.Edges), h.NodeLabels(bc.Nodes))
	}
	if tr := h.FindGammaTriangle(); tr != nil {
		fmt.Fprintf(w, "%s gamma-triangle witness: (%s, %s, %s) via (%s, %s, %s)\n",
			name, h.EdgeName(tr.E1), h.EdgeName(tr.E2), h.EdgeName(tr.E3),
			h.NodeLabel(tr.N1), h.NodeLabel(tr.N2), h.NodeLabel(tr.N3))
	}
	if wt := h.ConformalWitness(); wt != nil {
		fmt.Fprintf(w, "%s conformality witness (uncovered clique): %v\n",
			name, h.NodeLabels(wt))
	}
}

func edgeNames(h *hypergraph.Hypergraph, idx []int) []string {
	out := make([]string, len(idx))
	for i, e := range idx {
		out[i] = h.EdgeName(e)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chordalctl:", err)
	os.Exit(1)
}
