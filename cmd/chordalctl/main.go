// Command chordalctl classifies a bipartite graph (or a hypergraph via its
// incidence graph) against the paper's taxonomy: (4,1)/(6,2)/(6,1)
// chordality, Vi-chordality and Vi-conformity, and the acyclicity degrees
// of both associated hypergraphs, with witnesses where available.
//
// It can also serve minimal-connection query batches: with -batch the
// scheme is compiled once (frozen CSR view + classification) and the
// queries are answered concurrently through the cached core.Service. With
// -registry one process serves several named schemes at once through a
// core.Registry. With -serve the registry is exposed over HTTP (the JSON
// API of internal/httpd: POST /v1/connect, /v1/batch, /v1/interpretations,
// GET /v1/schemes, /v1/stats, plus the admin trio GET
// /v1/schemes/{name}/snapshot, PUT and DELETE /v1/schemes/{name}) until
// SIGINT/SIGTERM, with graceful shutdown; a single scheme file is served
// under the name "default".
//
// Compiled epochs persist: -compile writes the frozen CSR view plus
// classification as an internal/snapshot binary catalog file, and every
// file a -registry spec names may be either a textual scheme or such a
// .snap file (sniffed by magic, not extension) — snapshots boot with zero
// recompilation. Catalog entries compile/load concurrently on the
// -workers pool; -v reports per-scheme timing and provenance on stderr.
// -compile -warm queries.txt additionally answers the query file (same
// line format as -batch) through a Service and persists the settled
// answers as the snapshot's warmup section: a process booting the
// snapshot starts with those answers already cached, visible as
// warm_fills in /v1/stats.
//
// With -load the tool becomes a load harness: "-load self" boots an
// in-process server over a deterministic multi-tenant scheme mix (one
// generator per band of the chordality taxonomy, including the
// adversarial grid), "-load http://host:port" drives an external server.
// The harness runs a cold pass (every pool query once — all compulsory
// misses) then a warm pass (zipfian popularity over the pool for
// -load-duration, or a -trace replay), reports cold/warm QPS with
// client-observed p50/p95/p99, and with -bench-out/-bench-tag writes the
// schema-versioned BENCH_*.json trajectory file (merging the go-test
// benchmark rows the trajectory script distilled via -bench-merge).
// -trace-record captures the warm-phase stream for later replay.
//
// Usage:
//
//	chordalctl [-hypergraph] [-json] [file]
//	chordalctl -compile out.snap [-hypergraph] [-warm queries.txt] [file]
//	chordalctl -batch queries.txt [-workers n] [-timeout d] [-cache-shards n] [-cpuprofile f] [-memprofile f] [file]
//	chordalctl -registry name=file[,name=file...] [-batch queries.txt] [-workers n] [-timeout d] [-cache-shards n]
//	chordalctl -serve addr [-registry name=file,...] [-max-inflight n] [-max-terminals n] [-cache-shards n] [-trace-sample p] [-slow-query-ms n] [-log-format json|text] [-cpuprofile f] [-memprofile f] [file]
//	chordalctl -load self|url [-load-duration d] [-load-concurrency n] [-zipf-s s] [-seed n] [-trace f | -trace-record f] [-bench-out f -bench-tag t [-bench-merge f]] [-cache-shards n]
//
// -cpuprofile and -memprofile write pprof profiles of a serving run:
// the CPU profile spans scheme compilation through the last answer (for
// -serve, until graceful shutdown), and the heap profile is taken at
// exit after a final GC, so it shows the live set — pooled solver
// scratch, compiled views, cached answers — not transient garbage. Both
// flags require -batch or -serve; profiling a bare describe or -compile
// run would mostly measure file parsing.
//
// A -serve run traces every request end to end (W3C traceparent in,
// ctx-propagated phase spans through limiter, decode, cache, planner,
// solver and render). -trace-sample sets the head-sampling probability
// (default 0); traces of errored requests and of queries slower than
// -slow-query-ms (default 500, 0 disables) are always retained. Recent
// retained traces are served on GET /v1/traces, and each slow query
// additionally emits a structured forensic log line with its full phase
// breakdown. Request and slow-query logs go to stderr as log/slog lines
// in -log-format (text by default, json for machine ingestion), stamped
// with the request's trace id.
//
// -cache-shards splits each scheme's answer cache into n independently
// locked shards (rounded up to a power of two; default: GOMAXPROCS, at
// most 64) — raise it when a profiler shows hot cache locks at high QPS,
// or pin it to 1 for the v1 single-lock global-LRU semantics. Per-shard
// occupancy is visible in GET /v1/stats.
//
// Reads the graph from the file or standard input ("-batch -" reads the
// queries from standard input instead; the graph must then come from a
// file). Each query line lists the terminal node labels of one query,
// whitespace-separated ('#' starts a comment); in registry mode the line
// starts with the scheme name and a colon:
//
//	library: reader book
//	payroll: ename floor
//
// Per-query failures (unknown labels, disconnected terminals, deadline
// expiry, ...) do not abort the batch: each one is reported on standard
// error with its query-file line number, the remaining queries still run,
// and the process exits with status 2 (status 1 is reserved for fatal
// errors such as an unreadable graph). -timeout bounds the whole batch;
// the solvers observe the deadline inside their hot loops.
package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/httpd"
	"repro/internal/hypergraph"
	"repro/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		var be *batchError
		if errors.As(err, &be) {
			fmt.Fprintln(os.Stderr, "chordalctl:", err)
			os.Exit(2)
		}
		fatal(err)
	}
}

// batchError reports how many queries of a batch failed; it maps to exit
// status 2 so scripts can tell per-query failures (some answers are still
// usable) from fatal errors (status 1, nothing ran).
type batchError struct {
	failed, total int
}

func (e *batchError) Error() string {
	return fmt.Sprintf("%d of %d queries failed (diagnostics above)", e.failed, e.total)
}

// run implements the tool; factored out of main for tests.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (retErr error) {
	hyper, jsonOut, verbose := false, false, false
	batch, registry, serve, compile, warm := "", "", "", "", ""
	cpuprofile, memprofile := "", ""
	workers := 0
	maxInFlight, maxInFlightSet := httpd.DefaultMaxInFlight, false
	maxTerminals := 0
	cacheShards := 0
	traceSample, slowQueryMS := 0.0, int64(500)
	logFormat := "text"
	serveObsFlagSet := false // any -trace-sample/-slow-query-ms/-log-format seen
	load := loadConfig{duration: 2 * time.Second, concurrency: 8, zipfS: 1.2, seed: 1}
	loadFlagSet := false // any -load-*/-zipf-s/-seed/-trace*/-bench-* flag seen
	var timeout time.Duration
	var files []string
	for i := 0; i < len(args); i++ {
		switch a := args[i]; a {
		case "-hypergraph", "--hypergraph":
			hyper = true
		case "-json", "--json":
			jsonOut = true
		case "-v", "--v", "-verbose", "--verbose":
			verbose = true
		case "-compile", "--compile":
			i++
			if i >= len(args) {
				return fmt.Errorf("-compile needs an output file argument")
			}
			compile = args[i]
		case "-warm", "--warm":
			i++
			if i >= len(args) {
				return fmt.Errorf("-warm needs a query file argument")
			}
			warm = args[i]
		case "-serve", "--serve":
			i++
			if i >= len(args) {
				return fmt.Errorf("-serve needs a listen address argument")
			}
			serve = args[i]
		case "-max-inflight", "--max-inflight":
			i++
			if i >= len(args) {
				return fmt.Errorf("-max-inflight needs a count argument")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil {
				return fmt.Errorf("-max-inflight: %v", err)
			}
			maxInFlight, maxInFlightSet = n, true
		case "-max-terminals", "--max-terminals":
			i++
			if i >= len(args) {
				return fmt.Errorf("-max-terminals needs a count argument")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil {
				return fmt.Errorf("-max-terminals: %v", err)
			}
			maxTerminals = n
		case "-cache-shards", "--cache-shards":
			i++
			if i >= len(args) {
				return fmt.Errorf("-cache-shards needs a count argument")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil {
				return fmt.Errorf("-cache-shards: %v", err)
			}
			if n < 1 {
				return fmt.Errorf("-cache-shards: count must be >= 1 (rounded up to a power of two)")
			}
			cacheShards = n
		case "-trace-sample", "--trace-sample":
			i++
			if i >= len(args) {
				return fmt.Errorf("-trace-sample needs a probability argument in [0,1]")
			}
			p, err := strconv.ParseFloat(args[i], 64)
			if err != nil {
				return fmt.Errorf("-trace-sample: %v", err)
			}
			if p < 0 || p > 1 {
				return fmt.Errorf("-trace-sample: probability must be in [0,1]")
			}
			traceSample, serveObsFlagSet = p, true
		case "-slow-query-ms", "--slow-query-ms":
			i++
			if i >= len(args) {
				return fmt.Errorf("-slow-query-ms needs a millisecond argument (0 disables)")
			}
			n, err := strconv.ParseInt(args[i], 10, 64)
			if err != nil {
				return fmt.Errorf("-slow-query-ms: %v", err)
			}
			if n < 0 {
				return fmt.Errorf("-slow-query-ms: must be >= 0 (0 disables)")
			}
			slowQueryMS, serveObsFlagSet = n, true
		case "-log-format", "--log-format":
			i++
			if i >= len(args) {
				return fmt.Errorf("-log-format needs a format argument (json or text)")
			}
			if args[i] != "json" && args[i] != "text" {
				return fmt.Errorf("-log-format: want json or text, got %q", args[i])
			}
			logFormat, serveObsFlagSet = args[i], true
		case "-cpuprofile", "--cpuprofile":
			i++
			if i >= len(args) {
				return fmt.Errorf("-cpuprofile needs an output file argument")
			}
			cpuprofile = args[i]
		case "-memprofile", "--memprofile":
			i++
			if i >= len(args) {
				return fmt.Errorf("-memprofile needs an output file argument")
			}
			memprofile = args[i]
		case "-load", "--load":
			i++
			if i >= len(args) {
				return fmt.Errorf("-load needs a target argument (\"self\" or a base URL)")
			}
			load.target = args[i]
		case "-load-duration", "--load-duration":
			i++
			if i >= len(args) {
				return fmt.Errorf("-load-duration needs a duration argument")
			}
			d, err := time.ParseDuration(args[i])
			if err != nil {
				return fmt.Errorf("-load-duration: %w", err)
			}
			if d <= 0 {
				return fmt.Errorf("-load-duration: must be positive")
			}
			load.duration, loadFlagSet = d, true
		case "-load-concurrency", "--load-concurrency":
			i++
			if i >= len(args) {
				return fmt.Errorf("-load-concurrency needs a count argument")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil {
				return fmt.Errorf("-load-concurrency: %w", err)
			}
			if n < 1 {
				return fmt.Errorf("-load-concurrency: count must be >= 1")
			}
			load.concurrency, loadFlagSet = n, true
		case "-zipf-s", "--zipf-s":
			i++
			if i >= len(args) {
				return fmt.Errorf("-zipf-s needs a float argument")
			}
			s, err := strconv.ParseFloat(args[i], 64)
			if err != nil {
				return fmt.Errorf("-zipf-s: %w", err)
			}
			if s <= 1 {
				return fmt.Errorf("-zipf-s: exponent must be > 1")
			}
			load.zipfS, loadFlagSet = s, true
		case "-seed", "--seed":
			i++
			if i >= len(args) {
				return fmt.Errorf("-seed needs an integer argument")
			}
			n, err := strconv.ParseInt(args[i], 10, 64)
			if err != nil {
				return fmt.Errorf("-seed: %w", err)
			}
			load.seed, loadFlagSet = n, true
		case "-trace", "--trace":
			i++
			if i >= len(args) {
				return fmt.Errorf("-trace needs a trace file argument")
			}
			load.trace, loadFlagSet = args[i], true
		case "-trace-record", "--trace-record":
			i++
			if i >= len(args) {
				return fmt.Errorf("-trace-record needs an output file argument")
			}
			load.traceRecord, loadFlagSet = args[i], true
		case "-bench-out", "--bench-out":
			i++
			if i >= len(args) {
				return fmt.Errorf("-bench-out needs an output file argument")
			}
			load.benchOut, loadFlagSet = args[i], true
		case "-bench-tag", "--bench-tag":
			i++
			if i >= len(args) {
				return fmt.Errorf("-bench-tag needs a tag argument")
			}
			load.benchTag, loadFlagSet = args[i], true
		case "-bench-merge", "--bench-merge":
			i++
			if i >= len(args) {
				return fmt.Errorf("-bench-merge needs a JSON file argument")
			}
			load.benchMerge, loadFlagSet = args[i], true
		case "-batch", "--batch":
			i++
			if i >= len(args) {
				return fmt.Errorf("-batch needs a query file argument")
			}
			batch = args[i]
		case "-registry", "--registry":
			i++
			if i >= len(args) {
				return fmt.Errorf("-registry needs a name=file[,name=file...] argument")
			}
			registry = args[i]
		case "-workers", "--workers":
			i++
			if i >= len(args) {
				return fmt.Errorf("-workers needs a count argument")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil {
				return fmt.Errorf("-workers: %v", err)
			}
			workers = n
		case "-timeout", "--timeout":
			i++
			if i >= len(args) {
				return fmt.Errorf("-timeout needs a duration argument")
			}
			d, err := time.ParseDuration(args[i])
			if err != nil {
				return fmt.Errorf("-timeout: %v", err)
			}
			timeout = d
		default:
			files = append(files, a)
		}
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	var schemeOpts []core.Option
	if maxTerminals > 0 {
		schemeOpts = append(schemeOpts, core.WithMaxTerminals(maxTerminals))
	}
	if cacheShards > 0 {
		// Answer-cache lock sharding for every scheme this process
		// serves, batch and HTTP alike (PUT-uploaded schemes inherit it
		// via the serve config).
		schemeOpts = append(schemeOpts, core.WithCacheShards(cacheShards))
	}

	// Reject flag combinations that would otherwise be silently ignored —
	// a server quietly discarding the user's query file is worse than an
	// error.
	if load.target != "" {
		switch {
		case serve != "":
			return fmt.Errorf("-load is incompatible with -serve (point -load at the server's URL instead)")
		case batch != "":
			return fmt.Errorf("-load is incompatible with -batch (the harness generates its own workload)")
		case compile != "":
			return fmt.Errorf("-load is incompatible with -compile")
		case registry != "":
			return fmt.Errorf("-load self builds its own scheme mix; -registry does not apply")
		case jsonOut || hyper:
			return fmt.Errorf("-json/-hypergraph do not apply to -load")
		case workers > 0:
			return fmt.Errorf("-workers does not apply to -load (use -load-concurrency)")
		case load.benchOut != "" && load.benchTag == "":
			return fmt.Errorf("-bench-out needs -bench-tag (trajectory files are named and compared by tag)")
		case load.benchMerge != "" && load.benchOut == "":
			return fmt.Errorf("-bench-merge folds micro-benchmark rows into the -bench-out file; pass -bench-out too")
		case load.trace != "" && load.traceRecord != "":
			return fmt.Errorf("-trace-record records the generated stream; it cannot be combined with -trace replay")
		case load.target != "self" && !strings.HasPrefix(load.target, "http://") && !strings.HasPrefix(load.target, "https://"):
			return fmt.Errorf("-load target must be \"self\" or an http(s) base URL, got %q", load.target)
		}
	} else if loadFlagSet {
		return fmt.Errorf("-load-duration/-load-concurrency/-zipf-s/-seed/-trace/-trace-record/-bench-* only apply to -load")
	}
	if serve != "" && batch != "" {
		return fmt.Errorf("-batch is incompatible with -serve (use POST /v1/batch against the server)")
	}
	if serve != "" && jsonOut {
		return fmt.Errorf("-json is incompatible with -serve (every endpoint already answers JSON)")
	}
	if serve == "" && maxInFlightSet {
		return fmt.Errorf("-max-inflight only applies to -serve")
	}
	if serve == "" && serveObsFlagSet {
		return fmt.Errorf("-trace-sample/-slow-query-ms/-log-format only apply to -serve")
	}
	if cacheShards > 0 && serve == "" && batch == "" && registry == "" && load.target == "" {
		// Covers plain describe/-json and -compile alike: no Service (and
		// so no answer cache) is ever built there, and a silently ignored
		// tuning flag is worse than an error.
		return fmt.Errorf("-cache-shards is a serving knob; it requires -serve, -batch, -registry or -load")
	}
	if (cpuprofile != "" || memprofile != "") && serve == "" && batch == "" {
		// Covers describe/-json/-compile and batch-less -registry: none of
		// them runs the solver hot paths worth profiling.
		return fmt.Errorf("-cpuprofile/-memprofile profile a serving run; they require -batch or -serve")
	}
	if cpuprofile != "" || memprofile != "" {
		stop, err := startProfiles(cpuprofile, memprofile)
		if err != nil {
			return err
		}
		// The batch paths return non-nil for per-query failures; profiles
		// of partially failed batches are still valid, so only surface a
		// profile-write error when the run itself succeeded.
		defer func() {
			if err := stop(); err != nil && retErr == nil {
				retErr = err
			}
		}()
	}
	if compile != "" {
		switch {
		case serve != "":
			return fmt.Errorf("-compile is incompatible with -serve (compile first, then serve the .snap)")
		case batch != "":
			return fmt.Errorf("-compile is incompatible with -batch")
		case registry != "":
			return fmt.Errorf("-compile takes a single scheme; compile registry entries one at a time")
		case jsonOut:
			return fmt.Errorf("-compile is incompatible with -json")
		case maxTerminals > 0:
			// A snapshot persists the epoch, not serving budgets: accepting
			// the flag here would silently drop it.
			return fmt.Errorf("-max-terminals is a load-time budget; pass it to -serve/-registry when loading the snapshot")
		case workers > 0:
			return fmt.Errorf("-workers does not apply to -compile")
		case timeout > 0:
			return fmt.Errorf("-timeout does not apply to -compile")
		}
		return runCompile(compile, warm, files, stdin, stdout, stderr, hyper, verbose)
	}
	if warm != "" {
		return fmt.Errorf("-warm pre-answers queries into a -compile snapshot; it requires -compile")
	}

	if load.target != "" {
		return runLoad(ctx, load, stdout, stderr, schemeOpts)
	}

	if serve != "" {
		if workers > 0 {
			// In serve mode -workers bounds each scheme's /v1/batch pool
			// (and, below, the catalog-load pool).
			schemeOpts = append(schemeOpts, core.WithWorkers(workers))
		}
		var reg *core.Registry
		if registry != "" {
			var err error
			reg, err = loadRegistry(registry, hyper, workers, verboseTo(verbose, stderr), schemeOpts...)
			if err != nil {
				return err
			}
		} else {
			in := stdin
			if len(files) > 0 {
				f, err := os.Open(files[0])
				if err != nil {
					return err
				}
				defer f.Close()
				in = f
			}
			b, err := readScheme(in, hyper)
			if err != nil {
				return err
			}
			reg = core.NewRegistry()
			reg.Set("default", b, schemeOpts...)
		}
		return runServe(ctx, serveConfig{
			addr: serve, maxInFlight: maxInFlight, schemeOpts: schemeOpts,
			traceSample: traceSample,
			slowQuery:   time.Duration(slowQueryMS) * time.Millisecond,
			logFormat:   logFormat,
		}, reg, stdout, stderr)
	}

	if registry != "" {
		return runRegistry(ctx, registry, batch, stdin, stdout, stderr, workers, hyper, verbose, schemeOpts)
	}

	in := stdin
	if len(files) > 0 {
		f, err := os.Open(files[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	b, err := readScheme(in, hyper)
	if err != nil {
		return err
	}

	if batch != "" {
		qin := stdin
		if batch != "-" {
			qf, err := os.Open(batch)
			if err != nil {
				return err
			}
			defer qf.Close()
			qin = qf
		} else if len(files) == 0 {
			return fmt.Errorf("-batch -: queries on stdin require the graph from a file")
		}
		svc := core.Open(b, schemeOpts...)
		queries, err := parseQueries(qin, false, func(name string) (*core.Service, error) {
			return svc, nil
		})
		if err != nil {
			return err
		}
		if err := answerBatch(ctx, queries, stdout, stderr, workers); err != nil {
			return err
		}
		st := svc.Stats()
		fmt.Fprintf(stdout, "answered %d queries (%d cache hits, %d misses, %d cache shards)\n",
			len(queries), st.Hits, st.Misses, st.Shards)
		if n := countFailed(queries); n > 0 {
			return &batchError{failed: n, total: len(queries)}
		}
		return nil
	}

	if jsonOut {
		return graphio.WriteReport(stdout, b)
	}
	describeScheme(stdout, core.New(b, schemeOpts...))
	return nil
}

// startProfiles begins CPU profiling (when cpuFile is non-empty) and
// returns a stop function that ends it and writes the heap profile (when
// memFile is non-empty). The heap dump follows a forced GC so it reports
// the retained live set — compiled frozen views, pooled solver scratch,
// cached answers — rather than collectable garbage.
func startProfiles(cpuFile, memFile string) (stop func() error, err error) {
	var cpu *os.File
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		cpu = f
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("-cpuprofile: %w", err)
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("-memprofile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

// readScheme reads a bipartite graph, or a hypergraph rendered as its
// incidence graph when hyper is set.
func readScheme(in io.Reader, hyper bool) (*bipartite.Graph, error) {
	if hyper {
		h, err := graphio.ReadHypergraph(in)
		if err != nil {
			return nil, err
		}
		return bipartite.FromHypergraph(h).B, nil
	}
	return graphio.ReadBipartite(in)
}

// describeScheme prints the classification report for one compiled scheme
// (taking the Connector avoids recompiling what the caller already has).
func describeScheme(stdout io.Writer, conn *core.Connector) {
	b := conn.Graph()
	fmt.Fprintf(stdout, "graph: %d nodes (%d in V1, %d in V2), %d arcs\n",
		b.N(), len(b.V1()), len(b.V2()), b.M())
	fmt.Fprint(stdout, conn.Describe())

	h1 := b.HypergraphV1().H
	h2 := b.HypergraphV2().H
	fmt.Fprintf(stdout, "H1 (nodes=V1, edges=V2 neighbourhoods): %s\n", h1.Classify())
	fmt.Fprintf(stdout, "H2 (nodes=V2, edges=V1 neighbourhoods): %s\n", h2.Classify())
	printWitnesses(stdout, "H1", h1)
	printWitnesses(stdout, "H2", h2)
}

// verboseTo returns w when verbose is set, nil otherwise — the sink
// loadRegistry reports per-scheme timing to.
func verboseTo(verbose bool, w io.Writer) io.Writer {
	if verbose {
		return w
	}
	return nil
}

// runCompile compiles one scheme (freeze + classify) and persists the
// epoch as an internal/snapshot catalog file, so later -registry/-serve
// runs (or PUT uploads) boot it with zero recompilation. Serving budgets
// (-max-terminals, -workers) are deliberately not accepted here: they are
// load-time options, not part of the epoch. With -warm the query file is
// answered through a Service first and the settled answers ride along as
// the snapshot's warmup section, so whatever loads the snapshot boots with
// those answers already cached.
func runCompile(out, warm string, files []string, stdin io.Reader, stdout, stderr io.Writer, hyper, verbose bool) error {
	in := stdin
	if len(files) > 0 {
		f, err := os.Open(files[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	b, err := readScheme(in, hyper)
	if err != nil {
		return err
	}
	start := time.Now()
	conn := core.New(b)
	var data []byte
	warmed := 0
	if warm != "" {
		svc := core.NewService(conn)
		if err := warmService(svc, warm); err != nil {
			return err
		}
		entries := svc.WarmupEntries()
		warmed = len(entries)
		data = snapshot.EncodeWarm(conn.Frozen(), conn.Class(), entries)
	} else {
		data = snapshot.Encode(conn.Frozen(), conn.Class())
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	if verbose {
		fmt.Fprintf(stderr, "chordalctl: compiled in %v\n", time.Since(start).Round(time.Microsecond))
	}
	fmt.Fprintf(stdout, "chordalctl: compiled %d nodes, %d arcs -> %s (%d bytes, format v%d)\n",
		b.N(), b.M(), out, len(data), snapshot.Version)
	if warm != "" {
		fmt.Fprintf(stdout, "chordalctl: warmed %d cache entries from %s\n", warmed, warm)
	}
	return nil
}

// warmService answers every query of the -warm file through svc so the
// answers settle into its cache. Warming is a build step, not serving:
// any failing line (unknown label, disconnected terminals) aborts the
// compile rather than silently persisting a partial warmup.
func warmService(svc *core.Service, warmFile string) error {
	f, err := os.Open(warmFile)
	if err != nil {
		return err
	}
	defer f.Close()
	queries, err := parseQueries(f, false, func(string) (*core.Service, error) { return svc, nil })
	if err != nil {
		return err
	}
	for _, q := range queries {
		if q.err != nil {
			return fmt.Errorf("-warm %s line %d (%s): %w", warmFile, q.lineNo, q.display, q.err)
		}
		if _, err := svc.Connect(context.Background(), q.terms); err != nil {
			return fmt.Errorf("-warm %s line %d (%s): %w", warmFile, q.lineNo, q.display, err)
		}
	}
	return nil
}

// regSpecEntry is one parsed name=file pair of a -registry spec.
type regSpecEntry struct {
	name, file string
}

// parseRegistrySpec splits and validates a -registry spec. Duplicate names
// are rejected up front: entries install concurrently, so "later wins"
// would otherwise become a race.
func parseRegistrySpec(spec string) ([]regSpecEntry, error) {
	var entries []regSpecEntry
	seen := map[string]bool{}
	for _, pair := range strings.Split(spec, ",") {
		name, file, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" || file == "" {
			return nil, fmt.Errorf("-registry: bad scheme spec %q (want name=file)", pair)
		}
		if seen[name] {
			return nil, fmt.Errorf("-registry: scheme %q named twice", name)
		}
		seen[name] = true
		entries = append(entries, regSpecEntry{name: name, file: file})
	}
	return entries, nil
}

// loadRegistry installs every name=file scheme of the spec into a fresh
// core.Registry, applying opts to each. Files are sniffed: a snapshot
// (internal/snapshot magic) loads with zero recompilation, anything else
// parses as a textual scheme and compiles live. Entries load concurrently
// on at most workers goroutines (GOMAXPROCS when non-positive) — compiles
// are CPU-bound and independent, so a large catalog boots in
// max-scheme-time, not sum. When verbose is non-nil, per-scheme wall time
// and provenance are reported to it.
func loadRegistry(spec string, hyper bool, workers int, verbose io.Writer, opts ...core.Option) (*core.Registry, error) {
	entries, err := parseRegistrySpec(spec)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(entries) {
		workers = len(entries)
	}

	reg := core.NewRegistry()
	errs := make([]error, len(entries))
	var vmu sync.Mutex // serializes verbose lines, not the loads
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				e := entries[i]
				start := time.Now()
				source, err := loadRegistryEntry(reg, e, hyper, opts)
				if err != nil {
					errs[i] = err
					continue
				}
				if verbose != nil {
					vmu.Lock()
					fmt.Fprintf(verbose, "chordalctl: scheme %q: %s from %s in %v\n",
						e.name, source, e.file, time.Since(start).Round(time.Microsecond))
					vmu.Unlock()
				}
			}
		}()
	}
	for i := range entries {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// loadRegistryEntry installs one catalog entry and reports its provenance
// ("compiled" or "snapshot-v<N>").
func loadRegistryEntry(reg *core.Registry, e regSpecEntry, hyper bool, opts []core.Option) (string, error) {
	data, err := os.ReadFile(e.file)
	if err != nil {
		return "", err
	}
	if snapshot.IsSnapshot(data) {
		if _, err := reg.LoadSnapshot(e.name, data, opts...); err != nil {
			return "", fmt.Errorf("scheme %q: %w", e.name, err)
		}
	} else {
		b, err := readScheme(bytes.NewReader(data), hyper)
		if err != nil {
			return "", fmt.Errorf("scheme %q: %w", e.name, err)
		}
		reg.Set(e.name, b, opts...)
	}
	return reg.Source(e.name), nil
}

// runRegistry loads every name=file scheme into a core.Registry and either
// describes the catalog (no -batch) or serves the query batch against it.
func runRegistry(ctx context.Context, spec, batch string, stdin io.Reader, stdout, stderr io.Writer, workers int, hyper, verbose bool, opts []core.Option) error {
	reg, err := loadRegistry(spec, hyper, workers, verboseTo(verbose, stderr), opts...)
	if err != nil {
		return err
	}

	if batch == "" {
		for _, name := range reg.Names() {
			svc, _ := reg.Get(name)
			fmt.Fprintf(stdout, "=== scheme %q (epoch %d)\n", name, reg.Epoch(name))
			describeScheme(stdout, svc.Connector())
		}
		return nil
	}

	qin := stdin
	if batch != "-" {
		qf, err := os.Open(batch)
		if err != nil {
			return err
		}
		defer qf.Close()
		qin = qf
	}
	queries, err := parseQueries(qin, true, func(name string) (*core.Service, error) {
		if name == "" {
			return nil, fmt.Errorf("registry mode needs a \"scheme:\" prefix on every query line")
		}
		svc, ok := reg.Get(name)
		if !ok {
			return nil, fmt.Errorf("%w: %q", core.ErrUnknownScheme, name)
		}
		return svc, nil
	})
	if err != nil {
		return err
	}
	if err := answerBatch(ctx, queries, stdout, stderr, workers); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "answered %d queries over %d schemes\n", len(queries), reg.Len())
	if n := countFailed(queries); n > 0 {
		return &batchError{failed: n, total: len(queries)}
	}
	return nil
}

// batchQuery is one parsed query line and, after answerBatch, its outcome.
type batchQuery struct {
	lineNo  int
	display string        // the query as the user wrote it (for diagnostics)
	svc     *core.Service // scheme it runs against; nil when resolution failed
	terms   []int
	err     error // parse/resolve error, later the query outcome
	conn    core.Connection
}

// parseQueries reads one query per line ('#' comments, blank lines
// skipped). With prefixed set (registry mode) each line starts with a
// "scheme:" prefix, which resolve maps to the Service answering the line
// ("" when absent); without it the whole line is terminal labels, so
// labels containing ':' stay intact. Label resolution uses the resolved
// scheme's graph. Resolution and label failures are recorded per query,
// not returned — only I/O errors abort.
func parseQueries(r io.Reader, prefixed bool, resolve func(scheme string) (*core.Service, error)) ([]batchQuery, error) {
	var queries []batchQuery
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		// Scan strips '\n' but not '\r': a CRLF file would otherwise leak a
		// carriage return into the last label or a scheme name (and from
		// there into diagnostics). Interior '\r' is whitespace to Fields
		// already; make it so for the scheme prefix too.
		line = strings.ReplaceAll(line, "\r", " ")
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		scheme := ""
		rest := line
		if prefixed {
			if name, after, ok := strings.Cut(line, ":"); ok {
				scheme, rest = strings.TrimSpace(name), after
			}
		}
		labels := strings.Fields(rest)
		if scheme == "" && len(labels) == 0 {
			continue
		}
		q := batchQuery{lineNo: lineNo, display: strings.Join(labels, " ")}
		if scheme != "" {
			q.display = scheme + ": " + q.display
		}
		svc, err := resolve(scheme)
		if err != nil {
			q.err = err
			queries = append(queries, q)
			continue
		}
		q.svc = svc
		g := svc.Connector().Frozen().G()
		q.terms = make([]int, 0, len(labels))
		for _, l := range labels {
			id, ok := g.ID(l)
			if !ok {
				q.err = fmt.Errorf("unknown node label %q", l)
				break
			}
			q.terms = append(q.terms, id)
		}
		queries = append(queries, q)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return queries, nil
}

// answerBatch answers the well-formed queries concurrently (bounded by
// workers, defaulting to GOMAXPROCS like Service.ConnectBatch), then
// prints answers to stdout in query order and line-numbered diagnostics
// for every failure to stderr.
func answerBatch(ctx context.Context, queries []batchQuery, stdout, stderr io.Writer, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				q := &queries[i]
				if q.err != nil {
					continue
				}
				q.conn, q.err = q.svc.Connect(ctx, q.terms)
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()

	for i, q := range queries {
		if q.err != nil {
			fmt.Fprintf(stderr, "chordalctl: query %d (line %d) [%s]: %v\n", i+1, q.lineNo, q.display, q.err)
			continue
		}
		g := q.svc.Connector().Frozen().G()
		fmt.Fprintf(stdout, "query %d [%s]: method=%s nodes=%d {%s}\n",
			i+1, q.display, q.conn.Method, q.conn.Tree.Nodes.Len(),
			strings.Join(g.Labels(q.conn.Tree.Nodes), " "))
	}
	return nil
}

// countFailed counts queries whose outcome is an error.
func countFailed(queries []batchQuery) int {
	n := 0
	for _, q := range queries {
		if q.err != nil {
			n++
		}
	}
	return n
}

func printWitnesses(w io.Writer, name string, h *hypergraph.Hypergraph) {
	if bc := h.FindBergeCycle(); bc != nil {
		fmt.Fprintf(w, "%s Berge-cycle witness: edges %v through nodes %v\n",
			name, edgeNames(h, bc.Edges), h.NodeLabels(bc.Nodes))
	}
	if tr := h.FindGammaTriangle(); tr != nil {
		fmt.Fprintf(w, "%s gamma-triangle witness: (%s, %s, %s) via (%s, %s, %s)\n",
			name, h.EdgeName(tr.E1), h.EdgeName(tr.E2), h.EdgeName(tr.E3),
			h.NodeLabel(tr.N1), h.NodeLabel(tr.N2), h.NodeLabel(tr.N3))
	}
	if wt := h.ConformalWitness(); wt != nil {
		fmt.Fprintf(w, "%s conformality witness (uncovered clique): %v\n",
			name, h.NodeLabels(wt))
	}
}

func edgeNames(h *hypergraph.Hypergraph, idx []int) []string {
	out := make([]string, len(idx))
	for i, e := range idx {
		out[i] = h.EdgeName(e)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chordalctl:", err)
	os.Exit(1)
}
