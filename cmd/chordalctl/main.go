// Command chordalctl classifies a bipartite graph (or a hypergraph via its
// incidence graph) against the paper's taxonomy: (4,1)/(6,2)/(6,1)
// chordality, Vi-chordality and Vi-conformity, and the acyclicity degrees
// of both associated hypergraphs, with witnesses where available.
//
// It can also serve minimal-connection query batches: with -batch the
// scheme is compiled once (frozen CSR view + classification) and the
// queries are answered concurrently through the cached core.Service.
//
// Usage:
//
//	chordalctl [-hypergraph] [-json] [file]
//	chordalctl -batch queries.txt [-workers n] [file]
//
// Reads the graph from the file or standard input ("-batch -" reads the
// queries from standard input instead; the graph must then come from a
// file). Each query line lists the terminal node labels of one query,
// whitespace-separated ('#' starts a comment). See internal/graphio for
// the graph format.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/hypergraph"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fatal(err)
	}
}

// run implements the tool; factored out of main for tests.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	hyper, jsonOut := false, false
	batch, workers := "", 0
	var files []string
	for i := 0; i < len(args); i++ {
		switch a := args[i]; a {
		case "-hypergraph", "--hypergraph":
			hyper = true
		case "-json", "--json":
			jsonOut = true
		case "-batch", "--batch":
			i++
			if i >= len(args) {
				return fmt.Errorf("-batch needs a query file argument")
			}
			batch = args[i]
		case "-workers", "--workers":
			i++
			if i >= len(args) {
				return fmt.Errorf("-workers needs a count argument")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil {
				return fmt.Errorf("-workers: %v", err)
			}
			workers = n
		default:
			files = append(files, a)
		}
	}
	in := stdin
	if len(files) > 0 {
		f, err := os.Open(files[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var b *bipartite.Graph
	if hyper {
		h, err := graphio.ReadHypergraph(in)
		if err != nil {
			return err
		}
		b = bipartite.FromHypergraph(h).B
	} else {
		var err error
		b, err = graphio.ReadBipartite(in)
		if err != nil {
			return err
		}
	}

	if batch != "" {
		qin := stdin
		if batch != "-" {
			qf, err := os.Open(batch)
			if err != nil {
				return err
			}
			defer qf.Close()
			qin = qf
		} else if len(files) == 0 {
			return fmt.Errorf("-batch -: queries on stdin require the graph from a file")
		}
		return runBatch(b, qin, stdout, workers)
	}

	if jsonOut {
		return graphio.WriteReport(stdout, b)
	}
	fmt.Fprintf(stdout, "graph: %d nodes (%d in V1, %d in V2), %d arcs\n",
		b.N(), len(b.V1()), len(b.V2()), b.M())
	conn := core.New(b)
	fmt.Fprint(stdout, conn.Describe())

	h1 := b.HypergraphV1().H
	h2 := b.HypergraphV2().H
	fmt.Fprintf(stdout, "H1 (nodes=V1, edges=V2 neighbourhoods): %s\n", h1.Classify())
	fmt.Fprintf(stdout, "H2 (nodes=V2, edges=V1 neighbourhoods): %s\n", h2.Classify())
	printWitnesses(stdout, "H1", h1)
	printWitnesses(stdout, "H2", h2)
	return nil
}

// runBatch compiles the scheme once and answers every query line
// concurrently through a cached core.Service, printing the answers in
// query order.
func runBatch(b *bipartite.Graph, queries io.Reader, stdout io.Writer, workers int) error {
	conn := core.New(b)
	svc := core.NewService(conn, workers, 0)

	var terms [][]int
	var lines []string
	sc := bufio.NewScanner(queries)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		labels := strings.Fields(line)
		if len(labels) == 0 {
			continue
		}
		q := make([]int, len(labels))
		for i, l := range labels {
			id, ok := b.G().ID(l)
			if !ok {
				return fmt.Errorf("query line %d: unknown node label %q", lineNo, l)
			}
			q[i] = id
		}
		terms = append(terms, q)
		lines = append(lines, strings.Join(labels, " "))
	}
	if err := sc.Err(); err != nil {
		return err
	}

	results := svc.ConnectBatch(terms)
	for i, r := range results {
		if r.Err != nil {
			fmt.Fprintf(stdout, "query %d [%s]: error: %v\n", i+1, lines[i], r.Err)
			continue
		}
		fmt.Fprintf(stdout, "query %d [%s]: method=%s nodes=%d {%s}\n",
			i+1, lines[i], r.Conn.Method, r.Conn.Tree.Nodes.Len(),
			strings.Join(b.G().Labels(r.Conn.Tree.Nodes), " "))
	}
	st := svc.Stats()
	fmt.Fprintf(stdout, "answered %d queries (%d cache hits, %d misses)\n",
		len(results), st.Hits, st.Misses)
	return nil
}

func printWitnesses(w io.Writer, name string, h *hypergraph.Hypergraph) {
	if bc := h.FindBergeCycle(); bc != nil {
		fmt.Fprintf(w, "%s Berge-cycle witness: edges %v through nodes %v\n",
			name, edgeNames(h, bc.Edges), h.NodeLabels(bc.Nodes))
	}
	if tr := h.FindGammaTriangle(); tr != nil {
		fmt.Fprintf(w, "%s gamma-triangle witness: (%s, %s, %s) via (%s, %s, %s)\n",
			name, h.EdgeName(tr.E1), h.EdgeName(tr.E2), h.EdgeName(tr.E3),
			h.NodeLabel(tr.N1), h.NodeLabel(tr.N2), h.NodeLabel(tr.N3))
	}
	if wt := h.ConformalWitness(); wt != nil {
		fmt.Fprintf(w, "%s conformality witness (uncovered clique): %v\n",
			name, h.NodeLabels(wt))
	}
}

func edgeNames(h *hypergraph.Hypergraph, idx []int) []string {
	out := make([]string, len(idx))
	for i, e := range idx {
		out[i] = h.EdgeName(e)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chordalctl:", err)
	os.Exit(1)
}
