package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fig3cInput = `
v1 A
v1 B
v1 C
v2 1
v2 2
v2 3
edge A 1
edge B 1
edge B 2
edge C 2
edge C 3
edge A 3
edge C 1   # the single chord
`

func TestRunBipartite(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(fig3cInput), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"graph: 6 nodes (3 in V1, 3 in V2), 7 arcs",
		"H1 (nodes=V1, edges=V2 neighbourhoods): beta-acyclic",
		"gamma-triangle witness",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunHypergraph(t *testing.T) {
	var out bytes.Buffer
	in := "edge e1 a b\nedge e2 b c\nedge e3 c a\n"
	if err := run([]string{"-hypergraph"}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "conformality witness") {
		t.Errorf("triangle should report a conformality witness:\n%s", out.String())
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("v1 a\nv2 r\nedge a r\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "graph: 2 nodes") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-json"}, strings.NewReader(fig3cInput), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"h1Degree\": \"beta-acyclic\"") {
		t.Errorf("json report unexpected:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("bogus"), &out); err == nil {
		t.Error("bad input accepted")
	}
	if err := run([]string{"/nonexistent/file"}, nil, &out); err == nil {
		t.Error("missing file accepted")
	}
}
