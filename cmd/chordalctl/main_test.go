package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fig3cInput = `
v1 A
v1 B
v1 C
v2 1
v2 2
v2 3
edge A 1
edge B 1
edge B 2
edge C 2
edge C 3
edge A 3
edge C 1   # the single chord
`

func TestRunBipartite(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(fig3cInput), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"graph: 6 nodes (3 in V1, 3 in V2), 7 arcs",
		"H1 (nodes=V1, edges=V2 neighbourhoods): beta-acyclic",
		"gamma-triangle witness",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunHypergraph(t *testing.T) {
	var out bytes.Buffer
	in := "edge e1 a b\nedge e2 b c\nedge e3 c a\n"
	if err := run([]string{"-hypergraph"}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "conformality witness") {
		t.Errorf("triangle should report a conformality witness:\n%s", out.String())
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("v1 a\nv2 r\nedge a r\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "graph: 2 nodes") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestRunJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-json"}, strings.NewReader(fig3cInput), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"h1Degree\": \"beta-acyclic\"") {
		t.Errorf("json report unexpected:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("bogus"), &out); err == nil {
		t.Error("bad input accepted")
	}
	if err := run([]string{"/nonexistent/file"}, nil, &out); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunBatch(t *testing.T) {
	dir := t.TempDir()
	qpath := filepath.Join(dir, "queries.txt")
	queries := `
A C          # one minimal-connection query per line
A B C
A C          # duplicate: answered from the cache
`
	if err := os.WriteFile(qpath, []byte(queries), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-batch", qpath, "-workers", "2"}, strings.NewReader(fig3cInput), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"query 1 [A C]:",
		"query 2 [A B C]:",
		"query 3 [A C]:",
		"answered 3 queries (1 cache hits, 2 misses)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("batch output missing %q:\n%s", want, s)
		}
	}
	// Identical queries must print identical answers.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if got1, got3 := strings.TrimPrefix(lines[0], "query 1 "), strings.TrimPrefix(lines[2], "query 3 "); got1 != got3 {
		t.Errorf("duplicate queries answered differently:\n%s\n%s", got1, got3)
	}
}

func TestRunBatchQueriesOnStdin(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(gpath, []byte(fig3cInput), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-batch", "-", gpath}, strings.NewReader("A C\n"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "answered 1 queries") {
		t.Errorf("stdin batch output unexpected:\n%s", out.String())
	}
}

func TestRunBatchErrors(t *testing.T) {
	var out bytes.Buffer
	dir := t.TempDir()
	qpath := filepath.Join(dir, "q.txt")
	if err := os.WriteFile(qpath, []byte("A NOPE\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-batch", qpath}, strings.NewReader(fig3cInput), &out); err == nil {
		t.Error("unknown query label accepted")
	}
	if err := run([]string{"-batch"}, strings.NewReader(fig3cInput), &out); err == nil {
		t.Error("-batch without argument accepted")
	}
	if err := run([]string{"-batch", "-"}, strings.NewReader(fig3cInput), &out); err == nil {
		t.Error("-batch - without a graph file accepted")
	}
}
