package main

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

const fig3cInput = `
v1 A
v1 B
v1 C
v2 1
v2 2
v2 3
edge A 1
edge B 1
edge B 2
edge C 2
edge C 3
edge A 3
edge C 1   # the single chord
`

func TestRunBipartite(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(nil, strings.NewReader(fig3cInput), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"graph: 6 nodes (3 in V1, 3 in V2), 7 arcs",
		"H1 (nodes=V1, edges=V2 neighbourhoods): beta-acyclic",
		"gamma-triangle witness",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunHypergraph(t *testing.T) {
	var out, errOut bytes.Buffer
	in := "edge e1 a b\nedge e2 b c\nedge e3 c a\n"
	if err := run([]string{"-hypergraph"}, strings.NewReader(in), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "conformality witness") {
		t.Errorf("triangle should report a conformality witness:\n%s", out.String())
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("v1 a\nv2 r\nedge a r\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if err := run([]string{path}, nil, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "graph: 2 nodes") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestRunJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-json"}, strings.NewReader(fig3cInput), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"h1Degree\": \"beta-acyclic\"") {
		t.Errorf("json report unexpected:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(nil, strings.NewReader("bogus"), &out, &errOut); err == nil {
		t.Error("bad input accepted")
	}
	if err := run([]string{"/nonexistent/file"}, nil, &out, &errOut); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunBatch(t *testing.T) {
	dir := t.TempDir()
	qpath := filepath.Join(dir, "queries.txt")
	queries := `
A C          # one minimal-connection query per line
A B C
A C          # duplicate: answered from the cache
`
	if err := os.WriteFile(qpath, []byte(queries), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if err := run([]string{"-batch", qpath, "-workers", "2", "-cache-shards", "2"}, strings.NewReader(fig3cInput), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"query 1 [A C]:",
		"query 2 [A B C]:",
		"query 3 [A C]:",
		"answered 3 queries (1 cache hits, 2 misses, 2 cache shards)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("batch output missing %q:\n%s", want, s)
		}
	}
	// Identical queries must print identical answers.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if got1, got3 := strings.TrimPrefix(lines[0], "query 1 "), strings.TrimPrefix(lines[2], "query 3 "); got1 != got3 {
		t.Errorf("duplicate queries answered differently:\n%s\n%s", got1, got3)
	}
	if errOut.Len() != 0 {
		t.Errorf("healthy batch should not write to stderr:\n%s", errOut.String())
	}
}

func TestRunBatchQueriesOnStdin(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(gpath, []byte(fig3cInput), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if err := run([]string{"-batch", "-", gpath}, strings.NewReader("A C\n"), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "answered 1 queries") {
		t.Errorf("stdin batch output unexpected:\n%s", out.String())
	}
}

// TestRunBatchPerQueryFailures pins the v2 failure contract: a failing
// query gets a line-numbered diagnostic on stderr, the remaining queries
// still run and print to stdout, and run returns a batchError (exit
// status 2) rather than a fatal error.
func TestRunBatchPerQueryFailures(t *testing.T) {
	dir := t.TempDir()
	qpath := filepath.Join(dir, "q.txt")
	queries := "A C\n\nA NOPE   # unknown label\nA C B\n"
	if err := os.WriteFile(qpath, []byte(queries), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	err := run([]string{"-batch", qpath}, strings.NewReader(fig3cInput), &out, &errOut)
	var be *batchError
	if !errors.As(err, &be) || be.failed != 1 || be.total != 3 {
		t.Fatalf("expected a 1/3 batchError, got %v", err)
	}
	if !strings.Contains(errOut.String(), "query 2 (line 3) [A NOPE]") ||
		!strings.Contains(errOut.String(), "unknown node label") {
		t.Errorf("stderr diagnostic missing line number:\n%s", errOut.String())
	}
	if strings.Contains(out.String(), "NOPE") {
		t.Errorf("failure folded into stdout:\n%s", out.String())
	}
	for _, want := range []string{"query 1 [A C]:", "query 3 [A C B]:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("surviving query missing from stdout: %q\n%s", want, out.String())
		}
	}
}

func TestRunBatchErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-batch"}, strings.NewReader(fig3cInput), &out, &errOut); err == nil {
		t.Error("-batch without argument accepted")
	}
	if err := run([]string{"-batch", "-"}, strings.NewReader(fig3cInput), &out, &errOut); err == nil {
		t.Error("-batch - without a graph file accepted")
	}
}

// TestRunRegistry serves two named schemes from one process and routes
// each query line by its scheme prefix.
func TestRunRegistry(t *testing.T) {
	dir := t.TempDir()
	g1 := filepath.Join(dir, "fig3c.txt")
	if err := os.WriteFile(g1, []byte(fig3cInput), 0o644); err != nil {
		t.Fatal(err)
	}
	g2 := filepath.Join(dir, "tiny.txt")
	if err := os.WriteFile(g2, []byte("v1 x\nv1 y\nv2 r\nedge x r\nedge y r\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	qpath := filepath.Join(dir, "q.txt")
	queries := "fig: A C\ntiny: x y\nghost: x y   # unknown scheme\n"
	if err := os.WriteFile(qpath, []byte(queries), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	err := run([]string{"-registry", "fig=" + g1 + ",tiny=" + g2, "-batch", qpath}, nil, &out, &errOut)
	var be *batchError
	if !errors.As(err, &be) || be.failed != 1 {
		t.Fatalf("expected one failed query, got %v", err)
	}
	for _, want := range []string{"query 1 [fig: A C]:", "query 2 [tiny: x y]:", "answered 3 queries over 2 schemes"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("registry output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errOut.String(), "unknown scheme") {
		t.Errorf("unknown scheme not diagnosed:\n%s", errOut.String())
	}

	// Without -batch, registry mode describes every scheme.
	out.Reset()
	if err := run([]string{"-registry", "fig=" + g1 + ",tiny=" + g2}, nil, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `scheme "fig" (epoch 1)`) ||
		!strings.Contains(out.String(), `scheme "tiny" (epoch 1)`) {
		t.Errorf("registry describe output unexpected:\n%s", out.String())
	}
	if err := run([]string{"-registry", "broken"}, nil, &out, &errOut); err == nil {
		t.Error("bad -registry spec accepted")
	}
}

// lineWatcher is a concurrency-safe writer that announces the HTTP listen
// address once run prints its "serving HTTP on <addr>" line.
type lineWatcher struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	addrC chan string
	found bool
}

func newLineWatcher() *lineWatcher {
	return &lineWatcher{addrC: make(chan string, 1)}
}

func (w *lineWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.found {
		if s := w.buf.String(); strings.Contains(s, "serving HTTP on ") {
			rest := s[strings.Index(s, "serving HTTP on ")+len("serving HTTP on "):]
			if i := strings.IndexAny(rest, " \n"); i > 0 {
				w.found = true
				w.addrC <- rest[:i]
			}
		}
	}
	return len(p), nil
}

func TestRunServe(t *testing.T) {
	dir := t.TempDir()
	g1 := filepath.Join(dir, "fig.txt")
	if err := os.WriteFile(g1, []byte(fig3cInput), 0o644); err != nil {
		t.Fatal(err)
	}
	out := newLineWatcher()
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-serve", "127.0.0.1:0", "-timeout", "2s",
			"-registry", "fig=" + g1, "-max-terminals", "4",
		}, strings.NewReader(""), out, io.Discard)
	}()

	var addr string
	select {
	case addr = <-out.addrC:
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(4 * time.Second):
		t.Fatal("server never announced its address")
	}

	post := func(body string) (int, string) {
		resp, err := http.Post("http://"+addr+"/v1/connect", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}
	if code, body := post(`{"scheme":"fig","labels":["A","C"]}`); code != 200 || !strings.Contains(body, `"method"`) {
		t.Fatalf("connect: %d %s", code, body)
	}
	if code, _ := post(`{"scheme":"ghost","labels":["A"]}`); code != 404 {
		t.Fatalf("unknown scheme: status %d, want 404", code)
	}
	if code, body := post(`{"scheme":"fig","labels":["A","B","C","1","2"]}`); code != 429 {
		t.Fatalf("-max-terminals should shed with 429, got %d %s", code, body)
	}

	// The -timeout context cancels the server; shutdown must be clean.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with: %v", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("server did not shut down after -timeout")
	}
	if !strings.Contains(out.buf.String(), "server stopped") {
		t.Errorf("missing graceful-stop line:\n%s", out.buf.String())
	}
}

func TestServeFlagConflicts(t *testing.T) {
	var out, errOut bytes.Buffer
	for _, args := range [][]string{
		{"-serve", ":0", "-batch", "q.txt"},
		{"-serve", ":0", "-json"},
		{"-max-inflight", "4"},                       // only meaningful with -serve
		{"-cache-shards", "0"},                       // must be >= 1
		{"-cache-shards", "x"},                       // not a number
		{"-cache-shards", "8"},                       // no -serve/-batch/-registry: silently ignored otherwise
		{"-compile", "o.snap", "-cache-shards", "4"}, // serving knob, not an epoch property
	} {
		if err := run(args, strings.NewReader(""), &out, &errOut); err == nil {
			t.Errorf("args %v accepted, want a flag-conflict error", args)
		}
	}
}

func TestRunBatchProfiles(t *testing.T) {
	dir := t.TempDir()
	qpath := filepath.Join(dir, "queries.txt")
	if err := os.WriteFile(qpath, []byte("A C\nA B C\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errOut bytes.Buffer
	args := []string{"-batch", qpath, "-cpuprofile", cpu, "-memprofile", mem}
	if err := run(args, strings.NewReader(fig3cInput), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", f)
		}
	}
}

func TestProfileFlagConflicts(t *testing.T) {
	var out, errOut bytes.Buffer
	for _, args := range [][]string{
		{"-cpuprofile", "c.pprof"},                       // no -batch/-serve: nothing hot to profile
		{"-memprofile", "m.pprof", "-json"},              // same for describe/-json
		{"-compile", "o.snap", "-cpuprofile", "c.pprof"}, // compile is not a serving run
		{"-registry", "a=b", "-memprofile", "m.pprof"},   // batch-less registry only describes
		{"-batch", "q.txt", "-cpuprofile"},               // missing argument
		{"-batch", "q.txt", "-memprofile"},               // missing argument
	} {
		if err := run(args, strings.NewReader(""), &out, &errOut); err == nil {
			t.Errorf("args %v accepted, want a flag-conflict error", args)
		}
	}
}
