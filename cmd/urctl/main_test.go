package main

import (
	"bytes"
	"strings"
	"testing"
)

const companyDB = `
relation emp name dept
relation dept dept floor
relation floorplan floor area
tuple emp ann toys
tuple emp bob tools
tuple dept toys 1
tuple dept tools 2
tuple floorplan 1 100
tuple floorplan 2 250
`

func TestRunQuery(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-query", "name,area"}, strings.NewReader(companyDB), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "plan: join") || !strings.Contains(s, "ann\t100") {
		t.Errorf("output:\n%s", s)
	}
	if !strings.Contains(s, "emp") || !strings.Contains(s, "floorplan") {
		t.Errorf("plan should span three relations:\n%s", s)
	}
}

func TestRunQueryWhere(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-query", "name", "-where", "area=100"},
		strings.NewReader(companyDB), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "(1 tuples)") || !strings.Contains(s, "ann") {
		t.Errorf("output:\n%s", s)
	}
	if strings.Contains(s, "bob") {
		t.Errorf("bob should be filtered out:\n%s", s)
	}
}

func TestRunInterpretations(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-query", "name,floor", "-interpretations", "2"},
		strings.NewReader(companyDB), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ranked interpretations:") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(companyDB), &out); err == nil {
		t.Error("missing -query accepted")
	}
	if err := run([]string{"-query", "ghost"}, strings.NewReader(companyDB), &out); err == nil {
		t.Error("unknown attribute accepted")
	}
	if err := run([]string{"-query", "name", "-where", "nonsense"}, strings.NewReader(companyDB), &out); err == nil {
		t.Error("malformed condition accepted")
	}
	if err := run([]string{"-query", "name"}, strings.NewReader("tuple ghost x"), &out); err == nil {
		t.Error("tuple for undeclared relation accepted")
	}
}
