// Command urctl is the universal-relation interface as a tool: load a
// database file (schemes + tuples, see internal/graphio), then answer an
// attribute-level query — the paper's logically-independent querying,
// end to end.
//
// Usage:
//
//	urctl -query ename,building [-where floor=2] [-interpretations 3] [-timeout d] [file]
//
// The plan minimizes the number of relations when the scheme's class
// admits it (Theorem 3 / Theorem 5); -where conditions are pushed down
// into the selected relations before the (Yannakakis) join.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/graphio"
	"repro/internal/relational"
	"repro/internal/ur"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "urctl:", err)
		os.Exit(1)
	}
}

// run implements the tool; factored out of main for tests.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("urctl", flag.ContinueOnError)
	queryFlag := fs.String("query", "", "comma-separated attribute/relation names (required)")
	whereFlag := fs.String("where", "", "comma-separated attr=value conditions")
	interps := fs.Int("interpretations", 0, "also list up to n ranked interpretations")
	timeout := fs.Duration("timeout", 0, "overall query deadline (0: none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *queryFlag == "" {
		return fmt.Errorf("-query is required")
	}
	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	s, instances, err := graphio.ReadDatabase(in)
	if err != nil {
		return err
	}
	u, err := ur.New(s, instances...)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "schema: %s\n", s)
	fmt.Fprintf(stdout, "acyclicity degree: %s\n", s.Classify())

	query := splitList(*queryFlag)
	var conds []ur.Condition
	if *whereFlag != "" {
		for _, c := range splitList(*whereFlag) {
			parts := strings.SplitN(c, "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad condition %q (want attr=value)", c)
			}
			conds = append(conds, ur.Condition{Attr: parts[0], Value: parts[1]})
		}
	}

	var result *relational.Relation
	var plan ur.Plan
	if len(conds) > 0 {
		result, plan, err = u.AnswerWhere(ctx, query, conds)
	} else {
		result, plan, err = u.Answer(ctx, query)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "plan: join %s (method=%s, relation-minimal=%v)\n",
		strings.Join(plan.Relations, " ⋈ "), plan.Connection.Method,
		plan.Connection.V2Optimal)
	fmt.Fprintf(stdout, "answer %v (%d tuples):\n", result.Attrs, result.Len())
	for _, t := range result.Tuples() {
		fmt.Fprintf(stdout, "  %s\n", strings.Join(t, "\t"))
	}

	if *interps > 0 {
		list, err := u.Interpretations(ctx, query, *interps)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "ranked interpretations:")
		for i, in := range list {
			fmt.Fprintf(stdout, "  %d. %s\n", i+1, strings.Join(in, " "))
		}
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
