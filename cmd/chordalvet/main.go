// Command chordalvet runs the repository's invariant analyzers (see
// internal/analysis) over Go packages. It is a multichecker in both
// senses of go vet's world:
//
//	chordalvet ./...                 # standalone, loads packages itself
//	go vet -vettool=$(chordalvet -print-path) ./...   # driven by go vet
//
// Standalone mode resolves patterns with `go list -deps -export`, so it
// needs no build system and no network. Vettool mode speaks the go
// command's unit protocol: -V=full for build caching, -flags for flag
// discovery, and a single unit.cfg argument per compilation unit.
//
// -print-path installs a stable copy of the running binary under the
// user cache directory and prints its path, so the -vettool argument
// survives `go run`'s temporary build directory.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 driver failure.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run implements the tool; factored out of main for tests.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "-V=full", "--V=full":
			return printVersion(stdout, stderr)
		case "-flags", "--flags":
			// The go command asks which flags the tool supports before
			// forwarding any; chordalvet keeps none.
			fmt.Fprintln(stdout, "[]")
			return 0
		case "-print-path", "--print-path":
			return printPath(stdout, stderr)
		case "help", "-help", "--help", "-h":
			usage(stdout)
			return 0
		}
	}
	if len(args) == 1 && analysis.IsVetConfig(args[0]) {
		return analysis.RunVetTool(args[0], analysis.Suite(), stderr)
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			fmt.Fprintf(stderr, "chordalvet: unknown flag %s\n", a)
			usage(stderr)
			return 2
		}
	}
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "chordalvet: %v\n", err)
		return 2
	}
	ds, err := analysis.RunPackages(pkgs, analysis.Suite())
	if err != nil {
		fmt.Fprintf(stderr, "chordalvet: %v\n", err)
		return 2
	}
	if len(pkgs) > 0 && analysis.Print(stderr, pkgs[0].Fset, ds) {
		return 1
	}
	return 0
}

// usage lists the analyzers and calling modes.
func usage(w io.Writer) {
	fmt.Fprintf(w, `chordalvet checks this repository's architectural invariants.

Usage:
  chordalvet [packages]          analyze packages (default ./...)
  chordalvet unit.cfg            go vet -vettool unit protocol
  chordalvet -print-path         install a stable binary copy and print its path

Analyzers:
`)
	for _, a := range analysis.Suite() {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, doc)
	}
}

// printVersion implements the -V=full handshake `go vet` uses to key its
// build cache: the binary's path and a content hash, in the exact shape
// the go command's toolID parser accepts.
func printVersion(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "chordalvet: %v\n", err)
		return 2
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(stderr, "chordalvet: %v\n", err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(stderr, "chordalvet: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "%s version devel chordalvet buildID=%02x\n", exe, h.Sum(nil))
	return 0
}

// printPath copies the running binary to a stable location under the
// user cache dir and prints it, so
// `go vet -vettool=$(go run ./cmd/chordalvet -print-path)` works even
// though go run deletes its temporary binary.
func printPath(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "chordalvet: %v\n", err)
		return 2
	}
	cacheDir, err := os.UserCacheDir()
	if err != nil {
		fmt.Fprintf(stderr, "chordalvet: %v\n", err)
		return 2
	}
	dst := filepath.Join(cacheDir, "chordalvet", "chordalvet")
	if err := copyExecutable(exe, dst); err != nil {
		fmt.Fprintf(stderr, "chordalvet: %v\n", err)
		return 2
	}
	fmt.Fprintln(stdout, dst)
	return 0
}

// copyExecutable installs src at dst with the executable bit set,
// replacing atomically so a concurrent go vet never sees a torn binary.
func copyExecutable(src, dst string) error {
	if err := os.MkdirAll(filepath.Dir(dst), 0o777); err != nil {
		return err
	}
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	tmp := dst + ".tmp"
	if err := os.WriteFile(tmp, data, 0o755); err != nil {
		return err
	}
	return os.Rename(tmp, dst)
}
