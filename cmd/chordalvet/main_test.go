package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the chordalvet binary once into a temp dir and
// returns its path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "chordalvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building chordalvet: %v\n%s", err, out)
	}
	return bin
}

// badmodDir returns the absolute path of the seeded-violation module.
func badmodDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "badmod"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// wantFindings are one expected diagnostic fragment per analyzer; the
// badmod tree seeds at least one violation for each.
var wantFindings = map[string]string{
	"frozenwrite": "outside frozen.go",
	"poolescape":  "never released",
	"atomicstats": "accessed without its methods",
	"errwrap":     "cuts the wrap chain",
	"ctxfirst":    "root context in library code",
	"hotalloc":    "hot path",
	"spanend":     "without ending span",
}

// TestStandaloneOverBadmod runs the standalone multichecker over the
// known-bad module and checks every analyzer fires.
func TestStandaloneOverBadmod(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = badmodDir(t)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 1 {
		t.Fatalf("chordalvet ./... in badmod: want exit 1, got %v\n%s", err, stderr.Bytes())
	}
	out := stderr.String()
	for name, fragment := range wantFindings {
		if !strings.Contains(out, "("+name+")") || !strings.Contains(out, fragment) {
			t.Errorf("no %s diagnostic (want fragment %q) in output:\n%s", name, fragment, out)
		}
	}
}

// TestStandaloneCleanPackage checks exit 0 and silence on a package with
// no violations.
func TestStandaloneCleanPackage(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command(bin, "./clean")
	cmd.Dir = badmodDir(t)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("chordalvet ./clean: want exit 0, got %v\n%s", err, stderr.Bytes())
	}
	if stderr.Len() != 0 {
		t.Errorf("clean package produced output:\n%s", stderr.String())
	}
}

// TestHelpListsAnalyzers checks the help text names every analyzer.
func TestHelpListsAnalyzers(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-help").Output()
	if err != nil {
		t.Fatalf("chordalvet -help: %v", err)
	}
	for name := range wantFindings {
		if !strings.Contains(string(out), name) {
			t.Errorf("help output does not mention analyzer %s:\n%s", name, out)
		}
	}
}

// TestVettoolOverBadmod drives the binary through `go vet -vettool`,
// exercising the -V=full handshake and the unit.cfg protocol end to end.
func TestVettoolOverBadmod(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = badmodDir(t)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() == 0 {
		t.Fatalf("go vet -vettool over badmod: want failure, got %v\n%s", err, stderr.Bytes())
	}
	out := stderr.String()
	for name, fragment := range wantFindings {
		if !strings.Contains(out, fragment) {
			t.Errorf("go vet missing %s diagnostic (fragment %q):\n%s", name, fragment, out)
		}
	}
}

// TestVersionHandshake checks the -V=full line go vet caches on.
func TestVersionHandshake(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("chordalvet -V=full: %v", err)
	}
	line := strings.TrimSpace(string(out))
	if !strings.Contains(line, " version ") || !strings.Contains(line, "buildID=") {
		t.Errorf("-V=full output %q lacks the go vet tool-ID shape", line)
	}
}
