//chordal:hotpath

// Package hot seeds a hotalloc violation: fmt.Sprintf on an annotated
// hot path.
package hot

import "fmt"

// Key formats a cache key with Sprintf inside the hot path.
func Key(a, b int) string {
	return fmt.Sprintf("%d/%d", a, b) // seeded: hotalloc (Sprintf)
}
