// Package errs seeds errwrap violations: an error formatted with %v and
// a sentinel compared with ==.
package errs

import (
	"errors"
	"fmt"
)

// ErrMissing is the package sentinel.
var ErrMissing = errors.New("missing")

// Lookup formats its cause with %v, cutting the wrap chain.
func Lookup(key string, cause error) error {
	return fmt.Errorf("lookup %s: %v", key, cause) // seeded: errwrap (%v on error)
}

// IsMissing compares errors by identity.
func IsMissing(err error) bool {
	return err == ErrMissing // seeded: errwrap (== comparison)
}
