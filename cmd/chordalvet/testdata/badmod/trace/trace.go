// Package trace is a minimal tracing facade (the spanend analyzer keys
// on the SpanRef type of any package named trace); the spans package
// seeds the violation against it.
package trace

// Trace is one request trace.
type Trace struct {
	open int
}

// SpanRef is a handle onto one span of a Trace.
type SpanRef struct {
	t *Trace
}

// StartSpan opens a child span.
func (t *Trace) StartSpan(name string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	t.open++
	_ = name
	return SpanRef{t: t}
}

// End closes the span.
func (s SpanRef) End() {
	if s.t != nil {
		s.t.open--
	}
}
