package graph

// Grow violates frozen immutability: it writes Frozen fields outside
// frozen.go.
func Grow(f *Frozen) {
	f.M++                            // seeded: frozenwrite
	f.Offsets = append(f.Offsets, 0) // seeded: frozenwrite
}
