// Package graph mimics the repository's graph package closely enough to
// trip the frozenwrite analyzer: a Frozen type whose fields may only be
// written here.
package graph

// Frozen is a stand-in for the repository's immutable CSR view.
type Frozen struct {
	Offsets []int32
	M       int
}

// Freeze builds a Frozen; writes in this file are the sanctioned ones.
func Freeze(offsets []int32, m int) *Frozen {
	f := new(Frozen)
	f.Offsets = offsets
	f.M = m
	return f
}
