// Package pool seeds a poolescape violation: a sync.Pool Get with no
// matching Put.
package pool

import "sync"

var bufs = sync.Pool{New: func() any { return new([]byte) }}

// Sum leaks a pooled buffer: no Put on any return path.
func Sum(data []byte) int {
	b := bufs.Get().(*[]byte) // seeded: poolescape (never released)
	*b = append((*b)[:0], data...)
	n := 0
	for _, x := range *b {
		n += int(x)
	}
	return n
}
