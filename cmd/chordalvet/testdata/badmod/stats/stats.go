// Package stats seeds an atomicstats violation: a plain read of an
// atomic counter field.
package stats

import "sync/atomic"

// Counters mirrors the repository's service stats block.
type Counters struct {
	Hits atomic.Uint64
}

// Snapshot reads the counter without Load.
func Snapshot(c *Counters) uint64 {
	v := c.Hits // seeded: atomicstats (plain access)
	return v.Load()
}
