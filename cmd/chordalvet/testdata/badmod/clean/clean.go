// Package clean has no violations; the smoke test asserts chordalvet is
// silent here.
package clean

import (
	"context"
	"errors"
	"fmt"
)

// ErrEmpty is the package sentinel.
var ErrEmpty = errors.New("empty")

// Run wraps its errors and takes ctx first.
func Run(ctx context.Context, key string) error {
	if key == "" {
		return fmt.Errorf("run: %w", ErrEmpty)
	}
	return ctx.Err()
}

// IsEmpty uses errors.Is as the analyzers demand.
func IsEmpty(err error) bool { return errors.Is(err, ErrEmpty) }
