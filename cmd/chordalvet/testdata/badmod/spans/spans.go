// Package spans seeds a spanend violation: a phase span started on the
// request path is left open on the early-error return.
package spans

import (
	"errors"

	"badmod/trace"
)

var errFailed = errors.New("failed")

// Handle starts a span but forgets to end it before the error return.
func Handle(tr *trace.Trace, fail bool) error {
	sp := tr.StartSpan("work")
	if fail {
		return errFailed // seeded: spanend (return without ending span)
	}
	sp.End()
	return nil
}
