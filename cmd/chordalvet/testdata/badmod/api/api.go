// Package api seeds ctxfirst violations: an exported function taking
// ctx second, and library code minting a root context.
package api

import "context"

// Query takes its context after the key.
func Query(key string, ctx context.Context) error { // seeded: ctxfirst (ctx not first)
	<-ctx.Done()
	return ctx.Err()
}

// Fire ignores its caller and makes a root context.
func Fire() error {
	return Query("k", context.Background()) // seeded: ctxfirst (root context)
}
