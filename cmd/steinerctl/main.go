// Command steinerctl answers a minimal-connection (Steiner) query on a
// bipartite graph, dispatching by the paper's taxonomy: Algorithm 2 on
// (6,2)-chordal inputs, Algorithm 1 (relation-minimizing) on V1-chordal
// V1-conformal inputs, and exact/heuristic search otherwise. It also lists
// ranked alternative interpretations on request.
//
// Usage:
//
//	steinerctl -terminals A,B,C [-interpretations n] [-timeout d] [file]
//
// -timeout bounds the whole query (solvers check the deadline in their hot
// loops); on expiry the tool fails with context.DeadlineExceeded.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/steiner"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fatal(err)
	}
}

// run implements the tool; factored out of main for tests.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("steinerctl", flag.ContinueOnError)
	termFlag := fs.String("terminals", "", "comma-separated node names to connect (required)")
	interps := fs.Int("interpretations", 0, "also list up to n ranked interpretations")
	timeout := fs.Duration("timeout", 0, "overall query deadline (0: none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *termFlag == "" {
		return fmt.Errorf("-terminals is required")
	}
	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	b, err := graphio.ReadBipartite(in)
	if err != nil {
		return err
	}
	g := b.G()
	var terminals []int
	for _, name := range strings.Split(*termFlag, ",") {
		name = strings.TrimSpace(name)
		id, ok := g.ID(name)
		if !ok {
			return fmt.Errorf("unknown node %q", name)
		}
		terminals = append(terminals, id)
	}

	conn := core.New(b)
	fmt.Fprint(stdout, conn.Describe())
	answer, err := conn.Connect(ctx, terminals)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "method:    %s\n", answer.Method)
	fmt.Fprintf(stdout, "rationale: %s\n", answer.Rationale)
	fmt.Fprintf(stdout, "nodes (%d total, %d from V2): %s\n",
		answer.Tree.Nodes.Len(), steiner.V2Count(b, answer.Tree),
		strings.Join(g.Labels(answer.Tree.Nodes), " "))
	fmt.Fprint(stdout, "tree edges:")
	for _, e := range answer.Tree.Edges {
		fmt.Fprintf(stdout, " %s-%s", g.Label(e.U), g.Label(e.V))
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "guarantees: total-minimum=%v V2-minimum=%v\n", answer.Optimal, answer.V2Optimal)

	if *interps > 0 {
		list, err := conn.Interpretations(ctx, terminals, g.N(), *interps)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "ranked interpretations:")
		for i, in := range list {
			fmt.Fprintf(stdout, "  %d. %s (auxiliary: %s)\n", i+1,
				strings.Join(g.Labels(in.Nodes), " "),
				strings.Join(g.Labels(in.Auxiliary), " "))
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "steinerctl:", err)
	os.Exit(1)
}
