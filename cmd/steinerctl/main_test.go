package main

import (
	"bytes"
	"strings"
	"testing"
)

const demoInput = `
v1 A
v1 B
v1 X
v2 H
v2 W1
v2 W2
edge A H
edge B H
edge A W1
edge X W1
edge X W2
edge B W2
`

func TestRunConnect(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-terminals", "A,B"}, strings.NewReader(demoInput), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "method:") || !strings.Contains(s, "tree edges:") {
		t.Errorf("output incomplete:\n%s", s)
	}
	// The optimal connection is A-H-B.
	if !strings.Contains(s, "nodes (3 total, 1 from V2)") {
		t.Errorf("expected the hub route:\n%s", s)
	}
}

func TestRunInterpretations(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-terminals", "A,B", "-interpretations", "3"},
		strings.NewReader(demoInput), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ranked interpretations:") {
		t.Errorf("interpretations missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "2.") {
		t.Errorf("expected at least two interpretations:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(demoInput), &out); err == nil {
		t.Error("missing -terminals accepted")
	}
	if err := run([]string{"-terminals", "A,GHOST"}, strings.NewReader(demoInput), &out); err == nil {
		t.Error("unknown terminal accepted")
	}
	if err := run([]string{"-terminals", "A"}, strings.NewReader("nonsense"), &out); err == nil {
		t.Error("bad graph accepted")
	}
}
