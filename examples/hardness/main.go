// Hardness demo: the paper's two NP-completeness gadgets, executed.
//
// Theorem 2 reduces exact cover by 3-sets to the Steiner problem on
// V1-chordal, V1-conformal bipartite graphs (Fig 6): a tree over P with at
// most 4q+1 nodes exists iff the X3C instance is solvable. The remark
// after Corollary 4 reduces the cardinality Steiner problem in chordal
// graphs to pseudo-Steiner w.r.t. V2 on V1-chordal graphs (Fig 9).
//
//	go run ./examples/hardness
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/chordality"
	"repro/internal/fixtures"
	"repro/internal/gen"
	"repro/internal/steiner"
)

func main() {
	// --- Theorem 2: the Fig 6 instance. ---
	inst := fixtures.Fig6Instance()
	fmt.Printf("X3C instance: |X| = %d, C = %v\n", 3*inst.Q, inst.Triples)
	fmt.Printf("solvable: %v\n", inst.Solve())
	red, err := steiner.ReduceX3C(inst)
	if err != nil {
		log.Fatal(err)
	}
	g := red.B.G()
	fmt.Printf("gadget: %d nodes, %d arcs; V1-chordal=%v V1-conformal=%v\n",
		g.N(), g.M(), chordality.IsV1Chordal(red.B), chordality.IsV1Conformal(red.B))
	tree, err := steiner.Exact(g, red.Terminals)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Steiner optimum over P = V2: %d nodes (budget 4q+1 = %d)\n",
		tree.Nodes.Len(), red.Budget)
	fmt.Print("selected triples:")
	for _, v := range tree.Nodes {
		for i, tv := range red.TripleVs {
			if v == tv {
				fmt.Printf(" c%d=%v", i+1, inst.Triples[i])
			}
		}
	}
	fmt.Println(" — an exact 3-cover, read off the tree")

	// An unsolvable variant overshoots the budget.
	broken := inst
	broken.Triples = inst.Triples[1:]
	red2, err := steiner.ReduceX3C(broken)
	if err != nil {
		log.Fatal(err)
	}
	if t2, err := steiner.Exact(red2.B.G(), red2.Terminals); err == nil {
		fmt.Printf("without c1 (unsolvable): optimum %d > budget %d\n\n",
			t2.Nodes.Len(), red2.Budget)
	} else {
		fmt.Printf("without c1 (unsolvable): terminals not even connectable (%v)\n\n", err)
	}

	// --- Corollary 4 remark: the CSPC reduction. ---
	r := rand.New(rand.NewSource(42))
	ch := gen.RandomChordalGraph(r, 8, 3)
	fmt.Printf("chordal graph: %d nodes, %d arcs, chordal=%v\n",
		ch.N(), ch.M(), chordality.IsChordal(ch))
	cs := steiner.ReduceCSPC(ch)
	fmt.Printf("subdivision gadget: V1-chordal=%v V1-conformal=%v\n",
		chordality.IsV1Chordal(cs.B), chordality.IsV1Conformal(cs.B))
	terms := []int{cs.NodeVs[0], cs.NodeVs[ch.N()-1]}
	direct, err := steiner.Exact(ch, []int{0, ch.N() - 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct min-arc connection in the chordal graph: %d arcs\n",
		direct.Nodes.Len()-1)
	viaGadget, err := steiner.Exact(cs.B.G(), terms)
	if err != nil {
		log.Fatal(err)
	}
	v2 := steiner.V2Count(cs.B, viaGadget)
	fmt.Printf("V2 nodes in the gadget connection: %d (equal by the reduction)\n", v2)
}
