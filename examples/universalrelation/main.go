// Universal-relation interface demo: the workload the paper's introduction
// motivates. A populated company database is queried purely by attribute
// names; the system finds the minimal connection on the attribute/relation
// bipartite graph (Algorithm 1: fewest relations, Theorem 3), evaluates
// the corresponding join with the Yannakakis semijoin program, and offers
// ranked alternative readings for ambiguous queries.
//
//	go run ./examples/universalrelation
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/relational"
	"repro/internal/schema"
	"repro/internal/ur"
)

func main() {
	// Schema: a classic employee/department/project database. The scheme
	// hypergraph is α-acyclic, so relation-minimal plans are polynomial.
	s := schema.MustNew(
		schema.RelScheme{Name: "employee", Attrs: []string{"ename", "deptno"}},
		schema.RelScheme{Name: "department", Attrs: []string{"deptno", "dname", "floor"}},
		schema.RelScheme{Name: "location", Attrs: []string{"floor", "building"}},
		schema.RelScheme{Name: "assignment", Attrs: []string{"ename", "projno"}},
		schema.RelScheme{Name: "project", Attrs: []string{"projno", "pname", "budget"}},
	)
	fmt.Printf("schema: %s\n", s)
	fmt.Printf("acyclicity degree: %s\n\n", s.Classify())

	employee := relational.NewRelation("employee", "ename", "deptno")
	employee.Insert("ann", "d1")
	employee.Insert("bob", "d2")
	employee.Insert("cam", "d1")
	department := relational.NewRelation("department", "deptno", "dname", "floor")
	department.Insert("d1", "toys", "2")
	department.Insert("d2", "tools", "3")
	location := relational.NewRelation("location", "floor", "building")
	location.Insert("2", "north")
	location.Insert("3", "south")
	assignment := relational.NewRelation("assignment", "ename", "projno")
	assignment.Insert("ann", "p1")
	assignment.Insert("bob", "p1")
	assignment.Insert("cam", "p2")
	project := relational.NewRelation("project", "projno", "pname", "budget")
	project.Insert("p1", "atlas", "100")
	project.Insert("p2", "borel", "250")

	u, err := ur.New(s, employee, department, location, assignment, project)
	if err != nil {
		log.Fatal(err)
	}

	queries := [][]string{
		{"ename", "dname"},           // one hop
		{"ename", "building"},        // three relations
		{"pname", "dname"},           // across the two branches
		{"budget", "floor", "ename"}, // three terminals
	}
	for _, q := range queries {
		res, plan, err := u.Answer(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %v\n", q)
		fmt.Printf("  plan: join %s (%d relations, V2-minimum=%v, method=%s)\n",
			strings.Join(plan.Relations, " ⋈ "), plan.PlanV2Count(),
			plan.Connection.V2Optimal, plan.Connection.Method)
		fmt.Printf("  answer %v:\n", res.Attrs)
		for _, t := range res.Tuples() {
			fmt.Printf("    %v\n", t)
		}
	}

	// Disambiguation: plural readings of an ambiguous query, minimal
	// first.
	fmt.Println("interpretations of {ename, floor}:")
	interps, err := u.Interpretations(context.Background(), []string{"ename", "floor"}, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, in := range interps {
		fmt.Printf("  %d. %s\n", i+1, strings.Join(in, " "))
	}
}
