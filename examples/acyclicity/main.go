// Acyclicity-hierarchy tour: one schema per rung of the ladder
// Berge ⊂ γ ⊂ β ⊂ α ⊂ cyclic, with the witness structure that separates
// it from the rung above, and the graph-side view of Theorem 1.
//
//	go run ./examples/acyclicity
package main

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/chordality"
	"repro/internal/schema"
)

func main() {
	cases := []struct {
		rung string
		s    *schema.Schema
		why  string
	}{
		{
			"Berge-acyclic",
			schema.MustNew(
				schema.RelScheme{Name: "emp", Attrs: []string{"ename", "deptno"}},
				schema.RelScheme{Name: "dept", Attrs: []string{"deptno", "floor"}},
			),
			"relations pairwise share at most one attribute, no cycle at all",
		},
		{
			"gamma-acyclic",
			schema.MustNew(
				schema.RelScheme{Name: "flight", Attrs: []string{"from", "to"}},
				schema.RelScheme{Name: "leg", Attrs: []string{"from", "to", "aircraft"}},
			),
			"two relations share two attributes (a Berge cycle) but nest",
		},
		{
			"beta-acyclic",
			schema.MustNew(
				schema.RelScheme{Name: "r1", Attrs: []string{"a", "b"}},
				schema.RelScheme{Name: "r2", Attrs: []string{"b", "c"}},
				schema.RelScheme{Name: "r3", Attrs: []string{"a", "b", "c"}},
			),
			"a gamma-triangle: r1/r3 and r3/r2 overlap asymmetrically",
		},
		{
			"alpha-acyclic",
			schema.MustNew(
				schema.RelScheme{Name: "r1", Attrs: []string{"a", "b"}},
				schema.RelScheme{Name: "r2", Attrs: []string{"b", "c"}},
				schema.RelScheme{Name: "r3", Attrs: []string{"c", "a"}},
				schema.RelScheme{Name: "all", Attrs: []string{"a", "b", "c"}},
			),
			"a covered triangle: GYO succeeds but the sub-schema {r1,r2,r3} is cyclic",
		},
		{
			"cyclic",
			schema.MustNew(
				schema.RelScheme{Name: "r1", Attrs: []string{"a", "b"}},
				schema.RelScheme{Name: "r2", Attrs: []string{"b", "c"}},
				schema.RelScheme{Name: "r3", Attrs: []string{"c", "a"}},
			),
			"the bare triangle: GYO gets stuck",
		},
	}

	for _, c := range cases {
		h := c.s.Hypergraph()
		inc := bipartite.FromHypergraph(h)
		cl := chordality.Classify(inc.B)
		fmt.Printf("%-14s %s\n", c.rung, c.s)
		fmt.Printf("    why here: %s\n", c.why)
		fmt.Printf("    measured degree: %s\n", h.Classify())
		fmt.Printf("    graph side (Theorem 1): (4,1)=%v (6,2)=%v (6,1)=%v alphaV1=%v\n",
			cl.Chordal41, cl.Chordal62, cl.Chordal61, cl.AlphaV1())
		if bc := h.FindBergeCycle(); bc != nil {
			fmt.Printf("    Berge-cycle witness through %d edges\n", len(bc.Edges))
		}
		if tr := h.FindGammaTriangle(); tr != nil {
			fmt.Printf("    gamma-triangle witness: (%s, %s, %s)\n",
				h.EdgeName(tr.E1), h.EdgeName(tr.E2), h.EdgeName(tr.E3))
		}
		if w := h.ConformalWitness(); w != nil {
			fmt.Printf("    conformality witness (uncovered clique): %v\n", h.NodeLabels(w))
		}
		if parent, ok := h.JoinTree(); ok {
			fmt.Printf("    join tree parents: %v\n", parent)
		} else {
			fmt.Printf("    no join tree (not alpha-acyclic)\n")
		}
		fmt.Println()
	}
}
