// Entity–relationship demo: the paper's Fig 1 flow. The user names two
// concepts, EMPLOYEE and DATE, without saying how they relate; the system
// proposes connections on the object graph ranked by the number of
// auxiliary concepts — the birthdate reading first (no auxiliary object),
// then the works-in-department reading (one auxiliary object).
//
//	go run ./examples/ermodel
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/er"
)

func main() {
	s := er.Fig1Scheme()
	fmt.Println("entity-relationship scheme (the paper's Fig 1):")
	for _, o := range s.Objects() {
		if len(o.Components) == 0 {
			fmt.Printf("  %-12s %s\n", o.Kind, o.Name)
		} else {
			fmt.Printf("  %-12s %s = (%s)\n", o.Kind, o.Name, strings.Join(o.Components, ", "))
		}
	}
	fmt.Printf("strictly layered: %v (WORKS_IN carries DATE directly)\n\n", s.StrictlyLayered())

	for _, query := range [][]string{
		{"EMPLOYEE", "DATE"},
		{"NAME", "BUDGET"},
		{"DEPARTMENT", "NAME"},
	} {
		interps, err := s.Interpretations(context.Background(), query, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %v:\n", query)
		for i, in := range interps {
			aux := "none"
			if len(in.Auxiliary) > 0 {
				aux = strings.Join(in.Auxiliary, ", ")
			}
			fmt.Printf("  reading %d: connect via {%s} (auxiliary objects: %s)\n",
				i+1, strings.Join(in.Objects, ", "), aux)
		}
		fmt.Println()
	}

	// A strictly layered variant: relationships aggregate only entities,
	// so the object graph is bipartite and the full chordality machinery
	// applies.
	layered := er.MustScheme(
		er.Object{Name: "ssn", Kind: er.KindAttribute},
		er.Object{Name: "dno", Kind: er.KindAttribute},
		er.Object{Name: "PERSON", Kind: er.KindEntity, Components: []string{"ssn"}},
		er.Object{Name: "DEPT", Kind: er.KindEntity, Components: []string{"dno"}},
		er.Object{Name: "MEMBER", Kind: er.KindRelationship, Components: []string{"PERSON", "DEPT"}},
	)
	b, err := layered.Bipartite()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layered scheme bipartite view: %d objects on the entity side, %d on the other\n",
		len(b.V2()), len(b.V1()))
}
