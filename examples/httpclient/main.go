// HTTP client example: boot the chordalctl HTTP surface in-process
// (internal/httpd over a two-scheme Registry), then drive it with plain
// net/http requests exactly as an external consumer would — list the
// schemes, answer minimal-connection queries by label, run a batch,
// read the cache stats, and shut down gracefully.
//
//	go run ./examples/httpclient
//
// Against a standalone server, start `chordalctl -serve :8080 -registry
// library=lib.txt,payroll=pay.txt` and point the same requests at it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	chordal "repro"
	"repro/internal/httpd"
)

// library builds a small conceptual scheme: attributes on V1, relation
// schemes on V2.
func library() *chordal.Bipartite {
	b := chordal.NewBipartite()
	attrs := map[string]int{}
	for _, a := range []string{"reader", "book", "author", "branch"} {
		attrs[a] = b.AddV1(a)
	}
	for name, over := range map[string][]string{
		"borrows": {"reader", "book"},
		"wrote":   {"author", "book"},
		"holds":   {"branch", "book"},
	} {
		r := b.AddV2(name)
		for _, a := range over {
			b.AddEdge(attrs[a], r)
		}
	}
	return b
}

func payroll() *chordal.Bipartite {
	b := chordal.NewBipartite()
	e := b.AddV1("ename")
	f := b.AddV1("floor")
	w := b.AddV2("works")
	b.AddEdge(e, w)
	b.AddEdge(f, w)
	return b
}

func main() {
	// Compile both schemes into a registry and serve it on a loopback port.
	reg := chordal.NewRegistry()
	reg.Set("library", library())
	reg.Set("payroll", payroll())

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	base := "http://" + l.Addr().String()
	ctx, stop := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() {
		served <- httpd.Serve(ctx, l, httpd.New(reg, httpd.WithMaxInFlight(64)), time.Second)
	}()
	fmt.Println("serving on", base)

	// GET /v1/schemes — what can this server answer?
	var schemes httpd.SchemesResponse
	getJSON(base+"/v1/schemes", &schemes)
	for _, s := range schemes.Schemes {
		fmt.Printf("scheme %q: %d+%d nodes, %d arcs, guarantee: %s\n",
			s.Name, s.V1Nodes, s.V2Nodes, s.Arcs, s.Guarantee)
	}

	// POST /v1/connect — how are reader and author conceptually connected?
	var conn httpd.ConnectResponse
	postJSON(base+"/v1/connect", httpd.ConnectRequest{
		Scheme:    "library",
		Labels:    []string{"reader", "author"},
		TimeoutMS: 2000,
	}, &conn)
	fmt.Printf("reader–author via %s: %v (optimal=%v)\n", conn.Method, conn.Labels, conn.Optimal)

	// The same query with ranked alternative interpretations.
	postJSON(base+"/v1/connect", httpd.ConnectRequest{
		Scheme:          "library",
		Labels:          []string{"reader", "author"},
		Interpretations: &httpd.InterpSpec{MaxAux: 3, Limit: 3},
	}, &conn)
	for i, ip := range conn.Interpretations {
		fmt.Printf("  interpretation %d: %v\n", i+1, ip.Labels)
	}

	// POST /v1/batch — many queries, one round trip, answers in order.
	var batch httpd.BatchResponse
	postJSON(base+"/v1/batch", httpd.BatchRequest{
		Scheme:  "library",
		Queries: [][]int{{0, 1}, {0, 2}, {0, 1}, {99}},
	}, &batch)
	for i, item := range batch.Results {
		if item.Error != nil {
			fmt.Printf("batch %d: %s (%d %s)\n", i+1, item.Error.Message, item.Error.Status, item.Error.Code)
			continue
		}
		fmt.Printf("batch %d: %v\n", i+1, item.Answer.Labels)
	}

	// GET /v1/stats — the duplicate batch query above was a cache hit.
	var stats httpd.StatsResponse
	getJSON(base+"/v1/stats", &stats)
	st := stats.Schemes["library"]
	fmt.Printf("library cache: %d hits, %d misses, %d entries\n", st.Hits, st.Misses, st.Entries)

	// Cancel the serve context: graceful shutdown — outstanding solver work
	// is canceled and already-computed responses flush before the server
	// fully stops.
	stop()
	if err := <-served; err != nil {
		log.Fatal("shutdown:", err)
	}
	fmt.Println("server stopped cleanly")
}

func getJSON(url string, dst any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, dst)
}

func postJSON(url string, body, dst any) {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, dst)
}

func decode(resp *http.Response, dst any) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		log.Fatalf("%s: %s: %s", resp.Request.URL, resp.Status, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatal(err)
	}
}
