// Quickstart: build a bipartite conceptual scheme, classify it against the
// paper's chordality taxonomy, and answer a minimal-connection query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	chordal "repro"
	"repro/internal/steiner"
)

func main() {
	// A small library schema as a bipartite graph: V1 holds attributes,
	// V2 holds relation schemes.
	b := chordal.NewBipartite()
	attrs := map[string]int{}
	for _, a := range []string{"reader", "book", "author", "branch"} {
		attrs[a] = b.AddV1(a)
	}
	rels := map[string]int{}
	for name, over := range map[string][]string{
		"borrows": {"reader", "book"},
		"wrote":   {"author", "book"},
		"stocks":  {"branch", "book"},
	} {
		rels[name] = b.AddV2(name)
		for _, a := range over {
			b.AddEdge(attrs[a], rels[name])
		}
	}

	// Classify once; the connector picks the strongest applicable
	// algorithm for every query (Theorems 3 and 5).
	conn := chordal.NewConnector(b)
	fmt.Print(conn.Describe())

	// "Connect reader and author": which relations must a query over
	// those attributes join?
	answer, err := conn.Connect([]int{attrs["reader"], attrs["author"]})
	if err != nil {
		log.Fatal(err)
	}
	g := b.G()
	fmt.Printf("\nquery {reader, author} answered by %s:\n", answer.Method)
	fmt.Printf("  connection: %s\n", strings.Join(g.Labels(answer.Tree.Nodes), " "))
	fmt.Printf("  relations used: %d (V2-minimum: %v)\n",
		steiner.V2Count(b, answer.Tree), answer.V2Optimal)
	fmt.Printf("  rationale: %s\n", answer.Rationale)

	// Ranked alternatives, most immediate interpretation first.
	fmt.Println("\nranked interpretations:")
	for i, in := range conn.Interpretations([]int{attrs["reader"], attrs["author"]}, g.N(), 3) {
		fmt.Printf("  %d. %s\n", i+1, strings.Join(g.Labels(in.Nodes), " "))
	}
}
