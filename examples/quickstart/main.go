// Quickstart: build a bipartite conceptual scheme, classify it against the
// paper's chordality taxonomy, and answer minimal-connection queries with
// the v2 API — Open once, then context-aware, option-driven Connect calls.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	chordal "repro"
	"repro/internal/steiner"
)

func main() {
	// A small library schema as a bipartite graph: V1 holds attributes,
	// V2 holds relation schemes.
	b := chordal.NewBipartite()
	attrs := map[string]int{}
	for _, a := range []string{"reader", "book", "author", "branch"} {
		attrs[a] = b.AddV1(a)
	}
	rels := map[string]int{}
	for name, over := range map[string][]string{
		"borrows": {"reader", "book"},
		"wrote":   {"author", "book"},
		"stocks":  {"branch", "book"},
	} {
		rels[name] = b.AddV2(name)
		for _, a := range over {
			b.AddEdge(attrs[a], rels[name])
		}
	}

	// Compile + classify once; the service picks the strongest applicable
	// algorithm for every query (Theorems 3 and 5), caches answers, and
	// honors deadlines inside the solvers.
	svc := chordal.Open(b, chordal.WithCacheSize(256))
	conn := svc.Connector()
	fmt.Print(conn.Describe())

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()

	// "Connect reader and author": which relations must a query over
	// those attributes join? Ask for ranked alternatives in the same call.
	answer, err := svc.Connect(ctx, []int{attrs["reader"], attrs["author"]},
		chordal.WithInterpretations(b.G().N(), 3))
	if err != nil {
		log.Fatal(err)
	}
	g := b.G()
	fmt.Printf("\nquery {reader, author} answered by %s:\n", answer.Method)
	fmt.Printf("  connection: %s\n", strings.Join(g.Labels(answer.Tree.Nodes), " "))
	fmt.Printf("  relations used: %d (V2-minimum: %v)\n",
		steiner.V2Count(b, answer.Tree), answer.V2Optimal)
	fmt.Printf("  rationale: %s\n", answer.Rationale)

	// Ranked alternatives, most immediate interpretation first.
	fmt.Println("\nranked interpretations:")
	for i, in := range answer.Interps {
		fmt.Printf("  %d. %s\n", i+1, strings.Join(g.Labels(in.Nodes), " "))
	}

	// Malformed queries are rejected at the boundary with typed errors.
	if _, err := svc.Connect(ctx, []int{attrs["reader"], attrs["reader"]}); err != nil {
		fmt.Printf("\nduplicate terminal rejected: %v\n", err)
	}
}
