// Schema-design demo: take a cyclic database scheme, measure where it sits
// in the acyclicity ladder, build its α-acyclic cover (triangulation +
// maximal cliques — the design methodology of the paper's reference [4]),
// and show the cover unlocks both the Yannakakis evaluation and the
// polynomial relation-minimal planning of Theorem 3.
//
//	go run ./examples/schemadesign
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/chordality"
	"repro/internal/schema"
	"repro/internal/ur"
)

func main() {
	// A cyclic scheme: parts/suppliers/projects with a triangle of binary
	// links plus a 4-cycle through warehouses.
	s := schema.MustNew(
		schema.RelScheme{Name: "supplies", Attrs: []string{"supplier", "part"}},
		schema.RelScheme{Name: "uses", Attrs: []string{"project", "part"}},
		schema.RelScheme{Name: "contracts", Attrs: []string{"supplier", "project"}},
		schema.RelScheme{Name: "stores", Attrs: []string{"part", "warehouse"}},
		schema.RelScheme{Name: "ships", Attrs: []string{"warehouse", "supplier"}},
	)
	fmt.Printf("original scheme: %s\n", s)
	fmt.Printf("acyclicity degree: %s\n", s.Classify())
	if _, ok := s.JoinTree(); !ok {
		fmt.Println("no join tree exists: semijoin programs and Theorem 3 planning unavailable")
	}
	inc := s.Bipartite()
	cl := chordality.Classify(inc.B)
	fmt.Printf("bipartite view: (6,2)-chordal=%v  V1-chordal∧V1-conformal=%v\n\n",
		cl.Chordal62, cl.AlphaV1())

	cover := s.Acyclify()
	fmt.Printf("acyclic cover (fill=%d attribute pairs): %s\n", cover.Fill, cover.Schema)
	fmt.Printf("cover degree: %s\n", cover.Schema.Classify())
	for _, r := range s.Relations {
		fmt.Printf("  %-10s embeds into %s\n", r.Name, cover.Embedding[r.Name])
	}
	parent, ok := cover.Schema.JoinTree()
	if !ok {
		log.Fatal("cover unexpectedly cyclic")
	}
	fmt.Printf("cover join tree parents: %v\n\n", parent)

	// Planning on the cover is polynomial with the Theorem 3 guarantee.
	u, err := ur.New(cover.Schema)
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range [][]string{
		{"supplier", "warehouse"},
		{"project", "warehouse"},
	} {
		plan, err := u.Plan(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %v → join %s (method=%s, relation-minimal=%v)\n",
			q, strings.Join(plan.Relations, " ⋈ "),
			plan.Connection.Method, plan.Connection.V2Optimal)
	}
}
