package chordal_test

import (
	"context"
	"sync"
	"testing"

	chordal "repro"
)

// TestFacadeFrozenService exercises the compiled-scheme serving surface of
// the facade: Freeze, ClassifyFrozen, NewService, ConnectBatch.
func TestFacadeFrozenService(t *testing.T) {
	b := chordal.NewBipartite()
	labels := []string{"A", "B", "C", "D"}
	var v1 []int
	for _, l := range labels {
		v1 = append(v1, b.AddV1(l))
	}
	r1 := b.AddV2("r1")
	r2 := b.AddV2("r2")
	r3 := b.AddV2("r3")
	b.AddEdge(v1[0], r1)
	b.AddEdge(v1[1], r1)
	b.AddEdge(v1[1], r2)
	b.AddEdge(v1[2], r2)
	b.AddEdge(v1[2], r3)
	b.AddEdge(v1[3], r3)

	fb := chordal.Freeze(b)
	if got, want := chordal.ClassifyFrozen(fb), chordal.Classify(b); got != want {
		t.Fatalf("ClassifyFrozen = %+v, Classify = %+v", got, want)
	}
	fg := chordal.FreezeGraph(b.G())
	if fg.N() != b.N() || fg.M() != b.M() {
		t.Fatalf("FreezeGraph size mismatch")
	}

	conn := chordal.NewConnector(b)
	if conn.Frozen() == nil {
		t.Fatal("connector should expose its frozen view")
	}
	svc := chordal.NewService(conn, 4, 8) // deprecated shim still serves

	queries := [][]int{
		{v1[0], v1[3]},
		{v1[0], v1[2]},
		{v1[0], v1[3]}, // duplicate
	}
	var wg sync.WaitGroup
	results := make([][]chordal.BatchResult, 4)
	for w := range results {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = svc.ConnectBatch(context.Background(), queries)
		}(w)
	}
	wg.Wait()
	for _, res := range results {
		if len(res) != len(queries) {
			t.Fatalf("batch returned %d results", len(res))
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("query %d: %v", i, r.Err)
			}
		}
		if !res[0].Conn.Tree.Nodes.Equal(res[2].Conn.Tree.Nodes) {
			t.Error("duplicate queries disagree")
		}
	}
	st := svc.Stats()
	if st.Misses > uint64(len(queries)) {
		t.Errorf("expected at most %d distinct computations, stats %+v", len(queries), st)
	}
}
