package chordal_test

import (
	"context"
	"fmt"

	chordal "repro"
)

// Example classifies the paper's Fig 3c graph (a 6-cycle with one chord)
// and answers a connection query.
func Example() {
	b := chordal.NewBipartite()
	for _, l := range []string{"A", "B", "C"} {
		b.AddV1(l)
	}
	for _, l := range []string{"1", "2", "3"} {
		b.AddV2(l)
	}
	g := b.G()
	for _, arc := range [][2]string{
		{"A", "1"}, {"B", "1"}, {"B", "2"}, {"C", "2"}, {"C", "3"}, {"A", "3"}, {"C", "1"},
	} {
		b.AddEdge(g.MustID(arc[0]), g.MustID(arc[1]))
	}

	cl := chordal.Classify(b)
	fmt.Println("(6,1)-chordal:", cl.Chordal61)
	fmt.Println("(6,2)-chordal:", cl.Chordal62)

	// Not (6,2)-chordal, so the connector dispatches Algorithm 1: the
	// answer minimizes the number of V2 nodes (one: the hub 1), not the
	// total node count — exactly the distinction the paper's remark after
	// Corollary 4 makes on this very graph.
	conn := chordal.NewConnector(b)
	answer, err := conn.Connect(context.Background(), g.IDs("A", "B"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("V2-minimum guaranteed:", answer.V2Optimal)
	fmt.Println("total-minimum guaranteed:", answer.Optimal)
	// Output:
	// (6,1)-chordal: true
	// (6,2)-chordal: false
	// V2-minimum guaranteed: true
	// total-minimum guaranteed: false
}

// ExampleClassify shows the hypergraph view of a relational scheme: the
// classic covered triangle is α-acyclic but no stronger.
func ExampleClassify() {
	h := chordal.NewHypergraph()
	h.AddEdgeLabels("r1", "a", "b")
	h.AddEdgeLabels("r2", "b", "c")
	h.AddEdgeLabels("r3", "c", "a")
	h.AddEdgeLabels("all", "a", "b", "c")
	fmt.Println(h.Classify())

	b := chordal.FromHypergraph(h)
	cl := chordal.Classify(b)
	fmt.Println("V1-chordal and V1-conformal:", cl.AlphaV1())
	fmt.Println("(6,1)-chordal:", cl.Chordal61)
	// Output:
	// alpha-acyclic
	// V1-chordal and V1-conformal: true
	// (6,1)-chordal: false
}

// ExampleAlgorithm1 plans a relation-minimal connection on an α-acyclic
// scheme: connecting a and d needs both relations.
func ExampleAlgorithm1() {
	h := chordal.NewHypergraph()
	h.AddEdgeLabels("r1", "a", "b", "c")
	h.AddEdgeLabels("r2", "c", "d")
	b := chordal.FromHypergraph(h)
	g := b.G()

	tree, err := chordal.Algorithm1(b, g.IDs("a", "d"))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("relations used:", tree.CountSide(func(v int) bool {
		_, isRel := map[string]bool{"r1": true, "r2": true}[g.Label(v)]
		return isRel
	}))
	// Output:
	// relations used: 2
}
