#!/usr/bin/env bash
# End-to-end smoke of the HTTP surface: build chordalctl, boot -serve on a
# loopback port, run a scripted batch of curl queries, and diff the
# responses against the checked-in golden transcript. Run with --update to
# regenerate the golden file after an intentional wire-format change.
#
# Usage: scripts/http_e2e.sh [--update]
set -euo pipefail

cd "$(dirname "$0")/.."
GOLDEN=scripts/testdata/http_e2e.golden
WORK=$(mktemp -d)
SERVER_PID=""
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/chordalctl" ./cmd/chordalctl

# The paper's Figure 3(c) scheme (with its single chord) plus a tiny tree.
cat > "$WORK/library.txt" <<'EOF'
v1 A
v1 B
v1 C
v2 1
v2 2
v2 3
edge A 1
edge B 1
edge B 2
edge C 2
edge C 3
edge A 3
edge C 1
EOF
cat > "$WORK/tiny.txt" <<'EOF'
v1 x
v1 y
v2 r
edge x r
edge y r
EOF

# -cache-shards is pinned so the per-shard occupancy in /v1/stats is
# machine-independent (the default shard count tracks GOMAXPROCS).
"$WORK/chordalctl" -serve 127.0.0.1:0 \
  -registry "library=$WORK/library.txt,tiny=$WORK/tiny.txt" \
  -max-terminals 5 -cache-shards 4 -log-format json > "$WORK/server.log" 2>&1 &
SERVER_PID=$!

# Wait for the announced listen address.
ADDR=""
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^chordalctl: serving HTTP on \([^ ]*\).*/\1/p' "$WORK/server.log")
  [ -n "$ADDR" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/server.log" >&2; echo "server died" >&2; exit 1; }
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never announced its address" >&2; exit 1; }
BASE="http://$ADDR"

req() { # req NAME METHOD PATH [BODY]
  local name=$1 method=$2 path=$3 body=${4-}
  echo "=== $name"
  if [ "$method" = GET ]; then
    curl -sS -w 'status:%{http_code}\n' "$BASE$path"
  else
    curl -sS -w 'status:%{http_code}\n' -H 'Content-Type: application/json' -d "$body" "$BASE$path"
  fi
}

GOT="$WORK/got.txt"
# The recompute-cost ledger in /v1/stats reports real solver wall time,
# nondeterministic run to run; scrub the values (not the keys) so the
# golden still pins the field names and everything deterministic.
scrub_costs() { sed -E 's/"cost_(added|evicted|removed|resident|saved)_nanos":[0-9]+/"cost_\1_nanos":X/g'; }
{
  req schemes            GET  /v1/schemes
  req connect-labels     POST /v1/connect '{"scheme":"library","labels":["A","C"]}'
  req connect-cached     POST /v1/connect '{"scheme":"library","labels":["A","C"]}'
  req connect-forced     POST /v1/connect '{"scheme":"library","labels":["A","C"],"method":"heuristic"}'
  req connect-interps    POST /v1/connect '{"scheme":"library","labels":["A","C"],"interpretations":{"max_aux":2,"limit":3}}'
  req unknown-scheme     POST /v1/connect '{"scheme":"ghost","terminals":[0]}'
  req duplicate-terminal POST /v1/connect '{"scheme":"library","terminals":[0,0]}'
  req over-budget        POST /v1/connect '{"scheme":"library","terminals":[0,1,2,3,4,5]}'
  req empty-query        POST /v1/connect '{"scheme":"tiny","terminals":[]}'
  req bad-json           POST /v1/connect '{"scheme":'
  req batch              POST /v1/batch '{"scheme":"tiny","queries":[[0,1],[0,1],[99]]}'
  req interpretations    POST /v1/interpretations '{"scheme":"library","labels":["A","C"],"max_aux":2,"limit":3}'
  req stats              GET  /v1/stats
} | scrub_costs > "$GOT"

# /metrics smoke: histogram values vary run to run, so the scrape stays
# out of the golden diff — instead assert every required family is
# present and the traffic above left nonzero counts where it must have.
METRICS="$WORK/metrics.txt"
curl -sS "$BASE/metrics" > "$METRICS"
for series in \
  'chordal_http_requests_total{endpoint="/v1/connect",method="POST",code="200"}' \
  'chordal_http_requests_total{endpoint="/v1/connect",method="POST",code="404"}' \
  'chordal_http_request_duration_seconds_count{endpoint="/v1/connect",method="POST"}' \
  'chordal_solve_duration_seconds_count' \
  'chordal_cache_hits_total{scheme="library"}' \
  'chordal_cache_misses_total{scheme="library"}' \
  'chordal_cache_cost_saved_seconds_total{scheme="library"}' \
  'chordal_cache_cost_resident_seconds{scheme="library"}' \
  'chordal_scheme_epoch{scheme="tiny"}'
do
  grep -qF "$series" "$METRICS" || { echo "/metrics missing series: $series" >&2; cat "$METRICS" >&2; exit 1; }
  val=$(grep -F "$series " "$METRICS" | awk '{print $NF}')
  awk -v v="$val" 'BEGIN { exit (v > 0) ? 0 : 1 }' \
    || { echo "/metrics series $series = $val, want > 0" >&2; exit 1; }
done
# The per-shard decomposition exists (values depend on key hashing).
grep -qF 'chordal_cache_shard_entries{scheme="library",shard="3"}' "$METRICS" \
  || { echo "/metrics missing per-shard series for the 4-shard cache" >&2; exit 1; }
# Warm fills exist as a family (zero here: nothing booted from a warm snapshot).
grep -qF 'chordal_cache_warm_fills_total{scheme="library"} 0' "$METRICS" \
  || { echo "/metrics missing warm-fills series (want 0 on a cold boot)" >&2; exit 1; }
grep -q 'chordal_http_inflight_limit 256' "$METRICS" \
  || { echo "/metrics inflight limit should be the serve default (256)" >&2; exit 1; }
echo "metrics smoke OK ($(grep -c '^chordal_' "$METRICS") series)"

# Tracing smoke: a request carrying a sampled W3C traceparent must be
# retained under that trace id, resolvable on GET /v1/traces with its
# phase spans, and the id stamped into the JSON access log. Stays out of
# the golden diff — trace ids and durations vary run to run.
TRACE_ID=0123456789abcdef0123456789abcdef
curl -sS -o /dev/null -H 'Content-Type: application/json' \
  -H "traceparent: 00-$TRACE_ID-00f067aa0ba902b7-01" \
  -d '{"scheme":"library","labels":["A","B"]}' "$BASE/v1/connect"
TRACES="$WORK/traces.json"
curl -sS "$BASE/v1/traces" > "$TRACES"
grep -qF "\"trace_id\":\"$TRACE_ID\"" "$TRACES" \
  || { echo "/v1/traces missing propagated trace $TRACE_ID" >&2; cat "$TRACES" >&2; exit 1; }
grep -qF '"name":"solve"' "$TRACES" \
  || { echo "/v1/traces entry has no solve phase span" >&2; cat "$TRACES" >&2; exit 1; }
grep -qF "\"trace_id\":\"$TRACE_ID\"" "$WORK/server.log" \
  || { echo "JSON access log not stamped with trace $TRACE_ID" >&2; cat "$WORK/server.log" >&2; exit 1; }
echo "tracing smoke OK (trace $TRACE_ID propagated end to end)"

# Graceful shutdown: SIGTERM must produce a clean exit.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "server exited non-zero after SIGTERM" >&2; cat "$WORK/server.log" >&2; exit 1; }
grep -q 'server stopped' "$WORK/server.log" || { echo "missing graceful-stop line" >&2; cat "$WORK/server.log" >&2; exit 1; }

if [ "${1-}" = --update ]; then
  mkdir -p "$(dirname "$GOLDEN")"
  cp "$GOT" "$GOLDEN"
  echo "updated $GOLDEN"
  exit 0
fi

diff -u "$GOLDEN" "$GOT" || { echo "HTTP e2e output diverged from golden" >&2; exit 1; }
echo "http e2e OK ($(grep -c '^===' "$GOT") requests)"
