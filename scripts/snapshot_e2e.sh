#!/usr/bin/env bash
# End-to-end proof of the snapshot subsystem: compile the example schemes
# to .snap catalogs, boot one server from the text schemes (live compile)
# and one from the snapshots, run the same scripted queries against both,
# and require identical answers. Then exercise the admin trio on the
# snapshot-booted server: download an epoch, re-upload it under a new
# name, query it, delete it.
#
# Usage: scripts/snapshot_e2e.sh
set -euo pipefail

cd "$(dirname "$0")/.."
WORK=$(mktemp -d)
LIVE_PID=""
SNAP_PID=""
trap 'kill "$LIVE_PID" "$SNAP_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/chordalctl" ./cmd/chordalctl

# The same fixtures http_e2e.sh serves: Figure 3(c) plus a tiny tree.
cat > "$WORK/library.txt" <<'EOF'
v1 A
v1 B
v1 C
v2 1
v2 2
v2 3
edge A 1
edge B 1
edge B 2
edge C 2
edge C 3
edge A 3
edge C 1
EOF
cat > "$WORK/tiny.txt" <<'EOF'
v1 x
v1 y
v2 r
edge x r
edge y r
EOF

"$WORK/chordalctl" -compile "$WORK/library.snap" "$WORK/library.txt"
"$WORK/chordalctl" -compile "$WORK/tiny.snap" "$WORK/tiny.txt"

# A corrupted snapshot must be rejected at boot with a checksum error.
cp "$WORK/library.snap" "$WORK/corrupt.snap"
printf '\377' | dd of="$WORK/corrupt.snap" bs=1 seek=100 conv=notrunc status=none
if "$WORK/chordalctl" -registry "bad=$WORK/corrupt.snap" >/dev/null 2>"$WORK/corrupt.err"; then
  echo "corrupted snapshot was accepted" >&2; exit 1
fi
grep -q checksum "$WORK/corrupt.err" || { echo "missing checksum diagnostic:" >&2; cat "$WORK/corrupt.err" >&2; exit 1; }

boot() { # boot LOGFILE REGISTRY_SPEC -> sets BOOT_PID and ADDR
  local log=$1 spec=$2
  "$WORK/chordalctl" -serve 127.0.0.1:0 -registry "$spec" -max-terminals 5 -v > "$log" 2>&1 &
  BOOT_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^chordalctl: serving HTTP on \([^ ]*\).*/\1/p' "$log")
    [ -n "$ADDR" ] && break
    kill -0 "$BOOT_PID" 2>/dev/null || { cat "$log" >&2; echo "server died" >&2; exit 1; }
    sleep 0.1
  done
  [ -n "$ADDR" ] || { echo "server never announced its address" >&2; exit 1; }
}

queries() { # queries BASE OUTFILE
  local base=$1 out=$2
  {
    echo "=== schemes"
    curl -sS -w 'status:%{http_code}\n' "$base/v1/schemes"
    echo "=== connect"
    curl -sS -w 'status:%{http_code}\n' -d '{"scheme":"library","labels":["A","C"]}' "$base/v1/connect"
    echo "=== connect-forced"
    curl -sS -w 'status:%{http_code}\n' -d '{"scheme":"library","labels":["A","C"],"method":"heuristic"}' "$base/v1/connect"
    echo "=== batch"
    curl -sS -w 'status:%{http_code}\n' -d '{"scheme":"tiny","queries":[[0,1],[0,1],[99]]}' "$base/v1/batch"
    echo "=== interpretations"
    curl -sS -w 'status:%{http_code}\n' -d '{"scheme":"library","labels":["A","C"],"max_aux":2,"limit":3}' "$base/v1/interpretations"
    echo "=== over-budget"
    curl -sS -w 'status:%{http_code}\n' -d '{"scheme":"library","terminals":[0,1,2,3,4,5]}' "$base/v1/connect"
  } > "$out"
}

boot "$WORK/live.log" "library=$WORK/library.txt,tiny=$WORK/tiny.txt"
LIVE_PID=$BOOT_PID
LIVE="http://$ADDR"
boot "$WORK/snap.log" "library=$WORK/library.snap,tiny=$WORK/tiny.snap"
SNAP_PID=$BOOT_PID
SNAP="http://$ADDR"

grep -q 'snapshot-v1 from' "$WORK/snap.log" || { echo "-v did not report snapshot provenance" >&2; cat "$WORK/snap.log" >&2; exit 1; }

queries "$LIVE" "$WORK/live.txt"
queries "$SNAP" "$WORK/snap.txt"

# The only permitted divergence is the provenance field on /v1/schemes.
sed 's/"source":"snapshot-v[0-9]*",//g' "$WORK/snap.txt" > "$WORK/snap.normalized.txt"
diff -u "$WORK/live.txt" "$WORK/snap.normalized.txt" || {
  echo "snapshot-booted answers diverge from live-compiled answers" >&2; exit 1;
}

# Admin trio on the snapshot-booted server.
curl -sSf "$SNAP/v1/schemes/library/snapshot" -o "$WORK/downloaded.snap"
cmp -s "$WORK/library.snap" "$WORK/downloaded.snap" || { echo "downloaded snapshot differs from the compiled one" >&2; exit 1; }

curl -sSf -X PUT --data-binary @"$WORK/downloaded.snap" "$SNAP/v1/schemes/copy" > "$WORK/put.json"
grep -q '"source":"snapshot-v1"' "$WORK/put.json" || { echo "PUT response missing provenance: $(cat "$WORK/put.json")" >&2; exit 1; }

A=$(curl -sS -d '{"scheme":"library","labels":["A","C"]}' "$SNAP/v1/connect" | sed 's/"scheme":"library"//')
B=$(curl -sS -d '{"scheme":"copy","labels":["A","C"]}' "$SNAP/v1/connect" | sed 's/"scheme":"copy"//')
[ "$A" = "$B" ] || { echo "uploaded copy answers differently" >&2; exit 1; }

STATUS=$(curl -sS -o /dev/null -w '%{http_code}' -X DELETE "$SNAP/v1/schemes/copy")
[ "$STATUS" = 200 ] || { echo "DELETE returned $STATUS" >&2; exit 1; }
STATUS=$(curl -sS -o /dev/null -w '%{http_code}' -X DELETE "$SNAP/v1/schemes/copy")
[ "$STATUS" = 404 ] || { echo "second DELETE returned $STATUS, want 404" >&2; exit 1; }
STATUS=$(curl -sS -o /dev/null -w '%{http_code}' -X PUT --data-binary @"$WORK/corrupt.snap" "$SNAP/v1/schemes/bad")
[ "$STATUS" = 422 ] || { echo "corrupt PUT returned $STATUS, want 422" >&2; exit 1; }

# Warm boot: download the live server's cache as a warmup snapshot
# (?warmup=1), boot a third server from it, and require the very first
# query to be a cache hit — the restored entries answer without a solve.
curl -sSf "$SNAP/v1/schemes/library/snapshot?warmup=1" -o "$WORK/library-warm.snap"
cmp -s "$WORK/library.snap" "$WORK/library-warm.snap" && {
  echo "?warmup=1 download is identical to the cold snapshot (no warmup section?)" >&2; exit 1;
}
boot "$WORK/warm.log" "library=$WORK/library-warm.snap"
WARM_PID=$BOOT_PID
WARM="http://$ADDR"
trap 'kill "$LIVE_PID" "$SNAP_PID" "$WARM_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

WARM_STATS=$(curl -sS "$WARM/v1/stats")
echo "$WARM_STATS" | grep -q '"misses":0' || { echo "warm boot already missed: $WARM_STATS" >&2; exit 1; }
echo "$WARM_STATS" | grep -Eq '"warm_fills":[1-9]' || { echo "warm boot restored no entries: $WARM_STATS" >&2; exit 1; }

WARM_ANSWER=$(curl -sS -d '{"scheme":"library","labels":["A","C"]}' "$WARM/v1/connect" | sed 's/"scheme":"library"//')
[ "$WARM_ANSWER" = "$A" ] || { echo "warm-booted answer diverges from the saving server's" >&2; exit 1; }
WARM_STATS=$(curl -sS "$WARM/v1/stats")
echo "$WARM_STATS" | grep -q '"hits":1' || { echo "first warm-boot query was not a hit: $WARM_STATS" >&2; exit 1; }
echo "$WARM_STATS" | grep -q '"misses":0' || { echo "first warm-boot query missed: $WARM_STATS" >&2; exit 1; }

# Graceful shutdown of all servers.
for pid in "$LIVE_PID" "$SNAP_PID" "$WARM_PID"; do
  kill -TERM "$pid"
  wait "$pid" || { echo "server $pid exited non-zero after SIGTERM" >&2; exit 1; }
done

echo "snapshot e2e OK (live vs snapshot answers identical; admin trio verified; warm boot served its first query from the restored cache)"
