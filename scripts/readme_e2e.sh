#!/usr/bin/env bash
# Front-door drift guard: extract the quickstart commands from the root
# README.md — the sh fence right after the "readme-e2e" marker comment —
# and execute them verbatim (build, classify, serve + one curl, one
# snapshot compile + boot). If the README's commands rot, this job fails;
# there is no second copy of the commands to fall out of sync.
#
# Usage: scripts/readme_e2e.sh
set -euo pipefail

cd "$(dirname "$0")/.."

SNIPPET=$(awk '
  /<!-- readme-e2e:/ { marked = 1; next }
  marked && /^```sh$/ { infence = 1; next }
  infence && /^```$/ { exit }
  infence { print }
' README.md)

[ -n "$SNIPPET" ] || { echo "readme_e2e: no marked quickstart fence found in README.md" >&2; exit 1; }

echo "--- executing README quickstart:"
printf '%s\n' "$SNIPPET"
echo "---"

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
OUT="$WORK/quickstart.out"

bash -euo pipefail -c "$SNIPPET" 2>&1 | tee "$OUT"

# The commands ran; now hold their output to what the README promises.
grep -q 'Steiner trees solvable exactly in polynomial time' "$OUT" ||
  { echo "readme_e2e: classification output missing the Theorem 5 guarantee" >&2; exit 1; }
grep -q 'method=algorithm-2' "$OUT" ||
  { echo "readme_e2e: batch query did not answer via Algorithm 2" >&2; exit 1; }
grep -q '"method":"algorithm-2"' "$OUT" ||
  { echo "readme_e2e: HTTP answer missing from quickstart output" >&2; exit 1; }
grep -q '"labels":\["reader","book","author","borrows","wrote"\]' "$OUT" ||
  { echo "readme_e2e: HTTP answer does not connect reader-author through book" >&2; exit 1; }
grep -Eq 'scheme "library" \(epoch 1' "$OUT" ||
  { echo "readme_e2e: snapshot boot did not describe the library scheme" >&2; exit 1; }
grep -Eq '^[1-9][0-9]*$' "$OUT" ||
  { echo "readme_e2e: /metrics scrape counted no chordal_ series" >&2; exit 1; }
grep -q 'load: warm' "$OUT" ||
  { echo "readme_e2e: load-harness summary missing from quickstart output" >&2; exit 1; }

echo "readme e2e OK"
