#!/usr/bin/env bash
# Pinned benchmark trajectory: run the serving-path benchmarks every PR
# cares about (mutable-vs-frozen solver cost, hot cache serving, batch
# throughput, and the bit-parallel kernels against their CSR fallbacks),
# then fold them together with a chordalctl load-harness run into one
# schema-versioned BENCH_<tag>.json so perf changes leave a diffable,
# attributable trail next to the code.
#
# BENCH_TAG is mandatory: an earlier version defaulted it to the previous
# PR's tag, which silently overwrote that PR's trajectory file on every
# re-run. Files are append-only now — the script refuses to clobber an
# existing output unless FORCE=1.
#
# Usage: BENCH_TAG=pr9 scripts/bench_trajectory.sh [out.json]
#   BENCHTIME=2s BENCH_TAG=pr9 scripts/bench_trajectory.sh  # steadier runs
#   LOAD_DURATION=5s BENCH_TAG=pr9 scripts/bench_trajectory.sh
set -euo pipefail

cd "$(dirname "$0")/.."
: "${BENCH_TAG:?set BENCH_TAG (e.g. BENCH_TAG=pr9) — trajectory files are named and compared by tag}"
OUT=${1:-BENCH_${BENCH_TAG}.json}
BENCHTIME=${BENCHTIME:-0.5s}
LOAD_DURATION=${LOAD_DURATION:-2s}
if [ -e "$OUT" ] && [ "${FORCE:-0}" != 1 ]; then
  echo "bench_trajectory: $OUT already exists; trajectories are append-only (FORCE=1 to overwrite)" >&2
  exit 1
fi
RAW=$(mktemp)
MICRO=$(mktemp)
trap 'rm -f "$RAW" "$MICRO"' EXIT

# Each invocation pins one package's benchmark set; -run 'xxx' skips the
# tests so only benchmarks execute.
{
  go test -run 'xxx' -bench 'BenchmarkSteinerMutableVsFrozen|BenchmarkServiceThroughput' \
    -benchmem -benchtime "$BENCHTIME" -timeout 15m .
  go test -run 'xxx' -bench 'BenchmarkServeHotParallel' \
    -benchmem -benchtime "$BENCHTIME" -timeout 15m ./internal/core
  go test -run 'xxx' -bench 'BenchmarkKernel' \
    -benchmem -benchtime "$BENCHTIME" -timeout 15m ./internal/graph
} | tee "$RAW"

# Distill "BenchmarkX/sub-8  N  ns/op  B/op  allocs/op" lines into JSON.
# The -<GOMAXPROCS> suffix is stripped so trajectories diff cleanly across
# machines with different core counts (the header's "cores" block records
# the actual budget).
awk -v benchtime="$BENCHTIME" '
  BEGIN { printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime }
  /^Benchmark/ && / ns\/op/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bop = ""; aop = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op")     ns  = $(i-1)
      if ($i == "B/op")      bop = $(i-1)
      if ($i == "allocs/op") aop = $(i-1)
    }
    if (ns == "") next
    if (bop == "") bop = "null"
    if (aop == "") aop = "null"
    printf "%s    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, name, ns, bop, aop
    sep = ",\n"; count++
  }
  END {
    if (count == 0) { print "no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf "\n  ]\n}\n"
  }
' "$RAW" > "$MICRO"

# The load harness boots a real server, drives the multi-tenant workload,
# and writes the final schema-v2 file: header (schema_version, tag,
# cores), the micro rows above, and cold/warm serving measurements.
rm -f "$OUT" # FORCE=1 path: chordalctl itself also refuses to overwrite
go run ./cmd/chordalctl -load self -load-duration "$LOAD_DURATION" \
  -bench-merge "$MICRO" -bench-tag "$BENCH_TAG" -bench-out "$OUT"

echo "bench_trajectory: wrote $(grep -c '"name"' "$OUT") benchmarks + serving report to $OUT"
