#!/usr/bin/env bash
# Pinned benchmark trajectory: run the serving-path benchmarks every PR
# cares about (mutable-vs-frozen solver cost, hot cache serving, batch
# throughput, and the bit-parallel kernels against their CSR fallbacks)
# and distill ns/op, B/op and allocs/op into a machine-readable JSON file
# so perf changes leave a diffable trail next to the code.
#
# Usage: scripts/bench_trajectory.sh [out.json]
#   BENCHTIME=2s scripts/bench_trajectory.sh   # longer, steadier runs
#   BENCH_TAG=pr8 scripts/bench_trajectory.sh  # default name BENCH_pr8.json
set -euo pipefail

cd "$(dirname "$0")/.."
BENCH_TAG=${BENCH_TAG:-pr7}
OUT=${1:-BENCH_${BENCH_TAG}.json}
BENCHTIME=${BENCHTIME:-0.5s}
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# Each invocation pins one package's benchmark set; -run 'xxx' skips the
# tests so only benchmarks execute.
{
  go test -run 'xxx' -bench 'BenchmarkSteinerMutableVsFrozen|BenchmarkServiceThroughput' \
    -benchmem -benchtime "$BENCHTIME" -timeout 15m .
  go test -run 'xxx' -bench 'BenchmarkServeHotParallel' \
    -benchmem -benchtime "$BENCHTIME" -timeout 15m ./internal/core
  go test -run 'xxx' -bench 'BenchmarkKernel' \
    -benchmem -benchtime "$BENCHTIME" -timeout 15m ./internal/graph
} | tee "$RAW"

# Distill "BenchmarkX/sub-8  N  ns/op  B/op  allocs/op" lines into JSON.
# The -<GOMAXPROCS> suffix is stripped so trajectories diff cleanly across
# machines with different core counts.
awk -v benchtime="$BENCHTIME" '
  BEGIN { printf "{\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", benchtime }
  /^Benchmark/ && / ns\/op/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bop = ""; aop = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op")     ns  = $(i-1)
      if ($i == "B/op")      bop = $(i-1)
      if ($i == "allocs/op") aop = $(i-1)
    }
    if (ns == "") next
    if (bop == "") bop = "null"
    if (aop == "") aop = "null"
    printf "%s    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, name, ns, bop, aop
    sep = ",\n"; count++
  }
  END {
    if (count == 0) { print "no benchmark lines parsed" > "/dev/stderr"; exit 1 }
    printf "\n  ]\n}\n"
  }
' "$RAW" > "$OUT"

echo "bench_trajectory: wrote $(grep -c '"name"' "$OUT") benchmarks to $OUT"
