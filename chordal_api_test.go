package chordal_test

import (
	"context"
	"testing"

	chordal "repro"
)

// TestFacadeQuickstart exercises the public facade end to end, mirroring
// the README snippet.
func TestFacadeQuickstart(t *testing.T) {
	b := chordal.NewBipartite()
	reader := b.AddV1("reader")
	book := b.AddV1("book")
	borrows := b.AddV2("borrows")
	b.AddEdge(reader, borrows)
	b.AddEdge(book, borrows)

	cl := chordal.Classify(b)
	if !cl.Chordal41 || !cl.Chordal62 {
		t.Fatalf("tiny scheme classification wrong: %+v", cl)
	}

	conn := chordal.NewConnector(b)
	answer, err := conn.Connect(context.Background(), []int{reader, book})
	if err != nil {
		t.Fatal(err)
	}
	if answer.Tree.Nodes.Len() != 3 || !answer.Optimal {
		t.Errorf("answer = %+v", answer)
	}
}

func TestFacadeAlgorithms(t *testing.T) {
	h := chordal.NewHypergraph()
	h.AddEdgeLabels("r1", "a", "b")
	h.AddEdgeLabels("r2", "b", "c")
	b := chordal.FromHypergraph(h)
	g := b.G()
	terms := []int{g.MustID("a"), g.MustID("c")}

	t1, err := chordal.Algorithm1(b, terms)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := chordal.Algorithm2(g, terms)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := chordal.ExactSteiner(g, terms)
	if err != nil {
		t.Fatal(err)
	}
	if t2.Nodes.Len() != ex.Nodes.Len() {
		t.Errorf("Algorithm2 %d vs exact %d", t2.Nodes.Len(), ex.Nodes.Len())
	}
	if t1.Nodes.Len() < ex.Nodes.Len() {
		t.Errorf("Algorithm1 produced an impossible tree")
	}
}

func TestFacadeGraphType(t *testing.T) {
	g := chordal.NewGraph()
	g.AddEdgeLabels("x", "y")
	if g.N() != 2 || g.M() != 1 {
		t.Error("facade graph broken")
	}
}
