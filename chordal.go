// Package chordal is the public facade of the reproduction of Ausiello,
// D'Atri and Moscarini, "Chordality Properties on Graphs and Minimal
// Conceptual Connections in Semantic Data Models" (PODS 1985 / JCSS 33,
// 1986).
//
// The library decides the paper's bipartite chordality classes and
// hypergraph acyclicity degrees, and answers minimal-connection (Steiner /
// pseudo-Steiner) queries with the strongest algorithm each class admits.
//
// # The v2 query API
//
// Open compiles a scheme once (freeze into an immutable CSR view +
// classify, Theorem 1) and returns a Service answering concurrent,
// context-aware queries:
//
//	b := chordal.NewBipartite()                // build a scheme graph
//	a := b.AddV1("attribute")                  // V1 = attributes
//	r := b.AddV2("relation")                   // V2 = relation schemes
//	b.AddEdge(a, r)
//	svc := chordal.Open(b, chordal.WithWorkers(8), chordal.WithCacheSize(4096))
//	answer, err := svc.Connect(ctx, []int{a, r})
//
// Every query takes a context.Context first: deadlines and cancellation
// are checked inside the solvers' hot loops (including the exponential
// Dreyfus–Wagner fallback), so Connect returns context.DeadlineExceeded
// promptly instead of finishing a doomed search. Per-query functional
// options tune one call without touching the compiled scheme:
//
//	svc.Connect(ctx, terms,
//	    chordal.WithMethod(chordal.MethodExact),  // force a solver
//	    chordal.WithQueryExactLimit(8),           // exact/heuristic cutoff
//	    chordal.WithInterpretations(3, 5),        // ranked alternatives
//	    chordal.WithCacheBypass())                // skip the answer cache
//
// Terminals are validated at the API boundary; failures are typed and
// errors.Is-testable: ErrEmptyQuery, ErrInvalidTerminal,
// ErrTooManyTerminals, ErrDisconnectedTerminals, ErrNotAlphaAcyclic,
// context.Canceled, context.DeadlineExceeded.
//
// Batches fan out over a bounded worker pool with an LRU answer cache
// keyed on the canonical terminal set plus the answer-changing options:
//
//	results := svc.ConnectBatch(ctx, queries)  // answers in query order
//
// The cache is sharded (internal/cache): N independently locked LRU
// shards selected by a hash of the canonical key, so concurrent hits on a
// warm cache do not serialize on one mutex. WithCacheShards tunes the
// shard count (default GOMAXPROCS rounded up to a power of two, max 64;
// 1 restores the v1 single-lock global-LRU semantics); Service.Stats
// reports per-shard occupancy alongside the aggregate counters.
//
// A Registry serves many named schemes from one process, with atomic
// compile-and-swap updates (in-flight queries finish on the old frozen
// epoch; new queries see the new one):
//
//	reg := chordal.NewRegistry()
//	reg.Set("library", b)                      // compile + install
//	conn, err := reg.Connect(ctx, "library", terms)
//
// The Registry can also be served over HTTP to other processes —
// internal/httpd speaks a JSON protocol reusing this exact contract
// (typed errors become status codes, timeout_ms becomes a ctx deadline),
// started via `chordalctl -serve :8080 -registry name=file,...`; see
// internal/README.md for endpoints and examples/httpclient for a client.
// Live admin endpoints (GET /v1/schemes/{name}/snapshot, PUT and DELETE
// /v1/schemes/{name}) let a running server be populated, snapshotted and
// pruned without a restart.
//
// # Persistent compiled schemes
//
// Compiling is Freeze+Classify; both are polynomial but neither is free,
// and a Registry holding thousands of schemes should not redo them on
// every boot. A compiled epoch serializes to a versioned, checksummed
// binary snapshot (internal/snapshot; `chordalctl -compile out.snap`)
// whose hot sections decode zero-copy from an mmap-able buffer:
//
//	svc := chordal.Open(b)
//	var buf bytes.Buffer
//	_ = svc.SaveSnapshot(&buf)                 // persist the epoch
//	snap, _ := chordal.DecodeSnapshot(buf.Bytes())
//	svc2 := chordal.OpenSnapshot(snap)         // boot: no Freeze, no Classify
//
// A loaded epoch answers bit-for-bit like a live compile and installs into
// a Registry with the same atomic swap semantics (Registry.LoadSnapshot /
// SaveSnapshot). Damaged files fail with typed errors: ErrNotSnapshot,
// ErrSnapshotVersion, ErrSnapshotChecksum, ErrSnapshotCorrupt.
//
// Lower-level entry points remain for direct use: NewConnector for a
// cache-less query answerer, Freeze/FreezeGraph to share a compiled view
// across goroutines, Classify/ClassifyFrozen for the taxonomy alone.
//
// Subsystem map (all within this module; see internal/README.md):
//
//	internal/graph       graphs, traversal, covers; Freeze → immutable CSR
//	                     view (Frozen) safe for concurrent readers
//	internal/bipartite   (V1,V2) graphs ⇄ hypergraphs (Definition 2);
//	                     frozen bipartite view (partition over the CSR)
//	internal/hypergraph  dual, primal, GYO, Berge/γ/β/α recognizers
//	internal/chordality  (4,1)/(6,2)/(6,1)/Vi-chordality recognizers,
//	                     mutable and frozen paths
//	internal/steiner     Algorithms 1–2, exact and heuristic baselines,
//	                     context-aware frozen-path ports of all solvers,
//	                     the X3C and CSPC hardness gadgets
//	internal/core        the v2 query layer: validation, typed errors,
//	                     options, dispatch, ranking, the cached Service,
//	                     the multi-tenant Registry
//	internal/snapshot    persistent compiled epochs: the versioned binary
//	                     catalog format, zero-copy decode, mmap open
//	internal/relational  relations, joins, semijoins, Yannakakis
//	internal/schema      relational schemes as hypergraphs
//	internal/ur          universal-relation interface
//	internal/er          entity–relationship layer (Fig 1)
//	internal/experiments the E-* reproduction tables (see EXPERIMENTS.md)
//
// The type aliases below expose the main entry points under one import for
// use inside this module (internal packages are not importable from other
// modules; vendor the tree or lift packages out of internal/ to reuse them
// elsewhere).
package chordal

import (
	"repro/internal/bipartite"
	"repro/internal/chordality"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/snapshot"
	"repro/internal/steiner"
)

// Core aliases.
type (
	// Graph is an undirected graph (internal/graph).
	Graph = graph.Graph
	// Bipartite is a bipartite graph with an explicit (V1, V2) partition.
	Bipartite = bipartite.Graph
	// Hypergraph is a hypergraph with duplicate edges allowed.
	Hypergraph = hypergraph.Hypergraph
	// Degree is a hypergraph acyclicity degree (Berge/γ/β/α/cyclic).
	Degree = hypergraph.Degree
	// Class is a bipartite chordality classification.
	Class = chordality.Class
	// Connector dispatches minimal-connection queries by classification.
	Connector = core.Connector
	// Connection is an answered query.
	Connection = core.Connection
	// Interpretation is one ranked alternative reading of a query.
	Interpretation = core.Interpretation
	// Method identifies which algorithm answers a query (MethodAuto,
	// MethodAlgorithm2, MethodAlgorithm1, MethodExact, MethodHeuristic).
	Method = core.Method
	// Tree is a connection tree (cover node set + spanning tree edges).
	Tree = steiner.Tree
	// FrozenGraph is the immutable CSR view of a Graph.
	FrozenGraph = graph.Frozen
	// FrozenBipartite is the immutable compiled view of a Bipartite.
	FrozenBipartite = bipartite.Frozen
	// Service serves cached, concurrent connection queries over one scheme.
	Service = core.Service
	// Registry is a named, multi-tenant catalog of compiled schemes with
	// atomic compile-and-swap updates.
	Registry = core.Registry
	// BatchResult is one answer of Service.ConnectBatch.
	BatchResult = core.BatchResult
	// CacheStats is a snapshot of a Service's answer cache.
	CacheStats = core.CacheStats
	// Option configures Open/NewConnector/NewRegistry-installed schemes.
	Option = core.Option
	// QueryOption configures a single Connect/ConnectBatch call.
	QueryOption = core.QueryOption
	// Snapshot is a decoded persistent compiled-scheme epoch.
	Snapshot = snapshot.Snapshot
	// MappedSnapshot is a snapshot backed by an mmap-ed catalog file.
	MappedSnapshot = snapshot.Mapped
)

// Methods, re-exported for WithMethod.
const (
	MethodAuto       = core.MethodAuto
	MethodAlgorithm2 = core.MethodAlgorithm2
	MethodAlgorithm1 = core.MethodAlgorithm1
	MethodExact      = core.MethodExact
	MethodHeuristic  = core.MethodHeuristic
)

// Typed query errors, re-exported for errors.Is at the facade.
var (
	ErrEmptyQuery            = core.ErrEmptyQuery
	ErrInvalidTerminal       = core.ErrInvalidTerminal
	ErrTooManyTerminals      = core.ErrTooManyTerminals
	ErrUnknownScheme         = core.ErrUnknownScheme
	ErrDisconnectedTerminals = steiner.ErrDisconnectedTerminals
	ErrNotAlphaAcyclic       = steiner.ErrNotAlphaAcyclic
)

// Typed snapshot-decode errors, re-exported for errors.Is at the facade.
var (
	ErrNotSnapshot      = snapshot.ErrNotSnapshot
	ErrSnapshotVersion  = snapshot.ErrUnsupportedVersion
	ErrSnapshotChecksum = snapshot.ErrChecksum
	ErrSnapshotCorrupt  = snapshot.ErrCorrupt
)

// Construction options, re-exported from internal/core.
var (
	WithWorkers         = core.WithWorkers
	WithCacheSize       = core.WithCacheSize
	WithCacheShards     = core.WithCacheShards
	WithExactLimit      = core.WithExactLimit
	WithMaxTerminals    = core.WithMaxTerminals
	WithV1TerminalsOnly = core.WithV1TerminalsOnly
)

// Per-query options, re-exported from internal/core.
var (
	WithMethod          = core.WithMethod
	WithQueryExactLimit = core.WithQueryExactLimit
	WithInterpretations = core.WithInterpretations
	WithCacheBypass     = core.WithCacheBypass
)

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// NewBipartite returns an empty bipartite graph.
func NewBipartite() *Bipartite { return bipartite.New() }

// NewHypergraph returns an empty hypergraph.
func NewHypergraph() *Hypergraph { return hypergraph.New() }

// Open compiles and classifies the scheme once and returns a Service
// answering concurrent, cached, context-aware queries over it; b must not
// be mutated afterwards. This is the main v2 entry point.
func Open(b *Bipartite, opts ...Option) *Service { return core.Open(b, opts...) }

// NewRegistry returns an empty multi-tenant scheme catalog.
func NewRegistry() *Registry { return core.NewRegistry() }

// NewConnector compiles and classifies the scheme once and returns a query
// answerer without a cache or worker pool; b must not be mutated
// afterwards. Use Open unless the cache is unwanted.
func NewConnector(b *Bipartite, opts ...Option) *Connector { return core.New(b, opts...) }

// NewService wraps a Connector for concurrent serving with positional
// limits.
//
// Deprecated: use Open(b, WithWorkers(workers), WithCacheSize(cacheSize)),
// or core.NewService with options when the Connector is shared.
func NewService(c *Connector, workers, cacheSize int) *Service {
	return core.NewService(c, core.WithWorkers(workers), core.WithCacheSize(cacheSize))
}

// Freeze compiles a bipartite scheme into its immutable view, safe for
// unsynchronized concurrent readers.
func Freeze(b *Bipartite) *FrozenBipartite { return b.Freeze() }

// FreezeGraph compiles a graph into its immutable CSR view.
func FreezeGraph(g *Graph) *FrozenGraph { return g.Freeze() }

// Classify runs every chordality recognizer on b (Theorem 1 taxonomy).
func Classify(b *Bipartite) Class { return chordality.Classify(b) }

// ClassifyFrozen runs every chordality recognizer on a compiled scheme.
func ClassifyFrozen(fb *FrozenBipartite) Class { return chordality.ClassifyFrozen(fb) }

// FromHypergraph returns the bipartite incidence graph of h.
func FromHypergraph(h *Hypergraph) *Bipartite { return bipartite.FromHypergraph(h).B }

// EncodeSnapshot serializes a compiled epoch (frozen view +
// classification) into the binary catalog format of internal/snapshot.
// Most callers want Service.SaveSnapshot or Registry.SaveSnapshot, which
// take the parts from an already-compiled scheme.
func EncodeSnapshot(fb *FrozenBipartite, class Class) []byte {
	return snapshot.Encode(fb, class)
}

// DecodeSnapshot parses and validates a persisted epoch. Failures are
// typed: ErrNotSnapshot, ErrSnapshotVersion, ErrSnapshotChecksum,
// ErrSnapshotCorrupt.
func DecodeSnapshot(data []byte) (*Snapshot, error) { return snapshot.Decode(data) }

// ReadSnapshotFile loads and decodes a snapshot from disk; see also
// OpenMappedSnapshot for the zero-copy mmap path.
func ReadSnapshotFile(path string) (*Snapshot, error) { return snapshot.ReadFile(path) }

// OpenMappedSnapshot memory-maps a catalog file and decodes it in place —
// the cheapest possible boot for a large scheme. Close the mapping only
// after every Connector/Service built on it is done.
func OpenMappedSnapshot(path string) (*MappedSnapshot, error) { return snapshot.OpenMapped(path) }

// OpenSnapshot is Open for a decoded snapshot: a cached, concurrent
// Service over the persisted epoch, with no Freeze or Classify work.
// Answers are bit-for-bit identical to a live compile of the same scheme.
func OpenSnapshot(s *Snapshot, opts ...Option) *Service { return core.OpenSnapshot(s, opts...) }

// ConnectorFromSnapshot revives a cache-less Connector from a decoded
// snapshot. Use OpenSnapshot unless the cache is unwanted.
func ConnectorFromSnapshot(s *Snapshot, opts ...Option) *Connector {
	return core.NewFromSnapshot(s, opts...)
}

// Algorithm1 solves pseudo-Steiner w.r.t. V2 on V1-chordal, V1-conformal
// graphs (Theorem 3).
func Algorithm1(b *Bipartite, terminals []int) (Tree, error) {
	return steiner.Algorithm1(b, terminals)
}

// Algorithm2 solves the Steiner problem on (6,2)-chordal graphs
// (Theorem 5).
func Algorithm2(g *Graph, terminals []int) (Tree, error) {
	return steiner.Algorithm2(g, terminals)
}

// ExactSteiner is the Dreyfus–Wagner baseline (exponential in terminals).
func ExactSteiner(g *Graph, terminals []int) (Tree, error) {
	return steiner.Exact(g, terminals)
}
