// Package chordal is the public facade of the reproduction of Ausiello,
// D'Atri and Moscarini, "Chordality Properties on Graphs and Minimal
// Conceptual Connections in Semantic Data Models" (PODS 1985 / JCSS 33,
// 1986).
//
// The library decides the paper's bipartite chordality classes and
// hypergraph acyclicity degrees, and answers minimal-connection (Steiner /
// pseudo-Steiner) queries with the strongest algorithm each class admits:
//
//	b := chordal.NewBipartite()           // build a scheme graph
//	a := b.AddV1("attribute")             // V1 = attributes
//	r := b.AddV2("relation")              // V2 = relation schemes
//	b.AddEdge(a, r)
//	conn := chordal.NewConnector(b)       // compile + classify once (Theorem 1)
//	answer, err := conn.Connect([]int{a, r})
//
// The classify-once/query-many contract is realized by a compiled scheme
// pipeline: NewConnector freezes the scheme into an immutable CSR
// (compressed sparse row) view — flat offset/neighbor arrays plus a bitset
// adjacency matrix for dense O(1) edge probes — classifies that view, and
// answers every query on frozen-path solvers that only read it. Freeze a
// graph yourself (Freeze, FreezeGraph) when you want to share one compiled
// scheme across goroutines, and wrap a Connector in a Service (NewService)
// to serve concurrent traffic: batched fan-out over a bounded worker pool
// and an LRU answer cache keyed on the canonical terminal set:
//
//	svc := chordal.NewService(conn, 0, 0)      // default workers + cache
//	results := svc.ConnectBatch(queries)       // answers in query order
//
// Subsystem map (all within this module):
//
//	internal/graph       graphs, traversal, covers; Freeze → immutable CSR
//	                     view (Frozen) safe for concurrent readers
//	internal/bipartite   (V1,V2) graphs ⇄ hypergraphs (Definition 2);
//	                     frozen bipartite view (partition over the CSR)
//	internal/hypergraph  dual, primal, GYO, Berge/γ/β/α recognizers
//	internal/chordality  (4,1)/(6,2)/(6,1)/Vi-chordality recognizers,
//	                     mutable and frozen paths
//	internal/steiner     Algorithms 1–2, exact and heuristic baselines,
//	                     frozen-path ports of all four solvers,
//	                     the X3C and CSPC hardness gadgets
//	internal/core        frozen-view classification + algorithm dispatch +
//	                     ranking + the concurrent, cached Service
//	internal/relational  relations, joins, semijoins, Yannakakis
//	internal/schema      relational schemes as hypergraphs
//	internal/ur          universal-relation interface
//	internal/er          entity–relationship layer (Fig 1)
//	internal/experiments the E-* reproduction tables (see EXPERIMENTS.md)
//
// The type aliases below expose the main entry points under one import for
// use inside this module (internal packages are not importable from other
// modules; vendor the tree or lift packages out of internal/ to reuse them
// elsewhere).
package chordal

import (
	"repro/internal/bipartite"
	"repro/internal/chordality"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/steiner"
)

// Core aliases.
type (
	// Graph is an undirected graph (internal/graph).
	Graph = graph.Graph
	// Bipartite is a bipartite graph with an explicit (V1, V2) partition.
	Bipartite = bipartite.Graph
	// Hypergraph is a hypergraph with duplicate edges allowed.
	Hypergraph = hypergraph.Hypergraph
	// Degree is a hypergraph acyclicity degree (Berge/γ/β/α/cyclic).
	Degree = hypergraph.Degree
	// Class is a bipartite chordality classification.
	Class = chordality.Class
	// Connector dispatches minimal-connection queries by classification.
	Connector = core.Connector
	// Connection is an answered query.
	Connection = core.Connection
	// Tree is a connection tree (cover node set + spanning tree edges).
	Tree = steiner.Tree
	// FrozenGraph is the immutable CSR view of a Graph.
	FrozenGraph = graph.Frozen
	// FrozenBipartite is the immutable compiled view of a Bipartite.
	FrozenBipartite = bipartite.Frozen
	// Service serves cached, concurrent connection queries over one scheme.
	Service = core.Service
	// BatchResult is one answer of Service.ConnectBatch.
	BatchResult = core.BatchResult
	// CacheStats is a snapshot of a Service's answer cache.
	CacheStats = core.CacheStats
)

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// NewBipartite returns an empty bipartite graph.
func NewBipartite() *Bipartite { return bipartite.New() }

// NewHypergraph returns an empty hypergraph.
func NewHypergraph() *Hypergraph { return hypergraph.New() }

// NewConnector compiles and classifies the scheme once and returns a query
// answerer; b must not be mutated afterwards.
func NewConnector(b *Bipartite) *Connector { return core.New(b) }

// NewService wraps a Connector for concurrent serving: a bounded worker
// pool for ConnectBatch plus an LRU answer cache. Non-positive workers or
// cacheSize select the defaults (GOMAXPROCS, core.DefaultCacheSize).
func NewService(c *Connector, workers, cacheSize int) *Service {
	return core.NewService(c, workers, cacheSize)
}

// Freeze compiles a bipartite scheme into its immutable view, safe for
// unsynchronized concurrent readers.
func Freeze(b *Bipartite) *FrozenBipartite { return b.Freeze() }

// FreezeGraph compiles a graph into its immutable CSR view.
func FreezeGraph(g *Graph) *FrozenGraph { return g.Freeze() }

// Classify runs every chordality recognizer on b (Theorem 1 taxonomy).
func Classify(b *Bipartite) Class { return chordality.Classify(b) }

// ClassifyFrozen runs every chordality recognizer on a compiled scheme.
func ClassifyFrozen(fb *FrozenBipartite) Class { return chordality.ClassifyFrozen(fb) }

// FromHypergraph returns the bipartite incidence graph of h.
func FromHypergraph(h *Hypergraph) *Bipartite { return bipartite.FromHypergraph(h).B }

// Algorithm1 solves pseudo-Steiner w.r.t. V2 on V1-chordal, V1-conformal
// graphs (Theorem 3).
func Algorithm1(b *Bipartite, terminals []int) (Tree, error) {
	return steiner.Algorithm1(b, terminals)
}

// Algorithm2 solves the Steiner problem on (6,2)-chordal graphs
// (Theorem 5).
func Algorithm2(g *Graph, terminals []int) (Tree, error) {
	return steiner.Algorithm2(g, terminals)
}

// ExactSteiner is the Dreyfus–Wagner baseline (exponential in terminals).
func ExactSteiner(g *Graph, terminals []int) (Tree, error) {
	return steiner.Exact(g, terminals)
}
