// Package chordal is the public facade of the reproduction of Ausiello,
// D'Atri and Moscarini, "Chordality Properties on Graphs and Minimal
// Conceptual Connections in Semantic Data Models" (PODS 1985 / JCSS 33,
// 1986).
//
// The library decides the paper's bipartite chordality classes and
// hypergraph acyclicity degrees, and answers minimal-connection (Steiner /
// pseudo-Steiner) queries with the strongest algorithm each class admits:
//
//	b := chordal.NewBipartite()           // build a scheme graph
//	a := b.AddV1("attribute")             // V1 = attributes
//	r := b.AddV2("relation")              // V2 = relation schemes
//	b.AddEdge(a, r)
//	conn := chordal.NewConnector(b)       // classify once (Theorem 1)
//	answer, err := conn.Connect([]int{a, r})
//
// Subsystem map (all within this module):
//
//	internal/graph       graphs, traversal, covers
//	internal/bipartite   (V1,V2) graphs ⇄ hypergraphs (Definition 2)
//	internal/hypergraph  dual, primal, GYO, Berge/γ/β/α recognizers
//	internal/chordality  (4,1)/(6,2)/(6,1)/Vi-chordality recognizers
//	internal/steiner     Algorithms 1–2, exact and heuristic baselines,
//	                     the X3C and CSPC hardness gadgets
//	internal/core        classification + algorithm dispatch + ranking
//	internal/relational  relations, joins, semijoins, Yannakakis
//	internal/schema      relational schemes as hypergraphs
//	internal/ur          universal-relation interface
//	internal/er          entity–relationship layer (Fig 1)
//	internal/experiments the E-* reproduction tables (see EXPERIMENTS.md)
//
// The type aliases below expose the main entry points under one import for
// use inside this module (internal packages are not importable from other
// modules; vendor the tree or lift packages out of internal/ to reuse them
// elsewhere).
package chordal

import (
	"repro/internal/bipartite"
	"repro/internal/chordality"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/steiner"
)

// Core aliases.
type (
	// Graph is an undirected graph (internal/graph).
	Graph = graph.Graph
	// Bipartite is a bipartite graph with an explicit (V1, V2) partition.
	Bipartite = bipartite.Graph
	// Hypergraph is a hypergraph with duplicate edges allowed.
	Hypergraph = hypergraph.Hypergraph
	// Degree is a hypergraph acyclicity degree (Berge/γ/β/α/cyclic).
	Degree = hypergraph.Degree
	// Class is a bipartite chordality classification.
	Class = chordality.Class
	// Connector dispatches minimal-connection queries by classification.
	Connector = core.Connector
	// Connection is an answered query.
	Connection = core.Connection
	// Tree is a connection tree (cover node set + spanning tree edges).
	Tree = steiner.Tree
)

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// NewBipartite returns an empty bipartite graph.
func NewBipartite() *Bipartite { return bipartite.New() }

// NewHypergraph returns an empty hypergraph.
func NewHypergraph() *Hypergraph { return hypergraph.New() }

// NewConnector classifies the scheme once and returns a query answerer.
func NewConnector(b *Bipartite) *Connector { return core.New(b) }

// Classify runs every chordality recognizer on b (Theorem 1 taxonomy).
func Classify(b *Bipartite) Class { return chordality.Classify(b) }

// FromHypergraph returns the bipartite incidence graph of h.
func FromHypergraph(h *Hypergraph) *Bipartite { return bipartite.FromHypergraph(h).B }

// Algorithm1 solves pseudo-Steiner w.r.t. V2 on V1-chordal, V1-conformal
// graphs (Theorem 3).
func Algorithm1(b *Bipartite, terminals []int) (Tree, error) {
	return steiner.Algorithm1(b, terminals)
}

// Algorithm2 solves the Steiner problem on (6,2)-chordal graphs
// (Theorem 5).
func Algorithm2(g *Graph, terminals []int) (Tree, error) {
	return steiner.Algorithm2(g, terminals)
}

// ExactSteiner is the Dreyfus–Wagner baseline (exponential in terminals).
func ExactSteiner(g *Graph, terminals []int) (Tree, error) {
	return steiner.Exact(g, terminals)
}
