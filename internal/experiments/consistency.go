package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/relational"
)

// EConsistency (E-CONS) reproduces the first "desirable property" of
// acyclic schemes the paper cites in Section 2 (Beeri et al. [2]):
// on α-acyclic schemes, pairwise consistency implies global consistency;
// on the cyclic triangle scheme it does not.
func EConsistency(ctx context.Context) Table {
	t := Table{
		ID:     "E-CONS",
		Title:  "Pairwise vs global consistency across the acyclicity boundary",
		Header: []string{"scheme", "instances", "pairwise ⇒ global", "verdict"},
	}
	r := rand.New(rand.NewSource(31))

	// Random α-acyclic schemes with random instances, reduced to the
	// pairwise-consistency fixpoint: global consistency must follow.
	const samples = 60
	implied, total := 0, 0
	for total < samples {
		h := gen.AlphaAcyclic(r, 2+r.Intn(4), 2, 2)
		if !h.AlphaAcyclic() || h.M() < 2 {
			continue
		}
		total++
		rels := make([]*relational.Relation, h.M())
		for i := 0; i < h.M(); i++ {
			attrs := h.NodeLabels(h.Edge(i))
			rels[i] = relational.NewRelation(fmt.Sprintf("r%d", i), attrs...)
			rows := 2 + r.Intn(5)
			tuple := make([]string, len(attrs))
			for j := 0; j < rows; j++ {
				for k := range tuple {
					tuple[k] = fmt.Sprint(r.Intn(3))
				}
				rels[i].Insert(tuple...)
			}
		}
		reduced := relational.MakePairwiseConsistent(rels)
		if relational.GloballyConsistent(reduced) {
			implied++
		}
	}
	t.Rows = append(t.Rows, []string{
		"random alpha-acyclic", itoa(total),
		fmt.Sprintf("%d/%d", implied, total), verdict(implied == total),
	})

	// The cyclic triangle counterexample: pairwise consistent, full join
	// empty.
	r1 := relational.NewRelation("r1", "a", "b")
	r2 := relational.NewRelation("r2", "b", "c")
	r3 := relational.NewRelation("r3", "c", "a")
	r1.Insert("0", "0")
	r1.Insert("1", "1")
	r2.Insert("0", "1")
	r2.Insert("1", "0")
	r3.Insert("0", "0")
	r3.Insert("1", "1")
	tri := []*relational.Relation{r1, r2, r3}
	pw := relational.PairwiseConsistent(tri)
	gl := relational.GloballyConsistent(tri)
	t.Rows = append(t.Rows, []string{
		"cyclic triangle", "1",
		fmt.Sprintf("pairwise=%v global=%v", pw, gl), verdict(pw && !gl),
	})
	t.Notes = append(t.Notes,
		"the triangle row must show pairwise=true global=false: on cyclic schemes local agreement does not compose, which is why the paper's taxonomy matters to database design")
	return t
}
