package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bipartite"
	"repro/internal/chordality"
	"repro/internal/gen"
)

// EScaling (E-SCALE) measures the polynomial recognizers of Section 2 on
// growing inputs: wall time per classification across sizes. The verdict
// asserts the *shape* — doubling the input must not blow the time up by
// more than a generous polynomial factor (×32 per doubling covers the
// O(m³) conformality scan with headroom while still rejecting exponential
// growth).
func EScaling(ctx context.Context) Table {
	t := Table{
		ID:     "E-SCALE",
		Title:  "Recognizer scaling: full classification time vs graph size",
		Header: []string{"|V|", "|A|", "time per Classify", "growth", "verdict"},
	}
	r := rand.New(rand.NewSource(41))
	var prev time.Duration
	for _, m := range []int{10, 20, 40, 80} {
		h := gen.GammaAcyclic(r, m, 3, 3)
		b := bipartite.FromHypergraph(h).B
		const runs = 3
		start := time.Now()
		for i := 0; i < runs; i++ {
			chordality.Classify(b)
		}
		el := time.Since(start) / runs
		growth := "-"
		ok := true
		if prev > 0 {
			f := float64(el) / float64(prev)
			growth = fmt.Sprintf("x%.1f", f)
			ok = f < 32
		}
		t.Rows = append(t.Rows, []string{
			itoa(b.N()), itoa(b.M()),
			el.Round(time.Microsecond).String(), growth, verdict(ok),
		})
		prev = el
	}
	t.Notes = append(t.Notes,
		"worst-case the O(m³) Gilmore conformality scan dominates; measured growth per size doubling stays in the x2–x4 range on these sparse inputs, nowhere near exponential")
	return t
}
