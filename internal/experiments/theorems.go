package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bipartite"
	"repro/internal/chordality"
	"repro/internal/gen"
	"repro/internal/reference"
	"repro/internal/relational"
	"repro/internal/schema"
	"repro/internal/steiner"
	"repro/internal/ur"
)

// ETheorem1 cross-validates the six statements of Theorem 1 on random
// bipartite graphs, bucketed by size.
func ETheorem1(ctx context.Context) Table {
	t := Table{
		ID:     "E-T1",
		Title:  "Theorem 1: graph-side vs hypergraph-side recognizer agreement",
		Header: []string{"bucket", "samples", "(i)", "(ii)", "(iii)", "(iv)", "(v)", "(vi)", "verdict"},
	}
	r := rand.New(rand.NewSource(1))
	buckets := []struct{ n1, n2, samples int }{
		{3, 3, 150}, {4, 4, 120}, {5, 4, 80},
	}
	for _, bk := range buckets {
		agree := [6]int{}
		for s := 0; s < bk.samples; s++ {
			b := gen.RandomBipartite(r, bk.n1, bk.n2, r.Float64())
			h1 := b.HypergraphV1().H
			h2 := b.HypergraphV2().H
			sw := b.Swap()
			checks := [6]bool{
				chordality.Is41Chordal(b) == h1.BergeAcyclic(),
				chordality.Is62Chordal(b) == h1.GammaAcyclic(),
				chordality.Is61Chordal(b) == h1.BetaAcyclic(),
				chordality.Is41Chordal(sw) == h2.BergeAcyclic() &&
					chordality.Is62Chordal(sw) == h2.GammaAcyclic() &&
					chordality.Is61Chordal(sw) == h2.BetaAcyclic(),
				(chordality.IsV1Chordal(b) && chordality.IsV1Conformal(b)) == h1.AlphaAcyclic(),
				(chordality.IsV2Chordal(b) && chordality.IsV2Conformal(b)) == h2.AlphaAcyclic(),
			}
			for i, ok := range checks {
				if ok {
					agree[i]++
				}
			}
		}
		ok := true
		row := []string{fmt.Sprintf("%dx%d", bk.n1, bk.n2), itoa(bk.samples)}
		for i := 0; i < 6; i++ {
			row = append(row, fmt.Sprintf("%d/%d", agree[i], bk.samples))
			ok = ok && agree[i] == bk.samples
		}
		row = append(row, verdict(ok))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// ECorollary1 checks self-duality of Berge/γ/β acyclicity on random
// hypergraphs, and exhibits the α counterexample.
func ECorollary1(ctx context.Context) Table {
	t := Table{
		ID:     "E-C1",
		Title:  "Corollary 1: self-duality of acyclicity degrees",
		Header: []string{"degree", "samples", "agree(H, dual H)", "verdict"},
	}
	r := rand.New(rand.NewSource(2))
	const samples = 300
	var berge, gamma, beta, alphaDiffer int
	for s := 0; s < samples; s++ {
		h := gen.RandomHypergraph(r, 2+r.Intn(5), 2+r.Intn(4), 5)
		d := h.Dual()
		if h.BergeAcyclic() == d.BergeAcyclic() {
			berge++
		}
		if h.GammaAcyclic() == d.GammaAcyclic() {
			gamma++
		}
		if h.BetaAcyclic() == d.BetaAcyclic() {
			beta++
		}
		if h.AlphaAcyclic() != d.AlphaAcyclic() {
			alphaDiffer++
		}
	}
	t.Rows = [][]string{
		{"Berge", itoa(samples), fmt.Sprintf("%d/%d", berge, samples), verdict(berge == samples)},
		{"gamma", itoa(samples), fmt.Sprintf("%d/%d", gamma, samples), verdict(gamma == samples)},
		{"beta", itoa(samples), fmt.Sprintf("%d/%d", beta, samples), verdict(beta == samples)},
		{"alpha (must differ somewhere)", itoa(samples), fmt.Sprintf("%d differ", alphaDiffer), verdict(alphaDiffer > 0)},
	}
	return t
}

// ECorollary2 counts class memberships across generated families,
// verifying the containment chain and its properness.
func ECorollary2(ctx context.Context) Table {
	t := Table{
		ID:     "E-C2",
		Title:  "Corollary 2: containment (4,1) ⊂ (6,2) ⊂ (6,1) ⊂ Vi-chordal ∧ Vi-conformal",
		Header: []string{"family", "samples", "(4,1)", "(6,2)", "(6,1)", "alphaV1", "alphaV2", "verdict"},
	}
	r := rand.New(rand.NewSource(3))
	families := []struct {
		name string
		make func() *bipartite.Graph
		n    int
	}{
		{"trees", func() *bipartite.Graph { return gen.RandomTree(r, 4+r.Intn(8)) }, 60},
		{"gamma-incidence", func() *bipartite.Graph {
			return bipartite.FromHypergraph(gen.GammaAcyclic(r, 2+r.Intn(4), 2, 2)).B
		}, 60},
		{"alpha-incidence", func() *bipartite.Graph {
			return bipartite.FromHypergraph(gen.AlphaAcyclic(r, 2+r.Intn(4), 3, 2)).B
		}, 60},
		{"random", func() *bipartite.Graph { return gen.RandomBipartite(r, 3+r.Intn(3), 3+r.Intn(3), 0.5) }, 60},
	}
	for _, f := range families {
		var c41, c62, c61, a1, a2 int
		chainOK := true
		for s := 0; s < f.n; s++ {
			cl := chordality.Classify(f.make())
			if cl.Chordal41 {
				c41++
			}
			if cl.Chordal62 {
				c62++
			}
			if cl.Chordal61 {
				c61++
			}
			if cl.AlphaV1() {
				a1++
			}
			if cl.AlphaV2() {
				a2++
			}
			if (cl.Chordal41 && !cl.Chordal62) || (cl.Chordal62 && !cl.Chordal61) ||
				(cl.Chordal61 && !(cl.AlphaV1() && cl.AlphaV2())) {
				chainOK = false
			}
		}
		t.Rows = append(t.Rows, []string{
			f.name, itoa(f.n), itoa(c41), itoa(c62), itoa(c61), itoa(a1), itoa(a2), verdict(chainOK),
		})
	}
	t.Notes = append(t.Notes, "counts increase along the chain; Fig 5 (E-FIG5) witnesses properness of the last containment")
	return t
}

// ETheorem2 demonstrates the NP-hardness shape: exact-solver time on the
// X3C gadget family grows exponentially with q while Algorithm 1 (which
// only minimizes relations) stays polynomial.
func ETheorem2(ctx context.Context) Table {
	t := Table{
		ID:     "E-T2",
		Title:  "Theorem 2: exact Steiner blow-up on X3C gadgets (terminals = 3q+1)",
		Header: []string{"q", "terminals", "nodes", "exact time", "algorithm-1 time", "verdict"},
	}
	r := rand.New(rand.NewSource(4))
	for _, q := range []int{1, 2, 3, 4} {
		inst := steiner.X3CInstance{Q: q, Triples: gen.RandomX3C(r, q, 2*q, true)}
		red, err := steiner.ReduceX3C(inst)
		if err != nil {
			t.Rows = append(t.Rows, []string{itoa(q), "-", "-", err.Error(), "-", "FAIL"})
			continue
		}
		g := red.B.G()
		start := time.Now()
		tree, err := steiner.Exact(g, red.Terminals)
		exactTime := time.Since(start)
		if err != nil {
			t.Rows = append(t.Rows, []string{itoa(q), "-", "-", err.Error(), "-", "FAIL"})
			continue
		}
		start = time.Now()
		_, err1 := steiner.Algorithm1(red.B, red.Terminals)
		a1Time := time.Since(start)
		ok := err1 == nil && tree.Nodes.Len() <= red.Budget
		t.Rows = append(t.Rows, []string{
			itoa(q), itoa(len(red.Terminals)), itoa(g.N()),
			exactTime.Round(time.Microsecond).String(),
			a1Time.Round(time.Microsecond).String(),
			verdict(ok),
		})
	}
	t.Notes = append(t.Notes,
		"exact time grows with 3^(3q) (Dreyfus–Wagner over 3q+1 terminals); Algorithm 1 remains polynomial but only guarantees the relation count (Theorem 2 says total-node optimality is NP-complete on this class)")
	return t
}

// ETheorem3 validates Algorithm 1 exactness (V2 count) against brute force
// on random α-acyclic incidence graphs.
func ETheorem3(ctx context.Context) Table {
	t := Table{
		ID:     "E-T3",
		Title:  "Theorem 3: Algorithm 1 vs brute-force V2 optimum",
		Header: []string{"bucket", "instances", "V2-optimal", "verdict"},
	}
	r := rand.New(rand.NewSource(5))
	buckets := []struct {
		edges, samples int
	}{{3, 60}, {5, 50}, {7, 40}}
	for _, bk := range buckets {
		optimal, total := 0, 0
		for total < bk.samples {
			h := gen.AlphaAcyclic(r, bk.edges, 3, 2)
			b := bipartite.FromHypergraph(h).B
			g := b.G()
			if !g.IsConnected() || g.N() < 3 {
				continue
			}
			total++
			terms := r.Perm(g.N())[:2+r.Intn(2)]
			tree, err := steiner.Algorithm1(b, terms)
			if err != nil {
				continue
			}
			if steiner.V2Count(b, tree) == reference.MinimumV2Count(b, terms) {
				optimal++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d edges", bk.edges), itoa(total),
			fmt.Sprintf("%d/%d", optimal, total), verdict(optimal == total),
		})
	}
	return t
}

// ETheorem4 measures Algorithm 1 scaling: wall time against |V|·|A|,
// reporting the normalized ratio which should stay roughly flat
// (polynomial, near O(|V|·|A|)).
func ETheorem4(ctx context.Context) Table {
	t := Table{
		ID:     "E-T4",
		Title:  "Theorem 4: Algorithm 1 scaling (time per |V|·|A| unit)",
		Header: []string{"edges", "|V|", "|A|", "time", "ns/(V*A)"},
	}
	r := rand.New(rand.NewSource(6))
	for _, m := range []int{20, 40, 80, 160} {
		h := gen.AlphaAcyclic(r, m, 4, 3)
		b := bipartite.FromHypergraph(h).B
		g := b.G()
		terms := []int{0, g.N() - 1}
		// Average a few runs.
		const runs = 5
		start := time.Now()
		for i := 0; i < runs; i++ {
			if _, err := steiner.Algorithm1(b, terms); err != nil {
				t.Rows = append(t.Rows, []string{itoa(m), "-", "-", err.Error(), "-"})
				return t
			}
		}
		el := time.Since(start) / runs
		ratio := float64(el.Nanoseconds()) / float64(g.N()*g.M())
		t.Rows = append(t.Rows, []string{
			itoa(m), itoa(g.N()), itoa(g.M()),
			el.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f", ratio),
		})
	}
	t.Notes = append(t.Notes, "absolute times are machine-local; the ratio column growing slowly (not exponentially) is the claim under test. See also BenchmarkAlgorithm1.")
	return t
}

// ETheorem5 validates Algorithm 2 exactness against Dreyfus–Wagner on
// random (6,2)-chordal graphs and reports its scaling.
func ETheorem5(ctx context.Context) Table {
	t := Table{
		ID:     "E-T5",
		Title:  "Theorem 5: Algorithm 2 vs exact optimum on (6,2)-chordal graphs",
		Header: []string{"bucket", "instances", "optimal", "verdict"},
	}
	r := rand.New(rand.NewSource(7))
	buckets := []struct{ edges, samples int }{{3, 60}, {5, 50}, {7, 40}}
	for _, bk := range buckets {
		optimal, total := 0, 0
		for total < bk.samples {
			h := gen.GammaAcyclic(r, bk.edges, 2, 2)
			b := bipartite.FromHypergraph(h).B
			g := b.G()
			if !g.IsConnected() || g.N() < 3 {
				continue
			}
			total++
			terms := r.Perm(g.N())[:2+r.Intn(2)]
			tree, err := steiner.Algorithm2(g, terms)
			if err != nil {
				continue
			}
			if tree.Nodes.Len() == steiner.ExactCost(g, terms) {
				optimal++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d edges", bk.edges), itoa(total),
			fmt.Sprintf("%d/%d", optimal, total), verdict(optimal == total),
		})
	}
	return t
}

// ECorollary5 verifies that random orderings all reach the optimum on
// (6,2)-chordal graphs.
func ECorollary5(ctx context.Context) Table {
	t := Table{
		ID:     "E-C5",
		Title:  "Corollary 5: random elimination orderings on (6,2)-chordal graphs",
		Header: []string{"instances", "orderings each", "all minimum", "verdict"},
	}
	r := rand.New(rand.NewSource(8))
	const instances, orderings = 40, 8
	good, total := 0, 0
	for total < instances {
		h := gen.GammaAcyclic(r, 2+r.Intn(4), 2, 2)
		b := bipartite.FromHypergraph(h).B
		g := b.G()
		if !g.IsConnected() || g.N() < 3 {
			continue
		}
		total++
		terms := r.Perm(g.N())[:2]
		want := reference.SteinerMinimumNodes(g, terms)
		all := true
		for k := 0; k < orderings; k++ {
			tree, err := steiner.EliminateOrdered(g, terms, r.Perm(g.N()))
			if err != nil || tree.Nodes.Len() != want {
				all = false
			}
		}
		if all {
			good++
		}
	}
	t.Rows = append(t.Rows, []string{
		itoa(total), itoa(orderings), fmt.Sprintf("%d/%d", good, total), verdict(good == total),
	})
	return t
}

// EUniversalRelation runs the end-to-end universal-relation flow: plan
// size equals the pseudo-Steiner optimum and Yannakakis evaluation equals
// the naive join.
func EUniversalRelation(ctx context.Context) Table {
	t := Table{
		ID:     "E-UR",
		Title:  "Universal relation interface: plan minimality and evaluation correctness",
		Header: []string{"query", "relations in plan", "V2-optimal", "evaluation", "verdict"},
	}
	s := schema.MustNew(
		schema.RelScheme{Name: "emp", Attrs: []string{"name", "dept"}},
		schema.RelScheme{Name: "dept", Attrs: []string{"dept", "floor"}},
		schema.RelScheme{Name: "floorplan", Attrs: []string{"floor", "area"}},
	)
	emp := relational.NewRelation("emp", "name", "dept")
	emp.Insert("ann", "toys")
	emp.Insert("bob", "tools")
	deptR := relational.NewRelation("dept", "dept", "floor")
	deptR.Insert("toys", "1")
	deptR.Insert("tools", "2")
	fp := relational.NewRelation("floorplan", "floor", "area")
	fp.Insert("1", "100")
	fp.Insert("2", "250")
	u, err := ur.New(s, emp, deptR, fp)
	if err != nil {
		t.Rows = append(t.Rows, []string{"-", err.Error(), "-", "-", "FAIL"})
		return t
	}
	queries := [][]string{
		{"name", "dept"},
		{"name", "floor"},
		{"name", "area"},
	}
	for _, q := range queries {
		res, plan, err := u.Answer(ctx, q)
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprint(q), err.Error(), "-", "-", "FAIL"})
			continue
		}
		naive := relational.JoinNaive([]*relational.Relation{emp, deptR, fp}).Project(q...)
		evalOK := relational.Equal(res, naive)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(q),
			fmt.Sprint(plan.Relations),
			fmt.Sprint(plan.Connection.V2Optimal),
			fmt.Sprint(evalOK),
			verdict(plan.Connection.V2Optimal && evalOK),
		})
	}
	return t
}
