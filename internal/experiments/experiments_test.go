package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestAllExperimentsPass(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb := e.Run(context.Background())
			if tb.ID != e.ID {
				t.Errorf("table id %q != experiment id %q", tb.ID, e.ID)
			}
			if !tb.Pass() {
				t.Errorf("experiment failed:\n%s", tb.String())
			}
			if len(tb.Rows) == 0 {
				t.Error("experiment produced no rows")
			}
			for _, r := range tb.Rows {
				if len(r) != len(tb.Header) {
					t.Errorf("row %v does not match header %v", r, tb.Header)
				}
			}
		})
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "verdict"},
		Rows:   [][]string{{"1", "PASS"}},
		Notes:  []string{"a note"},
	}
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "note: a note") {
		t.Errorf("String = %q", s)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | verdict |") {
		t.Errorf("Markdown = %q", md)
	}
	if !tb.Pass() {
		t.Error("Pass should be true")
	}
	tb.Rows = append(tb.Rows, []string{"2", "FAIL"})
	if tb.Pass() {
		t.Error("Pass should be false with a FAIL row")
	}
	tb.Header = []string{"a", "b"}
	if !tb.Pass() {
		t.Error("tables without verdict column always pass")
	}
}
