package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/bipartite"
	"repro/internal/gen"
	"repro/internal/reference"
	"repro/internal/steiner"
)

// EAblationOrdering (E-ABL1) shows the Lemma 1 ordering is load-bearing in
// Algorithm 1: with the proper ordering the V2 count is always optimal;
// with random V2 orderings the same elimination loses optimality on a
// non-trivial fraction of α-acyclic instances.
func EAblationOrdering(ctx context.Context) Table {
	t := Table{
		ID:     "E-ABL1",
		Title:  "Ablation: Algorithm 1 with Lemma 1 ordering vs random V2 orderings",
		Header: []string{"variant", "instances", "V2-optimal", "verdict"},
	}
	r := rand.New(rand.NewSource(21))
	const samples = 120
	lemmaOK, randomOK, total := 0, 0, 0
	for total < samples {
		// Subset edges create parallel routes; without them almost any
		// ordering happens to be optimal and the ablation shows nothing.
		h := gen.WithSubsetEdges(r, gen.AlphaAcyclic(r, 3+r.Intn(4), 3, 2), 2+r.Intn(3))
		b := bipartite.FromHypergraph(h).B
		g := b.G()
		if !g.IsConnected() || g.N() < 4 {
			continue
		}
		total++
		terms := r.Perm(g.N())[:2+r.Intn(2)]
		want := reference.MinimumV2Count(b, terms)
		if tree, err := steiner.Algorithm1(b, terms); err == nil && steiner.V2Count(b, tree) == want {
			lemmaOK++
		}
		if tree, err := steiner.Algorithm1WithOrder(b, terms, r.Perm(g.N())); err == nil && steiner.V2Count(b, tree) == want {
			randomOK++
		}
	}
	t.Rows = [][]string{
		{"Lemma 1 ordering", itoa(total), fmt.Sprintf("%d/%d", lemmaOK, total), verdict(lemmaOK == total)},
		{"random ordering", itoa(total), fmt.Sprintf("%d/%d", randomOK, total), verdict(randomOK < total)},
	}
	t.Notes = append(t.Notes,
		"the random-ordering row must FAIL to reach 100%: without the running-intersection ordering the single elimination pass is not V2-optimal, which is exactly why Theorem 4 routes through Tarjan–Yannakakis")
	return t
}

// EAblationCoverSemantics (E-ABL2) shows the relaxed cover test
// ("terminals stay connected") is load-bearing: under the strict
// whole-graph-connectivity reading, a single elimination pass loses
// minimality even on (6,2)-chordal graphs.
func EAblationCoverSemantics(ctx context.Context) Table {
	t := Table{
		ID:     "E-ABL2",
		Title:  "Ablation: relaxed vs strict cover test in ordered elimination",
		Header: []string{"variant", "instances", "minimum reached", "verdict"},
	}
	r := rand.New(rand.NewSource(22))
	const samples = 120
	relaxedOK, strictOK, total := 0, 0, 0
	for total < samples {
		h := gen.GammaAcyclic(r, 2+r.Intn(5), 2, 2)
		b := bipartite.FromHypergraph(h).B
		g := b.G()
		if !g.IsConnected() || g.N() < 4 {
			continue
		}
		total++
		terms := r.Perm(g.N())[:2]
		want := reference.SteinerMinimumNodes(g, terms)
		order := r.Perm(g.N())
		if tree, err := steiner.EliminateOrdered(g, terms, order); err == nil && tree.Nodes.Len() == want {
			relaxedOK++
		}
		if tree, err := steiner.EliminateOrderedStrict(g, terms, order); err == nil && tree.Nodes.Len() == want {
			strictOK++
		}
	}
	t.Rows = [][]string{
		{"relaxed (terminals connected)", itoa(total), fmt.Sprintf("%d/%d", relaxedOK, total), verdict(relaxedOK == total)},
		{"strict (whole graph connected)", itoa(total), fmt.Sprintf("%d/%d", strictOK, total), verdict(strictOK < total)},
	}
	t.Notes = append(t.Notes,
		"under the strict reading a kept node blocks behind pendant fragments that are only removed later in the pass, so Corollary 5 would be false; the relaxed reading restores both correctness and the single-pass O(|V|·|A|) bound")
	return t
}

// EOpenProblem (E-OPEN) probes the paper's closing open problem: Steiner
// on (6,1)-chordal graphs. Neither Algorithm 2's guarantee nor a good
// ordering exists (Theorem 6); the table reports the gap between the
// elimination heuristic / 2-approximation and the exact optimum on random
// β-acyclic incidence graphs.
func EOpenProblem(ctx context.Context) Table {
	t := Table{
		ID:     "E-OPEN",
		Title:  "Open problem corner: Steiner on (6,1)-chordal graphs (no polynomial algorithm known)",
		Header: []string{"solver", "instances", "optimal", "worst overshoot", "verdict"},
	}
	r := rand.New(rand.NewSource(23))
	const samples = 100
	var elimOK, apxOK, total, elimWorst, apxWorst int
	for total < samples {
		// β-acyclic hypergraphs via rejection from sparse random ones.
		h := gen.RandomHypergraph(r, 3+r.Intn(4), 2+r.Intn(3), 3)
		if !h.BetaAcyclic() {
			continue
		}
		b := bipartite.FromHypergraph(h).B
		g := b.G()
		if !g.IsConnected() || g.N() < 4 {
			continue
		}
		total++
		terms := r.Perm(g.N())[:2+r.Intn(2)]
		want := reference.SteinerMinimumNodes(g, terms)
		if tree, err := steiner.EliminateOrdered(g, terms, r.Perm(g.N())); err == nil {
			if tree.Nodes.Len() == want {
				elimOK++
			} else if d := tree.Nodes.Len() - want; d > elimWorst {
				elimWorst = d
			}
		}
		if tree, err := steiner.Approximate(g, terms); err == nil {
			if tree.Nodes.Len() == want {
				apxOK++
			} else if d := tree.Nodes.Len() - want; d > apxWorst {
				apxWorst = d
			}
		}
	}
	t.Rows = [][]string{
		{"ordered elimination", itoa(total), fmt.Sprintf("%d/%d", elimOK, total), fmt.Sprintf("+%d nodes", elimWorst), verdict(true)},
		{"2-approximation", itoa(total), fmt.Sprintf("%d/%d", apxOK, total), fmt.Sprintf("+%d nodes", apxWorst), verdict(true)},
	}
	t.Notes = append(t.Notes,
		"informational (always PASS): the paper leaves polynomial exactness open for this class; Theorem 6 (E-FIG11) shows ordering-based elimination cannot close it")
	return t
}
