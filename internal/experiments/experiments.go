// Package experiments reproduces, as printable tables, every figure-level
// and theorem-level claim of the paper (the per-experiment index lives in
// DESIGN.md §4). Each experiment is a function returning a Table;
// cmd/experiments renders them all, and EXPERIMENTS.md records a captured
// run. Tests in this package assert the PASS/FAIL verdicts, so the
// experiment suite is itself part of the test suite.
package experiments

import (
	"context"
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Pass reports whether every row marked with a verdict column says "PASS".
// Rows without a verdict column count as pass.
func (t Table) Pass() bool {
	col := -1
	for i, h := range t.Header {
		if strings.EqualFold(h, "verdict") {
			col = i
		}
	}
	if col == -1 {
		return true
	}
	for _, r := range t.Rows {
		if col < len(r) && r[col] != "PASS" {
			return false
		}
	}
	return true
}

// String renders the table as aligned plain text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}

// Experiment couples an id with its generator. Run accepts the caller's
// context so interpretation search and universal-relation evaluation
// inherit deadlines; experiments that finish without blocking ignore it.
type Experiment struct {
	ID  string
	Run func(context.Context) Table
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"E-FIG1", EFig1},
		{"E-FIG2", EFig2},
		{"E-FIG34", EFig34},
		{"E-FIG5", EFig5},
		{"E-FIG6", EFig6},
		{"E-FIG8", EFig8},
		{"E-FIG9", EFig9},
		{"E-FIG10", EFig10},
		{"E-FIG11", EFig11},
		{"E-T1", ETheorem1},
		{"E-C1", ECorollary1},
		{"E-C2", ECorollary2},
		{"E-T2", ETheorem2},
		{"E-T3", ETheorem3},
		{"E-T4", ETheorem4},
		{"E-T5", ETheorem5},
		{"E-SCALE", EScaling},
		{"E-C5", ECorollary5},
		{"E-UR", EUniversalRelation},
		{"E-CONS", EConsistency},
		{"E-ABL1", EAblationOrdering},
		{"E-ABL2", EAblationCoverSemantics},
		{"E-OPEN", EOpenProblem},
	}
}

func verdict(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

func itoa(x int) string { return fmt.Sprintf("%d", x) }
