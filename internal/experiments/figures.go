package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/bipartite"
	"repro/internal/chordality"
	"repro/internal/er"
	"repro/internal/fixtures"
	"repro/internal/gen"
	"repro/internal/intset"
	"repro/internal/reference"
	"repro/internal/steiner"
)

// EFig1 reproduces Fig 1: the EMPLOYEE/DATE query over the
// entity–relationship scheme, whose minimal interpretation is the
// birthdate aggregation and whose second interpretation goes through
// WORKS_IN.
func EFig1(ctx context.Context) Table {
	s := er.Fig1Scheme()
	interps, err := s.Interpretations(ctx, []string{"EMPLOYEE", "DATE"}, 3)
	t := Table{
		ID:     "E-FIG1",
		Title:  "Fig 1: ranked interpretations of the query {EMPLOYEE, DATE}",
		Header: []string{"rank", "objects", "auxiliary", "verdict"},
	}
	if err != nil {
		t.Rows = append(t.Rows, []string{"-", err.Error(), "-", "FAIL"})
		return t
	}
	for i, in := range interps {
		want := true
		switch i {
		case 0:
			want = len(in.Auxiliary) == 0
		case 1:
			want = len(in.Auxiliary) == 1 && in.Auxiliary[0] == "WORKS_IN"
		}
		t.Rows = append(t.Rows, []string{
			itoa(i + 1),
			strings.Join(in.Objects, " "),
			strings.Join(in.Auxiliary, " "),
			verdict(want),
		})
	}
	t.Notes = append(t.Notes,
		`interpretation 1 = "employees with their birthdate" (no auxiliary object); interpretation 2 = "the date from which they work in a department" (WORKS_IN auxiliary), matching the paper's reading order`)
	return t
}

// EFig2 reproduces Fig 2: H¹G α-acyclic, H²G not — α-acyclicity is not
// self-dual.
func EFig2(ctx context.Context) Table {
	b := fixtures.Fig2()
	h1 := b.HypergraphV1().H
	h2 := b.HypergraphV2().H
	cl := chordality.Classify(b)
	return Table{
		ID:     "E-FIG2",
		Title:  "Fig 2: the two hypergraphs of one bipartite graph",
		Header: []string{"object", "property", "value", "verdict"},
		Rows: [][]string{
			{"G", "V1-chordal ∧ V1-conformal", fmt.Sprint(cl.AlphaV1()), verdict(cl.AlphaV1())},
			{"H1(G)", "alpha-acyclic", fmt.Sprint(h1.AlphaAcyclic()), verdict(h1.AlphaAcyclic())},
			{"H2(G)", "alpha-acyclic", fmt.Sprint(h2.AlphaAcyclic()), verdict(!h2.AlphaAcyclic())},
			{"G", "(6,1)-chordal", fmt.Sprint(cl.Chordal61), verdict(!cl.Chordal61)},
		},
		Notes: []string{"H2 fails α-acyclicity although H1 satisfies it: the duality property does not hold for α (remark after Corollary 1)"},
	}
}

// EFig34 reproduces Figs 3a–c / 4a–c: the chordality ladder and its
// hypergraph images under Theorem 1.
func EFig34(ctx context.Context) Table {
	t := Table{
		ID:     "E-FIG34",
		Title:  "Figs 3/4: chordality of the example graphs vs acyclicity of their hypergraphs",
		Header: []string{"figure", "(4,1)", "(6,2)", "(6,1)", "H1 degree", "verdict"},
	}
	cases := []struct {
		name           string
		b              *bipartite.Graph
		w41, w62, w61  bool
		wantDegreeName string
	}{
		{"3a/4a", fixtures.Fig3a(), true, true, true, "Berge-acyclic"},
		{"3b/4b", fixtures.Fig3b(), false, true, true, "gamma-acyclic"},
		{"3c/4c", fixtures.Fig3c(), false, false, true, "beta-acyclic"},
	}
	for _, c := range cases {
		cl := chordality.Classify(c.b)
		deg := c.b.HypergraphV1().H.Classify().String()
		ok := cl.Chordal41 == c.w41 && cl.Chordal62 == c.w62 && cl.Chordal61 == c.w61 && deg == c.wantDegreeName
		t.Rows = append(t.Rows, []string{
			c.name, fmt.Sprint(cl.Chordal41), fmt.Sprint(cl.Chordal62), fmt.Sprint(cl.Chordal61), deg, verdict(ok),
		})
	}
	return t
}

// EFig5 reproduces Fig 5: Vi-chordal ∧ Vi-conformal for both sides but not
// (6,1)-chordal — the containment of Corollary 2 is proper.
func EFig5(ctx context.Context) Table {
	cl := chordality.Classify(fixtures.Fig5())
	return Table{
		ID:     "E-FIG5",
		Title:  "Fig 5: proper containment witness for Corollary 2",
		Header: []string{"property", "value", "verdict"},
		Rows: [][]string{
			{"V1-chordal ∧ V1-conformal", fmt.Sprint(cl.AlphaV1()), verdict(cl.AlphaV1())},
			{"V2-chordal ∧ V2-conformal", fmt.Sprint(cl.AlphaV2()), verdict(cl.AlphaV2())},
			{"(6,1)-chordal", fmt.Sprint(cl.Chordal61), verdict(!cl.Chordal61)},
		},
	}
}

// EFig6 reproduces Fig 6 / Theorem 2: the X3C gadget on the paper's
// instance. The instance is solvable, so the Steiner optimum hits the 4q+1
// budget exactly.
func EFig6(ctx context.Context) Table {
	inst := fixtures.Fig6Instance()
	red, err := steiner.ReduceX3C(inst)
	t := Table{
		ID:     "E-FIG6",
		Title:  "Fig 6: X3C reduction on the paper's instance (q=2)",
		Header: []string{"quantity", "value", "verdict"},
	}
	if err != nil {
		t.Rows = append(t.Rows, []string{"reduction", err.Error(), "FAIL"})
		return t
	}
	opt := reference.SteinerMinimumNodes(red.B.G(), red.Terminals)
	v1ok := chordality.IsV1Chordal(red.B) && chordality.IsV1Conformal(red.B)
	// Corollary 3: minimizing the V1 side alone is equally hard; on this
	// gadget the minimum V1 count is exactly q iff the instance solves.
	minV1 := reference.MinimumV2Count(red.B.Swap(), red.Terminals)
	t.Rows = [][]string{
		{"X3C solvable", fmt.Sprint(inst.Solve()), verdict(inst.Solve())},
		{"gadget V1-chordal ∧ V1-conformal", fmt.Sprint(v1ok), verdict(v1ok)},
		{"Steiner optimum", itoa(opt), verdict(opt == red.Budget)},
		{"budget 4q+1", itoa(red.Budget), verdict(true)},
		{"min V1 nodes (Corollary 3)", itoa(minV1), verdict(minV1 == 2)},
	}
	t.Notes = append(t.Notes, "optimum = budget exactly: 3q+1 terminals plus the q triple-nodes of an exact cover; the V1 minimum equals q = 2 (Corollary 3's measure)")
	return t
}

// EFig8 reproduces Fig 8: the four cover concepts of Definition 10 are
// distinct on one graph.
func EFig8(ctx context.Context) Table {
	b := fixtures.Fig8()
	g := b.G()
	terms := g.IDs("A", "C", "D")
	nonred := intset.FromSlice(g.IDs("A", "B", "C", "D", "1", "3"))
	minimum := intset.FromSlice(g.IDs("A", "C", "D", "2", "3"))
	rows := [][]string{
		{"{A,B,C,D,1,3}", "nonredundant cover", verdict(reference.IsNonredundantCover(g, nonred, terms))},
		{"{A,B,C,D,1,3}", "NOT minimum", verdict(!reference.IsMinimumCover(g, nonred, terms))},
		{"{A,C,D,2,3}", "minimum cover", verdict(reference.IsMinimumCover(g, minimum, terms))},
		{"{A,C,D,2,3}", "nonredundant cover", verdict(reference.IsNonredundantCover(g, minimum, terms))},
	}
	return Table{
		ID:     "E-FIG8",
		Title:  "Fig 8: nonredundant vs minimum covers of P = {A, C, D}",
		Header: []string{"node set", "claim", "verdict"},
		Rows:   rows,
	}
}

// EFig9 reproduces Fig 9: the CSPC reduction — subdividing a chordal graph
// yields a V1-chordal (not V1-conformal) gadget on which pseudo-Steiner
// w.r.t. V2 equals the original arc-minimum connection problem.
func EFig9(ctx context.Context) Table {
	r := rand.New(rand.NewSource(9))
	t := Table{
		ID:     "E-FIG9",
		Title:  "Fig 9: CSPC reduction equivalence on random chordal graphs",
		Header: []string{"instance", "|V|", "|A|", "min arcs (direct)", "min V2 (gadget)", "V1-chordal", "verdict"},
	}
	for i := 0; i < 6; i++ {
		g := gen.RandomChordalGraph(r, 4+r.Intn(4), 2)
		if !g.IsConnected() {
			continue
		}
		red := steiner.ReduceCSPC(g)
		terms := []int{0, g.N() - 1}
		gadgetTerms := []int{red.NodeVs[0], red.NodeVs[g.N()-1]}
		direct := reference.SteinerMinimumNodes(g, terms) - 1
		viaGadget := reference.MinimumV2Count(red.B, gadgetTerms)
		v1c := chordality.IsV1Chordal(red.B)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("chordal-%d", i), itoa(g.N()), itoa(g.M()),
			itoa(direct), itoa(viaGadget), fmt.Sprint(v1c),
			verdict(direct == viaGadget && v1c),
		})
	}
	return t
}

// EFig10 reproduces Fig 10 / Lemma 4: the nonredundant-but-not-minimum
// path in a single-chord 6-cycle.
func EFig10(ctx context.Context) Table {
	b := fixtures.Fig10()
	g := b.G()
	long := g.IDs("B", "2", "C", "3", "A")
	terms := []int{g.MustID("B"), g.MustID("A")}
	nonred := reference.IsNonredundantCover(g, intset.FromSlice(long), terms)
	notMin := !reference.IsMinimumCover(g, intset.FromSlice(long), terms)
	is62 := chordality.Is62Chordal(b)
	return Table{
		ID:     "E-FIG10",
		Title:  "Fig 10: Lemma 4 on the single-chord 6-cycle",
		Header: []string{"claim", "value", "verdict"},
		Rows: [][]string{
			{"distance(A, B)", itoa(g.Distance(terms[0], terms[1])), verdict(g.Distance(terms[0], terms[1]) == 2)},
			{"path B-2-C-3-A nonredundant", fmt.Sprint(nonred), verdict(nonred)},
			{"path B-2-C-3-A not minimum", fmt.Sprint(notMin), verdict(notMin)},
			{"graph (6,2)-chordal", fmt.Sprint(is62), verdict(!is62)},
		},
		Notes: []string{"a nonredundant non-minimum path exists exactly because the graph is not (6,2)-chordal (Lemma 4)"},
	}
}

// EFig11 reproduces Theorem 6 / Fig 11: a (6,1)-chordal graph with no good
// ordering — each of the four leading-node cases has a witness terminal
// set on which elimination misses the optimum.
func EFig11(ctx context.Context) Table {
	b := fixtures.Fig11()
	g := b.G()
	t := Table{
		ID:     "E-FIG11",
		Title:  "Fig 11 / Theorem 6: every ordering case fails on its witness set",
		Header: []string{"case", "terminals", "optimum", "elimination result", "verdict"},
	}
	if !chordality.Is61Chordal(b) {
		t.Rows = append(t.Rows, []string{"precondition", "(6,1)-chordal", "-", "-", "FAIL"})
		return t
	}
	for _, tc := range fixtures.Fig11Cases() {
		lead := g.MustID(tc.Lead)
		terms := g.IDs(tc.Terminals...)
		opt := reference.SteinerMinimumNodes(g, terms)
		worst := opt
		// Try several orderings with the case's lead node first; all must
		// miss the optimum.
		allMiss := true
		for trial := 0; trial < 6; trial++ {
			r := rand.New(rand.NewSource(int64(trial)))
			order := []int{lead}
			for _, v := range r.Perm(g.N()) {
				if v != lead {
					order = append(order, v)
				}
			}
			tree, err := steiner.EliminateOrdered(g, terms, order)
			if err != nil {
				allMiss = false
				break
			}
			if tree.Nodes.Len() <= opt {
				allMiss = false
			}
			if tree.Nodes.Len() > worst {
				worst = tree.Nodes.Len()
			}
		}
		t.Rows = append(t.Rows, []string{
			tc.Lead + " first",
			strings.Join(tc.Terminals, ","),
			itoa(opt), itoa(worst),
			verdict(allMiss),
		})
	}
	t.Notes = append(t.Notes, "every node ordering starts with one of A, B, 1, 2 among that quadruple, so no ordering is good (Theorem 6)")
	return t
}
