package snapshot_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/snapshot"
)

// randomScheme rotates through the same scheme families as the PR 3 wire
// harness (httpd/equivalence_test.go), so every dispatch arm — Algorithm 2,
// Algorithm 1, exact, heuristic — and the disconnected case come up.
func randomScheme(r *rand.Rand, i int) *bipartite.Graph {
	switch i % 4 {
	case 0:
		return gen.RandomConnectedBipartite(r, 3+r.Intn(5), 2+r.Intn(4), 0.2+0.4*r.Float64())
	case 1:
		return bipartite.FromHypergraph(gen.AlphaAcyclic(r, 3+r.Intn(4), 2, 2)).B
	case 2:
		return gen.RandomTree(r, 4+r.Intn(9))
	default:
		return gen.CompleteBipartite(2+r.Intn(3), 2+r.Intn(3))
	}
}

// randomTerminals picks 1–4 distinct node ids (either side).
func randomTerminals(r *rand.Rand, n int) []int {
	k := 1 + r.Intn(4)
	if k > n {
		k = n
	}
	return r.Perm(n)[:k]
}

// TestRoundTripEquivalence is the acceptance property of this subsystem:
// over ≥200 random schemes spanning the chordality taxonomy, a Connector
// revived from Decode(Encode(scheme)) must answer every query bit-for-bit
// like the freshly frozen one — nodes, edges, method, optimality flags,
// rationale, ranked interpretations — and fail with the same typed errors.
// Both the zero-copy and the copying decode path are exercised.
func TestRoundTripEquivalence(t *testing.T) {
	const schemeCount = 200
	r := rand.New(rand.NewSource(1985))
	ctx := context.Background()

	for i := 0; i < schemeCount; i++ {
		b := randomScheme(r, i)
		if b.N() == 0 {
			continue
		}
		fresh := core.New(b)
		data := snapshot.Encode(fresh.Frozen(), fresh.Class())

		// Decode twice: once aligned (zero-copy on LE hosts), once off a
		// deliberately misaligned buffer (copying fallback).
		snapZC, err := snapshot.Decode(data)
		if err != nil {
			t.Fatalf("scheme %d: Decode: %v", i, err)
		}
		shifted := make([]byte, len(data)+1)
		copy(shifted[1:], data)
		snapCopy, err := snapshot.Decode(shifted[1:])
		if err != nil {
			t.Fatalf("scheme %d: misaligned Decode: %v", i, err)
		}
		if snapCopy.ZeroCopy {
			t.Fatalf("scheme %d: misaligned decode claims zero-copy", i)
		}

		for _, snap := range []*snapshot.Snapshot{snapZC, snapCopy} {
			if snap.Class != fresh.Class() {
				t.Fatalf("scheme %d: class drifted: %+v vs %+v", i, snap.Class, fresh.Class())
			}
			loaded := core.NewFromSnapshot(snap)
			if loaded.SnapshotVersion() != snapshot.Version {
				t.Fatalf("scheme %d: loaded connector not stamped with the format version", i)
			}

			for q := 0; q < 4; q++ {
				terms := randomTerminals(r, b.N())
				var opts []core.QueryOption
				switch q {
				case 1:
					opts = append(opts, core.WithMethod(core.MethodHeuristic))
				case 2:
					opts = append(opts, core.WithQueryExactLimit(1+r.Intn(6)))
				case 3:
					opts = append(opts, core.WithInterpretations(2, 3))
				}
				assertSameAnswer(t, ctx, fresh, loaded, terms, opts, fmt.Sprintf("scheme %d query %d", i, q))
			}

			// Typed-error parity on queries that must fail validation.
			for _, terms := range [][]int{{}, {0, 0}, {b.N() + 7}, {-1}} {
				assertSameAnswer(t, ctx, fresh, loaded, terms, nil, fmt.Sprintf("scheme %d invalid %v", i, terms))
			}
		}
	}
}

// assertSameAnswer runs the same query on both connectors and requires
// deep-equal Connections and errors.Is-equivalent failures.
func assertSameAnswer(t *testing.T, ctx context.Context, fresh, loaded *core.Connector, terms []int, opts []core.QueryOption, tag string) {
	t.Helper()
	fc, ferr := fresh.Connect(ctx, terms, opts...)
	lc, lerr := loaded.Connect(ctx, terms, opts...)
	if (ferr == nil) != (lerr == nil) {
		t.Fatalf("%s: error divergence: fresh=%v loaded=%v", tag, ferr, lerr)
	}
	if ferr != nil {
		if ferr.Error() != lerr.Error() || !sameTypedError(ferr, lerr) {
			t.Fatalf("%s: different failures: fresh=%v loaded=%v", tag, ferr, lerr)
		}
		return
	}
	if !reflect.DeepEqual(fc, lc) {
		t.Fatalf("%s: answers diverge:\nfresh:  %+v\nloaded: %+v", tag, fc, lc)
	}
}

// sameTypedError checks that both errors match the same sentinels.
func sameTypedError(a, b error) bool {
	for _, sentinel := range []error{
		core.ErrEmptyQuery, core.ErrInvalidTerminal, core.ErrTooManyTerminals,
	} {
		if errors.Is(a, sentinel) != errors.Is(b, sentinel) {
			return false
		}
	}
	return true
}

// TestServiceAndRegistryRoundTrip drives the persistence path the serving
// stack uses: Service.SaveSnapshot → Registry.LoadSnapshot must install an
// epoch that answers like the original, stamped with its provenance, and a
// later Set must swap it out atomically.
func TestServiceAndRegistryRoundTrip(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(7))
	b := gen.RandomConnectedBipartite(r, 6, 4, 0.4)
	reg := core.NewRegistry()
	reg.Set("s", b)
	if got := reg.Source("s"); got != core.SourceCompiled {
		t.Fatalf("Source after Set = %q", got)
	}

	var buf bytes.Buffer
	if err := reg.SaveSnapshot("s", &buf); err != nil {
		t.Fatal(err)
	}
	if err := reg.SaveSnapshot("ghost", &buf); !errors.Is(err, core.ErrUnknownScheme) {
		t.Fatalf("SaveSnapshot(ghost) = %v", err)
	}

	loaded, err := reg.LoadSnapshot("restored", buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Source("restored"); got != "snapshot-v1" {
		t.Fatalf("Source after LoadSnapshot = %q", got)
	}
	if reg.Epoch("restored") != 1 {
		t.Fatalf("epoch after LoadSnapshot = %d", reg.Epoch("restored"))
	}

	orig, _ := reg.Get("s")
	for q := 0; q < 8; q++ {
		terms := randomTerminals(r, b.N())
		c1, e1 := orig.Connect(ctx, terms)
		c2, e2 := loaded.Connect(ctx, terms)
		if (e1 == nil) != (e2 == nil) || !reflect.DeepEqual(c1, c2) {
			t.Fatalf("terms %v: service answers diverge (%v / %v)", terms, e1, e2)
		}
	}

	// Corrupt bytes must leave the catalog untouched.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[len(bad)-1] ^= 1
	if _, err := reg.LoadSnapshot("restored", bad); !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("LoadSnapshot(corrupt) = %v", err)
	}
	if reg.Epoch("restored") != 1 {
		t.Fatalf("failed load bumped the epoch")
	}

	// A recompile swaps the snapshot epoch out and restamps the source.
	reg.Set("restored", b)
	if reg.Epoch("restored") != 2 || reg.Source("restored") != core.SourceCompiled {
		t.Fatalf("swap after snapshot: epoch %d source %q", reg.Epoch("restored"), reg.Source("restored"))
	}
	// The held snapshot-epoch Service keeps answering.
	if _, err := loaded.Connect(ctx, []int{0}); err != nil {
		t.Fatalf("old snapshot epoch died after swap: %v", err)
	}
}
