package snapshot

import (
	"bytes"
	"testing"

	"repro/internal/bipartite"
)

// FuzzDecode hammers the parser with arbitrary bytes: it must never panic,
// and whatever it does accept must be internally consistent — re-encoding
// the decoded epoch yields a canonical snapshot that decodes to the same
// graph. The seeds cover the interesting strata: valid files (with and
// without the matrix section), truncations at every structural boundary,
// bit flips, and a version bump. go test -fuzz=FuzzDecode explores from
// there; the checked-in corpus under testdata/fuzz keeps past findings as
// regression inputs.
func FuzzDecode(f *testing.F) {
	fb, class := compile(libraryScheme())
	valid := Encode(fb, class)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)/2])
	for _, cut := range []int{1, 8, 12, 24, 31} {
		f.Add(valid[:cut])
	}
	flipped := append([]byte(nil), valid...)
	flipped[40] ^= 0x10
	f.Add(flipped)
	versioned := append([]byte(nil), valid...)
	le.PutUint16(versioned[8:], 2)
	f.Add(versioned)
	empty, emptyClass := compile(bipartite.New())
	f.Add(Encode(empty, emptyClass))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			if snap != nil {
				t.Fatalf("Decode returned both a snapshot and %v", err)
			}
			return
		}
		// Accepted bytes must round-trip to a stable canonical form.
		re := Encode(snap.Frozen, snap.Class)
		again, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode of an accepted snapshot does not decode: %v", err)
		}
		if again.Class != snap.Class ||
			again.Frozen.N() != snap.Frozen.N() ||
			again.Frozen.M() != snap.Frozen.M() {
			t.Fatalf("re-encode drifted: %+v vs %+v", again, snap)
		}
		if !bytes.Equal(Encode(again.Frozen, again.Class), re) {
			t.Fatalf("canonical form is not a fixed point")
		}
	})
}
