package snapshot

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/chordality"
)

// warmFixture returns the compiled library epoch and two valid warm
// entries — deliberately out of canonical order so every test exercises
// the encoder's sort. Node ids follow insertion order in libraryScheme:
// A,B,C = 0,1,2 and 1,2,3 = 3,4,5.
func warmFixture() (fb *bipartite.Frozen, class chordality.Class, entries []WarmEntry) {
	f, c := compile(libraryScheme())
	return f, c, []WarmEntry{
		{
			Fingerprint: "m1",
			Terminals:   []int32{1, 4},
			Method:      2,
			Optimal:     true,
			CostNanos:   7_500_000,
			Rationale:   "exact over chordal core",
			Nodes:       []int32{1, 4},
			Edges:       [][2]int32{{1, 4}},
		},
		{
			Terminals: []int32{0, 2, 3},
			Method:    1,
			V2Optimal: true,
			CostNanos: 2_000,
			Nodes:     []int32{0, 2, 3},
			Edges:     [][2]int32{{0, 3}, {2, 3}},
		},
	}
}

// TestWarmRoundTrip: EncodeWarm → Decode restores the entries in canonical
// order, bit-for-bit, and re-encoding the decoded snapshot reproduces the
// exact bytes — the fixed-point property FuzzWarmupDecode generalizes.
func TestWarmRoundTrip(t *testing.T) {
	fb, class, entries := warmFixture()
	data := EncodeWarm(fb, class, entries)
	snap, err := Decode(data)
	if err != nil {
		t.Fatalf("warm snapshot does not decode: %v", err)
	}
	// Canonical order sorts the ""-fingerprint entry first.
	want := []WarmEntry{entries[1], entries[0]}
	if !reflect.DeepEqual(snap.Warmup, want) {
		t.Fatalf("warmup round trip drifted:\n got %+v\nwant %+v", snap.Warmup, want)
	}
	if re := EncodeWarm(snap.Frozen, snap.Class, snap.Warmup); !bytes.Equal(re, data) {
		t.Fatalf("warm encoding is not a fixed point")
	}
	// The scheme itself is unaffected by the extra section.
	assertEqualEpoch(t, fb, class, snap)
}

// TestWarmEmptyIsPlainEncode: no entries means no section — byte-identical
// to the scheme-only encoding, so warm saving never perturbs the golden
// snapshot format.
func TestWarmEmptyIsPlainEncode(t *testing.T) {
	fb, class, _ := warmFixture()
	if !bytes.Equal(EncodeWarm(fb, class, nil), Encode(fb, class)) {
		t.Fatalf("EncodeWarm(nil) diverges from Encode")
	}
	snap, err := Decode(Encode(fb, class))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Warmup != nil {
		t.Fatalf("plain snapshot decoded with %d warmup entries", len(snap.Warmup))
	}
}

// TestWarmStaleFingerprint: a structurally perfect section saved against a
// different epoch is rejected with ErrWarmupStale — typed, so core can
// boot the scheme cold instead of failing, and never installed.
func TestWarmStaleFingerprint(t *testing.T) {
	fb, class, entries := warmFixture()
	wrongFP := EpochFingerprint(fb, class)
	wrongFP[0] ^= 0xFF
	stale := encodeWith(fb, class, warmBytes(wrongFP, []WarmEntry{entries[1], entries[0]}))
	_, err := Decode(stale)
	if !errors.Is(err, ErrWarmupStale) {
		t.Fatalf("stale fingerprint: got %v, want ErrWarmupStale", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("stale must be distinguishable from corrupt, got %v", err)
	}
}

// TestWarmCorruptRejected walks the decoder's validation: every structural
// lie is ErrCorrupt, never a partial install.
func TestWarmCorruptRejected(t *testing.T) {
	fb, class, entries := warmFixture()
	fp := EpochFingerprint(fb, class)
	wrap := func(section []byte) []byte { return encodeWith(fb, class, section) }
	one := func(e WarmEntry) []byte { return warmBytes(fp, []WarmEntry{e}) }
	base := entries[0]

	mutate := func(f func(*WarmEntry)) []byte {
		e := base
		f(&e)
		return one(e)
	}
	cases := map[string][]byte{
		"truncated-header": warmBytes(fp, nil)[:34],
		"count-overruns": func() []byte {
			b := warmBytes(fp, entries[:1])
			le.PutUint32(b[32:36], 1<<30)
			return b
		}(),
		"bad-method":        mutate(func(e *WarmEntry) { e.Method = 9 }),
		"empty-terms":       mutate(func(e *WarmEntry) { e.Terminals = nil }),
		"terms-range":       mutate(func(e *WarmEntry) { e.Terminals = []int32{1, 99} }),
		"terms-order":       mutate(func(e *WarmEntry) { e.Terminals = []int32{4, 1} }),
		"not-a-tree":        mutate(func(e *WarmEntry) { e.Edges = nil }),
		"self-loop-edge":    mutate(func(e *WarmEntry) { e.Edges = [][2]int32{{4, 4}} }),
		"edge-range":        mutate(func(e *WarmEntry) { e.Edges = [][2]int32{{1, 77}} }),
		"unsorted-entries":  warmBytes(fp, []WarmEntry{entries[0], entries[1]}),
		"duplicate-entries": warmBytes(fp, []WarmEntry{entries[1], entries[1]}),
		"trailing-bytes":    append(warmBytes(fp, entries[:1]), 0),
	}
	for name, section := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := Decode(wrap(section))
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
		})
	}
}

// FuzzWarmupDecode hammers warm snapshots the way FuzzDecode hammers plain
// ones: Decode must never panic, rejected inputs must not yield a
// snapshot, and accepted warmup sections must be a fixed point of
// canonical re-encoding — EncodeWarm over the decoded entries reproduces
// the input bytes exactly, entry for entry.
func FuzzWarmupDecode(f *testing.F) {
	fb, class, entries := warmFixture()
	valid := EncodeWarm(fb, class, entries)
	f.Add(valid)
	f.Add(Encode(fb, class))
	f.Add(EncodeWarm(fb, class, entries[:1]))
	for _, cut := range []int{1, len(valid) / 2, len(valid) - 1, len(valid) - 30} {
		f.Add(valid[:cut])
	}
	// Seeds with a valid outer checksum but a lying warmup section, so the
	// fuzzer starts inside the section decoder rather than bouncing off
	// the file checksum: a stale fingerprint, an inflated entry count, and
	// entries out of canonical order.
	sorted := []WarmEntry{entries[1], entries[0]}
	staleFP := EpochFingerprint(fb, class)
	staleFP[7] ^= 0x01
	f.Add(encodeWith(fb, class, warmBytes(staleFP, sorted)))
	counted := warmBytes(EpochFingerprint(fb, class), sorted)
	le.PutUint32(counted[32:36], 7)
	f.Add(encodeWith(fb, class, counted))
	f.Add(encodeWith(fb, class, warmBytes(EpochFingerprint(fb, class), []WarmEntry{entries[0], entries[1]})))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			if snap != nil {
				t.Fatalf("Decode returned both a snapshot and %v", err)
			}
			return
		}
		re := EncodeWarm(snap.Frozen, snap.Class, snap.Warmup)
		again, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode of an accepted warm snapshot does not decode: %v", err)
		}
		if !reflect.DeepEqual(again.Warmup, snap.Warmup) {
			t.Fatalf("warmup entries drifted across re-encode:\n got %+v\nwant %+v", again.Warmup, snap.Warmup)
		}
		if len(snap.Warmup) > 0 && !bytes.Equal(EncodeWarm(again.Frozen, again.Class, again.Warmup), re) {
			t.Fatalf("canonical warm form is not a fixed point")
		}
	})
}
