package snapshot_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/snapshot"
)

// benchCatalog builds the large fixture catalog: a mixed bag of scheme
// families big enough that Freeze+Classify dominates boot time — the
// workload the snapshot subsystem exists to delete.
func benchCatalog() map[string]*bipartite.Graph {
	r := rand.New(rand.NewSource(42))
	cat := make(map[string]*bipartite.Graph)
	for i := 0; i < 4; i++ {
		cat[fmt.Sprintf("random%d", i)] = gen.RandomConnectedBipartite(r, 60, 45, 0.12)
		cat[fmt.Sprintf("tree%d", i)] = gen.RandomTree(r, 500)
		cat[fmt.Sprintf("complete%d", i)] = gen.CompleteBipartite(28, 28)
		cat[fmt.Sprintf("alpha%d", i)] = bipartite.FromHypergraph(gen.AlphaAcyclic(r, 40, 3, 3)).B
	}
	return cat
}

// encodeCatalog persists every scheme of the catalog once.
func encodeCatalog(cat map[string]*bipartite.Graph) map[string][]byte {
	snaps := make(map[string][]byte, len(cat))
	for name, b := range cat {
		c := core.New(b)
		snaps[name] = snapshot.Encode(c.Frozen(), c.Class())
	}
	return snaps
}

// BenchmarkRegistryBootFreeze is the status quo ante: boot the catalog by
// compiling every scheme (Freeze + Classify) into a Registry.
func BenchmarkRegistryBootFreeze(b *testing.B) {
	cat := benchCatalog()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := core.NewRegistry()
		for name, scheme := range cat {
			reg.Set(name, scheme)
		}
	}
}

// BenchmarkRegistryBootSnapshot boots the same catalog from persisted
// epochs: Decode (mostly zero-copy) + install, no recognizer runs.
func BenchmarkRegistryBootSnapshot(b *testing.B) {
	snaps := encodeCatalog(benchCatalog())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := core.NewRegistry()
		for name, data := range snaps {
			if _, err := reg.LoadSnapshot(name, data); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDecode isolates the parser+validator on one mid-sized scheme.
func BenchmarkDecode(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	c := core.New(gen.RandomConnectedBipartite(r, 60, 45, 0.12))
	data := snapshot.Encode(c.Frozen(), c.Class())
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapshot.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSnapshotBootSpeedup pins the acceptance bar: booting the large
// fixture catalog from snapshots must be at least 10× faster than
// re-freezing and re-classifying it. Wall-clock ratios are noisy, so each
// side takes its best of three runs; the real margin is far larger (see
// the benchmarks above), 10× is the contract.
func TestSnapshotBootSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cat := benchCatalog()
	snaps := encodeCatalog(cat)

	best := func(f func()) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}

	freeze := best(func() {
		reg := core.NewRegistry()
		for name, scheme := range cat {
			reg.Set(name, scheme)
		}
	})
	boot := best(func() {
		reg := core.NewRegistry()
		for name, data := range snaps {
			if _, err := reg.LoadSnapshot(name, data); err != nil {
				t.Fatal(err)
			}
		}
	})
	t.Logf("catalog of %d schemes: freeze+classify %v, snapshot boot %v (%.1f×)",
		len(cat), freeze, boot, float64(freeze)/float64(boot))
	if boot*10 > freeze {
		t.Fatalf("snapshot boot %v is not ≥10× faster than compile boot %v", boot, freeze)
	}
}
