package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"unsafe"
)

// Version is the format version this build writes and the only one it
// reads.
const Version = 1

const (
	magic            = "CHRDSNAP"
	headerSize       = 32
	sectionEntrySize = 24
	metaSize         = 24
)

// Section ids of format version 1. secWarmup is optional and additive:
// readers that predate it skip unknown ids, so a warm snapshot still
// boots (cold) on an older build without a version bump.
const (
	secMeta      = 1
	secOffsets   = 2
	secNeighbors = 3
	secMatrix    = 4
	secSides     = 5
	secLabels    = 6
	secClass     = 7
	secWarmup    = 8
)

// metaFlagMatrix marks the optional dense-bitset section as present.
const metaFlagMatrix = 1 << 0

// Typed decode failures, from outermost to innermost check.
var (
	// ErrNotSnapshot: the bytes do not start with the snapshot magic.
	ErrNotSnapshot = errors.New("snapshot: not a snapshot file")
	// ErrUnsupportedVersion: the file is a snapshot, but of a format
	// version this build does not read.
	ErrUnsupportedVersion = errors.New("snapshot: unsupported format version")
	// ErrChecksum: the CRC-32C over the file does not match its header —
	// the file was corrupted or truncated after writing.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrCorrupt: the checksum holds but the structure does not (bad
	// section bounds, broken CSR invariants, invalid sides, …).
	ErrCorrupt = errors.New("snapshot: corrupt snapshot")
	// ErrWarmupStale: the warmup section is structurally sound but was
	// saved against a different compiled epoch (its fingerprint does not
	// match the scheme in this file) — its answers must not be installed.
	ErrWarmupStale = errors.New("snapshot: warmup section stale for this epoch")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksum computes the file CRC: everything except the 8 bytes holding
// the CRC field and its padding.
func checksum(data []byte) uint32 {
	crc := crc32.Update(0, castagnoli, data[:24])
	return crc32.Update(crc, castagnoli, data[28:])
}

// hostLittleEndian reports whether the running machine stores integers
// little-endian — the precondition for reinterpreting file bytes in place.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// IsSnapshot reports whether data begins with the snapshot magic — the
// cheap sniff callers use to route a catalog file (or an uploaded body) to
// Decode versus the textual scheme parser.
func IsSnapshot(data []byte) bool {
	return len(data) >= len(magic) && string(data[:len(magic)]) == magic
}

var le = binary.LittleEndian
