// Package snapshot persists compiled scheme epochs: the frozen CSR graph
// (internal/graph), the bipartite partition (internal/bipartite) and the
// chordality classification (internal/chordality) travel as one versioned,
// checksummed, little-endian binary catalog file, so a process can boot a
// large Registry without re-running Freeze+Classify on any scheme.
//
// # File layout (version 1)
//
// Every multi-byte integer is little-endian. The file is a fixed header, a
// section table, and 8-byte-aligned section payloads:
//
//	offset  size  field
//	0       8     magic "CHRDSNAP"
//	8       2     format version (uint16, currently 1)
//	10      2     reserved (0)
//	12      4     section count (uint32)
//	16      8     total file size in bytes (uint64)
//	24      4     CRC-32C of bytes [0,24) ++ [28,size) (uint32)
//	28      4     reserved (0)
//	32      24×k  section table: id u32, reserved u32, offset u64, length u64
//
// Sections (unknown ids are ignored for forward compatibility; all of the
// following are required except the matrix):
//
//	id  section    payload
//	1   meta       n u32, flags u32 (bit0: matrix present), stride u32,
//	               reserved u32, m u64
//	2   offsets    (n+1) int32 — CSR row starts
//	3   neighbors  2m int32 — concatenated sorted adjacency lists
//	4   matrix     n×stride uint64 — dense adjacency bitset (optional)
//	5   sides      n bytes — graph.Side per node (1 or 2)
//	6   labels     n u32, then n×(len u32), then the concatenated label bytes
//	7   class      1 byte — the 7 chordality verdicts, bit 0 = (4,1)-chordal
//	               … bit 6 = V2-conformal (chordality.Class field order)
//
// Because sections start on 8-byte boundaries, the hot arrays — offsets,
// neighbors, matrix — decode zero-copy on little-endian hosts: the byte
// runs are reinterpreted in place (the layout is mmap-able), with a safe
// copying fallback when the buffer is misaligned or the host is big-endian.
// Label strings are always copied (Go strings own their bytes).
//
// # Integrity
//
// Decode verifies the magic, version, declared size and CRC-32C before
// touching any section, then validates every structural invariant a real
// Freeze output satisfies (monotone offsets, sorted symmetric in-range
// adjacency, bipartite sides, distinct labels). Failures are typed:
// ErrNotSnapshot, ErrUnsupportedVersion, ErrChecksum, ErrCorrupt — all
// errors.Is-testable. A decoded snapshot therefore either behaves exactly
// like a live compile or never comes into existence.
package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"unsafe"
)

// Version is the format version this build writes and the only one it
// reads.
const Version = 1

const (
	magic            = "CHRDSNAP"
	headerSize       = 32
	sectionEntrySize = 24
	metaSize         = 24
)

// Section ids of format version 1.
const (
	secMeta      = 1
	secOffsets   = 2
	secNeighbors = 3
	secMatrix    = 4
	secSides     = 5
	secLabels    = 6
	secClass     = 7
)

// metaFlagMatrix marks the optional dense-bitset section as present.
const metaFlagMatrix = 1 << 0

// Typed decode failures, from outermost to innermost check.
var (
	// ErrNotSnapshot: the bytes do not start with the snapshot magic.
	ErrNotSnapshot = errors.New("snapshot: not a snapshot file")
	// ErrUnsupportedVersion: the file is a snapshot, but of a format
	// version this build does not read.
	ErrUnsupportedVersion = errors.New("snapshot: unsupported format version")
	// ErrChecksum: the CRC-32C over the file does not match its header —
	// the file was corrupted or truncated after writing.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrCorrupt: the checksum holds but the structure does not (bad
	// section bounds, broken CSR invariants, invalid sides, …).
	ErrCorrupt = errors.New("snapshot: corrupt snapshot")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksum computes the file CRC: everything except the 8 bytes holding
// the CRC field and its padding.
func checksum(data []byte) uint32 {
	crc := crc32.Update(0, castagnoli, data[:24])
	return crc32.Update(crc, castagnoli, data[28:])
}

// hostLittleEndian reports whether the running machine stores integers
// little-endian — the precondition for reinterpreting file bytes in place.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// IsSnapshot reports whether data begins with the snapshot magic — the
// cheap sniff callers use to route a catalog file (or an uploaded body) to
// Decode versus the textual scheme parser.
func IsSnapshot(data []byte) bool {
	return len(data) >= len(magic) && string(data[:len(magic)]) == magic
}

var le = binary.LittleEndian
