package snapshot

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/chordality"
	"repro/internal/graph"
)

// Snapshot is a decoded compiled-scheme epoch, ready to serve queries with
// zero recompilation: hand it to core.NewFromSnapshot / core.OpenSnapshot /
// Registry.LoadSnapshot.
type Snapshot struct {
	// Frozen is the revived compiled view — structurally identical to what
	// bipartite.Freeze produced before Encode.
	Frozen *bipartite.Frozen
	// Class is the chordality classification stored with the epoch; no
	// recognizer runs at decode time.
	Class chordality.Class
	// Version is the format version of the decoded file.
	Version uint16
	// ZeroCopy reports whether ANY hot array (CSR offsets/neighbors,
	// bitset matrix) aliases the decoded byte slice — sections adopt the
	// buffer independently, so a partially aligned buffer can mix adopted
	// and copied sections. When true, the caller must keep that memory
	// alive and unmodified for the Snapshot's lifetime — the contract
	// under which an mmap-ed catalog file serves queries directly from
	// the page cache. Only when false may the buffer be reused or freed.
	ZeroCopy bool
	// Warmup holds the persisted answer-cache entries of the optional
	// warmup section (nil when absent), already validated against this
	// epoch's fingerprint — core.OpenSnapshot installs them so the boot
	// starts warm. Warmup never aliases the input buffer.
	Warmup []WarmEntry
}

// Decode parses and validates a version-1 snapshot. On little-endian hosts
// with an aligned buffer the hot sections are adopted in place (see
// Snapshot.ZeroCopy); otherwise they are copied out, so Decode works — just
// without the zero-copy win — on any host. Errors are typed: ErrNotSnapshot,
// ErrUnsupportedVersion, ErrChecksum, or ErrCorrupt.
func Decode(data []byte) (*Snapshot, error) {
	if !IsSnapshot(data) {
		return nil, fmt.Errorf("%w (no %q magic)", ErrNotSnapshot, magic)
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrCorrupt, len(data), headerSize)
	}
	version := le.Uint16(data[8:10])
	if version != Version {
		return nil, fmt.Errorf("%w: file has version %d, this build reads %d", ErrUnsupportedVersion, version, Version)
	}
	count := int(le.Uint32(data[12:16]))
	size := le.Uint64(data[16:24])
	if size != uint64(len(data)) {
		return nil, fmt.Errorf("%w: header declares %d bytes, %d are present (truncated or padded file)",
			ErrCorrupt, size, len(data))
	}
	if want, got := le.Uint32(data[24:28]), checksum(data); want != got {
		return nil, fmt.Errorf("%w: stored %#08x, computed %#08x", ErrChecksum, want, got)
	}
	// Bound the table in uint64: on 32-bit builds count*sectionEntrySize
	// could wrap int and sneak a hostile table past the check.
	if uint64(count) > (uint64(len(data))-headerSize)/sectionEntrySize {
		return nil, fmt.Errorf("%w: section table of %d entries exceeds the file", ErrCorrupt, count)
	}

	sections := make(map[uint32][]byte, count)
	for i := 0; i < count; i++ {
		e := data[headerSize+i*sectionEntrySize:]
		id := le.Uint32(e[0:4])
		off := le.Uint64(e[8:16])
		length := le.Uint64(e[16:24])
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %d spans [%d, %d+%d) outside the file", ErrCorrupt, id, off, off, length)
		}
		if _, dup := sections[id]; dup {
			return nil, fmt.Errorf("%w: duplicate section id %d", ErrCorrupt, id)
		}
		sections[id] = data[off : off+length]
	}
	need := func(id uint32, name string) ([]byte, error) {
		s, ok := sections[id]
		if !ok {
			return nil, fmt.Errorf("%w: missing %s section (id %d)", ErrCorrupt, name, id)
		}
		return s, nil
	}

	meta, err := need(secMeta, "meta")
	if err != nil {
		return nil, err
	}
	if len(meta) != metaSize {
		return nil, fmt.Errorf("%w: meta section is %d bytes, want %d", ErrCorrupt, len(meta), metaSize)
	}
	n := int(le.Uint32(meta[0:]))
	flags := le.Uint32(meta[4:])
	stride := int(le.Uint32(meta[8:]))
	m := le.Uint64(meta[16:])
	if uint64(n) > uint64(len(data)) {
		return nil, fmt.Errorf("%w: node count %d is impossible for a %d-byte file", ErrCorrupt, n, len(data))
	}
	if m > uint64(len(data)) {
		return nil, fmt.Errorf("%w: edge count %d is impossible for a %d-byte file", ErrCorrupt, m, len(data))
	}

	offSec, err := need(secOffsets, "offsets")
	if err != nil {
		return nil, err
	}
	if len(offSec) != 4*(n+1) {
		return nil, fmt.Errorf("%w: offsets section is %d bytes for %d nodes (want %d)", ErrCorrupt, len(offSec), n, 4*(n+1))
	}
	nbrSec, err := need(secNeighbors, "neighbors")
	if err != nil {
		return nil, err
	}
	if uint64(len(nbrSec)) != 8*m {
		return nil, fmt.Errorf("%w: neighbors section is %d bytes for %d edges (want %d)", ErrCorrupt, len(nbrSec), m, 8*m)
	}

	// Each hot section adopts the buffer independently; aliased tracks
	// whether ANY of them did (that is what the ZeroCopy keep-alive
	// contract must reflect — a partially aligned buffer may alias the
	// CSR while copying the matrix, or vice versa).
	aliased := false
	adopt32 := func(sec []byte) []int32 {
		if v, ok := int32View(sec); ok {
			if len(sec) > 0 {
				aliased = true
			}
			return v
		}
		return int32Copy(sec)
	}
	offsets := adopt32(offSec)
	neighbors := adopt32(nbrSec)

	var matrix []uint64
	if flags&metaFlagMatrix != 0 {
		matSec, err := need(secMatrix, "matrix")
		if err != nil {
			return nil, err
		}
		if stride <= 0 || uint64(len(matSec)) != 8*uint64(n)*uint64(stride) {
			return nil, fmt.Errorf("%w: matrix section is %d bytes for %d nodes × stride %d", ErrCorrupt, len(matSec), n, stride)
		}
		if v, ok := uint64View(matSec); ok {
			if len(matSec) > 0 {
				aliased = true
			}
			matrix = v
		} else {
			matrix = uint64Copy(matSec)
		}
	} else {
		stride = 0
	}

	sideSec, err := need(secSides, "sides")
	if err != nil {
		return nil, err
	}
	if len(sideSec) != n {
		return nil, fmt.Errorf("%w: sides section is %d bytes for %d nodes", ErrCorrupt, len(sideSec), n)
	}
	sides := make([]graph.Side, n)
	for i, b := range sideSec {
		sides[i] = graph.Side(b)
	}

	labels, err := decodeLabels(sections, n)
	if err != nil {
		return nil, err
	}

	classSec, err := need(secClass, "class")
	if err != nil {
		return nil, err
	}
	if len(classSec) != 1 {
		return nil, fmt.Errorf("%w: class section is %d bytes, want 1", ErrCorrupt, len(classSec))
	}
	var class chordality.Class
	for i, v := range classBits(&class) {
		*v = classSec[0]&(1<<i) != 0
	}

	g, err := graph.RestoreFrozen(labels, offsets, neighbors, matrix, stride)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	fb, err := bipartite.RestoreFrozen(g, sides)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	// The optional warmup section validates last, against the fully
	// restored epoch: its fingerprint must match this exact scheme, and a
	// corrupt or stale section fails the whole decode — cached answers
	// from some other epoch must never be installed silently.
	var warm []WarmEntry
	if warmSec, ok := sections[secWarmup]; ok {
		warm, err = decodeWarmup(warmSec, n, fb, class)
		if err != nil {
			return nil, err
		}
	}
	return &Snapshot{Frozen: fb, Class: class, Version: version, ZeroCopy: aliased, Warmup: warm}, nil
}

// decodeLabels parses the string table, copying every label out of the
// buffer (Go strings own their bytes, so labels never pin the file).
func decodeLabels(sections map[uint32][]byte, n int) ([]string, error) {
	sec, ok := sections[secLabels]
	if !ok {
		return nil, fmt.Errorf("%w: missing labels section (id %d)", ErrCorrupt, secLabels)
	}
	if len(sec) < 4 || int(le.Uint32(sec)) != n {
		return nil, fmt.Errorf("%w: labels section does not hold %d labels", ErrCorrupt, n)
	}
	if len(sec) < 4+4*n {
		return nil, fmt.Errorf("%w: labels section too short for %d lengths", ErrCorrupt, n)
	}
	labels := make([]string, n)
	blob := sec[4+4*n:]
	pos := 0
	for i := 0; i < n; i++ {
		l := int(le.Uint32(sec[4+4*i:]))
		if l < 0 || l > len(blob)-pos {
			return nil, fmt.Errorf("%w: label %d overruns the string blob", ErrCorrupt, i)
		}
		labels[i] = string(blob[pos : pos+l])
		pos += l
	}
	if pos != len(blob) {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last label", ErrCorrupt, len(blob)-pos)
	}
	return labels, nil
}
