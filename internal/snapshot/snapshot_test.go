package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"unsafe"

	"repro/internal/bipartite"
	"repro/internal/chordality"
	"repro/internal/graph"
)

// libraryScheme is the paper's Figure 3(c) scheme with its single chord —
// the same fixture scripts/http_e2e.sh serves — used for the golden file.
func libraryScheme() *bipartite.Graph {
	b := bipartite.New()
	for _, v := range []string{"A", "B", "C"} {
		b.AddV1(v)
	}
	for _, v := range []string{"1", "2", "3"} {
		b.AddV2(v)
	}
	for _, e := range [][2]string{{"A", "1"}, {"B", "1"}, {"B", "2"}, {"C", "2"}, {"C", "3"}, {"A", "3"}, {"C", "1"}} {
		b.AddEdgeLabels(e[0], e[1])
	}
	return b
}

// compile freezes and classifies b the way core.New does.
func compile(b *bipartite.Graph) (*bipartite.Frozen, chordality.Class) {
	fb := b.Freeze()
	return fb, chordality.ClassifyFrozen(fb)
}

// assertEqualEpoch fails unless the decoded snapshot matches the original
// compiled epoch structurally: labels, sides, CSR arrays, matrix, class.
func assertEqualEpoch(t *testing.T, want *bipartite.Frozen, wantClass chordality.Class, got *Snapshot) {
	t.Helper()
	if got.Class != wantClass {
		t.Fatalf("class mismatch: got %+v want %+v", got.Class, wantClass)
	}
	fw, fg := want.G(), got.Frozen.G()
	if fw.N() != fg.N() || fw.M() != fg.M() {
		t.Fatalf("size mismatch: got (%d,%d) want (%d,%d)", fg.N(), fg.M(), fw.N(), fw.M())
	}
	for v := 0; v < fw.N(); v++ {
		if fw.Label(v) != fg.Label(v) {
			t.Fatalf("label %d: got %q want %q", v, fg.Label(v), fw.Label(v))
		}
		if want.Side(v) != got.Frozen.Side(v) {
			t.Fatalf("side %d mismatch", v)
		}
		wn, gn := fw.Neighbors(v), fg.Neighbors(v)
		if len(wn) != len(gn) {
			t.Fatalf("degree %d: got %d want %d", v, len(gn), len(wn))
		}
		for i := range wn {
			if wn[i] != gn[i] {
				t.Fatalf("adjacency of %d differs at %d", v, i)
			}
		}
	}
	if fw.HasMatrix() != fg.HasMatrix() {
		t.Fatalf("matrix presence: got %v want %v", fg.HasMatrix(), fw.HasMatrix())
	}
	for u := 0; u < fw.N(); u++ {
		for v := 0; v < fw.N(); v++ {
			if fw.HasEdge(u, v) != fg.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d) diverges", u, v)
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	schemes := map[string]*bipartite.Graph{
		"empty":   bipartite.New(),
		"single":  func() *bipartite.Graph { b := bipartite.New(); b.AddV1("x"); return b }(),
		"library": libraryScheme(),
		"nomatrix": func() *bipartite.Graph {
			// Above the bitset cutoff Freeze compiles no matrix; the
			// snapshot must carry that faithfully.
			b := bipartite.New()
			for i := 0; i < 1200; i++ {
				b.AddV1(fmt.Sprintf("a%d", i))
			}
			for i := 0; i < 900; i++ {
				b.AddV2(fmt.Sprintf("r%d", i))
				b.AddEdge(i, 1200+i)
			}
			return b
		}(),
	}
	for name, b := range schemes {
		t.Run(name, func(t *testing.T) {
			fb, class := compile(b)
			data := Encode(fb, class)
			snap, err := Decode(data)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if snap.Version != Version {
				t.Fatalf("version: got %d want %d", snap.Version, Version)
			}
			assertEqualEpoch(t, fb, class, snap)
		})
	}
}

func TestDecodeMisalignedFallsBackToCopy(t *testing.T) {
	fb, class := compile(libraryScheme())
	data := Encode(fb, class)

	aligned, err := Decode(data)
	if err != nil {
		t.Fatalf("aligned Decode: %v", err)
	}
	if !aligned.ZeroCopy {
		t.Fatalf("aligned little-endian decode should be zero-copy")
	}

	// Shift the image by one byte: the int32 sections land on odd
	// addresses, forcing the copying fallback — same answers, ZeroCopy off.
	buf := make([]byte, len(data)+1)
	copy(buf[1:], data)
	shifted, err := Decode(buf[1:])
	if err != nil {
		t.Fatalf("misaligned Decode: %v", err)
	}
	if shifted.ZeroCopy {
		t.Fatalf("misaligned decode claims zero-copy")
	}
	assertEqualEpoch(t, fb, class, shifted)
}

// TestDecodeMixedAlignment decodes from a buffer whose base is 4 mod 8:
// the int32 CSR sections (8-aligned within the file, so 4-aligned here)
// adopt the buffer while the uint64 matrix must be copied. ZeroCopy must
// still report true — the buffer IS aliased — or a caller would free
// memory the CSR still reads.
func TestDecodeMixedAlignment(t *testing.T) {
	fb, class := compile(libraryScheme())
	data := Encode(fb, class)

	buf := make([]byte, len(data)+16)
	base := uintptr(unsafe.Pointer(&buf[0]))
	off := int((8-base%8)%8) + 4 // first index of buf that is ≡4 (mod 8)
	copy(buf[off:], data)
	snap, err := Decode(buf[off : off+len(data)])
	if err != nil {
		t.Fatalf("mixed-alignment Decode: %v", err)
	}
	if hostLittleEndian && !snap.ZeroCopy {
		t.Fatalf("int32 sections alias the buffer but ZeroCopy is false")
	}
	assertEqualEpoch(t, fb, class, snap)
}

func TestEncodeDeterministic(t *testing.T) {
	fb, class := compile(libraryScheme())
	if !bytes.Equal(Encode(fb, class), Encode(fb, class)) {
		t.Fatalf("Encode is not deterministic")
	}
	fb2, class2 := compile(libraryScheme())
	if !bytes.Equal(Encode(fb, class), Encode(fb2, class2)) {
		t.Fatalf("Encode depends on compile identity, not content")
	}
}

// sectionBytes locates a section's byte range inside an encoded snapshot.
func sectionBytes(t *testing.T, data []byte, id uint32) (start, length int) {
	t.Helper()
	count := int(le.Uint32(data[12:16]))
	for i := 0; i < count; i++ {
		e := data[headerSize+i*sectionEntrySize:]
		if le.Uint32(e[0:4]) == id {
			return int(le.Uint64(e[8:16])), int(le.Uint64(e[16:24]))
		}
	}
	t.Fatalf("section %d not found", id)
	return 0, 0
}

// fixCRC recomputes the checksum after a deliberate mutation, so the test
// reaches the structural validators rather than stopping at ErrChecksum.
func fixCRC(data []byte) { le.PutUint32(data[24:], checksum(data)) }

func TestDecodeTypedErrors(t *testing.T) {
	fb, class := compile(libraryScheme())
	valid := Encode(fb, class)

	mutate := func(f func(d []byte)) []byte {
		d := append([]byte(nil), valid...)
		f(d)
		return d
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrNotSnapshot},
		{"garbage", []byte("definitely not a snapshot"), ErrNotSnapshot},
		{"magic-only", []byte(magic), ErrCorrupt},
		{"future-version", mutate(func(d []byte) { le.PutUint16(d[8:], Version+1) }), ErrUnsupportedVersion},
		{"truncated", valid[:len(valid)-9], ErrCorrupt},
		{"trailing-garbage", append(append([]byte(nil), valid...), 0xFF), ErrCorrupt},
		{"payload-bitflip", mutate(func(d []byte) { d[len(d)-1] ^= 0x40 }), ErrChecksum},
		{"header-bitflip", mutate(func(d []byte) { d[13] ^= 0x01 }), ErrChecksum},
		{"neighbor-out-of-range", mutate(func(d []byte) {
			start, _ := sectionBytes(t, d, secNeighbors)
			le.PutUint32(d[start:], 0xFFFF)
			fixCRC(d)
		}), ErrCorrupt},
		{"matrix-lies-about-csr", mutate(func(d []byte) {
			// Set a bit the adjacency lists do not have: HasEdge would
			// disagree with Neighbors, so the decode must refuse.
			start, _ := sectionBytes(t, d, secMatrix)
			d[start] ^= 1 << 1 // edge 0-1: A-B joins one side, never present
			fixCRC(d)
		}), ErrCorrupt},
		{"invalid-side", mutate(func(d []byte) {
			start, _ := sectionBytes(t, d, secSides)
			d[start] = 9
			fixCRC(d)
		}), ErrCorrupt},
		{"edge-inside-one-side", mutate(func(d []byte) {
			// Flip node 0 (V1 "A") to V2: its arcs now join one side.
			start, _ := sectionBytes(t, d, secSides)
			d[start] = 2
			fixCRC(d)
		}), ErrCorrupt},
		{"duplicate-label", mutate(func(d []byte) {
			// Labels are "A","B","C","1","2","3" — one byte each; making
			// the second blob byte 'A' duplicates the first label.
			start, length := sectionBytes(t, d, secLabels)
			d[start+length-5] = 'A'
			fixCRC(d)
		}), ErrCorrupt},
		{"missing-section", mutate(func(d []byte) {
			// Retag the class section with an unknown id: ignored on read,
			// so the required class section is now missing.
			count := int(le.Uint32(d[12:16]))
			for i := 0; i < count; i++ {
				e := d[headerSize+i*sectionEntrySize:]
				if le.Uint32(e[0:4]) == secClass {
					le.PutUint32(e[0:4], 250)
				}
			}
			fixCRC(d)
		}), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snap, err := Decode(tc.data)
			if snap != nil || err == nil {
				t.Fatalf("Decode accepted %s", tc.name)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}
}

// TestUnknownSectionsIgnored retags the (optional) matrix section with an
// id this version does not know and clears its meta flag: a future writer
// adding sections must not break this reader, and the decode must fall
// back to CSR binary search with identical answers.
func TestUnknownSectionsIgnored(t *testing.T) {
	fb, class := compile(libraryScheme())
	d := Encode(fb, class)
	count := int(le.Uint32(d[12:16]))
	for i := 0; i < count; i++ {
		e := d[headerSize+i*sectionEntrySize:]
		if le.Uint32(e[0:4]) == secMatrix {
			le.PutUint32(e[0:4], 99)
		}
	}
	metaStart, _ := sectionBytes(t, d, secMeta)
	le.PutUint32(d[metaStart+4:], le.Uint32(d[metaStart+4:])&^uint32(metaFlagMatrix))
	fixCRC(d)

	snap, err := Decode(d)
	if err != nil {
		t.Fatalf("Decode with unknown section: %v", err)
	}
	if snap.Frozen.G().HasMatrix() {
		t.Fatalf("matrix should be absent after the retag")
	}
	fw := fb.G()
	for u := 0; u < fw.N(); u++ {
		for v := 0; v < fw.N(); v++ {
			if fw.HasEdge(u, v) != snap.Frozen.G().HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d) diverges without the matrix", u, v)
			}
		}
	}
}

// TestGolden pins the on-disk format: the checked-in fixture must decode,
// and re-encoding the same scheme must reproduce it byte for byte — any
// accidental format drift fails here before it can orphan deployed
// catalogs. Regenerate deliberately with SNAPSHOT_UPDATE=1 go test.
func TestGolden(t *testing.T) {
	path := filepath.Join("testdata", "library.snap")
	fb, class := compile(libraryScheme())
	data := Encode(fb, class)

	if os.Getenv("SNAPSHOT_UPDATE") == "1" {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, len(data))
	}

	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with SNAPSHOT_UPDATE=1 to create): %v", err)
	}
	if !bytes.Equal(golden, data) {
		t.Fatalf("encoding drifted from the golden fixture (%d vs %d bytes); if the format change is deliberate, bump Version and regenerate with SNAPSHOT_UPDATE=1", len(data), len(golden))
	}
	snap, err := Decode(golden)
	if err != nil {
		t.Fatalf("Decode(golden): %v", err)
	}
	assertEqualEpoch(t, fb, class, snap)
	if snap.Class.Chordal62 {
		t.Fatalf("library scheme misclassified: it is cyclic with a chord, not (6,2)-chordal? class=%+v", snap.Class)
	}
}

func TestReadFileAndOpenMapped(t *testing.T) {
	fb, class := compile(libraryScheme())
	data := Encode(fb, class)
	path := filepath.Join(t.TempDir(), "s.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	snap, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	assertEqualEpoch(t, fb, class, snap)

	m, err := OpenMapped(path)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	assertEqualEpoch(t, fb, class, m.Snapshot)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.snap")); err == nil {
		t.Fatalf("ReadFile of a missing file succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(bad, []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(bad); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("OpenMapped(bad): got %v want ErrNotSnapshot", err)
	}
}

func TestGraphLevelSnapshot(t *testing.T) {
	// graph.RestoreFrozen must reject a matrix whose geometry lies.
	g := graph.New()
	g.AddNode("a")
	g.AddNode("b")
	g.AddEdge(0, 1)
	f := g.Freeze()
	offsets, neighbors := f.CSR()
	if _, err := graph.RestoreFrozen(f.NodeLabels(), offsets, neighbors, make([]uint64, 7), 3); err == nil {
		t.Fatalf("RestoreFrozen accepted a bad matrix geometry")
	}
	if _, err := graph.RestoreFrozen(f.NodeLabels(), offsets, neighbors, nil, 0); err != nil {
		t.Fatalf("RestoreFrozen without matrix: %v", err)
	}
}
