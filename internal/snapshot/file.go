package snapshot

import (
	"fmt"
	"os"
)

// ReadFile loads and decodes a snapshot from disk into process memory.
// Prefer OpenMapped for large catalogs: it maps the file instead of
// copying it.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// Mapped is a snapshot backed by a file mapping (or, on platforms without
// mmap, by an ordinary read). Close releases the mapping — only call it
// once the Snapshot (and every Connector/Service built on it) is no longer
// in use, because a zero-copy decode serves queries straight from the
// mapped pages.
type Mapped struct {
	*Snapshot
	data   []byte
	mapped bool
}

// OpenMapped memory-maps path read-only and decodes it in place: on a
// little-endian host the CSR arrays of the returned snapshot are the page
// cache, so booting a catalog costs validation, not copying. On hosts
// without mmap support it degrades to ReadFile semantics.
func OpenMapped(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < headerSize {
		return nil, fmt.Errorf("%s: %w (file is %d bytes)", path, ErrNotSnapshot, st.Size())
	}
	data, mapped, err := mapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	snap, err := Decode(data)
	if err != nil {
		if mapped {
			_ = unmapFile(data)
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &Mapped{Snapshot: snap, data: data, mapped: mapped}, nil
}

// Close releases the file mapping. After Close, a zero-copy Snapshot must
// not be used.
func (m *Mapped) Close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	if m.mapped {
		return unmapFile(data)
	}
	return nil
}
