// Package snapshot persists compiled scheme epochs: the frozen CSR graph
// (internal/graph), the bipartite partition (internal/bipartite) and the
// chordality classification (internal/chordality) travel as one versioned,
// checksummed, little-endian binary catalog file, so a process can boot a
// large Registry without re-running Freeze+Classify on any scheme.
//
// # File layout (version 1)
//
// Every multi-byte integer is little-endian. The file is a fixed header, a
// section table, and 8-byte-aligned section payloads:
//
//	offset  size  field
//	0       8     magic "CHRDSNAP"
//	8       2     format version (uint16, currently 1)
//	10      2     reserved (0)
//	12      4     section count (uint32)
//	16      8     total file size in bytes (uint64)
//	24      4     CRC-32C of bytes [0,24) ++ [28,size) (uint32)
//	28      4     reserved (0)
//	32      24×k  section table: id u32, reserved u32, offset u64, length u64
//
// Sections (unknown ids are ignored for forward compatibility; all of the
// following are required except the matrix):
//
//	id  section    payload
//	1   meta       n u32, flags u32 (bit0: matrix present), stride u32,
//	               reserved u32, m u64
//	2   offsets    (n+1) int32 — CSR row starts
//	3   neighbors  2m int32 — concatenated sorted adjacency lists
//	4   matrix     n×stride uint64 — dense adjacency bitset (optional)
//	5   sides      n bytes — graph.Side per node (1 or 2)
//	6   labels     n u32, then n×(len u32), then the concatenated label bytes
//	7   class      1 byte — the 7 chordality verdicts, bit 0 = (4,1)-chordal
//	               … bit 6 = V2-conformal (chordality.Class field order)
//
// Because sections start on 8-byte boundaries, the hot arrays — offsets,
// neighbors, matrix — decode zero-copy on little-endian hosts: the byte
// runs are reinterpreted in place (the layout is mmap-able), with a safe
// copying fallback when the buffer is misaligned or the host is big-endian.
// Label strings are always copied (Go strings own their bytes).
//
// # Integrity
//
// Decode verifies the magic, version, declared size and CRC-32C before
// touching any section, then validates every structural invariant a real
// Freeze output satisfies (monotone offsets, sorted symmetric in-range
// adjacency, bipartite sides, distinct labels). Failures are typed:
// ErrNotSnapshot, ErrUnsupportedVersion, ErrChecksum, ErrCorrupt — all
// errors.Is-testable. A decoded snapshot therefore either behaves exactly
// like a live compile or never comes into existence.
package snapshot
