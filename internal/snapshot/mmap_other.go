//go:build !unix

package snapshot

import (
	"io"
	"os"
)

// mapFile on platforms without mmap reads the open descriptor into
// memory; Close is then a no-op and the snapshot owns ordinary heap
// bytes.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

func unmapFile(data []byte) error { return nil }
