//go:build unix

package snapshot

import (
	"io"
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The second result reports that
// the bytes are a real mapping (Close must munmap them).
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		// Some filesystems refuse mmap; fall back to an ordinary read
		// rather than failing the boot. Read through the descriptor we
		// already hold — re-opening by name could race with a rename and
		// read a different file than the one the caller statted.
		buf := make([]byte, size)
		if _, rerr := io.ReadFull(io.NewSectionReader(f, 0, size), buf); rerr != nil {
			return nil, false, err
		}
		return buf, false, nil
	}
	return data, true, nil
}

func unmapFile(data []byte) error { return syscall.Munmap(data) }
