package snapshot

import (
	"io"

	"repro/internal/bipartite"
	"repro/internal/chordality"
	"repro/internal/graph"
)

// Encode serializes a compiled scheme epoch — the frozen view plus its
// classification — into the version-1 catalog format. The output is
// deterministic: encoding the same epoch always yields the same bytes
// (asserted by the golden-fixture test), so snapshots diff and cache well.
func Encode(fb *bipartite.Frozen, class chordality.Class) []byte {
	return encodeWith(fb, class, nil)
}

// encodeWith is Encode plus an optional pre-rendered warmup section
// payload (nil for the plain scheme-only file). Factored out so
// EncodeWarm shares the exact layout code — with warm == nil the output
// is byte-for-byte the historical Encode format, which the golden
// fixture pins.
func encodeWith(fb *bipartite.Frozen, class chordality.Class, warm []byte) []byte {
	g := fb.G()
	offsets, neighbors := g.CSR()
	matrix, stride := g.Matrix()
	labels := g.NodeLabels()
	sides := fb.Sides()
	n := g.N()

	meta := make([]byte, metaSize)
	le.PutUint32(meta[0:], uint32(n))
	flags := uint32(0)
	if matrix != nil {
		flags |= metaFlagMatrix
	}
	le.PutUint32(meta[4:], flags)
	le.PutUint32(meta[8:], uint32(stride))
	le.PutUint64(meta[16:], uint64(g.M()))

	sections := []struct {
		id   uint32
		data []byte
	}{
		{secMeta, meta},
		{secOffsets, int32Bytes(offsets)},
		{secNeighbors, int32Bytes(neighbors)},
		{secSides, sideBytes(sides)},
		{secLabels, labelBytes(labels)},
		{secClass, []byte{classByte(class)}},
	}
	if matrix != nil {
		sections = append(sections, struct {
			id   uint32
			data []byte
		}{secMatrix, uint64Bytes(matrix)})
	}
	if warm != nil {
		sections = append(sections, struct {
			id   uint32
			data []byte
		}{secWarmup, warm})
	}

	// Lay out: header, table, then each payload on an 8-byte boundary.
	offset := align8(headerSize + len(sections)*sectionEntrySize)
	starts := make([]int, len(sections))
	for i, s := range sections {
		starts[i] = offset
		offset = align8(offset + len(s.data))
	}
	total := offset

	out := make([]byte, total)
	copy(out, magic)
	le.PutUint16(out[8:], Version)
	le.PutUint32(out[12:], uint32(len(sections)))
	le.PutUint64(out[16:], uint64(total))
	for i, s := range sections {
		e := out[headerSize+i*sectionEntrySize:]
		le.PutUint32(e[0:], s.id)
		le.PutUint64(e[8:], uint64(starts[i]))
		le.PutUint64(e[16:], uint64(len(s.data)))
		copy(out[starts[i]:], s.data)
	}
	le.PutUint32(out[24:], checksum(out))
	return out
}

// Write serializes the epoch to w (Encode, then one Write call).
func Write(w io.Writer, fb *bipartite.Frozen, class chordality.Class) error {
	_, err := w.Write(Encode(fb, class))
	return err
}

// int32Bytes renders s little-endian. On little-endian hosts this is a
// reinterpretation of the backing array (the caller only reads the result
// while copying it into the output buffer).
func int32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return bytesOfInt32s(s)
	}
	out := make([]byte, 4*len(s))
	for i, v := range s {
		le.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// uint64Bytes renders s little-endian, in place on little-endian hosts.
func uint64Bytes(s []uint64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return bytesOfUint64s(s)
	}
	out := make([]byte, 8*len(s))
	for i, v := range s {
		le.PutUint64(out[8*i:], v)
	}
	return out
}

// sideBytes renders one byte per node (graph.Side is an int8).
func sideBytes(sides []graph.Side) []byte {
	out := make([]byte, len(sides))
	for i, s := range sides {
		out[i] = byte(s)
	}
	return out
}

// labelBytes renders the string table: count, lengths, concatenated bytes.
func labelBytes(labels []string) []byte {
	size := 4 + 4*len(labels)
	for _, l := range labels {
		size += len(l)
	}
	out := make([]byte, 0, size)
	out = le.AppendUint32(out, uint32(len(labels)))
	for _, l := range labels {
		out = le.AppendUint32(out, uint32(len(l)))
	}
	for _, l := range labels {
		out = append(out, l...)
	}
	return out
}

// classByte packs the 7 chordality verdicts, bit 0 = Chordal41 … bit 6 =
// V2Conformal (chordality.Class field order).
func classByte(c chordality.Class) byte {
	var b byte
	for i, v := range classBits(&c) {
		if *v {
			b |= 1 << i
		}
	}
	return b
}

// classBits enumerates the Class fields in their serialized bit order —
// shared by encode and decode so the two can never disagree.
func classBits(c *chordality.Class) []*bool {
	return []*bool{
		&c.Chordal41, &c.Chordal62, &c.Chordal61,
		&c.V1Chordal, &c.V1Conformal, &c.V2Chordal, &c.V2Conformal,
	}
}
