package snapshot

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/chordality"
)

// The warmup section (secWarmup) persists provably-still-valid answer-cache
// entries alongside the compiled epoch, so a process booted from the
// snapshot starts warm instead of re-running solvers for answers the
// writing process already paid for. Layout, all little-endian:
//
//	[32]byte  epoch fingerprint: sha256 of the canonical scheme-only
//	          encoding (Encode output). A warmup section is only valid
//	          against the exact epoch it was saved with — Decode rejects a
//	          mismatch with ErrWarmupStale rather than installing answers
//	          from some other scheme.
//	u32       entry count
//	entries, each:
//	  u16+bytes  query-option fingerprint (the cache-key prefix)
//	  u8         method
//	  u8         flags (bit0 Optimal, bit1 V2Optimal)
//	  u64        recompute cost in nanoseconds
//	  u32+bytes  rationale
//	  u32 + n×u32        terminals, strictly ascending
//	  u32 + n×u32        tree nodes, strictly ascending
//	  u32 + n×(u32,u32)  tree edges, order preserved verbatim
//
// The section is canonical: entries are sorted by (fingerprint,
// terminals), node and terminal lists are strictly ascending, and edge
// order is whatever the solver produced (preserved so a restored answer
// is bit-for-bit the fresh solve). Decode enforces all of it, which makes
// an accepted section a fixed point of re-encoding — the FuzzWarmupDecode
// property.

// WarmEntry is one persisted cache answer: the query (option fingerprint
// + canonical terminals), the answer (method, guarantee flags, rationale,
// tree), and the recompute cost that seeds cost-aware eviction on
// restore. Semantic validation (the tree really spans the terminals on
// this scheme) happens at restore time in core; Decode checks structure,
// ranges and canonical form.
type WarmEntry struct {
	Fingerprint string
	Terminals   []int32
	Method      uint8
	Optimal     bool
	V2Optimal   bool
	CostNanos   int64
	Rationale   string
	Nodes       []int32
	Edges       [][2]int32
}

// EpochFingerprint identifies a compiled epoch for warmup validity: the
// sha256 of its canonical encoding. Two Connectors share a fingerprint
// iff Encode produces the same bytes — same graph, labels, sides and
// classification — which is exactly the condition under which a cached
// answer is still correct.
func EpochFingerprint(fb *bipartite.Frozen, class chordality.Class) []byte {
	sum := sha256.Sum256(Encode(fb, class))
	return sum[:]
}

// EncodeWarm serializes the epoch like Encode, plus the warmup section
// when entries is non-empty. With no entries the output is byte-identical
// to Encode — the section is strictly optional, and version-1 readers
// that predate it skip unknown section ids. Entries are sorted into
// canonical order; the caller's slice is not modified.
func EncodeWarm(fb *bipartite.Frozen, class chordality.Class, entries []WarmEntry) []byte {
	if len(entries) == 0 {
		return Encode(fb, class)
	}
	sorted := make([]WarmEntry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool { return compareWarm(sorted[i], sorted[j]) < 0 })
	return encodeWith(fb, class, warmBytes(EpochFingerprint(fb, class), sorted))
}

// WriteWarm serializes the epoch plus warmup to w.
func WriteWarm(w io.Writer, fb *bipartite.Frozen, class chordality.Class, entries []WarmEntry) error {
	_, err := w.Write(EncodeWarm(fb, class, entries))
	return err
}

// compareWarm orders entries by (fingerprint, terminals): the canonical
// section order, enforced strictly increasing by the decoder. Two
// distinct cache entries can never compare equal — the pair is the cache
// key.
func compareWarm(a, b WarmEntry) int {
	if c := bytes.Compare([]byte(a.Fingerprint), []byte(b.Fingerprint)); c != 0 {
		return c
	}
	for i := 0; i < len(a.Terminals) && i < len(b.Terminals); i++ {
		if a.Terminals[i] != b.Terminals[i] {
			if a.Terminals[i] < b.Terminals[i] {
				return -1
			}
			return 1
		}
	}
	return len(a.Terminals) - len(b.Terminals)
}

const (
	warmHeaderSize   = 32 + 4 // fingerprint + count
	warmFlagOptimal  = 1 << 0
	warmFlagV2Opt    = 1 << 1
	warmMinEntrySize = 2 + 1 + 1 + 8 + 4 + 4 + 4 + 4
)

// warmBytes renders the section payload.
func warmBytes(fingerprint []byte, entries []WarmEntry) []byte {
	size := warmHeaderSize
	for _, e := range entries {
		size += warmMinEntrySize + len(e.Fingerprint) + len(e.Rationale) +
			4*len(e.Terminals) + 4*len(e.Nodes) + 8*len(e.Edges)
	}
	out := make([]byte, 0, size)
	out = append(out, fingerprint...)
	out = le.AppendUint32(out, uint32(len(entries)))
	for _, e := range entries {
		out = le.AppendUint16(out, uint16(len(e.Fingerprint)))
		out = append(out, e.Fingerprint...)
		out = append(out, e.Method)
		var flags byte
		if e.Optimal {
			flags |= warmFlagOptimal
		}
		if e.V2Optimal {
			flags |= warmFlagV2Opt
		}
		out = append(out, flags)
		out = le.AppendUint64(out, uint64(e.CostNanos))
		out = le.AppendUint32(out, uint32(len(e.Rationale)))
		out = append(out, e.Rationale...)
		out = le.AppendUint32(out, uint32(len(e.Terminals)))
		for _, t := range e.Terminals {
			out = le.AppendUint32(out, uint32(t))
		}
		out = le.AppendUint32(out, uint32(len(e.Nodes)))
		for _, v := range e.Nodes {
			out = le.AppendUint32(out, uint32(v))
		}
		out = le.AppendUint32(out, uint32(len(e.Edges)))
		for _, ed := range e.Edges {
			out = le.AppendUint32(out, uint32(ed[0]))
			out = le.AppendUint32(out, uint32(ed[1]))
		}
	}
	return out
}

// warmCursor is a bounds-checked little-endian reader over the section.
type warmCursor struct {
	b   []byte
	off int
}

func (c *warmCursor) take(n int) ([]byte, bool) {
	if n < 0 || n > len(c.b)-c.off {
		return nil, false
	}
	s := c.b[c.off : c.off+n]
	c.off += n
	return s, true
}

func (c *warmCursor) u8() (byte, bool) {
	s, ok := c.take(1)
	if !ok {
		return 0, false
	}
	return s[0], true
}

func (c *warmCursor) u16() (uint16, bool) {
	s, ok := c.take(2)
	if !ok {
		return 0, false
	}
	return le.Uint16(s), true
}

func (c *warmCursor) u32() (uint32, bool) {
	s, ok := c.take(4)
	if !ok {
		return 0, false
	}
	return le.Uint32(s), true
}

func (c *warmCursor) u64() (uint64, bool) {
	s, ok := c.take(8)
	if !ok {
		return 0, false
	}
	return le.Uint64(s), true
}

// decodeWarmup parses and validates the warmup section against the
// decoded epoch. n is the scheme's node count; fb/class are the already
// restored epoch, whose canonical fingerprint gates validity. Returns
// ErrWarmupStale for a fingerprint mismatch (a structurally fine section
// saved against some other epoch) and ErrCorrupt for everything else.
func decodeWarmup(sec []byte, n int, fb *bipartite.Frozen, class chordality.Class) ([]WarmEntry, error) {
	if len(sec) < warmHeaderSize {
		return nil, fmt.Errorf("%w: warmup section is %d bytes, want at least %d", ErrCorrupt, len(sec), warmHeaderSize)
	}
	if want := EpochFingerprint(fb, class); !bytes.Equal(sec[:32], want) {
		return nil, fmt.Errorf("%w: warmup fingerprint %x does not match epoch %x", ErrWarmupStale, sec[:32], want)
	}
	count := int(le.Uint32(sec[32:36]))
	if count > (len(sec)-warmHeaderSize)/warmMinEntrySize {
		return nil, fmt.Errorf("%w: warmup section declares %d entries, section too short", ErrCorrupt, count)
	}
	c := &warmCursor{b: sec, off: warmHeaderSize}
	entries := make([]WarmEntry, 0, count)
	corrupt := func(i int, msg string) error {
		return fmt.Errorf("%w: warmup entry %d: %s", ErrCorrupt, i, msg)
	}
	for i := 0; i < count; i++ {
		var e WarmEntry
		fpLen, ok := c.u16()
		if !ok {
			return nil, corrupt(i, "truncated fingerprint length")
		}
		fp, ok := c.take(int(fpLen))
		if !ok {
			return nil, corrupt(i, "truncated fingerprint")
		}
		e.Fingerprint = string(fp)
		method, ok := c.u8()
		if !ok || method > 3 {
			return nil, corrupt(i, "bad method")
		}
		e.Method = method
		flags, ok := c.u8()
		if !ok || flags > warmFlagOptimal|warmFlagV2Opt {
			return nil, corrupt(i, "bad flags")
		}
		e.Optimal = flags&warmFlagOptimal != 0
		e.V2Optimal = flags&warmFlagV2Opt != 0
		cost, ok := c.u64()
		if !ok || cost > 1<<62 {
			return nil, corrupt(i, "bad cost")
		}
		e.CostNanos = int64(cost)
		rLen, ok := c.u32()
		if !ok {
			return nil, corrupt(i, "truncated rationale length")
		}
		rat, ok := c.take(int(rLen))
		if !ok {
			return nil, corrupt(i, "truncated rationale")
		}
		e.Rationale = string(rat)
		var err error
		if e.Terminals, err = c.ascending(n); err != nil {
			return nil, corrupt(i, "terminals: "+err.Error())
		}
		if len(e.Terminals) == 0 {
			return nil, corrupt(i, "empty terminal set")
		}
		if e.Nodes, err = c.ascending(n); err != nil {
			return nil, corrupt(i, "nodes: "+err.Error())
		}
		if len(e.Nodes) == 0 {
			return nil, corrupt(i, "empty node set")
		}
		nEdges, ok := c.u32()
		if !ok || int(nEdges) != len(e.Nodes)-1 {
			return nil, corrupt(i, "edge count does not form a tree over the nodes")
		}
		if nEdges > 0 {
			e.Edges = make([][2]int32, nEdges)
			for j := range e.Edges {
				u, okU := c.u32()
				v, okV := c.u32()
				if !okU || !okV || u >= uint32(n) || v >= uint32(n) || u == v {
					return nil, corrupt(i, "bad edge")
				}
				e.Edges[j] = [2]int32{int32(u), int32(v)}
			}
		}
		if len(entries) > 0 && compareWarm(entries[len(entries)-1], e) >= 0 {
			return nil, corrupt(i, "entries not in strict canonical order")
		}
		entries = append(entries, e)
	}
	if c.off != len(sec) {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last warmup entry", ErrCorrupt, len(sec)-c.off)
	}
	return entries, nil
}

// ascending reads a u32-counted list of u32 ids, requiring each in [0, n)
// and the list strictly increasing — the canonical form for terminal and
// node sets.
func (c *warmCursor) ascending(n int) ([]int32, error) {
	count, ok := c.u32()
	if !ok {
		return nil, fmt.Errorf("truncated count")
	}
	if int(count) > (len(c.b)-c.off)/4 {
		return nil, fmt.Errorf("count %d overruns the section", count)
	}
	if count == 0 {
		return nil, nil
	}
	out := make([]int32, count)
	prev := int64(-1)
	for i := range out {
		v, ok := c.u32()
		if !ok {
			return nil, fmt.Errorf("truncated list")
		}
		if uint64(v) >= uint64(n) {
			return nil, fmt.Errorf("id %d out of range [0,%d)", v, n)
		}
		if int64(v) <= prev {
			return nil, fmt.Errorf("not strictly ascending")
		}
		prev = int64(v)
		out[i] = int32(v)
	}
	return out, nil
}
