package snapshot

import "unsafe"

// The zero-copy core: on little-endian hosts an aligned byte run inside the
// snapshot IS the int32/uint64 array the CSR arrays want, so Decode can
// adopt file (or mmap) memory in place. Every helper has a copying twin
// used when the buffer is misaligned or the host is big-endian; both paths
// produce identical values, only ownership differs.

// bytesOfInt32s reinterprets s as its little-endian byte image. Caller must
// be on a little-endian host and only read the result while s is alive.
func bytesOfInt32s(s []int32) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
}

// bytesOfUint64s reinterprets s as its little-endian byte image.
func bytesOfUint64s(s []uint64) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
}

// int32View returns b reinterpreted as count int32s without copying, and
// whether that was possible (little-endian host, 4-byte-aligned base).
// len(b) must already equal 4*count.
func int32View(b []byte) ([]int32, bool) {
	if len(b) == 0 {
		return nil, true
	}
	if !hostLittleEndian || uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		return nil, false
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4), true
}

// int32Copy decodes b as little-endian int32s into fresh memory.
func int32Copy(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(le.Uint32(b[4*i:]))
	}
	return out
}

// uint64View returns b reinterpreted as uint64s without copying, and
// whether that was possible (little-endian host, 8-byte-aligned base).
func uint64View(b []byte) ([]uint64, bool) {
	if len(b) == 0 {
		return nil, true
	}
	if !hostLittleEndian || uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8), true
}

// uint64Copy decodes b as little-endian uint64s into fresh memory.
func uint64Copy(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = le.Uint64(b[8*i:])
	}
	return out
}
