package steiner_test

import (
	"math/rand"
	"runtime/debug"
	"testing"

	"repro/internal/gen"
	"repro/internal/steiner"
)

// TestAlgorithm2FrozenZeroAlloc pins the zero-alloc contract of the hot
// serving path: with a warm scratch pool and a recycled result Tree, a
// steady-state Algorithm-2 query performs no heap allocation at all —
// the alive/terminal masks, the wave-kernel scratch and the spanning-tree
// buffers all come from the sync.Pool, and the result reuses the Tree's
// capacity. GC is disabled around the measurement so the pool cannot be
// drained mid-run (a GC cycle may legitimately drop pooled scratch; that
// is an amortized allocation, not a per-query one).
func TestAlgorithm2FrozenZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes sync.Pool drop items; allocs are expected")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	r := rand.New(rand.NewSource(23))
	scheme := gen.RandomTree(r, 256) // connected, (6,2)-chordal
	fg := scheme.Freeze().G()
	perm := r.Perm(fg.N())
	terminals := perm[:6]

	var tree steiner.Tree
	for i := 0; i < 3; i++ { // warm the pool and the tree's capacity
		if err := steiner.Algorithm2FrozenInto(ctx, fg, terminals, &tree); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := steiner.Algorithm2FrozenInto(ctx, fg, terminals, &tree); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Algorithm2FrozenInto allocates %.1f times per steady-state query, want 0", allocs)
	}
}
