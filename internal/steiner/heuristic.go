package steiner

import (
	"repro/internal/graph"
	"repro/internal/intset"
)

// Approximate computes a Steiner tree with the classical metric-closure
// heuristic: build the complete graph over the terminals weighted by
// shortest-path distance, take a minimum spanning tree of it, expand each
// MST edge into an actual shortest path, and prune redundant nodes. The
// node count is at most 2× optimal (the usual 2-approximation bound carries
// over to node counts on unit weights, up to the additive terminal count).
//
// This is the fallback the library uses where the paper proves the problem
// NP-hard and no chordality condition rescues it.
func Approximate(g *graph.Graph, terminals []int) (Tree, error) {
	ts := intset.FromSlice(terminals)
	if _, err := componentAlive(g, terminals); err != nil {
		return Tree{}, err
	}
	if ts.Len() == 1 {
		return Tree{Nodes: ts.Clone()}, nil
	}
	k := ts.Len()
	dist := make([][]int, k)
	for i, t := range ts {
		dist[i] = g.BFSDistances(t)
	}
	// Prim MST over the terminal metric closure.
	inTree := make([]bool, k)
	best := make([]int, k)
	bestTo := make([]int, k)
	for i := range best {
		best[i] = 1 << 30
	}
	best[0] = 0
	bestTo[0] = -1
	nodes := map[int]bool{}
	for picked := 0; picked < k; picked++ {
		sel := -1
		for i := 0; i < k; i++ {
			if !inTree[i] && (sel == -1 || best[i] < best[sel]) {
				sel = i
			}
		}
		inTree[sel] = true
		if bestTo[sel] >= 0 {
			for _, v := range g.ShortestPath(ts[bestTo[sel]], ts[sel]) {
				nodes[v] = true
			}
		} else {
			nodes[ts[sel]] = true
		}
		for i := 0; i < k; i++ {
			if !inTree[i] && dist[sel][ts[i]] >= 0 && dist[sel][ts[i]] < best[i] {
				best[i] = dist[sel][ts[i]]
				bestTo[i] = sel
			}
		}
	}
	// Prune: drop nodes whose removal keeps a cover (single pass, largest
	// ids first for determinism).
	alive := make([]bool, g.N())
	var order []int
	for v := range nodes {
		alive[v] = true
		order = append(order, v)
	}
	order = intset.FromSlice(order)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if ts.Contains(v) {
			continue
		}
		alive[v] = false
		if !g.Covers(alive, terminals) {
			alive[v] = true
		}
	}
	return spanningTree(g, alive)
}
