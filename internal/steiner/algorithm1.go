package steiner

import (
	"errors"
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/intset"
)

// ErrNotAlphaAcyclic is returned by Algorithm1 when H¹G of the terminals'
// component is not α-acyclic, i.e. the graph is not V1-chordal and
// V1-conformal, so Lemma 1's elimination ordering does not exist.
var ErrNotAlphaAcyclic = errors.New("steiner: graph is not V1-chordal and V1-conformal (H¹ not alpha-acyclic)")

// Algorithm1 solves the pseudo-Steiner problem with respect to V2
// (Definition 9) on a V1-chordal, V1-conformal bipartite graph, per
// Theorem 3:
//
//	Step 1: order the V2 nodes of the terminals' component as in Lemma 1 —
//	        the reverse of a running-intersection ordering of the edges of
//	        H¹G (obtained via the join tree, as Theorem 4 obtains it from
//	        Tarjan–Yannakakis restricted maximum cardinality search);
//	Step 2: scan that ordering once, removing v together with Adj*(v) (the
//	        nodes currently adjacent only to v) whenever the remaining
//	        subgraph still covers the terminals;
//	Step 3: return a spanning tree of the surviving cover.
//
// The result is a tree over the terminals with the minimum possible number
// of V2 nodes. Total node count is NOT minimized (that problem is
// NP-complete on this class, Theorem 2); see Algorithm2 and Exact.
//
// Algorithm1 verifies its own precondition: if H¹ of the component is not
// α-acyclic it returns ErrNotAlphaAcyclic.
func Algorithm1(b *bipartite.Graph, terminals []int) (Tree, error) {
	g := b.G()
	aliveComp, err := componentAlive(g, terminals)
	if err != nil {
		return Tree{}, err
	}
	var comp []int
	for v := 0; v < g.N(); v++ {
		if aliveComp[v] {
			comp = append(comp, v)
		}
	}
	sub, old2new := b.Induced(comp)
	new2old := make([]int, sub.N())
	for old, nw := range old2new {
		new2old[nw] = old
	}
	subTerminals := make([]int, len(terminals))
	for i, p := range terminals {
		subTerminals[i] = old2new[p]
	}

	w, err := Lemma1Ordering(sub)
	if err != nil {
		return Tree{}, err
	}

	subG := sub.G()
	alive := make([]bool, subG.N())
	for i := range alive {
		alive[i] = true
	}
	p := intset.FromSlice(subTerminals)
	for _, v2 := range w {
		if !alive[v2] {
			continue
		}
		// X = {v} ∪ Adj*(v): v plus the nodes currently adjacent only
		// to v.
		removed := []int{v2}
		alive[v2] = false
		for _, u := range subG.Neighbors(v2) {
			if !alive[u] {
				continue
			}
			private := true
			for _, x := range subG.Neighbors(u) {
				if alive[x] {
					private = false
					break
				}
			}
			if private {
				alive[u] = false
				removed = append(removed, u)
			}
		}
		ok := true
		for _, x := range removed {
			if p.Contains(x) {
				ok = false
				break
			}
		}
		// "Is a cover of P": the terminals must stay mutually connected.
		// A removal may strand a fragment (e.g. the remnant of an edge of
		// H¹ contained in the removed one); such fragments are cleaned up
		// when the ordering reaches their own V2 nodes — demanding whole-
		// graph connectivity here would instead block removals behind
		// their subsumed edges and lose V2-minimality.
		if ok && !subG.TerminalsConnected(alive, subTerminals) {
			ok = false
		}
		if !ok {
			for _, x := range removed {
				alive[x] = true
			}
		}
	}
	restrictToTerminalComponent(subG, alive, subTerminals)

	tree, err := spanningTree(subG, alive)
	if err != nil {
		return Tree{}, err
	}
	// Map back to the original graph's ids.
	nodes := make([]int, tree.Nodes.Len())
	for i, v := range tree.Nodes {
		nodes[i] = new2old[v]
	}
	edges := make([]graph.Edge, len(tree.Edges))
	for i, e := range tree.Edges {
		u, v := new2old[e.U], new2old[e.V]
		if u > v {
			u, v = v, u
		}
		edges[i] = graph.Edge{U: u, V: v}
	}
	return Tree{Nodes: intset.FromSlice(nodes), Edges: edges}, nil
}

// Lemma1Ordering returns the elimination ordering W = v₁², …, v_q² of the
// V2 nodes of a connected V1-chordal, V1-conformal bipartite graph, as in
// Lemma 1:
//
//  1. every suffix of W, together with its neighbourhood, induces a
//     connected subgraph, and
//  2. Adj(vᵢ) ∩ Adj({vᵢ₊₁, …, v_q}) ⊆ Adj(v_jᵢ) for some jᵢ > i
//     (the running intersection property, reversed).
//
// It returns ErrNotAlphaAcyclic when H¹ is not α-acyclic. V2 nodes of
// degree zero are appended first (removing them is always safe).
//
// The ordering comes from the greedy maximum-cardinality edge order —
// Theorem 4's Tarjan–Yannakakis route: on α-acyclic hypergraphs it
// satisfies the running intersection property (verified here; failure is
// exactly non-α-acyclicity, which doubles as the precondition check).
func Lemma1Ordering(b *bipartite.Graph) ([]int, error) {
	corr := b.HypergraphV1()
	rip := corr.H.GreedyEdgeOrder()
	if corr.H.VerifyRunningIntersection(rip) != -1 {
		return nil, ErrNotAlphaAcyclic
	}
	var w []int
	seen := make(map[int]bool, len(corr.EdgeToV2))
	for _, v := range corr.EdgeToV2 {
		seen[v] = true
	}
	for _, v := range b.V2() {
		if !seen[v] {
			w = append(w, v) // isolated V2 node: eliminate first
		}
	}
	for i := len(rip) - 1; i >= 0; i-- {
		w = append(w, corr.EdgeToV2[rip[i]])
	}
	return w, nil
}

// V2Count returns the number of V2 nodes of the tree in b.
func V2Count(b *bipartite.Graph, t Tree) int {
	return t.CountSide(func(v int) bool { return b.Side(v) == graph.Side2 })
}

// V2CountFrozen is V2Count on the compiled view — the serving path's
// variant, so certifying V2-minimality never needs the mutable graph.
func V2CountFrozen(fb *bipartite.Frozen, t Tree) int {
	return t.CountSide(func(v int) bool { return fb.Side(v) == graph.Side2 })
}

// V1Count returns the number of V1 nodes of the tree in b.
func V1Count(b *bipartite.Graph, t Tree) int {
	return t.CountSide(func(v int) bool { return b.Side(v) == graph.Side1 })
}

// String renders a tree using the graph's labels.
func (t Tree) String(g *graph.Graph) string {
	s := "tree{"
	for i, v := range t.Nodes {
		if i > 0 {
			s += " "
		}
		s += g.Label(v)
	}
	s += " |"
	for _, e := range t.Edges {
		s += fmt.Sprintf(" %s-%s", g.Label(e.U), g.Label(e.V))
	}
	return s + "}"
}
