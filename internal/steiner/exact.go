package steiner

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/intset"
)

// Exact solves the node-minimum Steiner problem exactly with the
// Dreyfus–Wagner dynamic program over terminal subsets. With unit edge
// weights a tree on t nodes has t−1 edges, so minimizing edges minimizes
// nodes. Complexity O(3^k·n + 2^k·n²) for k terminals — exponential in k,
// as Theorem 2's NP-completeness predicts for the general case; keep k
// modest.
func Exact(g *graph.Graph, terminals []int) (Tree, error) {
	ts := intset.FromSlice(terminals)
	if ts.Len() == 0 {
		return Tree{}, ErrEmptyTerminals
	}
	if ts.Len() == 1 {
		return Tree{Nodes: ts.Clone()}, nil
	}
	if ts.Len() > ExactTerminalLimit {
		return Tree{}, fmt.Errorf("steiner: %d terminals: %w", ts.Len(), ErrTooManyTerminals)
	}
	n := g.N()
	// All-pairs BFS distances from every node (only needed rows are all
	// rows, since intermediate Steiner points may be anywhere).
	dist := make([][]int, n)
	for v := 0; v < n; v++ {
		dist[v] = g.BFSDistances(v)
	}
	for _, t := range ts[1:] {
		if dist[ts[0]][t] == -1 {
			return Tree{}, ErrDisconnectedTerminals
		}
	}

	k := ts.Len() - 1 // subsets range over ts[0..k-1]; ts[k] is the root
	root := ts[k]
	const inf = math.MaxInt32
	size := 1 << uint(k)
	dp := make([][]int32, size)
	// choice records reconstruction info: for dp[S][v],
	//   choice[S][v] = -1-u   → tree is dp[S][u] plus the path u..v
	//   choice[S][v] = T ≥ 1  → tree merges dp[T][v] and dp[S∖T][v]
	//   choice[S][v] = 0      → base case (S singleton, path t..v)
	choice := make([][]int32, size)
	for s := 1; s < size; s++ {
		dp[s] = make([]int32, n)
		choice[s] = make([]int32, n)
		for v := range dp[s] {
			dp[s][v] = inf
		}
	}
	for i := 0; i < k; i++ {
		t := ts[i]
		s := 1 << uint(i)
		for v := 0; v < n; v++ {
			if d := dist[t][v]; d >= 0 {
				dp[s][v] = int32(d)
			}
		}
	}
	for s := 1; s < size; s++ {
		if s&(s-1) == 0 {
			continue // singleton: base case done
		}
		// Merge step: split S at v.
		for v := 0; v < n; v++ {
			for sub := (s - 1) & s; sub > 0; sub = (sub - 1) & s {
				if sub < s-sub {
					break // each unordered split once
				}
				if dp[sub][v] < inf && dp[s&^sub][v] < inf {
					if c := dp[sub][v] + dp[s&^sub][v]; c < dp[s][v] {
						dp[s][v] = c
						choice[s][v] = int32(sub)
					}
				}
			}
		}
		// Grow step: attach a path u..v. With unit weights a Bellman-style
		// relaxation over precomputed distances is O(n²).
		for v := 0; v < n; v++ {
			for u := 0; u < n; u++ {
				if u == v || dp[s][u] >= inf || dist[u][v] < 0 {
					continue
				}
				if c := dp[s][u] + int32(dist[u][v]); c < dp[s][v] {
					dp[s][v] = c
					choice[s][v] = int32(-1 - u)
				}
			}
		}
	}
	full := size - 1
	if dp[full][root] >= inf {
		return Tree{}, ErrDisconnectedTerminals
	}

	// Reconstruct the node set.
	nodes := map[int]bool{}
	var rec func(s int, v int)
	rec = func(s int, v int) {
		nodes[v] = true
		if s&(s-1) == 0 {
			// Singleton: path from its terminal to v.
			var ti int
			for i := 0; i < k; i++ {
				if s == 1<<uint(i) {
					ti = ts[i]
				}
			}
			for _, x := range g.ShortestPath(ti, v) {
				nodes[x] = true
			}
			return
		}
		c := choice[s][v]
		if c < 0 {
			u := int(-1 - c)
			for _, x := range g.ShortestPath(u, v) {
				nodes[x] = true
			}
			rec(s, u)
			return
		}
		rec(int(c), v)
		rec(s&^int(c), v)
	}
	rec(full, root)

	// The union of reconstruction paths has at most dp[full][root]+1
	// nodes, and no cover of the terminals can have fewer (cost = minimum
	// edge count = minimum node count − 1), so a spanning tree of the
	// union is a minimum Steiner tree.
	alive := make([]bool, n)
	for v := range nodes {
		alive[v] = true
	}
	tree, err := spanningTree(g, alive)
	if err != nil {
		return Tree{}, err
	}
	if got, want := tree.Nodes.Len(), int(dp[full][root])+1; got > want {
		return Tree{}, fmt.Errorf("steiner: reconstruction produced %d nodes for cost %d (internal error)", got, want-1)
	}
	return tree, nil
}

// ExactCost returns only the minimum number of nodes of a Steiner tree, or
// -1 when the terminals are disconnected.
func ExactCost(g *graph.Graph, terminals []int) int {
	tree, err := Exact(g, terminals)
	if err != nil {
		return -1
	}
	return tree.Nodes.Len()
}
