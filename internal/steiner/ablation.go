package steiner

import (
	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/intset"
)

// This file isolates the *ablation* variants of the two design choices the
// reproduction had to pin down (see DESIGN.md §5 and README "Reproduction
// notes"). They exist so experiments can show each choice is load-bearing;
// production callers should use Algorithm1 / Algorithm2 / EliminateOrdered.

// Algorithm1WithOrder runs Algorithm 1's elimination pass with an
// arbitrary V2 ordering instead of the Lemma 1 ordering. On V1-chordal,
// V1-conformal graphs the result is a valid tree over the terminals but
// loses the V2-minimality guarantee — the ordering ablation of E-ABL1.
func Algorithm1WithOrder(b *bipartite.Graph, terminals []int, order []int) (Tree, error) {
	g := b.G()
	aliveComp, err := componentAlive(g, terminals)
	if err != nil {
		return Tree{}, err
	}
	alive := aliveComp
	p := intset.FromSlice(terminals)
	for _, v2 := range order {
		if v2 < 0 || v2 >= g.N() || !alive[v2] || b.Side(v2) != graph.Side2 {
			continue
		}
		removed := []int{v2}
		alive[v2] = false
		for _, u := range g.Neighbors(v2) {
			if !alive[u] {
				continue
			}
			private := true
			for _, x := range g.Neighbors(u) {
				if alive[x] {
					private = false
					break
				}
			}
			if private {
				alive[u] = false
				removed = append(removed, u)
			}
		}
		ok := true
		for _, x := range removed {
			if p.Contains(x) {
				ok = false
				break
			}
		}
		if ok && !g.TerminalsConnected(alive, terminals) {
			ok = false
		}
		if !ok {
			for _, x := range removed {
				alive[x] = true
			}
		}
	}
	restrictToTerminalComponent(g, alive, terminals)
	return spanningTree(g, alive)
}

// EliminateOrderedStrict is EliminateOrdered under the *strict* reading of
// Definition 10's cover: a node is removable only when the WHOLE remaining
// subgraph stays connected, not just the terminals. A single strict pass
// can strand removable nodes behind pendant fragments, so the result may
// be redundant and non-minimum even on (6,2)-chordal graphs — the
// semantics ablation of E-ABL2.
func EliminateOrderedStrict(g *graph.Graph, terminals []int, order []int) (Tree, error) {
	alive, err := componentAlive(g, terminals)
	if err != nil {
		return Tree{}, err
	}
	p := intset.FromSlice(terminals)
	for _, v := range order {
		if v < 0 || v >= g.N() || !alive[v] || p.Contains(v) {
			continue
		}
		alive[v] = false
		if !g.Covers(alive, terminals) {
			alive[v] = true
		}
	}
	return spanningTree(g, alive)
}
