package steiner_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/chordality"
	"repro/internal/fixtures"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/intset"
	"repro/internal/reference"
	"repro/internal/steiner"
)

// pickTerminals selects k distinct random nodes of a connected graph.
func pickTerminals(r *rand.Rand, n, k int) []int {
	perm := r.Perm(n)
	return perm[:k]
}

func TestExactAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for iter := 0; iter < 150; iter++ {
		b := gen.RandomConnectedBipartite(r, 2+r.Intn(4), 2+r.Intn(4), 0.3)
		g := b.G()
		k := 2 + r.Intn(3)
		if k > g.N() {
			k = g.N()
		}
		terms := pickTerminals(r, g.N(), k)
		tree, err := steiner.Exact(g, terms)
		if err != nil {
			t.Fatalf("Exact failed on %v: %v", g, err)
		}
		if err := tree.Validate(g, terms); err != nil {
			t.Fatalf("invalid exact tree on %v: %v", g, err)
		}
		want := reference.SteinerMinimumNodes(g, terms)
		if tree.Nodes.Len() != want {
			t.Fatalf("Exact=%d brute=%d on %v terms %v", tree.Nodes.Len(), want, g, terms)
		}
	}
}

func TestExactEdgeCases(t *testing.T) {
	g := graph.NewWithNodes("a", "b")
	g.AddEdge(0, 1)
	tree, err := steiner.Exact(g, []int{0})
	if err != nil || tree.Nodes.Len() != 1 {
		t.Errorf("singleton terminal: %v, %v", tree, err)
	}
	if _, err := steiner.Exact(g, nil); err == nil {
		t.Error("empty terminals accepted")
	}
	g.AddNode("iso")
	if _, err := steiner.Exact(g, []int{0, 2}); !errors.Is(err, steiner.ErrDisconnectedTerminals) {
		t.Errorf("expected ErrDisconnectedTerminals, got %v", err)
	}
}

func TestAlgorithm2OnChordal62(t *testing.T) {
	// On (6,2)-chordal bipartite graphs Algorithm 2 must return a
	// node-minimum Steiner tree (Theorem 5). Workloads: incidence graphs
	// of γ-acyclic hypergraphs.
	r := rand.New(rand.NewSource(103))
	checked := 0
	for iter := 0; iter < 400 && checked < 120; iter++ {
		h := gen.GammaAcyclic(r, 2+r.Intn(5), 1+r.Intn(3), 1+r.Intn(3))
		b := bipartite.FromHypergraph(h).B
		g := b.G()
		if !g.IsConnected() || g.N() < 3 {
			continue
		}
		if !chordality.Is62Chordal(b) {
			t.Fatalf("workload not (6,2)-chordal: %v", h)
		}
		checked++
		k := 2 + r.Intn(3)
		if k > g.N() {
			k = g.N()
		}
		terms := pickTerminals(r, g.N(), k)
		tree, err := steiner.Algorithm2(g, terms)
		if err != nil {
			t.Fatalf("Algorithm2 failed: %v", err)
		}
		if err := tree.Validate(g, terms); err != nil {
			t.Fatalf("invalid tree: %v", err)
		}
		want := reference.SteinerMinimumNodes(g, terms)
		if tree.Nodes.Len() != want {
			t.Fatalf("Algorithm2=%d optimum=%d on %v terms %v",
				tree.Nodes.Len(), want, g, terms)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d usable samples", checked)
	}
}

func TestCorollary5AllOrderingsGood(t *testing.T) {
	// On (6,2)-chordal graphs EVERY elimination ordering yields a minimum
	// cover (Corollary 5).
	r := rand.New(rand.NewSource(107))
	checked := 0
	for iter := 0; iter < 200 && checked < 40; iter++ {
		h := gen.GammaAcyclic(r, 2+r.Intn(4), 1+r.Intn(3), 1+r.Intn(2))
		b := bipartite.FromHypergraph(h).B
		g := b.G()
		if !g.IsConnected() || g.N() < 3 {
			continue
		}
		checked++
		terms := pickTerminals(r, g.N(), 2+r.Intn(2))
		want := reference.SteinerMinimumNodes(g, terms)
		for trial := 0; trial < 6; trial++ {
			order := r.Perm(g.N())
			tree, err := steiner.EliminateOrdered(g, terms, order)
			if err != nil {
				t.Fatalf("EliminateOrdered failed: %v", err)
			}
			if tree.Nodes.Len() != want {
				t.Fatalf("ordering %v gave %d, optimum %d on %v terms %v",
					order, tree.Nodes.Len(), want, g, terms)
			}
		}
	}
}

func TestLemma5NonredundantCoversAreMinimum(t *testing.T) {
	// Lemma 5: on a (6,2)-chordal bipartite graph every nonredundant cover
	// is minimum — all nonredundant covers have equal size.
	r := rand.New(rand.NewSource(109))
	checked := 0
	for iter := 0; iter < 200 && checked < 30; iter++ {
		h := gen.GammaAcyclic(r, 2+r.Intn(3), 1+r.Intn(2), 1+r.Intn(2))
		b := bipartite.FromHypergraph(h).B
		g := b.G()
		if !g.IsConnected() || g.N() < 3 || g.N() > 11 {
			continue
		}
		checked++
		terms := pickTerminals(r, g.N(), 2+r.Intn(2))
		covers := reference.NonredundantCovers(g, terms)
		if len(covers) == 0 {
			t.Fatalf("no nonredundant covers on connected graph %v", g)
		}
		size := covers[0].Len()
		for _, c := range covers {
			if c.Len() != size {
				t.Fatalf("Lemma 5 violated on %v terms %v: covers %v", g, terms, covers)
			}
		}
	}
}

func TestLemma4Fig10(t *testing.T) {
	// Fig 10 / Lemma 4: in a 6-cycle with one chord there is a
	// nonredundant path of length 4 between nodes at distance 2.
	b := fixtures.Fig10()
	g := b.G()
	bnode := g.MustID("B")
	anode := g.MustID("A")
	if g.Distance(anode, bnode) != 2 {
		t.Fatal("A and B should be at distance 2")
	}
	long := g.IDs("B", "2", "C", "3", "A")
	if !g.IsPath(long) {
		t.Fatal("long path broken")
	}
	if !reference.IsNonredundantCover(g, intset.FromSlice(long), []int{bnode, anode}) {
		t.Error("long path should induce a nonredundant cover")
	}
	if reference.IsMinimumCover(g, intset.FromSlice(long), []int{bnode, anode}) {
		t.Error("long path should not be minimum")
	}
}

func TestAlgorithm1OnAlphaAcyclic(t *testing.T) {
	// Algorithm 1 (Theorem 3): on V1-chordal, V1-conformal graphs the
	// result has the minimum possible number of V2 nodes. Workloads:
	// incidence graphs of α-acyclic hypergraphs.
	r := rand.New(rand.NewSource(113))
	checked := 0
	for iter := 0; iter < 500 && checked < 150; iter++ {
		h := gen.AlphaAcyclic(r, 1+r.Intn(6), 1+r.Intn(4), 1+r.Intn(3))
		b := bipartite.FromHypergraph(h).B
		g := b.G()
		if !g.IsConnected() || g.N() < 3 {
			continue
		}
		checked++
		k := 2 + r.Intn(3)
		if k > g.N() {
			k = g.N()
		}
		terms := pickTerminals(r, g.N(), k)
		tree, err := steiner.Algorithm1(b, terms)
		if err != nil {
			t.Fatalf("Algorithm1 failed on %v: %v", h, err)
		}
		if err := tree.Validate(g, terms); err != nil {
			t.Fatalf("invalid tree: %v", err)
		}
		got := steiner.V2Count(b, tree)
		want := reference.MinimumV2Count(b, terms)
		if got != want {
			t.Fatalf("Algorithm1 V2 count %d, optimum %d on %v terms %v",
				got, want, g, terms)
		}
	}
	if checked < 80 {
		t.Fatalf("only %d usable samples", checked)
	}
}

func TestAlgorithm1RejectsNonAcyclic(t *testing.T) {
	// A chordless 8-cycle: H¹ is a 4-edge cycle, not α-acyclic.
	b := bipartite.New()
	var ids []int
	for i := 0; i < 4; i++ {
		ids = append(ids, b.AddV1(string(rune('a'+i))))
		ids = append(ids, b.AddV2(string(rune('w'+i))))
	}
	for i := 0; i < 8; i++ {
		b.AddEdge(ids[i], ids[(i+1)%8])
	}
	_, err := steiner.Algorithm1(b, []int{ids[0], ids[4]})
	if !errors.Is(err, steiner.ErrNotAlphaAcyclic) {
		t.Errorf("expected ErrNotAlphaAcyclic, got %v", err)
	}
}

func TestAlgorithm1DisconnectedTerminals(t *testing.T) {
	b := bipartite.New()
	a := b.AddV1("a")
	w := b.AddV2("w")
	b.AddEdge(a, w)
	c := b.AddV1("c")
	if _, err := steiner.Algorithm1(b, []int{a, c}); !errors.Is(err, steiner.ErrDisconnectedTerminals) {
		t.Errorf("expected ErrDisconnectedTerminals, got %v", err)
	}
}

func TestLemma1OrderingProperties(t *testing.T) {
	// The ordering of Lemma 1: every suffix plus its neighbourhood induces
	// a connected subgraph, and the reversed running intersection property
	// holds.
	r := rand.New(rand.NewSource(127))
	checked := 0
	for iter := 0; iter < 300 && checked < 60; iter++ {
		h := gen.AlphaAcyclic(r, 2+r.Intn(5), 1+r.Intn(4), 1+r.Intn(2))
		b := bipartite.FromHypergraph(h).B
		g := b.G()
		if !g.IsConnected() {
			continue
		}
		checked++
		w, err := steiner.Lemma1Ordering(b)
		if err != nil {
			t.Fatalf("ordering failed: %v", err)
		}
		if len(w) != len(b.V2()) {
			t.Fatalf("ordering misses V2 nodes")
		}
		// Property (1): suffix ∪ Adj(suffix) connected.
		for i := 0; i < len(w); i++ {
			suffix := w[i:]
			alive := make([]bool, g.N())
			for _, v := range suffix {
				alive[v] = true
				for _, u := range g.Neighbors(v) {
					alive[u] = true
				}
			}
			if !g.ConnectedAlive(alive) {
				t.Fatalf("suffix %d not connected on %v (order %v)", i, g, w)
			}
		}
		// Property (2): Adj(w_i) ∩ Adj(suffix after i) ⊆ Adj(w_j) for some
		// j > i.
		for i := 0; i < len(w)-1; i++ {
			var suffixAdj []int
			for _, v := range w[i+1:] {
				suffixAdj = append(suffixAdj, g.Neighbors(v)...)
			}
			inter := g.Neighbors(w[i]).Inter(intset.FromSlice(suffixAdj))
			if inter.Empty() {
				continue
			}
			ok := false
			for _, v := range w[i+1:] {
				if inter.SubsetOf(g.Neighbors(v)) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("property (2) fails at %d on %v (order %v)", i, g, w)
			}
		}
	}
}

func TestApproximateIsValidAndBounded(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	for iter := 0; iter < 100; iter++ {
		b := gen.RandomConnectedBipartite(r, 2+r.Intn(4), 2+r.Intn(4), 0.3)
		g := b.G()
		k := 2 + r.Intn(3)
		if k > g.N() {
			k = g.N()
		}
		terms := pickTerminals(r, g.N(), k)
		tree, err := steiner.Approximate(g, terms)
		if err != nil {
			t.Fatalf("Approximate failed: %v", err)
		}
		if err := tree.Validate(g, terms); err != nil {
			t.Fatalf("invalid tree: %v", err)
		}
		opt := reference.SteinerMinimumNodes(g, terms)
		if tree.Nodes.Len() < opt {
			t.Fatalf("heuristic beat the optimum?! %d < %d", tree.Nodes.Len(), opt)
		}
		if tree.Nodes.Len() > 2*opt {
			t.Fatalf("heuristic exceeded 2x bound: %d > 2*%d", tree.Nodes.Len(), opt)
		}
	}
}

func TestFig6X3CReduction(t *testing.T) {
	inst := fixtures.Fig6Instance()
	if !inst.Solve() {
		t.Fatal("Fig 6 instance should be solvable ({c1, c3})")
	}
	red, err := steiner.ReduceX3C(inst)
	if err != nil {
		t.Fatal(err)
	}
	// The gadget is V1-chordal and V1-conformal (Theorem 2).
	if !chordality.IsV1Chordal(red.B) || !chordality.IsV1Conformal(red.B) {
		t.Error("X3C gadget should be V1-chordal and V1-conformal")
	}
	// Steiner optimum ≤ 4q+1 iff the instance is solvable; here it is.
	opt := reference.SteinerMinimumNodes(red.B.G(), red.Terminals)
	if opt > red.Budget {
		t.Errorf("optimum %d exceeds budget %d for solvable instance", opt, red.Budget)
	}
	if opt != red.Budget {
		t.Errorf("optimum %d, expected exactly %d (3q+1 terminals + q triples)", opt, red.Budget)
	}
}

func TestX3CReductionEquivalenceRandom(t *testing.T) {
	// Theorem 2's equivalence on random instances: Steiner ≤ 4q+1 ⟺ X3C
	// solvable.
	r := rand.New(rand.NewSource(137))
	sawYes, sawNo := false, false
	for iter := 0; iter < 25; iter++ {
		q := 1 + r.Intn(2)
		inst := steiner.X3CInstance{Q: q, Triples: gen.RandomX3C(r, q, q+1+r.Intn(2), r.Intn(2) == 0)}
		red, err := steiner.ReduceX3C(inst)
		if err != nil {
			t.Fatal(err)
		}
		opt := reference.SteinerMinimumNodes(red.B.G(), red.Terminals)
		solvable := inst.Solve()
		within := opt != -1 && opt <= red.Budget
		if within != solvable {
			t.Fatalf("equivalence broken: opt=%d budget=%d solvable=%v inst=%+v",
				opt, red.Budget, solvable, inst)
		}
		if solvable {
			sawYes = true
		} else {
			sawNo = true
		}
	}
	if !sawYes || !sawNo {
		t.Skipf("coverage: yes=%v no=%v", sawYes, sawNo)
	}
}

func TestCSPCReduction(t *testing.T) {
	r := rand.New(rand.NewSource(139))
	for iter := 0; iter < 40; iter++ {
		g := gen.RandomChordalGraph(r, 3+r.Intn(5), 2)
		if !g.IsConnected() {
			continue
		}
		red := steiner.ReduceCSPC(g)
		if !chordality.IsV1Chordal(red.B) {
			t.Fatalf("CSPC gadget should be V1-chordal for chordal %v", g)
		}
		// Min arcs of a connected subgraph over P in g = Steiner nodes − 1;
		// must equal the gadget's minimum V2 count.
		k := 2 + r.Intn(2)
		if k > g.N() {
			k = g.N()
		}
		terms := pickTerminals(r, g.N(), k)
		gadgetTerms := make([]int, len(terms))
		for i, p := range terms {
			gadgetTerms[i] = red.NodeVs[p]
		}
		wantArcs := reference.SteinerMinimumNodes(g, terms) - 1
		gotArcs := reference.MinimumV2Count(red.B, gadgetTerms)
		if gotArcs != wantArcs {
			t.Fatalf("CSPC equivalence broken on %v terms %v: gadget=%d direct=%d",
				g, terms, gotArcs, wantArcs)
		}
	}
}

func TestTheorem6Fig11(t *testing.T) {
	b := fixtures.Fig11()
	g := b.G()
	if !chordality.Is61Chordal(b) {
		t.Fatal("Fig 11 graph must be (6,1)-chordal")
	}
	if chordality.Is62Chordal(b) {
		t.Fatal("Fig 11 graph must not be (6,2)-chordal (else Corollary 5 would apply)")
	}
	for _, tc := range fixtures.Fig11Cases() {
		lead := g.MustID(tc.Lead)
		terms := g.IDs(tc.Terminals...)
		opt := reference.SteinerMinimumNodes(g, terms)
		// Every ordering with tc.Lead before the other three of {A,B,1,2}
		// must fail; spot-check several such orderings including the
		// adversarial "lead first" one.
		for trial := 0; trial < 8; trial++ {
			order := leadFirstOrder(g, lead, trial)
			tree, err := steiner.EliminateOrdered(g, terms, order)
			if err != nil {
				t.Fatal(err)
			}
			if tree.Nodes.Len() <= opt {
				t.Fatalf("case %s: ordering %v unexpectedly reached optimum %d",
					tc.Lead, order, opt)
			}
		}
	}
}

// leadFirstOrder builds deterministic orderings with the given node first,
// permuted by trial.
func leadFirstOrder(g *graph.Graph, lead, trial int) []int {
	r := rand.New(rand.NewSource(int64(trial)))
	rest := r.Perm(g.N())
	order := []int{lead}
	for _, v := range rest {
		if v != lead {
			order = append(order, v)
		}
	}
	return order
}

func TestFig11SomeOrderingFindsOptimumPerCase(t *testing.T) {
	// Sanity: the optimum IS reachable by elimination when the right hub
	// survives — e.g. for P = {3,C,4,D} an ordering eliminating 1, 2, B
	// early keeps A.
	b := fixtures.Fig11()
	g := b.G()
	terms := g.IDs("3", "C", "4", "D")
	opt := reference.SteinerMinimumNodes(g, terms)
	order := g.IDs("1", "2", "B", "E", "F", "5", "6", "A", "C", "D", "3", "4")
	tree, err := steiner.EliminateOrdered(g, terms, order)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Nodes.Len() != opt {
		t.Fatalf("good-for-this-P ordering gave %d, optimum %d", tree.Nodes.Len(), opt)
	}
}

func TestFig8CoverConcepts(t *testing.T) {
	b := fixtures.Fig8()
	g := b.G()
	terms := g.IDs("A", "C", "D")
	nonred := intset.FromSlice(g.IDs("A", "B", "C", "D", "1", "3"))
	minimum := intset.FromSlice(g.IDs("A", "C", "D", "2", "3"))
	if !reference.IsNonredundantCover(g, nonred, terms) {
		t.Error("{A,B,C,D,1,3} should be a nonredundant cover")
	}
	if reference.IsMinimumCover(g, nonred, terms) {
		t.Error("{A,B,C,D,1,3} should not be minimum")
	}
	if !reference.IsMinimumCover(g, minimum, terms) {
		t.Error("{A,C,D,2,3} should be minimum")
	}
	if !reference.IsNonredundantCover(g, minimum, terms) {
		t.Error("{A,C,D,2,3} should be nonredundant")
	}
}

func TestAlgorithm1PseudoVsSteinerGap(t *testing.T) {
	// The remark after Corollary 4: Algorithm 1's V2-minimum tree need not
	// be a Steiner tree. Here H¹ = {1 = {A,C,D}, 2 = {C,D,B}} is α-acyclic;
	// both C and D survive Algorithm 1 (neither is private to a single V2
	// node), so its tree has 6 nodes while the Steiner optimum is 5.
	b := bipartite.New()
	a := b.AddV1("A")
	bb := b.AddV1("B")
	c := b.AddV1("C")
	d := b.AddV1("D")
	w1 := b.AddV2("1")
	w2 := b.AddV2("2")
	for _, arc := range [][2]int{{a, w1}, {c, w1}, {d, w1}, {c, w2}, {d, w2}, {bb, w2}} {
		b.AddEdge(arc[0], arc[1])
	}
	terms := []int{a, bb}
	tree, err := steiner.Algorithm1(b, terms)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := steiner.V2Count(b, tree), reference.MinimumV2Count(b, terms); got != want || got != 2 {
		t.Fatalf("V2 count %d, want %d (and 2)", got, want)
	}
	exact, err := steiner.Exact(b.G(), terms)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Nodes.Len() != 5 { // A-1-C-2-B
		t.Fatalf("Steiner optimum should be 5, got %d", exact.Nodes.Len())
	}
	if tree.Nodes.Len() <= exact.Nodes.Len() {
		t.Fatalf("expected the V2-minimum tree (%d nodes) to exceed the Steiner optimum (%d)",
			tree.Nodes.Len(), exact.Nodes.Len())
	}
}
