//chordal:hotpath

package steiner

// Frozen-path solvers: the Section 3 algorithms compiled against the
// immutable CSR views of internal/graph and internal/bipartite. The
// algorithms are the same as the mutable path (steiner.go, algorithm1.go,
// exact.go, heuristic.go) and return identical answers (asserted by
// frozen_test.go), but the hot loops differ:
//
//   - alive masks, terminal sets and visited sets are packed graph.Bits, so
//     the connectivity probes of the elimination passes run the word-parallel
//     wave kernel (graph.Frozen.ReachesAll) with an early exit as soon as
//     the terminal word-mask is covered — 64 candidate nodes per machine
//     word on matrix-backed schemes, the CSR fallback otherwise;
//   - Algorithm 1 runs on the terminals' component via an alive bitmask over
//     the shared CSR arrays instead of materializing an induced subgraph
//     copy with id remapping;
//   - the Dreyfus–Wagner tables are flat int32 blocks indexed s*n+v, with
//     BFS distance rows built only for the terminals' component;
//   - every per-query buffer (bit scratch, alive/terminal masks, distance
//     rows, DP tables, spanning-tree queue) comes from a sync.Pool, so
//     steady-state queries on a warm pool allocate nothing beyond their
//     result (and the *Into variants not even that — see
//     TestAlgorithm2FrozenZeroAlloc).
//
// Every function here only reads the frozen views, so one frozen scheme can
// serve any number of concurrent queries (see core.Service); the pooled
// scratch is owned by exactly one query between get and release.
//
// Each frozen solver takes a context.Context and checks it periodically —
// at iteration granularity in the polynomial elimination passes, per
// terminal-subset in the exponential Dreyfus–Wagner program — returning
// ctx.Err() (context.Canceled or context.DeadlineExceeded, errors.Is-
// testable) so a deadline bounds the tail latency of a query instead of
// merely being observed after the solver finishes.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/intset"
	"repro/internal/trace"
)

// cancelStride is how many hot-loop iterations run between context checks
// in the polynomial solvers; a power of two so the check compiles to a mask
// test.
const cancelStride = 64

// frozenScratch bundles every reusable per-query buffer of the frozen
// solvers. Instances cycle through scratchPool: a query takes one with
// getScratch, owns it exclusively until release, and never lets a buffer
// escape into a result (Tree nodes/edges are always appended into
// caller-owned slices). All buffers grow monotonically, so a warm scratch
// serves any query on the same scheme without allocating.
type frozenScratch struct {
	bit    *graph.BitScratch // wave-kernel scratch (visited/frontier/queue)
	alive  graph.Bits        // the solver's mutable alive mask
	comp   graph.Bits        // component mask (Exact/Approximate)
	term   graph.Bits        // terminal mask / Prim in-tree mask
	seen   graph.Bits        // spanning-tree visited mask
	queue  []int32           // spanning-tree FIFO
	ints   []int             // member / order / removed-set list
	ints2  []int             // second int list (Prim bestTo)
	rowOf  []int32           // Exact: node id → distance-row index
	dist   []int32           // flat BFS distance rows, row-major
	dp     []int32           // Exact: flat DP table, dp[s*n+v]
	choice []int32           // Exact: flat reconstruction table
}

var scratchPool = sync.Pool{New: func() any { return &frozenScratch{} }}

// getScratch takes a scratch from the pool sized for an n-node scheme.
func getScratch(n int) *frozenScratch {
	sc := scratchPool.Get().(*frozenScratch)
	if sc.bit == nil {
		sc.bit = graph.NewBitScratch(n)
	}
	sc.alive = sc.alive.Grow(n)
	sc.comp = sc.comp.Grow(n)
	sc.term = sc.term.Grow(n)
	sc.seen = sc.seen.Grow(n)
	if cap(sc.queue) < n {
		sc.queue = make([]int32, 0, n)
	}
	return sc
}

// release returns the scratch to the pool.
func (sc *frozenScratch) release() { scratchPool.Put(sc) }

// grow32 returns an int32 buffer of length n reusing b's array when it is
// big enough; the contents are unspecified.
func grow32(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

// termMask fills sc.term with the terminal set and returns it.
func termMask(sc *frozenScratch, terminals []int) graph.Bits {
	sc.term.Reset()
	for _, p := range terminals {
		sc.term.Set(p)
	}
	return sc.term
}

// componentAliveBits writes the alive mask of the connected component of fg
// containing all terminals into dst and returns it, or an error when the
// terminals span components. When a batch-planner Shared knows the
// component already, the precomputed mask is copied instead of re-flooding.
func componentAliveBits(fg *graph.Frozen, terminals []int, sh *Shared, sc *frozenScratch, dst graph.Bits) (graph.Bits, error) {
	if len(terminals) == 0 {
		return nil, ErrEmptyTerminals
	}
	if mask, known := sh.component(terminals); known {
		if mask == nil {
			return nil, ErrDisconnectedTerminals
		}
		dst.CopyFrom(mask)
		return dst, nil
	}
	mask, ok := fg.ComponentBits(terminals, sc.bit)
	if !ok {
		return nil, ErrDisconnectedTerminals
	}
	dst.CopyFrom(mask)
	return dst, nil
}

// restrictToTerminalComponentBits clears alive bits outside the terminals'
// connected component.
func restrictToTerminalComponentBits(fg *graph.Frozen, alive graph.Bits, terminals []int, sc *frozenScratch) {
	if len(terminals) == 0 {
		return
	}
	alive.And(fg.Reachable(terminals[0], alive, sc.bit))
}

// coversBits reports whether the alive subgraph is a cover of the terminals
// per Definition 10 — every terminal alive, all alive nodes in one
// component — mirroring Frozen.Covers on a packed mask. term must be the
// terminal mask and terminals non-empty.
func coversBits(fg *graph.Frozen, alive, term graph.Bits, terminals []int, bsc *graph.BitScratch) bool {
	if !term.SubsetOf(alive) {
		return false
	}
	return alive.SubsetOf(fg.Reachable(terminals[0], alive, bsc))
}

// spanningTreeBits builds the Tree result for an alive cover into t,
// reusing t's slice capacity (a fresh Tree yields exactly the allocation of
// the result; a recycled one yields none). The walk replays
// Frozen.SpanningTreeAlive verbatim — FIFO BFS from the smallest alive
// node, neighbors in CSR order — so the edge list is bit-for-bit the one
// the mutable path produces.
func spanningTreeBits(fg *graph.Frozen, alive graph.Bits, sc *frozenScratch, t *Tree) error {
	nodes := alive.AppendOnes([]int(t.Nodes)[:0])
	t.Nodes = intset.Set(nodes)
	t.Edges = t.Edges[:0]
	if len(nodes) == 0 {
		return nil
	}
	start := nodes[0]
	seen := sc.seen
	seen.Reset()
	seen.Set(start)
	queue := append(sc.queue[:0], int32(start))
	visited := 1
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range fg.Neighbors(int(v)) {
			if seen.Has(int(w)) || !alive.Has(int(w)) {
				continue
			}
			seen.Set(int(w))
			visited++
			e := graph.Edge{U: int(v), V: int(w)}
			if e.V < e.U {
				e.U, e.V = e.V, e.U
			}
			t.Edges = append(t.Edges, e)
			queue = append(queue, w)
		}
	}
	sc.queue = queue[:0]
	if visited != len(nodes) {
		return errors.New("steiner: cover is not connected (internal error)")
	}
	return nil
}

// terminalsConnectedBits reports whether all terminals are alive and
// mutually connected in the alive subgraph: the word-parallel replacement
// for the epoch-stamped DFS probe. The subset test covers "all terminals
// alive" 64 at a time, and ReachesAll stops expanding waves as soon as the
// terminal word-mask is covered by the visited mask.
func terminalsConnectedBits(fg *graph.Frozen, alive, term graph.Bits, terminals []int, bsc *graph.BitScratch) bool {
	if !term.SubsetOf(alive) {
		return false
	}
	return fg.ReachesAll(terminals[0], alive, term, bsc)
}

// eliminateFrozen is the Definition 11 single-pass redundant-node
// elimination over a packed alive mask, shared by EliminateOrderedFrozen,
// Algorithm2Frozen and the batch planner. identity selects the id-order
// fast path: the pass iterates 0..n-1 directly and never materializes a
// per-query order slice.
func eliminateFrozen(ctx context.Context, fg *graph.Frozen, terminals, order []int, identity bool, sh *Shared, t *Tree) error {
	// Phase spans no-op on a traceless ctx (nil *Trace, zero SpanRef), so
	// the zero-alloc pin and the hot benchmarks are untouched.
	tr := trace.FromContext(ctx)
	n := fg.N()
	sc := getScratch(n)
	defer sc.release()
	psp := tr.StartSpan("solve.probe")
	alive, err := componentAliveBits(fg, terminals, sh, sc, sc.alive)
	psp.End()
	if err != nil {
		return err
	}
	term := termMask(sc, terminals)
	esp := tr.StartSpan("solve.eliminate")
	if identity {
		for v := 0; v < n; v++ {
			if v&(cancelStride-1) == 0 {
				if err := ctx.Err(); err != nil {
					esp.End()
					return err
				}
			}
			if !alive.Has(v) || term.Has(v) {
				continue
			}
			alive.Clear(v)
			if !terminalsConnectedBits(fg, alive, term, terminals, sc.bit) {
				alive.Set(v)
			}
		}
	} else {
		for i, v := range order {
			if i&(cancelStride-1) == 0 {
				if err := ctx.Err(); err != nil {
					esp.End()
					return err
				}
			}
			if v < 0 || v >= n || !alive.Has(v) || term.Has(v) {
				continue
			}
			alive.Clear(v)
			if !terminalsConnectedBits(fg, alive, term, terminals, sc.bit) {
				alive.Set(v)
			}
		}
	}
	esp.End()
	// Nodes outside `order` (or stranded after their turn) may survive
	// outside the terminals' component; restrict to it.
	rsp := tr.StartSpan("solve.render")
	restrictToTerminalComponentBits(fg, alive, terminals, sc)
	err = spanningTreeBits(fg, alive, sc, t)
	rsp.End()
	return err
}

// EliminateOrderedFrozen is EliminateOrdered on a frozen graph: the
// Definition 11 single-pass redundant-node elimination, with each removal
// probe running the early-exit word-parallel connectivity search. The
// context is checked every cancelStride removals.
func EliminateOrderedFrozen(ctx context.Context, fg *graph.Frozen, terminals, order []int) (Tree, error) {
	var t Tree
	if err := EliminateOrderedFrozenInto(ctx, fg, terminals, order, &t); err != nil {
		return Tree{}, err
	}
	return t, nil
}

// EliminateOrderedFrozenInto is EliminateOrderedFrozen appending into t,
// reusing its node/edge capacity — the allocation-free form for callers
// that recycle result buffers.
func EliminateOrderedFrozenInto(ctx context.Context, fg *graph.Frozen, terminals, order []int, t *Tree) error {
	return eliminateFrozen(ctx, fg, terminals, order, false, nil, t)
}

// Algorithm2Frozen is Algorithm2 on a frozen graph (Theorem 5): redundant-
// node elimination in id order, minimum on (6,2)-chordal bipartite graphs.
// The id order is implicit — no per-query order slice is built.
func Algorithm2Frozen(ctx context.Context, fg *graph.Frozen, terminals []int) (Tree, error) {
	return Algorithm2FrozenShared(ctx, fg, terminals, nil)
}

// Algorithm2FrozenShared is Algorithm2Frozen drawing component masks from a
// batch-planner Shared (nil behaves like Algorithm2Frozen).
func Algorithm2FrozenShared(ctx context.Context, fg *graph.Frozen, terminals []int, sh *Shared) (Tree, error) {
	var t Tree
	if err := eliminateFrozen(ctx, fg, terminals, nil, true, sh, &t); err != nil {
		return Tree{}, err
	}
	return t, nil
}

// Algorithm2FrozenInto is Algorithm2Frozen appending into t, reusing its
// node/edge capacity. On a warm scratch pool a steady-state call performs
// zero allocations (see TestAlgorithm2FrozenZeroAlloc).
func Algorithm2FrozenInto(ctx context.Context, fg *graph.Frozen, terminals []int, t *Tree) error {
	return eliminateFrozen(ctx, fg, terminals, nil, true, nil, t)
}

// Algorithm1Frozen is Algorithm1 on a frozen bipartite graph (Theorem 3):
// the pseudo-Steiner tree with the minimum number of V2 nodes on a
// V1-chordal, V1-conformal scheme. Instead of materializing the induced
// subgraph of the terminals' component (as the mutable path does) it runs
// the Lemma 1 ordering and the elimination pass under an alive bitmask over
// the shared CSR arrays. It returns ErrNotAlphaAcyclic when H¹ of the
// component is not α-acyclic. The context is checked every cancelStride
// elimination steps.
func Algorithm1Frozen(ctx context.Context, fb *bipartite.Frozen, terminals []int) (Tree, error) {
	return Algorithm1FrozenShared(ctx, fb, terminals, nil)
}

// Algorithm1FrozenShared is Algorithm1Frozen drawing component masks from a
// batch-planner Shared (nil behaves like Algorithm1Frozen).
func Algorithm1FrozenShared(ctx context.Context, fb *bipartite.Frozen, terminals []int, sh *Shared) (Tree, error) {
	tr := trace.FromContext(ctx)
	fg := fb.G()
	sc := getScratch(fg.N())
	defer sc.release()
	psp := tr.StartSpan("solve.probe")
	alive, err := componentAliveBits(fg, terminals, sh, sc, sc.alive)
	psp.End()
	if err != nil {
		return Tree{}, err
	}
	osp := tr.StartSpan("solve.order")
	w, err := lemma1OrderingAlive(fb, alive)
	osp.End()
	if err != nil {
		return Tree{}, err
	}
	term := termMask(sc, terminals)
	removed := sc.ints[:0]
	esp := tr.StartSpan("solve.eliminate")
	for i, v2 := range w {
		if i&(cancelStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				esp.End()
				return Tree{}, err
			}
		}
		if !alive.Has(v2) {
			continue
		}
		// X = {v} ∪ Adj*(v): v plus the nodes currently adjacent only to v.
		removed = append(removed[:0], v2)
		alive.Clear(v2)
		for _, u := range fg.Neighbors(v2) {
			if !alive.Has(int(u)) {
				continue
			}
			private := true
			for _, x := range fg.Neighbors(int(u)) {
				if alive.Has(int(x)) {
					private = false
					break
				}
			}
			if private {
				alive.Clear(int(u))
				removed = append(removed, int(u))
			}
		}
		ok := true
		for _, x := range removed {
			if term.Has(x) {
				ok = false
				break
			}
		}
		// Same cover test as the mutable path: the terminals must stay
		// mutually connected; stranded fragments are cleaned up when the
		// ordering reaches their own V2 nodes.
		if ok && !terminalsConnectedBits(fg, alive, term, terminals, sc.bit) {
			ok = false
		}
		if !ok {
			for _, x := range removed {
				alive.Set(x)
			}
		}
	}
	esp.End()
	sc.ints = removed[:0]
	rsp := tr.StartSpan("solve.render")
	restrictToTerminalComponentBits(fg, alive, terminals, sc)
	var t Tree
	err = spanningTreeBits(fg, alive, sc, &t)
	rsp.End()
	if err != nil {
		return Tree{}, err
	}
	return t, nil
}

// lemma1OrderingAlive computes the Lemma 1 elimination ordering of the
// alive V2 nodes (original ids), building H¹ of the alive subgraph straight
// off the CSR arrays. Greedy edge order and the running-intersection check
// are deterministic over edge indices, and the alive restriction preserves
// relative node and edge order, so the result matches Lemma1Ordering on the
// induced subgraph mapped back to original ids.
func lemma1OrderingAlive(fb *bipartite.Frozen, alive graph.Bits) ([]int, error) {
	corr := fb.HypergraphV1AliveBits(alive)
	rip := corr.H.GreedyEdgeOrder()
	if corr.H.VerifyRunningIntersection(rip) != -1 {
		return nil, ErrNotAlphaAcyclic
	}
	seen := make(map[int]bool, len(corr.EdgeToV2))
	for _, v := range corr.EdgeToV2 {
		seen[v] = true
	}
	w := make([]int, 0, len(fb.V2()))
	for _, v := range fb.V2() {
		if (alive == nil || alive.Has(v)) && !seen[v] {
			w = append(w, v) // isolated V2 node: eliminate first
		}
	}
	for i := len(rip) - 1; i >= 0; i-- {
		w = append(w, corr.EdgeToV2[rip[i]])
	}
	return w, nil
}

// ExactFrozen is Exact on a frozen graph: the Dreyfus–Wagner dynamic
// program over terminal subsets with flat int32 state. The BFS distance
// rows are built only for the nodes of the terminals' component C (an
// intermediate Steiner point of a connected cover can never leave it), and
// the dp/choice tables are two contiguous blocks indexed s·n+v, so for k+1
// terminals peak memory is (|C| + 2·2^k)·n int32 words — the 2^k factor is
// inherent to the DP (Theorem 2 forbids better in general), the |C|·n
// distance block replaces the former n² one. The context is checked before
// the distance rows are built, per cancelStride rows, and once per terminal
// subset of the DP (each subset costs O(|C|²) work, so a deadline is
// honored well before the exponential loop completes).
func ExactFrozen(ctx context.Context, fg *graph.Frozen, terminals []int) (Tree, error) {
	return ExactFrozenShared(ctx, fg, terminals, nil)
}

// ExactFrozenShared is ExactFrozen drawing component masks from a
// batch-planner Shared (nil behaves like ExactFrozen).
func ExactFrozenShared(ctx context.Context, fg *graph.Frozen, terminals []int, sh *Shared) (Tree, error) {
	var t Tree
	if err := exactFrozen(ctx, fg, terminals, sh, &t); err != nil {
		return Tree{}, err
	}
	return t, nil
}

func exactFrozen(ctx context.Context, fg *graph.Frozen, terminals []int, sh *Shared, t *Tree) error {
	ts := intset.FromSlice(terminals)
	if ts.Len() == 0 {
		return ErrEmptyTerminals
	}
	if ts.Len() == 1 {
		t.Nodes = ts.Clone()
		t.Edges = t.Edges[:0]
		return nil
	}
	if ts.Len() > ExactTerminalLimit {
		return fmt.Errorf("steiner: %d terminals: %w", ts.Len(), ErrTooManyTerminals)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	tr := trace.FromContext(ctx)
	n := fg.N()
	sc := getScratch(n)
	defer sc.release()
	psp := tr.StartSpan("solve.probe")
	comp, err := componentAliveBits(fg, terminals, sh, sc, sc.comp)
	psp.End()
	if err != nil {
		return err
	}
	// Distance rows, one per component member, restricted to the component:
	// distances between members are unaffected (shortest paths cannot leave
	// a component) and everything else is -1 on both paths.
	rowsp := tr.StartSpan("solve.rows")
	members := comp.AppendOnes(sc.ints[:0])
	sc.ints = members
	c := len(members)
	rowsp.AnnotateInt("rows", int64(c))
	rowOf := grow32(sc.rowOf, n)
	sc.rowOf = rowOf
	for i, u := range members {
		rowOf[u] = int32(i)
	}
	dist := grow32(sc.dist, c*n)
	sc.dist = dist
	for i, u := range members {
		if i&(cancelStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				rowsp.End()
				return err
			}
		}
		fg.BFSDistancesBits(u, comp, dist[i*n:(i+1)*n], sc.bit)
	}
	rowsp.End()

	k := ts.Len() - 1 // subsets range over ts[0..k-1]; ts[k] is the root
	root := ts[k]
	const inf = math.MaxInt32
	size := 1 << uint(k)
	dsp := tr.StartSpan("solve.dp")
	dsp.AnnotateInt("subsets", int64(size))
	// dp and choice are flat blocks, entry (s, v) at s*n+v. Only member
	// columns are ever read or written (a state is finite only for nodes of
	// the terminals' component), so only those are initialized; choice needs
	// no initialization at all — it is read only for finite composite dp
	// states, and every write of such a state writes its choice too.
	dp := grow32(sc.dp, size*n)
	sc.dp = dp
	choice := grow32(sc.choice, size*n)
	sc.choice = choice
	for s := 1; s < size; s++ {
		b := s * n
		for _, v := range members {
			dp[b+v] = inf
		}
	}
	for i := 0; i < k; i++ {
		trow := dist[int(rowOf[ts[i]])*n:]
		b := (1 << uint(i)) * n
		for _, v := range members {
			if d := trow[v]; d >= 0 {
				dp[b+v] = d
			}
		}
	}
	for s := 1; s < size; s++ {
		if s&(s-1) == 0 {
			continue // singleton: base case done
		}
		if err := ctx.Err(); err != nil {
			dsp.End()
			return err
		}
		b := s * n
		// Merge step: split S at v. Members ascend in id order, so update
		// order — and therefore tie-breaking — matches the 0..n-1 sweep of
		// the mutable path exactly.
		for _, v := range members {
			for sub := (s - 1) & s; sub > 0; sub = (sub - 1) & s {
				if sub < s-sub {
					break // each unordered split once
				}
				if dp[sub*n+v] < inf && dp[(s&^sub)*n+v] < inf {
					if c := dp[sub*n+v] + dp[(s&^sub)*n+v]; c < dp[b+v] {
						dp[b+v] = c
						choice[b+v] = int32(sub)
					}
				}
			}
		}
		// Grow step: attach a path u..v, relaxing over the distance rows.
		for _, v := range members {
			for ui, u := range members {
				if u == v || dp[b+u] >= inf {
					continue
				}
				d := dist[ui*n+v]
				if d < 0 {
					continue
				}
				if c := dp[b+u] + d; c < dp[b+v] {
					dp[b+v] = c
					choice[b+v] = int32(-1 - u)
				}
			}
		}
	}
	full := size - 1
	if dp[full*n+root] >= inf {
		dsp.End()
		return ErrDisconnectedTerminals
	}
	dsp.End()

	// Reconstruct the node set into the alive mask.
	rsp := tr.StartSpan("solve.render")
	nodes := sc.alive
	nodes.Reset()
	var rec func(s int, v int)
	rec = func(s int, v int) {
		nodes.Set(v)
		if s&(s-1) == 0 {
			var ti int
			for i := 0; i < k; i++ {
				if s == 1<<uint(i) {
					ti = ts[i]
				}
			}
			for _, x := range fg.ShortestPath(ti, v) {
				nodes.Set(x)
			}
			return
		}
		ch := choice[s*n+v]
		if ch < 0 {
			u := int(-1 - ch)
			for _, x := range fg.ShortestPath(u, v) {
				nodes.Set(x)
			}
			rec(s, u)
			return
		}
		rec(int(ch), v)
		rec(s&^int(ch), v)
	}
	rec(full, root)

	err = spanningTreeBits(fg, nodes, sc, t)
	rsp.End()
	if err != nil {
		return err
	}
	if got, want := t.Nodes.Len(), int(dp[full*n+root])+1; got > want {
		return fmt.Errorf("steiner: reconstruction produced %d nodes for cost %d (internal error)", got, want-1)
	}
	return nil
}

// ApproximateFrozen is Approximate on a frozen graph: the metric-closure
// 2-approximation with pooled terminal-row BFS distances and the final
// pruning pass running the word-parallel cover probe. The context is
// checked per terminal BFS row and every cancelStride pruning probes.
func ApproximateFrozen(ctx context.Context, fg *graph.Frozen, terminals []int) (Tree, error) {
	return ApproximateFrozenShared(ctx, fg, terminals, nil)
}

// ApproximateFrozenShared is ApproximateFrozen drawing component masks and
// terminal distance rows from a batch-planner Shared (nil behaves like
// ApproximateFrozen).
func ApproximateFrozenShared(ctx context.Context, fg *graph.Frozen, terminals []int, sh *Shared) (Tree, error) {
	var t Tree
	if err := approximateFrozen(ctx, fg, terminals, sh, &t); err != nil {
		return Tree{}, err
	}
	return t, nil
}

func approximateFrozen(ctx context.Context, fg *graph.Frozen, terminals []int, sh *Shared, t *Tree) error {
	tr := trace.FromContext(ctx)
	ts := intset.FromSlice(terminals)
	n := fg.N()
	sc := getScratch(n)
	defer sc.release()
	psp := tr.StartSpan("solve.probe")
	_, err := componentAliveBits(fg, terminals, sh, sc, sc.comp)
	psp.End()
	if err != nil {
		return err
	}
	if ts.Len() == 1 {
		t.Nodes = ts.Clone()
		t.Edges = t.Edges[:0]
		return nil
	}
	k := ts.Len()
	rowsp := tr.StartSpan("solve.rows")
	rowsp.AnnotateInt("rows", int64(k))
	dist := grow32(sc.dist, k*n)
	sc.dist = dist
	for i, p := range ts {
		if err := ctx.Err(); err != nil {
			rowsp.End()
			return err
		}
		if row := sh.row(p); row != nil {
			copy(dist[i*n:(i+1)*n], row)
		} else {
			fg.BFSDistancesBits(p, nil, dist[i*n:(i+1)*n], sc.bit)
		}
	}
	rowsp.End()
	// Prim MST over the terminal metric closure; the in-tree set is a bit
	// mask over terminal indices, best/bestTo pooled flat arrays.
	msp := tr.StartSpan("solve.mst")
	inTree := sc.term
	inTree.Reset()
	best := grow32(sc.rowOf, k)
	sc.rowOf = best
	if cap(sc.ints2) < k {
		sc.ints2 = make([]int, k)
	}
	bestTo := sc.ints2[:k]
	for i := range best {
		best[i] = 1 << 30
	}
	best[0] = 0
	bestTo[0] = -1
	nodes := sc.alive
	nodes.Reset()
	for picked := 0; picked < k; picked++ {
		sel := -1
		for i := 0; i < k; i++ {
			if !inTree.Has(i) && (sel == -1 || best[i] < best[sel]) {
				sel = i
			}
		}
		inTree.Set(sel)
		if bestTo[sel] >= 0 {
			for _, v := range fg.ShortestPath(ts[bestTo[sel]], ts[sel]) {
				nodes.Set(v)
			}
		} else {
			nodes.Set(ts[sel])
		}
		for i := 0; i < k; i++ {
			if !inTree.Has(i) && dist[sel*n+ts[i]] >= 0 && dist[sel*n+ts[i]] < best[i] {
				best[i] = dist[sel*n+ts[i]]
				bestTo[i] = sel
			}
		}
	}
	msp.End()
	// Prune: drop nodes whose removal keeps a cover (single pass, largest
	// ids first for determinism). AppendOnes yields ascending ids — the
	// same order the mutable path gets from its sorted node set.
	rsp := tr.StartSpan("solve.render")
	alive := nodes
	order := alive.AppendOnes(sc.ints[:0])
	sc.ints = order
	term := termMask(sc, terminals) // reclaims the Prim in-tree mask
	for i := len(order) - 1; i >= 0; i-- {
		if i&(cancelStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				rsp.End()
				return err
			}
		}
		v := order[i]
		if ts.Contains(v) {
			continue
		}
		alive.Clear(v)
		if !coversBits(fg, alive, term, terminals, sc.bit) {
			alive.Set(v)
		}
	}
	err = spanningTreeBits(fg, alive, sc, t)
	rsp.End()
	return err
}
