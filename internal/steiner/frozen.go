package steiner

// Frozen-path solvers: the Section 3 algorithms compiled against the
// immutable CSR views of internal/graph and internal/bipartite. The
// algorithms are the same as the mutable path (steiner.go, algorithm1.go,
// exact.go, heuristic.go) and return identical answers (asserted by
// frozen_test.go), but the hot loops differ:
//
//   - connectivity probes during elimination run an early-exit search with
//     epoch-stamped visit marks, so a probe costs the touched region, not an
//     O(n) reset, and the whole pass stays allocation-free;
//   - Algorithm 1 runs on the terminals' component via an alive mask over
//     the shared CSR arrays instead of materializing an induced subgraph
//     copy with id remapping;
//   - all adjacency iteration walks flat int32 slices.
//
// Every function here only reads the frozen views, so one frozen scheme can
// serve any number of concurrent queries (see core.Service).
//
// Each frozen solver takes a context.Context and checks it periodically —
// at iteration granularity in the polynomial elimination passes, per
// terminal-subset in the exponential Dreyfus–Wagner program — returning
// ctx.Err() (context.Canceled or context.DeadlineExceeded, errors.Is-
// testable) so a deadline bounds the tail latency of a query instead of
// merely being observed after the solver finishes.

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/intset"
)

// cancelStride is how many hot-loop iterations run between context checks
// in the polynomial solvers; a power of two so the check compiles to a mask
// test.
const cancelStride = 64

// componentAliveFrozen returns the alive mask of the connected component of
// fg containing all terminals, or an error when they span components.
func componentAliveFrozen(fg *graph.Frozen, terminals []int) ([]bool, error) {
	if len(terminals) == 0 {
		return nil, ErrEmptyTerminals
	}
	mask := fg.ComponentMask(terminals)
	if mask == nil {
		return nil, ErrDisconnectedTerminals
	}
	return mask, nil
}

// restrictToTerminalComponentFrozen clears alive flags outside the
// terminals' connected component.
func restrictToTerminalComponentFrozen(fg *graph.Frozen, alive []bool, terminals []int) {
	if len(terminals) == 0 {
		return
	}
	dist := fg.BFSDistancesAlive(terminals[0], alive)
	for v := range alive {
		if alive[v] && dist[v] == -1 {
			alive[v] = false
		}
	}
}

// spanningTreeFrozen builds the Tree result for an alive cover.
func spanningTreeFrozen(fg *graph.Frozen, alive []bool) (Tree, error) {
	edges, ok := fg.SpanningTreeAlive(alive)
	if !ok {
		return Tree{}, errors.New("steiner: cover is not connected (internal error)")
	}
	var nodes []int
	for v := 0; v < fg.N(); v++ {
		if alive[v] {
			nodes = append(nodes, v)
		}
	}
	return Tree{Nodes: intset.FromSlice(nodes), Edges: edges}, nil
}

// connScratch holds the reusable state of the elimination passes'
// connectivity probes. Visit marks are epoch stamps, so starting a new probe
// is one integer increment instead of clearing an array, and the search
// stops as soon as every terminal has been reached.
type connScratch struct {
	visited []int32
	epoch   int32
	isTerm  []bool
	nTerm   int
	stack   []int32
}

func newConnScratch(n int, terminals []int) *connScratch {
	sc := &connScratch{
		visited: make([]int32, n),
		isTerm:  make([]bool, n),
		stack:   make([]int32, 0, 64),
	}
	for _, p := range terminals {
		if !sc.isTerm[p] {
			sc.isTerm[p] = true
			sc.nTerm++
		}
	}
	return sc
}

// terminalsConnected reports whether all terminals are alive and mutually
// connected in the alive subgraph, mirroring Graph.TerminalsConnected.
func (sc *connScratch) terminalsConnected(fg *graph.Frozen, alive []bool, terminals []int) bool {
	for _, p := range terminals {
		if !alive[p] {
			return false
		}
	}
	sc.epoch++
	remaining := sc.nTerm
	start := terminals[0]
	sc.visited[start] = sc.epoch
	remaining--
	st := append(sc.stack[:0], int32(start))
	for len(st) > 0 && remaining > 0 {
		v := st[len(st)-1]
		st = st[:len(st)-1]
		for _, w := range fg.Neighbors(int(v)) {
			if sc.visited[w] == sc.epoch || !alive[w] {
				continue
			}
			sc.visited[w] = sc.epoch
			if sc.isTerm[w] {
				remaining--
			}
			st = append(st, w)
		}
	}
	sc.stack = st[:0]
	return remaining == 0
}

// EliminateOrderedFrozen is EliminateOrdered on a frozen graph: the
// Definition 11 single-pass redundant-node elimination, with each removal
// probe running the early-exit connectivity search. The context is checked
// every cancelStride removals.
func EliminateOrderedFrozen(ctx context.Context, fg *graph.Frozen, terminals, order []int) (Tree, error) {
	alive, err := componentAliveFrozen(fg, terminals)
	if err != nil {
		return Tree{}, err
	}
	p := intset.FromSlice(terminals)
	sc := newConnScratch(fg.N(), terminals)
	for i, v := range order {
		if i&(cancelStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return Tree{}, err
			}
		}
		if v < 0 || v >= fg.N() || !alive[v] || p.Contains(v) {
			continue
		}
		alive[v] = false
		if !sc.terminalsConnected(fg, alive, terminals) {
			alive[v] = true
		}
	}
	restrictToTerminalComponentFrozen(fg, alive, terminals)
	return spanningTreeFrozen(fg, alive)
}

// Algorithm2Frozen is Algorithm2 on a frozen graph (Theorem 5): redundant-
// node elimination in id order, minimum on (6,2)-chordal bipartite graphs.
func Algorithm2Frozen(ctx context.Context, fg *graph.Frozen, terminals []int) (Tree, error) {
	order := make([]int, fg.N())
	for i := range order {
		order[i] = i
	}
	return EliminateOrderedFrozen(ctx, fg, terminals, order)
}

// Algorithm1Frozen is Algorithm1 on a frozen bipartite graph (Theorem 3):
// the pseudo-Steiner tree with the minimum number of V2 nodes on a
// V1-chordal, V1-conformal scheme. Instead of materializing the induced
// subgraph of the terminals' component (as the mutable path does) it runs
// the Lemma 1 ordering and the elimination pass under an alive mask over
// the shared CSR arrays. It returns ErrNotAlphaAcyclic when H¹ of the
// component is not α-acyclic. The context is checked every cancelStride
// elimination steps.
func Algorithm1Frozen(ctx context.Context, fb *bipartite.Frozen, terminals []int) (Tree, error) {
	fg := fb.G()
	alive, err := componentAliveFrozen(fg, terminals)
	if err != nil {
		return Tree{}, err
	}
	w, err := lemma1OrderingAlive(fb, alive)
	if err != nil {
		return Tree{}, err
	}
	p := intset.FromSlice(terminals)
	sc := newConnScratch(fg.N(), terminals)
	removed := make([]int, 0, 16)
	for i, v2 := range w {
		if i&(cancelStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return Tree{}, err
			}
		}
		if !alive[v2] {
			continue
		}
		// X = {v} ∪ Adj*(v): v plus the nodes currently adjacent only to v.
		removed = append(removed[:0], v2)
		alive[v2] = false
		for _, u := range fg.Neighbors(v2) {
			if !alive[u] {
				continue
			}
			private := true
			for _, x := range fg.Neighbors(int(u)) {
				if alive[x] {
					private = false
					break
				}
			}
			if private {
				alive[u] = false
				removed = append(removed, int(u))
			}
		}
		ok := true
		for _, x := range removed {
			if p.Contains(x) {
				ok = false
				break
			}
		}
		// Same cover test as the mutable path: the terminals must stay
		// mutually connected; stranded fragments are cleaned up when the
		// ordering reaches their own V2 nodes.
		if ok && !sc.terminalsConnected(fg, alive, terminals) {
			ok = false
		}
		if !ok {
			for _, x := range removed {
				alive[x] = true
			}
		}
	}
	restrictToTerminalComponentFrozen(fg, alive, terminals)
	return spanningTreeFrozen(fg, alive)
}

// lemma1OrderingAlive computes the Lemma 1 elimination ordering of the
// alive V2 nodes (original ids), building H¹ of the alive subgraph straight
// off the CSR arrays. Greedy edge order and the running-intersection check
// are deterministic over edge indices, and the alive restriction preserves
// relative node and edge order, so the result matches Lemma1Ordering on the
// induced subgraph mapped back to original ids.
func lemma1OrderingAlive(fb *bipartite.Frozen, alive []bool) ([]int, error) {
	corr := fb.HypergraphV1Alive(alive)
	rip := corr.H.GreedyEdgeOrder()
	if corr.H.VerifyRunningIntersection(rip) != -1 {
		return nil, ErrNotAlphaAcyclic
	}
	seen := make(map[int]bool, len(corr.EdgeToV2))
	for _, v := range corr.EdgeToV2 {
		seen[v] = true
	}
	var w []int
	for _, v := range fb.V2() {
		if (alive == nil || alive[v]) && !seen[v] {
			w = append(w, v) // isolated V2 node: eliminate first
		}
	}
	for i := len(rip) - 1; i >= 0; i-- {
		w = append(w, corr.EdgeToV2[rip[i]])
	}
	return w, nil
}

// ExactFrozen is Exact on a frozen graph: the Dreyfus–Wagner dynamic
// program over terminal subsets, with the all-pairs distance table computed
// by CSR BFS into compact int32 rows. The context is checked before the
// distance table is built, per BFS row, and once per terminal subset of the
// DP (each subset costs O(n²) work, so a deadline is honored well before
// the exponential loop completes).
func ExactFrozen(ctx context.Context, fg *graph.Frozen, terminals []int) (Tree, error) {
	ts := intset.FromSlice(terminals)
	if ts.Len() == 0 {
		return Tree{}, ErrEmptyTerminals
	}
	if ts.Len() == 1 {
		return Tree{Nodes: ts.Clone()}, nil
	}
	if ts.Len() > ExactTerminalLimit {
		return Tree{}, fmt.Errorf("steiner: %d terminals: %w", ts.Len(), ErrTooManyTerminals)
	}
	if err := ctx.Err(); err != nil {
		return Tree{}, err
	}
	n := fg.N()
	dist := make([][]int32, n)
	for v := 0; v < n; v++ {
		if v&(cancelStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return Tree{}, err
			}
		}
		dist[v] = fg.BFSDistances(v)
	}
	for _, t := range ts[1:] {
		if dist[ts[0]][t] == -1 {
			return Tree{}, ErrDisconnectedTerminals
		}
	}

	k := ts.Len() - 1 // subsets range over ts[0..k-1]; ts[k] is the root
	root := ts[k]
	const inf = math.MaxInt32
	size := 1 << uint(k)
	dp := make([][]int32, size)
	// choice records reconstruction info exactly as in Exact.
	choice := make([][]int32, size)
	for s := 1; s < size; s++ {
		dp[s] = make([]int32, n)
		choice[s] = make([]int32, n)
		for v := range dp[s] {
			dp[s][v] = inf
		}
	}
	for i := 0; i < k; i++ {
		t := ts[i]
		s := 1 << uint(i)
		for v := 0; v < n; v++ {
			if d := dist[t][v]; d >= 0 {
				dp[s][v] = d
			}
		}
	}
	for s := 1; s < size; s++ {
		if s&(s-1) == 0 {
			continue // singleton: base case done
		}
		if err := ctx.Err(); err != nil {
			return Tree{}, err
		}
		for v := 0; v < n; v++ {
			for sub := (s - 1) & s; sub > 0; sub = (sub - 1) & s {
				if sub < s-sub {
					break // each unordered split once
				}
				if dp[sub][v] < inf && dp[s&^sub][v] < inf {
					if c := dp[sub][v] + dp[s&^sub][v]; c < dp[s][v] {
						dp[s][v] = c
						choice[s][v] = int32(sub)
					}
				}
			}
		}
		for v := 0; v < n; v++ {
			for u := 0; u < n; u++ {
				if u == v || dp[s][u] >= inf || dist[u][v] < 0 {
					continue
				}
				if c := dp[s][u] + dist[u][v]; c < dp[s][v] {
					dp[s][v] = c
					choice[s][v] = int32(-1 - u)
				}
			}
		}
	}
	full := size - 1
	if dp[full][root] >= inf {
		return Tree{}, ErrDisconnectedTerminals
	}

	nodes := map[int]bool{}
	var rec func(s int, v int)
	rec = func(s int, v int) {
		nodes[v] = true
		if s&(s-1) == 0 {
			var ti int
			for i := 0; i < k; i++ {
				if s == 1<<uint(i) {
					ti = ts[i]
				}
			}
			for _, x := range fg.ShortestPath(ti, v) {
				nodes[x] = true
			}
			return
		}
		c := choice[s][v]
		if c < 0 {
			u := int(-1 - c)
			for _, x := range fg.ShortestPath(u, v) {
				nodes[x] = true
			}
			rec(s, u)
			return
		}
		rec(int(c), v)
		rec(s&^int(c), v)
	}
	rec(full, root)

	alive := make([]bool, n)
	for v := range nodes {
		alive[v] = true
	}
	tree, err := spanningTreeFrozen(fg, alive)
	if err != nil {
		return Tree{}, err
	}
	if got, want := tree.Nodes.Len(), int(dp[full][root])+1; got > want {
		return Tree{}, fmt.Errorf("steiner: reconstruction produced %d nodes for cost %d (internal error)", got, want-1)
	}
	return tree, nil
}

// ApproximateFrozen is Approximate on a frozen graph: the metric-closure
// 2-approximation with terminal-row BFS distances and the final pruning
// pass over the CSR view. The context is checked per terminal BFS row and
// every cancelStride pruning probes.
func ApproximateFrozen(ctx context.Context, fg *graph.Frozen, terminals []int) (Tree, error) {
	ts := intset.FromSlice(terminals)
	if _, err := componentAliveFrozen(fg, terminals); err != nil {
		return Tree{}, err
	}
	if ts.Len() == 1 {
		return Tree{Nodes: ts.Clone()}, nil
	}
	k := ts.Len()
	dist := make([][]int32, k)
	for i, t := range ts {
		if err := ctx.Err(); err != nil {
			return Tree{}, err
		}
		dist[i] = fg.BFSDistances(t)
	}
	// Prim MST over the terminal metric closure.
	inTree := make([]bool, k)
	best := make([]int32, k)
	bestTo := make([]int, k)
	for i := range best {
		best[i] = 1 << 30
	}
	best[0] = 0
	bestTo[0] = -1
	nodes := map[int]bool{}
	for picked := 0; picked < k; picked++ {
		sel := -1
		for i := 0; i < k; i++ {
			if !inTree[i] && (sel == -1 || best[i] < best[sel]) {
				sel = i
			}
		}
		inTree[sel] = true
		if bestTo[sel] >= 0 {
			for _, v := range fg.ShortestPath(ts[bestTo[sel]], ts[sel]) {
				nodes[v] = true
			}
		} else {
			nodes[ts[sel]] = true
		}
		for i := 0; i < k; i++ {
			if !inTree[i] && dist[sel][ts[i]] >= 0 && dist[sel][ts[i]] < best[i] {
				best[i] = dist[sel][ts[i]]
				bestTo[i] = sel
			}
		}
	}
	// Prune: drop nodes whose removal keeps a cover (single pass, largest
	// ids first for determinism).
	alive := make([]bool, fg.N())
	var order []int
	for v := range nodes {
		alive[v] = true
		order = append(order, v)
	}
	order = intset.FromSlice(order)
	for i := len(order) - 1; i >= 0; i-- {
		if i&(cancelStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				return Tree{}, err
			}
		}
		v := order[i]
		if ts.Contains(v) {
			continue
		}
		alive[v] = false
		if !fg.Covers(alive, terminals) {
			alive[v] = true
		}
	}
	return spanningTreeFrozen(fg, alive)
}
