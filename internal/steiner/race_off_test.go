//go:build !race

package steiner_test

// raceEnabled reports whether the race detector instruments this build;
// the zero-alloc test skips under it (race mode makes sync.Pool drop
// items pseudo-randomly, so pooled scratch legitimately reallocates).
const raceEnabled = false
