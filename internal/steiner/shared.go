package steiner

// Shared is precomputed read-only work a batch of queries on one frozen
// scheme can draw on: component masks and BFS distance rows keyed by
// terminal id. The batch planner in internal/core groups queries that share
// terminals, precomputes each group's work once, and hands the same Shared
// to every solver call of the group — the solvers then copy a ready mask or
// row instead of re-flooding the graph per query.
//
// Build protocol: construct with NewShared, call Precompute (any number of
// times, single-goroutine), then share freely — after the last Precompute
// every method is a read and safe for unsynchronized concurrent use. A nil
// *Shared is valid everywhere and means "nothing precomputed".
//
// Answers drawn through a Shared are bit-for-bit those of the unshared
// path: a component mask is the same flood ComponentBits runs, a distance
// row the same BFSDistancesBits row (both are canonical — BFS distances and
// component membership do not depend on traversal order).

import (
	"context"

	"repro/internal/graph"
)

// Shared holds the precomputed per-component masks and per-terminal
// distance rows for one frozen graph. See the package comment above for the
// build/sharing protocol.
type Shared struct {
	fg     *graph.Frozen
	compOf []int32         // node id → index into comps; -1 unknown
	comps  []graph.Bits    // flooded component masks, owned
	rows   map[int][]int32 // terminal id → BFS distance row, owned
}

// NewShared returns an empty Shared for fg. Solvers handed this Shared must
// run on the same frozen view.
func NewShared(fg *graph.Frozen) *Shared {
	sh := &Shared{fg: fg, compOf: make([]int32, fg.N()), rows: map[int][]int32{}}
	for i := range sh.compOf {
		sh.compOf[i] = -1
	}
	return sh
}

// Precompute floods the connected component of every given terminal (ids
// out of range are skipped — validation is the caller's boundary) and, when
// withRows is set, its full BFS distance row. Work already present is not
// redone, so interleaving Precompute calls for overlapping terminal sets is
// cheap. Not safe for concurrent use with itself; see the build protocol.
func (sh *Shared) Precompute(ctx context.Context, terminals []int, withRows bool) error {
	bsc := graph.NewBitScratch(sh.fg.N())
	for _, t := range terminals {
		if t < 0 || t >= sh.fg.N() {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if sh.compOf[t] == -1 {
			mask := graph.NewBits(sh.fg.N())
			mask.CopyFrom(sh.fg.Reachable(t, nil, bsc))
			idx := int32(len(sh.comps))
			sh.comps = append(sh.comps, mask)
			for _, v := range mask.AppendOnes(nil) {
				sh.compOf[v] = idx
			}
		}
		if withRows {
			if _, ok := sh.rows[t]; !ok {
				row := make([]int32, sh.fg.N())
				sh.fg.BFSDistancesBits(t, nil, row, bsc)
				sh.rows[t] = row
			}
		}
	}
	return nil
}

// component returns the precomputed component mask containing every
// terminal. known reports whether this Shared can answer at all (the first
// terminal's component was precomputed); a known nil mask means the
// terminals provably span several components. The mask is shared and must
// not be modified.
func (sh *Shared) component(terminals []int) (mask graph.Bits, known bool) {
	if sh == nil || len(terminals) == 0 {
		return nil, false
	}
	t0 := terminals[0]
	if t0 < 0 || t0 >= len(sh.compOf) || sh.compOf[t0] == -1 {
		return nil, false
	}
	m := sh.comps[sh.compOf[t0]]
	for _, t := range terminals {
		if t < 0 || t >= len(sh.compOf) || !m.Has(t) {
			return nil, true // known disconnected
		}
	}
	return m, true
}

// row returns the precomputed BFS distance row of terminal t, or nil. The
// row is shared and must not be modified.
func (sh *Shared) row(t int) []int32 {
	if sh == nil {
		return nil
	}
	return sh.rows[t]
}
