// Package steiner implements Section 3 of the paper: minimum covers and
// Steiner/pseudo-Steiner trees on (bipartite) graphs.
//
//   - Algorithm 2 (Theorem 5): node-minimum Steiner trees on (6,2)-chordal
//     bipartite graphs by single-pass redundant-node elimination, in
//     O(|V|·|A|); the same elimination pass parameterized by an arbitrary
//     ordering implements the "good ordering" machinery of Definition 11 and
//     Corollary 5.
//   - Algorithm 1 (Theorem 3): pseudo-Steiner trees with respect to V2 on
//     V1-chordal, V1-conformal bipartite graphs, via the running-intersection
//     elimination ordering of Lemma 1.
//   - Exact baselines: the Dreyfus–Wagner dynamic program (exponential in the
//     number of terminals) for the node-minimum Steiner problem.
//   - A metric-closure 2-approximation heuristic, used as the fallback where
//     the paper proves NP-hardness.
//   - The paper's two NP-hardness reductions (Theorem 2's X3C gadget, Fig 6,
//     and the CSPC gadget of the remarks after Corollary 4, Fig 9).
//
// Each solver has a frozen port (Algorithm2Frozen, ExactFrozen, ...) that
// runs on the immutable graph.Frozen view: connectivity probes and BFS go
// through the bit-parallel wave kernels when the view carries a compiled
// adjacency matrix (falling back to CSR walks otherwise), and all
// per-query scratch — alive/terminal masks, distance rows, the flat
// Dreyfus–Wagner tables — is drawn from a sync.Pool. The *Into variants
// (Algorithm2FrozenInto, ...) additionally reuse the caller's Tree
// capacity, making steady-state queries allocation-free. Frozen answers
// are bit-for-bit identical to the mutable path, errors included.
//
// Shared captures batch-level reusable work (terminal component masks and
// BFS distance rows): build one with NewShared + Precompute, then pass it
// to the *FrozenShared entry points from any number of concurrent
// queries. A nil *Shared is always valid and means "no precomputed work".
package steiner
