package steiner_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/fixtures"
	"repro/internal/gen"
	"repro/internal/steiner"
)

// ctx is the no-deadline context of the equivalence sweeps (cancellation
// has its own tests in cancel_test.go).
var ctx = context.Background()

// assertSameTree fails unless the two trees are identical: same cover node
// set and same spanning tree edges. The frozen path is built to reproduce
// the mutable path bit-for-bit, not merely up to optimality.
func assertSameTree(t *testing.T, label string, mutable, frozen steiner.Tree, err1, err2 error) {
	t.Helper()
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("%s: error mismatch: mutable %v, frozen %v", label, err1, err2)
	}
	if err1 != nil {
		if err1.Error() != err2.Error() {
			t.Fatalf("%s: different errors: mutable %v, frozen %v", label, err1, err2)
		}
		return
	}
	if !mutable.Nodes.Equal(frozen.Nodes) {
		t.Fatalf("%s: node sets differ: mutable %v, frozen %v", label, mutable.Nodes, frozen.Nodes)
	}
	if len(mutable.Edges) != len(frozen.Edges) {
		t.Fatalf("%s: edge counts differ", label)
	}
	for i := range mutable.Edges {
		if mutable.Edges[i] != frozen.Edges[i] {
			t.Fatalf("%s: edge %d differs: mutable %v, frozen %v", label, i, mutable.Edges[i], frozen.Edges[i])
		}
	}
}

// fixtureSchemes returns every bipartite fixture of the paper that the
// solvers run on.
func fixtureSchemes() map[string]*bipartite.Graph {
	return map[string]*bipartite.Graph{
		"Fig2":  fixtures.Fig2(),
		"Fig3a": fixtures.Fig3a(),
		"Fig3b": fixtures.Fig3b(),
		"Fig3c": fixtures.Fig3c(),
		"Fig5":  fixtures.Fig5(),
		"Fig8":  fixtures.Fig8(),
		"Fig10": fixtures.Fig10(),
		"Fig11": fixtures.Fig11(),
	}
}

// terminalSets enumerates small terminal subsets of a graph for the
// equivalence sweeps.
func terminalSets(r *rand.Rand, n int) [][]int {
	sets := [][]int{{0}, {0, n - 1}}
	for k := 2; k <= 4 && k <= n; k++ {
		perm := r.Perm(n)
		sets = append(sets, perm[:k])
	}
	return sets
}

func TestAlgorithm2FrozenMatchesMutableOnFixtures(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for name, b := range fixtureSchemes() {
		g := b.G()
		fg := g.Freeze()
		for _, terms := range terminalSets(r, g.N()) {
			want, err1 := steiner.Algorithm2(g, terms)
			got, err2 := steiner.Algorithm2Frozen(ctx, fg, terms)
			assertSameTree(t, name, want, got, err1, err2)
		}
	}
}

func TestAlgorithm1FrozenMatchesMutableOnFixtures(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for name, b := range fixtureSchemes() {
		fb := b.Freeze()
		for _, terms := range terminalSets(r, b.N()) {
			want, err1 := steiner.Algorithm1(b, terms)
			got, err2 := steiner.Algorithm1Frozen(ctx, fb, terms)
			assertSameTree(t, name, want, got, err1, err2)
		}
	}
}

func TestFrozenSolversMatchMutableRandom(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	for trial := 0; trial < 25; trial++ {
		var b *bipartite.Graph
		switch trial % 3 {
		case 0:
			b = bipartite.FromHypergraph(gen.AlphaAcyclic(r, 6+r.Intn(20), 4, 3)).B
		case 1:
			b = bipartite.FromHypergraph(gen.GammaAcyclic(r, 6+r.Intn(20), 3, 3)).B
		default:
			b = gen.RandomBipartite(r, 4+r.Intn(10), 4+r.Intn(10), 0.3)
		}
		g := b.G()
		fb := b.Freeze()
		fg := fb.G()
		for _, terms := range terminalSets(r, g.N()) {
			want, err1 := steiner.Algorithm2(g, terms)
			got, err2 := steiner.Algorithm2Frozen(ctx, fg, terms)
			assertSameTree(t, "Algorithm2", want, got, err1, err2)

			want, err1 = steiner.Algorithm1(b, terms)
			got, err2 = steiner.Algorithm1Frozen(ctx, fb, terms)
			assertSameTree(t, "Algorithm1", want, got, err1, err2)

			order := r.Perm(g.N())
			want, err1 = steiner.EliminateOrdered(g, terms, order)
			got, err2 = steiner.EliminateOrderedFrozen(ctx, fg, terms, order)
			assertSameTree(t, "EliminateOrdered", want, got, err1, err2)

			if len(terms) <= 6 {
				want, err1 = steiner.Exact(g, terms)
				got, err2 = steiner.ExactFrozen(ctx, fg, terms)
				assertSameTree(t, "Exact", want, got, err1, err2)
			}

			want, err1 = steiner.Approximate(g, terms)
			got, err2 = steiner.ApproximateFrozen(ctx, fg, terms)
			assertSameTree(t, "Approximate", want, got, err1, err2)
		}
	}
}

func TestFrozenSolverErrors(t *testing.T) {
	// Two disconnected arcs: terminals spanning components must fail the
	// same way on both paths.
	b := bipartite.New()
	a1, a2 := b.AddV1("a1"), b.AddV1("a2")
	r1, r2 := b.AddV2("r1"), b.AddV2("r2")
	b.AddEdge(a1, r1)
	b.AddEdge(a2, r2)
	fb := b.Freeze()
	if _, err := steiner.Algorithm2Frozen(ctx, fb.G(), []int{a1, a2}); !errors.Is(err, steiner.ErrDisconnectedTerminals) {
		t.Errorf("Algorithm2Frozen across components: %v", err)
	}
	if _, err := steiner.Algorithm1Frozen(ctx, fb, []int{a1, a2}); !errors.Is(err, steiner.ErrDisconnectedTerminals) {
		t.Errorf("Algorithm1Frozen across components: %v", err)
	}
	if _, err := steiner.ExactFrozen(ctx, fb.G(), []int{a1, a2}); !errors.Is(err, steiner.ErrDisconnectedTerminals) {
		t.Errorf("ExactFrozen across components: %v", err)
	}
	if _, err := steiner.ApproximateFrozen(ctx, fb.G(), []int{a1, a2}); !errors.Is(err, steiner.ErrDisconnectedTerminals) {
		t.Errorf("ApproximateFrozen across components: %v", err)
	}
	if _, err := steiner.Algorithm2Frozen(ctx, fb.G(), nil); err == nil {
		t.Error("Algorithm2Frozen on empty terminals should fail")
	}

	// A non-alpha-acyclic component must be rejected by Algorithm 1 on both
	// paths.
	cyc := fixtures.Fig3c()
	terms := cyc.G().IDs("A", "B")
	if _, err := steiner.Algorithm1(cyc, terms); !errors.Is(err, steiner.ErrNotAlphaAcyclic) {
		t.Skipf("fixture unexpectedly alpha-acyclic: %v", err)
	}
	if _, err := steiner.Algorithm1Frozen(ctx, cyc.Freeze(), terms); !errors.Is(err, steiner.ErrNotAlphaAcyclic) {
		t.Errorf("Algorithm1Frozen should reject non-alpha-acyclic component, got %v", err)
	}
}

// TestFrozenSolversConcurrent hammers one frozen scheme from many
// goroutines; run with -race this asserts the advertised immutability.
func TestFrozenSolversConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	b := bipartite.FromHypergraph(gen.GammaAcyclic(r, 30, 3, 3)).B
	fb := b.Freeze()
	fg := fb.G()
	var termSets [][]int
	var wants []steiner.Tree
	for _, terms := range terminalSets(r, fg.N()) {
		if want, err := steiner.Algorithm2Frozen(ctx, fg, terms); err == nil {
			termSets = append(termSets, terms)
			wants = append(wants, want)
		}
	}
	if len(termSets) == 0 {
		t.Fatal("no connected terminal sets")
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(seed int) {
			for i := 0; i < 20; i++ {
				k := (seed + i) % len(termSets)
				got, err := steiner.Algorithm2Frozen(ctx, fg, termSets[k])
				if err != nil {
					done <- err
					return
				}
				if !got.Nodes.Equal(wants[k].Nodes) {
					done <- errors.New("concurrent answer differs from sequential")
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
