package steiner_test

import (
	"math/rand"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/gen"
	"repro/internal/hypergraph"
	"repro/internal/reference"
	"repro/internal/steiner"
)

func TestAlgorithm1WithOrderProducesValidTrees(t *testing.T) {
	r := rand.New(rand.NewSource(301))
	for iter := 0; iter < 60; iter++ {
		h := gen.WithSubsetEdges(r, gen.AlphaAcyclic(r, 3+r.Intn(4), 3, 2), 2)
		b := bipartite.FromHypergraph(h).B
		g := b.G()
		if !g.IsConnected() || g.N() < 3 {
			continue
		}
		terms := r.Perm(g.N())[:2]
		tree, err := steiner.Algorithm1WithOrder(b, terms, r.Perm(g.N()))
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Validate(g, terms); err != nil {
			t.Fatalf("invalid tree: %v", err)
		}
		// A random order may be suboptimal but never better than optimal.
		if got, want := steiner.V2Count(b, tree), reference.MinimumV2Count(b, terms); got < want {
			t.Fatalf("impossible: %d < optimum %d", got, want)
		}
	}
}

// orderingSensitiveInstance is the documented failure shape: a subsumed
// edge e0 ⊆ e1 plus a shortcut, where removal order decides optimality.
func orderingSensitiveInstance() (*bipartite.Graph, []int) {
	h := hypergraph.New()
	h.AddEdgeLabels("w1", "a", "x")
	h.AddEdgeLabels("w2", "x", "b")
	h.AddEdgeLabels("w3", "a", "b")
	h.AddEdgeLabels("W", "a", "x", "b")
	b := bipartite.FromHypergraph(h).B
	g := b.G()
	return b, []int{g.MustID("a"), g.MustID("b")}
}

func TestAlgorithm1WithBadOrderIsSuboptimal(t *testing.T) {
	b, terms := orderingSensitiveInstance()
	g := b.G()
	// Removing W then w3 first forces the two-relation route.
	bad := g.IDs("W", "w3", "w1", "w2")
	tree, err := steiner.Algorithm1WithOrder(b, terms, bad)
	if err != nil {
		t.Fatal(err)
	}
	if got := steiner.V2Count(b, tree); got != 2 {
		t.Fatalf("bad order gave %d V2 nodes, expected the suboptimal 2", got)
	}
	// The proper Algorithm 1 must return the optimum 1.
	tree, err = steiner.Algorithm1(b, terms)
	if err != nil {
		t.Fatal(err)
	}
	if got := steiner.V2Count(b, tree); got != 1 {
		t.Fatalf("Algorithm 1 gave %d V2 nodes, want 1", got)
	}
}

func TestEliminateOrderedStrictGetsStuck(t *testing.T) {
	// The documented strict-semantics failure: a tree where an internal
	// node's pendant branch comes later in the ordering. Strict single-pass
	// elimination keeps both; relaxed elimination reaches the optimum.
	h := hypergraph.New()
	h.AddEdgeLabels("e0", "n0")
	h.AddEdgeLabels("e1", "n0", "n1", "n2")
	h.AddEdgeLabels("e2", "n1", "n2", "n3")
	b := bipartite.FromHypergraph(h).B
	g := b.G()
	terms := []int{g.MustID("n3"), g.MustID("n2")}
	// Order: e1 before e0 — strict cannot remove e1 while e0's branch
	// dangles.
	order := g.IDs("n0", "n1", "e1", "e0", "e2")
	strict, err := steiner.EliminateOrderedStrict(g, terms, order)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := steiner.EliminateOrdered(g, terms, order)
	if err != nil {
		t.Fatal(err)
	}
	want := reference.SteinerMinimumNodes(g, terms)
	if relaxed.Nodes.Len() != want {
		t.Fatalf("relaxed = %d, want %d", relaxed.Nodes.Len(), want)
	}
	if strict.Nodes.Len() <= want {
		t.Fatalf("strict = %d; expected it to exceed the optimum %d on this instance",
			strict.Nodes.Len(), want)
	}
}

func TestStrictStillValidCover(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for iter := 0; iter < 60; iter++ {
		h := gen.GammaAcyclic(r, 2+r.Intn(4), 2, 2)
		b := bipartite.FromHypergraph(h).B
		g := b.G()
		if !g.IsConnected() || g.N() < 3 {
			continue
		}
		terms := r.Perm(g.N())[:2]
		tree, err := steiner.EliminateOrderedStrict(g, terms, r.Perm(g.N()))
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.Validate(g, terms); err != nil {
			t.Fatalf("strict produced invalid tree: %v", err)
		}
	}
}
