package steiner

import (
	"context"
	"sort"

	"repro/internal/graph"
	"repro/internal/intset"
)

// RankedCovers enumerates the node sets of *connection trees* over the
// terminals, ranked by the number of auxiliary (non-terminal) nodes,
// smallest first, ties broken canonically — the order in which a
// disambiguating interface proposes query interpretations (Section 1 of
// the paper; Fig 1's birthdate reading before its works-in reading).
//
// A connection tree is a tree of g containing every terminal whose leaves
// are all terminals (an internal auxiliary node may be "skippable" for
// connectivity — the works-in reading remains a distinct interpretation
// even though the birthdate edge already connects the query). Two trees
// with the same node set count once. At most maxAux auxiliary nodes are
// considered and at most limit sets returned.
//
// Exponential in maxAux; intended for schema-sized graphs. The context is
// checked throughout the enumeration (per candidate subset and inside the
// spanning-tree backtracking), so a deadline bounds the enumeration; on
// cancellation RankedCovers returns ctx.Err().
func RankedCovers(ctx context.Context, g *graph.Graph, terminals []int, maxAux, limit int) ([]intset.Set, error) {
	p := intset.FromSlice(terminals)
	var others []int
	for v := 0; v < g.N(); v++ {
		if !p.Contains(v) {
			others = append(others, v)
		}
	}
	var out []intset.Set
	var cur []int
	steps := 0
	var rec func(start int)
	rec = func(start int) {
		if len(out) >= limit*16 { // gather extra, prune after sorting
			return
		}
		if ctx.Err() != nil {
			return
		}
		sel := p.Union(intset.FromSlice(cur))
		if hasConnectionTree(ctx, g, sel, p, &steps) {
			out = append(out, sel)
		}
		if len(cur) >= maxAux {
			return
		}
		for i := start; i < len(others); i++ {
			cur = append(cur, others[i])
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Len() != out[j].Len() {
			return out[i].Len() < out[j].Len()
		}
		return out[i].Key() < out[j].Key()
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// hasConnectionTree reports whether the subgraph induced by sel has a
// spanning tree whose leaves all lie in p. Backtracking over the induced
// edge set; exponential in the worst case but fine at interpretation
// scale (schema-sized graphs). steps accumulates backtracking work across
// calls so the context is polled at a bounded stride even when individual
// calls are tiny; on cancellation the result is meaningless and the caller
// must check ctx.Err().
func hasConnectionTree(ctx context.Context, g *graph.Graph, sel intset.Set, p intset.Set, steps *int) bool {
	n := sel.Len()
	if n == 0 {
		return false
	}
	if n == 1 {
		return true
	}
	pos := make(map[int]int, n)
	for i, v := range sel {
		pos[v] = i
	}
	var edges [][2]int
	for _, v := range sel {
		for _, w := range g.Neighbors(v) {
			if v < w && sel.Contains(w) {
				edges = append(edges, [2]int{pos[v], pos[w]})
			}
		}
	}
	if len(edges) < n-1 {
		return false
	}
	// An auxiliary node with < 2 induced neighbours can never be internal.
	deg := make([]int, n)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	for i, v := range sel {
		if !p.Contains(v) && deg[i] < 2 {
			return false
		}
	}
	var chosen [][2]int
	var rec func(next int) bool
	rec = func(next int) bool {
		*steps++
		if *steps&1023 == 0 && ctx.Err() != nil {
			return false
		}
		if len(chosen) == n-1 {
			return spanningTreeWithTerminalLeaves(n, chosen, sel, p)
		}
		if len(edges)-next < n-1-len(chosen) {
			return false
		}
		chosen = append(chosen, edges[next])
		if rec(next + 1) {
			return true
		}
		chosen = chosen[:len(chosen)-1]
		return rec(next + 1)
	}
	return rec(0)
}

// spanningTreeWithTerminalLeaves checks that the chosen edges form a
// spanning tree of the n selected nodes whose leaves are all terminals.
func spanningTreeWithTerminalLeaves(n int, chosen [][2]int, sel intset.Set, p intset.Set) bool {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	deg := make([]int, n)
	for _, e := range chosen {
		ru, rv := find(e[0]), find(e[1])
		if ru == rv {
			return false // cycle: not a tree
		}
		parent[ru] = rv
		deg[e[0]]++
		deg[e[1]]++
	}
	// n-1 acyclic edges over n nodes = spanning tree; check leaves.
	for i, v := range sel {
		if !p.Contains(v) && deg[i] <= 1 {
			return false
		}
	}
	return true
}
