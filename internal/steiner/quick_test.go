package steiner_test

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bipartite"
	"repro/internal/gen"
	"repro/internal/reference"
	"repro/internal/steiner"
)

func TestQuickExactNeverBeatenByAnyCover(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := gen.RandomConnectedBipartite(r, 2+r.Intn(3), 2+r.Intn(3), 0.4)
		g := b.G()
		terms := r.Perm(g.N())[:2]
		tree, err := steiner.Exact(g, terms)
		if err != nil {
			return true // disconnected terminals
		}
		// Any random connected superset cover has at least as many nodes.
		cover, ok := reference.MinimumCover(g, terms)
		return ok && tree.Nodes.Len() == cover.Len()
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickAlgorithmsReturnValidTrees(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := gen.AlphaAcyclic(r, 2+r.Intn(5), 3, 2)
		b := bipartite.FromHypergraph(h).B
		g := b.G()
		if !g.IsConnected() || g.N() < 3 {
			return true
		}
		terms := r.Perm(g.N())[:2]
		t1, err := steiner.Algorithm1(b, terms)
		if err != nil {
			return false
		}
		if t1.Validate(g, terms) != nil {
			return false
		}
		t2, err := steiner.Algorithm2(g, terms)
		if err != nil {
			return false
		}
		if t2.Validate(g, terms) != nil {
			return false
		}
		// V2 counts: Algorithm 1's is never worse.
		return steiner.V2Count(b, t1) <= steiner.V2Count(b, t2)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickEliminationIsNonredundant(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := gen.RandomConnectedBipartite(r, 2+r.Intn(3), 2+r.Intn(3), 0.4)
		g := b.G()
		terms := r.Perm(g.N())[:2]
		tree, err := steiner.EliminateOrdered(g, terms, r.Perm(g.N()))
		if err != nil {
			return true
		}
		return reference.IsNonredundantCover(g, tree.Nodes, terms)
	}, &quick.Config{MaxCount: 250})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickRankedCoversSortedAndValid(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := gen.RandomConnectedBipartite(r, 2+r.Intn(3), 2+r.Intn(3), 0.4)
		g := b.G()
		terms := r.Perm(g.N())[:2]
		covers, err := steiner.RankedCovers(context.Background(), g, terms, g.N(), 6)
		if err != nil {
			return false
		}
		for i, c := range covers {
			for _, p := range terms {
				if !c.Contains(p) {
					return false
				}
			}
			if i > 0 && covers[i-1].Len() > c.Len() {
				return false // must be sorted ascending
			}
			// No duplicates.
			for j := 0; j < i; j++ {
				if covers[j].Equal(c) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickX3CReductionSound(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := 1 + r.Intn(2)
		inst := steiner.X3CInstance{Q: q, Triples: gen.RandomX3C(r, q, q+1+r.Intn(2), r.Intn(2) == 0)}
		red, err := steiner.ReduceX3C(inst)
		if err != nil {
			return false
		}
		opt := reference.SteinerMinimumNodes(red.B.G(), red.Terminals)
		within := opt != -1 && opt <= red.Budget
		return within == inst.Solve()
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}
