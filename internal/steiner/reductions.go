package steiner

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/graph"
)

// X3CInstance is an instance of exact cover by 3-sets: a universe X of 3q
// elements (0 … 3q−1) and a collection of 3-element subsets. X3C is
// NP-complete [Garey & Johnson]; Theorem 2 reduces it to the Steiner
// problem on V1-chordal, V1-conformal bipartite graphs.
type X3CInstance struct {
	Q       int      // |X| = 3q
	Triples [][3]int // the collection C
}

// Validate checks element ranges.
func (x X3CInstance) Validate() error {
	if x.Q <= 0 {
		return fmt.Errorf("x3c: q must be positive")
	}
	for i, t := range x.Triples {
		seen := map[int]bool{}
		for _, e := range t {
			if e < 0 || e >= 3*x.Q {
				return fmt.Errorf("x3c: triple %d element %d out of range [0, %d)", i, e, 3*x.Q)
			}
			if seen[e] {
				return fmt.Errorf("x3c: triple %d repeats element %d", i, e)
			}
			seen[e] = true
		}
	}
	return nil
}

// Solve decides the instance by depth-first search over elements: the
// lowest uncovered element must be covered by exactly one chosen triple.
// Exponential, reference use only.
func (x X3CInstance) Solve() bool {
	covered := make([]bool, 3*x.Q)
	byElem := make([][]int, 3*x.Q)
	for i, t := range x.Triples {
		for _, e := range t {
			byElem[e] = append(byElem[e], i)
		}
	}
	var rec func(remaining int) bool
	rec = func(remaining int) bool {
		if remaining == 0 {
			return true
		}
		first := -1
		for e := 0; e < 3*x.Q; e++ {
			if !covered[e] {
				first = e
				break
			}
		}
		for _, ti := range byElem[first] {
			t := x.Triples[ti]
			ok := true
			for _, e := range t {
				if covered[e] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, e := range t {
				covered[e] = true
			}
			if rec(remaining - 3) {
				return true
			}
			for _, e := range t {
				covered[e] = false
			}
		}
		return false
	}
	return rec(3 * x.Q)
}

// X3CReduction is the Theorem 2 gadget built from an X3C instance (Fig 6).
type X3CReduction struct {
	B         *bipartite.Graph
	Terminals []int // P = V2 (the hub u′ and every element node)
	Budget    int   // 4q+1: a tree over P with ≤ Budget nodes exists iff
	// the X3C instance is solvable
	Hub      int   // the u′ node
	Elements []int // element V2 nodes, indexed by element
	TripleVs []int // triple V1 nodes, indexed by triple
}

// ReduceX3C builds the bipartite gadget of Theorem 2:
//
//	V1 = {u_i : one node per triple c_i}
//	V2 = {u′} ∪ {x_j : one node per element}
//	A  = {(u′, u_i) for every i} ∪ {(x_j, u_i) iff x_j ∈ c_i}
//
// The gadget is V1-chordal and V1-conformal (u′'s hyperedge contains every
// H¹ node), P = V2, and a tree over P with at most 4q+1 nodes exists iff
// the instance has an exact 3-cover.
func ReduceX3C(x X3CInstance) (X3CReduction, error) {
	if err := x.Validate(); err != nil {
		return X3CReduction{}, err
	}
	b := bipartite.New()
	red := X3CReduction{B: b, Budget: 4*x.Q + 1}
	red.TripleVs = make([]int, len(x.Triples))
	for i := range x.Triples {
		red.TripleVs[i] = b.AddV1(fmt.Sprintf("c%d", i+1))
	}
	red.Hub = b.AddV2("u'")
	red.Elements = make([]int, 3*x.Q)
	for j := 0; j < 3*x.Q; j++ {
		red.Elements[j] = b.AddV2(fmt.Sprintf("x%d", j+1))
	}
	for i, t := range x.Triples {
		b.AddEdge(red.TripleVs[i], red.Hub)
		for _, e := range t {
			b.AddEdge(red.TripleVs[i], red.Elements[e])
		}
	}
	red.Terminals = append([]int{red.Hub}, red.Elements...)
	return red, nil
}

// CSPCReduction is the gadget of the remark after Corollary 4 (Fig 9),
// reducing the cardinality Steiner problem in chordal graphs (CSPC, [16])
// to the pseudo-Steiner problem with respect to V2 on V1-chordal bipartite
// graphs.
type CSPCReduction struct {
	B       *bipartite.Graph
	NodeVs  []int // V1 node per original node
	ArcVs   []int // V2 node per original arc (subdivision points)
	ArcList []graph.Edge
}

// ReduceCSPC subdivides every arc of g with a V2 node:
//
//	V1 = V(g);  V2 = {u_i : one node per arc a_i};  (u_i, v) ∈ A iff v ∈ a_i.
//
// H¹ of the gadget has g as its primal graph, so the gadget is V1-chordal
// whenever g is chordal (it is not V1-conformal in general — exactly the
// condition Theorem 4 needs and which makes the problem hard here). A
// connected subgraph of g over P with at most q arcs exists iff the gadget
// has a tree over P with at most q V2 nodes.
func ReduceCSPC(g *graph.Graph) CSPCReduction {
	b := bipartite.New()
	red := CSPCReduction{B: b}
	red.NodeVs = make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		red.NodeVs[v] = b.AddV1(g.Label(v))
	}
	for _, e := range g.Edges() {
		w := b.AddV2(fmt.Sprintf("a(%s,%s)", g.Label(e.U), g.Label(e.V)))
		b.AddEdge(red.NodeVs[e.U], w)
		b.AddEdge(red.NodeVs[e.V], w)
		red.ArcVs = append(red.ArcVs, w)
		red.ArcList = append(red.ArcList, e)
	}
	return red
}
