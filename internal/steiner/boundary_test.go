package steiner_test

// Word-boundary sweeps for the bit-parallel solver paths: every packed
// mask the solvers carry (alive, terminal, visited) has its off-by-one
// bugs at the 64-bit word seams, so the equivalence harness is pinned at
// node counts straddling them — a partially filled single word, exact
// word multiples, and one-past. Each size runs against both the
// matrix-backed frozen view and a matrix-stripped CSR view, so the wave
// kernel and the fallback are held to the mutable path at every seam.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/steiner"
)

// solverBoundarySizes mirrors the kernel-level sweep in internal/graph:
// the shapes where padding-bit and last-word bugs live.
var solverBoundarySizes = []int{1, 63, 64, 65, 127, 128, 129}

// boundaryScheme builds a random bipartite scheme with exactly n nodes
// (ids alternate sides) and expected degree ~2.5, so alive masks always
// end in a partially filled word whenever n is not a word multiple.
func boundaryScheme(r *rand.Rand, n int) *bipartite.Graph {
	b := bipartite.New()
	var v1, v2 []int
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			v1 = append(v1, b.AddV1(fmt.Sprintf("a%d", i)))
		} else {
			v2 = append(v2, b.AddV2(fmt.Sprintf("r%d", i)))
		}
	}
	p := 2.5 / float64(n)
	for _, u := range v1 {
		for _, w := range v2 {
			if r.Float64() < p {
				b.AddEdge(u, w)
			}
		}
	}
	return b
}

// stripMatrix rebuilds the frozen views without the dense adjacency
// matrix, forcing every kernel call through the CSR fallback.
func stripMatrix(tb testing.TB, fb *bipartite.Frozen) (*graph.Frozen, *bipartite.Frozen) {
	fg := fb.G()
	offsets, neighbors := fg.CSR()
	gc, err := graph.RestoreFrozen(fg.NodeLabels(), offsets, neighbors, nil, 0)
	if err != nil {
		tb.Fatal(err)
	}
	fbc, err := bipartite.RestoreFrozen(gc, fb.Sides())
	if err != nil {
		tb.Fatal(err)
	}
	return gc, fbc
}

func TestFrozenSolversAtWordBoundaries(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for _, n := range solverBoundarySizes {
		for trial := 0; trial < 4; trial++ {
			b := boundaryScheme(r, n)
			g := b.G()
			fb := b.Freeze()
			fg := fb.G()
			fgCSR, fbCSR := stripMatrix(t, fb)
			if !fg.HasMatrix() && n > 1 || fgCSR.HasMatrix() {
				t.Fatalf("n=%d: matrix presence wrong", n)
			}
			for _, terms := range terminalSets(r, n) {
				label := fmt.Sprintf("n=%d terms=%v", n, terms)

				want, err1 := steiner.Algorithm2(g, terms)
				got, err2 := steiner.Algorithm2Frozen(ctx, fg, terms)
				assertSameTree(t, label+" Algorithm2/matrix", want, got, err1, err2)
				got, err2 = steiner.Algorithm2Frozen(ctx, fgCSR, terms)
				assertSameTree(t, label+" Algorithm2/csr", want, got, err1, err2)

				want, err1 = steiner.Algorithm1(b, terms)
				got, err2 = steiner.Algorithm1Frozen(ctx, fb, terms)
				assertSameTree(t, label+" Algorithm1/matrix", want, got, err1, err2)
				got, err2 = steiner.Algorithm1Frozen(ctx, fbCSR, terms)
				assertSameTree(t, label+" Algorithm1/csr", want, got, err1, err2)

				order := r.Perm(n)
				want, err1 = steiner.EliminateOrdered(g, terms, order)
				got, err2 = steiner.EliminateOrderedFrozen(ctx, fg, terms, order)
				assertSameTree(t, label+" EliminateOrdered/matrix", want, got, err1, err2)
				got, err2 = steiner.EliminateOrderedFrozen(ctx, fgCSR, terms, order)
				assertSameTree(t, label+" EliminateOrdered/csr", want, got, err1, err2)

				if len(terms) <= 5 {
					want, err1 = steiner.Exact(g, terms)
					got, err2 = steiner.ExactFrozen(ctx, fg, terms)
					assertSameTree(t, label+" Exact/matrix", want, got, err1, err2)
					got, err2 = steiner.ExactFrozen(ctx, fgCSR, terms)
					assertSameTree(t, label+" Exact/csr", want, got, err1, err2)
				}

				want, err1 = steiner.Approximate(g, terms)
				got, err2 = steiner.ApproximateFrozen(ctx, fg, terms)
				assertSameTree(t, label+" Approximate/matrix", want, got, err1, err2)
				got, err2 = steiner.ApproximateFrozen(ctx, fgCSR, terms)
				assertSameTree(t, label+" Approximate/csr", want, got, err1, err2)
			}
		}
	}
}

// TestPooledScratchHammerAcrossSizes cycles many goroutines through
// schemes of different word-boundary sizes, so the pooled solver scratch
// is constantly resized across word seams while shared between queries.
// Under -race this pins both the pool's ownership discipline and the
// stale-word hygiene of recycled masks (a scratch shrunk from 129 to 63
// nodes must not leak bits of the larger scheme into the smaller one).
func TestPooledScratchHammerAcrossSizes(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	type testCase struct {
		fg    *graph.Frozen
		terms []int
		want  steiner.Tree
	}
	var cases []testCase
	for _, n := range solverBoundarySizes {
		b := boundaryScheme(r, n)
		fg := b.Freeze().G()
		for _, terms := range terminalSets(r, n) {
			if want, err := steiner.Algorithm2Frozen(ctx, fg, terms); err == nil {
				cases = append(cases, testCase{fg: fg, terms: terms, want: want})
			}
		}
	}
	if len(cases) == 0 {
		t.Fatal("no connected boundary cases")
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var tree steiner.Tree // recycled across sizes, like a server would
			for i := 0; i < 40; i++ {
				c := cases[(seed+i)%len(cases)]
				if err := steiner.Algorithm2FrozenInto(ctx, c.fg, c.terms, &tree); err != nil {
					errc <- fmt.Errorf("hammer: %v", err)
					return
				}
				if !tree.Nodes.Equal(c.want.Nodes) {
					errc <- fmt.Errorf("hammer: nodes differ on n=%d", c.fg.N())
					return
				}
				if _, err := steiner.ApproximateFrozen(ctx, c.fg, c.terms); err != nil {
					errc <- fmt.Errorf("hammer approximate: %v", err)
					return
				}
			}
		}(w * 7)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
