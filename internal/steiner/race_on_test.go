//go:build race

package steiner_test

const raceEnabled = true
