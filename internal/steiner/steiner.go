package steiner

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/intset"
)

// ErrDisconnectedTerminals is returned when the terminals do not lie in one
// connected component, so no cover exists.
var ErrDisconnectedTerminals = errors.New("steiner: terminals are not connected in the graph")

// ErrEmptyTerminals is returned when a solver is asked to connect an empty
// terminal set.
var ErrEmptyTerminals = errors.New("steiner: empty terminal set")

// ErrTooManyTerminals is returned by the exact Dreyfus–Wagner solvers when
// the terminal count exceeds ExactTerminalLimit; the dynamic program is
// exponential in the number of terminals (Theorem 2 forbids better in
// general), so the limit keeps one query from monopolizing a process.
var ErrTooManyTerminals = errors.New("steiner: terminal count exceeds the exact solver's limit")

// ExactTerminalLimit is the largest terminal set Exact and ExactFrozen
// accept before returning ErrTooManyTerminals.
const ExactTerminalLimit = 20

// Tree is a connected subgraph returned by the solvers: the node set of a
// cover of the terminals, plus the edges of a spanning tree of it.
type Tree struct {
	Nodes intset.Set
	Edges []graph.Edge
}

// Validate checks that the tree is really a tree over the terminals in g:
// nodes induce a connected subgraph, edges form a spanning tree of exactly
// the node set, and every terminal is included.
func (t Tree) Validate(g *graph.Graph, terminals []int) error {
	return t.validate(g.N(), g.Label, g.HasEdge, terminals)
}

// ValidateFrozen is Validate against the compiled CSR view — same checks,
// no thaw. Used by warm-restore paths that revive cached answers from a
// snapshot and must verify them against the frozen scheme they booted
// with, without materializing the mutable graph.
func (t Tree) ValidateFrozen(f *graph.Frozen, terminals []int) error {
	return t.validate(f.N(), f.Label, f.HasEdge, terminals)
}

// validate is the shared body of Validate/ValidateFrozen over the
// minimal graph surface the checks need.
func (t Tree) validate(n int, label func(int) string, hasEdge func(int, int) bool, terminals []int) error {
	alive := make([]bool, n)
	for _, v := range t.Nodes {
		alive[v] = true
	}
	for _, p := range terminals {
		if !alive[p] {
			return fmt.Errorf("steiner: terminal %s missing from tree", label(p))
		}
	}
	if len(t.Edges) != t.Nodes.Len()-1 {
		return fmt.Errorf("steiner: %d edges for %d nodes is not a tree", len(t.Edges), t.Nodes.Len())
	}
	seen := map[graph.Edge]bool{}
	for _, e := range t.Edges {
		if !alive[e.U] || !alive[e.V] {
			return fmt.Errorf("steiner: edge %v leaves the node set", e)
		}
		if !hasEdge(e.U, e.V) {
			return fmt.Errorf("steiner: edge %v not in the graph", e)
		}
		if seen[e] {
			return fmt.Errorf("steiner: duplicate edge %v", e)
		}
		seen[e] = true
	}
	// n-1 distinct valid edges + connectivity = tree; check connectivity
	// via the edges only.
	if t.Nodes.Len() == 0 {
		return nil
	}
	adj := map[int][]int{}
	for _, e := range t.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	visited := map[int]bool{t.Nodes[0]: true}
	queue := []int{t.Nodes[0]}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	if len(visited) != t.Nodes.Len() {
		return fmt.Errorf("steiner: tree edges do not connect the node set")
	}
	return nil
}

// CountSide returns how many tree nodes satisfy the predicate — used to
// count V1 or V2 nodes of a cover.
func (t Tree) CountSide(isSide func(v int) bool) int {
	n := 0
	for _, v := range t.Nodes {
		if isSide(v) {
			n++
		}
	}
	return n
}

// componentAlive returns the alive mask of the connected component of g
// containing all terminals, or an error when they span components.
func componentAlive(g *graph.Graph, terminals []int) ([]bool, error) {
	if len(terminals) == 0 {
		return nil, ErrEmptyTerminals
	}
	comp := g.ComponentContaining(terminals)
	if comp == nil {
		return nil, ErrDisconnectedTerminals
	}
	alive := make([]bool, g.N())
	for _, v := range comp {
		alive[v] = true
	}
	return alive, nil
}

// spanningTree builds the Tree result for an alive cover.
func spanningTree(g *graph.Graph, alive []bool) (Tree, error) {
	edges, ok := g.SpanningTreeAlive(alive)
	if !ok {
		return Tree{}, errors.New("steiner: cover is not connected (internal error)")
	}
	var nodes []int
	for v := 0; v < g.N(); v++ {
		if alive[v] {
			nodes = append(nodes, v)
		}
	}
	return Tree{Nodes: intset.FromSlice(nodes), Edges: edges}, nil
}

// EliminateOrdered runs the redundant-node elimination of Definition 11 in
// one pass: nodes are visited in the given order and removed whenever the
// terminals remain connected among themselves afterwards. Removing a node
// may strand a pendant fragment; stranded nodes are themselves removable
// and disappear when the pass reaches them, so the surviving subgraph is
// exactly the terminals' component — a *nonredundant* cover (Theorem 5's
// Step 1). One pass suffices: a kept node is a cut node separating the
// terminals, and deleting further nodes never creates new paths, so it
// stays one (this is also what keeps the algorithm at the O(|V|·|A|) of
// Theorem 5). The ordering determines WHICH nonredundant cover is reached —
// the substance of Definition 11 and Theorem 6.
//
// On a (6,2)-chordal bipartite graph every nonredundant cover is minimum
// (Lemma 5), so every ordering yields a minimum cover (Corollary 5); this
// is Algorithm 2 when the order is arbitrary. On general graphs the result
// is only guaranteed nonredundant.
func EliminateOrdered(g *graph.Graph, terminals []int, order []int) (Tree, error) {
	alive, err := componentAlive(g, terminals)
	if err != nil {
		return Tree{}, err
	}
	p := intset.FromSlice(terminals)
	for _, v := range order {
		if v < 0 || v >= g.N() || !alive[v] || p.Contains(v) {
			continue
		}
		alive[v] = false
		if !g.TerminalsConnected(alive, terminals) {
			alive[v] = true
		}
	}
	// Nodes outside `order` (or stranded after their turn, which cannot
	// happen for kept nodes but can for never-visited ones) may survive
	// outside the terminals' component; restrict to it.
	restrictToTerminalComponent(g, alive, terminals)
	return spanningTree(g, alive)
}

// restrictToTerminalComponent clears alive flags outside the terminals'
// connected component.
func restrictToTerminalComponent(g *graph.Graph, alive []bool, terminals []int) {
	if len(terminals) == 0 {
		return
	}
	dist := g.BFSDistancesAlive(terminals[0], alive)
	for v := range alive {
		if alive[v] && dist[v] == -1 {
			alive[v] = false
		}
	}
}

// Algorithm2 solves the Steiner problem on a (6,2)-chordal bipartite graph
// (Theorem 5): it eliminates redundant nodes in id order and returns a
// spanning tree of the resulting cover, which Lemma 5 guarantees to be
// minimum. The precondition ((6,2)-chordality) is the caller's
// responsibility — use chordality.Is62Chordal or core.Connector; on other
// graphs the result is a nonredundant, possibly non-minimum, cover.
func Algorithm2(g *graph.Graph, terminals []int) (Tree, error) {
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	return EliminateOrdered(g, terminals, order)
}
