package steiner_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/steiner"
)

// TestFrozenSolversCancelled runs every frozen solver under an already-
// cancelled context and asserts the ctx error surfaces (errors.Is-
// testable) instead of a full solve.
func TestFrozenSolversCancelled(t *testing.T) {
	b := gen.GridBipartite(6, 6)
	fb := b.Freeze()
	fg := fb.G()
	terms := []int{0, fg.N() - 1, fg.N() / 2}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := steiner.Algorithm2Frozen(cancelled, fg, terms); !errors.Is(err, context.Canceled) {
		t.Errorf("Algorithm2Frozen: %v", err)
	}
	if _, err := steiner.EliminateOrderedFrozen(cancelled, fg, terms, []int{0, 1, 2}); !errors.Is(err, context.Canceled) {
		t.Errorf("EliminateOrderedFrozen: %v", err)
	}
	if _, err := steiner.ExactFrozen(cancelled, fg, terms); !errors.Is(err, context.Canceled) {
		t.Errorf("ExactFrozen: %v", err)
	}
	if _, err := steiner.ApproximateFrozen(cancelled, fg, terms); !errors.Is(err, context.Canceled) {
		t.Errorf("ApproximateFrozen: %v", err)
	}
	if _, err := steiner.RankedCovers(cancelled, b.G(), terms, b.N(), 5); !errors.Is(err, context.Canceled) {
		t.Errorf("RankedCovers: %v", err)
	}
	// Algorithm1Frozen rejects the grid before its elimination loop (not
	// alpha-acyclic), so exercise it on a scheme it accepts.
	ab := gen.GridBipartite(1, 9) // a path: trivially alpha-acyclic
	afb := ab.Freeze()
	if _, err := steiner.Algorithm1Frozen(cancelled, afb, []int{0, ab.N() - 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("Algorithm1Frozen: %v", err)
	}
}

// TestExactFrozenDeadlineInsideDP arms a deadline that can only fire once
// the Dreyfus–Wagner subset loop is underway and asserts it is honored
// from inside the loop.
func TestExactFrozenDeadlineInsideDP(t *testing.T) {
	fg := gen.GridBipartite(8, 8).Freeze().G()
	terms := make([]int, 0, 16)
	for v := 0; v < fg.N() && len(terms) < 16; v += 2 {
		terms = append(terms, v)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := steiner.ExactFrozen(ctx, fg, terms); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSentinelErrors pins the new typed sentinels of the solver layer.
func TestSentinelErrors(t *testing.T) {
	fg := gen.GridBipartite(5, 5).Freeze().G()
	ctx := context.Background()
	if _, err := steiner.ExactFrozen(ctx, fg, nil); !errors.Is(err, steiner.ErrEmptyTerminals) {
		t.Errorf("empty terminals: %v", err)
	}
	tooMany := make([]int, steiner.ExactTerminalLimit+1)
	for i := range tooMany {
		tooMany[i] = i // distinct ids, all within the 25-node grid
	}
	if _, err := steiner.ExactFrozen(ctx, fg, tooMany); !errors.Is(err, steiner.ErrTooManyTerminals) {
		t.Errorf("too many terminals: %v", err)
	}
}
