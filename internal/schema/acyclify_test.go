package schema

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hypergraph"
)

func TestAcyclifyTriangle(t *testing.T) {
	tri := MustNew(
		RelScheme{Name: "r1", Attrs: []string{"a", "b"}},
		RelScheme{Name: "r2", Attrs: []string{"b", "c"}},
		RelScheme{Name: "r3", Attrs: []string{"c", "a"}},
	)
	cover := tri.Acyclify()
	if got := cover.Schema.Classify(); got == hypergraph.DegreeCyclic {
		t.Fatalf("cover is cyclic: %v", cover.Schema)
	}
	if cover.Fill != 0 {
		// The triangle's primal graph is already K3 (chordal); no fill.
		t.Errorf("fill = %d, want 0", cover.Fill)
	}
	// All three relations embed into the single {a,b,c} clique.
	if len(cover.Schema.Relations) != 1 {
		t.Errorf("cover relations = %v", cover.Schema.Relations)
	}
	for _, r := range tri.Relations {
		if cover.Embedding[r.Name] == "" {
			t.Errorf("relation %q not embedded", r.Name)
		}
	}
}

func TestAcyclifyCycleNeedsFill(t *testing.T) {
	// A 4-cycle of binary relations: primal C4 needs one fill edge.
	c4 := MustNew(
		RelScheme{Name: "r1", Attrs: []string{"a", "b"}},
		RelScheme{Name: "r2", Attrs: []string{"b", "c"}},
		RelScheme{Name: "r3", Attrs: []string{"c", "d"}},
		RelScheme{Name: "r4", Attrs: []string{"d", "a"}},
	)
	cover := c4.Acyclify()
	if cover.Fill != 1 {
		t.Errorf("fill = %d, want 1", cover.Fill)
	}
	if !cover.Schema.Hypergraph().AlphaAcyclic() {
		t.Error("cover not alpha-acyclic")
	}
}

func randomSchema(r *rand.Rand) *Schema {
	nAttrs := 3 + r.Intn(5)
	attrs := make([]string, nAttrs)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%d", i)
	}
	m := 2 + r.Intn(4)
	rels := make([]RelScheme, m)
	for i := range rels {
		sz := 1 + r.Intn(nAttrs)
		perm := r.Perm(nAttrs)
		sel := make([]string, sz)
		for j := 0; j < sz; j++ {
			sel[j] = attrs[perm[j]]
		}
		rels[i] = RelScheme{Name: fmt.Sprintf("r%d", i), Attrs: sel}
	}
	return MustNew(rels...)
}

func TestQuickAcyclifyProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSchema(r)
		cover := s.Acyclify()
		// (1) The cover is always α-acyclic.
		if !cover.Schema.Hypergraph().AlphaAcyclic() {
			return false
		}
		// (2) Every original relation embeds into its covering clique.
		hs := s.Hypergraph()
		hc := cover.Schema.Hypergraph()
		for ei, rel := range s.Relations {
			cname, ok := cover.Embedding[rel.Name]
			if !ok {
				return false
			}
			ci := cover.Schema.RelationIndex(cname)
			if ci == -1 {
				return false
			}
			// Compare as label sets.
			orig := map[string]bool{}
			for _, v := range hs.Edge(ei) {
				orig[hs.NodeLabel(v)] = true
			}
			count := 0
			for _, v := range hc.Edge(ci) {
				if orig[hc.NodeLabel(v)] {
					count++
				}
			}
			if count != len(orig) {
				return false
			}
		}
		// (3) The cover mentions exactly the original attributes.
		if len(cover.Schema.Attributes()) != len(s.Attributes()) {
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestAcyclifyJoinTreeUsable(t *testing.T) {
	// The cover's join tree feeds straight into the Yannakakis machinery.
	s := MustNew(
		RelScheme{Name: "r1", Attrs: []string{"a", "b"}},
		RelScheme{Name: "r2", Attrs: []string{"b", "c"}},
		RelScheme{Name: "r3", Attrs: []string{"c", "d"}},
		RelScheme{Name: "r4", Attrs: []string{"d", "a"}},
	)
	cover := s.Acyclify()
	parent, ok := cover.Schema.JoinTree()
	if !ok {
		t.Fatal("cover has no join tree")
	}
	if !cover.Schema.Hypergraph().VerifyJoinTree(parent) {
		t.Error("join tree invalid")
	}
}
