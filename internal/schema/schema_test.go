package schema

import (
	"testing"

	"repro/internal/hypergraph"
)

// company is the α-acyclic running example.
func company() *Schema {
	return MustNew(
		RelScheme{Name: "emp", Attrs: []string{"name", "dept", "salary"}},
		RelScheme{Name: "dept", Attrs: []string{"dept", "floor"}},
		RelScheme{Name: "floorplan", Attrs: []string{"floor", "area"}},
	)
}

func TestValidation(t *testing.T) {
	if _, err := New(RelScheme{Name: "", Attrs: []string{"a"}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New(RelScheme{Name: "r", Attrs: nil}); err == nil {
		t.Error("empty attrs accepted")
	}
	if _, err := New(
		RelScheme{Name: "r", Attrs: []string{"a"}},
		RelScheme{Name: "r", Attrs: []string{"b"}},
	); err == nil {
		t.Error("duplicate relation accepted")
	}
	if _, err := New(RelScheme{Name: "r", Attrs: []string{"a", "a"}}); err == nil {
		t.Error("repeated attribute accepted")
	}
}

func TestAttributesOrder(t *testing.T) {
	s := company()
	attrs := s.Attributes()
	want := []string{"name", "dept", "salary", "floor", "area"}
	if len(attrs) != len(want) {
		t.Fatalf("attrs = %v", attrs)
	}
	for i := range want {
		if attrs[i] != want[i] {
			t.Errorf("attrs[%d] = %q, want %q", i, attrs[i], want[i])
		}
	}
}

func TestHypergraphShape(t *testing.T) {
	h := company().Hypergraph()
	if h.N() != 5 || h.M() != 3 {
		t.Fatalf("n=%d m=%d", h.N(), h.M())
	}
	if h.EdgeName(0) != "emp" {
		t.Error("edge names lost")
	}
}

func TestClassifyLadder(t *testing.T) {
	// The chain schema is gamma-acyclic (pairwise single-attribute links,
	// tree shape) — indeed Berge-acyclic.
	if got := company().Classify(); got != hypergraph.DegreeBerge {
		t.Errorf("company Classify = %v", got)
	}
	// A triangle of binary relations is cyclic.
	tri := MustNew(
		RelScheme{Name: "r1", Attrs: []string{"a", "b"}},
		RelScheme{Name: "r2", Attrs: []string{"b", "c"}},
		RelScheme{Name: "r3", Attrs: []string{"c", "a"}},
	)
	if got := tri.Classify(); got != hypergraph.DegreeCyclic {
		t.Errorf("triangle Classify = %v", got)
	}
	// Covering the triangle with a universal relation makes it α-acyclic
	// only.
	cov := MustNew(
		RelScheme{Name: "r1", Attrs: []string{"a", "b"}},
		RelScheme{Name: "r2", Attrs: []string{"b", "c"}},
		RelScheme{Name: "r3", Attrs: []string{"c", "a"}},
		RelScheme{Name: "all", Attrs: []string{"a", "b", "c"}},
	)
	if got := cov.Classify(); got != hypergraph.DegreeAlpha {
		t.Errorf("covered triangle Classify = %v", got)
	}
}

func TestJoinTree(t *testing.T) {
	s := company()
	parent, ok := s.JoinTree()
	if !ok || len(parent) != 3 {
		t.Fatalf("JoinTree: %v %v", parent, ok)
	}
	if !s.Hypergraph().VerifyJoinTree(parent) {
		t.Error("join tree invalid")
	}
	tri := MustNew(
		RelScheme{Name: "r1", Attrs: []string{"a", "b"}},
		RelScheme{Name: "r2", Attrs: []string{"b", "c"}},
		RelScheme{Name: "r3", Attrs: []string{"c", "a"}},
	)
	if _, ok := tri.JoinTree(); ok {
		t.Error("cyclic schema produced a join tree")
	}
}

func TestBipartiteView(t *testing.T) {
	inc := company().Bipartite()
	if got := len(inc.B.V1()); got != 5 {
		t.Errorf("V1 = %d attrs", got)
	}
	if got := len(inc.B.V2()); got != 3 {
		t.Errorf("V2 = %d relations", got)
	}
	// emp has 3 attributes.
	if got := inc.B.G().Degree(inc.EdgeID[0]); got != 3 {
		t.Errorf("deg(emp) = %d", got)
	}
}

func TestLookups(t *testing.T) {
	s := company()
	if s.RelationIndex("dept") != 1 || s.RelationIndex("nope") != -1 {
		t.Error("RelationIndex wrong")
	}
	cover := s.CoveringRelations("floor")
	if len(cover) != 2 {
		t.Errorf("CoveringRelations(floor) = %v", cover)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}
