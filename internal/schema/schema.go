// Package schema is the database-design layer: relational schemes as
// hypergraphs (nodes = attributes, edges = relation schemes), their
// bipartite attribute/relation graphs (the paper's representation of
// Section 1), acyclicity-degree classification, and join-tree extraction
// for α-acyclic schemes.
package schema

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/hypergraph"
)

// RelScheme is a named relation scheme: a relation name and its attributes.
type RelScheme struct {
	Name  string
	Attrs []string
}

// Schema is a database scheme: a collection of relation schemes.
type Schema struct {
	Relations []RelScheme
}

// New builds a schema from name → attribute-list pairs.
func New(relations ...RelScheme) (*Schema, error) {
	names := map[string]bool{}
	for _, r := range relations {
		if r.Name == "" {
			return nil, fmt.Errorf("schema: empty relation name")
		}
		if names[r.Name] {
			return nil, fmt.Errorf("schema: duplicate relation name %q", r.Name)
		}
		names[r.Name] = true
		if len(r.Attrs) == 0 {
			return nil, fmt.Errorf("schema: relation %q has no attributes", r.Name)
		}
		seen := map[string]bool{}
		for _, a := range r.Attrs {
			if seen[a] {
				return nil, fmt.Errorf("schema: relation %q repeats attribute %q", r.Name, a)
			}
			seen[a] = true
		}
	}
	return &Schema{Relations: relations}, nil
}

// MustNew is New panicking on error; for fixtures.
func MustNew(relations ...RelScheme) *Schema {
	s, err := New(relations...)
	if err != nil {
		panic(err)
	}
	return s
}

// Attributes returns the distinct attributes in first-appearance order.
func (s *Schema) Attributes() []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range s.Relations {
		for _, a := range r.Attrs {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// Hypergraph returns the scheme hypergraph: nodes are attributes, edges are
// relation schemes.
func (s *Schema) Hypergraph() *hypergraph.Hypergraph {
	h := hypergraph.New()
	for _, a := range s.Attributes() {
		h.AddNode(a)
	}
	for _, r := range s.Relations {
		ids := make([]int, len(r.Attrs))
		for i, a := range r.Attrs {
			ids[i] = h.MustNodeID(a)
		}
		h.AddEdge(r.Name, ids...)
	}
	return h
}

// Bipartite returns the attribute/relation bipartite graph of the scheme
// (V1 = attributes, V2 = relations): the paper's graph representation.
// The returned incidence carries the id mappings.
func (s *Schema) Bipartite() bipartite.Incidence {
	return bipartite.FromHypergraph(s.Hypergraph())
}

// Classify returns the strongest acyclicity degree of the scheme
// hypergraph: Berge ⊂ γ ⊂ β ⊂ α ⊂ cyclic, the ladder whose graph-side
// images Theorem 1 identifies.
func (s *Schema) Classify() hypergraph.Degree {
	return s.Hypergraph().Classify()
}

// JoinTree returns a join-tree parent array over the relations (index i is
// the i-th relation of s) and true when the scheme is α-acyclic; nil and
// false otherwise. Feed it to relational.FullReduce / JoinAcyclic.
func (s *Schema) JoinTree() ([]int, bool) {
	return s.Hypergraph().JoinTree()
}

// RelationIndex returns the index of the named relation, or -1.
func (s *Schema) RelationIndex(name string) int {
	for i, r := range s.Relations {
		if r.Name == name {
			return i
		}
	}
	return -1
}

// CoveringRelations returns the relation names whose schemes contain the
// attribute.
func (s *Schema) CoveringRelations(attr string) []string {
	var out []string
	for _, r := range s.Relations {
		for _, a := range r.Attrs {
			if a == attr {
				out = append(out, r.Name)
				break
			}
		}
	}
	return out
}

// String renders the schema compactly.
func (s *Schema) String() string {
	out := "schema{"
	for i, r := range s.Relations {
		if i > 0 {
			out += "; "
		}
		out += r.Name + "("
		for j, a := range r.Attrs {
			if j > 0 {
				out += ","
			}
			out += a
		}
		out += ")"
	}
	return out + "}"
}
