package schema

import (
	"fmt"
	"sort"

	"repro/internal/intset"
)

// AcyclicCover is the result of Acyclify: an α-acyclic schema covering the
// original one.
type AcyclicCover struct {
	// Schema has one relation per maximal clique of the triangulated
	// attribute graph; its hypergraph is α-acyclic by construction.
	Schema *Schema
	// Embedding maps each original relation name to a covering relation of
	// Schema (a clique containing all its attributes).
	Embedding map[string]string
	// Fill counts the attribute pairs the triangulation added — a measure
	// of how far the original scheme was from acyclicity.
	Fill int
}

// Acyclify builds an α-acyclic cover of the schema — the design move of
// the paper's reference [4] (D'Atri & Moscarini) and of Beeri et al. [2]:
// triangulate the primal (attribute) graph with the minimum-degree
// elimination heuristic, then take the maximal cliques of the chordal
// result as the new relation schemes. Every original relation embeds into
// a clique, and the clique hypergraph of a chordal graph is conformal with
// a chordal primal graph, hence α-acyclic (Definition 7).
//
// On an already-α-acyclic schema the fill is not necessarily zero (the
// heuristic is not minimum-fill-optimal) but the result is still a valid
// cover; callers should check Classify first when preservation matters.
func (s *Schema) Acyclify() AcyclicCover {
	h := s.Hypergraph()
	primal := h.PrimalGraph()
	n := primal.N()

	// Minimum-degree triangulation: eliminate a minimum-degree node,
	// completing its remaining neighbourhood with fill edges.
	work := primal.Clone()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	order := make([]int, 0, n)
	fill := 0
	liveNeighbors := func(v int) []int {
		var out []int
		for _, w := range work.Neighbors(v) {
			if alive[w] {
				out = append(out, w)
			}
		}
		return out
	}
	for len(order) < n {
		best, bestDeg := -1, -1
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			d := len(liveNeighbors(v))
			if best == -1 || d < bestDeg {
				best, bestDeg = v, d
			}
		}
		nbr := liveNeighbors(best)
		for i := 0; i < len(nbr); i++ {
			for j := i + 1; j < len(nbr); j++ {
				if !work.HasEdge(nbr[i], nbr[j]) {
					work.AddEdge(nbr[i], nbr[j])
					fill++
				}
			}
		}
		alive[best] = false
		order = append(order, best)
	}

	// Candidate cliques: for each node in elimination order, itself plus
	// its later neighbours in the filled graph; keep the maximal ones.
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	var cliques []intset.Set
	for _, v := range order {
		c := intset.New(v)
		for _, w := range work.Neighbors(v) {
			if pos[w] > pos[v] {
				c = c.Add(w)
			}
		}
		cliques = append(cliques, c)
	}
	sort.Slice(cliques, func(i, j int) bool { return cliques[i].Len() > cliques[j].Len() })
	var maximal []intset.Set
	for _, c := range cliques {
		contained := false
		for _, m := range maximal {
			if c.SubsetOf(m) {
				contained = true
				break
			}
		}
		if !contained {
			maximal = append(maximal, c)
		}
	}
	// Deterministic naming order.
	sort.Slice(maximal, func(i, j int) bool { return maximal[i].Key() < maximal[j].Key() })

	rels := make([]RelScheme, len(maximal))
	for i, c := range maximal {
		attrs := make([]string, c.Len())
		for j, v := range c {
			attrs[j] = h.NodeLabel(v)
		}
		rels[i] = RelScheme{Name: fmt.Sprintf("clique%d", i), Attrs: attrs}
	}
	cover := MustNew(rels...)

	embedding := make(map[string]string, len(s.Relations))
	for ei, r := range s.Relations {
		edge := h.Edge(ei)
		for ci, c := range maximal {
			if edge.SubsetOf(c) {
				embedding[r.Name] = rels[ci].Name
				break
			}
		}
	}
	return AcyclicCover{Schema: cover, Embedding: embedding, Fill: fill}
}
