package graph

// Traversal over the frozen CSR view. These mirror the mutable Graph
// traversal API (traverse.go) but iterate flat int32 slices, allocate only
// their result arrays, and are safe for unsynchronized concurrent use —
// they never write to the Frozen.

// BFSDistances returns the unweighted distance from start to every node,
// with -1 for unreachable nodes. On matrix-backed schemes it runs the
// word-parallel wave kernel (BFSDistancesBits); otherwise the CSR walk.
func (f *Frozen) BFSDistances(start int) []int32 {
	if f.matrix != nil {
		dist := make([]int32, f.N())
		f.BFSDistancesBits(start, nil, dist, NewBitScratch(f.N()))
		return dist
	}
	return f.BFSDistancesAlive(start, nil)
}

// BFSDistancesAlive is BFSDistances restricted to nodes v with alive[v]
// (alive == nil means all nodes are alive). start must be alive.
func (f *Frozen) BFSDistancesAlive(start int, alive []bool) []int32 {
	f.check(start)
	dist := make([]int32, f.N())
	for i := range dist {
		dist[i] = -1
	}
	if alive != nil && !alive[start] {
		return dist
	}
	dist[start] = 0
	queue := make([]int32, 1, f.N())
	queue[0] = int32(start)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range f.neighbors[f.offsets[v]:f.offsets[v+1]] {
			if alive != nil && !alive[w] {
				continue
			}
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// TerminalsConnected reports whether every terminal is alive and all
// terminals lie in one connected component of the alive subgraph. The BFS
// stops as soon as every terminal has been reached.
func (f *Frozen) TerminalsConnected(alive []bool, terminals []int) bool {
	if len(terminals) == 0 {
		return true
	}
	for _, p := range terminals {
		f.check(p)
		if alive != nil && !alive[p] {
			return false
		}
	}
	n := f.N()
	isTerm := make([]bool, n)
	remaining := 0
	for _, p := range terminals {
		if !isTerm[p] {
			isTerm[p] = true
			remaining++
		}
	}
	visited := make([]bool, n)
	start := terminals[0]
	visited[start] = true
	remaining--
	queue := make([]int32, 1, 64)
	queue[0] = int32(start)
	for len(queue) > 0 && remaining > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range f.neighbors[f.offsets[v]:f.offsets[v+1]] {
			if visited[w] || (alive != nil && !alive[w]) {
				continue
			}
			visited[w] = true
			if isTerm[w] {
				remaining--
			}
			queue = append(queue, w)
		}
	}
	return remaining == 0
}

// ComponentMask returns the alive mask of the connected component
// containing every seed, or nil when the seeds span several components (or
// seeds is empty). On matrix-backed schemes the flood runs word-parallel
// (ComponentBits); otherwise it falls back to a CSR BFS.
func (f *Frozen) ComponentMask(seeds []int) []bool {
	if len(seeds) == 0 {
		return nil
	}
	if f.matrix != nil {
		mask, ok := f.ComponentBits(seeds, NewBitScratch(f.N()))
		if !ok {
			return nil
		}
		return mask.ToBools(make([]bool, f.N()))
	}
	dist := f.BFSDistances(seeds[0])
	for _, s := range seeds {
		if dist[s] == -1 {
			return nil
		}
	}
	mask := make([]bool, f.N())
	for v, d := range dist {
		if d >= 0 {
			mask[v] = true
		}
	}
	return mask
}

// Covers reports whether the subgraph induced by the alive nodes is a cover
// of the terminal set per Definition 10: connected and containing every
// terminal. alive == nil means the whole graph.
func (f *Frozen) Covers(alive []bool, terminals []int) bool {
	if len(terminals) == 0 {
		return true
	}
	for _, p := range terminals {
		f.check(p)
		if alive != nil && !alive[p] {
			return false
		}
	}
	dist := f.BFSDistancesAlive(terminals[0], alive)
	n := 0
	for v := 0; v < f.N(); v++ {
		if alive == nil || alive[v] {
			n++
			if dist[v] == -1 {
				return false
			}
		}
	}
	return n > 0
}

// ComponentCount returns the number of connected components.
func (f *Frozen) ComponentCount() int {
	seen := make([]bool, f.N())
	queue := make([]int32, 0, 64)
	count := 0
	for s := 0; s < f.N(); s++ {
		if seen[s] {
			continue
		}
		count++
		seen[s] = true
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range f.neighbors[f.offsets[v]:f.offsets[v+1]] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return count
}

// IsForest reports whether the graph has no cycles.
func (f *Frozen) IsForest() bool {
	return f.m == f.N()-f.ComponentCount()
}

// SpanningTreeAlive returns the edges of a BFS spanning tree of the
// subgraph induced by the alive nodes, rooted at the smallest alive node.
// It returns ok=false if that subgraph is not connected. alive == nil means
// the whole graph.
func (f *Frozen) SpanningTreeAlive(alive []bool) (edges []Edge, ok bool) {
	start := -1
	n := 0
	for v := 0; v < f.N(); v++ {
		if alive == nil || alive[v] {
			n++
			if start == -1 {
				start = v
			}
		}
	}
	if n == 0 {
		return nil, true
	}
	seen := make([]bool, f.N())
	seen[start] = true
	queue := make([]int32, 1, n)
	queue[0] = int32(start)
	visited := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range f.neighbors[f.offsets[v]:f.offsets[v+1]] {
			if seen[w] || (alive != nil && !alive[w]) {
				continue
			}
			seen[w] = true
			visited++
			e := Edge{int(v), int(w)}
			if e.V < e.U {
				e.U, e.V = e.V, e.U
			}
			edges = append(edges, e)
			queue = append(queue, w)
		}
	}
	if visited != n {
		return nil, false
	}
	return edges, true
}

// ShortestPath returns a shortest path from u to v as a node sequence
// (inclusive of both endpoints), or nil if v is unreachable from u.
func (f *Frozen) ShortestPath(u, v int) []int {
	return f.ShortestPathAlive(u, v, nil)
}

// ShortestPathAlive is ShortestPath restricted to alive nodes.
func (f *Frozen) ShortestPathAlive(u, v int, alive []bool) []int {
	f.check(u)
	f.check(v)
	if alive != nil && (!alive[u] || !alive[v]) {
		return nil
	}
	if u == v {
		return []int{u}
	}
	prev := make([]int32, f.N())
	for i := range prev {
		prev[i] = -1
	}
	prev[u] = int32(u)
	queue := make([]int32, 1, 64)
	queue[0] = int32(u)
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range f.neighbors[f.offsets[x]:f.offsets[x+1]] {
			if prev[w] != -1 || (alive != nil && !alive[w]) {
				continue
			}
			prev[w] = x
			if int(w) == v {
				var rev []int
				for c := v; c != u; c = int(prev[c]) {
					rev = append(rev, c)
				}
				rev = append(rev, u)
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, w)
		}
	}
	return nil
}
