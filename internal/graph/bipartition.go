package graph

// Side identifies the side of a bipartition a node belongs to.
type Side int8

// Bipartition sides. SideNone marks nodes of graphs that are not bipartite
// or isolated nodes whose side is forced to Side1 for determinism.
const (
	Side1 Side = 1
	Side2 Side = 2
)

// Bipartition 2-colours the graph. It returns the side of each node and
// whether the graph is bipartite. Isolated nodes and the first node of each
// component are put on Side1, so the colouring is deterministic.
func (g *Graph) Bipartition() (side []Side, ok bool) {
	side = make([]Side, g.N())
	for s := 0; s < g.N(); s++ {
		if side[s] != 0 {
			continue
		}
		side[s] = Side1
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			next := Side1
			if side[v] == Side1 {
				next = Side2
			}
			for _, w := range g.adj[v] {
				switch side[w] {
				case 0:
					side[w] = next
					queue = append(queue, w)
				case side[v]:
					return nil, false
				}
			}
		}
	}
	return side, true
}

// IsBipartite reports whether g is 2-colourable.
func (g *Graph) IsBipartite() bool {
	_, ok := g.Bipartition()
	return ok
}
