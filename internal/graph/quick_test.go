package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func quickGraph(r *rand.Rand) *Graph {
	g := New()
	n := 1 + r.Intn(10)
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	p := r.Float64()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestQuickInducedPreservesAdjacency(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := quickGraph(r)
		var keep []int
		for v := 0; v < g.N(); v++ {
			if r.Intn(2) == 0 {
				keep = append(keep, v)
			}
		}
		sub, old2new := g.Induced(keep)
		if sub.N() != len(old2new) {
			return false
		}
		for _, u := range keep {
			for _, v := range keep {
				if u < v && g.HasEdge(u, v) != sub.HasEdge(old2new[u], old2new[v]) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickBipartitionValid(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := quickGraph(r)
		side, ok := g.Bipartition()
		if !ok {
			// Must contain an odd cycle; verified separately by parity of
			// some BFS tree conflict — here just check determinism of the
			// negative answer.
			_, ok2 := g.Bipartition()
			return !ok2
		}
		for _, e := range g.Edges() {
			if side[e.U] == side[e.V] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickSpanningTreeSize(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := quickGraph(r)
		comps := g.Components()
		edges, ok := g.SpanningTreeAlive(nil)
		if len(comps) > 1 {
			return !ok
		}
		return ok && len(edges) == g.N()-1
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickDistanceTriangleInequality(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := quickGraph(r)
		if g.N() < 3 {
			return true
		}
		u, v, w := r.Intn(g.N()), r.Intn(g.N()), r.Intn(g.N())
		duv, dvw, duw := g.Distance(u, v), g.Distance(v, w), g.Distance(u, w)
		if duv == -1 || dvw == -1 {
			return true
		}
		return duw != -1 && duw <= duv+dvw
	}, &quick.Config{MaxCount: 400})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickTerminalsConnectedWeakerThanCovers(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := quickGraph(r)
		alive := make([]bool, g.N())
		for i := range alive {
			alive[i] = r.Intn(3) > 0
		}
		var terms []int
		for v := 0; v < g.N() && len(terms) < 3; v++ {
			if alive[v] && r.Intn(2) == 0 {
				terms = append(terms, v)
			}
		}
		if g.Covers(alive, terms) && !g.TerminalsConnected(alive, terms) {
			return false // Covers must imply TerminalsConnected
		}
		return true
	}, &quick.Config{MaxCount: 400})
	if err != nil {
		t.Error(err)
	}
}
