package graph

import "math/bits"

// Bits is a packed per-node bitmask: bit v of word v/64 is node v. It is
// the mask representation of the word-parallel traversal kernels
// (frozen_bits.go): where the mutable path keeps []bool alive/visited
// arrays, the frozen hot paths keep Bits so set algebra (frontier
// expansion, alive restriction, terminal covering) runs 64 nodes per
// machine word.
//
// Padding bits — positions ≥ n in the last word — must stay zero. Every
// constructor and mutator here maintains that invariant; code that
// manipulates words directly (the kernels) is written to preserve it,
// because the adjacency-matrix rows it ORs in never carry padding bits
// either (Freeze only sets bits < n).
type Bits []uint64

// bitsWords returns the number of uint64 words needed for n bits.
func bitsWords(n int) int { return (n + 63) / 64 }

// NewBits returns an all-zero mask with capacity for n nodes.
func NewBits(n int) Bits { return make(Bits, bitsWords(n)) }

// Grow returns a mask of exactly the words needed for n bits, reusing b's
// array when its capacity allows and allocating otherwise. The contents are
// unspecified — callers reset or fully overwrite before reading. Returning
// the exact length (not "at least") is what lets two masks for the same n
// be combined word-by-word without bounds bookkeeping; reusing the array
// across queries is what makes the pooled solver scratch allocation-free in
// steady state.
func (b Bits) Grow(n int) Bits {
	w := bitsWords(n)
	if w > cap(b) {
		return make(Bits, w)
	}
	return b[:w]
}

// Has reports whether bit v is set.
func (b Bits) Has(v int) bool { return b[v>>6]&(1<<(uint(v)&63)) != 0 }

// Set sets bit v.
func (b Bits) Set(v int) { b[v>>6] |= 1 << (uint(v) & 63) }

// Clear clears bit v.
func (b Bits) Clear(v int) { b[v>>6] &^= 1 << (uint(v) & 63) }

// Reset zeroes every word.
func (b Bits) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// FillN sets bits 0..n-1 and clears the padding of the last word.
func (b Bits) FillN(n int) {
	full := n >> 6
	for i := 0; i < full; i++ {
		b[i] = ^uint64(0)
	}
	if rem := uint(n) & 63; rem != 0 {
		b[full] = (1 << rem) - 1
		full++
	}
	for i := full; i < len(b); i++ {
		b[i] = 0
	}
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (b Bits) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// CopyFrom overwrites b with x (lengths must match).
func (b Bits) CopyFrom(x Bits) { copy(b, x) }

// And intersects b with x in place.
func (b Bits) And(x Bits) {
	for i := range b {
		b[i] &= x[i]
	}
}

// AndNot removes x from b in place.
func (b Bits) AndNot(x Bits) {
	for i := range b {
		b[i] &^= x[i]
	}
}

// Or unions x into b in place.
func (b Bits) Or(x Bits) {
	for i := range b {
		b[i] |= x[i]
	}
}

// SubsetOf reports whether every set bit of b is set in x.
func (b Bits) SubsetOf(x Bits) bool {
	for i, w := range b {
		if w&^x[i] != 0 {
			return false
		}
	}
	return true
}

// AppendOnes appends the positions of the set bits (ascending) to dst.
func (b Bits) AppendOnes(dst []int) []int {
	for i, w := range b {
		base := i << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// ToBools expands b into dst (dst[v] = bit v for v < len(dst)).
func (b Bits) ToBools(dst []bool) []bool {
	for v := range dst {
		dst[v] = b.Has(v)
	}
	return dst
}

// BitsFromBools packs alive into dst (grown as needed). A nil alive means
// "all n alive": every bit 0..n-1 is set.
func BitsFromBools(alive []bool, n int, dst Bits) Bits {
	dst = dst.Grow(n)
	if alive == nil {
		dst.FillN(n)
		return dst
	}
	dst.Reset()
	for v, ok := range alive {
		if ok {
			dst.Set(v)
		}
	}
	return dst
}
