package graph

// ShortestPath returns a shortest path from u to v as a node sequence
// (inclusive of both endpoints), or nil if v is unreachable from u.
func (g *Graph) ShortestPath(u, v int) []int {
	return g.ShortestPathAlive(u, v, nil)
}

// ShortestPathAlive is ShortestPath restricted to alive nodes.
func (g *Graph) ShortestPathAlive(u, v int, alive []bool) []int {
	g.check(u)
	g.check(v)
	if alive != nil && (!alive[u] || !alive[v]) {
		return nil
	}
	if u == v {
		return []int{u}
	}
	prev := make([]int, g.N())
	for i := range prev {
		prev[i] = -1
	}
	prev[u] = u
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[x] {
			if prev[w] != -1 || (alive != nil && !alive[w]) {
				continue
			}
			prev[w] = x
			if w == v {
				var rev []int
				for c := v; c != u; c = prev[c] {
					rev = append(rev, c)
				}
				rev = append(rev, u)
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, w)
		}
	}
	return nil
}

// Distance returns the unweighted distance between u and v, or -1 if
// disconnected.
func (g *Graph) Distance(u, v int) int {
	return g.BFSDistances(u)[v]
}

// IsPath reports whether nodes forms a path in g: all distinct, consecutive
// nodes adjacent.
func (g *Graph) IsPath(nodes []int) bool {
	if len(nodes) == 0 {
		return false
	}
	seen := make(map[int]bool, len(nodes))
	for i, v := range nodes {
		g.check(v)
		if seen[v] {
			return false
		}
		seen[v] = true
		if i > 0 && !g.HasEdge(nodes[i-1], v) {
			return false
		}
	}
	return true
}

// IsCycle reports whether nodes forms a cycle per Definition 4: a path of
// length ≥ 3 whose endpoints are adjacent (so at least 4 distinct nodes...
// precisely, the node sequence has n ≥ 4 nodes? Definition 4 says a cycle is
// a path of length 3 or more such that the last node is adjacent to the
// first; the node count n is the length of the cycle). Here nodes lists the
// cycle's distinct nodes in order.
func (g *Graph) IsCycle(nodes []int) bool {
	if len(nodes) < 3 {
		return false
	}
	if !g.IsPath(nodes) {
		return false
	}
	return g.HasEdge(nodes[len(nodes)-1], nodes[0])
}

// CycleChords returns the chords of the given cycle: edges of g joining
// nonconsecutive nodes of the cycle.
func (g *Graph) CycleChords(cycle []int) []Edge {
	n := len(cycle)
	var chords []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if j == i+1 || (i == 0 && j == n-1) {
				continue // consecutive on the cycle
			}
			if g.HasEdge(cycle[i], cycle[j]) {
				u, v := cycle[i], cycle[j]
				if u > v {
					u, v = v, u
				}
				chords = append(chords, Edge{u, v})
			}
		}
	}
	return chords
}

// CycleDistance returns the distance between positions i and j along the
// cycle of length n (the shorter way around).
func CycleDistance(i, j, n int) int {
	d := i - j
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}
