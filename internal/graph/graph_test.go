package graph

import (
	"math/rand"
	"testing"

	"repro/internal/intset"
)

// path returns the path graph a-b-c-... over the given labels.
func path(labels ...string) *Graph {
	g := NewWithNodes(labels...)
	for i := 1; i < len(labels); i++ {
		g.AddEdge(i-1, i)
	}
	return g
}

// cycle returns the cycle graph over the given labels.
func cycle(labels ...string) *Graph {
	g := path(labels...)
	g.AddEdge(len(labels)-1, 0)
	return g
}

func TestAddNodeEdge(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	if a != 0 || b != 1 {
		t.Fatalf("ids = %d, %d", a, b)
	}
	g.AddEdge(a, b)
	g.AddEdge(a, b) // duplicate is a no-op
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("N=%d M=%d, want 2, 1", g.N(), g.M())
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Error("HasEdge failed")
	}
	if g.Degree(a) != 1 {
		t.Errorf("Degree(a) = %d", g.Degree(a))
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on duplicate label")
		}
	}()
	g := New()
	g.AddNode("x")
	g.AddNode("x")
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on self-loop")
		}
	}()
	g := New()
	v := g.AddNode("x")
	g.AddEdge(v, v)
}

func TestEnsureNodeAndLabels(t *testing.T) {
	g := New()
	a := g.EnsureNode("a")
	if got := g.EnsureNode("a"); got != a {
		t.Errorf("EnsureNode returned %d, want %d", got, a)
	}
	g.AddEdgeLabels("a", "b")
	if g.M() != 1 {
		t.Errorf("M = %d", g.M())
	}
	if id, ok := g.ID("b"); !ok || g.Label(id) != "b" {
		t.Error("ID/Label round trip failed")
	}
	if got := g.Labels(g.IDs("b", "a")); got[0] != "b" || got[1] != "a" {
		t.Errorf("Labels = %v", got)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := path("a", "b", "c")
	g.RemoveEdge(0, 1)
	if g.M() != 1 || g.HasEdge(0, 1) {
		t.Error("RemoveEdge failed")
	}
	g.RemoveEdge(0, 1) // absent: no-op
	if g.M() != 1 {
		t.Error("RemoveEdge of absent edge changed M")
	}
}

func TestEdgesSorted(t *testing.T) {
	g := NewWithNodes("a", "b", "c")
	g.AddEdge(2, 0)
	g.AddEdge(1, 0)
	es := g.Edges()
	if len(es) != 2 || es[0] != (Edge{0, 1}) || es[1] != (Edge{0, 2}) {
		t.Errorf("Edges = %v", es)
	}
}

func TestAdj(t *testing.T) {
	g := path("a", "b", "c", "d")
	got := g.Adj([]int{1, 2})
	if !got.Equal(intset.New(0, 1, 2, 3)) {
		t.Errorf("Adj = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := path("a", "b")
	c := g.Clone()
	c.AddEdgeLabels("b", "z")
	if g.N() != 2 || g.M() != 1 {
		t.Error("Clone is not independent")
	}
}

func TestInduced(t *testing.T) {
	g := cycle("a", "b", "c", "d")
	sub, old2new := g.Induced([]int{0, 1, 3})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("induced N=%d M=%d", sub.N(), sub.M())
	}
	if !sub.HasEdge(old2new[0], old2new[1]) || !sub.HasEdge(old2new[0], old2new[3]) {
		t.Error("induced edges wrong")
	}
	if sub.Label(old2new[3]) != "d" {
		t.Error("labels not preserved")
	}
}

func TestBFSDistances(t *testing.T) {
	g := path("a", "b", "c", "d")
	g.AddNode("iso")
	d := g.BFSDistances(0)
	want := []int{0, 1, 2, 3, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestComponentsAndConnectivity(t *testing.T) {
	g := path("a", "b")
	g.AddNode("c")
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	alive := []bool{true, true, false}
	if !g.ConnectedAlive(alive) {
		t.Error("alive subgraph should be connected")
	}
}

func TestCovers(t *testing.T) {
	g := path("a", "b", "c", "d")
	alive := []bool{true, true, true, true}
	if !g.Covers(alive, []int{0, 3}) {
		t.Error("full path should cover {a,d}")
	}
	alive[1] = false
	if g.Covers(alive, []int{0, 3}) {
		t.Error("broken path should not cover {a,d}")
	}
	// Definition 10 requires the whole subgraph to be connected, not just
	// the terminals.
	g2 := path("a", "b")
	g2.AddNode("c")
	if g2.Covers(nil, []int{0, 1}) {
		t.Error("cover with disconnected extra component accepted")
	}
	if !g2.Covers([]bool{true, true, false}, []int{0, 1}) {
		t.Error("restricted cover rejected")
	}
	if !g.Covers(nil, nil) {
		t.Error("empty terminal set should be covered")
	}
}

func TestSpanningTree(t *testing.T) {
	g := cycle("a", "b", "c", "d")
	edges, ok := g.SpanningTreeAlive(nil)
	if !ok || len(edges) != 3 {
		t.Fatalf("spanning tree edges = %v ok=%v", edges, ok)
	}
	g.AddNode("iso")
	if _, ok := g.SpanningTreeAlive(nil); ok {
		t.Error("spanning tree of disconnected graph should fail")
	}
	alive := []bool{true, true, true, true, false}
	if _, ok := g.SpanningTreeAlive(alive); !ok {
		t.Error("spanning tree of alive subgraph should succeed")
	}
}

func TestIsForestAndTreeOver(t *testing.T) {
	g := path("a", "b", "c")
	if !g.IsForest() {
		t.Error("path not recognized as forest")
	}
	if !g.IsTreeOver(nil, []int{0, 2}) {
		t.Error("path is a tree over endpoints")
	}
	c := cycle("a", "b", "c", "d")
	if c.IsForest() {
		t.Error("cycle recognized as forest")
	}
	if c.IsTreeOver(nil, []int{0}) {
		t.Error("cycle is not a tree")
	}
}

func TestComponentContaining(t *testing.T) {
	g := path("a", "b")
	g.AddNode("c")
	comp := g.ComponentContaining([]int{0})
	if len(comp) != 2 {
		t.Errorf("component = %v", comp)
	}
	if got := g.ComponentContaining([]int{0, 2}); got != nil {
		t.Errorf("cross-component seeds should return nil, got %v", got)
	}
}

func TestBipartition(t *testing.T) {
	even := cycle("a", "b", "c", "d")
	if !even.IsBipartite() {
		t.Error("C4 should be bipartite")
	}
	odd := cycle("a", "b", "c")
	if odd.IsBipartite() {
		t.Error("C3 should not be bipartite")
	}
	side, ok := even.Bipartition()
	if !ok {
		t.Fatal("bipartition failed")
	}
	for _, e := range even.Edges() {
		if side[e.U] == side[e.V] {
			t.Errorf("edge %v inside one side", e)
		}
	}
}

func TestShortestPath(t *testing.T) {
	g := cycle("a", "b", "c", "d", "e", "f")
	p := g.ShortestPath(0, 3)
	if len(p) != 4 {
		t.Errorf("path = %v", p)
	}
	if p[0] != 0 || p[len(p)-1] != 3 {
		t.Errorf("endpoints wrong: %v", p)
	}
	if !g.IsPath(p) {
		t.Errorf("%v is not a path", p)
	}
	if got := g.ShortestPath(2, 2); len(got) != 1 {
		t.Errorf("trivial path = %v", got)
	}
	g.AddNode("iso")
	if g.ShortestPath(0, 6) != nil {
		t.Error("path to isolated node should be nil")
	}
	alive := make([]bool, g.N())
	for i := range alive {
		alive[i] = true
	}
	alive[1] = false
	alive[5] = false
	if g.ShortestPathAlive(0, 3, alive) != nil {
		t.Error("blocked path should be nil")
	}
}

func TestIsCycleAndChords(t *testing.T) {
	g := cycle("a", "b", "c", "d", "e", "f")
	all := []int{0, 1, 2, 3, 4, 5}
	if !g.IsCycle(all) {
		t.Error("C6 not recognized")
	}
	if got := g.CycleChords(all); len(got) != 0 {
		t.Errorf("chordless C6 has chords %v", got)
	}
	g.AddEdge(0, 3)
	if got := g.CycleChords(all); len(got) != 1 || got[0] != (Edge{0, 3}) {
		t.Errorf("chords = %v", got)
	}
	if g.IsCycle([]int{0, 1, 2, 0}) {
		t.Error("repeated node accepted as cycle")
	}
	if g.IsCycle([]int{0, 1}) {
		t.Error("2-node cycle accepted")
	}
}

func TestCycleDistance(t *testing.T) {
	tests := []struct{ i, j, n, want int }{
		{0, 1, 6, 1},
		{0, 5, 6, 1},
		{0, 3, 6, 3},
		{1, 5, 8, 4},
		{2, 2, 4, 0},
	}
	for _, tc := range tests {
		if got := CycleDistance(tc.i, tc.j, tc.n); got != tc.want {
			t.Errorf("CycleDistance(%d,%d,%d) = %d, want %d", tc.i, tc.j, tc.n, got, tc.want)
		}
	}
}

// randGraph builds a random graph on n nodes with edge probability p.
func randGraph(r *rand.Rand, n int, p float64) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('A'+i%26)) + string(rune('0'+i/26)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestRandomInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		g := randGraph(r, 2+r.Intn(12), r.Float64())
		// Handshake: sum of degrees = 2m.
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		if sum != 2*g.M() {
			t.Fatalf("handshake violated: %d != 2*%d", sum, g.M())
		}
		// Components partition the nodes.
		total := 0
		for _, c := range g.ComponentsAlive(nil) {
			total += len(c)
		}
		if total != g.N() {
			t.Fatalf("components do not partition nodes")
		}
		// Spanning tree of each component has |C|-1 edges.
		if g.IsConnected() {
			edges, ok := g.SpanningTreeAlive(nil)
			if !ok || len(edges) != g.N()-1 {
				t.Fatalf("spanning tree wrong: %v", edges)
			}
		}
		// Shortest path length agrees with BFS distance.
		u, v := r.Intn(g.N()), r.Intn(g.N())
		p := g.ShortestPath(u, v)
		d := g.Distance(u, v)
		if d == -1 {
			if p != nil {
				t.Fatalf("path found at distance -1")
			}
		} else if len(p)-1 != d {
			t.Fatalf("path length %d != distance %d", len(p)-1, d)
		}
	}
}
