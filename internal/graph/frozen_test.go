package graph

import (
	"math/rand"
	"testing"
)

// randomGraph builds a random labelled graph for cross-checking the frozen
// view against the mutable one.
func randomGraph(r *rand.Rand, n int, p float64) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('A'+i/26)) + string(rune('a'+i%26)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestEdgesSortedLexicographically(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 3+r.Intn(30), 0.3)
		edges := g.Edges()
		if len(edges) != g.M() {
			t.Fatalf("Edges returned %d edges, M() = %d", len(edges), g.M())
		}
		for i, e := range edges {
			if e.U >= e.V {
				t.Fatalf("edge %v violates U < V", e)
			}
			if i > 0 {
				prev := edges[i-1]
				if prev.U > e.U || (prev.U == e.U && prev.V >= e.V) {
					t.Fatalf("edges out of lexicographic order: %v before %v", prev, e)
				}
			}
		}
	}
}

func TestFreezeMirrorsGraph(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(r, 2+r.Intn(40), 0.25)
		f := g.Freeze()
		if f.N() != g.N() || f.M() != g.M() {
			t.Fatalf("size mismatch: frozen %d/%d, graph %d/%d", f.N(), f.M(), g.N(), g.M())
		}
		if !f.HasMatrix() {
			t.Fatalf("small graph should compile the bitset matrix")
		}
		for v := 0; v < g.N(); v++ {
			if f.Label(v) != g.Label(v) {
				t.Fatalf("label mismatch at %d", v)
			}
			if id, ok := f.ID(g.Label(v)); !ok || id != v {
				t.Fatalf("ID(%q) = %d,%v", g.Label(v), id, ok)
			}
			if f.Degree(v) != g.Degree(v) {
				t.Fatalf("degree mismatch at %d", v)
			}
			nbr := f.Neighbors(v)
			want := g.Neighbors(v)
			if len(nbr) != want.Len() {
				t.Fatalf("neighbor count mismatch at %d", v)
			}
			for i, w := range nbr {
				if int(w) != want[i] {
					t.Fatalf("neighbor %d of %d: frozen %d, mutable %d", i, v, w, want[i])
				}
			}
			for w := 0; w < g.N(); w++ {
				if f.HasEdge(v, w) != g.HasEdge(v, w) {
					t.Fatalf("HasEdge(%d,%d) disagrees", v, w)
				}
			}
		}
		fe, ge := f.Edges(), g.Edges()
		if len(fe) != len(ge) {
			t.Fatalf("edge list length mismatch")
		}
		for i := range fe {
			if fe[i] != ge[i] {
				t.Fatalf("edge %d: frozen %v, mutable %v", i, fe[i], ge[i])
			}
		}
	}
}

func TestFreezeWithoutMatrix(t *testing.T) {
	// Above matrixMaxN nodes the dense matrix is skipped and HasEdge falls
	// back to binary search on the CSR slice.
	g := New()
	n := matrixMaxN + 10
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676)))
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	g.AddEdge(0, n-1)
	f := g.Freeze()
	if f.HasMatrix() {
		t.Fatal("large graph should not compile the matrix")
	}
	for _, tc := range []struct {
		u, v int
		want bool
	}{{0, 1, true}, {1, 0, true}, {0, n - 1, true}, {0, 2, false}, {5, 900, false}, {n - 2, n - 1, true}} {
		if got := f.HasEdge(tc.u, tc.v); got != tc.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", tc.u, tc.v, got, tc.want)
		}
	}
}

func TestFreezeIsSnapshot(t *testing.T) {
	g := NewWithNodes("a", "b", "c")
	g.AddEdge(0, 1)
	f := g.Freeze()
	g.AddEdge(1, 2) // mutate after freezing
	if f.M() != 1 || f.HasEdge(1, 2) {
		t.Fatal("frozen view changed after graph mutation")
	}
	if !f.Thaw().HasEdge(0, 1) || f.Thaw().M() != 1 {
		t.Fatal("Thaw did not reproduce the snapshot")
	}
}

func TestFrozenTraversalMatchesMutable(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(r, 4+r.Intn(40), 0.12)
		f := g.Freeze()

		alive := make([]bool, g.N())
		for v := range alive {
			alive[v] = r.Float64() < 0.8
		}
		start := r.Intn(g.N())
		alive[start] = true

		wantDist := g.BFSDistancesAlive(start, alive)
		gotDist := f.BFSDistancesAlive(start, alive)
		for v := range wantDist {
			if int(gotDist[v]) != wantDist[v] {
				t.Fatalf("BFS dist to %d: frozen %d, mutable %d", v, gotDist[v], wantDist[v])
			}
		}

		var terms []int
		for v := 0; v < g.N(); v++ {
			if alive[v] && r.Float64() < 0.2 {
				terms = append(terms, v)
			}
		}
		terms = append(terms, start)
		if got, want := f.TerminalsConnected(alive, terms), g.TerminalsConnected(alive, terms); got != want {
			t.Fatalf("TerminalsConnected: frozen %v, mutable %v", got, want)
		}
		if got, want := f.Covers(alive, terms), g.Covers(alive, terms); got != want {
			t.Fatalf("Covers: frozen %v, mutable %v", got, want)
		}

		if got, want := f.ComponentCount(), len(g.Components()); got != want {
			t.Fatalf("ComponentCount: frozen %d, mutable %d", got, want)
		}
		if got, want := f.IsForest(), g.IsForest(); got != want {
			t.Fatalf("IsForest: frozen %v, mutable %v", got, want)
		}

		mask := f.ComponentMask(terms)
		comp := g.ComponentContaining(terms)
		if (mask == nil) != (comp == nil) {
			t.Fatalf("ComponentMask nil-ness disagrees with ComponentContaining")
		}
		if mask != nil {
			inComp := make([]bool, g.N())
			for _, v := range comp {
				inComp[v] = true
			}
			for v := range mask {
				if mask[v] != inComp[v] {
					t.Fatalf("ComponentMask[%d] = %v, want %v", v, mask[v], inComp[v])
				}
			}
		}

		fe, fok := f.SpanningTreeAlive(alive)
		ge, gok := g.SpanningTreeAlive(alive)
		if fok != gok || len(fe) != len(ge) {
			t.Fatalf("SpanningTreeAlive: frozen (%d,%v), mutable (%d,%v)", len(fe), fok, len(ge), gok)
		}
		for i := range fe {
			if fe[i] != ge[i] {
				t.Fatalf("spanning tree edge %d: frozen %v, mutable %v", i, fe[i], ge[i])
			}
		}

		u, v := r.Intn(g.N()), r.Intn(g.N())
		fp := f.ShortestPath(u, v)
		gp := g.ShortestPath(u, v)
		if len(fp) != len(gp) {
			t.Fatalf("ShortestPath(%d,%d) length: frozen %d, mutable %d", u, v, len(fp), len(gp))
		}
		for i := range fp {
			if fp[i] != gp[i] {
				t.Fatalf("ShortestPath(%d,%d)[%d]: frozen %d, mutable %d", u, v, i, fp[i], gp[i])
			}
		}
	}
}
