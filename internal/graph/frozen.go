package graph

import "fmt"

// Frozen is an immutable compressed-sparse-row (CSR) view of a Graph,
// compiled once with Freeze. The adjacency of node v is the slice
// neighbors[offsets[v]:offsets[v+1]], sorted ascending; for graphs up to
// matrixMaxN nodes a dense bitset adjacency matrix is also compiled, making
// HasEdge O(1). A Frozen never changes after Freeze returns, so any number
// of goroutines may query and traverse it concurrently without
// synchronization — this is the substrate the classify-once/query-many
// serving stack (core.Connector, core.Service) is built on.
type Frozen struct {
	labels    []string
	index     map[string]int
	offsets   []int32 // len N()+1; offsets[v] is where v's adjacency starts
	neighbors []int32 // len 2·M(); concatenated sorted adjacency lists
	m         int
	matrix    []uint64 // optional n×n adjacency bitset, row-major; nil when large
	stride    int      // uint64 words per matrix row
}

// matrixMaxN bounds the node count for which Freeze compiles the dense
// bitset adjacency matrix (n² bits: 2048 nodes cost 512 KiB). Above it
// HasEdge falls back to binary search over the CSR slice.
const matrixMaxN = 2048

// Freeze compiles g into its immutable CSR view. The snapshot is deep:
// later mutation of g does not affect the Frozen. Cost is O(n + m).
func (g *Graph) Freeze() *Frozen {
	n := g.N()
	f := &Frozen{
		labels:  append([]string(nil), g.labels...),
		index:   make(map[string]int, len(g.index)),
		offsets: make([]int32, n+1),
		m:       g.m,
	}
	for l, id := range g.index {
		f.index[l] = id
	}
	f.neighbors = make([]int32, 0, 2*g.m)
	for v := 0; v < n; v++ {
		for _, w := range g.adj[v] {
			f.neighbors = append(f.neighbors, int32(w))
		}
		f.offsets[v+1] = int32(len(f.neighbors))
	}
	if n > 0 && n <= matrixMaxN {
		f.stride = (n + 63) / 64
		f.matrix = make([]uint64, n*f.stride)
		for v := 0; v < n; v++ {
			row := f.matrix[v*f.stride : (v+1)*f.stride]
			for _, w := range g.adj[v] {
				row[w>>6] |= 1 << (uint(w) & 63)
			}
		}
	}
	return f
}

// Thaw reconstructs a mutable Graph equal to the frozen snapshot.
func (f *Frozen) Thaw() *Graph {
	g := New()
	for _, l := range f.labels {
		g.AddNode(l)
	}
	for _, e := range f.Edges() {
		g.AddEdge(e.U, e.V)
	}
	return g
}

func (f *Frozen) check(v int) {
	if v < 0 || v >= len(f.labels) {
		panic(fmt.Sprintf("graph: node id %d out of range [0, %d)", v, len(f.labels)))
	}
}

// N returns the number of nodes.
func (f *Frozen) N() int { return len(f.labels) }

// M returns the number of edges.
func (f *Frozen) M() int { return f.m }

// HasMatrix reports whether the dense adjacency bitset was compiled.
func (f *Frozen) HasMatrix() bool { return f.matrix != nil }

// Label returns the label of node v.
func (f *Frozen) Label(v int) string {
	f.check(v)
	return f.labels[v]
}

// Labels maps a slice of node ids to their labels.
func (f *Frozen) Labels(vs []int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = f.Label(v)
	}
	return out
}

// ID returns the id of the node with the given label.
func (f *Frozen) ID(label string) (int, bool) {
	id, ok := f.index[label]
	return id, ok
}

// MustID returns the id of the node with the given label, panicking if the
// label is unknown.
func (f *Frozen) MustID(label string) int {
	id, ok := f.index[label]
	if !ok {
		panic(fmt.Sprintf("graph: unknown node label %q", label))
	}
	return id
}

// IDs maps labels to node ids, panicking on unknown labels.
func (f *Frozen) IDs(labels ...string) []int {
	out := make([]int, len(labels))
	for i, l := range labels {
		out[i] = f.MustID(l)
	}
	return out
}

// Degree returns the degree of v.
func (f *Frozen) Degree(v int) int {
	f.check(v)
	return int(f.offsets[v+1] - f.offsets[v])
}

// Neighbors returns the sorted adjacency slice of v. The slice aliases the
// CSR arrays and must not be modified.
func (f *Frozen) Neighbors(v int) []int32 {
	f.check(v)
	return f.neighbors[f.offsets[v]:f.offsets[v+1]]
}

// HasEdge reports whether the edge {u, v} is present: O(1) via the bitset
// matrix when compiled, O(log degree) otherwise.
func (f *Frozen) HasEdge(u, v int) bool {
	f.check(u)
	f.check(v)
	if f.matrix != nil {
		return f.matrix[u*f.stride+(v>>6)]&(1<<(uint(v)&63)) != 0
	}
	nbr := f.neighbors[f.offsets[u]:f.offsets[u+1]]
	lo, hi := 0, len(nbr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nbr[mid] < int32(v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(nbr) && nbr[lo] == int32(v)
}

// Edges returns all edges with U < V, in lexicographic order.
func (f *Frozen) Edges() []Edge {
	out := make([]Edge, 0, f.m)
	for u := 0; u < f.N(); u++ {
		for _, v := range f.neighbors[f.offsets[u]:f.offsets[u+1]] {
			if int32(u) < v {
				out = append(out, Edge{u, int(v)})
			}
		}
	}
	return out
}
