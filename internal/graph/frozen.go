package graph

import (
	"fmt"
	"math/bits"
	"sort"
)

// Frozen is an immutable compressed-sparse-row (CSR) view of a Graph,
// compiled once with Freeze. The adjacency of node v is the slice
// neighbors[offsets[v]:offsets[v+1]], sorted ascending; for graphs up to
// matrixMaxN nodes a dense bitset adjacency matrix is also compiled, making
// HasEdge O(1). A Frozen never changes after Freeze returns, so any number
// of goroutines may query and traverse it concurrently without
// synchronization — this is the substrate the classify-once/query-many
// serving stack (core.Connector, core.Service) is built on.
type Frozen struct {
	labels    []string
	index     map[string]int
	offsets   []int32 // len N()+1; offsets[v] is where v's adjacency starts
	neighbors []int32 // len 2·M(); concatenated sorted adjacency lists
	m         int
	matrix    []uint64 // optional n×n adjacency bitset, row-major; nil when large
	stride    int      // uint64 words per matrix row
}

// matrixMaxN bounds the node count for which Freeze compiles the dense
// bitset adjacency matrix (n² bits: 2048 nodes cost 512 KiB). Above it
// HasEdge falls back to binary search over the CSR slice.
const matrixMaxN = 2048

// Freeze compiles g into its immutable CSR view. The snapshot is deep:
// later mutation of g does not affect the Frozen. Cost is O(n + m).
func (g *Graph) Freeze() *Frozen {
	n := g.N()
	f := &Frozen{
		labels:  append([]string(nil), g.labels...),
		index:   make(map[string]int, len(g.index)),
		offsets: make([]int32, n+1),
		m:       g.m,
	}
	for l, id := range g.index {
		f.index[l] = id
	}
	f.neighbors = make([]int32, 0, 2*g.m)
	for v := 0; v < n; v++ {
		for _, w := range g.adj[v] {
			f.neighbors = append(f.neighbors, int32(w))
		}
		f.offsets[v+1] = int32(len(f.neighbors))
	}
	if n > 0 && n <= matrixMaxN {
		f.stride = (n + 63) / 64
		f.matrix = make([]uint64, n*f.stride)
		for v := 0; v < n; v++ {
			row := f.matrix[v*f.stride : (v+1)*f.stride]
			for _, w := range g.adj[v] {
				row[w>>6] |= 1 << (uint(w) & 63)
			}
		}
	}
	return f
}

// CSR returns the compiled adjacency arrays: offsets has N()+1 entries and
// the sorted adjacency of node v is neighbors[offsets[v]:offsets[v+1]].
// Both slices are the Frozen's own storage and must not be modified — this
// accessor exists so serializers (internal/snapshot) can write the compiled
// form without an intermediate copy.
func (f *Frozen) CSR() (offsets, neighbors []int32) { return f.offsets, f.neighbors }

// Matrix returns the dense adjacency bitset (row-major, stride uint64 words
// per row) or (nil, 0) when it was not compiled. The slice is shared and
// must not be modified.
func (f *Frozen) Matrix() (words []uint64, stride int) { return f.matrix, f.stride }

// NodeLabels returns the label of every node, indexed by id. The slice is
// shared and must not be modified.
func (f *Frozen) NodeLabels() []string { return f.labels }

// RestoreFrozen assembles a Frozen directly from previously compiled parts
// — the inverse of taking CSR/Matrix/NodeLabels apart, used to revive a
// serialized epoch without re-running Freeze. The slices are adopted, not
// copied (they may alias a read-only mapped file); callers must not modify
// them afterwards. matrix may be nil (HasEdge then binary-searches the CSR
// slice, answers unchanged); when present, stride and the matrix length
// must match n.
//
// The structural invariants every Freeze output satisfies are verified —
// monotone offsets, strictly ascending in-range adjacency rows, no self
// loops, symmetric edges, a matrix that agrees with the CSR bit for bit,
// distinct labels — so a Frozen restored from hostile or corrupted bytes
// either equals a genuine compile or fails here, it never panics or
// answers wrongly later inside a solver.
func RestoreFrozen(labels []string, offsets, neighbors []int32, matrix []uint64, stride int) (*Frozen, error) {
	n := len(labels)
	if len(offsets) != n+1 {
		return nil, fmt.Errorf("graph: restore: %d offsets for %d nodes (want %d)", len(offsets), n, n+1)
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: restore: offsets[0] = %d, want 0", offsets[0])
	}
	if int(offsets[n]) != len(neighbors) {
		return nil, fmt.Errorf("graph: restore: offsets end at %d but %d neighbors are present", offsets[n], len(neighbors))
	}
	if len(neighbors)%2 != 0 {
		return nil, fmt.Errorf("graph: restore: odd neighbor count %d (edges are stored twice)", len(neighbors))
	}
	for v := 0; v < n; v++ {
		if offsets[v] > offsets[v+1] {
			return nil, fmt.Errorf("graph: restore: offsets decrease at node %d", v)
		}
		row := neighbors[offsets[v]:offsets[v+1]]
		for i, w := range row {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: restore: node %d has neighbor %d out of range [0, %d)", v, w, n)
			}
			if int(w) == v {
				return nil, fmt.Errorf("graph: restore: self loop at node %d", v)
			}
			if i > 0 && row[i-1] >= w {
				return nil, fmt.Errorf("graph: restore: adjacency of node %d is not strictly ascending", v)
			}
		}
	}
	// Symmetry: every stored arc must have its mirror, or traversals and
	// HasEdge would disagree about the same edge.
	for v := 0; v < n; v++ {
		for _, w := range neighbors[offsets[v]:offsets[v+1]] {
			row := neighbors[offsets[w]:offsets[w+1]]
			j := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
			if j >= len(row) || row[j] != int32(v) {
				return nil, fmt.Errorf("graph: restore: edge %d-%d has no mirror entry", v, w)
			}
		}
	}
	if matrix != nil {
		wantStride := (n + 63) / 64
		if stride != wantStride || len(matrix) != n*stride {
			return nil, fmt.Errorf("graph: restore: matrix is %d words with stride %d for %d nodes (want %d×%d)",
				len(matrix), stride, n, n, wantStride)
		}
		// Content must agree with the CSR bit for bit: HasEdge answers from
		// the matrix while traversals answer from the adjacency lists, so a
		// lying bitset would make the two halves of the same Frozen
		// disagree. Every neighbor bit must be set and each row's popcount
		// must equal the degree — together that pins the row exactly (no
		// extra bits, none missing, padding clear).
		for v := 0; v < n; v++ {
			row := matrix[v*stride : (v+1)*stride]
			ones := 0
			for _, w := range row {
				ones += bits.OnesCount64(w)
			}
			if ones != int(offsets[v+1]-offsets[v]) {
				return nil, fmt.Errorf("graph: restore: matrix row %d has %d bits for degree %d", v, ones, offsets[v+1]-offsets[v])
			}
			for _, w := range neighbors[offsets[v]:offsets[v+1]] {
				if row[w>>6]&(1<<(uint(w)&63)) == 0 {
					return nil, fmt.Errorf("graph: restore: matrix disagrees with CSR on edge %d-%d", v, w)
				}
			}
		}
	} else {
		stride = 0
	}
	index := make(map[string]int, n)
	for v, l := range labels {
		if _, dup := index[l]; dup {
			return nil, fmt.Errorf("graph: restore: duplicate node label %q", l)
		}
		index[l] = v
	}
	return &Frozen{
		labels:    labels,
		index:     index,
		offsets:   offsets,
		neighbors: neighbors,
		m:         len(neighbors) / 2,
		matrix:    matrix,
		stride:    stride,
	}, nil
}

// Thaw reconstructs a mutable Graph equal to the frozen snapshot.
func (f *Frozen) Thaw() *Graph {
	g := New()
	for _, l := range f.labels {
		g.AddNode(l)
	}
	for _, e := range f.Edges() {
		g.AddEdge(e.U, e.V)
	}
	return g
}

func (f *Frozen) check(v int) {
	if v < 0 || v >= len(f.labels) {
		panic(fmt.Sprintf("graph: node id %d out of range [0, %d)", v, len(f.labels)))
	}
}

// N returns the number of nodes.
func (f *Frozen) N() int { return len(f.labels) }

// M returns the number of edges.
func (f *Frozen) M() int { return f.m }

// HasMatrix reports whether the dense adjacency bitset was compiled.
func (f *Frozen) HasMatrix() bool { return f.matrix != nil }

// Label returns the label of node v.
func (f *Frozen) Label(v int) string {
	f.check(v)
	return f.labels[v]
}

// Labels maps a slice of node ids to their labels.
func (f *Frozen) Labels(vs []int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = f.Label(v)
	}
	return out
}

// ID returns the id of the node with the given label.
func (f *Frozen) ID(label string) (int, bool) {
	id, ok := f.index[label]
	return id, ok
}

// MustID returns the id of the node with the given label, panicking if the
// label is unknown.
func (f *Frozen) MustID(label string) int {
	id, ok := f.index[label]
	if !ok {
		panic(fmt.Sprintf("graph: unknown node label %q", label))
	}
	return id
}

// IDs maps labels to node ids, panicking on unknown labels.
func (f *Frozen) IDs(labels ...string) []int {
	out := make([]int, len(labels))
	for i, l := range labels {
		out[i] = f.MustID(l)
	}
	return out
}

// Degree returns the degree of v.
func (f *Frozen) Degree(v int) int {
	f.check(v)
	return int(f.offsets[v+1] - f.offsets[v])
}

// Neighbors returns the sorted adjacency slice of v. The slice aliases the
// CSR arrays and must not be modified.
func (f *Frozen) Neighbors(v int) []int32 {
	f.check(v)
	return f.neighbors[f.offsets[v]:f.offsets[v+1]]
}

// HasEdge reports whether the edge {u, v} is present: O(1) via the bitset
// matrix when compiled, O(log degree) otherwise.
func (f *Frozen) HasEdge(u, v int) bool {
	f.check(u)
	f.check(v)
	if f.matrix != nil {
		return f.matrix[u*f.stride+(v>>6)]&(1<<(uint(v)&63)) != 0
	}
	nbr := f.neighbors[f.offsets[u]:f.offsets[u+1]]
	lo, hi := 0, len(nbr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nbr[mid] < int32(v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(nbr) && nbr[lo] == int32(v)
}

// Edges returns all edges with U < V, in lexicographic order.
func (f *Frozen) Edges() []Edge {
	out := make([]Edge, 0, f.m)
	for u := 0; u < f.N(); u++ {
		for _, v := range f.neighbors[f.offsets[u]:f.offsets[u+1]] {
			if int32(u) < v {
				out = append(out, Edge{u, int(v)})
			}
		}
	}
	return out
}
