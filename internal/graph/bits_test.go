package graph

import (
	"math/rand"
	"testing"
)

// wordBoundarySizes are the node counts the kernel equivalence sweeps pin:
// a single word partially filled, exactly one word, one word plus a bit,
// and the same around the two-word boundary — the off-by-one shapes where
// padding-bit bugs live.
var wordBoundarySizes = []int{1, 63, 64, 65, 127, 128, 129}

func TestBitsOps(t *testing.T) {
	for _, n := range wordBoundarySizes {
		b := NewBits(n)
		b.FillN(n)
		if got := b.Count(); got != n {
			t.Fatalf("n=%d: FillN count = %d", n, got)
		}
		// Padding must be clear: AppendOnes may not report ghosts.
		ones := b.AppendOnes(nil)
		if len(ones) != n || (n > 0 && ones[n-1] != n-1) {
			t.Fatalf("n=%d: AppendOnes = %v", n, ones)
		}
		b.Clear(n - 1)
		if b.Has(n-1) || b.Count() != n-1 {
			t.Fatalf("n=%d: Clear failed", n)
		}
		b.Set(n - 1)
		if !b.Has(n - 1) {
			t.Fatalf("n=%d: Set failed", n)
		}
		c := NewBits(n)
		c.CopyFrom(b)
		if !c.SubsetOf(b) || !b.SubsetOf(c) {
			t.Fatalf("n=%d: CopyFrom/SubsetOf failed", n)
		}
		c.Reset()
		if !c.Empty() || !c.SubsetOf(b) {
			t.Fatalf("n=%d: Reset/Empty failed", n)
		}
	}
}

func TestBitsFromBools(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for _, n := range wordBoundarySizes {
		alive := make([]bool, n)
		for i := range alive {
			alive[i] = r.Intn(2) == 0
		}
		b := BitsFromBools(alive, n, nil)
		for v := 0; v < n; v++ {
			if b.Has(v) != alive[v] {
				t.Fatalf("n=%d: bit %d = %v, want %v", n, v, b.Has(v), alive[v])
			}
		}
		back := b.ToBools(make([]bool, n))
		for v := range back {
			if back[v] != alive[v] {
				t.Fatalf("n=%d: round trip differs at %d", n, v)
			}
		}
		// nil means all alive, padding clear.
		all := BitsFromBools(nil, n, b)
		if all.Count() != n {
			t.Fatalf("n=%d: nil alive count = %d", n, all.Count())
		}
	}
}

// csrView strips the matrix off a frozen view so the same kernel call
// exercises the CSR fallback path.
func csrView(t testing.TB, f *Frozen) *Frozen {
	t.Helper()
	offsets, neighbors := f.CSR()
	g, err := RestoreFrozen(f.NodeLabels(), offsets, neighbors, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomAlive returns a random alive mask over n nodes that always keeps
// start alive; roughly 1 in 4 masks is nil (all alive).
func randomAlive(r *rand.Rand, n, start int) []bool {
	if r.Intn(4) == 0 {
		return nil
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = r.Intn(3) > 0
	}
	alive[start] = true
	return alive
}

// TestBitKernelsMatchCSRAtWordBoundaries sweeps the word-boundary sizes
// and random alive masks (including masks whose last word is partially
// filled — every non-multiple-of-64 size has one) asserting the matrix
// kernels, the CSR fallbacks, and the reference []bool walks agree bit for
// bit.
func TestBitKernelsMatchCSRAtWordBoundaries(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for _, n := range wordBoundarySizes {
		for trial := 0; trial < 8; trial++ {
			g := randomGraph(r, n, 2.5/float64(n+1))
			fm := g.Freeze() // matrix compiled (n ≤ matrixMaxN)
			fc := csrView(t, fm)
			if !fm.HasMatrix() || fc.HasMatrix() {
				t.Fatalf("n=%d: matrix presence wrong", n)
			}
			scm, scc := NewBitScratch(n), NewBitScratch(n)
			for probe := 0; probe < 6; probe++ {
				start := r.Intn(n)
				alive := randomAlive(r, n, start)
				aliveBits := Bits(nil)
				if alive != nil {
					aliveBits = BitsFromBools(alive, n, nil)
				}

				want := fm.BFSDistancesAlive(start, alive) // reference CSR walk
				distM := make([]int32, n)
				distC := make([]int32, n)
				fm.BFSDistancesBits(start, aliveBits, distM, scm)
				fc.BFSDistancesBits(start, aliveBits, distC, scc)
				for v := 0; v < n; v++ {
					if distM[v] != want[v] || distC[v] != want[v] {
						t.Fatalf("n=%d start=%d: dist[%d] matrix=%d csr=%d want=%d",
							n, start, v, distM[v], distC[v], want[v])
					}
				}

				reachM := fm.Reachable(start, aliveBits, scm)
				for v := 0; v < n; v++ {
					if reachM.Has(v) != (want[v] >= 0) {
						t.Fatalf("n=%d: matrix Reachable[%d] = %v, dist %d", n, v, reachM.Has(v), want[v])
					}
				}
				reachC := fc.Reachable(start, aliveBits, scc)
				for v := 0; v < n; v++ {
					if reachC.Has(v) != (want[v] >= 0) {
						t.Fatalf("n=%d: csr Reachable[%d] = %v, dist %d", n, v, reachC.Has(v), want[v])
					}
				}

				// Probe ReachesAll against the distances: targets a random
				// subset of alive nodes.
				targets := NewBits(n)
				covered := true
				for i := 0; i < 3; i++ {
					v := r.Intn(n)
					if alive != nil && !alive[v] {
						covered = false
					}
					if want[v] < 0 {
						covered = false
					}
					targets.Set(v)
				}
				if got := fm.ReachesAll(start, aliveBits, targets, scm); got != covered {
					t.Fatalf("n=%d: matrix ReachesAll = %v, want %v (targets %v)", n, got, covered, targets.AppendOnes(nil))
				}
				if got := fc.ReachesAll(start, aliveBits, targets, scc); got != covered {
					t.Fatalf("n=%d: csr ReachesAll = %v, want %v", n, got, covered)
				}
			}

			// ComponentBits vs ComponentMask on random seed sets.
			for probe := 0; probe < 4; probe++ {
				k := 1 + r.Intn(3)
				seeds := make([]int, k)
				for i := range seeds {
					seeds[i] = r.Intn(n)
				}
				want := fm.ComponentMask(seeds)
				gotM, okM := fm.ComponentBits(seeds, scm)
				gotC, okC := fc.ComponentBits(seeds, scc)
				if (want == nil) != !okM || (want == nil) != !okC {
					t.Fatalf("n=%d seeds=%v: nil-ness disagrees (mask=%v okM=%v okC=%v)", n, seeds, want == nil, okM, okC)
				}
				if want == nil {
					continue
				}
				for v := 0; v < n; v++ {
					if gotM.Has(v) != want[v] || gotC.Has(v) != want[v] {
						t.Fatalf("n=%d seeds=%v: component bit %d disagrees", n, seeds, v)
					}
				}
			}
		}
	}
}
