package graph

import (
	"fmt"

	"repro/internal/intset"
)

// Graph is an undirected simple graph. The zero value is not usable; create
// graphs with New.
type Graph struct {
	labels []string
	index  map[string]int
	adj    []intset.Set
	m      int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{index: make(map[string]int)}
}

// NewWithNodes returns a graph containing the given nodes and no edges.
// Labels must be distinct.
func NewWithNodes(labels ...string) *Graph {
	g := New()
	for _, l := range labels {
		g.AddNode(l)
	}
	return g
}

// AddNode adds a node with the given label and returns its id.
// It panics if the label is already present: fixtures and generators are
// expected to produce distinct names, and a silent merge would corrupt the
// graph being described.
func (g *Graph) AddNode(label string) int {
	if _, dup := g.index[label]; dup {
		panic(fmt.Sprintf("graph: duplicate node label %q", label))
	}
	id := len(g.labels)
	g.labels = append(g.labels, label)
	g.index[label] = id
	g.adj = append(g.adj, nil)
	return id
}

// EnsureNode returns the id of the node with the given label, adding it
// first if absent.
func (g *Graph) EnsureNode(label string) int {
	if id, ok := g.index[label]; ok {
		return id
	}
	return g.AddNode(label)
}

// AddEdge adds the undirected edge {u, v}. Adding an existing edge is a
// no-op. It panics on self-loops or out-of-range ids (programmer error).
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on node %d (%s)", u, g.labels[u]))
	}
	if g.adj[u].Contains(v) {
		return
	}
	g.adj[u] = g.adj[u].Add(v)
	g.adj[v] = g.adj[v].Add(u)
	g.m++
}

// AddEdgeLabels adds the edge between the nodes with the given labels,
// creating the nodes if needed.
func (g *Graph) AddEdgeLabels(a, b string) {
	g.AddEdge(g.EnsureNode(a), g.EnsureNode(b))
}

// RemoveEdge removes the edge {u, v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	g.check(u)
	g.check(v)
	if !g.adj[u].Contains(v) {
		return
	}
	g.adj[u] = g.adj[u].Remove(v)
	g.adj[v] = g.adj[v].Remove(u)
	g.m--
}

func (g *Graph) check(v int) {
	if v < 0 || v >= len(g.labels) {
		panic(fmt.Sprintf("graph: node id %d out of range [0, %d)", v, len(g.labels)))
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.labels) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// HasEdge reports whether the edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	return g.adj[u].Contains(v)
}

// Label returns the label of node v.
func (g *Graph) Label(v int) string {
	g.check(v)
	return g.labels[v]
}

// Labels maps a slice of node ids to their labels.
func (g *Graph) Labels(vs []int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = g.Label(v)
	}
	return out
}

// ID returns the id of the node with the given label.
func (g *Graph) ID(label string) (int, bool) {
	id, ok := g.index[label]
	return id, ok
}

// MustID returns the id of the node with the given label, panicking if the
// label is unknown. Intended for fixtures, whose labels are static.
func (g *Graph) MustID(label string) int {
	id, ok := g.index[label]
	if !ok {
		panic(fmt.Sprintf("graph: unknown node label %q", label))
	}
	return id
}

// IDs maps labels to node ids, panicking on unknown labels.
func (g *Graph) IDs(labels ...string) []int {
	out := make([]int, len(labels))
	for i, l := range labels {
		out[i] = g.MustID(l)
	}
	return out
}

// Nodes returns all node ids in increasing order.
func (g *Graph) Nodes() []int {
	out := make([]int, g.N())
	for i := range out {
		out[i] = i
	}
	return out
}

// Neighbors returns the neighbour set of v. The returned set is shared with
// the graph and must not be modified.
func (g *Graph) Neighbors(v int) intset.Set {
	g.check(v)
	return g.adj[v]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// Adj returns the set of nodes adjacent to at least one node of ws
// (the Adj(W) of Definition 1). Nodes of ws may appear in the result when
// they are adjacent to other nodes of ws.
func (g *Graph) Adj(ws []int) intset.Set {
	var out intset.Set
	for _, w := range ws {
		out = out.Union(g.Neighbors(w))
	}
	return out
}

// Edge is an undirected edge; U < V always holds for edges returned by
// Edges.
type Edge struct {
	U, V int
}

// Edges returns all edges with U < V, sorted lexicographically. No explicit
// sort is needed: adjacency sets are sorted and u ascends, so edges come out
// in lexicographic order already.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, Edge{u, v})
			}
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		labels: append([]string(nil), g.labels...),
		index:  make(map[string]int, len(g.index)),
		adj:    make([]intset.Set, len(g.adj)),
		m:      g.m,
	}
	for l, id := range g.index {
		c.index[l] = id
	}
	for v, s := range g.adj {
		c.adj[v] = s.Clone()
	}
	return c
}

// Induced returns the subgraph induced by keep, together with the mapping
// from old ids to new ids. Nodes keep their labels.
func (g *Graph) Induced(keep []int) (*Graph, map[int]int) {
	ks := intset.FromSlice(keep)
	sub := New()
	old2new := make(map[int]int, ks.Len())
	for _, v := range ks {
		old2new[v] = sub.AddNode(g.Label(v))
	}
	for _, v := range ks {
		for _, w := range g.adj[v] {
			if v < w && ks.Contains(w) {
				sub.AddEdge(old2new[v], old2new[w])
			}
		}
	}
	return sub, old2new
}

// String renders the graph compactly for debugging.
func (g *Graph) String() string {
	s := fmt.Sprintf("graph{n=%d m=%d", g.N(), g.M())
	for _, e := range g.Edges() {
		s += fmt.Sprintf(" %s-%s", g.labels[e.U], g.labels[e.V])
	}
	return s + "}"
}
