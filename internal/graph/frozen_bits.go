//chordal:hotpath

package graph

import "math/bits"

// Word-parallel traversal kernels over the frozen view's dense bitset
// adjacency matrix. One BFS wave is computed 64 candidate nodes per machine
// word: the next frontier is the OR of the matrix rows of the current
// frontier, masked by the alive set and the not-yet-visited set —
//
//	next = (OR of matrix[v] for v in frontier) & alive &^ visited
//
// so the cost per wave is O(|frontier| · n/64) word operations instead of
// one branchy CSR walk per arc. Every kernel falls back to the classic CSR
// queue walk when the matrix was not compiled (n > matrixMaxN), with
// identical results; the kernels never write to the Frozen, so they are
// safe for unsynchronized concurrent use with caller-owned scratch.

// BitScratch bundles the reusable buffers of the bit kernels — the visited
// mask, two frontier masks, and the CSR-fallback queue. A BitScratch is
// owned by one goroutine at a time; reusing it across queries (see the
// sync.Pool in internal/steiner) makes the kernels allocation-free in
// steady state.
type BitScratch struct {
	// Visited is the kernel result: after Reachable/ReachesAll it holds
	// every node reached (it aliases the scratch, valid until the next
	// kernel call on this scratch).
	Visited Bits

	frontier, next Bits
	queue          []int32
}

// NewBitScratch returns scratch sized for an n-node graph.
func NewBitScratch(n int) *BitScratch {
	sc := &BitScratch{}
	sc.grow(n)
	return sc
}

// grow ensures the buffers cover n nodes, reusing capacity when possible.
func (sc *BitScratch) grow(n int) {
	sc.Visited = sc.Visited.Grow(n)
	sc.frontier = sc.frontier.Grow(n)
	sc.next = sc.next.Grow(n)
	if cap(sc.queue) < n {
		sc.queue = make([]int32, 0, n)
	}
}

// orRow ORs the adjacency row of v into dst.
func (f *Frozen) orRow(v int, dst Bits) {
	row := f.matrix[v*f.stride : (v+1)*f.stride]
	for i, w := range row {
		dst[i] |= w
	}
}

// expandWave computes one BFS wave: next = neighbors(frontier) & alive &^
// visited, folds it into visited, and reports whether the wave reached any
// new node. alive == nil means all nodes are alive.
func (f *Frozen) expandWave(alive Bits, visited, frontier, next Bits) bool {
	next.Reset()
	for wi, w := range frontier {
		base := wi << 6
		for w != 0 {
			f.orRow(base+bits.TrailingZeros64(w), next)
			w &= w - 1
		}
	}
	any := false
	for i := range next {
		nw := next[i] &^ visited[i]
		if alive != nil {
			nw &= alive[i]
		}
		next[i] = nw
		visited[i] |= nw
		any = any || nw != 0
	}
	return any
}

// Reachable computes the set of nodes reachable from start inside the
// alive subgraph (alive == nil: the whole graph) into sc.Visited and
// returns it. The result aliases the scratch. start itself is included
// whenever it is alive; an excluded start yields the empty mask.
func (f *Frozen) Reachable(start int, alive Bits, sc *BitScratch) Bits {
	f.check(start)
	sc.grow(f.N())
	visited := sc.Visited
	visited.Reset()
	if alive != nil && !alive.Has(start) {
		return visited
	}
	visited.Set(start)
	if f.matrix == nil {
		f.reachCSR(alive, visited, start, sc)
		return visited
	}
	frontier, next := sc.frontier, sc.next
	frontier.Reset()
	frontier.Set(start)
	for f.expandWave(alive, visited, frontier, next) {
		frontier, next = next, frontier
	}
	sc.frontier, sc.next = frontier, next
	return visited
}

// ReachesAll is the early-exit reachability probe: it reports whether
// every node of targets is reachable from start inside the alive subgraph,
// stopping as soon as the remaining targets are covered. targets must not
// alias the scratch. Callers must ensure the targets are alive themselves
// (a dead target is simply unreachable and yields false).
func (f *Frozen) ReachesAll(start int, alive, targets Bits, sc *BitScratch) bool {
	f.check(start)
	sc.grow(f.N())
	visited := sc.Visited
	visited.Reset()
	if alive != nil && !alive.Has(start) {
		return false
	}
	visited.Set(start)
	if targets.SubsetOf(visited) {
		return true
	}
	if f.matrix == nil {
		return f.reachCSRTargets(alive, visited, targets, start, sc)
	}
	frontier, next := sc.frontier, sc.next
	frontier.Reset()
	frontier.Set(start)
	for f.expandWave(alive, visited, frontier, next) {
		if targets.SubsetOf(visited) {
			sc.frontier, sc.next = frontier, next
			return true
		}
		frontier, next = next, frontier
	}
	sc.frontier, sc.next = frontier, next
	return targets.SubsetOf(visited)
}

// reachCSR floods visited from start over the CSR arrays (matrix-less
// fallback), on the scratch stack. The flood order differs from the wave
// kernel but the visited set — the only output — is identical.
func (f *Frozen) reachCSR(alive, visited Bits, start int, sc *BitScratch) {
	queue := append(sc.queue[:0], int32(start))
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range f.neighbors[f.offsets[v]:f.offsets[v+1]] {
			if visited.Has(int(w)) || (alive != nil && !alive.Has(int(w))) {
				continue
			}
			visited.Set(int(w))
			queue = append(queue, w)
		}
	}
	sc.queue = queue[:0]
}

// reachCSRTargets is reachCSR with the targets early exit.
func (f *Frozen) reachCSRTargets(alive, visited, targets Bits, start int, sc *BitScratch) bool {
	queue := append(sc.queue[:0], int32(start))
	covered := false
	for len(queue) > 0 && !covered {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range f.neighbors[f.offsets[v]:f.offsets[v+1]] {
			if visited.Has(int(w)) || (alive != nil && !alive.Has(int(w))) {
				continue
			}
			visited.Set(int(w))
			if targets.SubsetOf(visited) {
				covered = true
				break
			}
			queue = append(queue, w)
		}
	}
	sc.queue = queue[:0]
	return covered || targets.SubsetOf(visited)
}

// BFSDistancesBits fills dist (len ≥ N) with the unweighted distance from
// start to every alive node (-1 for unreachable or dead nodes), running
// the wave kernel level by level: every node first reached in wave k is at
// distance k. alive == nil means all nodes. Allocation-free given
// caller-owned dist and scratch; identical to BFSDistancesAlive.
func (f *Frozen) BFSDistancesBits(start int, alive Bits, dist []int32, sc *BitScratch) {
	f.check(start)
	sc.grow(f.N())
	for i := 0; i < f.N(); i++ {
		dist[i] = -1
	}
	if alive != nil && !alive.Has(start) {
		return
	}
	dist[start] = 0
	visited := sc.Visited
	visited.Reset()
	visited.Set(start)
	if f.matrix == nil {
		f.bfsDistCSR(start, alive, dist, visited, sc)
		return
	}
	frontier, next := sc.frontier, sc.next
	frontier.Reset()
	frontier.Set(start)
	for level := int32(1); ; level++ {
		if !f.expandWave(alive, visited, frontier, next) {
			break
		}
		for wi, w := range next {
			base := wi << 6
			for w != 0 {
				dist[base+bits.TrailingZeros64(w)] = level
				w &= w - 1
			}
		}
		frontier, next = next, frontier
	}
	sc.frontier, sc.next = frontier, next
}

// bfsDistCSR is the matrix-less BFS-distances fallback, reusing the
// scratch queue.
func (f *Frozen) bfsDistCSR(start int, alive Bits, dist []int32, visited Bits, sc *BitScratch) {
	queue := sc.queue[:0]
	queue = append(queue, int32(start))
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range f.neighbors[f.offsets[v]:f.offsets[v+1]] {
			if visited.Has(int(w)) || (alive != nil && !alive.Has(int(w))) {
				continue
			}
			visited.Set(int(w))
			dist[w] = dist[v] + 1
			queue = append(queue, w)
		}
	}
	sc.queue = queue[:0]
}

// ComponentBits computes the mask of the connected component containing
// every seed into sc.Visited, returning (mask, true); when the seeds span
// several components (or seeds is empty) it returns (nil, false). The mask
// aliases the scratch. This is ComponentMask word-parallel: the flood runs
// on the matrix kernel when compiled.
func (f *Frozen) ComponentBits(seeds []int, sc *BitScratch) (Bits, bool) {
	if len(seeds) == 0 {
		return nil, false
	}
	mask := f.Reachable(seeds[0], nil, sc)
	for _, s := range seeds {
		f.check(s)
		if !mask.Has(s) {
			return nil, false
		}
	}
	return mask, true
}
