package graph

import (
	"math/rand"
	"testing"
	"time"
)

// Kernel benchmarks: the same traversal on the matrix-backed wave kernel
// and on the CSR fallback, over a dense random graph. These are part of
// the pinned trajectory set (scripts/bench_trajectory.sh): the matrix/csr
// ratio is the whole point of compiling the adjacency matrix.

// benchGraphs builds a dense n-node graph and returns its matrix-backed
// and matrix-less frozen views.
func benchGraphs(tb testing.TB, n int, p float64) (matrix, csr *Frozen) {
	r := rand.New(rand.NewSource(991))
	g := randomGraph(r, n, p)
	fm := g.Freeze()
	if !fm.HasMatrix() {
		tb.Fatalf("n=%d: expected a compiled matrix", n)
	}
	return fm, csrView(tb, fm)
}

func BenchmarkKernelBFSDistances(b *testing.B) {
	fm, fc := benchGraphs(b, 1024, 0.05)
	dist := make([]int32, fm.N())
	for _, bc := range []struct {
		name string
		f    *Frozen
	}{{"matrix", fm}, {"csr", fc}} {
		b.Run(bc.name, func(b *testing.B) {
			sc := NewBitScratch(bc.f.N())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bc.f.BFSDistancesBits(i%bc.f.N(), nil, dist, sc)
			}
		})
	}
}

func BenchmarkKernelReachesAll(b *testing.B) {
	fm, fc := benchGraphs(b, 1024, 0.05)
	n := fm.N()
	targets := NewBits(n)
	for v := 0; v < n; v += 97 {
		targets.Set(v)
	}
	alive := NewBits(n)
	alive.FillN(n)
	for _, bc := range []struct {
		name string
		f    *Frozen
	}{{"matrix", fm}, {"csr", fc}} {
		b.Run(bc.name, func(b *testing.B) {
			sc := NewBitScratch(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bc.f.ReachesAll(i%n, alive, targets, sc)
			}
		})
	}
}

func BenchmarkKernelComponentBits(b *testing.B) {
	fm, fc := benchGraphs(b, 1024, 0.05)
	seeds := []int{3, 500, 900}
	for _, bc := range []struct {
		name string
		f    *Frozen
	}{{"matrix", fm}, {"csr", fc}} {
		b.Run(bc.name, func(b *testing.B) {
			sc := NewBitScratch(bc.f.N())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bc.f.ComponentBits(seeds, sc)
			}
		})
	}
}

// TestBitKernelSpeedupDense pins the acceptance bar of the word-parallel
// kernels: on a dense matrix-backed scheme the wave kernel must beat the
// CSR walk by at least 2×. The measurement retries a few times before
// failing so a noisy scheduler tick cannot flake the suite; the steady
// ratio on a 1024-node dense graph is far above the bar.
func TestBitKernelSpeedupDense(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	fm, fc := benchGraphs(t, 1024, 0.05)
	n := fm.N()
	dist := make([]int32, n)
	scm, scc := NewBitScratch(n), NewBitScratch(n)
	starts := rand.New(rand.NewSource(17)).Perm(n)[:16]
	matrixOp := func() {
		for _, s := range starts {
			fm.BFSDistancesBits(s, nil, dist, scm)
		}
	}
	csrOp := func() {
		for _, s := range starts {
			fc.BFSDistancesBits(s, nil, dist, scc)
		}
	}
	measure := func(op func()) time.Duration {
		op() // warm caches
		reps := 1
		for {
			start := time.Now()
			for i := 0; i < reps; i++ {
				op()
			}
			if el := time.Since(start); el > 40*time.Millisecond {
				return el / time.Duration(reps)
			}
			reps *= 2
		}
	}
	const attempts = 3
	var tm, tc time.Duration
	for a := 0; a < attempts; a++ {
		tm, tc = measure(matrixOp), measure(csrOp)
		if tc >= 2*tm {
			t.Logf("matrix %v vs csr %v per sweep (%.1fx)", tm, tc, float64(tc)/float64(tm))
			return
		}
	}
	t.Fatalf("matrix kernel not 2x faster than CSR walk: matrix %v, csr %v", tm, tc)
}
