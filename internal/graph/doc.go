// Package graph implements the undirected-graph substrate used throughout
// the library.
//
// A Graph is a finite undirected simple graph (Definition 1 of the paper
// restricted to 2-node edges) over dense integer node ids, each carrying a
// string label. All derived structures of the paper — bipartite graphs,
// hypergraph incidence graphs, primal (Gaifman) graphs, Steiner covers —
// are built on this type.
//
// Node ids are assigned consecutively from 0 by AddNode, so ids can index
// plain slices; labels give stable human-readable names for fixtures and
// CLI output.
package graph
