package graph

import "repro/internal/intset"

// BFSDistances returns the unweighted distance from start to every node,
// with -1 for unreachable nodes.
func (g *Graph) BFSDistances(start int) []int {
	return g.BFSDistancesAlive(start, nil)
}

// BFSDistancesAlive is BFSDistances restricted to nodes v with alive[v]
// (alive == nil means all nodes are alive). start must be alive.
func (g *Graph) BFSDistancesAlive(start int, alive []bool) []int {
	g.check(start)
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if alive != nil && !alive[start] {
		return dist
	}
	dist[start] = 0
	queue := []int{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if alive != nil && !alive[w] {
				continue
			}
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Components returns the connected components as sorted id slices, ordered
// by smallest member.
func (g *Graph) Components() [][]int {
	return g.ComponentsAlive(nil)
}

// ComponentsAlive returns the connected components of the subgraph induced
// by the alive nodes (alive == nil means all).
func (g *Graph) ComponentsAlive(alive []bool) [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] || (alive != nil && !alive[s]) {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for _, w := range g.adj[v] {
				if seen[w] || (alive != nil && !alive[w]) {
					continue
				}
				seen[w] = true
				queue = append(queue, w)
			}
		}
		comps = append(comps, intset.FromSlice(comp))
	}
	return comps
}

// IsConnected reports whether g is connected. The empty graph counts as
// connected.
func (g *Graph) IsConnected() bool {
	return len(g.Components()) <= 1
}

// ConnectedAlive reports whether the subgraph induced by the alive nodes is
// connected (an empty alive set counts as connected).
func (g *Graph) ConnectedAlive(alive []bool) bool {
	return len(g.ComponentsAlive(alive)) <= 1
}

// Covers reports whether the subgraph induced by the alive nodes is a cover
// of the terminal set P per Definition 10: connected and containing every
// terminal. alive == nil means the whole graph.
func (g *Graph) Covers(alive []bool, terminals []int) bool {
	if len(terminals) == 0 {
		return true
	}
	for _, p := range terminals {
		g.check(p)
		if alive != nil && !alive[p] {
			return false
		}
	}
	dist := g.BFSDistancesAlive(terminals[0], alive)
	for _, p := range terminals {
		if dist[p] == -1 {
			return false
		}
	}
	// Connectivity of the whole alive subgraph, not just the terminals,
	// is required by Definition 10.
	n := 0
	for v := 0; v < g.N(); v++ {
		if alive == nil || alive[v] {
			n++
			if dist[v] == -1 {
				return false
			}
		}
	}
	return n > 0
}

// TerminalsConnected reports whether every terminal is alive and all
// terminals lie in one connected component of the alive subgraph. Unlike
// Covers it ignores other alive components — the cover test the
// elimination algorithms of Section 3 need (a removal may strand a pendant
// fragment, which later steps of the pass clean up).
func (g *Graph) TerminalsConnected(alive []bool, terminals []int) bool {
	if len(terminals) == 0 {
		return true
	}
	for _, p := range terminals {
		g.check(p)
		if alive != nil && !alive[p] {
			return false
		}
	}
	dist := g.BFSDistancesAlive(terminals[0], alive)
	for _, p := range terminals {
		if dist[p] == -1 {
			return false
		}
	}
	return true
}

// ComponentContaining returns the node set of the connected component
// containing any node of seeds, or nil if seeds span several components.
func (g *Graph) ComponentContaining(seeds []int) []int {
	if len(seeds) == 0 {
		return nil
	}
	dist := g.BFSDistances(seeds[0])
	for _, s := range seeds {
		if dist[s] == -1 {
			return nil
		}
	}
	var comp []int
	for v := range dist {
		if dist[v] >= 0 {
			comp = append(comp, v)
		}
	}
	return comp
}

// SpanningTreeAlive returns the edges of a BFS spanning tree of the
// subgraph induced by the alive nodes. It returns ok=false if that
// subgraph is not connected. alive == nil means the whole graph.
func (g *Graph) SpanningTreeAlive(alive []bool) (edges []Edge, ok bool) {
	start := -1
	n := 0
	for v := 0; v < g.N(); v++ {
		if alive == nil || alive[v] {
			n++
			if start == -1 {
				start = v
			}
		}
	}
	if n == 0 {
		return nil, true
	}
	seen := make([]bool, g.N())
	seen[start] = true
	queue := []int{start}
	visited := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if seen[w] || (alive != nil && !alive[w]) {
				continue
			}
			seen[w] = true
			visited++
			e := Edge{v, w}
			if w < v {
				e = Edge{w, v}
			}
			edges = append(edges, e)
			queue = append(queue, w)
		}
	}
	if visited != n {
		return nil, false
	}
	return edges, true
}

// IsForest reports whether g has no cycles.
func (g *Graph) IsForest() bool {
	// A graph is a forest iff m = n − (number of components).
	return g.M() == g.N()-len(g.Components())
}

// IsTreeOver reports whether the subgraph induced by the alive nodes is a
// tree containing every terminal.
func (g *Graph) IsTreeOver(alive []bool, terminals []int) bool {
	if !g.Covers(alive, terminals) {
		return false
	}
	n, m := 0, 0
	for v := 0; v < g.N(); v++ {
		if alive != nil && !alive[v] {
			continue
		}
		n++
		for _, w := range g.adj[v] {
			if v < w && (alive == nil || alive[w]) {
				m++
			}
		}
	}
	return m == n-1
}
