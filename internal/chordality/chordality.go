// Package chordality implements the paper's graph-side recognizers:
// chordal graphs (via maximum cardinality search and perfect-elimination
// verification), the three bipartite (m,n)-chordality classes of
// Definition 4 — (4,1), (6,2) and (6,1) — and the asymmetric V1/V2
// chordality and conformity classes of Definition 5.
//
// The bipartite recognizers go through Theorem 1's correspondence with
// hypergraph acyclicity, which yields polynomial tests:
//
//	(4,1)-chordal ⟺ H¹G Berge-acyclic ⟺ G is a forest
//	(6,2)-chordal ⟺ H¹G γ-acyclic
//	(6,1)-chordal ⟺ H¹G β-acyclic
//	V1-chordal    ⟺ G(H¹G) chordal        (Fact (a) in Theorem 1's proof)
//	V1-conformal  ⟺ H¹G conformal         (Fact (b))
//	V1-chordal ∧ V1-conformal ⟺ H¹G α-acyclic
//
// Each fast test is certified against the literal Definition 4/5 checks of
// internal/reference in this package's tests.
package chordality

import (
	"repro/internal/bipartite"
	"repro/internal/graph"
)

// IsChordal reports whether g is chordal ((4,1)-chordal in Definition 4's
// terms: every cycle of length ≥ 4 has a chord). The test runs maximum
// cardinality search and verifies that the reverse visit order is a
// perfect elimination ordering — it is iff g is chordal (Tarjan &
// Yannakakis [12]).
func IsChordal(g *graph.Graph) bool {
	_, ok := PerfectEliminationOrder(g)
	return ok
}

// MCSOrder returns a maximum cardinality search visit order: each step
// visits an unvisited node with the maximum number of visited neighbours
// (ties broken by lowest id, so the order is deterministic).
func MCSOrder(g *graph.Graph) []int {
	n := g.N()
	weight := make([]int, n)
	visited := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		best := -1
		for v := 0; v < n; v++ {
			if visited[v] {
				continue
			}
			if best == -1 || weight[v] > weight[best] {
				best = v
			}
		}
		visited[best] = true
		order = append(order, best)
		for _, w := range g.Neighbors(best) {
			if !visited[w] {
				weight[w]++
			}
		}
	}
	return order
}

// PerfectEliminationOrder returns a perfect elimination ordering of g and
// true if g is chordal, or nil and false otherwise. The ordering lists
// nodes so that each node's later neighbours form a clique.
func PerfectEliminationOrder(g *graph.Graph) ([]int, bool) {
	mcs := MCSOrder(g)
	// Elimination order = reverse MCS visit order.
	n := g.N()
	peo := make([]int, n)
	for i, v := range mcs {
		peo[n-1-i] = v
	}
	pos := make([]int, n)
	for i, v := range peo {
		pos[v] = i
	}
	// Verify: for each v, let w be its earliest later neighbour; all other
	// later neighbours of v must be adjacent to w (Golumbic's linear
	// verification, written quadratically for clarity).
	for _, v := range peo {
		w := -1
		for _, u := range g.Neighbors(v) {
			if pos[u] > pos[v] && (w == -1 || pos[u] < pos[w]) {
				w = u
			}
		}
		if w == -1 {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if pos[u] > pos[v] && u != w && !g.HasEdge(w, u) {
				return nil, false
			}
		}
	}
	return peo, true
}

// Is41Chordal reports whether the bipartite graph is (4,1)-chordal: every
// cycle of length ≥ 4 has a chord. For a bipartite graph this holds iff
// the graph has no cycle at all (Theorem 1(i) remark): a shortest cycle is
// chordless and bipartite graphs have no triangles.
func Is41Chordal(b *bipartite.Graph) bool {
	return b.G().IsForest()
}

// Is61Chordal reports whether the bipartite graph is (6,1)-chordal (every
// cycle of length ≥ 6 has at least one chord — G is "chordal bipartite").
// By Theorem 1(iii) this holds iff H¹G is β-acyclic, which nest-point
// elimination decides in polynomial time.
func Is61Chordal(b *bipartite.Graph) bool {
	return b.HypergraphV1().H.BetaAcyclic()
}

// Is62Chordal reports whether the bipartite graph is (6,2)-chordal (every
// cycle of length ≥ 6 has at least two chords). By Theorem 1(ii) this
// holds iff H¹G is γ-acyclic.
func Is62Chordal(b *bipartite.Graph) bool {
	return b.HypergraphV1().H.GammaAcyclic()
}

// IsV1Chordal reports whether the bipartite graph is V1-chordal
// (Definition 5): for every cycle of length ≥ 8 some V2 node is adjacent
// to two cycle nodes at cycle distance ≥ 4. Equivalent to chordality of
// the primal graph of H¹G (Fact (a) in the proof of Theorem 1).
func IsV1Chordal(b *bipartite.Graph) bool {
	return IsChordal(b.HypergraphV1().H.PrimalGraph())
}

// IsV2Chordal is IsV1Chordal with the sides swapped.
func IsV2Chordal(b *bipartite.Graph) bool {
	return IsV1Chordal(b.Swap())
}

// IsV1Conformal reports whether the bipartite graph is V1-conformal
// (Definition 5): every set of V1 nodes with mutual distance 2 has a
// common V2 neighbour. Equivalent to conformality of H¹G (Fact (b)).
func IsV1Conformal(b *bipartite.Graph) bool {
	return b.HypergraphV1().H.Conformal()
}

// IsV2Conformal is IsV1Conformal with the sides swapped.
func IsV2Conformal(b *bipartite.Graph) bool {
	return IsV1Conformal(b.Swap())
}

// Class aggregates every recognizer verdict for a bipartite graph; it is
// the classification used by core.Connector to dispatch algorithms.
type Class struct {
	Chordal41   bool // G acyclic ⟺ H¹ Berge-acyclic
	Chordal62   bool // ⟺ H¹ γ-acyclic
	Chordal61   bool // ⟺ H¹ β-acyclic
	V1Chordal   bool
	V1Conformal bool
	V2Chordal   bool
	V2Conformal bool
}

// AlphaV1 reports whether H¹G is α-acyclic (V1-chordal ∧ V1-conformal,
// Theorem 1(v)) — the precondition of Algorithm 1 for pseudo-Steiner with
// respect to V2.
func (c Class) AlphaV1() bool { return c.V1Chordal && c.V1Conformal }

// AlphaV2 reports whether H²G is α-acyclic (Theorem 1(vi)).
func (c Class) AlphaV2() bool { return c.V2Chordal && c.V2Conformal }

// Classify runs every recognizer on b.
func Classify(b *bipartite.Graph) Class {
	h1 := b.HypergraphV1().H
	h2 := b.HypergraphV2().H
	return Class{
		Chordal41:   b.G().IsForest(),
		Chordal62:   h1.GammaAcyclic(),
		Chordal61:   h1.BetaAcyclic(),
		V1Chordal:   IsChordal(h1.PrimalGraph()),
		V1Conformal: h1.Conformal(),
		V2Chordal:   IsChordal(h2.PrimalGraph()),
		V2Conformal: h2.Conformal(),
	}
}
