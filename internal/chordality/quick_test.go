package chordality

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

// TestQuickAlphaDefinitionSevenEquivalence checks, property-based, that the
// GYO recognizer agrees with Definition 7's own characterization:
// H is α-acyclic ⟺ G(H) is chordal and H is conformal (Beeri, Fagin,
// Maier, Yannakakis — the definition this paper adopts).
func TestQuickAlphaDefinitionSevenEquivalence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := gen.RandomHypergraph(r, 2+r.Intn(5), 1+r.Intn(5), 4)
		def7 := IsChordal(h.PrimalGraph()) && h.Conformal()
		return h.AlphaAcyclic() == def7
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestQuickPEOExistenceMatchesChordality checks that
// PerfectEliminationOrder succeeds exactly on chordal graphs, using
// triangulated random graphs as positives and raw random graphs as a mix.
func TestQuickPEOExistenceMatchesChordality(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		if seed%2 == 0 {
			g := gen.RandomChordalGraph(r, 2+r.Intn(8), 1+r.Intn(4))
			_, ok := PerfectEliminationOrder(g)
			return ok
		}
		g := gen.RandomGraph(r, 3+r.Intn(7), r.Float64())
		_, ok := PerfectEliminationOrder(g)
		// Cross-validate against MCS-free brute force: a graph is chordal
		// iff every cycle ≥ 4 has a chord; reuse the library's own
		// recognizer only for shape (both must agree with each other).
		return ok == IsChordal(g)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestQuickClassImplications checks the taxonomy's internal implications on
// arbitrary random bipartite graphs: (4,1) ⇒ (6,2) ⇒ (6,1) ⇒ both-side α.
func TestQuickClassImplications(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cl := Classify(gen.RandomBipartite(r, 2+r.Intn(4), 2+r.Intn(4), r.Float64()))
		if cl.Chordal41 && !cl.Chordal62 {
			return false
		}
		if cl.Chordal62 && !cl.Chordal61 {
			return false
		}
		if cl.Chordal61 && !(cl.AlphaV1() && cl.AlphaV2()) {
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestQuickSwapSymmetry checks that V1 recognizers on the swapped graph
// equal V2 recognizers on the original (the "replace V1 with V2" remark
// before Theorem 2).
func TestQuickSwapSymmetry(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := gen.RandomBipartite(r, 2+r.Intn(4), 2+r.Intn(4), r.Float64())
		sw := b.Swap()
		return IsV1Chordal(sw) == IsV2Chordal(b) &&
			IsV1Conformal(sw) == IsV2Conformal(b) &&
			IsV2Chordal(sw) == IsV1Chordal(b)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}
