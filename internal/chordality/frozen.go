package chordality

import (
	"repro/internal/bipartite"
	"repro/internal/graph"
)

// Frozen-path recognizers: the same taxonomy as chordality.go computed off
// compiled CSR views. MCS and the perfect-elimination verification iterate
// flat adjacency slices and use the frozen bitset matrix for the O(1)
// HasEdge probes that dominate the verification; ClassifyFrozen builds both
// Definition 2 hypergraphs straight from the CSR arrays. The verdicts are
// identical to the mutable path (asserted by frozen_test.go).

// IsChordalFrozen is IsChordal on a frozen graph.
func IsChordalFrozen(f *graph.Frozen) bool {
	_, ok := PerfectEliminationOrderFrozen(f)
	return ok
}

// MCSOrderFrozen is MCSOrder on a frozen graph: same visit order (maximum
// visited-neighbour count, ties to the lowest id).
func MCSOrderFrozen(f *graph.Frozen) []int {
	n := f.N()
	weight := make([]int32, n)
	visited := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		best := -1
		for v := 0; v < n; v++ {
			if visited[v] {
				continue
			}
			if best == -1 || weight[v] > weight[best] {
				best = v
			}
		}
		visited[best] = true
		order = append(order, best)
		for _, w := range f.Neighbors(best) {
			if !visited[w] {
				weight[w]++
			}
		}
	}
	return order
}

// PerfectEliminationOrderFrozen is PerfectEliminationOrder on a frozen
// graph: it returns the reverse MCS order and whether it is a perfect
// elimination ordering (iff the graph is chordal).
func PerfectEliminationOrderFrozen(f *graph.Frozen) ([]int, bool) {
	mcs := MCSOrderFrozen(f)
	n := f.N()
	peo := make([]int, n)
	for i, v := range mcs {
		peo[n-1-i] = v
	}
	pos := make([]int32, n)
	for i, v := range peo {
		pos[v] = int32(i)
	}
	for _, v := range peo {
		w := -1
		for _, u := range f.Neighbors(v) {
			if pos[u] > pos[v] && (w == -1 || pos[u] < pos[w]) {
				w = int(u)
			}
		}
		if w == -1 {
			continue
		}
		for _, u := range f.Neighbors(v) {
			if pos[u] > pos[v] && int(u) != w && !f.HasEdge(w, int(u)) {
				return nil, false
			}
		}
	}
	return peo, true
}

// ClassifyFrozen runs every recognizer on the frozen scheme. Verdicts are
// identical to Classify on the graph the view was frozen from.
func ClassifyFrozen(fb *bipartite.Frozen) Class {
	h1 := fb.HypergraphV1().H
	h2 := fb.HypergraphV2().H
	return Class{
		Chordal41:   fb.G().IsForest(),
		Chordal62:   h1.GammaAcyclic(),
		Chordal61:   h1.BetaAcyclic(),
		V1Chordal:   IsChordalFrozen(h1.PrimalGraph().Freeze()),
		V1Conformal: h1.Conformal(),
		V2Chordal:   IsChordalFrozen(h2.PrimalGraph().Freeze()),
		V2Conformal: h2.Conformal(),
	}
}
