package chordality

import (
	"math/rand"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/reference"
)

func completeGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func cycleGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func TestIsChordalBasics(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"K5", completeGraph(5), true},
		{"C3", cycleGraph(3), true},
		{"C4", cycleGraph(4), false},
		{"C6", cycleGraph(6), false},
		{"empty", graph.New(), true},
		{"single", graph.NewWithNodes("a"), true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsChordal(tc.g); got != tc.want {
				t.Errorf("IsChordal = %v, want %v", got, tc.want)
			}
		})
	}
	// C4 plus a chord becomes chordal.
	g := cycleGraph(4)
	g.AddEdge(0, 2)
	if !IsChordal(g) {
		t.Error("C4+chord should be chordal")
	}
}

func TestIsChordalAgainstReference(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for iter := 0; iter < 400; iter++ {
		g := randomGraph(r, 3+r.Intn(7), r.Float64())
		if got, want := IsChordal(g), reference.IsChordalGraph(g); got != want {
			t.Fatalf("chordal mismatch on %v: fast=%v ref=%v", g, got, want)
		}
	}
}

func TestPEOIsValid(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for iter := 0; iter < 200; iter++ {
		g := randomGraph(r, 3+r.Intn(7), r.Float64())
		peo, ok := PerfectEliminationOrder(g)
		if !ok {
			continue
		}
		pos := make([]int, g.N())
		for i, v := range peo {
			pos[v] = i
		}
		for _, v := range peo {
			var later []int
			for _, u := range g.Neighbors(v) {
				if pos[u] > pos[v] {
					later = append(later, u)
				}
			}
			for i := 0; i < len(later); i++ {
				for j := i + 1; j < len(later); j++ {
					if !g.HasEdge(later[i], later[j]) {
						t.Fatalf("PEO invalid on %v: later nbrs of %d not a clique", g, v)
					}
				}
			}
		}
	}
}

func randomGraph(r *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(string(rune('a' + i)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// randomBipartite builds a random bipartite graph with n1 + n2 nodes.
func randomBipartite(r *rand.Rand, n1, n2 int, p float64) *bipartite.Graph {
	b := bipartite.New()
	var v1, v2 []int
	for i := 0; i < n1; i++ {
		v1 = append(v1, b.AddV1(string(rune('a'+i))))
	}
	for i := 0; i < n2; i++ {
		v2 = append(v2, b.AddV2(string(rune('t'+i))))
	}
	for _, u := range v1 {
		for _, w := range v2 {
			if r.Float64() < p {
				b.AddEdge(u, w)
			}
		}
	}
	return b
}

// bipartiteCycle returns the chordless cycle with n1 nodes per side.
func bipartiteCycle(k int) *bipartite.Graph {
	b := bipartite.New()
	var ids []int
	for i := 0; i < k; i++ {
		ids = append(ids, b.AddV1(string(rune('a'+i))))
		ids = append(ids, b.AddV2(string(rune('p'+i))))
	}
	for i := 0; i < 2*k; i++ {
		b.AddEdge(ids[i], ids[(i+1)%(2*k)])
	}
	return b
}

// fig3a is a tree: (4,1)-chordal, Berge-acyclic side (paper Fig 3a/4a).
func fig3a() *bipartite.Graph {
	b := bipartite.New()
	a := b.AddV1("A")
	c := b.AddV1("C")
	bb := b.AddV1("B")
	e := b.AddV1("E")
	d := b.AddV1("D")
	f := b.AddV1("F")
	w1 := b.AddV2("1")
	w2 := b.AddV2("2")
	w3 := b.AddV2("3")
	b.AddEdge(a, w1)
	b.AddEdge(c, w1)
	b.AddEdge(bb, w2)
	b.AddEdge(e, w2)
	b.AddEdge(c, w2)
	b.AddEdge(c, w3)
	b.AddEdge(f, w3)
	b.AddEdge(d, w2)
	return b
}

// fig3b is a 6-cycle with two chords: (6,2)-chordal but cyclic
// (paper Fig 3b/4b, γ-acyclic hypergraph side).
func fig3b() *bipartite.Graph {
	b := bipartiteCycle(3)
	// Cycle a-p-b-q-c-r; add chords p-c and q-a (V2-V1 arcs): every 6-cycle
	// then has ≥ 2 chords.
	b.AddEdgeLabels("p", "c")
	b.AddEdgeLabels("q", "a")
	return b
}

// fig3c is a 6-cycle with exactly one chord: (6,1)- but not (6,2)-chordal
// (paper Fig 3c/4c, β-acyclic hypergraph side).
func fig3c() *bipartite.Graph {
	b := bipartiteCycle(3)
	b.AddEdgeLabels("p", "c")
	return b
}

// fig5 is the paper's Fig 5 (reconstructed): V1-chordal, V1-conformal and
// V2-chordal, V2-conformal but not (6,1)-chordal. V1 = {v1,v2,v3,vs},
// V2 = {w1,w2,w3,ws}; a chordless 6-cycle v1-w1-v2-w2-v3-w3 plus hubs ws
// (adjacent to v1,v2,v3) and vs (adjacent to w1,w2,w3,ws).
func fig5() *bipartite.Graph {
	b := bipartite.New()
	v1 := b.AddV1("v1")
	v2 := b.AddV1("v2")
	v3 := b.AddV1("v3")
	vs := b.AddV1("vs")
	w1 := b.AddV2("w1")
	w2 := b.AddV2("w2")
	w3 := b.AddV2("w3")
	ws := b.AddV2("ws")
	b.AddEdge(v1, w1)
	b.AddEdge(v2, w1)
	b.AddEdge(v2, w2)
	b.AddEdge(v3, w2)
	b.AddEdge(v3, w3)
	b.AddEdge(v1, w3)
	b.AddEdge(v1, ws)
	b.AddEdge(v2, ws)
	b.AddEdge(v3, ws)
	b.AddEdge(vs, w1)
	b.AddEdge(vs, w2)
	b.AddEdge(vs, w3)
	b.AddEdge(vs, ws)
	return b
}

func TestFig3Ladder(t *testing.T) {
	a, bb, c := fig3a(), fig3b(), fig3c()
	if !Is41Chordal(a) || !Is62Chordal(a) || !Is61Chordal(a) {
		t.Error("fig3a should satisfy all chordality levels")
	}
	if Is41Chordal(bb) {
		t.Error("fig3b is cyclic, not (4,1)-chordal")
	}
	if !Is62Chordal(bb) || !Is61Chordal(bb) {
		t.Error("fig3b should be (6,2)- and (6,1)-chordal")
	}
	if Is62Chordal(c) {
		t.Error("fig3c should not be (6,2)-chordal")
	}
	if !Is61Chordal(c) {
		t.Error("fig3c should be (6,1)-chordal")
	}
	if Is61Chordal(bipartiteCycle(3)) {
		t.Error("chordless C6 should not be (6,1)-chordal")
	}
}

func TestFig5ProperContainment(t *testing.T) {
	b := fig5()
	cl := Classify(b)
	if !cl.V1Chordal || !cl.V1Conformal {
		t.Errorf("fig5 should be V1-chordal and V1-conformal: %+v", cl)
	}
	if !cl.V2Chordal || !cl.V2Conformal {
		t.Errorf("fig5 should be V2-chordal and V2-conformal: %+v", cl)
	}
	if cl.Chordal61 {
		t.Error("fig5 should NOT be (6,1)-chordal")
	}
	if !cl.AlphaV1() || !cl.AlphaV2() {
		t.Error("AlphaV1/AlphaV2 should hold on fig5")
	}
}

func TestCorollary2Containment(t *testing.T) {
	// (6,1)-chordal ⇒ Vi-chordal ∧ Vi-conformal for i = 1, 2, on random
	// bipartite graphs (Corollary 2).
	r := rand.New(rand.NewSource(31))
	seen61 := 0
	for iter := 0; iter < 600; iter++ {
		b := randomBipartite(r, 2+r.Intn(4), 2+r.Intn(4), r.Float64())
		cl := Classify(b)
		if cl.Chordal41 && !cl.Chordal62 {
			t.Fatalf("(4,1) ⊄ (6,2) on %v", b.G())
		}
		if cl.Chordal62 && !cl.Chordal61 {
			t.Fatalf("(6,2) ⊄ (6,1) on %v", b.G())
		}
		if cl.Chordal61 {
			seen61++
			if !cl.AlphaV1() || !cl.AlphaV2() {
				t.Fatalf("Corollary 2 violated on %v: %+v", b.G(), cl)
			}
		}
	}
	if seen61 == 0 {
		t.Fatal("no (6,1)-chordal samples; generator broken")
	}
}

func TestTheorem1AgainstReference(t *testing.T) {
	// The fast recognizers (via Theorem 1's hypergraph route) must agree
	// with the literal Definition 4/5 checks on random bipartite graphs.
	r := rand.New(rand.NewSource(37))
	for iter := 0; iter < 300; iter++ {
		b := randomBipartite(r, 2+r.Intn(4), 2+r.Intn(4), r.Float64())
		g := b.G()
		if got, want := Is41Chordal(b), reference.IsMNChordal(g, 4, 1); got != want {
			t.Fatalf("(4,1) mismatch on %v: fast=%v ref=%v", g, got, want)
		}
		if got, want := Is61Chordal(b), reference.IsMNChordal(g, 6, 1); got != want {
			t.Fatalf("(6,1) mismatch on %v: fast=%v ref=%v", g, got, want)
		}
		if got, want := Is62Chordal(b), reference.IsMNChordal(g, 6, 2); got != want {
			t.Fatalf("(6,2) mismatch on %v: fast=%v ref=%v", g, got, want)
		}
		if got, want := IsV1Chordal(b), reference.IsV1Chordal(b); got != want {
			t.Fatalf("V1-chordal mismatch on %v: fast=%v ref=%v", g, got, want)
		}
		if got, want := IsV1Conformal(b), reference.IsV1Conformal(b); got != want {
			t.Fatalf("V1-conformal mismatch on %v: fast=%v ref=%v", g, got, want)
		}
		if got, want := IsV2Chordal(b), reference.IsV2Chordal(b); got != want {
			t.Fatalf("V2-chordal mismatch on %v: fast=%v ref=%v", g, got, want)
		}
		if got, want := IsV2Conformal(b), reference.IsV2Conformal(b); got != want {
			t.Fatalf("V2-conformal mismatch on %v: fast=%v ref=%v", g, got, want)
		}
	}
}

func TestTheorem1Statements(t *testing.T) {
	// Statements (i)–(vi) of Theorem 1 as executable assertions on random
	// bipartite graphs.
	r := rand.New(rand.NewSource(41))
	for iter := 0; iter < 300; iter++ {
		b := randomBipartite(r, 2+r.Intn(4), 2+r.Intn(4), r.Float64())
		h1 := b.HypergraphV1().H
		h2 := b.HypergraphV2().H
		if Is41Chordal(b) != h1.BergeAcyclic() {
			t.Fatalf("(i) fails on %v", b.G())
		}
		if Is62Chordal(b) != h1.GammaAcyclic() {
			t.Fatalf("(ii) fails on %v", b.G())
		}
		if Is61Chordal(b) != h1.BetaAcyclic() {
			t.Fatalf("(iii) fails on %v", b.G())
		}
		// (iv): same statements for H².
		sw := b.Swap()
		if Is41Chordal(sw) != h2.BergeAcyclic() || Is62Chordal(sw) != h2.GammaAcyclic() || Is61Chordal(sw) != h2.BetaAcyclic() {
			t.Fatalf("(iv) fails on %v", b.G())
		}
		// (v)/(vi): Vi-chordal ∧ Vi-conformal ⟺ Hⁱ α-acyclic.
		if (IsV1Chordal(b) && IsV1Conformal(b)) != h1.AlphaAcyclic() {
			t.Fatalf("(v) fails on %v", b.G())
		}
		if (IsV2Chordal(b) && IsV2Conformal(b)) != h2.AlphaAcyclic() {
			t.Fatalf("(vi) fails on %v", b.G())
		}
	}
}

func TestMCSOrderIsPermutation(t *testing.T) {
	g := completeGraph(6)
	order := MCSOrder(g)
	seen := map[int]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatal("MCS repeats a node")
		}
		seen[v] = true
	}
	if len(order) != 6 {
		t.Fatal("MCS order wrong length")
	}
}

func TestClassifyOnFig3(t *testing.T) {
	cl := Classify(fig3a())
	if !cl.Chordal41 || !cl.Chordal62 || !cl.Chordal61 || !cl.AlphaV1() || !cl.AlphaV2() {
		t.Errorf("fig3a classification: %+v", cl)
	}
	cl = Classify(fig3c())
	if cl.Chordal41 || cl.Chordal62 || !cl.Chordal61 {
		t.Errorf("fig3c classification: %+v", cl)
	}
}
