package chordality

import (
	"math/rand"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/gen"
)

// TestClassifyFrozenMatchesMutable is the classification half of the
// frozen-path equivalence contract: every recognizer verdict must be
// identical between Classify and ClassifyFrozen.
func TestClassifyFrozenMatchesMutable(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	var cases []*bipartite.Graph
	for trial := 0; trial < 12; trial++ {
		cases = append(cases, gen.RandomBipartite(r, 2+r.Intn(9), 2+r.Intn(9), 0.3))
	}
	for m := 4; m <= 12; m += 4 {
		cases = append(cases,
			bipartite.FromHypergraph(gen.AlphaAcyclic(r, m, 3, 2)).B,
			bipartite.FromHypergraph(gen.GammaAcyclic(r, m, 3, 2)).B,
			bipartite.FromHypergraph(gen.BergeForest(r, m, 3)).B,
		)
	}
	cases = append(cases, gen.RandomTree(r, 9), gen.CompleteBipartite(3, 4), gen.GridBipartite(3, 3))
	for i, b := range cases {
		want := Classify(b)
		got := ClassifyFrozen(b.Freeze())
		if got != want {
			t.Errorf("case %d: ClassifyFrozen = %+v, Classify = %+v", i, got, want)
		}
	}
}

func TestFrozenPEOMatchesMutable(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		var g = gen.RandomGraph(r, 3+r.Intn(20), 0.3)
		if trial%3 == 0 {
			g = gen.RandomChordalGraph(r, 3+r.Intn(20), 3)
		}
		f := g.Freeze()
		wantOrder, wantOK := PerfectEliminationOrder(g)
		gotOrder, gotOK := PerfectEliminationOrderFrozen(f)
		if wantOK != gotOK {
			t.Fatalf("trial %d: chordality verdict differs (frozen %v, mutable %v)", trial, gotOK, wantOK)
		}
		if wantOK {
			for i := range wantOrder {
				if wantOrder[i] != gotOrder[i] {
					t.Fatalf("trial %d: PEO differs at %d", trial, i)
				}
			}
		}
		mcsWant, mcsGot := MCSOrder(g), MCSOrderFrozen(f)
		for i := range mcsWant {
			if mcsWant[i] != mcsGot[i] {
				t.Fatalf("trial %d: MCS order differs at %d", trial, i)
			}
		}
		if IsChordalFrozen(f) != IsChordal(g) {
			t.Fatalf("trial %d: IsChordal differs", trial)
		}
	}
}
