package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/intset"
)

func TestSingleShardIsExactLRU(t *testing.T) {
	c := New[int](2, 1)
	if c.Shards() != 1 || c.Capacity() != 2 || c.PerShard() != 2 {
		t.Fatalf("geometry: shards=%d capacity=%d perShard=%d", c.Shards(), c.Capacity(), c.PerShard())
	}
	add := func(k string, v int) {
		c.GetOrAdd(k, func() int { return v })
	}
	add("a", 1)
	add("b", 2)
	if _, hit := c.GetOrAdd("a", func() int { return -1 }); !hit {
		t.Fatal("a should be resident")
	}
	add("c", 3) // capacity 2: evicts b, the least recently used, not a
	if _, hit := c.GetOrAdd("b", func() int { return -2 }); hit {
		t.Fatal("b should have been the LRU victim")
	}
	// The b probe above re-inserted b, evicting a (LRU after the c insert).
	if _, hit := c.GetOrAdd("c", func() int { return -3 }); !hit {
		t.Fatal("c should have survived")
	}
	if got := c.Evictions(); got != 2 {
		t.Fatalf("evictions = %d, want 2 (b then a)", got)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
}

func TestGetOrAddDedupAndIdentity(t *testing.T) {
	c := New[*int](8, 4)
	calls := 0
	first, hit := c.GetOrAdd("k", func() *int { calls++; return new(int) })
	if hit || calls != 1 {
		t.Fatalf("first lookup: hit=%v calls=%d", hit, calls)
	}
	again, hit := c.GetOrAdd("k", func() *int { calls++; return new(int) })
	if !hit || calls != 1 || again != first {
		t.Fatalf("second lookup must return the first value without calling newf")
	}
}

func TestRemoveIsConditional(t *testing.T) {
	c := New[int](4, 1)
	c.GetOrAdd("k", func() int { return 1 })
	if c.Remove("k", 2) {
		t.Fatal("Remove with a stale value must be a no-op")
	}
	if _, hit := c.GetOrAdd("k", func() int { return -1 }); !hit {
		t.Fatal("entry should have survived the stale Remove")
	}
	if !c.Remove("k", 1) {
		t.Fatal("Remove with the current value must drop the entry")
	}
	if _, hit := c.GetOrAdd("k", func() int { return 3 }); hit {
		t.Fatal("entry should be gone")
	}
	if c.Evictions() != 0 {
		t.Fatal("Remove must not count as a capacity eviction")
	}
}

// TestCapacityRounding pins the minimum-1-entry-per-shard rule: capacity
// is split by ceiling division and never rounds a shard down to zero, so
// the effective capacity is ≥ the request and every shard can hold at
// least one entry.
func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct {
		capacity, shards         int
		wantShards, wantPerShard int
	}{
		{1024, 1, 1, 1024},
		{1024, 64, 64, 16},
		{100, 64, 64, 2}, // ceil(100/64) = 2: rounds up, not down
		{1, 8, 8, 1},     // the floor: never 0 per shard
		{1, 64, 64, 1},   // effective capacity inflates to 64
		{0, 4, 4, 1},     // nonsense capacity clamps to 1
		{10, 3, 4, 3},    // shards round up to a power of two
		{10, 0, 0, 0},    // default shard count (checked below)
		{7, 5, 8, 1},     // ceil(7/8) = 1
	} {
		c := New[int](tc.capacity, tc.shards)
		if tc.shards <= 0 {
			if c.Shards() != DefaultShards() {
				t.Errorf("New(%d,%d): shards = %d, want default %d", tc.capacity, tc.shards, c.Shards(), DefaultShards())
			}
			continue
		}
		if c.Shards() != tc.wantShards || c.PerShard() != tc.wantPerShard {
			t.Errorf("New(%d,%d): shards=%d perShard=%d, want %d/%d",
				tc.capacity, tc.shards, c.Shards(), c.PerShard(), tc.wantShards, tc.wantPerShard)
		}
		if tc.capacity >= 1 && c.Capacity() < tc.capacity {
			t.Errorf("New(%d,%d): effective capacity %d silently below request", tc.capacity, tc.shards, c.Capacity())
		}
		// Every shard must accept at least one entry.
		for i := 0; i < c.Shards()*4; i++ {
			c.GetOrAdd(fmt.Sprintf("probe-%d", i), func() int { return i })
		}
		if c.Len() == 0 {
			t.Errorf("New(%d,%d): cache cannot hold anything", tc.capacity, tc.shards)
		}
	}
}

func TestCeilPow2(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {64, 64}, {65, 128}} {
		if got := ceilPow2(tc[0]); got != tc[1] {
			t.Errorf("ceilPow2(%d) = %d, want %d", tc[0], got, tc[1])
		}
	}
	if d := DefaultShards(); d < 1 || d > MaxDefaultShards || d&(d-1) != 0 {
		t.Errorf("DefaultShards() = %d: want a power of two in [1,%d]", d, MaxDefaultShards)
	}
}

// TestShardDistribution feeds the cache keys shaped like the Service's
// real ones (canonical intset fingerprints of random terminal sets) and
// requires no shard to hold more than 4× the mean occupancy — a skew
// bound, not a perfection bound, that catches a broken hash or mask.
func TestShardDistribution(t *testing.T) {
	const (
		shards = 16
		keys   = 8192
	)
	c := New[int](shards*1024, shards) // roomy: no evictions distort occupancy
	r := rand.New(rand.NewSource(1985))
	seen := make(map[string]bool, keys)
	for len(seen) < keys {
		terms := make([]int, 1+r.Intn(4))
		for i := range terms {
			terms[i] = r.Intn(1 << 20)
		}
		key := intset.FromSlice(terms).Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		c.GetOrAdd(key, func() int { return 0 })
	}
	occ := c.Occupancy()
	if len(occ) != shards {
		t.Fatalf("occupancy has %d shards, want %d", len(occ), shards)
	}
	total, max := 0, 0
	for _, n := range occ {
		total += n
		if n > max {
			max = n
		}
	}
	if total != keys {
		t.Fatalf("occupancy sums to %d, want %d", total, keys)
	}
	mean := float64(total) / float64(shards)
	if float64(max) > 4*mean {
		t.Fatalf("shard skew: max occupancy %d > 4× mean %.1f (occupancy %v)", max, mean, occ)
	}
}

// TestConcurrentGetOrAdd hammers one hot key and many cold keys from
// every shard at once; under -race it checks the locking, and the hot-key
// dedup invariant (exactly one newf per absent key) is asserted directly.
func TestConcurrentGetOrAdd(t *testing.T) {
	c := New[*int](256, 8)
	const goroutines = 16
	var hotCalls int
	hot := func() *int { hotCalls++; return new(int) } // guarded by the shard lock
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.GetOrAdd("hot", hot)
				c.GetOrAdd(fmt.Sprintf("cold-%d-%d", g, i), func() *int { return new(int) })
			}
		}(g)
	}
	wg.Wait()
	if hotCalls != 1 {
		t.Fatalf("hot key computed %d times, want 1", hotCalls)
	}
	occ := c.Occupancy()
	sum := 0
	for _, n := range occ {
		sum += n
		if n > c.PerShard() {
			t.Fatalf("shard over capacity: %d > %d", n, c.PerShard())
		}
	}
	if sum > c.Capacity() {
		t.Fatalf("resident %d over effective capacity %d", sum, c.Capacity())
	}
}

// TestShardStatsSumToTotals drives mixed traffic — repeats for hits,
// capacity pressure for evictions, a conditional Remove — and asserts the
// per-shard counters are an exact decomposition of the cache-wide view:
// shard misses/evictions/entries sum to the totals and Removes stay out
// of the eviction count at both levels.
func TestShardStatsSumToTotals(t *testing.T) {
	c := New[int](8, 4)
	wantHits, wantMisses := uint64(0), uint64(0)
	for round := 0; round < 3; round++ {
		for i := 0; i < 32; i++ {
			_, hit := c.GetOrAdd(fmt.Sprintf("key-%d", i), func() int { return i })
			if hit {
				wantHits++
			} else {
				wantMisses++
			}
		}
	}
	// A successful conditional Remove must not count as an eviction.
	if v, hit := c.GetOrAdd("victim", func() int { return -1 }); hit {
		t.Fatal("victim unexpectedly present")
	} else if !c.Remove("victim", v) {
		t.Fatal("conditional Remove of fresh entry failed")
	}
	wantMisses++

	stats := c.ShardStats()
	if len(stats) != c.Shards() {
		t.Fatalf("ShardStats has %d slots for %d shards", len(stats), c.Shards())
	}
	var hits, misses, evictions uint64
	entries := 0
	for _, s := range stats {
		hits += s.Hits
		misses += s.Misses
		evictions += s.Evictions
		entries += s.Entries
	}
	if hits != wantHits || misses != wantMisses {
		t.Fatalf("shard sums: %d hits / %d misses, want %d / %d", hits, misses, wantHits, wantMisses)
	}
	if evictions != c.Evictions() {
		t.Fatalf("shard evictions sum to %d, Evictions() = %d", evictions, c.Evictions())
	}
	if evictions == 0 {
		t.Fatal("expected capacity pressure to evict (32 keys into capacity 8)")
	}
	if entries != c.Len() {
		t.Fatalf("shard entries sum to %d, Len() = %d", entries, c.Len())
	}
}
