package cache

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxDefaultShards caps DefaultShards: beyond 64 ways the lock is no
// longer the bottleneck and the per-shard capacity floor starts inflating
// small caches.
const MaxDefaultShards = 64

// DefaultShards is the shard count used when the caller does not choose
// one: GOMAXPROCS rounded up to a power of two, capped at
// MaxDefaultShards. One shard per runnable goroutine is enough to make
// lock collisions rare without fragmenting the capacity of small caches.
func DefaultShards() int {
	n := ceilPow2(runtime.GOMAXPROCS(0))
	if n > MaxDefaultShards {
		n = MaxDefaultShards
	}
	return n
}

// ceilPow2 rounds n up to the nearest power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Cache is a sharded string-keyed map with a lock-free hit path: each
// shard publishes an immutable index through an atomic pointer, so reads
// never take the shard mutex; writers copy, mutate and re-publish under
// it. Recency is tracked by sampled atomic stamps against a per-shard tick
// rather than a strict LRU list, and eviction weighs recency against the
// recorded cost of recomputing the entry. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Cache[V comparable] struct {
	mask     uint64
	perShard int
	// evictions counts entries dropped by capacity pressure across all
	// shards; atomic so Evictions never takes a shard lock.
	evictions atomic.Uint64
	// lockAcquires counts every shard-mutex acquisition; tests subtract
	// snapshots around a hit-only workload to prove the read path is
	// lock-free.
	lockAcquires atomic.Uint64
	shards       []shard[V]
}

// sampleEvery is the hit-path recency sampling period: every Nth hit on a
// shard advances the shard's tick. Hits inside one window share a stamp
// and tie-break on insertion order, which is as much ordering as eviction
// needs.
const sampleEvery = 16

// shard is one independently locked slice of the key space. The index —
// an immutable map republished wholesale on every mutation — is the only
// structure readers touch; mu serializes writers (insert, evict, remove,
// cost fills). Counters are atomics so the hit path and the stats
// methods never need the lock either; the miss-path counters are only
// written under mu but are read lock-free by ShardStats. The trailing
// pad keeps neighbouring shards' hot fields off one cache line.
type shard[V comparable] struct {
	idx atomic.Pointer[map[string]*entry[V]]
	mu  sync.Mutex
	// tick is the shard's recency clock. Every insert advances it (so an
	// insert always outranks everything older), and the hit path advances
	// it once per sampleEvery hits — enough resolution for eviction
	// ordering without a read-modify-write per hit. It is per shard, not
	// cache-global: eviction only ever compares entries within one shard,
	// and a global clock would make every hit on every shard load (and
	// periodically write) one contended cache line.
	tick        atomic.Int64
	hits        atomic.Uint64
	misses      atomic.Uint64
	evictions   atomic.Uint64
	warmFills   atomic.Uint64
	costAdded   atomic.Uint64
	costEvicted atomic.Uint64
	costRemoved atomic.Uint64
	costSaved   atomic.Uint64
	_           [64]byte
}

// entry is one resident key/value pair. key, val and seq are immutable
// after insert; stamp and cost are atomics because the lock-free hit
// path refreshes recency (and reads cost) while writers scan for
// eviction victims.
type entry[V comparable] struct {
	key   string
	val   V
	seq   int64 // insertion tick: eviction tie-break, oldest first
	stamp atomic.Int64
	cost  atomic.Int64 // recompute cost in nanoseconds (0 = unrecorded)
}

// New returns a Cache holding at least capacity entries split over the
// given number of shards. shards is rounded up to a power of two;
// non-positive selects DefaultShards. capacity is clamped to a minimum of
// one entry and divided across shards by ceiling division with a floor of
// one entry per shard (see the package comment for the rounding rule), so
// the effective Capacity may exceed the request but never falls below it.
func New[V comparable](capacity, shards int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	if shards <= 0 {
		shards = DefaultShards()
	}
	shards = ceilPow2(shards)
	perShard := (capacity + shards - 1) / shards
	c := &Cache[V]{
		mask:     uint64(shards - 1),
		perShard: perShard,
		shards:   make([]shard[V], shards),
	}
	empty := make(map[string]*entry[V])
	for i := range c.shards {
		c.shards[i].idx.Store(&empty)
	}
	return c
}

// FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// shardFor hashes key (FNV-1a, 64-bit) and masks it onto a shard.
func (c *Cache[V]) shardFor(key string) *shard[V] {
	return &c.shards[c.ShardIndex(key)]
}

// ShardIndex returns the index of the shard key hashes to, so callers
// (trace span annotations, shard-level diagnostics) can attribute a key
// to the same shard the cache itself uses. It never allocates.
func (c *Cache[V]) ShardIndex(key string) int {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return int(h & c.mask)
}

// lock acquires a shard's mutex through the instrumentation counter.
// Every mutation path must come through here — the lock-free-hit test
// asserts LockAcquisitions stays flat across a hit-only workload, which
// is only meaningful if no Lock call bypasses the counter.
func (c *Cache[V]) lock(s *shard[V]) {
	c.lockAcquires.Add(1)
	s.mu.Lock()
}

// noteHit records a successful lock-free lookup: bump the shard hit
// counter, advance the shard tick on the sampling period, and refresh
// the entry's recency stamp to strictly above every already-resident
// entry's insert stamp in the current window. The stamp store is a plain
// atomic write (no read-modify-write) and is skipped when the stamp is
// already current, so concurrent hits on one hot entry mostly leave its
// cache line in shared state instead of ping-ponging it.
func (c *Cache[V]) noteHit(s *shard[V], e *entry[V]) {
	if s.hits.Add(1)%sampleEvery == 0 {
		s.tick.Add(1)
	}
	if t := s.tick.Load() + 1; e.stamp.Load() != t {
		e.stamp.Store(t)
	}
	if cost := e.cost.Load(); cost > 0 {
		s.costSaved.Add(uint64(cost))
	}
}

// GetOrAdd returns the value cached under key with hit=true, refreshing
// its recency — or, when key is absent, inserts the value produced by
// newf and returns it with hit=false, evicting the shard's lowest-scored
// entry if the insert pushes the shard over capacity. The hit path is
// lock-free: it resolves against the shard's published index and never
// touches the mutex. The lookup-or-insert is atomic with respect to the
// key's shard: of any number of concurrent callers with the same absent
// key, exactly one runs newf and the rest observe its value as a hit.
// newf runs with the shard lock held and must not call back into the
// Cache.
func (c *Cache[V]) GetOrAdd(key string, newf func() V) (v V, hit bool) {
	s := c.shardFor(key)
	if e, ok := (*s.idx.Load())[key]; ok {
		c.noteHit(s, e)
		return e.val, true
	}
	c.lock(s)
	// Re-check against the index current under the lock: a concurrent
	// writer may have inserted key between the lock-free probe and here.
	if e, ok := (*s.idx.Load())[key]; ok {
		s.mu.Unlock()
		c.noteHit(s, e)
		return e.val, true
	}
	v = newf()
	s.misses.Add(1)
	c.insertLocked(s, key, v, 0)
	s.mu.Unlock()
	return v, false
}

// Get returns the value cached under key, if any, refreshing its recency
// like a GetOrAdd hit. Lock-free. Absent keys are not counted as misses
// (only insert attempts are), so Get does not disturb the entries ==
// misses + warmFills − evictions − removals reconciliation.
func (c *Cache[V]) Get(key string) (v V, ok bool) {
	s := c.shardFor(key)
	if e, found := (*s.idx.Load())[key]; found {
		c.noteHit(s, e)
		return e.val, true
	}
	return v, false
}

// Add inserts key→val with a pre-recorded recompute cost iff key is
// absent, and reports whether it inserted. It is the warm-fill primitive
// behind snapshot warmup restore and epoch-swap carry-over: successful
// inserts count as warm fills, not misses, so cold-start accounting stays
// distinguishable from serving traffic.
func (c *Cache[V]) Add(key string, val V, costNanos int64) bool {
	s := c.shardFor(key)
	c.lock(s)
	defer s.mu.Unlock()
	if _, ok := (*s.idx.Load())[key]; ok {
		return false
	}
	s.warmFills.Add(1)
	c.insertLocked(s, key, val, costNanos)
	return true
}

// SetCost records the recompute cost of key's entry, iff it is still
// mapped to v (the Remove identity rule) and no cost has been recorded
// yet. The Service calls it once per fill after the solve completes —
// the fill path inserts before computing, so the wall time is only known
// afterwards. Reports whether the cost was recorded.
func (c *Cache[V]) SetCost(key string, v V, costNanos int64) bool {
	if costNanos <= 0 {
		return false
	}
	s := c.shardFor(key)
	c.lock(s)
	defer s.mu.Unlock()
	e, ok := (*s.idx.Load())[key]
	if !ok || e.val != v || e.cost.Load() != 0 {
		return false
	}
	e.cost.Store(costNanos)
	s.costAdded.Add(uint64(costNanos))
	return true
}

// insertLocked publishes a new index containing key→val, evicting the
// lowest-scored resident entry if the shard is over capacity. Caller
// holds s.mu. The new entry's insert advances the shard tick, so it
// outranks every entry not hit in the current window; it is itself
// exempt from this eviction scan (it is by construction the most recent).
func (c *Cache[V]) insertLocked(s *shard[V], key string, val V, costNanos int64) {
	seq := s.tick.Add(1)
	e := &entry[V]{key: key, val: val, seq: seq}
	e.stamp.Store(seq)
	e.cost.Store(costNanos)
	if costNanos > 0 {
		s.costAdded.Add(uint64(costNanos))
	}
	old := *s.idx.Load()
	next := make(map[string]*entry[V], len(old)+1)
	for k, oe := range old {
		next[k] = oe
	}
	next[key] = e
	if len(next) > c.perShard {
		var victim *entry[V]
		var vScore int64
		for _, oe := range next {
			if oe == e {
				continue
			}
			score := oe.stamp.Load() + costBonus(oe.cost.Load())
			if victim == nil || score < vScore || (score == vScore && oe.seq < victim.seq) {
				victim, vScore = oe, score
			}
		}
		delete(next, victim.key)
		s.evictions.Add(1)
		c.evictions.Add(1)
		if cost := victim.cost.Load(); cost > 0 {
			s.costEvicted.Add(uint64(cost))
		}
	}
	s.idx.Store(&next)
}

// costBonus converts a recompute cost into extra recency ticks: an entry
// worth costNanos of solver time scores as if it were hit 8·log₂(cost in
// ~0.5ms units) ticks more recently than its stamp says. Costs under
// ~0.5ms carry no bonus at all — at that scale recomputing is about as
// cheap as serving, so cheap entries (tree-scheme lookups, small
// heuristics) compete on pure recency and the policy degenerates to
// exact LRU (which the determinism tests rely on). Above the floor the
// bonus is logarithmic and bounded (≈8 ticks per cost doubling, well
// under 400 ticks for any real cost), so an expensive exact solve
// outlives cheap neighbours of equal recency but cannot pin its slot
// forever once it goes cold.
func costBonus(costNanos int64) int64 {
	if costNanos <= 0 {
		return 0
	}
	return int64(8 * bits.Len64(uint64(costNanos)>>19))
}

// Remove drops key iff it is still mapped to v and reports whether it
// did. The identity check makes removal safe against the ABA race where a
// capacity eviction plus re-insert replaced the caller's entry with a
// fresh one between its insert and its Remove: the fresh entry survives.
// Removals are deliberate (not capacity pressure) and are not counted by
// Evictions.
func (c *Cache[V]) Remove(key string, v V) bool {
	s := c.shardFor(key)
	c.lock(s)
	defer s.mu.Unlock()
	old := *s.idx.Load()
	e, ok := old[key]
	if !ok || e.val != v {
		return false
	}
	next := make(map[string]*entry[V], len(old))
	for k, oe := range old {
		if k != key {
			next[k] = oe
		}
	}
	if cost := e.cost.Load(); cost > 0 {
		s.costRemoved.Add(uint64(cost))
	}
	s.idx.Store(&next)
	return true
}

// Range calls f for every resident entry with its recorded cost, until f
// returns false. It reads each shard's published index lock-free, so the
// view is consistent per shard but not across shards under concurrent
// writes — the same contract as the stats methods. Range does not count
// hits or refresh recency; it exists for warmup serialization and
// diagnostics, not serving.
func (c *Cache[V]) Range(f func(key string, v V, costNanos int64) bool) {
	for i := range c.shards {
		for _, e := range *c.shards[i].idx.Load() {
			if !f(e.key, e.val, e.cost.Load()) {
				return
			}
		}
	}
}

// Len returns the total number of resident entries, summed across the
// shards' published indexes. Lock-free; the sum is not an atomic
// point-in-time snapshot under concurrent writes — fine for monitoring,
// which is its job.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		n += len(*c.shards[i].idx.Load())
	}
	return n
}

// Occupancy returns the number of resident entries per shard, in shard
// order. Uniformly distributed keys should fill shards about evenly; a
// heavily skewed occupancy means the key space is not hashing well.
func (c *Cache[V]) Occupancy() []int {
	occ := make([]int, len(c.shards))
	for i := range c.shards {
		occ[i] = len(*c.shards[i].idx.Load())
	}
	return occ
}

// ShardStat is one shard's counters and occupancy, as returned by
// ShardStats. Hits counts successful lock-free lookups (GetOrAdd hits
// and Gets) on keys hashing to the shard; Misses counts GetOrAdd
// inserts; WarmFills counts Add inserts; Evictions counts
// capacity-pressure drops (conditional Removes are not counted, matching
// Evictions()). The Cost fields carry the recompute-cost ledger in
// nanoseconds: CostAdded − CostEvicted − CostRemoved is the cost resident
// in the shard, and CostSaved accumulates the cost of every hit — solver
// time the cache turned into a map lookup.
type ShardStat struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	WarmFills   uint64
	Entries     int
	CostAdded   uint64
	CostEvicted uint64
	CostRemoved uint64
	CostSaved   uint64
}

// ShardStats returns per-shard counters and occupancy, in shard order —
// the observability view behind per-shard /metrics series. Hits sum to
// the hit total, misses to the miss total, evictions to Evictions().
// Lock-free: each shard's counters are atomics and its entry count comes
// off the published index, so the slice is approximately consistent per
// shard but never blocks a writer.
func (c *Cache[V]) ShardStats() []ShardStat {
	out := make([]ShardStat, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		out[i] = ShardStat{
			Hits:        s.hits.Load(),
			Misses:      s.misses.Load(),
			Evictions:   s.evictions.Load(),
			WarmFills:   s.warmFills.Load(),
			Entries:     len(*s.idx.Load()),
			CostAdded:   s.costAdded.Load(),
			CostEvicted: s.costEvicted.Load(),
			CostRemoved: s.costRemoved.Load(),
			CostSaved:   s.costSaved.Load(),
		}
	}
	return out
}

// CostStats is the cache-wide recompute-cost ledger, in nanoseconds of
// solver wall time: Added accumulates costs recorded at fill (SetCost
// and warm Adds), Evicted and Removed the cost of entries dropped by
// capacity pressure and conditional removal, and Saved the cost of every
// hit. Resident cost — solver time currently banked in the cache — is
// Added − Evicted − Removed, an identity the reconciliation tests
// assert.
type CostStats struct {
	Added   uint64
	Evicted uint64
	Removed uint64
	Saved   uint64
}

// Resident returns the cost currently banked in resident entries.
func (cs CostStats) Resident() uint64 { return cs.Added - cs.Evicted - cs.Removed }

// CostStats sums the per-shard cost ledgers. Lock-free, monitoring-grade
// consistency like ShardStats.
func (c *Cache[V]) CostStats() CostStats {
	var cs CostStats
	for i := range c.shards {
		s := &c.shards[i]
		cs.Added += s.costAdded.Load()
		cs.Evicted += s.costEvicted.Load()
		cs.Removed += s.costRemoved.Load()
		cs.Saved += s.costSaved.Load()
	}
	return cs
}

// WarmFills returns how many entries were installed by Add (warm fills)
// across all shards since construction.
func (c *Cache[V]) WarmFills() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].warmFills.Load()
	}
	return n
}

// Shards returns the shard count (always a power of two).
func (c *Cache[V]) Shards() int { return len(c.shards) }

// PerShard returns the per-shard entry capacity (always ≥ 1).
func (c *Cache[V]) PerShard() int { return c.perShard }

// Capacity returns the effective total capacity, Shards() × PerShard() —
// at least the capacity requested of New, rounded up to a multiple of the
// shard count.
func (c *Cache[V]) Capacity() int { return len(c.shards) * c.perShard }

// Evictions returns how many entries capacity pressure has dropped across
// all shards since construction. Conditional Removes are not counted.
func (c *Cache[V]) Evictions() uint64 { return c.evictions.Load() }

// LockAcquisitions returns how many times any shard mutex has been
// acquired since construction — by design zero over a hit-only workload,
// which the concurrency tests assert to pin the read path lock-free.
func (c *Cache[V]) LockAcquisitions() uint64 { return c.lockAcquires.Load() }
