package cache

import (
	"container/list"
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxDefaultShards caps DefaultShards: beyond 64 ways the lock is no
// longer the bottleneck and the per-shard capacity floor starts inflating
// small caches.
const MaxDefaultShards = 64

// DefaultShards is the shard count used when the caller does not choose
// one: GOMAXPROCS rounded up to a power of two, capped at
// MaxDefaultShards. One shard per runnable goroutine is enough to make
// lock collisions rare without fragmenting the capacity of small caches.
func DefaultShards() int {
	n := ceilPow2(runtime.GOMAXPROCS(0))
	if n > MaxDefaultShards {
		n = MaxDefaultShards
	}
	return n
}

// ceilPow2 rounds n up to the nearest power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Cache is a sharded string-keyed LRU map. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Cache[V comparable] struct {
	mask     uint64
	perShard int
	// evictions counts entries dropped by capacity pressure across all
	// shards; atomic so Evictions never takes a shard lock.
	evictions atomic.Uint64
	shards    []shard[V]
}

// shard is one independently locked slice of the key space. The trailing
// pad keeps neighbouring shards' mutexes off one cache line — the whole
// point of sharding is that two cores hitting different shards do not
// ping-pong a line between them. The per-shard counters are plain fields
// guarded by mu: they are only touched inside sections that already hold
// the lock, so atomics would buy nothing.
type shard[V comparable] struct {
	mu        sync.Mutex
	table     map[string]*list.Element
	order     *list.List // front = most recently used; values are *entry[V]
	hits      uint64
	misses    uint64
	evictions uint64
	_         [64]byte
}

// entry is one resident key/value pair, held by the shard's LRU list.
type entry[V comparable] struct {
	key string
	val V
}

// New returns a Cache holding at least capacity entries split over the
// given number of shards. shards is rounded up to a power of two;
// non-positive selects DefaultShards. capacity is clamped to a minimum of
// one entry and divided across shards by ceiling division with a floor of
// one entry per shard (see the package comment for the rounding rule), so
// the effective Capacity may exceed the request but never falls below it.
func New[V comparable](capacity, shards int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	if shards <= 0 {
		shards = DefaultShards()
	}
	shards = ceilPow2(shards)
	perShard := (capacity + shards - 1) / shards
	c := &Cache[V]{
		mask:     uint64(shards - 1),
		perShard: perShard,
		shards:   make([]shard[V], shards),
	}
	for i := range c.shards {
		c.shards[i].table = make(map[string]*list.Element, perShard)
		c.shards[i].order = list.New()
	}
	return c
}

// FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// shardFor hashes key (FNV-1a, 64-bit) and masks it onto a shard.
func (c *Cache[V]) shardFor(key string) *shard[V] {
	return &c.shards[c.ShardIndex(key)]
}

// ShardIndex returns the index of the shard key hashes to, so callers
// (trace span annotations, shard-level diagnostics) can attribute a key
// to the same shard the cache itself uses. It never allocates.
func (c *Cache[V]) ShardIndex(key string) int {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return int(h & c.mask)
}

// GetOrAdd returns the value cached under key with hit=true, refreshing
// its recency — or, when key is absent, inserts the value produced by
// newf and returns it with hit=false, evicting the shard's
// least-recently-used entry if the insert pushes the shard over capacity.
// The lookup-or-insert is atomic with respect to the key's shard: of any
// number of concurrent callers with the same absent key, exactly one runs
// newf and the rest observe its value as a hit. newf runs with the shard
// lock held and must not call back into the Cache.
func (c *Cache[V]) GetOrAdd(key string, newf func() V) (v V, hit bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := s.table[key]; ok {
		s.order.MoveToFront(e)
		v = e.Value.(*entry[V]).val
		s.hits++
		s.mu.Unlock()
		return v, true
	}
	v = newf()
	s.misses++
	s.table[key] = s.order.PushFront(&entry[V]{key: key, val: v})
	if s.order.Len() > c.perShard {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.table, oldest.Value.(*entry[V]).key)
		s.evictions++
		c.evictions.Add(1)
	}
	s.mu.Unlock()
	return v, false
}

// Remove drops key iff it is still mapped to v and reports whether it
// did. The identity check makes removal safe against the ABA race where a
// capacity eviction plus re-insert replaced the caller's entry with a
// fresh one between its insert and its Remove: the fresh entry survives.
// Removals are deliberate (not capacity pressure) and are not counted by
// Evictions.
func (c *Cache[V]) Remove(key string, v V) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.table[key]; ok && e.Value.(*entry[V]).val == v {
		s.order.Remove(e)
		delete(s.table, key)
		return true
	}
	return false
}

// Len returns the total number of resident entries, summed across shards.
// Each shard is locked briefly in turn, so the sum is not an atomic
// point-in-time snapshot under concurrent writes — fine for monitoring,
// which is its job.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Occupancy returns the number of resident entries per shard, in shard
// order. Uniformly distributed keys should fill shards about evenly; a
// heavily skewed occupancy means the key space is not hashing well.
func (c *Cache[V]) Occupancy() []int {
	occ := make([]int, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		occ[i] = s.order.Len()
		s.mu.Unlock()
	}
	return occ
}

// ShardStat is one shard's counters and occupancy, as returned by
// ShardStats. Hits and Misses count GetOrAdd outcomes on keys hashing to
// the shard; Evictions counts capacity-pressure drops (conditional
// Removes are not counted, matching Evictions()).
type ShardStat struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// ShardStats returns per-shard counters and occupancy, in shard order —
// the observability view behind per-shard /metrics series. Hits sum to
// the hit total, misses to the miss total, evictions to Evictions().
// Each shard is locked briefly in turn (like Occupancy), so the slice is
// consistent per shard but not across shards under concurrent writes.
func (c *Cache[V]) ShardStats() []ShardStat {
	out := make([]ShardStat, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out[i] = ShardStat{
			Hits:      s.hits,
			Misses:    s.misses,
			Evictions: s.evictions,
			Entries:   s.order.Len(),
		}
		s.mu.Unlock()
	}
	return out
}

// Shards returns the shard count (always a power of two).
func (c *Cache[V]) Shards() int { return len(c.shards) }

// PerShard returns the per-shard entry capacity (always ≥ 1).
func (c *Cache[V]) PerShard() int { return c.perShard }

// Capacity returns the effective total capacity, Shards() × PerShard() —
// at least the capacity requested of New, rounded up to a multiple of the
// shard count.
func (c *Cache[V]) Capacity() int { return len(c.shards) * c.perShard }

// Evictions returns how many entries capacity pressure has dropped across
// all shards since construction. Conditional Removes are not counted.
func (c *Cache[V]) Evictions() uint64 { return c.evictions.Load() }
