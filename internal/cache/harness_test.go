package cache

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// box is the harness value type: every insert allocates a fresh pointer,
// so identity distinguishes generations of the same key — once a
// particular box is removed, no later lookup may ever return it again.
type box struct {
	key string
	gen int
}

// refCache is the mutex-guarded reference implementation: one global
// lock, one plain map, the same conditional-op semantics as Cache but
// none of the published-index machinery. The sequential equivalence test
// replays an op tape against both and reconciles every outcome.
type refCache struct {
	mu    sync.Mutex
	table map[string]*box
}

func newRef() *refCache { return &refCache{table: make(map[string]*box)} }

func (r *refCache) getOrAdd(key string, newf func() *box) (*box, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.table[key]; ok {
		return v, true
	}
	v := newf()
	r.table[key] = v
	return v, false
}

func (r *refCache) get(key string) (*box, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.table[key]
	return v, ok
}

func (r *refCache) add(key string, v *box) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.table[key]; ok {
		return false
	}
	r.table[key] = v
	return true
}

func (r *refCache) remove(key string, v *box) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur, ok := r.table[key]; ok && cur == v {
		delete(r.table, key)
		return true
	}
	return false
}

func (r *refCache) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.table)
}

// harnessShardCounts are the configurations every harness test sweeps:
// the degenerate single shard, the smallest real split, the default, and
// the 64-way config CI pins for the cache-stress job.
var harnessShardCounts = []int{1, 2, 0, 64}

// TestSequentialEquivalenceVsReference replays one randomized op tape
// (GetOrAdd / Get / Add / Remove / SetCost) against the lock-free cache
// and the mutex-guarded reference, reconciling every outcome per key:
// same hit/insert decision, same value identity, same conditional-remove
// verdict, same final occupancy. Capacity exceeds the key space so no
// eviction fires — eviction *policy* is pinned separately by
// TestSingleShardIsExactLRU and TestCostAwareEviction; this test pins
// the published-index semantics against the one-lock model.
func TestSequentialEquivalenceVsReference(t *testing.T) {
	const keys = 64
	for _, shards := range harnessShardCounts {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(1000 + shards)))
			c := New[*box](4*keys*MaxDefaultShards, shards) // per-shard floor can multiply capacity; stay above it
			ref := newRef()
			gen := 0
			for op := 0; op < 5000; op++ {
				key := fmt.Sprintf("k%02d", r.Intn(keys))
				switch r.Intn(5) {
				case 0, 1: // GetOrAdd
					gen++
					fresh := &box{key: key, gen: gen}
					got, hit := c.GetOrAdd(key, func() *box { return fresh })
					want, refHit := ref.getOrAdd(key, func() *box { return fresh })
					if hit != refHit || got != want {
						t.Fatalf("op %d GetOrAdd(%q): cache (%p,%v) vs ref (%p,%v)", op, key, got, hit, want, refHit)
					}
				case 2: // Get
					got, ok := c.Get(key)
					want, refOK := ref.get(key)
					if ok != refOK || got != want {
						t.Fatalf("op %d Get(%q): cache (%p,%v) vs ref (%p,%v)", op, key, got, ok, want, refOK)
					}
				case 3: // Add (warm fill)
					gen++
					fresh := &box{key: key, gen: gen}
					if ins, refIns := c.Add(key, fresh, 1000), ref.add(key, fresh); ins != refIns {
						t.Fatalf("op %d Add(%q): cache %v vs ref %v", op, key, ins, refIns)
					}
				case 4: // Remove current mapping (or a stale box half the time)
					cur, ok := ref.get(key)
					if !ok {
						continue
					}
					victim := cur
					if r.Intn(2) == 0 {
						victim = &box{key: key, gen: -1} // never-inserted identity: both must refuse
					}
					if rem, refRem := c.Remove(key, victim), ref.remove(key, victim); rem != refRem {
						t.Fatalf("op %d Remove(%q,%d): cache %v vs ref %v", op, key, victim.gen, rem, refRem)
					}
				}
			}
			if c.Len() != ref.len() {
				t.Fatalf("final occupancy: cache %d vs ref %d", c.Len(), ref.len())
			}
			// With zero evictions the fill identity must be exact.
			st := sumShardStats(c)
			if ev := c.Evictions(); ev != 0 {
				t.Fatalf("capacity sized above key space, yet %d evictions", ev)
			}
			wantLen := int(st.Misses+st.WarmFills) - removalsIn(c, ref)
			if c.Len() != wantLen {
				t.Fatalf("entries %d != misses %d + warmFills %d - removals %d", c.Len(), st.Misses, st.WarmFills, removalsIn(c, ref))
			}
		})
	}
}

// removalsIn recomputes successful removals from the fill/occupancy
// identity — the cache does not count removals itself (the Service layer
// does), so the test derives them: removals = fills − entries.
func removalsIn(c *Cache[*box], ref *refCache) int {
	st := sumShardStats(c)
	return int(st.Misses+st.WarmFills) - ref.len()
}

// sumShardStats folds ShardStats into one ShardStat.
func sumShardStats(c *Cache[*box]) ShardStat {
	var total ShardStat
	for _, ss := range c.ShardStats() {
		total.Hits += ss.Hits
		total.Misses += ss.Misses
		total.Evictions += ss.Evictions
		total.WarmFills += ss.WarmFills
		total.Entries += ss.Entries
		total.CostAdded += ss.CostAdded
		total.CostEvicted += ss.CostEvicted
		total.CostRemoved += ss.CostRemoved
		total.CostSaved += ss.CostSaved
	}
	return total
}

// TestConcurrentHarnessInvariants is the randomized interleaving hammer:
// goroutines fire Get/GetOrAdd/Add/SetCost/Remove at a small key space
// under forced-high GOMAXPROCS, with capacity tight enough that eviction
// runs hot, across shard counts {1, 2, default, 64}. Concurrency makes
// final states nondeterministic, so the reconciliation is per-operation
// identity invariants (a lookup for k only ever returns a box inserted
// under k; a removed box is never observed again by its remover) plus
// the closing counter algebra: entries == misses + warmFills − evictions
// − removals == Σ shard entries ≤ capacity, and the cost ledger identity
// resident == added − evicted − removed == Σ resident entry costs.
// Run under -race, this doubles as the memory-model check on the
// published-index swap.
func TestConcurrentHarnessInvariants(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	if prev < 32 {
		runtime.GOMAXPROCS(32)
		defer runtime.GOMAXPROCS(prev)
	}
	const (
		workers = 16
		opsPer  = 3000
		keys    = 48
	)
	for _, shards := range harnessShardCounts {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			c := New[*box](keys/2, shards) // tight: eviction pressure on every shard
			var gen atomic.Int64
			var removals atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(7000 + w)))
					held := make(map[string]*box) // boxes this goroutine inserted or observed
					for op := 0; op < opsPer; op++ {
						key := fmt.Sprintf("k%02d", r.Intn(keys))
						switch r.Intn(6) {
						case 0, 1, 2: // GetOrAdd dominates, like the serving path
							fresh := &box{key: key, gen: int(gen.Add(1))}
							got, _ := c.GetOrAdd(key, func() *box { return fresh })
							if got.key != key {
								t.Errorf("GetOrAdd(%q) returned box for %q", key, got.key)
								return
							}
							held[key] = got
						case 3: // lock-free Get
							if got, ok := c.Get(key); ok && got.key != key {
								t.Errorf("Get(%q) returned box for %q", key, got.key)
								return
							}
						case 4: // warm fill with cost
							fresh := &box{key: key, gen: int(gen.Add(1))}
							c.Add(key, fresh, int64(1+r.Intn(1_000_000)))
						case 5: // conditional remove of a previously-seen box
							v, ok := held[key]
							if !ok {
								continue
							}
							if c.Remove(key, v) {
								removals.Add(1)
								delete(held, key)
								// Sequenced after a successful Remove, this
								// goroutine must never see that box again:
								// inserts always allocate fresh boxes, so
								// observing v here means a stale index was
								// published after the removal.
								if got, okNow := c.Get(key); okNow && got == v {
									t.Errorf("removed box for %q resurfaced", key)
									return
								}
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			st := sumShardStats(c)
			entries := c.Len()
			if got := int(st.Misses+st.WarmFills) - int(st.Evictions) - int(removals.Load()); got != entries {
				t.Errorf("fill algebra: misses %d + warm %d - evictions %d - removals %d = %d, want entries %d",
					st.Misses, st.WarmFills, st.Evictions, removals.Load(), got, entries)
			}
			if st.Entries != entries {
				t.Errorf("shard entries sum %d != Len %d", st.Entries, entries)
			}
			if entries > c.Capacity() {
				t.Errorf("entries %d exceed capacity %d", entries, c.Capacity())
			}
			cs := c.CostStats()
			var resident uint64
			seen := 0
			c.Range(func(key string, v *box, cost int64) bool {
				if v.key != key {
					t.Errorf("Range: box for %q filed under %q", v.key, key)
				}
				resident += uint64(cost)
				seen++
				return true
			})
			if seen != entries {
				t.Errorf("Range visited %d entries, Len says %d", seen, entries)
			}
			if got := cs.Resident(); got != resident {
				t.Errorf("cost ledger: added %d - evicted %d - removed %d = %d, want Σ resident costs %d",
					cs.Added, cs.Evicted, cs.Removed, got, resident)
			}
		})
	}
}

// TestHitPathTakesNoLocks pins the tentpole claim with instrumentation:
// once the working set is resident, an all-hit workload — concurrent
// GetOrAdd and Get across every shard, plus stats scrapes — acquires
// zero shard mutexes.
func TestHitPathTakesNoLocks(t *testing.T) {
	const keys = 128
	c := New[*box](keys*MaxDefaultShards, 64)
	allKeys := make([]string, keys)
	for i := range allKeys {
		allKeys[i] = fmt.Sprintf("k%03d", i)
		k := allKeys[i]
		c.GetOrAdd(k, func() *box { return &box{key: k} })
	}
	before := c.LockAcquisitions()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 5000; i++ {
				k := allKeys[r.Intn(keys)]
				if _, hit := c.GetOrAdd(k, func() *box { t.Errorf("miss for resident %q", k); return &box{key: k} }); !hit {
					return
				}
				if _, ok := c.Get(k); !ok {
					t.Errorf("Get(%q) missed a resident entry", k)
					return
				}
			}
		}(w)
	}
	// Monitoring reads must not take locks either — they run concurrently
	// with scrapes in production.
	c.Len()
	c.ShardStats()
	c.Occupancy()
	c.CostStats()
	c.Range(func(string, *box, int64) bool { return true })
	wg.Wait()

	if after := c.LockAcquisitions(); after != before {
		t.Fatalf("hit-only workload acquired %d shard locks, want 0", after-before)
	}
}

// TestCostAwareEviction pins the cost term in the eviction score: at
// equal recency, the entry that was expensive to compute outlives the
// cheap one even when the cheap one is newer, and the bonus is bounded —
// enough extra hits on the cheap entry still overturn it.
func TestCostAwareEviction(t *testing.T) {
	c := New[*box](2, 1)

	slow := &box{key: "slow"}
	c.GetOrAdd("slow", func() *box { return slow })
	if !c.SetCost("slow", slow, 5_000_000) { // a 5ms exact solve
		t.Fatal("SetCost refused the fill")
	}
	cheap := &box{key: "cheap"}
	c.GetOrAdd("cheap", func() *box { return cheap })
	if !c.SetCost("cheap", cheap, 2_000) { // a 2µs tree lookup
		t.Fatal("SetCost refused the fill")
	}

	// Under strict LRU the next insert would evict "slow" (oldest). The
	// cost bonus must keep it resident and sacrifice "cheap" instead.
	c.GetOrAdd("new", func() *box { return &box{key: "new"} })
	if _, ok := c.Get("slow"); !ok {
		t.Fatal("expensive entry was evicted at equal recency — cost bonus not applied")
	}
	if _, ok := c.Get("cheap"); ok {
		t.Fatal("cheap entry survived over the expensive one")
	}

	// Boundedness: ~8 ticks per cost doubling means a dozen insert ticks
	// without hits must eventually overturn even a 5ms entry. (The Gets
	// above re-stamped "slow", so push well past the bonus.)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("filler%03d", i)
		c.GetOrAdd(k, func() *box { return &box{key: k} })
	}
	if _, ok := c.Get("slow"); ok {
		t.Fatal("cold expensive entry pinned its slot past the bounded bonus")
	}

	if cs := c.CostStats(); cs.Added != 5_002_000 || cs.Resident() != cs.Added-cs.Evicted-cs.Removed {
		t.Fatalf("cost ledger off: %+v", cs)
	}
}

// TestSetCostConditions pins SetCost's guard rails: identity mismatch,
// double-set, absent key and non-positive costs are all refused.
func TestSetCostConditions(t *testing.T) {
	c := New[*box](8, 1)
	v := &box{key: "a"}
	c.GetOrAdd("a", func() *box { return v })

	if c.SetCost("a", &box{key: "a"}, 100) {
		t.Error("SetCost accepted a different identity")
	}
	if c.SetCost("missing", v, 100) {
		t.Error("SetCost accepted an absent key")
	}
	if c.SetCost("a", v, 0) || c.SetCost("a", v, -5) {
		t.Error("SetCost accepted a non-positive cost")
	}
	if !c.SetCost("a", v, 100) {
		t.Error("SetCost refused a valid first fill")
	}
	if c.SetCost("a", v, 200) {
		t.Error("SetCost overwrote an already-recorded cost")
	}
	if cs := c.CostStats(); cs.Added != 100 {
		t.Errorf("CostAdded = %d, want 100", cs.Added)
	}
}

// TestWarmAddSemantics pins Add: insert-if-absent, counted as a warm
// fill (not a miss), cost recorded at insert.
func TestWarmAddSemantics(t *testing.T) {
	c := New[*box](8, 2)
	v1 := &box{key: "a"}
	if !c.Add("a", v1, 300) {
		t.Fatal("Add refused an absent key")
	}
	if c.Add("a", &box{key: "a"}, 400) {
		t.Fatal("Add overwrote a resident key")
	}
	got, ok := c.Get("a")
	if !ok || got != v1 {
		t.Fatalf("Get after Add = (%p,%v), want (%p,true)", got, ok, v1)
	}
	st := sumShardStats(c)
	if st.WarmFills != 1 || st.Misses != 0 {
		t.Errorf("warmFills=%d misses=%d, want 1/0", st.WarmFills, st.Misses)
	}
	if st.CostAdded != 300 {
		t.Errorf("CostAdded=%d, want 300 (second Add must not count)", st.CostAdded)
	}
	if c.WarmFills() != 1 {
		t.Errorf("WarmFills()=%d, want 1", c.WarmFills())
	}
}
