// Package cache implements the sharded, read-mostly map behind
// core.Service's answer cache.
//
// A Cache is a fixed set of shards selected by an FNV-1a hash of the
// key. Each shard owns a mutex and an *immutable* index — a
// map[string]*entry republished wholesale through an atomic pointer on
// every mutation (RCU-style copy-on-write). The hit path loads the
// published pointer, looks up the key, and refreshes recency with a
// plain atomic store: it never acquires the shard mutex, so a warm
// high-QPS serving path scales with cores instead of queueing on locks
// (LockAcquisitions instruments exactly this — the concurrency tests
// assert it stays flat across hit-only workloads). Writers — misses,
// warm fills, removals, cost fills — serialize on the shard mutex,
// clone the index, mutate the clone and publish it; readers always see
// either the old or the new complete index, never a partial one.
// Lookups of the *same* absent key still meet on one shard lock, which
// is what gives the Service its in-flight deduplication.
//
// # Recency and cost-aware eviction
//
// Strict LRU list maintenance is incompatible with lock-free hits, so
// recency is sampled: each shard's tick advances on every insert and
// once per 16 hits, and a hit stamps its entry with tick+1 — above
// every entry inserted in the current window. (The tick is per shard,
// not cache-global: eviction only compares entries within one shard,
// and a global clock would be a cache line contended by every hit on
// every shard.) Eviction (on an insert
// that pushes a shard over capacity) drops the entry minimizing
//
//	stamp + 8·log₂(recompute cost in ~0.5ms units)
//
// with ties broken oldest-insert-first. The cost term is the point: the
// Service records each entry's solver wall time at fill, so at equal
// recency a multi-millisecond ExactFrozen answer outlives a microsecond
// tree-scheme lookup by ~8 ticks per cost doubling — enough to prefer
// re-deriving cheap answers, bounded so a cold expensive entry cannot
// pin its slot forever. Costs under the ~0.5ms floor carry no bonus:
// among cheap entries (every answer on a small scheme) the policy is
// pure recency, reproducing classic LRU order exactly with one shard
// (pinned by test), because every insert opens a new tick window and
// hits stamp strictly above it.
//
// The cost ledger is exposed per shard (ShardStat) and cache-wide
// (CostStats): Added − Evicted − Removed equals the cost resident in the
// cache, and Saved accumulates the recompute cost of every hit — the
// solver time the cache has turned into map lookups. Warm fills (Add,
// used by snapshot warmup restore and Registry epoch-swap carry-over)
// count separately from misses, so
//
//	entries == misses + warmFills − evictions − removals
//
// stays an exact identity, asserted by the reconciliation tests.
//
// # Capacity rounding
//
// The requested capacity is divided across shards with ceiling division
// and a floor of one entry per shard: New(capacity, shards) gives every
// shard max(1, ⌈capacity/shards⌉) entries. The effective total — reported
// by Capacity() — is therefore rounded *up* to a multiple of the shard
// count, never down: a cache asked for 10 entries over 8 shards holds up
// to 16, and a cache asked for 1 entry over 64 shards holds up to 64.
// A shard is never silently given zero capacity, which would turn every
// lookup that lands on it into a miss-insert-evict cycle that can never
// hit.
//
// Eviction is per shard, not global: capacity pressure on one shard
// evicts that shard's lowest-scored entry even if a colder entry lives
// elsewhere. For the uniformly-hashed keys the Service feeds it
// (canonical terminal-set fingerprints) the difference from a global
// policy is noise; the win is that no lookup ever touches another
// shard's lock — or, on the hit path, any lock at all.
package cache
