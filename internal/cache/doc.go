// Package cache implements the sharded LRU map behind core.Service's
// answer cache.
//
// A Cache is a fixed set of independent shards — each owning its own
// mutex, hash table and LRU list — selected by an FNV-1a hash of the key.
// Under a single global lock every cache hit serializes on the same mutex,
// so a warm high-QPS serving path spends its time queueing rather than
// answering; splitting the key space lets concurrent lookups of different
// keys proceed on different locks, while lookups of the *same* key still
// meet on one shard (which is what gives the Service its in-flight
// deduplication).
//
// Shard counts are rounded up to a power of two so shard selection is a
// mask, not a modulo. With one shard the Cache degenerates to exactly the
// classic single-lock LRU: one table, one recency list, capacity enforced
// globally — callers that need the v1 eviction order byte-for-byte (or a
// deterministic test) ask for Shards(1).
//
// # Capacity rounding
//
// The requested capacity is divided across shards with ceiling division
// and a floor of one entry per shard: New(capacity, shards) gives every
// shard max(1, ⌈capacity/shards⌉) entries. The effective total — reported
// by Capacity() — is therefore rounded *up* to a multiple of the shard
// count, never down: a cache asked for 10 entries over 8 shards holds up
// to 16, and a cache asked for 1 entry over 64 shards holds up to 64.
// A shard is never silently given zero capacity, which would turn every
// lookup that lands on it into a miss-insert-evict cycle that can never
// hit.
//
// Eviction is LRU per shard, not global: capacity pressure on one shard
// evicts that shard's least-recently-used entry even if a colder entry
// lives elsewhere. For the uniformly-hashed keys the Service feeds it
// (canonical terminal-set fingerprints) the difference from global LRU is
// noise; the win is that no lookup ever touches another shard's lock.
package cache
