package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass. The shape deliberately
// mirrors golang.org/x/tools/go/analysis so the passes read like (and
// could later be ported to) standard vet analyzers; the x/tools module is
// not a dependency of this repository, so the driver underneath is the
// local Load/RunPackages pair instead of go/packages.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in //chordal:allow
	// suppression comments. It must be a valid identifier.
	Name string

	// Doc is a one-paragraph description of the invariant the pass
	// enforces, shown by `chordalvet help`.
	Doc string

	// Run applies the pass to one package and reports diagnostics via
	// pass.Report. The result value is unused today (the field exists so
	// passes keep the familiar signature).
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The checker wires this; analyzers
	// normally call Reportf instead.
	Report func(Diagnostic)

	// allowLines[filename] holds the lines carrying a
	// "//chordal:allow <name>" comment for this analyzer.
	allowLines map[string]map[int]bool
}

// A Diagnostic is one finding, positioned inside Fset.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name
	Message  string
}

// Reportf reports a diagnostic at pos unless that source line carries a
// "//chordal:allow <analyzer>" suppression comment.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	p.Report(Diagnostic{
		Pos:      pos,
		Category: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether the line holding pos allows this analyzer.
func (p *Pass) suppressed(pos token.Pos) bool {
	if p.allowLines == nil {
		p.allowLines = make(map[string]map[int]bool)
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			lines := make(map[int]bool)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//chordal:allow")
					if !ok {
						continue
					}
					for _, name := range strings.Fields(rest) {
						if name == p.Analyzer.Name {
							lines[p.Fset.Position(c.Pos()).Line] = true
						}
					}
				}
			}
			p.allowLines[name] = lines
		}
	}
	where := p.Fset.Position(pos)
	return p.allowLines[where.Filename][where.Line]
}

// hotpathMarker is the file annotation consumed by the hotalloc pass: a
// file containing this comment opts into allocation linting.
const hotpathMarker = "//chordal:hotpath"

// isHotpathFile reports whether f carries the //chordal:hotpath marker.
func isHotpathFile(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if c.Text == hotpathMarker || strings.HasPrefix(c.Text, hotpathMarker+" ") {
				return true
			}
		}
	}
	return false
}

// pkgTail reports whether the package path's final segment equals tail —
// true for both the real tree ("repro/internal/graph") and analysistest
// fixtures ("graph"), so analyzers need no per-driver configuration.
func pkgTail(pkg *types.Package, tail string) bool {
	path := pkg.Path()
	return path == tail || strings.HasSuffix(path, "/"+tail)
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	return types.Implements(t, errorInterface) ||
		types.Implements(types.NewPointer(t), errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// shortQualifier renders package-qualified type names with the package's
// short name ("atomic.Uint64", not "sync/atomic.Uint64").
func shortQualifier(p *types.Package) string { return p.Name() }

// sortDiagnostics orders ds by file position for stable output.
func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return ds[i].Category < ds[j].Category
	})
}
