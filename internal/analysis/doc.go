// Package analysis is chordalvet: a suite of repo-invariant static
// analyzers plus the small driver framework they run on.
//
// The repository rests on invariants no generic linter knows about: the
// frozen CSR/bitset views are immutable after Freeze/Restore (concurrent
// readers and zero-copy mapped snapshots depend on it), pooled solver
// scratch never outlives its query (the zero-alloc hot path), Service
// stats are atomics that must only be touched through their methods, the
// typed error taxonomy must stay errors.Is/As-inspectable for httpd's
// status mapping, and contexts flow caller→solver, never synthesized
// mid-stack. Each analyzer here turns one of those reviewer-enforced
// contracts into a lint failure.
//
// # Analyzers
//
//   - frozenwrite: no writes to graph.Frozen/bipartite.Frozen fields
//     outside the constructor/restore files (frozen.go).
//   - poolescape: every sync.Pool Get has a matching Put on the
//     function's exits, and pooled values never escape via returns or
//     stores.
//   - atomicstats: sync/atomic-typed fields are accessed only through
//     Load/Store/Add/..., never read plainly or copied by value.
//   - errwrap: library fmt.Errorf calls embed errors with %w, and error
//     comparisons go through errors.Is/As, never ==/switch.
//   - ctxfirst: exported functions take context.Context first, and
//     library code never calls context.Background/context.TODO.
//   - hotalloc: files annotated //chordal:hotpath reject fmt formatting,
//     zero-capacity append growth and interface boxing.
//
// A finding that is genuinely intentional is suppressed in place with a
// `//chordal:allow <analyzer>` comment on the offending line.
//
// # Drivers
//
// The Analyzer/Pass/Diagnostic shapes mirror golang.org/x/tools/
// go/analysis, but x/tools is not a dependency: Load resolves package
// patterns with `go list -deps -export` and type-checks from source
// against toolchain export data (standalone mode), RunVetTool speaks the
// `go vet -vettool` unit protocol (-V=full, -flags, unit.cfg), and
// RunFixture is the analysistest-style harness that checks testdata
// fixtures against their `// want "regexp"` comments. cmd/chordalvet
// front-ends the first two.
package analysis
