package analysis

import "testing"

func TestErrWrap(t *testing.T) {
	RunFixture(t, ErrWrap, "errwrap/a")
}

func TestFormatVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   string
	}{
		{"%v", "v"},
		{"%w: %v", "wv"},
		{"%d%%_%s", "ds"},
		{"%+v %#x %6.2f", "vxf"},
		{"%*d", "*d"},
		{"plain", ""},
	}
	for _, c := range cases {
		if got := string(formatVerbs(c.format)); got != c.want {
			t.Errorf("formatVerbs(%q) = %q, want %q", c.format, got, c.want)
		}
	}
}
