package analysis

import "testing"

func TestFrozenWriteGraph(t *testing.T) {
	RunFixture(t, FrozenWrite, "graph")
}

func TestFrozenWriteBipartite(t *testing.T) {
	RunFixture(t, FrozenWrite, "bipartite")
}
