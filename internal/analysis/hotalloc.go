package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc guards the zero-allocation guarantee of the solver and kernel
// hot paths (AllocsPerRun == 0, pinned by TestAlgorithm2FrozenZeroAlloc):
// in files annotated with a //chordal:hotpath comment it flags the three
// ways allocations quietly reappear in review — fmt string formatting,
// append growth on a slice declared with zero capacity in the same
// function, and implicit boxing of non-pointer values into interfaces.
// Error construction (fmt.Errorf, arguments to error-typed parameters) is
// exempt: error paths are cold by contract. A finding that is genuinely
// cold can be suppressed in place with //chordal:allow hotalloc.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "in //chordal:hotpath files, flag fmt formatting, zero-capacity append growth\n" +
		"and interface boxing — allocation re-introductions the benches would catch late",
	Run: runHotAlloc,
}

// fmtFormatters are the fmt functions that allocate to build strings.
// Errorf is deliberately absent: constructing an error is the cold path.
var fmtFormatters = map[string]bool{
	"fmt.Sprintf": true, "fmt.Sprint": true, "fmt.Sprintln": true,
	"fmt.Fprintf": true, "fmt.Fprint": true, "fmt.Fprintln": true,
	"fmt.Printf": true, "fmt.Print": true, "fmt.Println": true,
	"fmt.Appendf": true, "fmt.Append": true, "fmt.Appendln": true,
}

func runHotAlloc(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		if !isHotpathFile(f) {
			continue
		}
		funcScopes(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			checkHotScope(pass, body)
		})
	}
	return nil, nil
}

// checkHotScope applies the three allocation checks to one function body.
func checkHotScope(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	zeroCap := zeroCapLocals(info, body)
	walkScope(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil {
			name := fn.FullName()
			if fmtFormatters[name] {
				pass.Reportf(call.Pos(), "%s allocates on a hot path; format off the hot path or build into a pooled buffer", name)
				return true
			}
			if strings.HasPrefix(name, "fmt.") {
				// fmt.Errorf etc.: cold error path, and its ...any args
				// are exempt from the boxing check below.
				return true
			}
		}
		if isBuiltin(info, call, "append") && len(call.Args) > 0 {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && zeroCap[objectOf(info, id)] {
				pass.Reportf(call.Pos(), "append grows %s from zero capacity on a hot path; pre-size it with make(..., 0, n) or reuse a pooled buffer", id.Name)
			}
			return true
		}
		checkBoxing(pass, call)
		return true
	})
}

// zeroCapLocals collects local slice variables declared with no capacity:
// `var s []T`, `s := []T{}`, `s := make([]T, 0)`.
func zeroCapLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	zero := make(map[types.Object]bool)
	record := func(id *ast.Ident) {
		if obj := info.Defs[id]; obj != nil {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				zero[obj] = true
			}
		}
	}
	walkScope(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) > 0 {
					continue
				}
				for _, id := range vs.Names {
					record(id)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !isZeroCapSliceExpr(info, rhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && info.Defs[id] != nil {
					record(id)
				}
			}
		}
		return true
	})
	return zero
}

// isZeroCapSliceExpr reports whether e is an empty-capacity slice
// expression: []T{} or make([]T, 0) without an explicit capacity.
func isZeroCapSliceExpr(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		_, isSlice := info.Types[x].Type.Underlying().(*types.Slice)
		return isSlice && len(x.Elts) == 0
	case *ast.CallExpr:
		if !isBuiltin(info, x, "make") || len(x.Args) != 2 {
			return false
		}
		_, isSlice := info.Types[x].Type.Underlying().(*types.Slice)
		if !isSlice {
			return false
		}
		tv := info.Types[x.Args[1]]
		return tv.Value != nil && tv.Value.String() == "0"
	}
	return false
}

// checkBoxing flags arguments whose concrete non-pointer-shaped values
// are implicitly converted to interface parameters — each such conversion
// heap-allocates. Error-typed parameters are exempt (cold path).
func checkBoxing(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversions: T(x) to an interface type.
		_, isIface := tv.Type.Underlying().(*types.Interface)
		if isIface && !isErrorType(tv.Type) && len(call.Args) == 1 && boxes(info.Types[call.Args[0]].Type) {
			pass.Reportf(call.Pos(), "conversion to interface %s boxes its operand on a hot path", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				// f(xs...): the slice is passed through, nothing boxes.
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		iface, isIface := pt.Underlying().(*types.Interface)
		if !isIface || iface == nil || isErrorType(pt) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || !boxes(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes it on a hot path",
			types.TypeString(at, types.RelativeTo(pass.Pkg)))
	}
}

// boxes reports whether converting a value of type t to an interface
// heap-allocates: true for non-pointer-shaped concrete types (numbers,
// strings, structs, slices, arrays), false for pointers, maps, channels,
// functions, interfaces and nil.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	case *types.Struct, *types.Slice, *types.Array:
		return true
	default:
		return false
	}
}
