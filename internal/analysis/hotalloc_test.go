package analysis

import "testing"

func TestHotAlloc(t *testing.T) {
	RunFixture(t, HotAlloc, "hotalloc/a")
}
