package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicStats enforces the monitoring-counter contract: struct fields of
// the sync/atomic wrapper types (atomic.Uint64, atomic.Int64, …) exist so
// Stats-style endpoints can be polled while queries are in flight, which
// only holds if every access goes through Load/Store/Add/CompareAndSwap.
// A plain field read tears on 32-bit platforms and races everywhere; a
// value copy silently forks the counter (and defeats the vet copylocks
// check's intent even where it compiles).
var AtomicStats = &Analyzer{
	Name: "atomicstats",
	Doc: "flag sync/atomic-typed struct fields accessed without their methods:\n" +
		"no plain reads, writes or value copies of atomic.Uint64/Int64/... fields",
	Run: runAtomicStats,
}

// atomicWrapperNames are the sync/atomic struct wrapper types.
var atomicWrapperNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true,
	"Uint32": true, "Uint64": true, "Uintptr": true,
	"Pointer": true, "Value": true,
}

func runAtomicStats(pass *Pass) (any, error) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			selection, ok := info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return
			}
			if !isAtomicWrapper(selection.Obj().Type()) {
				return
			}
			if atomicUseAllowed(info, sel, stack) {
				return
			}
			pass.Reportf(sel.Pos(),
				"field %s has atomic type %s but is accessed without its methods; use Load/Store/Add (plain access tears and races)",
				sel.Sel.Name, types.TypeString(selection.Obj().Type(), shortQualifier))
		})
	}
	return nil, nil
}

// isAtomicWrapper reports whether t is one of sync/atomic's struct
// wrapper types.
func isAtomicWrapper(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicWrapperNames[obj.Name()]
}

// atomicUseAllowed reports whether the atomic field selection sel is in a
// sanctioned position: receiver of one of its own methods, or operand of
// &.
func atomicUseAllowed(info *types.Info, sel *ast.SelectorExpr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.SelectorExpr:
			// x.f.Load(): the outer selection must be a method of the
			// atomic type with x.f as its receiver.
			if s, ok := info.Selections[parent]; ok && s.Kind() == types.MethodVal {
				return true
			}
			return false
		case *ast.UnaryExpr:
			// &x.f: passing the counter by pointer keeps it atomic.
			return parent.Op == token.AND
		default:
			return false
		}
	}
	return false
}
