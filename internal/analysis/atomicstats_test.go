package analysis

import "testing"

func TestAtomicStats(t *testing.T) {
	RunFixture(t, AtomicStats, "atomicstats/a")
}
