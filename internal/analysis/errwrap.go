package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// ErrWrap enforces the typed-error taxonomy introduced with the v2 query
// API: httpd's status mapping and every caller-side errors.Is/As check
// depend on wrapped chains staying inspectable. Two things break them
// silently: stringifying an embedded error with %v/%s (the chain is cut,
// errors.Is stops matching) and comparing errors with == (wrapping makes
// the comparison false even when the sentinel is present). The pass flags
// fmt.Errorf calls that format an error value with any verb but %w, and
// ==/!=/switch comparisons between non-nil error values.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "flag fmt.Errorf calls that embed an error without %w, and ==/!=/switch\n" +
		"comparisons of non-nil errors that should be errors.Is/errors.As",
	Run: runErrWrap,
}

func runErrWrap(pass *Pass) (any, error) {
	// Commands assemble one-shot messages for stderr; the taxonomy
	// contract binds library packages.
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isNonNilError(info, n.X) && isNonNilError(info, n.Y) {
					pass.Reportf(n.Pos(), "errors compared with %s never match wrapped chains; use errors.Is (or errors.As for types)", n.Op)
				}
			case *ast.SwitchStmt:
				checkErrorSwitch(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkErrorfWrap flags fmt.Errorf arguments of type error formatted with
// a verb other than %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	fn := calleeFunc(info, call)
	if fn == nil || fn.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	format, ok := constantString(info, call.Args[0])
	if !ok {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		t := info.Types[arg].Type
		if t == nil || !isErrorType(t) {
			continue
		}
		if verbs[i] != 'w' {
			pass.Reportf(arg.Pos(),
				"error formatted with %%%c cuts the wrap chain; use %%w so errors.Is/As and httpd's status mapping keep working", verbs[i])
		}
	}
}

// checkErrorSwitch flags `switch err { case ErrFoo: }` shapes.
func checkErrorSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isNonNilError(pass.TypesInfo, sw.Tag) {
		return
	}
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if isNonNilError(pass.TypesInfo, e) {
				pass.Reportf(e.Pos(), "switch on an error value never matches wrapped chains; use errors.Is in if/else")
			}
		}
	}
}

// isNonNilError reports whether e is error-typed and not the nil literal.
func isNonNilError(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	return isErrorType(tv.Type)
}

// constantString resolves e to its constant string value.
func constantString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs returns the verb letter consuming each successive argument
// of a printf-style format. Width/precision stars consume an argument and
// are recorded as '*'; explicit argument indexes are not modeled (rare,
// and vet's printf owns full validation).
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// flags, width, precision
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' || c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}
