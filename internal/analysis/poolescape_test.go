package analysis

import "testing"

func TestPoolEscape(t *testing.T) {
	RunFixture(t, PoolEscape, "poolescape/a")
}
