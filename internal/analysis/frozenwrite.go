package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// FrozenWrite enforces the immutability contract of the compiled CSR
// views: after graph.Freeze / graph.RestoreFrozen (and the bipartite
// equivalents) a Frozen is shared by any number of concurrent readers and
// may alias a read-only mapped snapshot, so nothing may ever assign to,
// append into, or copy over its fields. Construction-time writes are
// confined to the packages' frozen.go files (Freeze and RestoreFrozen);
// any other write site is a data race against concurrent queries at best
// and a SIGBUS on an mmap'd snapshot at worst.
var FrozenWrite = &Analyzer{
	Name: "frozenwrite",
	Doc: "flag writes to graph.Frozen/bipartite.Frozen fields outside the constructor/restore files;\n" +
		"frozen CSR views are immutable, concurrently read, and may alias read-only mapped snapshots",
	Run: runFrozenWrite,
}

// frozenConstructorFile is the one basename per package allowed to write
// Frozen fields: it holds Freeze and RestoreFrozen.
const frozenConstructorFile = "frozen.go"

func runFrozenWrite(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if name == frozenConstructorFile {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkFrozenWrite(pass, lhs, "assignment to")
				}
			case *ast.IncDecStmt:
				checkFrozenWrite(pass, n.X, "update of")
			case *ast.CallExpr:
				if isBuiltin(pass.TypesInfo, n, "copy") && len(n.Args) == 2 {
					checkFrozenWrite(pass, n.Args[0], "copy into")
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkFrozenWrite reports when expr writes through a field of a frozen
// view type.
func checkFrozenWrite(pass *Pass, expr ast.Expr, how string) {
	sel := baseSelector(expr)
	if sel == nil {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	recv := selection.Recv()
	if !namedIn(recv, "Frozen", "graph", "bipartite") {
		return
	}
	obj := deref(recv).(*types.Named).Obj()
	pass.Reportf(expr.Pos(),
		"%s field %s.Frozen.%s outside %s: the frozen view is immutable after Freeze/Restore (concurrent readers, mapped snapshots)",
		how, obj.Pkg().Name(), sel.Sel.Name, frozenConstructorFile)
}
