package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the v2 API's context discipline. Two rules: exported
// functions and methods that accept a context.Context take it as the
// first parameter (the convention every caller of the facade, core,
// steiner and httpd relies on), and library code never manufactures its
// own root context with context.Background/context.TODO — deadlines and
// cancellation flow in from the caller, so a synthesized root silently
// detaches a solver from the request that is paying for it. Commands and
// tests own their roots and are exempt.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "flag exported functions taking context.Context anywhere but first, and\n" +
		"context.Background()/TODO() calls in library (non-main, non-test) code",
	Run: runCtxFirst,
}

func runCtxFirst(pass *Pass) (any, error) {
	info := pass.TypesInfo
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxPosition(pass, n)
			case *ast.CallExpr:
				if isMain {
					return true
				}
				fn := calleeFunc(info, n)
				if fn == nil {
					return true
				}
				if name := fn.FullName(); name == "context.Background" || name == "context.TODO" {
					pass.Reportf(n.Pos(),
						"%s creates a root context in library code; accept a ctx from the caller (or derive via context.WithoutCancel) so deadlines propagate", name)
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkCtxPosition flags exported declarations whose context parameter is
// not first.
func checkCtxPosition(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() {
		return
	}
	obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	params := obj.Signature().Params()
	for i := 0; i < params.Len(); i++ {
		if !isContextType(params.At(i).Type()) {
			continue
		}
		if i > 0 {
			pass.Reportf(params.At(i).Pos(),
				"context.Context is parameter %d of exported %s; the v2 API convention is ctx first", i+1, fd.Name.Name)
		}
		return
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
