package analysis

import (
	"go/ast"
	"go/types"
)

// inspectWithStack walks every node of f, calling fn with the node and
// its ancestor stack (outermost first, not including n itself).
func inspectWithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// funcScopes yields every function body in f — declarations and literals
// — without descending into nested function literals, so per-function
// analyses (like poolescape's acquire/release pairing) see each scope
// exactly once. name is the enclosing declaration's name ("" for
// literals), decl its *ast.FuncDecl when there is one.
func funcScopes(f *ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd, fd.Body)
			collectFuncLits(fd.Body, func(lit *ast.FuncLit) { fn(nil, lit.Body) })
		}
	}
	// Function literals in package-level var initializers.
	for _, d := range f.Decls {
		if gd, ok := d.(*ast.GenDecl); ok {
			collectFuncLits(gd, func(lit *ast.FuncLit) { fn(nil, lit.Body) })
		}
	}
}

// collectFuncLits finds every function literal under n, including nested
// ones.
func collectFuncLits(n ast.Node, fn func(*ast.FuncLit)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			fn(lit)
		}
		return true
	})
}

// walkScope walks stmts of one function body without entering nested
// function literals.
func walkScope(body *ast.BlockStmt, fn func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == body {
			return true
		}
		return fn(n)
	})
}

// calleeFunc resolves the called function object of call, or nil for
// builtins, function-typed variables and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// deref strips pointer indirections from t.
func deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// namedIn reports whether t (after deref) is a named type with the given
// name whose package path ends in one of the tails.
func namedIn(t types.Type, name string, tails ...string) bool {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	for _, tail := range tails {
		path := obj.Pkg().Path()
		if path == tail || len(path) > len(tail) && path[len(path)-len(tail)-1] == '/' && path[len(path)-len(tail):] == tail {
			return true
		}
	}
	return false
}

// baseSelector unwraps index, slice, paren and star expressions around e
// and returns the innermost selector expression, if any: for
// `f.offsets[v+1]` it returns `f.offsets`.
func baseSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x
		default:
			return nil
		}
	}
}
