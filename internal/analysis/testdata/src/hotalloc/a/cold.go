package a

import "fmt"

// No //chordal:hotpath marker: this file is free to allocate.

func coldFormat(n int) string {
	return fmt.Sprintf("n=%d", n)
}

func coldGrow(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
