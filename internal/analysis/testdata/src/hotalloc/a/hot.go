//chordal:hotpath
package a

import "fmt"

type pair struct{ a, b int }

type sink interface{ use() }

func (pair) use() {}

func format(n int) string {
	return fmt.Sprintf("n=%d", n) // want `fmt\.Sprintf allocates on a hot path`
}

func grow(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append grows out from zero capacity on a hot path`
	}
	return out
}

func growLiteral(xs []int) []int {
	out := []int{}
	out = append(out, xs...) // want `append grows out from zero capacity on a hot path`
	return out
}

func sized(xs []int) []int {
	out := make([]int, 0, len(xs))
	out = append(out, xs...) // ok: capacity reserved up front
	return out
}

func appendCaller(dst []int, xs []int) []int {
	return append(dst, xs...) // ok: caller-owned capacity
}

func box(p pair) sink {
	return sink(p) // want `conversion to interface sink boxes its operand on a hot path`
}

func boxArg(p pair) {
	take(p) // want `passing pair to interface parameter boxes it on a hot path`
}

func boxPointer(p *pair) {
	take(p) // ok: pointers are interface-shaped, no allocation
}

func take(s any) { _ = s }

func coldError(n int) error {
	// Error construction is the cold path by contract.
	return fmt.Errorf("bad n %d", n)
}

func allowed(n int) string {
	return fmt.Sprint(n) //chordal:allow hotalloc — cold admin path, measured
}
