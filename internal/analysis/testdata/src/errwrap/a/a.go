package a

import (
	"errors"
	"fmt"
)

var ErrBusy = errors.New("busy")

func wraps(err error) error {
	return fmt.Errorf("query: %w", err) // ok
}

func wrapsTwo(err error) error {
	return fmt.Errorf("%w: %w", ErrBusy, err) // ok: Go 1.20+ multi-wrap
}

func cuts(err error) error {
	return fmt.Errorf("query: %v", err) // want `error formatted with %v cuts the wrap chain`
}

func cutsString(err error) error {
	return fmt.Errorf("query: %s", err) // want `error formatted with %s cuts the wrap chain`
}

func mixed(err error) error {
	return fmt.Errorf("%w over %d at %v", ErrBusy, 3, err) // want `error formatted with %v cuts the wrap chain`
}

func stringified(err error) error {
	// Deliberate stringification via .Error() is visible and allowed.
	return fmt.Errorf("query: %s", err.Error())
}

func compares(err error) bool {
	if err == nil { // ok: nil checks are not sentinel comparisons
		return false
	}
	return err == ErrBusy // want `errors compared with == never match wrapped chains`
}

func comparesNeq(err error) bool {
	return err != ErrBusy // want `errors compared with != never match wrapped chains`
}

func comparesIs(err error) bool {
	return errors.Is(err, ErrBusy) // ok
}

func switches(err error) int {
	switch err {
	case nil:
		return 0
	case ErrBusy: // want `switch on an error value never matches wrapped chains`
		return 1
	}
	return 2
}

func values(n int) error {
	// Non-error arguments never trigger the wrap rule.
	return fmt.Errorf("bad count %d (%v)", n, []int{n})
}
