package a

import "context"

// Connect is the convention: ctx first.
func Connect(ctx context.Context, terminals []int) error { return nil }

// connectLater is unexported; position is style, not API contract.
func connectLater(terminals []int, ctx context.Context) error { return nil }

// ConnectLate violates the exported convention.
func ConnectLate(terminals []int, ctx context.Context) error { return nil } // want `context\.Context is parameter 2 of exported ConnectLate`

// Batch has it buried even deeper.
func Batch(name string, n int, ctx context.Context) error { return nil } // want `context\.Context is parameter 3 of exported Batch`

// NoCtx takes none; nothing to check.
func NoCtx(terminals []int) error { return nil }

type service struct{}

// Query is a method: the convention applies to methods too.
func (service) Query(name string, ctx context.Context) error { return nil } // want `context\.Context is parameter 2 of exported Query`

func roots() {
	_ = context.Background() // want `context\.Background creates a root context in library code`
	_ = context.TODO()       // want `context\.TODO creates a root context in library code`
}

func derived(ctx context.Context) context.Context {
	// Deriving from the caller's ctx is the sanctioned shape.
	return context.WithoutCancel(ctx)
}
