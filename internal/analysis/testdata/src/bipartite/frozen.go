package bipartite

// Frozen mimics the bipartite partition view over the CSR.
type Frozen struct {
	side []uint8
}

// Restore is the sanctioned constructor (this file is frozen.go).
func Restore(side []uint8) *Frozen {
	f := &Frozen{}
	f.side = side
	return f
}
