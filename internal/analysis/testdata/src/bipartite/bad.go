package bipartite

func flip(f *Frozen) {
	f.side[0] = 1 // want `assignment to field bipartite\.Frozen\.side outside frozen\.go`
}

func read(f *Frozen) int {
	return len(f.side)
}
