package a

import "sync"

type scratch struct {
	buf  []int
	mask []uint64
}

var pool = sync.Pool{New: func() any { return &scratch{} }}

// getScratch is the sanctioned acquire helper: it returns the pooled
// value, so it is exempt from the pairing rule.
func getScratch() *scratch {
	sc := pool.Get().(*scratch)
	return sc
}

// release is the sanctioned release helper.
func (sc *scratch) release() { pool.Put(sc) }

type holder struct {
	kept *scratch
	buf  []int
}

// ok: defer covers every exit.
func deferred() int {
	sc := getScratch()
	defer sc.release()
	if len(sc.buf) > 3 {
		return 1
	}
	return 0
}

// ok: direct Get/Put pair with release immediately before the return.
func directPair() int {
	sc := pool.Get().(*scratch)
	n := len(sc.buf)
	pool.Put(sc)
	return n
}

func neverReleased() {
	sc := getScratch() // want `pooled sc is never released in this function`
	_ = sc
}

func earlyReturn(cond bool) int {
	sc := getScratch()
	if cond {
		return 1 // want `return without releasing pooled sc`
	}
	sc.release()
	return 0
}

func escapesReturn() *scratch {
	sc := getScratch() // want `pooled sc is never released in this function`
	return sc          // want `pooled sc escapes via return`
}

func escapesField(h *holder) {
	sc := getScratch()
	defer sc.release()
	h.kept = sc // want `pooled sc stored beyond its query`
}

func escapesBuffer(h *holder) {
	sc := getScratch()
	defer sc.release()
	h.buf = sc.buf // want `pooled sc stored beyond its query`
}

func escapesReturnedBuffer() []int {
	sc := getScratch()
	defer sc.release()
	return sc.buf // want `pooled sc escapes via return`
}

func escapesLiteral() holder {
	sc := getScratch()
	defer sc.release()
	h := holder{kept: sc} // want `pooled sc stored into a composite literal`
	return h
}

func discarded() {
	_ = pool.Get() // want `pooled value discarded at Get`
}

// ok: borrowing — passing the scratch or its buffers to callees copies
// nothing out of the query's ownership.
func borrows() int {
	sc := getScratch()
	defer sc.release()
	return use(sc.buf) + use2(sc)
}

func use(b []int) int      { return len(b) }
func use2(sc *scratch) int { return len(sc.mask) }
