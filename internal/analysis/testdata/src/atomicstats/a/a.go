package a

import "sync/atomic"

type stats struct {
	hits   atomic.Uint64
	misses atomic.Int64
	frac   atomic.Value
	plain  uint64
}

type snapshot struct {
	hits uint64
}

func ok(s *stats) snapshot {
	s.hits.Add(1)
	s.misses.Store(2)
	poke(&s.hits)
	if v := s.frac.Load(); v != nil {
		_ = v
	}
	// Plain fields are untouched by the analyzer.
	s.plain = 9
	return snapshot{hits: s.hits.Load()}
}

func poke(u *atomic.Uint64) { u.Add(1) }

func bad(s, t *stats) {
	x := s.hits // want `field hits has atomic type atomic\.Uint64 but is accessed without its methods`
	_ = x
	s.hits = t.hits // want `field hits has atomic type atomic\.Uint64 but is accessed without its methods` `field hits has atomic type atomic\.Uint64 but is accessed without its methods`
	use(s.misses)   // want `field misses has atomic type atomic\.Int64 but is accessed without its methods`
}

func use(v atomic.Int64) { _ = v }
