package graph

// Writes to Frozen fields outside frozen.go: every one must be flagged.

func mutate(f *Frozen) {
	f.m = 7                              // want `assignment to field graph\.Frozen\.m outside frozen\.go`
	f.offsets[0] = 1                     // want `assignment to field graph\.Frozen\.offsets outside frozen\.go`
	f.neighbors = append(f.neighbors, 3) // want `assignment to field graph\.Frozen\.neighbors outside frozen\.go`
	f.m++                                // want `update of field graph\.Frozen\.m outside frozen\.go`
	copy(f.labels, []string{"x"})        // want `copy into field graph\.Frozen\.labels outside frozen\.go`
	f.matrix[0] |= 1                     // want `assignment to field graph\.Frozen\.matrix outside frozen\.go`
}

func reads(f *Frozen) int {
	// Reads and address-free uses are fine.
	n := len(f.labels)
	n += int(f.offsets[0])
	if f.matrix != nil {
		n++
	}
	return n + f.m
}

func locals() {
	// Same field names on an unrelated type stay quiet.
	type notFrozen struct{ m int }
	var x notFrozen
	x.m = 3
	_ = x
}
