package graph

// Frozen mimics the real compiled CSR view: construction-time writes in
// this file (the constructor/restore file) are the sanctioned ones.
type Frozen struct {
	labels    []string
	offsets   []int32
	neighbors []int32
	matrix    []uint64
	m         int
}

// Freeze builds a Frozen; every field write below is allowed because it
// happens in frozen.go.
func Freeze(labels []string, offsets, neighbors []int32) *Frozen {
	f := &Frozen{}
	f.labels = append([]string(nil), labels...)
	f.offsets = offsets
	f.neighbors = neighbors
	f.m = len(neighbors) / 2
	for i := range f.offsets {
		f.offsets[i]++
		f.offsets[i]--
	}
	return f
}

// N is a read-only accessor; reads are always fine.
func (f *Frozen) N() int { return len(f.labels) }
