// Package a exercises the spanend analyzer: spans must be ended on
// every return path, by defer or by an End lexically between the start
// and each return.
package a

import "spanend/trace"

// okDeferred: a deferred End covers every exit.
func okDeferred(tr *trace.Trace, fail bool) error {
	sp := tr.StartSpan("phase")
	defer sp.End()
	if fail {
		return errFailed
	}
	return nil
}

// okInline: every return is preceded by an End on its path.
func okInline(tr *trace.Trace, fail bool) error {
	sp := tr.StartSpan("phase")
	if fail {
		sp.End()
		return errFailed
	}
	sp.End()
	return nil
}

// okEndBeforeBranch: the probe shape — End immediately after the guarded
// call, lexically before the error return.
func okEndBeforeBranch(tr *trace.Trace, fail bool) error {
	sp := tr.StartSpan("probe")
	sp.End()
	if fail {
		return errFailed
	}
	return nil
}

// okLiteralScopes: the literal ends its own span; the outer return is a
// different scope.
func okLiteralScopes(tr *trace.Trace) func() {
	return func() {
		sp := tr.StartSpan("lit")
		sp.Annotate("k", "v")
		sp.End()
	}
}

func neverEnded(tr *trace.Trace) {
	sp := tr.StartSpan("phase") // want `span sp is never ended in this function`
	sp.Annotate("k", "v")
}

func discarded(tr *trace.Trace) {
	_ = tr.StartSpan("phase") // want `span started and discarded`
}

func earlyReturnLeaks(tr *trace.Trace, fail bool) error {
	sp := tr.StartSpan("phase")
	if fail {
		return errFailed // want `return without ending span sp`
	}
	sp.End()
	return nil
}

// twoSpans: the first span's End does not cover the second's paths.
func twoSpans(tr *trace.Trace, fail bool) error {
	a := tr.StartSpan("one")
	a.End()
	b := tr.StartSpan("two")
	if fail {
		return errFailed // want `return without ending span b`
	}
	b.End()
	return nil
}

// literalLeaks: a span started inside a literal must end inside it.
func literalLeaks(tr *trace.Trace) func() error {
	return func() error {
		sp := tr.StartSpan("lit") // want `span sp is never ended in this function`
		_ = sp
		return nil
	}
}

var errFailed error
