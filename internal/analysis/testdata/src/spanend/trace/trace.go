// Package trace is a minimal stand-in for the real tracing package: just
// enough surface (Trace, StartSpan, SpanRef.End/Annotate) for the
// spanend fixtures to type-check.
package trace

// Trace is one request trace.
type Trace struct {
	spans []span
}

type span struct {
	name  string
	ended bool
}

// SpanRef is a handle onto one span of a Trace.
type SpanRef struct {
	t *Trace
	i int32
}

// StartSpan opens a child span.
func (t *Trace) StartSpan(name string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	t.spans = append(t.spans, span{name: name})
	return SpanRef{t: t, i: int32(len(t.spans) - 1)}
}

// End closes the span; idempotent.
func (s SpanRef) End() {
	if s.t == nil {
		return
	}
	s.t.spans[s.i].ended = true
}

// Annotate attaches a key/value attribute.
func (s SpanRef) Annotate(key, val string) {
	_ = key
	_ = val
}
