package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads the GOPATH-style fixture package testdata/src/<pkg>,
// runs one analyzer over it and compares the diagnostics against the
// fixture's `// want "regexp"` comments, x/tools-analysistest style:
// every diagnostic must match a want on its line, every want must be
// matched by a diagnostic. Fixture-local imports resolve from source
// under testdata/src; everything else resolves through the toolchain's
// export data.
func RunFixture(t testing.TB, a *Analyzer, pkg string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := newFixtureLoader(root)
	p, err := loader.load(pkg)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkg, err)
	}
	ds, err := runPackage(p, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, pkg, err)
	}
	sortDiagnostics(p.Fset, ds)
	checkWants(t, p, ds)
}

// want is one expectation parsed from a fixture comment.
type want struct {
	re      *regexp.Regexp
	matched bool
}

// checkWants reconciles diagnostics with the fixture's want comments.
func checkWants(t testing.TB, p *Package, ds []Diagnostic) {
	t.Helper()
	wants := make(map[string][]*want) // "file:line" → expectations
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimPrefix(c.Text, "// "), "want ")
				if !ok {
					rest, ok = strings.CutPrefix(strings.TrimPrefix(c.Text, "//"), "want ")
				}
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pat := range parseWantPatterns(rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	for _, d := range ds {
		pos := p.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", k, w.re)
			}
		}
	}
}

// parseWantPatterns extracts the double- or backquoted regexps from the
// remainder of a want comment.
var wantToken = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func parseWantPatterns(s string) []string {
	var pats []string
	for _, tok := range wantToken.FindAllString(s, -1) {
		if p, err := strconv.Unquote(tok); err == nil {
			pats = append(pats, p)
		}
	}
	return pats
}

// fixtureLoader type-checks fixture packages rooted at a GOPATH-style
// src directory, resolving non-fixture imports via toolchain export data.
type fixtureLoader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*Package
	std  types.Importer
}

func newFixtureLoader(root string) *fixtureLoader {
	l := &fixtureLoader{
		root: root,
		fset: token.NewFileSet(),
		pkgs: make(map[string]*Package),
	}
	return l
}

// load parses and type-checks testdata/src/<path> (recursively loading
// fixture-local imports).
func (l *fixtureLoader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s has no Go files", path)
	}
	sort.Strings(files)
	if l.std == nil {
		if err := l.initStdImporter(); err != nil {
			return nil, err
		}
	}
	p, err := typeCheck(l.fset, path, dir, files, fixtureImporter{l})
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// initStdImporter collects every non-fixture import reachable from the
// fixture tree and resolves their export data with one go list call.
func (l *fixtureLoader) initStdImporter() error {
	std := make(map[string]bool)
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(l.fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if _, statErr := os.Stat(filepath.Join(l.root, filepath.FromSlash(p))); statErr != nil {
				std[p] = true
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	paths := make([]string, 0, len(std))
	for p := range std {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	exportFile, err := listExportData(paths)
	if err != nil {
		return err
	}
	l.std = exportImporter(l.fset, exportFile)
	return nil
}

// fixtureImporter resolves fixture-local imports from source and
// delegates the rest to export data.
type fixtureImporter struct{ l *fixtureLoader }

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(fi.l.root, filepath.FromSlash(path))); err == nil {
		p, err := fi.l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return fi.l.std.Import(path)
}
