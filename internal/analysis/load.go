package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// A Package is one loaded, parsed and type-checked compilation unit ready
// for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") with the go command, parses each
// matched package from source and type-checks it against the export data
// of its dependencies. It is the standalone-mode counterpart of the
// go vet -vettool protocol: both feed the same Pass shape, but Load needs
// no build system driving it.
//
// The go command is invoked once, with -deps -export, so every dependency
// (standard library included) has compiled export data on disk; imports
// are then resolved through go/importer's gc reader without any network
// or module download.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %w\n%s", err, stderr.Bytes())
	}

	var roots []*listedPackage
	exportFile := make(map[string]string)
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exportFile[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			roots = append(roots, lp)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exportFile)
	var pkgs []*Package
	for _, lp := range roots {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, lp.ImportPath, lp.Dir, lp.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// listExportData resolves patterns (package paths) to gc export-data
// files via one `go list -deps -export` invocation in the current
// directory. Used by the fixture loader for standard-library imports.
func listExportData(patterns []string) (map[string]string, error) {
	exportFile := make(map[string]string)
	if len(patterns) == 0 {
		return exportFile, nil
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %w\n%s", err, stderr.Bytes())
	}
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if lp.Export != "" {
			exportFile[lp.ImportPath] = lp.Export
		}
	}
	return exportFile, nil
}

// exportImporter resolves imports by reading gc export data from the
// files go list reported. Packages resolve at most once per Load; the
// importer caches internally.
func exportImporter(fset *token.FileSet, exportFile map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// typeCheck parses files (named relative to dir) and type-checks them as
// one package.
func typeCheck(fset *token.FileSet, importPath, dir string, files []string, imp types.Importer) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      syntax,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
