package analysis

import "testing"

func TestSpanEnd(t *testing.T) {
	RunFixture(t, SpanEnd, "spanend/a")
}
