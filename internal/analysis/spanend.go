package analysis

import (
	"go/ast"
	"go/types"
)

// SpanEnd enforces the tracing-span lifecycle: a span handle obtained
// from trace's StartSpan must be ended in the function that started it,
// on every return path. An unended span stays open until the tracer
// clamps it at request end, which silently misattributes its time to the
// wrong phase in every retained trace and slow-query log line — a bug no
// test catches because nothing crashes.
//
// The check is lexical, mirroring the span discipline of the hot paths:
// a deferred End covers every exit; otherwise each return statement
// after the StartSpan needs some End() call on that handle between the
// start and the return. Root() handles are exempt — the root span is
// closed by Tracer.Finish, never by the function observing it.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc: "flag trace spans that are started but not ended on every return path\n" +
		"(End the span before each return, or defer its End)",
	Run: runSpanEnd,
}

func runSpanEnd(pass *Pass) (any, error) {
	// The trace package itself is the one place allowed to manufacture
	// and retire spans without the start/End pairing.
	if pkgTail(pass.Pkg, "trace") {
		return nil, nil
	}
	for _, f := range pass.Files {
		funcScopes(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			checkSpanScope(pass, body)
		})
	}
	return nil, nil
}

// checkSpanScope verifies one function body's span starts.
func checkSpanScope(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Pass 1: span acquisitions — `sp := tr.StartSpan("phase")`.
	type spanStart struct {
		obj      types.Object
		pos      ast.Node
		deferred bool // covered by a defer sp.End()
		endPos   []ast.Node
	}
	var starts []*spanStart
	byObj := make(map[types.Object]*spanStart)
	walkScope(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			if i >= len(asg.Lhs) || !isSpanStartCall(info, rhs) {
				continue
			}
			id, ok := asg.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				pass.Reportf(rhs.Pos(), "span started and discarded; it can never be ended")
				continue
			}
			obj := objectOf(info, id)
			if obj == nil || byObj[obj] != nil {
				continue
			}
			s := &spanStart{obj: obj, pos: id}
			starts = append(starts, s)
			byObj[obj] = s
		}
		return true
	})
	if len(starts) == 0 {
		return
	}

	// Pass 2: End calls on the tracked handles, deferred or inline.
	endedHere := func(n ast.Node, deferred bool) {
		if obj := spanEndTarget(info, n); obj != nil {
			if s := byObj[obj]; s != nil {
				if deferred {
					s.deferred = true
				} else {
					s.endPos = append(s.endPos, n)
				}
			}
		}
	}
	walkScope(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			endedHere(n.Call, true)
		case *ast.CallExpr:
			endedHere(n, false)
		}
		return true
	})

	// Pass 3: coverage. A deferred End covers every exit; otherwise each
	// return lexically after the start needs an End between them. (End is
	// idempotent, so over-approximating with lexical order trades a
	// little precision for zero false positives on the straight-line
	// end-then-return shape the hot paths use.)
	for _, s := range starts {
		if s.deferred {
			continue
		}
		if len(s.endPos) == 0 {
			pass.Reportf(s.pos.Pos(), "span %s is never ended in this function; end it on every return path or defer its End", s.obj.Name())
			continue
		}
		walkScope(body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || ret.Pos() < s.pos.Pos() {
				return true
			}
			covered := false
			for _, e := range s.endPos {
				if e.Pos() > s.pos.Pos() && e.Pos() < ret.Pos() {
					covered = true
					break
				}
			}
			if !covered {
				pass.Reportf(ret.Pos(), "return without ending span %s; call its End before this return or defer it", s.obj.Name())
			}
			return true
		})
	}
}

// isSpanStartCall reports whether e calls a StartSpan method returning a
// trace SpanRef.
func isSpanStartCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "StartSpan" {
		return false
	}
	sig := fn.Signature()
	return sig.Results().Len() == 1 && namedIn(sig.Results().At(0).Type(), "SpanRef", "trace")
}

// spanEndTarget returns the handle object of an `sp.End()` call, where
// sp is a trace SpanRef, or nil for any other node.
func spanEndTarget(info *types.Info, n ast.Node) types.Object {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "End" {
		return nil
	}
	recv := fn.Signature().Recv()
	if recv == nil || !namedIn(recv.Type(), "SpanRef", "trace") {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return objectOf(info, id)
}
