package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// VetConfig is the compilation-unit description `go vet` hands a vettool:
// a JSON file (*.cfg) naming the unit's sources and the export data of
// every dependency. The field set mirrors the protocol consumed by
// x/tools' unitchecker, which is what the go command speaks.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetTool analyzes the single compilation unit described by cfgFile
// (the "go vet -vettool" protocol), printing diagnostics to stderr. The
// returned code is the process exit status: 0 clean, 1 diagnostics found,
// 2 driver failure.
func RunVetTool(cfgFile string, analyzers []*Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(stderr, "chordalvet: %v\n", err)
		return 2
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(stderr, "chordalvet: cannot decode %s: %v\n", cfgFile, err)
		return 2
	}
	if len(cfg.GoFiles) == 0 {
		// The go command never vets an empty unit; be tolerant anyway.
		return writeVetx(cfg, stderr)
	}

	fset := token.NewFileSet()
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Export data is keyed by resolved package path; imports go through
	// ImportMap first (vendoring, test variants).
	exportFile := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exportFile[path] = file
	}
	imp := mappedImporter{
		imp:       exportImporter(fset, exportFile),
		importMap: cfg.ImportMap,
	}
	pkg, err := typeCheck(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg, stderr)
		}
		fmt.Fprintf(stderr, "chordalvet: %v\n", err)
		return 2
	}

	if code := writeVetx(cfg, stderr); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	ds, err := runPackage(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "chordalvet: %v\n", err)
		return 2
	}
	sortDiagnostics(fset, ds)
	if Print(stderr, fset, ds) {
		return 1
	}
	return 0
}

// writeVetx writes the (empty) fact file the go command expects so vet
// results cache cleanly. The chordalvet analyzers exchange no facts.
func writeVetx(cfg *VetConfig, stderr io.Writer) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
		fmt.Fprintf(stderr, "chordalvet: %v\n", err)
		return 2
	}
	return 0
}

// mappedImporter applies the vet config's ImportMap before delegating to
// the export-data importer.
type mappedImporter struct {
	imp       types.Importer
	importMap map[string]string
}

// Import resolves an import path through ImportMap, then reads the
// mapped package's export data.
func (m mappedImporter) Import(path string) (*types.Package, error) {
	if resolved, ok := m.importMap[path]; ok {
		path = resolved
	}
	return m.imp.Import(path)
}

// IsVetConfig reports whether arg looks like the go command's unit
// description file rather than a package pattern.
func IsVetConfig(arg string) bool { return strings.HasSuffix(arg, ".cfg") }
