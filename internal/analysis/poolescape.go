package analysis

import (
	"go/ast"
	"go/types"
)

// PoolEscape enforces the zero-alloc scratch contract: a value taken from
// a sync.Pool (directly, or through a package-local acquire helper such
// as steiner.getScratch) is owned by exactly one query between Get and
// Put. Within each function the pass requires a matching release —
// ideally deferred — and flags the two ways pooled memory outlives its
// query: returning the pooled value (or one of its buffers) and storing
// it into a struct field, map, slice element, package variable or
// channel. A leaked buffer either pins memory (never returned to the
// pool) or is recycled while still referenced, corrupting a later query.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc: "flag sync.Pool values that are taken without a matching Put on the function's exits,\n" +
		"or that escape their owning function via returns or stores",
	Run: runPoolEscape,
}

func runPoolEscape(pass *Pass) (any, error) {
	info := pass.TypesInfo
	acquirers, releasers := classifyPoolHelpers(pass)
	for _, f := range pass.Files {
		funcScopes(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			// The acquire/release helpers themselves are the sanctioned
			// wrappers around Get and Put.
			if decl != nil {
				if obj, _ := info.Defs[decl.Name].(*types.Func); obj != nil && (acquirers[obj] || releasers[obj]) {
					return
				}
			}
			checkPoolScope(pass, body, acquirers, releasers)
		})
	}
	return nil, nil
}

// classifyPoolHelpers finds the package's acquire helpers (functions that
// return a value obtained from a sync.Pool Get) and release helpers
// (functions/methods that hand a parameter or their receiver to a
// sync.Pool Put).
func classifyPoolHelpers(pass *Pass) (acquirers, releasers map[*types.Func]bool) {
	info := pass.TypesInfo
	acquirers = make(map[*types.Func]bool)
	releasers = make(map[*types.Func]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			// Collect locals bound (possibly via type assertion) to a
			// pool Get, and parameters/receiver objects.
			got := make(map[types.Object]bool)
			owned := make(map[types.Object]bool)
			sig := obj.Signature()
			if r := sig.Recv(); r != nil {
				owned[r] = true
			}
			for i := 0; i < sig.Params().Len(); i++ {
				owned[sig.Params().At(i)] = true
			}
			walkScope(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for i, rhs := range n.Rhs {
						if i < len(n.Lhs) && isPoolGet(info, rhs) {
							if id, ok := n.Lhs[i].(*ast.Ident); ok {
								if o := objectOf(info, id); o != nil {
									got[o] = true
								}
							}
						}
					}
				case *ast.ReturnStmt:
					for _, res := range n.Results {
						if isPoolGet(info, res) {
							acquirers[obj] = true
						} else if id, ok := ast.Unparen(res).(*ast.Ident); ok && got[objectOf(info, id)] {
							acquirers[obj] = true
						}
					}
				case *ast.CallExpr:
					if arg, ok := poolPutArg(info, n); ok {
						if id, ok := ast.Unparen(arg).(*ast.Ident); ok && owned[objectOf(info, id)] {
							releasers[obj] = true
						}
					}
				}
				return true
			})
		}
	}
	return acquirers, releasers
}

// checkPoolScope verifies one function body's acquisitions.
func checkPoolScope(pass *Pass, body *ast.BlockStmt, acquirers, releasers map[*types.Func]bool) {
	info := pass.TypesInfo

	// Pass 1: find acquisitions — `v := pool.Get().(*T)` or
	// `v := getScratch(n)` — keyed by the variable object.
	type acquisition struct {
		obj      types.Object
		pos      ast.Node
		released bool // some release call names it
		deferred bool // ... via defer
	}
	var acqs []*acquisition
	byObj := make(map[types.Object]*acquisition)
	walkScope(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			if i >= len(asg.Lhs) {
				break
			}
			if !isPoolGet(info, rhs) && !isAcquireCall(info, rhs, acquirers) {
				continue
			}
			id, ok := asg.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				pass.Reportf(rhs.Pos(), "pooled value discarded at Get; it can never be returned to the pool")
				continue
			}
			obj := objectOf(info, id)
			if obj == nil || byObj[obj] != nil {
				continue
			}
			a := &acquisition{obj: obj, pos: id}
			acqs = append(acqs, a)
			byObj[obj] = a
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}

	// Pass 2: find releases (pool.Put(v), v.release(), release(v)) and
	// escapes (returns and stores of v or v.field).
	releasedHere := func(n ast.Node, deferred bool) {
		if obj := releaseTarget(info, n, releasers); obj != nil {
			if a := byObj[obj]; a != nil {
				a.released = true
				if deferred {
					a.deferred = true
				}
			}
		}
	}
	pooledExpr := func(e ast.Expr) types.Object {
		// v itself, or a selector/index rooted at v (a pooled buffer).
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if a := byObj[objectOf(info, x)]; a != nil {
				return a.obj
			}
		default:
			if sel := baseSelector(e); sel != nil {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if a := byObj[objectOf(info, id)]; a != nil {
						return a.obj
					}
				}
			}
		}
		return nil
	}
	walkScope(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			releasedHere(n.Call, true)
		case *ast.CallExpr:
			releasedHere(n, false)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if obj := pooledExpr(res); obj != nil {
					pass.Reportf(res.Pos(), "pooled %s escapes via return; the pool may recycle it under a later query", obj.Name())
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				obj := pooledExpr(rhs)
				if obj == nil || i >= len(n.Lhs) {
					continue
				}
				if storesBeyondScope(info, n.Lhs[i]) {
					pass.Reportf(rhs.Pos(), "pooled %s stored beyond its query; it must stay function-local between Get and Put", obj.Name())
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if obj := pooledExpr(v); obj != nil {
					pass.Reportf(v.Pos(), "pooled %s stored into a composite literal; it must stay function-local between Get and Put", obj.Name())
				}
			}
		case *ast.SendStmt:
			if obj := pooledExpr(n.Value); obj != nil {
				pass.Reportf(n.Value.Pos(), "pooled %s sent on a channel; it must stay function-local between Get and Put", obj.Name())
			}
		}
		return true
	})

	// Pass 3: release coverage. A deferred release covers every exit; a
	// plain release must immediately precede each return that follows
	// the acquisition, or the pool never gets the value back on that
	// path.
	for _, a := range acqs {
		if !a.released {
			pass.Reportf(a.pos.Pos(), "pooled %s is never released in this function; every Get needs a matching Put on all return paths", a.obj.Name())
			continue
		}
		if a.deferred {
			continue
		}
		walkScope(body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || ret.Pos() < a.pos.Pos() {
				return true
			}
			if !releaseJustBefore(info, body, ret, a.obj, releasers) {
				pass.Reportf(ret.Pos(), "return without releasing pooled %s; release it immediately before this return or use defer", a.obj.Name())
			}
			return true
		})
	}
}

// storesBeyondScope reports whether assigning to lhs publishes a value
// outside the current function: a field, element, dereference or
// package-level variable. Plain local variables (including pooled ones)
// are fine.
func storesBeyondScope(info *types.Info, lhs ast.Expr) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return false
		}
		obj := objectOf(info, x)
		if v, ok := obj.(*types.Var); ok {
			// Package-level variables publish to every goroutine.
			return v.Parent() == v.Pkg().Scope()
		}
		return false
	default:
		// Selector, index, star: writing through memory that may be
		// shared.
		return true
	}
}

// releaseJustBefore reports whether the statement lexically preceding ret
// in its innermost block releases obj.
func releaseJustBefore(info *types.Info, body *ast.BlockStmt, ret *ast.ReturnStmt, obj types.Object, releasers map[*types.Func]bool) bool {
	found := false
	var visit func(list []ast.Stmt)
	visit = func(list []ast.Stmt) {
		for i, s := range list {
			if s == ret {
				if i > 0 && releaseTarget(info, callOf(list[i-1]), releasers) == obj {
					found = true
				}
				return
			}
			switch s := s.(type) {
			case *ast.BlockStmt:
				visit(s.List)
			case *ast.IfStmt:
				visit(s.Body.List)
				if els, ok := s.Else.(*ast.BlockStmt); ok {
					visit(els.List)
				}
			case *ast.ForStmt:
				visit(s.Body.List)
			case *ast.RangeStmt:
				visit(s.Body.List)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						visit(cc.Body)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						visit(cc.Body)
					}
				}
			case *ast.SelectStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						visit(cc.Body)
					}
				}
			case *ast.LabeledStmt:
				visit([]ast.Stmt{s.Stmt})
			}
		}
	}
	visit(body.List)
	return found
}

// callOf unwraps an expression statement to its call, if any.
func callOf(s ast.Stmt) ast.Node {
	if es, ok := s.(*ast.ExprStmt); ok {
		if call, ok := es.X.(*ast.CallExpr); ok {
			return call
		}
	}
	return nil
}

// releaseTarget returns the object a release-shaped node hands back to a
// pool: pool.Put(v) and release(v) return v's object, v.release() returns
// v's.
func releaseTarget(info *types.Info, n ast.Node, releasers map[*types.Func]bool) types.Object {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil
	}
	if arg, ok := poolPutArg(info, call); ok {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			return objectOf(info, id)
		}
		return nil
	}
	fn := calleeFunc(info, call)
	if fn == nil || !releasers[fn] {
		return nil
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && fn.Signature().Recv() != nil {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			return objectOf(info, id)
		}
		return nil
	}
	if len(call.Args) > 0 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			return objectOf(info, id)
		}
	}
	return nil
}

// isPoolGet reports whether e is a (possibly type-asserted) call of
// (*sync.Pool).Get.
func isPoolGet(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return fn != nil && fn.FullName() == "(*sync.Pool).Get"
}

// poolPutArg returns the argument of a (*sync.Pool).Put call.
func poolPutArg(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.FullName() != "(*sync.Pool).Put" || len(call.Args) != 1 {
		return nil, false
	}
	return call.Args[0], true
}

// isAcquireCall reports whether e calls a classified acquire helper.
func isAcquireCall(info *types.Info, e ast.Expr, acquirers map[*types.Func]bool) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return fn != nil && acquirers[fn]
}

// objectOf resolves id to its object via Uses or Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
