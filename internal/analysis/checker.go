package analysis

import (
	"fmt"
	"go/token"
	"io"
	"strings"
)

// Suite returns every chordalvet analyzer in presentation order. The
// slice is freshly allocated; callers may filter it.
func Suite() []*Analyzer {
	return []*Analyzer{
		FrozenWrite,
		PoolEscape,
		AtomicStats,
		ErrWrap,
		CtxFirst,
		HotAlloc,
		SpanEnd,
	}
}

// RunPackages applies every analyzer to every package and returns the
// combined diagnostics in file-position order. Analyzer errors (not
// diagnostics — driver failures) abort the run.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		ds, err := runPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, ds...)
	}
	if fset != nil {
		sortDiagnostics(fset, all)
	}
	return all, nil
}

// runPackage applies analyzers to a single loaded package. Test files
// participate in type checking but are not analyzed: tests legitimately
// use context.Background, compare errors for identity in assertions, and
// hold pooled scratch across helper calls.
func runPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	files := pkg.Files[:0:0]
	for _, f := range pkg.Files {
		if !strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	var ds []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    func(d Diagnostic) { ds = append(ds, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	return ds, nil
}

// Print writes diagnostics one per line as "file:line:col: message
// (analyzer)" and reports whether any were written.
func Print(w io.Writer, fset *token.FileSet, ds []Diagnostic) bool {
	for _, d := range ds {
		fmt.Fprintf(w, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Category)
	}
	return len(ds) > 0
}
