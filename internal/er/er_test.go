package er

import (
	"context"
	"testing"
)

func TestSchemeValidation(t *testing.T) {
	if _, err := NewScheme(
		Object{Name: "x", Kind: KindAttribute},
		Object{Name: "x", Kind: KindAttribute},
	); err == nil {
		t.Error("duplicate object accepted")
	}
	if _, err := NewScheme(
		Object{Name: "a", Kind: KindAttribute, Components: []string{"a"}},
	); err == nil {
		t.Error("attribute with components accepted")
	}
	if _, err := NewScheme(
		Object{Name: "e", Kind: KindEntity, Components: []string{"ghost"}},
	); err == nil {
		t.Error("unknown component accepted")
	}
	if _, err := NewScheme(
		Object{Name: "e1", Kind: KindEntity},
		Object{Name: "e2", Kind: KindEntity, Components: []string{"e1"}},
	); err == nil {
		t.Error("entity aggregating entity accepted")
	}
	if _, err := NewScheme(
		Object{Name: "r1", Kind: KindRelationship},
		Object{Name: "r2", Kind: KindRelationship, Components: []string{"r1"}},
	); err == nil {
		t.Error("relationship aggregating relationship accepted")
	}
}

func TestFig1MinimalInterpretation(t *testing.T) {
	s := Fig1Scheme()
	// Query {EMPLOYEE, DATE}: the minimal interpretation is the direct
	// birthdate aggregation (no auxiliary object); the next one goes
	// through WORKS_IN (one auxiliary object).
	interps, err := s.Interpretations(context.Background(), []string{"EMPLOYEE", "DATE"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(interps) < 2 {
		t.Fatalf("interpretations = %v", interps)
	}
	if len(interps[0].Auxiliary) != 0 {
		t.Errorf("first interpretation should need no auxiliary objects: %v", interps[0])
	}
	if len(interps[1].Auxiliary) != 1 || interps[1].Auxiliary[0] != "WORKS_IN" {
		t.Errorf("second interpretation should use WORKS_IN: %v", interps[1])
	}
}

func TestFig1MinimalConnection(t *testing.T) {
	s := Fig1Scheme()
	conn, err := s.MinimalConnection(context.Background(), []string{"NAME", "BUDGET"})
	if err != nil {
		t.Fatal(err)
	}
	// NAME–EMPLOYEE–WORKS_IN–DEPARTMENT–BUDGET: 3 auxiliaries.
	if len(conn.Auxiliary) != 3 {
		t.Errorf("connection = %v", conn)
	}
}

func TestUnknownObject(t *testing.T) {
	if _, err := Fig1Scheme().Interpretations(context.Background(), []string{"GHOST"}, 1); err == nil {
		t.Error("unknown object accepted")
	}
}

func TestDisconnectedQuery(t *testing.T) {
	s := MustScheme(
		Object{Name: "a", Kind: KindAttribute},
		Object{Name: "b", Kind: KindAttribute},
	)
	if _, err := s.MinimalConnection(context.Background(), []string{"a", "b"}); err == nil {
		t.Error("disconnected objects should not connect")
	}
}

func TestGraphShape(t *testing.T) {
	s := Fig1Scheme()
	g := s.Graph()
	if g.N() != 7 {
		t.Fatalf("N = %d", g.N())
	}
	emp := g.MustID("EMPLOYEE")
	date := g.MustID("DATE")
	if !g.HasEdge(emp, date) {
		t.Error("EMPLOYEE-DATE aggregation edge missing")
	}
	// Fig 1's graph is 3-partite but not bipartite by level (WORKS_IN
	// touches DATE directly, forming an odd cycle).
	if s.StrictlyLayered() {
		t.Error("Fig1 scheme should not be strictly layered")
	}
	if _, err := s.Bipartite(); err == nil {
		t.Error("non-layered scheme produced a bipartite view")
	}
}

func TestStrictlyLayeredBipartite(t *testing.T) {
	s := MustScheme(
		Object{Name: "ssn", Kind: KindAttribute},
		Object{Name: "dname", Kind: KindAttribute},
		Object{Name: "person", Kind: KindEntity, Components: []string{"ssn"}},
		Object{Name: "dep", Kind: KindEntity, Components: []string{"dname"}},
		Object{Name: "member", Kind: KindRelationship, Components: []string{"person", "dep"}},
	)
	if !s.StrictlyLayered() {
		t.Fatal("scheme should be strictly layered")
	}
	b, err := s.Bipartite()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.V2()); got != 2 { // the two entities
		t.Errorf("V2 = %d", got)
	}
}

func TestObjectLookupAndKinds(t *testing.T) {
	s := Fig1Scheme()
	o, ok := s.Object("WORKS_IN")
	if !ok || o.Kind != KindRelationship {
		t.Errorf("Object lookup: %+v %v", o, ok)
	}
	if _, ok := s.Object("GHOST"); ok {
		t.Error("ghost object found")
	}
	if KindAttribute.String() != "attribute" || Kind(9).String() != "Kind(9)" {
		t.Error("Kind.String wrong")
	}
	if len(s.Objects()) != 7 {
		t.Error("Objects() wrong length")
	}
}
