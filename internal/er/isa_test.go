package er

import (
	"context"
	"testing"
)

// managerScheme extends Fig 1 with a MANAGER entity generalizing EMPLOYEE.
func managerScheme() *Scheme {
	return MustScheme(
		Object{Name: "NAME", Kind: KindAttribute},
		Object{Name: "DATE", Kind: KindAttribute},
		Object{Name: "BONUS", Kind: KindAttribute},
		Object{Name: "EMPLOYEE", Kind: KindEntity, Components: []string{"NAME", "DATE"}},
		Object{Name: "MANAGER", Kind: KindEntity, Components: []string{"BONUS"}}.WithISA("EMPLOYEE"),
	)
}

func TestISAValidation(t *testing.T) {
	if _, err := NewScheme(
		Object{Name: "a", Kind: KindAttribute}.WithISA("a"),
	); err == nil {
		t.Error("attribute with ISA accepted")
	}
	if _, err := NewScheme(
		Object{Name: "e", Kind: KindEntity}.WithISA("ghost"),
	); err == nil {
		t.Error("ISA to unknown object accepted")
	}
	if _, err := NewScheme(
		Object{Name: "a", Kind: KindAttribute},
		Object{Name: "e", Kind: KindEntity}.WithISA("a"),
	); err == nil {
		t.Error("ISA to non-entity accepted")
	}
	if _, err := NewScheme(
		Object{Name: "e1", Kind: KindEntity}.WithISA("e2"),
		Object{Name: "e2", Kind: KindEntity}.WithISA("e1"),
	); err == nil {
		t.Error("ISA cycle accepted")
	}
}

func TestISAEdgeInGraph(t *testing.T) {
	s := managerScheme()
	g := s.Graph()
	if !g.HasEdge(g.MustID("MANAGER"), g.MustID("EMPLOYEE")) {
		t.Error("ISA edge missing from object graph")
	}
}

func TestISAConnectionThroughHierarchy(t *testing.T) {
	s := managerScheme()
	// MANAGER inherits NAME via EMPLOYEE: the minimal connection uses the
	// ISA edge with EMPLOYEE as the only auxiliary object.
	conn, err := s.MinimalConnection(context.Background(), []string{"MANAGER", "NAME"})
	if err != nil {
		t.Fatal(err)
	}
	if len(conn.Auxiliary) != 1 || conn.Auxiliary[0] != "EMPLOYEE" {
		t.Errorf("connection = %+v", conn)
	}
}

func TestSupertypes(t *testing.T) {
	s := managerScheme()
	got := s.Supertypes("MANAGER")
	if len(got) != 1 || got[0] != "EMPLOYEE" {
		t.Errorf("Supertypes = %v", got)
	}
	if s.Supertypes("EMPLOYEE") != nil {
		t.Error("EMPLOYEE should have no supertypes")
	}
	if s.Supertypes("GHOST") != nil {
		t.Error("unknown object should have no supertypes")
	}
	// Deep chain.
	deep := MustScheme(
		Object{Name: "A", Kind: KindEntity},
		Object{Name: "B", Kind: KindEntity}.WithISA("A"),
		Object{Name: "C", Kind: KindEntity}.WithISA("B"),
	)
	if got := deep.Supertypes("C"); len(got) != 2 || got[0] != "B" || got[1] != "A" {
		t.Errorf("deep Supertypes = %v", got)
	}
}
