// Package er implements the entity–relationship substrate of the paper's
// introduction (Fig 1): conceptual schemes with attributes, entities
// (aggregations of attributes) and relationships (aggregations of entities
// and attributes), their k-partite object graphs, and the
// query-interpretation flow — given object names, propose connections
// ranked by the number of auxiliary objects, minimal first.
package er

import (
	"context"
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/intset"
	"repro/internal/steiner"
)

// Kind is the conceptual level of an object.
type Kind int

// Object kinds, lowest level first.
const (
	KindAttribute Kind = iota
	KindEntity
	KindRelationship
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindAttribute:
		return "attribute"
	case KindEntity:
		return "entity"
	case KindRelationship:
		return "relationship"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Object is a named concept defined in terms of lower-level objects:
// entities aggregate attributes; relationships aggregate entities and
// attributes. An entity may additionally declare a supertype (ISA
// generalization, see isa.go).
type Object struct {
	Name       string
	Kind       Kind
	Components []string
	ISA        string
}

// Scheme is an entity–relationship scheme.
type Scheme struct {
	objects []Object
	index   map[string]int
}

// NewScheme validates and builds a scheme: component references must exist
// and respect the level discipline (attributes have no components; entity
// components are attributes; relationship components are entities or
// attributes).
func NewScheme(objects ...Object) (*Scheme, error) {
	s := &Scheme{index: make(map[string]int, len(objects))}
	for _, o := range objects {
		if _, dup := s.index[o.Name]; dup {
			return nil, fmt.Errorf("er: duplicate object %q", o.Name)
		}
		s.index[o.Name] = len(s.objects)
		s.objects = append(s.objects, o)
	}
	if err := s.validateISA(); err != nil {
		return nil, err
	}
	for _, o := range s.objects {
		if o.Kind == KindAttribute && len(o.Components) > 0 {
			return nil, fmt.Errorf("er: attribute %q has components", o.Name)
		}
		for _, c := range o.Components {
			j, ok := s.index[c]
			if !ok {
				return nil, fmt.Errorf("er: object %q references unknown component %q", o.Name, c)
			}
			ck := s.objects[j].Kind
			switch o.Kind {
			case KindEntity:
				if ck != KindAttribute {
					return nil, fmt.Errorf("er: entity %q may aggregate only attributes, got %s %q", o.Name, ck, c)
				}
			case KindRelationship:
				if ck == KindRelationship {
					return nil, fmt.Errorf("er: relationship %q may not aggregate relationship %q", o.Name, c)
				}
			}
		}
	}
	return s, nil
}

// MustScheme is NewScheme panicking on error; for fixtures.
func MustScheme(objects ...Object) *Scheme {
	s, err := NewScheme(objects...)
	if err != nil {
		panic(err)
	}
	return s
}

// Objects returns the objects in declaration order.
func (s *Scheme) Objects() []Object { return s.objects }

// Object returns the object with the given name.
func (s *Scheme) Object(name string) (Object, bool) {
	i, ok := s.index[name]
	if !ok {
		return Object{}, false
	}
	return s.objects[i], true
}

// Graph returns the object graph: one node per object, an edge from each
// object to each of its components (the k-partite graph of Fig 1).
func (s *Scheme) Graph() *graph.Graph {
	g := graph.New()
	for _, o := range s.objects {
		g.AddNode(o.Name)
	}
	for i, o := range s.objects {
		for _, c := range o.Components {
			g.AddEdge(i, s.index[c])
		}
		if o.ISA != "" {
			g.AddEdge(i, s.index[o.ISA])
		}
	}
	return g
}

// StrictlyLayered reports whether every relationship aggregates only
// entities (no direct attributes). Strictly layered schemes have bipartite
// object graphs — entities on one side, attributes and relationships on
// the other — so the whole chordality machinery applies directly, as the
// paper's closing remark in Section 1 observes.
func (s *Scheme) StrictlyLayered() bool {
	for _, o := range s.objects {
		if o.Kind != KindRelationship {
			continue
		}
		for _, c := range o.Components {
			if j := s.index[c]; s.objects[j].Kind == KindAttribute {
				return false
			}
		}
	}
	return true
}

// Bipartite returns the object graph as a bipartite graph (V1 = attributes
// and relationships, V2 = entities) when the scheme is strictly layered.
func (s *Scheme) Bipartite() (*bipartite.Graph, error) {
	if !s.StrictlyLayered() {
		return nil, fmt.Errorf("er: scheme is not strictly layered; object graph is not bipartite by level")
	}
	g := s.Graph()
	side := make([]graph.Side, g.N())
	for i, o := range s.objects {
		if o.Kind == KindEntity {
			side[i] = graph.Side2
		} else {
			side[i] = graph.Side1
		}
	}
	return bipartite.FromGraph(g, side)
}

// Interpretation is a candidate reading of a query: the objects of a
// nonredundant connection, split into the query objects and the auxiliary
// objects the user would additionally need to know.
type Interpretation struct {
	Objects   []string
	Auxiliary []string
}

// Interpretations resolves a query given as object names into connections
// ranked by the number of auxiliary objects (minimal first) — the
// disambiguation flow of the paper's introduction. limit bounds the number
// of alternatives returned, ctx the enumeration itself (it is exponential
// in the auxiliary budget).
func (s *Scheme) Interpretations(ctx context.Context, query []string, limit int) ([]Interpretation, error) {
	g := s.Graph()
	terminals := make([]int, len(query))
	for i, name := range query {
		id, ok := g.ID(name)
		if !ok {
			return nil, fmt.Errorf("er: unknown object %q", name)
		}
		terminals[i] = id
	}
	p := intset.FromSlice(terminals)
	covers, err := steiner.RankedCovers(ctx, g, terminals, g.N(), limit)
	if err != nil {
		return nil, err
	}
	out := make([]Interpretation, len(covers))
	for i, c := range covers {
		out[i] = Interpretation{
			Objects:   g.Labels(c),
			Auxiliary: g.Labels(c.Diff(p)),
		}
	}
	return out, nil
}

// MinimalConnection returns the first-ranked interpretation, i.e. the
// connection with the fewest auxiliary objects (a node-minimum Steiner
// tree over the query).
func (s *Scheme) MinimalConnection(ctx context.Context, query []string) (Interpretation, error) {
	interps, err := s.Interpretations(ctx, query, 1)
	if err != nil {
		return Interpretation{}, err
	}
	if len(interps) == 0 {
		return Interpretation{}, fmt.Errorf("er: objects %v cannot be connected", query)
	}
	return interps[0], nil
}

// Fig1Scheme is the paper's Fig 1 example: EMPLOYEE and DEPARTMENT
// entities, a WORKS_IN relationship carrying a start DATE, and EMPLOYEE
// carrying a birth DATE directly. The query {EMPLOYEE, DATE} then has the
// birthdate reading as its minimal interpretation (no auxiliary object)
// and the works-in reading next (one auxiliary object).
func Fig1Scheme() *Scheme {
	return MustScheme(
		Object{Name: "NAME", Kind: KindAttribute},
		Object{Name: "DATE", Kind: KindAttribute},
		Object{Name: "D#", Kind: KindAttribute},
		Object{Name: "BUDGET", Kind: KindAttribute},
		Object{Name: "EMPLOYEE", Kind: KindEntity, Components: []string{"NAME", "DATE"}},
		Object{Name: "DEPARTMENT", Kind: KindEntity, Components: []string{"D#", "BUDGET"}},
		Object{Name: "WORKS_IN", Kind: KindRelationship, Components: []string{"EMPLOYEE", "DEPARTMENT", "DATE"}},
	)
}
