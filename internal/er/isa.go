package er

import "fmt"

// Generalization support — the second abstraction primitive the paper's
// introduction names ("aggregation, generalization, and classification").
// An entity may declare a supertype; the object graph gains an ISA edge,
// so minimal connections can travel through the generalization hierarchy
// (a query naming MANAGER and an attribute of EMPLOYEE connects via the
// ISA edge, with EMPLOYEE as the only auxiliary concept).

// WithISA returns a copy of o declaring the supertype. Only entities may
// generalize, which NewScheme validates.
func (o Object) WithISA(supertype string) Object {
	o.ISA = supertype
	return o
}

// validateISA is called by NewScheme.
func (s *Scheme) validateISA() error {
	for _, o := range s.objects {
		if o.ISA == "" {
			continue
		}
		if o.Kind != KindEntity {
			return fmt.Errorf("er: %s %q declares ISA; only entities generalize", o.Kind, o.Name)
		}
		j, ok := s.index[o.ISA]
		if !ok {
			return fmt.Errorf("er: entity %q ISA unknown object %q", o.Name, o.ISA)
		}
		if s.objects[j].Kind != KindEntity {
			return fmt.Errorf("er: entity %q ISA non-entity %q", o.Name, o.ISA)
		}
	}
	// Reject ISA cycles by walking up from every entity.
	for _, o := range s.objects {
		seen := map[string]bool{}
		for cur := o; cur.ISA != ""; {
			if seen[cur.ISA] {
				return fmt.Errorf("er: ISA cycle through %q", cur.ISA)
			}
			seen[cur.ISA] = true
			cur = s.objects[s.index[cur.ISA]]
		}
	}
	return nil
}

// Supertypes returns the ISA chain of the named entity, nearest first.
func (s *Scheme) Supertypes(name string) []string {
	var out []string
	i, ok := s.index[name]
	if !ok {
		return nil
	}
	for cur := s.objects[i]; cur.ISA != ""; cur = s.objects[s.index[cur.ISA]] {
		out = append(out, cur.ISA)
	}
	return out
}
