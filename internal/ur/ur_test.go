package ur_test

import (
	"context"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/relational"
	"repro/internal/schema"
	"repro/internal/ur"
)

// companyDB builds the α-acyclic company schema with instances.
func companyDB(t *testing.T) *ur.Interface {
	t.Helper()
	s := schema.MustNew(
		schema.RelScheme{Name: "emp", Attrs: []string{"name", "dept"}},
		schema.RelScheme{Name: "dept", Attrs: []string{"dept", "floor"}},
		schema.RelScheme{Name: "floorplan", Attrs: []string{"floor", "area"}},
		schema.RelScheme{Name: "badge", Attrs: []string{"name", "badgeno"}},
	)
	emp := relational.NewRelation("emp", "name", "dept")
	emp.Insert("ann", "toys")
	emp.Insert("bob", "tools")
	dept := relational.NewRelation("dept", "dept", "floor")
	dept.Insert("toys", "1")
	dept.Insert("tools", "2")
	fp := relational.NewRelation("floorplan", "floor", "area")
	fp.Insert("1", "100")
	fp.Insert("2", "250")
	badge := relational.NewRelation("badge", "name", "badgeno")
	badge.Insert("ann", "b1")
	badge.Insert("bob", "b2")
	u, err := ur.New(s, emp, dept, fp, badge)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestSchemaIsAlphaAcyclicAndUsesAlgorithm1(t *testing.T) {
	u := companyDB(t)
	if got := u.Schema.Classify(); got != hypergraph.DegreeBerge {
		t.Errorf("schema degree = %v (chain should be Berge-acyclic)", got)
	}
	plan, err := u.Plan(context.Background(), []string{"name", "area"})
	if err != nil {
		t.Fatal(err)
	}
	// Connecting name and area requires emp, dept, floorplan: 3 relations,
	// and that is minimal.
	if plan.PlanV2Count() != 3 {
		t.Errorf("plan uses %v, want 3 relations", plan.Relations)
	}
	if !plan.Connection.V2Optimal {
		t.Error("plan should be V2-optimal on this scheme")
	}
}

func TestAnswerJoinsAndProjects(t *testing.T) {
	u := companyDB(t)
	res, plan, err := u.Answer(context.Background(), []string{"name", "area"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.PlanV2Count() != 3 {
		t.Errorf("plan relations = %v", plan.Relations)
	}
	want := relational.NewRelation("want", "name", "area")
	want.Insert("ann", "100")
	want.Insert("bob", "250")
	if !relational.Equal(res, want) {
		t.Errorf("answer = %v %v", res.Attrs, res.Tuples())
	}
}

func TestAnswerSingleRelation(t *testing.T) {
	u := companyDB(t)
	res, plan, err := u.Answer(context.Background(), []string{"name", "dept"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.PlanV2Count() != 1 || plan.Relations[0] != "emp" {
		t.Errorf("plan = %v", plan.Relations)
	}
	if res.Len() != 2 {
		t.Errorf("answer = %d tuples", res.Len())
	}
}

func TestQueryByRelationName(t *testing.T) {
	// "badge" is a relation-only name; "dept" is both a relation and an
	// attribute and resolves to the attribute. Connecting the badge
	// relation to the dept attribute goes through emp.
	u := companyDB(t)
	res, plan, err := u.Answer(context.Background(), []string{"badge", "dept"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.PlanV2Count() != 2 {
		t.Errorf("plan = %v, want {badge, emp}", plan.Relations)
	}
	// Projection carries the badge relation's attributes plus the dept
	// attribute.
	for _, a := range []string{"name", "badgeno", "dept"} {
		if !res.HasAttr(a) {
			t.Errorf("answer missing attribute %q", a)
		}
	}
	if res.HasAttr("floor") {
		t.Error("answer should not carry floor")
	}
}

func TestUnknownNameError(t *testing.T) {
	u := companyDB(t)
	if _, err := u.Plan(context.Background(), []string{"nonsense"}); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	s := schema.MustNew(schema.RelScheme{Name: "r", Attrs: []string{"a", "b"}})
	bad := relational.NewRelation("zzz", "a", "b")
	if _, err := ur.New(s, bad); err == nil {
		t.Error("instance without scheme accepted")
	}
	short := relational.NewRelation("r", "a")
	if _, err := ur.New(s, short); err == nil {
		t.Error("arity mismatch accepted")
	}
	misnamed := relational.NewRelation("r", "a", "c")
	if _, err := ur.New(s, misnamed); err == nil {
		t.Error("attribute mismatch accepted")
	}
	ok := relational.NewRelation("r", "a", "b")
	if _, err := ur.New(s, ok, ok); err == nil {
		t.Error("duplicate instance accepted")
	}
}

func TestInterpretationsDisambiguation(t *testing.T) {
	// Two ways to connect name and floor: via dept (1 auxiliary relation
	// chain) or via office (direct). The ranked list must start with the
	// smaller reading.
	s := schema.MustNew(
		schema.RelScheme{Name: "emp", Attrs: []string{"name", "dept"}},
		schema.RelScheme{Name: "dept", Attrs: []string{"dept", "floor"}},
		schema.RelScheme{Name: "office", Attrs: []string{"name", "floor"}},
	)
	u, err := ur.New(s)
	if err != nil {
		t.Fatal(err)
	}
	interps, err := u.Interpretations(context.Background(), []string{"name", "floor"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(interps) < 2 {
		t.Fatalf("interpretations = %v", interps)
	}
	if len(interps[0]) != 3 { // name, floor, office
		t.Errorf("first interpretation = %v", interps[0])
	}
	found := false
	for _, x := range interps[0] {
		if x == "office" {
			found = true
		}
	}
	if !found {
		t.Errorf("first interpretation should use office: %v", interps[0])
	}
}

func TestAnswerWithoutInstance(t *testing.T) {
	s := schema.MustNew(schema.RelScheme{Name: "r", Attrs: []string{"a", "b"}})
	u, err := ur.New(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Answer(context.Background(), []string{"a", "b"}); err == nil {
		t.Error("Answer without instance should fail")
	}
}

func TestAccessors(t *testing.T) {
	u := companyDB(t)
	if u.Connector() == nil {
		t.Error("Connector() nil")
	}
	plan, err := u.Plan(context.Background(), []string{"name", "floor"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.TreeSize() < 4 {
		t.Errorf("TreeSize = %d", plan.TreeSize())
	}
	inc := u.Schema.Bipartite()
	conn, err := ur.New(u.Schema)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := conn.Plan(context.Background(), []string{"name", "floor"})
	if err != nil {
		t.Fatal(err)
	}
	if got := ur.V2Count(inc.B, p2.Connection.Tree); got != p2.PlanV2Count() {
		t.Errorf("V2Count = %d, plan says %d", got, p2.PlanV2Count())
	}
}

func TestPlanDisconnected(t *testing.T) {
	s := schema.MustNew(
		schema.RelScheme{Name: "r1", Attrs: []string{"a"}},
		schema.RelScheme{Name: "r2", Attrs: []string{"b"}},
	)
	u, err := ur.New(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Plan(context.Background(), []string{"a", "b"}); err == nil {
		t.Error("disconnected query accepted")
	}
	if _, err := u.Interpretations(context.Background(), []string{"ghost"}, 1); err == nil {
		t.Error("unknown name accepted in Interpretations")
	}
}
