package ur

import (
	"context"
	"fmt"

	"repro/internal/relational"
	"repro/internal/schema"
)

// Condition is an equality restriction attr = value on a query.
type Condition struct {
	Attr  string
	Value string
}

// AnswerWhere answers a query with equality conditions: the condition
// attributes join the connection terminals (the user mentioned them, so
// the plan must reach them), selections are pushed down into every
// selected relation carrying the attribute before the join, and the result
// is projected onto the query names only.
//
// Selection pushdown before the semijoin program is the standard
// optimization the paper's universal-relation references [13, 14] assume;
// it keeps intermediate results proportional to the restricted data.
func (u *Interface) AnswerWhere(ctx context.Context, query []string, conds []Condition) (*relational.Relation, Plan, error) {
	full := append([]string(nil), query...)
	seen := map[string]bool{}
	for _, q := range query {
		seen[q] = true
	}
	for _, c := range conds {
		if _, ok := u.attrNode[c.Attr]; !ok {
			return nil, Plan{}, fmt.Errorf("ur: condition on unknown attribute %q", c.Attr)
		}
		if !seen[c.Attr] {
			seen[c.Attr] = true
			full = append(full, c.Attr)
		}
	}
	plan, err := u.Plan(ctx, full)
	if err != nil {
		return nil, Plan{}, err
	}
	var rels []*relational.Relation
	var sub []schema.RelScheme
	for _, name := range plan.Relations {
		inst, ok := u.db[name]
		if !ok {
			return nil, Plan{}, fmt.Errorf("ur: no instance loaded for relation %q", name)
		}
		// Push every applicable selection down into this relation.
		for _, c := range conds {
			if inst.HasAttr(c.Attr) {
				sel := inst.Select(c.Attr, c.Value)
				sel.Name = inst.Name
				inst = sel
			}
		}
		rels = append(rels, inst)
		sub = append(sub, u.Schema.Relations[u.Schema.RelationIndex(name)])
	}
	if len(rels) == 0 {
		return nil, Plan{}, fmt.Errorf("ur: query %v selects no relations", full)
	}
	subSchema, err := schema.New(sub...)
	if err != nil {
		return nil, Plan{}, err
	}
	var joined *relational.Relation
	if parent, ok := subSchema.JoinTree(); ok {
		joined, err = relational.JoinAcyclic(rels, parent)
		if err != nil {
			return nil, Plan{}, err
		}
	} else {
		joined = relational.JoinNaive(rels)
	}
	// Project onto the original query names only (conditions restrict, the
	// projection answers).
	var proj []string
	projSeen := map[string]bool{}
	for _, name := range query {
		if _, isAttr, err := u.resolve(name); err == nil && isAttr {
			if !projSeen[name] {
				projSeen[name] = true
				proj = append(proj, name)
			}
		} else if err == nil {
			idx := u.Schema.RelationIndex(name)
			for _, a := range u.Schema.Relations[idx].Attrs {
				if !projSeen[a] {
					projSeen[a] = true
					proj = append(proj, a)
				}
			}
		}
	}
	result := joined.Project(proj...)
	result.Name = "answer"
	return result, plan, nil
}
