// Package ur implements the universal-relation interface the paper's
// introduction motivates ([10, 13, 14]): the user asks for a set of
// attribute (and/or relation) names without knowing how attributes
// aggregate into relation schemes; the system finds a minimal connection on
// the attribute/relation bipartite graph — minimizing the number of
// relations via Algorithm 1 when the scheme is α-acyclic — and evaluates
// the corresponding join, Yannakakis-style when possible.
package ur

import (
	"context"
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/relational"
	"repro/internal/schema"
	"repro/internal/steiner"
)

// Interface answers attribute-level queries over a populated database.
type Interface struct {
	Schema *schema.Schema
	inc    bipartite.Incidence
	conn   *core.Connector
	db     map[string]*relational.Relation

	attrNode map[string]int // attribute name -> V1 graph node
	relNode  map[string]int // relation name  -> V2 graph node
	nodeRel  map[int]string // V2 graph node  -> relation name
}

// New validates that every relation instance matches its scheme and builds
// the interface. Instances may be omitted for schema-only use (Plan works,
// Answer fails for missing relations).
func New(s *schema.Schema, instances ...*relational.Relation) (*Interface, error) {
	u := &Interface{
		Schema:   s,
		inc:      s.Bipartite(),
		db:       make(map[string]*relational.Relation, len(instances)),
		attrNode: make(map[string]int),
		relNode:  make(map[string]int),
		nodeRel:  make(map[int]string),
	}
	u.conn = core.New(u.inc.B)
	// Hypergraph nodes were allocated in s.Attributes() order and edges in
	// s.Relations order; the incidence mappings translate them to graph
	// ids. Resolution is by id, so an attribute and a relation may share a
	// name (queries prefer the attribute; see resolve).
	for i, a := range s.Attributes() {
		u.attrNode[a] = u.inc.NodeID[i]
	}
	for i, r := range s.Relations {
		u.relNode[r.Name] = u.inc.EdgeID[i]
		u.nodeRel[u.inc.EdgeID[i]] = r.Name
	}
	for _, r := range instances {
		idx := s.RelationIndex(r.Name)
		if idx == -1 {
			return nil, fmt.Errorf("ur: instance %q has no scheme", r.Name)
		}
		want := s.Relations[idx].Attrs
		if len(want) != len(r.Attrs) {
			return nil, fmt.Errorf("ur: instance %q arity %d, scheme arity %d", r.Name, len(r.Attrs), len(want))
		}
		for _, a := range want {
			if !r.HasAttr(a) {
				return nil, fmt.Errorf("ur: instance %q missing attribute %q", r.Name, a)
			}
		}
		if _, dup := u.db[r.Name]; dup {
			return nil, fmt.Errorf("ur: duplicate instance %q", r.Name)
		}
		u.db[r.Name] = r
	}
	return u, nil
}

// Connector exposes the underlying classifier (e.g. to inspect which
// theorem applies to the scheme).
func (u *Interface) Connector() *core.Connector { return u.conn }

// Plan is a resolved query: the connection found on the bipartite scheme
// graph and the relations it selects.
type Plan struct {
	Relations  []string // relation names joined to answer the query
	Attributes []string // the query attributes
	Connection core.Connection
}

// resolve maps a query name to its graph node. A name that is both an
// attribute and a relation resolves to the attribute (queries are
// primarily attribute-level; qualify by splitting the schema if the
// relation reading is needed).
func (u *Interface) resolve(name string) (id int, isAttr bool, err error) {
	if id, ok := u.attrNode[name]; ok {
		return id, true, nil
	}
	if id, ok := u.relNode[name]; ok {
		return id, false, nil
	}
	return 0, false, fmt.Errorf("ur: unknown attribute or relation %q", name)
}

// Plan resolves a query given as attribute and/or relation names into a
// minimal connection (Definition 8/9): the relations of the returned plan
// connect all query objects, minimizing the relation count when the scheme
// class admits it. ctx bounds the connection search (v2 contract: the
// solvers check it in their hot loops).
func (u *Interface) Plan(ctx context.Context, query []string) (Plan, error) {
	var terminals []int
	var attrs []string
	for _, name := range query {
		id, isAttr, err := u.resolve(name)
		if err != nil {
			return Plan{}, err
		}
		terminals = append(terminals, id)
		if isAttr {
			attrs = append(attrs, name)
		}
	}
	connection, err := u.conn.Connect(ctx, terminals)
	if err != nil {
		return Plan{}, fmt.Errorf("ur: cannot connect %v: %w", query, err)
	}
	var rels []string
	for _, v := range connection.Tree.Nodes {
		if name, ok := u.nodeRel[v]; ok {
			rels = append(rels, name)
		}
	}
	return Plan{Relations: rels, Attributes: attrs, Connection: connection}, nil
}

// Answer plans the query and evaluates it: the selected relations are
// joined — via the Yannakakis algorithm along a join tree when the
// selected subscheme is α-acyclic, naively otherwise — and projected onto
// the query attributes. Relation names in the query contribute their
// attributes to the projection.
func (u *Interface) Answer(ctx context.Context, query []string) (*relational.Relation, Plan, error) {
	plan, err := u.Plan(ctx, query)
	if err != nil {
		return nil, Plan{}, err
	}
	var rels []*relational.Relation
	var sub []schema.RelScheme
	for _, name := range plan.Relations {
		inst, ok := u.db[name]
		if !ok {
			return nil, Plan{}, fmt.Errorf("ur: no instance loaded for relation %q", name)
		}
		rels = append(rels, inst)
		sub = append(sub, u.Schema.Relations[u.Schema.RelationIndex(name)])
	}
	if len(rels) == 0 {
		return nil, Plan{}, fmt.Errorf("ur: query %v selects no relations", query)
	}
	subSchema, err := schema.New(sub...)
	if err != nil {
		return nil, Plan{}, err
	}
	var joined *relational.Relation
	if parent, ok := subSchema.JoinTree(); ok {
		joined, err = relational.JoinAcyclic(rels, parent)
		if err != nil {
			return nil, Plan{}, err
		}
	} else {
		joined = relational.JoinNaive(rels)
	}
	// Projection attributes: the query attributes plus all attributes of
	// relations named explicitly in the query (resolved as relations).
	proj := append([]string(nil), plan.Attributes...)
	seen := map[string]bool{}
	for _, a := range proj {
		seen[a] = true
	}
	for _, name := range query {
		if _, isAttr, err := u.resolve(name); err == nil && !isAttr {
			idx := u.Schema.RelationIndex(name)
			for _, a := range u.Schema.Relations[idx].Attrs {
				if !seen[a] {
					seen[a] = true
					proj = append(proj, a)
				}
			}
		}
	}
	result := joined.Project(proj...)
	result.Name = "answer"
	return result, plan, nil
}

// Interpretations lists alternative query interpretations ranked by the
// number of auxiliary objects, as label sets — the interactive
// disambiguation loop of the paper's introduction.
func (u *Interface) Interpretations(ctx context.Context, query []string, limit int) ([][]string, error) {
	g := u.inc.B.G()
	var terminals []int
	for _, name := range query {
		id, _, err := u.resolve(name)
		if err != nil {
			return nil, err
		}
		terminals = append(terminals, id)
	}
	interps, err := u.conn.Interpretations(ctx, terminals, g.N(), limit)
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(interps))
	for i, in := range interps {
		out[i] = g.Labels(in.Nodes)
	}
	return out, nil
}

// PlanV2Count returns how many relations the plan uses (the quantity
// Algorithm 1 minimizes).
func (p Plan) PlanV2Count() int { return len(p.Relations) }

// TreeSize returns the total object count of the plan's connection.
func (p Plan) TreeSize() int { return p.Connection.Tree.Nodes.Len() }

// V2Count re-exports steiner.V2Count for callers holding the incidence.
func V2Count(b *bipartite.Graph, t steiner.Tree) int { return steiner.V2Count(b, t) }
