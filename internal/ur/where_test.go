package ur_test

import (
	"context"
	"testing"

	"repro/internal/relational"
	"repro/internal/ur"
)

func TestAnswerWhereSelectsAndProjects(t *testing.T) {
	u := companyDB(t)
	res, plan, err := u.AnswerWhere(context.Background(), []string{"name"}, []ur.Condition{{Attr: "area", Value: "100"}})
	if err != nil {
		t.Fatal(err)
	}
	// The condition attribute forces the plan out to floorplan.
	if plan.PlanV2Count() != 3 {
		t.Errorf("plan = %v", plan.Relations)
	}
	want := relational.NewRelation("want", "name")
	want.Insert("ann")
	if !relational.Equal(res, want) {
		t.Errorf("answer = %v %v", res.Attrs, res.Tuples())
	}
}

func TestAnswerWhereConditionOnQueriedAttr(t *testing.T) {
	u := companyDB(t)
	res, _, err := u.AnswerWhere(context.Background(), []string{"name", "dept"}, []ur.Condition{{Attr: "dept", Value: "toys"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("answer = %v", res.Tuples())
	}
	if res.Value(res.Tuples()[0], "name") != "ann" {
		t.Errorf("answer = %v", res.Tuples())
	}
}

func TestAnswerWhereEmptySelection(t *testing.T) {
	u := companyDB(t)
	res, _, err := u.AnswerWhere(context.Background(), []string{"name"}, []ur.Condition{{Attr: "floor", Value: "99"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("expected empty answer, got %v", res.Tuples())
	}
}

func TestAnswerWhereUnknownAttr(t *testing.T) {
	u := companyDB(t)
	if _, _, err := u.AnswerWhere(context.Background(), []string{"name"}, []ur.Condition{{Attr: "ghost", Value: "x"}}); err == nil {
		t.Error("unknown condition attribute accepted")
	}
}

func TestAnswerWhereNoConditions(t *testing.T) {
	u := companyDB(t)
	res, _, err := u.AnswerWhere(context.Background(), []string{"name", "dept"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("answer = %v", res.Tuples())
	}
}
