package graphio

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/bipartite"
	"repro/internal/chordality"
	"repro/internal/graph"
	"repro/internal/hypergraph"
)

// BipartiteJSON is the JSON wire form of a bipartite graph.
type BipartiteJSON struct {
	V1    []string    `json:"v1"`
	V2    []string    `json:"v2"`
	Edges [][2]string `json:"edges"`
}

// MarshalBipartite encodes b as JSON.
func MarshalBipartite(b *bipartite.Graph) ([]byte, error) {
	g := b.G()
	out := BipartiteJSON{
		V1: g.Labels(b.V1()),
		V2: g.Labels(b.V2()),
	}
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if b.Side(u) == graph.Side2 {
			u, v = v, u
		}
		out.Edges = append(out.Edges, [2]string{g.Label(u), g.Label(v)})
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalBipartite decodes a BipartiteJSON document.
func UnmarshalBipartite(data []byte) (*bipartite.Graph, error) {
	var in BipartiteJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	b := bipartite.New()
	for _, l := range in.V1 {
		if _, dup := b.G().ID(l); dup {
			return nil, fmt.Errorf("graphio: duplicate node %q", l)
		}
		b.AddV1(l)
	}
	for _, l := range in.V2 {
		if _, dup := b.G().ID(l); dup {
			return nil, fmt.Errorf("graphio: duplicate node %q", l)
		}
		b.AddV2(l)
	}
	for _, e := range in.Edges {
		u, ok := b.G().ID(e[0])
		if !ok {
			return nil, fmt.Errorf("graphio: unknown node %q", e[0])
		}
		v, ok := b.G().ID(e[1])
		if !ok {
			return nil, fmt.Errorf("graphio: unknown node %q", e[1])
		}
		if b.Side(u) == b.Side(v) {
			return nil, fmt.Errorf("graphio: edge %s-%s joins one side", e[0], e[1])
		}
		b.AddEdge(u, v)
	}
	return b, nil
}

// HypergraphJSON is the JSON wire form of a hypergraph.
type HypergraphJSON struct {
	Nodes []string            `json:"nodes"`
	Edges map[string][]string `json:"edges"`
	// EdgeOrder preserves the edge family's order and duplicates (JSON
	// maps cannot); when present it lists edge names in order and Edges
	// may omit entries for duplicates named name#k.
	EdgeOrder []string `json:"edgeOrder,omitempty"`
}

// MarshalHypergraph encodes h as JSON.
func MarshalHypergraph(h *hypergraph.Hypergraph) ([]byte, error) {
	out := HypergraphJSON{Edges: map[string][]string{}}
	for v := 0; v < h.N(); v++ {
		out.Nodes = append(out.Nodes, h.NodeLabel(v))
	}
	seen := map[string]bool{}
	for i := 0; i < h.M(); i++ {
		name := h.EdgeName(i)
		if name == "" {
			name = fmt.Sprintf("e%d", i)
		}
		for seen[name] {
			name = fmt.Sprintf("%s#%d", name, i)
		}
		seen[name] = true
		out.Edges[name] = h.NodeLabels(h.Edge(i))
		out.EdgeOrder = append(out.EdgeOrder, name)
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalHypergraph decodes a HypergraphJSON document.
func UnmarshalHypergraph(data []byte) (*hypergraph.Hypergraph, error) {
	var in HypergraphJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	h := hypergraph.New()
	for _, l := range in.Nodes {
		if _, dup := h.NodeID(l); dup {
			return nil, fmt.Errorf("graphio: duplicate node %q", l)
		}
		h.AddNode(l)
	}
	order := in.EdgeOrder
	if order == nil {
		for name := range in.Edges {
			order = append(order, name)
		}
	}
	for _, name := range order {
		members, ok := in.Edges[name]
		if !ok {
			return nil, fmt.Errorf("graphio: edgeOrder names unknown edge %q", name)
		}
		if len(members) == 0 {
			return nil, fmt.Errorf("graphio: edge %q is empty", name)
		}
		h.AddEdgeLabels(name, members...)
	}
	return h, nil
}

// Report is the JSON classification report emitted by WriteReport: the
// complete Theorem 1 taxonomy of a bipartite graph.
type Report struct {
	Nodes       int    `json:"nodes"`
	Arcs        int    `json:"arcs"`
	V1          int    `json:"v1"`
	V2          int    `json:"v2"`
	Chordal41   bool   `json:"chordal41"`
	Chordal62   bool   `json:"chordal62"`
	Chordal61   bool   `json:"chordal61"`
	V1Chordal   bool   `json:"v1Chordal"`
	V1Conformal bool   `json:"v1Conformal"`
	V2Chordal   bool   `json:"v2Chordal"`
	V2Conformal bool   `json:"v2Conformal"`
	H1Degree    string `json:"h1Degree"`
	H2Degree    string `json:"h2Degree"`
}

// NewReport classifies b into a serializable report.
func NewReport(b *bipartite.Graph) Report {
	cl := chordality.Classify(b)
	return Report{
		Nodes:       b.N(),
		Arcs:        b.M(),
		V1:          len(b.V1()),
		V2:          len(b.V2()),
		Chordal41:   cl.Chordal41,
		Chordal62:   cl.Chordal62,
		Chordal61:   cl.Chordal61,
		V1Chordal:   cl.V1Chordal,
		V1Conformal: cl.V1Conformal,
		V2Chordal:   cl.V2Chordal,
		V2Conformal: cl.V2Conformal,
		H1Degree:    b.HypergraphV1().H.Classify().String(),
		H2Degree:    b.HypergraphV2().H.Classify().String(),
	}
}

// WriteReport writes the JSON classification report of b.
func WriteReport(w io.Writer, b *bipartite.Graph) error {
	data, err := json.MarshalIndent(NewReport(b), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
