package graphio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fixtures"
)

func TestReadBipartite(t *testing.T) {
	in := `
# a comment
v1 A
v1 B
v2 r   # trailing comment
edge A r
edge B r
`
	b, err := ReadBipartite(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != 3 || b.M() != 2 {
		t.Errorf("N=%d M=%d", b.N(), b.M())
	}
	if len(b.V1()) != 2 || len(b.V2()) != 1 {
		t.Error("sides wrong")
	}
}

func TestReadBipartiteErrors(t *testing.T) {
	cases := []string{
		"v1",
		"v1 A\nv1 A",
		"edge A B",
		"v1 A\nv2 r\nedge A missing",
		"v1 A\nv1 B\nedge A B",
		"bogus A",
		"v1 A\nv2 r\nedge A",
	}
	for _, in := range cases {
		if _, err := ReadBipartite(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestBipartiteRoundTrip(t *testing.T) {
	b := fixtures.Fig11()
	var buf bytes.Buffer
	if err := WriteBipartite(&buf, b); err != nil {
		t.Fatal(err)
	}
	b2, err := ReadBipartite(&buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if b2.N() != b.N() || b2.M() != b.M() {
		t.Errorf("round trip: N=%d M=%d want N=%d M=%d", b2.N(), b2.M(), b.N(), b.M())
	}
	for _, e := range b.G().Edges() {
		u := b2.G().MustID(b.G().Label(e.U))
		v := b2.G().MustID(b.G().Label(e.V))
		if !b2.G().HasEdge(u, v) {
			t.Errorf("edge %s-%s lost", b.G().Label(e.U), b.G().Label(e.V))
		}
	}
}

func TestReadHypergraph(t *testing.T) {
	in := `
node a
edge e1 a b c
edge e2 c d
`
	h, err := ReadHypergraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 4 || h.M() != 2 {
		t.Errorf("n=%d m=%d", h.N(), h.M())
	}
}

func TestReadHypergraphErrors(t *testing.T) {
	cases := []string{
		"node",
		"node a\nnode a",
		"edge onlyname",
		"wat x y",
	}
	for _, in := range cases {
		if _, err := ReadHypergraph(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestHypergraphRoundTrip(t *testing.T) {
	in := "edge e1 a b c\nedge e2 c d\nedge e3 a\n"
	h, err := ReadHypergraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHypergraph(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := ReadHypergraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Equal(h2) {
		t.Errorf("round trip changed hypergraph:\n%v\n%v", h, h2)
	}
}

func TestReadSchema(t *testing.T) {
	in := "relation emp name dept\nrelation dept dept floor\n"
	s, err := ReadSchema(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Relations) != 2 || s.Relations[0].Name != "emp" {
		t.Errorf("schema = %v", s)
	}
	for _, bad := range []string{"relation onlyname", "table x y", "relation r a\nrelation r b"} {
		if _, err := ReadSchema(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q accepted", bad)
		}
	}
}
