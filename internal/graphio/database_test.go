package graphio

import (
	"strings"
	"testing"
)

func TestReadDatabase(t *testing.T) {
	in := `
relation emp name dept
relation dept dept floor
tuple emp ann toys
tuple dept toys 1
tuple emp bob tools
`
	s, rels, err := ReadDatabase(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Relations) != 2 || len(rels) != 2 {
		t.Fatalf("schema %v instances %v", s, rels)
	}
	if rels[0].Name != "emp" || rels[0].Len() != 2 {
		t.Errorf("emp instance = %v", rels[0])
	}
	if rels[1].Len() != 1 {
		t.Errorf("dept instance = %v", rels[1])
	}
}

func TestReadDatabaseEmptyInstance(t *testing.T) {
	s, rels, err := ReadDatabase(strings.NewReader("relation r a b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Relations) != 1 || rels[0].Len() != 0 {
		t.Error("empty instance expected")
	}
}

func TestReadDatabaseErrors(t *testing.T) {
	cases := []string{
		"relation r",
		"tuple r x",
		"relation r a\ntuple r x y",
		"relation r a\nbogus",
		"relation r a\nrelation r b",
	}
	for _, in := range cases {
		if _, _, err := ReadDatabase(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}
