package graphio

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/hypergraph"
)

func TestBipartiteJSONRoundTrip(t *testing.T) {
	b := fixtures.Fig11()
	data, err := MarshalBipartite(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := UnmarshalBipartite(data)
	if err != nil {
		t.Fatal(err)
	}
	if b2.N() != b.N() || b2.M() != b.M() {
		t.Fatalf("round trip sizes N=%d M=%d", b2.N(), b2.M())
	}
	for _, e := range b.G().Edges() {
		u := b2.G().MustID(b.G().Label(e.U))
		v := b2.G().MustID(b.G().Label(e.V))
		if !b2.G().HasEdge(u, v) {
			t.Errorf("edge lost: %s-%s", b.G().Label(e.U), b.G().Label(e.V))
		}
	}
}

func TestBipartiteJSONErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"v1":["a","a"],"v2":[],"edges":[]}`,
		`{"v1":["a"],"v2":["r"],"edges":[["a","ghost"]]}`,
		`{"v1":["a","b"],"v2":[],"edges":[["a","b"]]}`,
	}
	for _, c := range cases {
		if _, err := UnmarshalBipartite([]byte(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestHypergraphJSONRoundTrip(t *testing.T) {
	h := hypergraph.New()
	h.AddEdgeLabels("e1", "a", "b")
	h.AddEdgeLabels("e2", "b", "c")
	h.AddEdgeLabels("e1", "a", "b") // duplicate name AND duplicate edge
	data, err := MarshalHypergraph(h)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := UnmarshalHypergraph(data)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Equal(h2) {
		t.Fatalf("round trip changed hypergraph:\n%v\n%v", h, h2)
	}
}

func TestHypergraphJSONErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"nodes":["a","a"],"edges":{}}`,
		`{"nodes":["a"],"edges":{"e":[]}}`,
		`{"nodes":["a"],"edges":{"e":["a"]},"edgeOrder":["ghost"]}`,
	}
	for _, c := range cases {
		if _, err := UnmarshalHypergraph([]byte(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestReport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, fixtures.Fig3c()); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("%v in %s", err, buf.String())
	}
	if rep.Nodes != 6 || !rep.Chordal61 || rep.Chordal62 {
		t.Errorf("report = %+v", rep)
	}
	if rep.H1Degree != "beta-acyclic" {
		t.Errorf("H1Degree = %q", rep.H1Degree)
	}
	if !strings.Contains(buf.String(), "\"chordal61\": true") {
		t.Errorf("unexpected JSON: %s", buf.String())
	}
}
