// Package graphio parses and serializes the textual formats the command
// line tools consume: bipartite graphs, hypergraphs and relational
// schemas.
//
// Bipartite graph format (one directive per line, '#' starts a comment):
//
//	v1 A            # declare a V1 node
//	v2 r            # declare a V2 node
//	edge A r        # arc between declared nodes
//
// Hypergraph format:
//
//	node A          # optional explicit node declaration
//	edge e1 A B C   # edge name followed by its member nodes
//
// Schema format:
//
//	relation emp name dept salary
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/schema"
)

// directives splits the input into non-empty, comment-stripped,
// whitespace-tokenized lines.
func directives(r io.Reader) ([][]string, error) {
	sc := bufio.NewScanner(r)
	var out [][]string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		out = append(out, append([]string{fmt.Sprint(lineNo)}, fields...))
	}
	return out, sc.Err()
}

// ReadBipartite parses the bipartite graph format.
func ReadBipartite(r io.Reader) (*bipartite.Graph, error) {
	ds, err := directives(r)
	if err != nil {
		return nil, err
	}
	b := bipartite.New()
	for _, d := range ds {
		line, cmd, args := d[0], d[1], d[2:]
		switch cmd {
		case "v1":
			if len(args) != 1 {
				return nil, fmt.Errorf("graphio: line %s: v1 wants one name", line)
			}
			if _, ok := b.G().ID(args[0]); ok {
				return nil, fmt.Errorf("graphio: line %s: duplicate node %q", line, args[0])
			}
			b.AddV1(args[0])
		case "v2":
			if len(args) != 1 {
				return nil, fmt.Errorf("graphio: line %s: v2 wants one name", line)
			}
			if _, ok := b.G().ID(args[0]); ok {
				return nil, fmt.Errorf("graphio: line %s: duplicate node %q", line, args[0])
			}
			b.AddV2(args[0])
		case "edge":
			if len(args) != 2 {
				return nil, fmt.Errorf("graphio: line %s: edge wants two names", line)
			}
			u, ok := b.G().ID(args[0])
			if !ok {
				return nil, fmt.Errorf("graphio: line %s: unknown node %q", line, args[0])
			}
			v, ok := b.G().ID(args[1])
			if !ok {
				return nil, fmt.Errorf("graphio: line %s: unknown node %q", line, args[1])
			}
			if b.Side(u) == b.Side(v) {
				return nil, fmt.Errorf("graphio: line %s: edge %s-%s joins one side", line, args[0], args[1])
			}
			b.AddEdge(u, v)
		default:
			return nil, fmt.Errorf("graphio: line %s: unknown directive %q", line, cmd)
		}
	}
	return b, nil
}

// WriteBipartite serializes a bipartite graph in the same format.
func WriteBipartite(w io.Writer, b *bipartite.Graph) error {
	g := b.G()
	for _, v := range b.V1() {
		if _, err := fmt.Fprintf(w, "v1 %s\n", g.Label(v)); err != nil {
			return err
		}
	}
	for _, v := range b.V2() {
		if _, err := fmt.Fprintf(w, "v2 %s\n", g.Label(v)); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if b.Side(u) == graph.Side2 {
			u, v = v, u
		}
		if _, err := fmt.Fprintf(w, "edge %s %s\n", g.Label(u), g.Label(v)); err != nil {
			return err
		}
	}
	return nil
}

// ReadHypergraph parses the hypergraph format. Edge members that were not
// declared with a node directive are created implicitly.
func ReadHypergraph(r io.Reader) (*hypergraph.Hypergraph, error) {
	ds, err := directives(r)
	if err != nil {
		return nil, err
	}
	h := hypergraph.New()
	for _, d := range ds {
		line, cmd, args := d[0], d[1], d[2:]
		switch cmd {
		case "node":
			if len(args) != 1 {
				return nil, fmt.Errorf("graphio: line %s: node wants one name", line)
			}
			if _, ok := h.NodeID(args[0]); ok {
				return nil, fmt.Errorf("graphio: line %s: duplicate node %q", line, args[0])
			}
			h.AddNode(args[0])
		case "edge":
			if len(args) < 2 {
				return nil, fmt.Errorf("graphio: line %s: edge wants a name and members", line)
			}
			h.AddEdgeLabels(args[0], args[1:]...)
		default:
			return nil, fmt.Errorf("graphio: line %s: unknown directive %q", line, cmd)
		}
	}
	return h, nil
}

// WriteHypergraph serializes a hypergraph in the same format.
func WriteHypergraph(w io.Writer, h *hypergraph.Hypergraph) error {
	for v := 0; v < h.N(); v++ {
		if _, err := fmt.Fprintf(w, "node %s\n", h.NodeLabel(v)); err != nil {
			return err
		}
	}
	for i := 0; i < h.M(); i++ {
		name := h.EdgeName(i)
		if name == "" {
			name = fmt.Sprintf("e%d", i)
		}
		if _, err := fmt.Fprintf(w, "edge %s %s\n", name,
			strings.Join(h.NodeLabels(h.Edge(i)), " ")); err != nil {
			return err
		}
	}
	return nil
}

// ReadSchema parses the schema format.
func ReadSchema(r io.Reader) (*schema.Schema, error) {
	ds, err := directives(r)
	if err != nil {
		return nil, err
	}
	var rels []schema.RelScheme
	for _, d := range ds {
		line, cmd, args := d[0], d[1], d[2:]
		if cmd != "relation" {
			return nil, fmt.Errorf("graphio: line %s: unknown directive %q", line, cmd)
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("graphio: line %s: relation wants a name and attributes", line)
		}
		rels = append(rels, schema.RelScheme{Name: args[0], Attrs: args[1:]})
	}
	return schema.New(rels...)
}
