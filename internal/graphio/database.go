package graphio

import (
	"fmt"
	"io"

	"repro/internal/relational"
	"repro/internal/schema"
)

// ReadDatabase parses a combined schema + instance file:
//
//	relation emp name dept      # scheme declaration
//	tuple emp ann toys          # a tuple of a declared relation
//
// Relations without tuples get empty instances. Returns the schema and one
// instance per relation, in declaration order.
func ReadDatabase(r io.Reader) (*schema.Schema, []*relational.Relation, error) {
	ds, err := directives(r)
	if err != nil {
		return nil, nil, err
	}
	var rels []schema.RelScheme
	instances := map[string]*relational.Relation{}
	var order []string
	// First pass: schemes.
	for _, d := range ds {
		line, cmd, args := d[0], d[1], d[2:]
		switch cmd {
		case "relation":
			if len(args) < 2 {
				return nil, nil, fmt.Errorf("graphio: line %s: relation wants a name and attributes", line)
			}
			rels = append(rels, schema.RelScheme{Name: args[0], Attrs: args[1:]})
			instances[args[0]] = relational.NewRelation(args[0], args[1:]...)
			order = append(order, args[0])
		case "tuple":
			// handled in the second pass
		default:
			return nil, nil, fmt.Errorf("graphio: line %s: unknown directive %q", line, cmd)
		}
	}
	s, err := schema.New(rels...)
	if err != nil {
		return nil, nil, err
	}
	// Second pass: tuples.
	for _, d := range ds {
		line, cmd, args := d[0], d[1], d[2:]
		if cmd != "tuple" {
			continue
		}
		if len(args) < 1 {
			return nil, nil, fmt.Errorf("graphio: line %s: tuple wants a relation name", line)
		}
		inst, ok := instances[args[0]]
		if !ok {
			return nil, nil, fmt.Errorf("graphio: line %s: tuple for undeclared relation %q", line, args[0])
		}
		if len(args)-1 != len(inst.Attrs) {
			return nil, nil, fmt.Errorf("graphio: line %s: relation %q wants %d values, got %d",
				line, args[0], len(inst.Attrs), len(args)-1)
		}
		inst.Insert(args[1:]...)
	}
	out := make([]*relational.Relation, len(order))
	for i, name := range order {
		out[i] = instances[name]
	}
	return s, out, nil
}
