package hypergraph

import (
	"repro/internal/graph"
	"repro/internal/intset"
)

// PrimalGraph returns G(H), the graph with the same nodes as h and an arc
// between every pair of nodes that are together in some edge
// (Definition 7). Node ids and labels are preserved.
func (h *Hypergraph) PrimalGraph() *graph.Graph {
	g := graph.NewWithNodes(h.nodeLabels...)
	for _, e := range h.edges {
		for i := 0; i < len(e); i++ {
			for j := i + 1; j < len(e); j++ {
				g.AddEdge(e[i], e[j])
			}
		}
	}
	return g
}

// Conformal reports whether h is conformal: every clique of G(H) is
// contained in some edge of h (Definition 7).
//
// The test uses Gilmore's criterion (Berge, "Graphs and Hypergraphs"):
// h is conformal iff for every three edges e1, e2, e3 some edge contains
// (e1∩e2) ∪ (e2∩e3) ∪ (e3∩e1). Pairs and singletons are trivially covered,
// so the triple condition is complete. The scan is O(m³) set operations.
func (h *Hypergraph) Conformal() bool {
	_, ok := h.conformalCounterexample()
	return !ok
}

// ConformalWitness returns a clique of G(H) contained in no edge of h, or
// nil if h is conformal.
func (h *Hypergraph) ConformalWitness() intset.Set {
	w, ok := h.conformalCounterexample()
	if !ok {
		return nil
	}
	return w
}

func (h *Hypergraph) conformalCounterexample() (intset.Set, bool) {
	m := h.M()
	for a := 0; a < m; a++ {
		for b := a; b < m; b++ {
			ab := h.edges[a].Inter(h.edges[b])
			if ab.Empty() {
				continue
			}
			for c := b; c < m; c++ {
				u := ab.Union(h.edges[b].Inter(h.edges[c])).Union(h.edges[a].Inter(h.edges[c]))
				if u.Len() <= 1 {
					continue
				}
				covered := false
				for _, e := range h.edges {
					if u.SubsetOf(e) {
						covered = true
						break
					}
				}
				if !covered {
					// u is a clique of G(H): every pair of its nodes shares
					// one of e_a, e_b, e_c.
					return u, true
				}
			}
		}
	}
	return nil, false
}
