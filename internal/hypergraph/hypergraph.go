// Package hypergraph implements the hypergraph substrate of the paper:
// hypergraphs with duplicate edges allowed (Definition 1), dual hypergraphs
// (Definition 3), primal (Gaifman) graphs and conformality (Definition 7),
// the four degrees of acyclicity — Berge, γ, β, α (Definitions 6–7) — with
// polynomial recognizers, and GYO reduction with join-tree and
// running-intersection orderings (used by Algorithm 1 via Lemma 1).
package hypergraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/intset"
)

// Hypergraph is a finite hypergraph H = (N, E). N is a set of labelled
// nodes with dense integer ids; E is a *family* of nonempty node sets, so
// duplicate edges are allowed (the bipartite-graph correspondence of
// Definition 2 depends on this). The zero value is not usable; create
// hypergraphs with New.
type Hypergraph struct {
	nodeLabels []string
	nodeIndex  map[string]int
	edges      []intset.Set
	edgeNames  []string
}

// New returns an empty hypergraph.
func New() *Hypergraph {
	return &Hypergraph{nodeIndex: make(map[string]int)}
}

// AddNode adds a node with the given label and returns its id. It panics on
// duplicate labels.
func (h *Hypergraph) AddNode(label string) int {
	if _, dup := h.nodeIndex[label]; dup {
		panic(fmt.Sprintf("hypergraph: duplicate node label %q", label))
	}
	id := len(h.nodeLabels)
	h.nodeLabels = append(h.nodeLabels, label)
	h.nodeIndex[label] = id
	return id
}

// EnsureNode returns the id of the node with the given label, adding it
// first if absent.
func (h *Hypergraph) EnsureNode(label string) int {
	if id, ok := h.nodeIndex[label]; ok {
		return id
	}
	return h.AddNode(label)
}

// AddEdge appends an edge with the given name over the given node ids and
// returns its index. Edges must be nonempty (Definition 1). Duplicate node
// ids within one edge are collapsed.
func (h *Hypergraph) AddEdge(name string, nodes ...int) int {
	if len(nodes) == 0 {
		panic("hypergraph: empty edge")
	}
	for _, v := range nodes {
		if v < 0 || v >= len(h.nodeLabels) {
			panic(fmt.Sprintf("hypergraph: node id %d out of range", v))
		}
	}
	h.edges = append(h.edges, intset.FromSlice(nodes))
	h.edgeNames = append(h.edgeNames, name)
	return len(h.edges) - 1
}

// AddEdgeLabels appends an edge over the nodes with the given labels,
// creating nodes as needed, and returns its index.
func (h *Hypergraph) AddEdgeLabels(name string, labels ...string) int {
	ids := make([]int, len(labels))
	for i, l := range labels {
		ids[i] = h.EnsureNode(l)
	}
	return h.AddEdge(name, ids...)
}

// N returns the number of nodes.
func (h *Hypergraph) N() int { return len(h.nodeLabels) }

// M returns the number of edges.
func (h *Hypergraph) M() int { return len(h.edges) }

// Size returns the total size Σ|e| of the edges.
func (h *Hypergraph) Size() int {
	s := 0
	for _, e := range h.edges {
		s += len(e)
	}
	return s
}

// Edge returns the node set of edge i. The returned set is shared with the
// hypergraph and must not be modified.
func (h *Hypergraph) Edge(i int) intset.Set {
	return h.edges[i]
}

// EdgeName returns the name of edge i.
func (h *Hypergraph) EdgeName(i int) string { return h.edgeNames[i] }

// NodeLabel returns the label of node v.
func (h *Hypergraph) NodeLabel(v int) string { return h.nodeLabels[v] }

// NodeID returns the id of the node with the given label.
func (h *Hypergraph) NodeID(label string) (int, bool) {
	id, ok := h.nodeIndex[label]
	return id, ok
}

// MustNodeID returns the id of a label known to exist, panicking otherwise.
func (h *Hypergraph) MustNodeID(label string) int {
	id, ok := h.nodeIndex[label]
	if !ok {
		panic(fmt.Sprintf("hypergraph: unknown node label %q", label))
	}
	return id
}

// EdgesOf returns the indices of the edges containing node v, in
// increasing order.
func (h *Hypergraph) EdgesOf(v int) []int {
	var out []int
	for i, e := range h.edges {
		if e.Contains(v) {
			out = append(out, i)
		}
	}
	return out
}

// NodeLabels maps node ids to labels.
func (h *Hypergraph) NodeLabels(vs []int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = h.NodeLabel(v)
	}
	return out
}

// Clone returns a deep copy of h.
func (h *Hypergraph) Clone() *Hypergraph {
	c := &Hypergraph{
		nodeLabels: append([]string(nil), h.nodeLabels...),
		nodeIndex:  make(map[string]int, len(h.nodeIndex)),
		edges:      make([]intset.Set, len(h.edges)),
		edgeNames:  append([]string(nil), h.edgeNames...),
	}
	for l, id := range h.nodeIndex {
		c.nodeIndex[l] = id
	}
	for i, e := range h.edges {
		c.edges[i] = e.Clone()
	}
	return c
}

// Partial returns the partial hypergraph consisting of the given edges
// (over the same node set).
func (h *Hypergraph) Partial(edgeIdx []int) *Hypergraph {
	p := &Hypergraph{
		nodeLabels: h.nodeLabels,
		nodeIndex:  h.nodeIndex,
	}
	for _, i := range edgeIdx {
		p.edges = append(p.edges, h.edges[i])
		p.edgeNames = append(p.edgeNames, h.edgeNames[i])
	}
	return p
}

// IsConnected reports whether the hypergraph is connected: every pair of
// non-isolated nodes joined by a chain of intersecting edges, and at most
// one "edge component". Isolated nodes are ignored.
func (h *Hypergraph) IsConnected() bool {
	if h.M() == 0 {
		return true
	}
	seen := make([]bool, h.M())
	frontier := []int{0}
	seen[0] = true
	count := 1
	for len(frontier) > 0 {
		i := frontier[0]
		frontier = frontier[1:]
		for j := range h.edges {
			if !seen[j] && h.edges[i].Intersects(h.edges[j]) {
				seen[j] = true
				count++
				frontier = append(frontier, j)
			}
		}
	}
	return count == h.M()
}

// Equal reports whether h and o have the same node labels (up to node ids)
// and the same multiset of edges (compared as label sets, names ignored).
func (h *Hypergraph) Equal(o *Hypergraph) bool {
	keys := func(x *Hypergraph) []string {
		ks := make([]string, x.M())
		for i, e := range x.edges {
			labels := x.NodeLabels(e)
			sort.Strings(labels)
			ks[i] = strings.Join(labels, "\x00")
		}
		sort.Strings(ks)
		return ks
	}
	// Compare non-isolated node label sets.
	active := func(x *Hypergraph) []string {
		m := map[string]bool{}
		for _, e := range x.edges {
			for _, v := range e {
				m[x.NodeLabel(v)] = true
			}
		}
		var out []string
		for l := range m {
			out = append(out, l)
		}
		sort.Strings(out)
		return out
	}
	ha, oa := active(h), active(o)
	if len(ha) != len(oa) {
		return false
	}
	for i := range ha {
		if ha[i] != oa[i] {
			return false
		}
	}
	hk, ok := keys(h), keys(o)
	if len(hk) != len(ok) {
		return false
	}
	for i := range hk {
		if hk[i] != ok[i] {
			return false
		}
	}
	return true
}

// String renders the hypergraph for debugging.
func (h *Hypergraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hypergraph{n=%d m=%d", h.N(), h.M())
	for i, e := range h.edges {
		fmt.Fprintf(&b, " %s=%v", h.edgeNames[i], h.NodeLabels(e))
	}
	b.WriteByte('}')
	return b.String()
}
