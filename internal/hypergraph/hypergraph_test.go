package hypergraph

import (
	"math/rand"
	"testing"

	"repro/internal/intset"
)

// triangleH returns the 3-edge "pure triangle" hypergraph
// {a,b}, {b,c}, {c,a} — the canonical β-cycle (Fig 4 area of the paper).
func triangleH() *Hypergraph {
	h := New()
	h.AddEdgeLabels("e1", "a", "b")
	h.AddEdgeLabels("e2", "b", "c")
	h.AddEdgeLabels("e3", "c", "a")
	return h
}

// coveredTriangleH is the triangle plus an edge {a,b,c} covering it:
// α-acyclic but not β-acyclic (the classic separation).
func coveredTriangleH() *Hypergraph {
	h := triangleH()
	h.AddEdgeLabels("e0", "a", "b", "c")
	return h
}

// forestH is a Berge-acyclic hypergraph: edges pairwise sharing at most one
// node, no closed chain.
func forestH() *Hypergraph {
	h := New()
	h.AddEdgeLabels("e1", "a", "b")
	h.AddEdgeLabels("e2", "b", "c", "d")
	h.AddEdgeLabels("e3", "d", "e")
	return h
}

// betaNotGammaH is β-acyclic but not γ-acyclic: a special triangle
// (Definition 6) with nested structure. Edges {a,b}, {a,b,c... } chosen so
// nest-point elimination succeeds but the γ-triangle exists.
func betaNotGammaH() *Hypergraph {
	h := New()
	h.AddEdgeLabels("e1", "a", "b")
	h.AddEdgeLabels("e2", "b", "c")
	h.AddEdgeLabels("e3", "a", "b", "c")
	return h
}

// gammaNotBergeH is γ-acyclic but not Berge-acyclic: two edges sharing two
// nodes (a Berge 2-cycle) arranged nestedly.
func gammaNotBergeH() *Hypergraph {
	h := New()
	h.AddEdgeLabels("e1", "a", "b")
	h.AddEdgeLabels("e2", "a", "b", "c")
	return h
}

func TestBasics(t *testing.T) {
	h := forestH()
	if h.N() != 5 || h.M() != 3 || h.Size() != 7 {
		t.Fatalf("N=%d M=%d Size=%d", h.N(), h.M(), h.Size())
	}
	b := h.MustNodeID("b")
	if got := h.EdgesOf(b); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("EdgesOf(b) = %v", got)
	}
	if h.EdgeName(2) != "e3" {
		t.Errorf("EdgeName = %q", h.EdgeName(2))
	}
	if !h.IsConnected() {
		t.Error("forestH should be connected")
	}
	h2 := New()
	h2.AddEdgeLabels("x", "p", "q")
	h2.AddEdgeLabels("y", "r", "s")
	if h2.IsConnected() {
		t.Error("two disjoint edges reported connected")
	}
}

func TestEmptyEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on empty edge")
		}
	}()
	New().AddEdge("bad")
}

func TestClassifyLadder(t *testing.T) {
	tests := []struct {
		name string
		h    *Hypergraph
		want Degree
	}{
		{"forest is Berge-acyclic (Fig 4a)", forestH(), DegreeBerge},
		{"nested pair is gamma, not Berge", gammaNotBergeH(), DegreeGamma},
		{"covered pair chain is beta, not gamma", betaNotGammaH(), DegreeBeta},
		{"covered triangle is alpha, not beta", coveredTriangleH(), DegreeAlpha},
		{"pure triangle is cyclic", triangleH(), DegreeCyclic},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.h.Classify(); got != tc.want {
				t.Errorf("Classify = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestDegreeString(t *testing.T) {
	if DegreeBeta.String() != "beta-acyclic" || DegreeCyclic.String() != "cyclic" {
		t.Error("Degree.String wrong")
	}
	if Degree(42).String() != "Degree(42)" {
		t.Error("unknown degree string")
	}
}

func TestHierarchyNesting(t *testing.T) {
	// Berge ⇒ γ ⇒ β ⇒ α on assorted hypergraphs, including random ones.
	hs := []*Hypergraph{triangleH(), coveredTriangleH(), forestH(),
		betaNotGammaH(), gammaNotBergeH()}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 120; i++ {
		hs = append(hs, randomH(r, 2+r.Intn(6), 2+r.Intn(5)))
	}
	for _, h := range hs {
		berge, gamma, beta, alpha := h.BergeAcyclic(), h.GammaAcyclic(), h.BetaAcyclic(), h.AlphaAcyclic()
		if berge && !gamma {
			t.Fatalf("Berge but not gamma: %v", h)
		}
		if gamma && !beta {
			t.Fatalf("gamma but not beta: %v", h)
		}
		if beta && !alpha {
			t.Fatalf("beta but not alpha: %v", h)
		}
	}
}

// randomH builds a random hypergraph with n nodes and m edges.
func randomH(r *rand.Rand, n, m int) *Hypergraph {
	h := New()
	for i := 0; i < n; i++ {
		h.AddNode(string(rune('a' + i)))
	}
	for i := 0; i < m; i++ {
		size := 1 + r.Intn(n)
		seen := map[int]bool{}
		var nodes []int
		for len(nodes) < size {
			v := r.Intn(n)
			if !seen[v] {
				seen[v] = true
				nodes = append(nodes, v)
			}
		}
		h.AddEdge("", nodes...)
	}
	return h
}

func TestBergeCycleWitness(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		h := randomH(r, 2+r.Intn(6), 2+r.Intn(5))
		bc := h.FindBergeCycle()
		if bc == nil {
			continue
		}
		q := len(bc.Edges)
		if q < 2 || len(bc.Nodes) != q {
			t.Fatalf("malformed witness %+v for %v", bc, h)
		}
		seenE, seenN := map[int]bool{}, map[int]bool{}
		for i := 0; i < q; i++ {
			if seenE[bc.Edges[i]] || seenN[bc.Nodes[i]] {
				t.Fatalf("repeated edge/node in witness %+v for %v", bc, h)
			}
			seenE[bc.Edges[i]] = true
			seenN[bc.Nodes[i]] = true
			e1 := h.Edge(bc.Edges[i])
			e2 := h.Edge(bc.Edges[(i+1)%q])
			if !e1.Contains(bc.Nodes[i]) || !e2.Contains(bc.Nodes[i]) {
				t.Fatalf("node %d not shared by consecutive edges in %+v for %v", bc.Nodes[i], bc, h)
			}
		}
	}
}

func TestGammaTriangleWitness(t *testing.T) {
	h := betaNotGammaH()
	tr := h.FindGammaTriangle()
	if tr == nil {
		t.Fatal("expected a gamma triangle")
	}
	e1, e2, e3 := h.Edge(tr.E1), h.Edge(tr.E2), h.Edge(tr.E3)
	if !e1.Contains(tr.N1) || !e2.Contains(tr.N1) || e3.Contains(tr.N1) {
		t.Errorf("n1 condition violated: %+v", tr)
	}
	if !e2.Contains(tr.N2) || !e3.Contains(tr.N2) || e1.Contains(tr.N2) {
		t.Errorf("n2 condition violated: %+v", tr)
	}
	if !e3.Contains(tr.N3) || !e1.Contains(tr.N3) {
		t.Errorf("n3 condition violated: %+v", tr)
	}
	if tr.N1 == tr.N2 || tr.N1 == tr.N3 || tr.N2 == tr.N3 {
		t.Errorf("witness nodes not distinct: %+v", tr)
	}
	if forestH().FindGammaTriangle() != nil {
		t.Error("forest has a gamma triangle")
	}
}

func TestDualInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 150; i++ {
		h := randomH(r, 2+r.Intn(6), 1+r.Intn(5))
		dd := h.Dual().Dual()
		if !dd.Equal(h) {
			t.Fatalf("dual(dual(h)) != h for %v; got %v", h, dd)
		}
	}
}

func TestDualDropsIsolatedNodes(t *testing.T) {
	h := New()
	h.AddNode("iso")
	h.AddEdgeLabels("e", "a", "b")
	d := h.Dual()
	if d.N() != 1 || d.M() != 2 {
		t.Fatalf("dual N=%d M=%d, want 1, 2", d.N(), d.M())
	}
}

func TestCorollary1SelfDuality(t *testing.T) {
	// Berge-, γ-, β-acyclicity are self-dual (Corollary 1); α is not.
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 250; i++ {
		h := randomH(r, 2+r.Intn(6), 2+r.Intn(5))
		d := h.Dual()
		if h.BergeAcyclic() != d.BergeAcyclic() {
			t.Fatalf("Berge not self-dual on %v", h)
		}
		if h.GammaAcyclic() != d.GammaAcyclic() {
			t.Fatalf("gamma not self-dual on %v", h)
		}
		if h.BetaAcyclic() != d.BetaAcyclic() {
			t.Fatalf("beta not self-dual on %v", h)
		}
	}
	// The paper's Fig 2-style witness that α-acyclicity is NOT self-dual:
	// triangle covered by a big edge is α-acyclic, its dual is not.
	h := coveredTriangleH()
	if !h.AlphaAcyclic() {
		t.Fatal("covered triangle should be alpha-acyclic")
	}
	if h.Dual().AlphaAcyclic() {
		t.Fatal("dual of covered triangle should be alpha-cyclic (Corollary 1 remark)")
	}
}

func TestPrimalGraph(t *testing.T) {
	h := forestH()
	g := h.PrimalGraph()
	if g.N() != 5 {
		t.Fatalf("primal N = %d", g.N())
	}
	a, b, c, d, e := h.MustNodeID("a"), h.MustNodeID("b"), h.MustNodeID("c"), h.MustNodeID("d"), h.MustNodeID("e")
	for _, pair := range [][2]int{{a, b}, {b, c}, {b, d}, {c, d}, {d, e}} {
		if !g.HasEdge(pair[0], pair[1]) {
			t.Errorf("primal missing edge %v", pair)
		}
	}
	if g.HasEdge(a, c) || g.HasEdge(a, e) || g.HasEdge(c, e) {
		t.Error("primal has spurious edge")
	}
}

func TestConformal(t *testing.T) {
	if !forestH().Conformal() {
		t.Error("forest should be conformal")
	}
	// Pure triangle: {a,b,c} is a clique of the primal graph contained in
	// no edge.
	h := triangleH()
	if h.Conformal() {
		t.Error("triangle should not be conformal")
	}
	w := h.ConformalWitness()
	if w.Len() < 3 {
		t.Fatalf("witness %v too small", w)
	}
	g := h.PrimalGraph()
	for i := 0; i < w.Len(); i++ {
		for j := i + 1; j < w.Len(); j++ {
			if !g.HasEdge(w[i], w[j]) {
				t.Errorf("witness %v is not a clique", w)
			}
		}
	}
	for i := 0; i < h.M(); i++ {
		if w.SubsetOf(h.Edge(i)) {
			t.Errorf("witness %v contained in edge %d", w, i)
		}
	}
	if coveredTriangleH().ConformalWitness() != nil {
		t.Error("covered triangle should be conformal")
	}
}

func TestGYO(t *testing.T) {
	res := coveredTriangleH().GYO()
	if !res.Acyclic || len(res.EliminationOrder) != 4 {
		t.Errorf("GYO on covered triangle: %+v", res)
	}
	res = triangleH().GYO()
	if res.Acyclic || len(res.Core) != 3 {
		t.Errorf("GYO on triangle: %+v", res)
	}
}

func TestGYODuplicateEdges(t *testing.T) {
	h := New()
	h.AddEdgeLabels("e1", "a", "b")
	h.AddEdgeLabels("e2", "a", "b")
	if !h.GYO().Acyclic {
		t.Error("duplicate pair should be alpha-acyclic")
	}
}

func TestJoinTreeAndRIP(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	count := 0
	for i := 0; i < 600 || count < 60; i++ {
		if i > 6000 {
			t.Fatal("not enough acyclic samples")
		}
		h := randomH(r, 2+r.Intn(6), 1+r.Intn(5))
		if !h.AlphaAcyclic() {
			if _, ok := h.JoinTree(); ok {
				t.Fatalf("join tree produced for cyclic %v", h)
			}
			continue
		}
		count++
		parent, ok := h.JoinTree()
		if !ok {
			t.Fatalf("no join tree for acyclic %v", h)
		}
		if !h.VerifyJoinTree(parent) {
			t.Fatalf("join tree property violated for %v: %v", h, parent)
		}
		order, ok := h.RunningIntersectionOrder()
		if !ok || len(order) != h.M() {
			t.Fatalf("RIP order missing for %v", h)
		}
		if bad := h.VerifyRunningIntersection(order); bad != -1 {
			t.Fatalf("RIP violated at %d for %v (order %v)", bad, h, order)
		}
	}
}

func TestVerifyRunningIntersectionDetectsViolation(t *testing.T) {
	// Order the covered triangle with the big edge last: {a,b} then {b,c}
	// then {c,a} violates RIP at the third edge ({c,a} ∩ {a,b,c} = {c,a}
	// is in no single earlier edge).
	h := coveredTriangleH()
	if bad := h.VerifyRunningIntersection([]int{0, 1, 2, 3}); bad != 2 {
		t.Errorf("violation at %d, want 2", bad)
	}
	if bad := h.VerifyRunningIntersection([]int{3, 0, 1, 2}); bad != -1 {
		t.Errorf("big-edge-first should satisfy RIP, got violation at %d", bad)
	}
}

func TestPartial(t *testing.T) {
	h := coveredTriangleH()
	p := h.Partial([]int{0, 1, 2})
	if p.M() != 3 {
		t.Fatalf("partial M = %d", p.M())
	}
	if p.AlphaAcyclic() {
		t.Error("triangle partial hypergraph should be cyclic")
	}
	// β-acyclicity is closed under taking partial hypergraphs; the covered
	// triangle is not β-acyclic and here is the witness subfamily.
	if h.BetaAcyclic() {
		t.Error("covered triangle should not be beta-acyclic")
	}
}

func TestEqual(t *testing.T) {
	a := forestH()
	b := forestH()
	if !a.Equal(b) {
		t.Error("identical hypergraphs not Equal")
	}
	c := forestH()
	c.AddEdgeLabels("extra", "a", "e")
	if a.Equal(c) {
		t.Error("different hypergraphs Equal")
	}
	// Node ids may differ as long as labels and edges agree.
	d := New()
	d.AddNode("e")
	d.AddNode("d")
	d.AddEdgeLabels("x", "d", "e")
	d.AddEdgeLabels("y", "b", "a")
	d.AddEdgeLabels("z", "c", "b", "d")
	if !a.Equal(d) {
		t.Error("relabelled-id hypergraphs should be Equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	h := forestH()
	c := h.Clone()
	c.AddEdgeLabels("w", "a", "e")
	if h.M() != 3 {
		t.Error("Clone not independent")
	}
}

func TestNestPointHelper(t *testing.T) {
	edges := []intset.Set{intset.New(0, 1), intset.New(0, 1, 2), intset.New(1, 2)}
	if !nestPoint(edges, 0) {
		t.Error("0 should be a nest point ({0,1} ⊆ {0,1,2})")
	}
	if nestPoint(edges, 1) {
		t.Error("1 should not be a nest point ({0,1} vs {1,2} incomparable)")
	}
	if !nestPoint(edges, 3) {
		t.Error("absent node is vacuously a nest point")
	}
}
