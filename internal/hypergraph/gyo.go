package hypergraph

import "repro/internal/intset"

// GYOResult reports the outcome of a Graham/Yu–Özsoyoğlu reduction.
type GYOResult struct {
	// Acyclic is true iff the reduction eliminated every edge, i.e. the
	// hypergraph is α-acyclic.
	Acyclic bool
	// Core holds the indices of edges (in the original hypergraph) that
	// survive reduction when the hypergraph is α-cyclic; nil otherwise.
	Core []int
	// EliminationOrder lists edge indices in the order GYO removed them.
	// Only meaningful when Acyclic.
	EliminationOrder []int
}

// GYO runs the GYO (ear removal) reduction:
//
//	repeat until no change:
//	  1. delete any node that occurs in exactly one edge;
//	  2. delete any edge that is empty or contained in another edge.
//
// h is α-acyclic iff the reduction deletes every edge.
func (h *Hypergraph) GYO() GYOResult {
	m := h.M()
	work := make([]intset.Set, m)
	for i, e := range h.edges {
		work[i] = e.Clone()
	}
	alive := make([]bool, m)
	for i := range alive {
		alive[i] = true
	}
	occ := make([]int, h.N())
	for _, e := range work {
		for _, v := range e {
			occ[v]++
		}
	}
	var order []int
	remaining := m
	for changed := true; changed; {
		changed = false
		// Rule 1: remove nodes occurring in exactly one live edge.
		for i := 0; i < m; i++ {
			if !alive[i] {
				continue
			}
			var kept intset.Set
			for _, v := range work[i] {
				if occ[v] == 1 {
					occ[v] = 0
					changed = true
				} else {
					kept = append(kept, v)
				}
			}
			work[i] = kept
		}
		// Rule 2: remove empty edges and edges contained in another live
		// edge. Equal working sets are broken by index so exactly one of a
		// duplicate pair survives.
		for i := 0; i < m; i++ {
			if !alive[i] {
				continue
			}
			if work[i].Empty() {
				alive[i] = false
				remaining--
				order = append(order, i)
				changed = true
				continue
			}
			for j := 0; j < m; j++ {
				if j == i || !alive[j] {
					continue
				}
				if work[i].SubsetOf(work[j]) && !(work[j].SubsetOf(work[i]) && j > i) {
					alive[i] = false
					remaining--
					order = append(order, i)
					for _, v := range work[i] {
						occ[v]--
					}
					changed = true
					break
				}
			}
		}
	}
	if remaining > 0 {
		var core []int
		for i := 0; i < m; i++ {
			if alive[i] {
				core = append(core, i)
			}
		}
		return GYOResult{Acyclic: false, Core: core}
	}
	return GYOResult{Acyclic: true, EliminationOrder: order}
}

// AlphaAcyclic reports whether h is α-acyclic (Definition 7). The fast test
// is GYO reduction; the equivalence with Definition 7's "G(H) chordal and H
// conformal" is due to Beeri, Fagin, Maier and Yannakakis and is
// cross-checked in tests.
func (h *Hypergraph) AlphaAcyclic() bool {
	return h.GYO().Acyclic
}

// JoinTree returns, for an α-acyclic h, the parent of every edge in a join
// tree (-1 for roots, one root per connected component) and true; or nil
// and false when h is α-cyclic.
//
// The tree is a maximum-weight spanning forest of the edge-intersection
// graph (weight(i,j) = |e_i ∩ e_j|); by Maier's theorem every such forest
// of an α-acyclic hypergraph is a join tree (for each node, the edges
// containing it induce a subtree).
func (h *Hypergraph) JoinTree() ([]int, bool) {
	if !h.GYO().Acyclic {
		return nil, false
	}
	m := h.M()
	parent := make([]int, m)
	inTree := make([]bool, m)
	best := make([]int, m)   // best intersection weight to the tree so far
	bestTo := make([]int, m) // tree edge realizing it
	for i := range parent {
		parent[i] = -1
		best[i] = -1
		bestTo[i] = -1
	}
	// Prim's algorithm, restarted per component; deterministic tie-breaks
	// by lowest index.
	for picked := 0; picked < m; picked++ {
		sel := -1
		for i := 0; i < m; i++ {
			if inTree[i] {
				continue
			}
			if sel == -1 || best[i] > best[sel] {
				sel = i
			}
		}
		inTree[sel] = true
		if best[sel] > 0 {
			parent[sel] = bestTo[sel]
		}
		for i := 0; i < m; i++ {
			if inTree[i] {
				continue
			}
			if w := h.edges[sel].InterLen(h.edges[i]); w > best[i] {
				best[i] = w
				bestTo[i] = sel
			}
		}
	}
	return parent, true
}

// VerifyJoinTree checks the join-tree property of a parent array: for every
// node of h, the set of edges containing it must induce a connected subtree.
// It returns true when the property holds.
func (h *Hypergraph) VerifyJoinTree(parent []int) bool {
	if len(parent) != h.M() {
		return false
	}
	for v := 0; v < h.N(); v++ {
		members := h.EdgesOf(v)
		if len(members) <= 1 {
			continue
		}
		in := map[int]bool{}
		for _, e := range members {
			in[e] = true
		}
		// Walk up from each member; count members whose parent-chain hits
		// another member immediately (tree-connected components of the
		// member set). The set is a subtree iff exactly one member has no
		// member parent.
		roots := 0
		for _, e := range members {
			if parent[e] == -1 || !in[parent[e]] {
				roots++
			}
		}
		if roots != 1 {
			return false
		}
	}
	return true
}

// RunningIntersectionOrder returns an ordering e_1, …, e_q of the edge
// indices of an α-acyclic h satisfying the running intersection property:
// for every i ≥ 2 there is j < i with e_i ∩ (e_1 ∪ … ∪ e_{i−1}) ⊆ e_j.
// It returns ok=false when h is α-cyclic.
//
// The order is a parent-before-child linearization of a join tree; the
// reverse of this order is exactly the elimination ordering W of Lemma 1
// used by Algorithm 1.
func (h *Hypergraph) RunningIntersectionOrder() (order []int, ok bool) {
	parent, ok := h.JoinTree()
	if !ok {
		return nil, false
	}
	m := h.M()
	children := make([][]int, m)
	var roots []int
	for i := 0; i < m; i++ {
		if parent[i] == -1 {
			roots = append(roots, i)
		} else {
			children[parent[i]] = append(children[parent[i]], i)
		}
	}
	order = make([]int, 0, m)
	var stack []int
	for r := len(roots) - 1; r >= 0; r-- {
		stack = append(stack, roots[r])
	}
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, e)
		for k := len(children[e]) - 1; k >= 0; k-- {
			stack = append(stack, children[e][k])
		}
	}
	return order, true
}

// VerifyRunningIntersection checks the running intersection property of an
// edge ordering, returning the position of the first violation or -1.
func (h *Hypergraph) VerifyRunningIntersection(order []int) int {
	var prefix intset.Set
	for i, ei := range order {
		if i > 0 {
			inter := h.edges[ei].Inter(prefix)
			if !inter.Empty() {
				ok := false
				for j := 0; j < i; j++ {
					if inter.SubsetOf(h.edges[order[j]]) {
						ok = true
						break
					}
				}
				if !ok {
					return i
				}
			}
		}
		prefix = prefix.Union(h.edges[ei])
	}
	return -1
}
