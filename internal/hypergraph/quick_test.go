package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuickClassifyConsistent(t *testing.T) {
	// Classify must name the strongest degree whose recognizer passes.
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomH(r, 2+r.Intn(6), 1+r.Intn(5))
		switch h.Classify() {
		case DegreeBerge:
			return h.BergeAcyclic()
		case DegreeGamma:
			return !h.BergeAcyclic() && h.GammaAcyclic()
		case DegreeBeta:
			return !h.GammaAcyclic() && h.BetaAcyclic()
		case DegreeAlpha:
			return !h.BetaAcyclic() && h.AlphaAcyclic()
		case DegreeCyclic:
			return !h.AlphaAcyclic()
		}
		return false
	}, &quick.Config{MaxCount: 400})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickPartialPreservesBeta(t *testing.T) {
	// β-acyclicity is closed under taking partial hypergraphs (that is the
	// essence of "every subhypergraph α-acyclic").
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomH(r, 2+r.Intn(6), 2+r.Intn(5))
		if !h.BetaAcyclic() {
			return true
		}
		var sub []int
		for i := 0; i < h.M(); i++ {
			if r.Intn(2) == 0 {
				sub = append(sub, i)
			}
		}
		return h.Partial(sub).BetaAcyclic()
	}, &quick.Config{MaxCount: 400})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickBetaImpliesPartialAlpha(t *testing.T) {
	// Fagin's characterization: β-acyclic ⟺ every partial hypergraph is
	// α-acyclic. Forward direction checked on random subsets; backward
	// direction checked as the contrapositive on β-cyclic inputs by
	// searching a cyclic partial subfamily.
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomH(r, 2+r.Intn(5), 2+r.Intn(4))
		if h.BetaAcyclic() {
			var sub []int
			for i := 0; i < h.M(); i++ {
				if r.Intn(2) == 0 {
					sub = append(sub, i)
				}
			}
			return h.Partial(sub).AlphaAcyclic()
		}
		// β-cyclic: some subfamily must be α-cyclic.
		m := h.M()
		for mask := 0; mask < 1<<uint(m); mask++ {
			var sub []int
			for i := 0; i < m; i++ {
				if mask&(1<<uint(i)) != 0 {
					sub = append(sub, i)
				}
			}
			if len(sub) > 0 && !h.Partial(sub).AlphaAcyclic() {
				return true
			}
		}
		return false
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickDualPreservesSize(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomH(r, 2+r.Intn(6), 1+r.Intn(5))
		d := h.Dual()
		// Σ|e| is invariant under duality (each membership pair flips).
		return d.Size() == h.Size() && d.N() == h.M()
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestQuickRIPOrderAlwaysValid(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomH(r, 2+r.Intn(6), 1+r.Intn(5))
		order, ok := h.RunningIntersectionOrder()
		if !ok {
			return !h.AlphaAcyclic()
		}
		return h.AlphaAcyclic() && h.VerifyRunningIntersection(order) == -1
	}, &quick.Config{MaxCount: 400})
	if err != nil {
		t.Error(err)
	}
}
