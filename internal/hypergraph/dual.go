package hypergraph

import "fmt"

// Dual returns the dual hypergraph of h (Definition 3): the nodes of the
// dual correspond to the edges of h, and for every non-isolated node n of h
// the dual has an edge containing exactly the dual nodes whose h-edges
// contain n.
//
// Isolated nodes of h (contained in no edge) would produce empty dual
// edges, which Definition 1 forbids; they are dropped. Consequently
// Dual(Dual(h)) equals h restricted to its non-isolated nodes (tested as a
// property).
func (h *Hypergraph) Dual() *Hypergraph {
	d := New()
	// Dual node labels come from edge names, which may repeat or be empty;
	// disambiguate only on collision so that Dual is an involution when
	// edge names are distinct (e.g. on a dual, whose edge names are the
	// original node labels).
	seen := make(map[string]bool, len(h.edges))
	for i := range h.edges {
		name := h.edgeNames[i]
		if name == "" {
			name = fmt.Sprintf("e%d", i)
		}
		for seen[name] {
			name = fmt.Sprintf("%s#%d", name, i)
		}
		seen[name] = true
		d.AddNode(name)
	}
	for v := 0; v < h.N(); v++ {
		var members []int
		for i, e := range h.edges {
			if e.Contains(v) {
				members = append(members, i)
			}
		}
		if len(members) == 0 {
			continue
		}
		d.AddEdge(h.nodeLabels[v], members...)
	}
	return d
}
