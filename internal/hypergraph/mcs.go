package hypergraph

import "repro/internal/intset"

// GreedyEdgeOrder orders the edges by maximum cardinality search lifted to
// edges: repeatedly append an edge intersecting the union of the already
// ordered edges in the most nodes (ties by lowest index; a disconnected
// remainder restarts at the lowest-index unused edge).
//
// This is the edge-selection discipline behind Tarjan & Yannakakis'
// restricted maximum cardinality search, which Theorem 4 of the paper uses
// to build Lemma 1's ordering in linear time: on an α-acyclic hypergraph
// the greedy order satisfies the running intersection property, so its
// reverse is a valid Algorithm 1 elimination ordering. (On cyclic inputs
// the order exists but RIP fails somewhere — use VerifyRunningIntersection
// to detect it; that check is exactly T&Y's acyclicity test and is
// cross-validated against GYO in the package tests.)
func (h *Hypergraph) GreedyEdgeOrder() []int {
	m := h.M()
	order := make([]int, 0, m)
	used := make([]bool, m)
	var union intset.Set
	for len(order) < m {
		best, bestW := -1, -1
		for e := 0; e < m; e++ {
			if used[e] {
				continue
			}
			w := h.edges[e].InterLen(union)
			if w > bestW {
				best, bestW = e, w
			}
		}
		used[best] = true
		order = append(order, best)
		union = union.Union(h.edges[best])
	}
	return order
}

// AlphaAcyclicMCS decides α-acyclicity the Tarjan–Yannakakis way: greedy
// maximum-cardinality edge order + running-intersection verification. It
// must agree with GYO everywhere (tested); both are exposed because the
// MCS route also yields the Lemma 1 ordering as a by-product.
func (h *Hypergraph) AlphaAcyclicMCS() bool {
	return h.VerifyRunningIntersection(h.GreedyEdgeOrder()) == -1
}
