package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyEdgeOrderIsPermutation(t *testing.T) {
	h := coveredTriangleH()
	order := h.GreedyEdgeOrder()
	if len(order) != h.M() {
		t.Fatalf("order length %d", len(order))
	}
	seen := map[int]bool{}
	for _, e := range order {
		if seen[e] {
			t.Fatal("repeated edge")
		}
		seen[e] = true
	}
}

func TestQuickMCSAgreesWithGYO(t *testing.T) {
	// The Tarjan–Yannakakis-style test must agree with GYO on random
	// hypergraphs — this is the pillar Theorem 4 stands on.
	cfg := &quick.Config{MaxCount: 800}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomH(r, 2+r.Intn(6), 1+r.Intn(6))
		return h.AlphaAcyclicMCS() == h.AlphaAcyclic()
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestQuickGreedyOrderSatisfiesRIPOnAcyclic(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := randomH(r, 2+r.Intn(6), 1+r.Intn(5))
		if !h.AlphaAcyclic() {
			return true
		}
		return h.VerifyRunningIntersection(h.GreedyEdgeOrder()) == -1
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestGreedyOrderOnCyclicDetectsViolation(t *testing.T) {
	h := triangleH()
	if h.AlphaAcyclicMCS() {
		t.Error("triangle should fail the MCS acyclicity test")
	}
	if bad := h.VerifyRunningIntersection(h.GreedyEdgeOrder()); bad == -1 {
		t.Error("expected a RIP violation on the triangle")
	}
}

func TestGreedyOrderDisconnectedComponents(t *testing.T) {
	h := New()
	h.AddEdgeLabels("e1", "a", "b")
	h.AddEdgeLabels("e2", "x", "y")
	h.AddEdgeLabels("e3", "b", "c")
	order := h.GreedyEdgeOrder()
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	if !h.AlphaAcyclicMCS() {
		t.Error("disconnected forest should pass")
	}
}
