package hypergraph

import (
	"fmt"

	"repro/internal/intset"
)

// Degree classifies a hypergraph by the strongest acyclicity condition it
// satisfies. The paper's Definition 6 classes are nested:
// Berge-acyclic ⇒ γ-acyclic ⇒ β-acyclic ⇒ α-acyclic (all containments
// proper; Fagin [6]).
type Degree int

// Acyclicity degrees, strongest first.
const (
	DegreeBerge Degree = iota
	DegreeGamma
	DegreeBeta
	DegreeAlpha
	DegreeCyclic
)

// String returns the conventional name of the degree.
func (d Degree) String() string {
	switch d {
	case DegreeBerge:
		return "Berge-acyclic"
	case DegreeGamma:
		return "gamma-acyclic"
	case DegreeBeta:
		return "beta-acyclic"
	case DegreeAlpha:
		return "alpha-acyclic"
	case DegreeCyclic:
		return "cyclic"
	}
	return fmt.Sprintf("Degree(%d)", int(d))
}

// Classify returns the strongest acyclicity degree h satisfies.
func (h *Hypergraph) Classify() Degree {
	switch {
	case h.BergeAcyclic():
		return DegreeBerge
	case h.GammaAcyclic():
		return DegreeGamma
	case h.BetaAcyclic():
		return DegreeBeta
	case h.AlphaAcyclic():
		return DegreeAlpha
	default:
		return DegreeCyclic
	}
}

// BergeAcyclic reports whether h has no Berge cycle (Definition 6). A Berge
// cycle of h is exactly a cycle of the bipartite incidence graph of h, so h
// is Berge-acyclic iff the incidence graph is a forest. The check is a
// DFS over the incidence structure; see FindBergeCycle.
func (h *Hypergraph) BergeAcyclic() bool {
	return h.FindBergeCycle() == nil
}

// BergeCycle is a Berge cycle witness: Edges[i] and Edges[i+1] share
// Nodes[i], and Edges[q-1], Edges[0] share Nodes[q-1]; all edges and all
// nodes are distinct, q ≥ 2.
type BergeCycle struct {
	Edges []int
	Nodes []int
}

// FindBergeCycle returns a Berge cycle of h, or nil if h is Berge-acyclic.
//
// The incidence graph of h has a vertex per node and per edge and connects
// e to each of its nodes; cycles of that graph alternate node/edge vertices
// and are exactly Berge cycles. The search is a DFS forest over the
// incidence structure; the first back edge closes a cycle.
func (h *Hypergraph) FindBergeCycle() *BergeCycle {
	n, m := h.N(), h.M()
	// Incidence adjacency: vertex v<n is node v; vertex n+i is edge i.
	edgesOf := make([][]int, n)
	for i, e := range h.edges {
		for _, v := range e {
			edgesOf[v] = append(edgesOf[v], i)
		}
	}
	parent := make([]int, n+m) // DFS tree parent in incidence graph
	state := make([]int, n+m)  // 0 unvisited, 1 on stack, 2 done
	for i := range parent {
		parent[i] = -1
	}
	var cycleAt []int // incidence vertices of found cycle
	var dfs func(u, from int) bool
	dfs = func(u, from int) bool {
		state[u] = 1
		parent[u] = from
		if u < n {
			for _, i := range edgesOf[u] {
				w := n + i
				if w == from {
					continue
				}
				if state[w] == 1 {
					cycleAt = []int{w, u}
					for x := from; x != w && x != -1; x = parent[x] {
						cycleAt = append(cycleAt, x)
					}
					return true
				}
				if state[w] == 0 && dfs(w, u) {
					return true
				}
			}
		} else {
			for _, v := range h.edges[u-n] {
				if v == from {
					continue
				}
				if state[v] == 1 {
					cycleAt = []int{v, u}
					for x := from; x != v && x != -1; x = parent[x] {
						cycleAt = append(cycleAt, x)
					}
					return true
				}
				if state[v] == 0 && dfs(v, u) {
					return true
				}
			}
		}
		state[u] = 2
		return false
	}
	for s := 0; s < n+m; s++ {
		if state[s] == 0 && dfs(s, -1) {
			break
		}
	}
	if cycleAt == nil {
		return nil
	}
	// cycleAt is [closing vertex, u, ..., back to just after closing
	// vertex] in reverse walk order; rotate so it starts at an edge vertex
	// and split into edge/node sequences.
	var bc BergeCycle
	// Find an edge-vertex starting position.
	start := 0
	for i, x := range cycleAt {
		if x >= n {
			start = i
			break
		}
	}
	k := len(cycleAt)
	for i := 0; i < k; i++ {
		x := cycleAt[(start+i)%k]
		if x >= n {
			bc.Edges = append(bc.Edges, x-n)
		} else {
			bc.Nodes = append(bc.Nodes, x)
		}
	}
	return &bc
}

// NestPoint reports whether node v is a nest point of the working edge
// family: the edges containing v are totally ordered by inclusion.
func nestPoint(edges []intset.Set, v int) bool {
	var containing []intset.Set
	for _, e := range edges {
		if e.Contains(v) {
			containing = append(containing, e)
		}
	}
	for i := 0; i < len(containing); i++ {
		for j := i + 1; j < len(containing); j++ {
			if !containing[i].SubsetOf(containing[j]) && !containing[j].SubsetOf(containing[i]) {
				return false
			}
		}
	}
	return true
}

// BetaAcyclic reports whether h is β-acyclic (no β-cycle, Definition 6).
//
// The recognizer eliminates nest points: a hypergraph is β-acyclic iff
// every nonempty subhypergraph has a nest point — a node whose incident
// edges form an inclusion chain — and greedily removing any nest point
// (then dropping emptied edges) is confluent. If elimination gets stuck
// with nodes remaining, h has a β-cycle. Cross-checked in tests against the
// definitional β-cycle search of internal/reference.
func (h *Hypergraph) BetaAcyclic() bool {
	core, _ := h.betaCore()
	return len(core) == 0
}

// betaCore runs nest-point elimination and returns the remaining active
// nodes and working edges when stuck (empty when β-acyclic).
func (h *Hypergraph) betaCore() ([]int, []intset.Set) {
	work := make([]intset.Set, 0, h.M())
	for _, e := range h.edges {
		work = append(work, e.Clone())
	}
	activeSet := map[int]bool{}
	for _, e := range work {
		for _, v := range e {
			activeSet[v] = true
		}
	}
	active := intset.FromMap(activeSet)
	for len(active) > 0 {
		eliminated := -1
		for _, v := range active {
			if nestPoint(work, v) {
				eliminated = v
				break
			}
		}
		if eliminated == -1 {
			return active, work
		}
		active = active.Remove(eliminated)
		next := work[:0]
		for _, e := range work {
			e = e.Remove(eliminated)
			if !e.Empty() {
				next = append(next, e)
			}
		}
		work = next
	}
	return nil, nil
}

// GammaAcyclic reports whether h is γ-acyclic (no γ-cycle, Definition 6).
//
// A γ-cycle is a β-cycle or a 3-edge cycle (e1, e2, e3) whose connecting
// nodes satisfy n1 ∉ e3 and n2 ∉ e1. Hence h is γ-acyclic iff it is
// β-acyclic and has no such "special triangle"; the triangle scan below is
// exact because the three witness nodes are automatically distinct:
// n1 ∈ e1∩e2∖e3 and n2 ∈ e2∩e3∖e1 and n3 ∈ e3∩e1 are pairwise separated by
// the excluded edges.
func (h *Hypergraph) GammaAcyclic() bool {
	return h.BetaAcyclic() && h.FindGammaTriangle() == nil
}

// GammaTriangle is a special-triangle witness for γ-cyclicity.
type GammaTriangle struct {
	E1, E2, E3 int // edge indices, (e1, e2, e3) as in Definition 6
	N1, N2, N3 int // n1 ∈ e1∩e2∖e3, n2 ∈ e2∩e3∖e1, n3 ∈ e3∩e1
}

// FindGammaTriangle returns a special triangle of h, or nil if none exists.
// The conditions are symmetric under swapping e1 and e3, so the scan fixes
// e1 < e3 and tries every middle edge e2.
func (h *Hypergraph) FindGammaTriangle() *GammaTriangle {
	m := h.M()
	for a := 0; a < m; a++ {
		for c := a + 1; c < m; c++ {
			ac := h.edges[a].Inter(h.edges[c])
			if ac.Empty() {
				continue
			}
			for b := 0; b < m; b++ {
				if b == a || b == c {
					continue
				}
				n1s := h.edges[a].Inter(h.edges[b]).Diff(h.edges[c])
				if n1s.Empty() {
					continue
				}
				n2s := h.edges[b].Inter(h.edges[c]).Diff(h.edges[a])
				if n2s.Empty() {
					continue
				}
				return &GammaTriangle{
					E1: a, E2: b, E3: c,
					N1: n1s[0], N2: n2s[0], N3: ac[0],
				}
			}
		}
	}
	return nil
}
