package trace

// FlagSampled is the W3C trace-flags sampled bit: a caller that sets it
// on its traceparent forces the trace to be kept.
const FlagSampled byte = 0x01

// Traceparent is a parsed W3C traceparent header (version 00):
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	^^ ^^^^^^^^^^^ trace-id ^^^^^^^^^^^ ^^ parent-id ^^^ ^^ flags
//
// Valid is false for malformed headers, unknown versions, and the
// all-zero ids the spec declares invalid.
type Traceparent struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
	Valid   bool
}

// ParseTraceparent parses a version-00 traceparent header. It never
// allocates; invalid input yields the zero Traceparent.
func ParseTraceparent(h string) Traceparent {
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return Traceparent{}
	}
	var tp Traceparent
	if !hexDecode(tp.TraceID[:], h[3:35]) || !hexDecode(tp.SpanID[:], h[36:52]) {
		return Traceparent{}
	}
	hi, ok1 := hexVal(h[53])
	lo, ok2 := hexVal(h[54])
	if !ok1 || !ok2 || tp.TraceID.IsZero() || tp.SpanID.IsZero() {
		return Traceparent{}
	}
	tp.Flags = hi<<4 | lo
	tp.Valid = true
	return tp
}

// FormatTraceparent renders a version-00 traceparent header for
// outbound propagation.
func FormatTraceparent(id TraceID, sp SpanID, flags byte) string {
	const digits = "0123456789abcdef"
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	for _, c := range id {
		b = append(b, digits[c>>4], digits[c&0xf])
	}
	b = append(b, '-')
	for _, c := range sp {
		b = append(b, digits[c>>4], digits[c&0xf])
	}
	b = append(b, '-', digits[flags>>4], digits[flags&0xf])
	return string(b)
}

// hexDecode fills dst from the lowercase hex string s (len(s) must be
// 2*len(dst)); it reports whether every digit was valid.
func hexDecode(dst []byte, s string) bool {
	for i := range dst {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

// hexVal decodes one lowercase hex digit; uppercase is invalid per the
// W3C spec.
func hexVal(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}
