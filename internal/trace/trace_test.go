package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	const h = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tp := ParseTraceparent(h)
	if !tp.Valid {
		t.Fatalf("ParseTraceparent(%q) invalid", h)
	}
	if got := tp.TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", got)
	}
	if got := tp.SpanID.String(); got != "00f067aa0ba902b7" {
		t.Errorf("span id = %s", got)
	}
	if tp.Flags&FlagSampled == 0 {
		t.Error("sampled flag lost")
	}
	if got := FormatTraceparent(tp.TraceID, tp.SpanID, tp.Flags); got != h {
		t.Errorf("FormatTraceparent = %q, want %q", got, h)
	}
}

func TestTraceparentInvalid(t *testing.T) {
	for _, h := range []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // truncated
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // unknown version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero span id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",   // uppercase
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g",   // bad flags
		"00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // trailing
	} {
		if ParseTraceparent(h).Valid {
			t.Errorf("ParseTraceparent(%q) unexpectedly valid", h)
		}
	}
}

func TestHeadSampling(t *testing.T) {
	always := New(Config{SampleProb: 1, Seed: 7})
	if rec := always.Finish(always.StartRequest("req", Traceparent{}), false); rec == nil {
		t.Error("SampleProb=1: trace dropped")
	} else if rec.Reason != "sampled" {
		t.Errorf("reason = %q, want sampled", rec.Reason)
	}

	never := New(Config{SampleProb: 0, Seed: 7})
	if rec := never.Finish(never.StartRequest("req", Traceparent{}), false); rec != nil {
		t.Error("SampleProb=0: trace kept")
	}

	// The incoming sampled flag forces retention even at probability 0.
	parent := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	rec := never.Finish(never.StartRequest("req", parent), false)
	if rec == nil {
		t.Fatal("forced trace dropped")
	}
	if rec.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("forced trace id = %s, want the caller's", rec.TraceID)
	}
	if rec.ParentSpan != "00f067aa0ba902b7" {
		t.Errorf("parent span = %s", rec.ParentSpan)
	}

	// Errors are always kept.
	if rec := never.Finish(never.StartRequest("req", Traceparent{}), true); rec == nil {
		t.Error("error trace dropped")
	} else if rec.Reason != "error" || !rec.Error {
		t.Errorf("error trace reason = %q, Error = %v", rec.Reason, rec.Error)
	}
}

func TestSpansAndPhases(t *testing.T) {
	tr := New(Config{SampleProb: 1, Seed: 3}).StartRequest("POST /v1/connect", Traceparent{})
	tr.Root().Annotate("scheme", "library")
	tr.Root().AnnotateInt("epoch", 4)
	sp := tr.StartSpan("cache")
	sp.Annotate("outcome", "miss")
	sp.AnnotateInt("shard", 2)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	sp.End()                      // idempotent
	open := tr.StartSpan("solve") // never ended: closed at the root's end
	_ = open

	rec := tr.tracer.Finish(tr, false)
	if rec == nil {
		t.Fatal("trace dropped")
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(rec.Spans))
	}
	root := rec.Spans[0]
	if root.Name != "POST /v1/connect" || root.Attrs["scheme"] != "library" || root.Attrs["epoch"] != int64(4) {
		t.Errorf("root span = %+v", root)
	}
	cacheSpan := rec.Spans[1]
	if cacheSpan.Name != "cache" || cacheSpan.Attrs["outcome"] != "miss" || cacheSpan.Attrs["shard"] != int64(2) {
		t.Errorf("cache span = %+v", cacheSpan)
	}
	if cacheSpan.DurationMS < 2 {
		t.Errorf("cache span duration %.3fms, want >= 2ms", cacheSpan.DurationMS)
	}
	if cacheSpan.DurationMS > rec.DurationMS {
		t.Errorf("span (%.3fms) outlives trace (%.3fms)", cacheSpan.DurationMS, rec.DurationMS)
	}
	if solveSpan := rec.Spans[2]; solveSpan.StartMS+solveSpan.DurationMS > rec.DurationMS+0.001 {
		t.Errorf("unended span not clamped to root end: %+v vs %.3f", solveSpan, rec.DurationMS)
	}
}

func TestSlowQueryLogAndRetention(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	tc := New(Config{SampleProb: 0, SlowQuery: time.Millisecond, Logger: logger, Seed: 9})

	tr := tc.StartRequest("POST /v1/connect", Traceparent{})
	tr.Root().Annotate("scheme", "library")
	sp := tr.StartSpan("solve")
	time.Sleep(3 * time.Millisecond)
	sp.End()
	rec := tc.Finish(tr, false)
	if rec == nil {
		t.Fatal("slow trace dropped despite SampleProb=0")
	}
	if rec.Reason != "slow" {
		t.Errorf("reason = %q, want slow", rec.Reason)
	}

	var entry map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entry); err != nil {
		t.Fatalf("slow-query log is not JSON: %v\n%s", err, buf.String())
	}
	if entry["trace_id"] != rec.TraceID {
		t.Errorf("log trace_id = %v, want %s", entry["trace_id"], rec.TraceID)
	}
	if entry["scheme"] != "library" {
		t.Errorf("log missing root attrs: %v", entry)
	}
	if _, ok := entry["phase_solve_ms"]; !ok {
		t.Errorf("log missing phase breakdown: %v", entry)
	}

	// A fast request under the same config is dropped and unlogged.
	buf.Reset()
	if rec := tc.Finish(tc.StartRequest("req", Traceparent{}), false); rec != nil {
		t.Error("fast trace kept")
	}
	if buf.Len() != 0 {
		t.Errorf("fast trace logged: %s", buf.String())
	}
}

func TestRingBoundedNewestFirst(t *testing.T) {
	tc := New(Config{SampleProb: 1, RingSize: 4, Seed: 1})
	var last string
	for range 10 {
		rec := tc.Finish(tc.StartRequest("req", Traceparent{}), false)
		last = rec.TraceID
	}
	recent := tc.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	if recent[0].TraceID != last {
		t.Errorf("ring not newest-first: got %s, want %s", recent[0].TraceID, last)
	}
	started, recorded := tc.Stats()
	if started != 10 || recorded != 10 {
		t.Errorf("stats = %d/%d, want 10/10", started, recorded)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != (TraceID{}) || tr.Sampled() {
		t.Error("nil trace has identity")
	}
	sp := tr.StartSpan("x")
	sp.Annotate("k", "v")
	sp.AnnotateInt("k", 1)
	sp.End()
	tr.Root().End()
	if got := FromContext(context.Background()); got != nil {
		t.Errorf("FromContext(Background) = %v", got)
	}
	ctx := NewContext(context.Background(), nil)
	if got := FromContext(ctx); got != nil {
		t.Errorf("FromContext(nil-trace ctx) = %v", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tc := New(Config{SampleProb: 1, Seed: 2})
	tr := tc.StartRequest("req", Traceparent{})
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context")
	}
	tc.Finish(tr, false)
}

// TestDroppedPathZeroAlloc pins the sampled-out request cost: once the
// pool is warm, start → span → finish of an unkept trace allocates
// nothing.
func TestDroppedPathZeroAlloc(t *testing.T) {
	tc := New(Config{SampleProb: 0, Seed: 5})
	const hdr = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"
	work := func() {
		tr := tc.StartRequest("req", ParseTraceparent(hdr))
		sp := tr.StartSpan("cache")
		sp.Annotate("outcome", "hit")
		sp.AnnotateInt("shard", 3)
		sp.End()
		tc.Finish(tr, false)
	}
	for range 10 {
		work() // warm the pool
	}
	if allocs := testing.AllocsPerRun(100, work); allocs != 0 {
		t.Errorf("dropped-trace path allocates %.1f/op, want 0", allocs)
	}
}

func TestMaxSpansBounded(t *testing.T) {
	tc := New(Config{SampleProb: 1, Seed: 8})
	tr := tc.StartRequest("req", Traceparent{})
	for i := 0; i < 3*maxSpans; i++ {
		tr.StartSpan("s").End()
	}
	rec := tc.Finish(tr, false)
	if len(rec.Spans) != maxSpans {
		t.Errorf("recorded %d spans, want cap %d", len(rec.Spans), maxSpans)
	}
}

func TestRecordedJSONShape(t *testing.T) {
	tc := New(Config{SampleProb: 1, Seed: 6})
	tr := tc.StartRequest("GET /v1/stats", Traceparent{})
	tr.StartSpan("decode").End()
	rec := tc.Finish(tr, false)
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"trace_id"`, `"duration_ms"`, `"reason"`, `"spans"`, `"span_id"`, `"start_ms"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("marshalled trace missing %s: %s", key, b)
		}
	}
}
