// Package trace is the dependency-free request-tracing subsystem of the
// serving tier. It provides W3C-compatible trace/span identifiers,
// `traceparent` parsing and formatting for the HTTP boundary, per-span
// phase timings threaded through context.Context, head sampling
// (probabilistic, plus always-record on error and on slow queries), a
// bounded ring of recent traces for GET /v1/traces, and a structured
// slow-query log on log/slog.
//
// The design is built around two constraints inherited from the PR 6
// zero-alloc work:
//
//   - Absent tracer: code paths that never see a tracer (direct solver
//     calls, benchmarks, batch workers under test) observe a nil *Trace
//     from FromContext, and every method on a nil Trace or zero SpanRef
//     is a no-op. The frozen-solver AllocsPerRun==0 pin holds with
//     tracing compiled in.
//   - Present tracer, trace not kept: the Trace and its span storage
//     come from a sync.Pool and are recycled on Finish; the
//     record-then-drop path allocates nothing per span. Only traces that
//     are actually kept (sampled, forced, error, slow) pay for the
//     immutable Recorded copy.
package trace

import (
	"context"
	"encoding/hex"
	"sync"
	"time"
)

// TraceID is a W3C trace-id: 16 bytes, all-zero means absent.
type TraceID [16]byte

// SpanID is a W3C parent-id/span-id: 8 bytes, all-zero means absent.
type SpanID [8]byte

// String renders the id as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the id as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the id is all zeroes (invalid on the wire).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the id is all zeroes (invalid on the wire).
func (id SpanID) IsZero() bool { return id == SpanID{} }

const (
	// maxSpans bounds the span storage of one pooled Trace. Spans started
	// past the cap are silently dropped (StartSpan returns a no-op
	// SpanRef); a large ConnectBatch fanning hundreds of per-query cache
	// spans into one request trace stays bounded.
	maxSpans = 64

	// maxSpanAttrs bounds per-span annotations; later annotations on a
	// full span are dropped.
	maxSpanAttrs = 6
)

// attr is one span annotation. The two-field value shape (string or
// int64, selected by isNum) avoids boxing values into `any` while the
// span is in flight; Recorded traces convert to map[string]any.
type attr struct {
	key   string
	str   string
	num   int64
	isNum bool
}

// span is the in-flight representation of one phase: offsets from the
// trace start and annotations in fixed storage, recycled with the Trace.
type span struct {
	name   string
	start  time.Duration
	end    time.Duration
	ended  bool
	nattrs int8
	attrs  [maxSpanAttrs]attr
}

// A Trace is the pooled, in-flight record of one request. spans[0] is
// the root span covering the whole request; phase spans are flat
// children of the root. A Trace is obtained from Tracer.StartRequest,
// travels in a context.Context via NewContext, and must be returned via
// Tracer.Finish exactly once. All methods are safe on a nil receiver
// (no-ops), so call sites never branch on whether tracing is enabled.
//
// The mutex serializes span operations: ConnectBatch fans one request
// out to several workers that annotate the same trace concurrently.
type Trace struct {
	tracer *Tracer
	id     TraceID
	root   SpanID // root span id (random)
	parent SpanID // remote parent span id from traceparent, if any
	forced bool   // incoming traceparent carried the sampled flag
	head   bool   // head-sampling decision (includes forced)
	start  time.Time

	mu    sync.Mutex
	spans []span
}

// ID returns the trace id; zero for a nil trace.
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// Sampled reports whether the head-sampling decision (probabilistic or
// forced by the caller's traceparent) already guarantees the trace will
// be kept; error and slow-query retention are decided later, at Finish.
func (t *Trace) Sampled() bool { return t != nil && t.head }

// Root returns a handle on the root span, for request-level annotations
// (scheme, epoch, status). Safe on a nil trace.
func (t *Trace) Root() SpanRef {
	if t == nil {
		return SpanRef{}
	}
	return SpanRef{t: t, i: 0}
}

// StartSpan opens a phase span at the current time. The returned handle
// stays valid as span storage grows. On a nil trace, or once the span
// cap is reached, it returns the zero SpanRef, whose methods no-op.
func (t *Trace) StartSpan(name string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	d := time.Since(t.start)
	t.mu.Lock()
	i := len(t.spans)
	if i >= maxSpans {
		t.mu.Unlock()
		return SpanRef{}
	}
	t.spans = append(t.spans, span{name: name, start: d})
	t.mu.Unlock()
	return SpanRef{t: t, i: int32(i)}
}

// A SpanRef is a cheap index-based handle on one span of a Trace. The
// zero value is a valid no-op handle: End and the annotation methods
// return immediately. Handles index into the trace rather than pointing
// at span storage, so they survive the spans slice reallocating.
type SpanRef struct {
	t *Trace
	i int32
}

// End closes the span. It is idempotent and safe on the zero SpanRef.
func (s SpanRef) End() {
	if s.t == nil {
		return
	}
	d := time.Since(s.t.start)
	s.t.mu.Lock()
	sp := &s.t.spans[s.i]
	if !sp.ended {
		sp.ended = true
		sp.end = d
	}
	s.t.mu.Unlock()
}

// Annotate attaches a string attribute to the span. Attributes past the
// per-span cap are dropped.
func (s SpanRef) Annotate(key, val string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.i]
	if int(sp.nattrs) < maxSpanAttrs {
		sp.attrs[sp.nattrs] = attr{key: key, str: val}
		sp.nattrs++
	}
	s.t.mu.Unlock()
}

// AnnotateInt attaches an integer attribute to the span. Attributes past
// the per-span cap are dropped.
func (s SpanRef) AnnotateInt(key string, val int64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.i]
	if int(sp.nattrs) < maxSpanAttrs {
		sp.attrs[sp.nattrs] = attr{key: key, num: val, isNum: true}
		sp.nattrs++
	}
	s.t.mu.Unlock()
}

// ctxKey is the private context key carrying the *Trace.
type ctxKey struct{}

// NewContext returns a context carrying tr. Passing a nil trace is
// allowed and behaves as if no trace were attached.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil. On contexts
// without a trace (context.Background in benchmarks, solver tests) this
// is a constant-time miss, and the nil result makes every downstream
// span operation a no-op.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
