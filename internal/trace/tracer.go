package trace

import (
	"encoding/binary"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRingSize is the recent-trace ring capacity when Config leaves
// RingSize zero.
const DefaultRingSize = 256

// Config parameterizes a Tracer.
type Config struct {
	// SampleProb is the head-sampling probability in [0, 1]. Zero keeps
	// only forced (traceparent sampled flag), error and slow traces.
	SampleProb float64

	// SlowQuery is the slow-query threshold: a request whose total
	// duration reaches it is always kept and, when Logger is set, logged
	// with its full phase breakdown. Zero or negative disables.
	SlowQuery time.Duration

	// RingSize bounds the recent-trace ring served at /v1/traces.
	// Defaults to DefaultRingSize.
	RingSize int

	// Logger receives the structured slow-query log. Nil disables
	// logging; retention is unaffected.
	Logger *slog.Logger

	// Seed seeds the sampling and id generator, for deterministic tests.
	// Zero derives a seed from the clock.
	Seed uint64
}

// A Tracer owns the trace pool, the sampling decision, the recent-trace
// ring and the slow-query log. One Tracer serves one HTTP handler; all
// methods are safe for concurrent use.
type Tracer struct {
	prob   float64
	slow   time.Duration
	logger *slog.Logger
	rng    atomic.Uint64
	pool   sync.Pool
	ring   ring

	started  atomic.Uint64
	recorded atomic.Uint64
}

// New builds a Tracer from cfg.
func New(cfg Config) *Tracer {
	size := cfg.RingSize
	if size <= 0 {
		size = DefaultRingSize
	}
	prob := cfg.SampleProb
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	t := &Tracer{prob: prob, slow: cfg.SlowQuery, logger: cfg.Logger}
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	t.rng.Store(seed)
	t.ring.buf = make([]*Recorded, size)
	t.pool.New = func() any {
		return &Trace{spans: make([]span, 0, maxSpans)}
	}
	return t
}

// SlowThreshold returns the configured slow-query threshold (zero when
// disabled).
func (t *Tracer) SlowThreshold() time.Duration { return t.slow }

// rand64 is one splitmix64 step over shared atomic state: cheap,
// allocation-free, and good enough for sampling decisions and ids.
func (t *Tracer) rand64() uint64 {
	x := t.rng.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// StartRequest begins the trace for one request. name becomes the root
// span's name. parent carries the incoming traceparent, if any: a valid
// parent's trace id is adopted and its sampled flag forces retention.
// The returned Trace comes from a pool and must be handed to Finish
// exactly once; in steady state this path allocates nothing.
func (t *Tracer) StartRequest(name string, parent Traceparent) *Trace {
	tr := t.pool.Get().(*Trace)
	tr.tracer = t
	if parent.Valid {
		tr.id = parent.TraceID
		tr.parent = parent.SpanID
		tr.forced = parent.Flags&FlagSampled != 0
	} else {
		binary.BigEndian.PutUint64(tr.id[:8], t.rand64())
		binary.BigEndian.PutUint64(tr.id[8:], t.rand64())
		if tr.id.IsZero() {
			tr.id[15] = 1
		}
		tr.parent = SpanID{}
		tr.forced = false
	}
	binary.BigEndian.PutUint64(tr.root[:], t.rand64())
	if tr.root.IsZero() {
		tr.root[7] = 1
	}
	tr.head = tr.forced || (t.prob > 0 && float64(t.rand64()>>11)/(1<<53) < t.prob)
	tr.start = time.Now()
	tr.spans = append(tr.spans[:0], span{name: name})
	t.started.Add(1)
	return tr
}

// Finish ends the root span and decides the trace's fate: kept (head
// sampled, error, or at/over the slow-query threshold) and copied into
// the recent-trace ring — logging the slow ones — or dropped. Either way
// the Trace is recycled and must not be used afterwards. Finish returns
// the immutable recorded form, or nil when the trace was dropped.
func (t *Tracer) Finish(tr *Trace, isErr bool) *Recorded {
	if t == nil || tr == nil {
		return nil
	}
	d := time.Since(tr.start)
	tr.mu.Lock()
	root := &tr.spans[0]
	if !root.ended {
		root.ended = true
		root.end = d
	}
	slow := t.slow > 0 && root.end >= t.slow
	if !tr.head && !isErr && !slow {
		tr.mu.Unlock()
		t.recycle(tr)
		return nil
	}
	rec := buildRecorded(tr, isErr, slow)
	tr.mu.Unlock()
	t.recycle(tr)
	t.recorded.Add(1)
	t.ring.add(rec)
	if slow && t.logger != nil {
		t.logSlow(rec)
	}
	return rec
}

// recycle resets the trace and returns it to the pool. Span storage is
// kept (capacity reuse); stale annotation strings in the backing array
// are overwritten as slots are reused and are bounded by maxSpans.
func (t *Tracer) recycle(tr *Trace) {
	tr.tracer = nil
	tr.mu.Lock()
	tr.spans = tr.spans[:0]
	tr.mu.Unlock()
	t.pool.Put(tr)
}

// Recent returns the ring contents, newest first.
func (t *Tracer) Recent() []*Recorded { return t.ring.snapshot() }

// Stats returns the number of traces started and kept since New.
func (t *Tracer) Stats() (started, recorded uint64) {
	return t.started.Load(), t.recorded.Load()
}

// Recorded is the immutable exported form of a kept trace, shaped for
// the /v1/traces JSON response. Spans[0] is the root.
type Recorded struct {
	TraceID    string         `json:"trace_id"`
	ParentSpan string         `json:"parent_span_id,omitempty"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Reason     string         `json:"reason"` // "error", "slow" or "sampled"
	Error      bool           `json:"error,omitempty"`
	Spans      []RecordedSpan `json:"spans"`
}

// RecordedSpan is one phase of a recorded trace. StartMS is the offset
// from the trace start. The root span carries the tracer-generated
// random id; child span ids are per-trace sequence numbers.
type RecordedSpan struct {
	SpanID     string         `json:"span_id"`
	Name       string         `json:"name"`
	StartMS    float64        `json:"start_ms"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// buildRecorded copies the in-flight trace into its exported form. The
// caller holds tr.mu. Spans never ended (a handler that panicked past
// its End) are closed at the root's end time.
func buildRecorded(tr *Trace, isErr, slow bool) *Recorded {
	root := &tr.spans[0]
	reason := "sampled"
	switch {
	case isErr:
		reason = "error"
	case slow:
		reason = "slow"
	}
	rec := &Recorded{
		TraceID:    tr.id.String(),
		Name:       root.name,
		Start:      tr.start,
		DurationMS: ms(root.end),
		Reason:     reason,
		Error:      isErr,
		Spans:      make([]RecordedSpan, len(tr.spans)),
	}
	if !tr.parent.IsZero() {
		rec.ParentSpan = tr.parent.String()
	}
	for i := range tr.spans {
		sp := &tr.spans[i]
		end := sp.end
		if !sp.ended {
			end = root.end
		}
		var id SpanID
		if i == 0 {
			id = tr.root
		} else {
			binary.BigEndian.PutUint64(id[:], uint64(i))
		}
		rs := RecordedSpan{
			SpanID:     id.String(),
			Name:       sp.name,
			StartMS:    ms(sp.start),
			DurationMS: ms(end - sp.start),
		}
		if sp.nattrs > 0 {
			rs.Attrs = make(map[string]any, sp.nattrs)
			for _, a := range sp.attrs[:sp.nattrs] {
				if a.isNum {
					rs.Attrs[a.key] = a.num
				} else {
					rs.Attrs[a.key] = a.str
				}
			}
		}
		rec.Spans[i] = rs
	}
	return rec
}

// logSlow emits one structured slow-query record: trace id, endpoint,
// total duration, the root span's request-level attributes, and a
// phase_<name>_ms field per phase (durations summed across same-named
// spans, keys sorted for deterministic output).
func (t *Tracer) logSlow(rec *Recorded) {
	phases := make(map[string]float64, len(rec.Spans))
	for _, sp := range rec.Spans[1:] {
		phases[sp.Name] += sp.DurationMS
	}
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Strings(names)
	args := make([]any, 0, 8+2*len(rec.Spans[0].Attrs)+2*len(names))
	args = append(args,
		"trace_id", rec.TraceID,
		"name", rec.Name,
		"duration_ms", rec.DurationMS,
		"reason", rec.Reason,
	)
	rootKeys := make([]string, 0, len(rec.Spans[0].Attrs))
	for k := range rec.Spans[0].Attrs {
		rootKeys = append(rootKeys, k)
	}
	sort.Strings(rootKeys)
	for _, k := range rootKeys {
		args = append(args, k, rec.Spans[0].Attrs[k])
	}
	for _, name := range names {
		args = append(args, "phase_"+name+"_ms", phases[name])
	}
	t.logger.Warn("slow query", args...)
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// ring is a fixed-size overwrite buffer of recent recorded traces.
type ring struct {
	mu   sync.Mutex
	buf  []*Recorded
	next int
	n    int
}

func (r *ring) add(rec *Recorded) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// snapshot returns the ring contents newest-first.
func (r *ring) snapshot() []*Recorded {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Recorded, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
