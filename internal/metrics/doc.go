// Package metrics is the repo's dependency-free observability kit:
// atomic counters, gauges and fixed-bucket latency histograms, collected
// in a Registry that renders the Prometheus text exposition format
// (version 0.0.4) for a GET /metrics scrape.
//
// Design constraints, in order:
//
//   - Zero dependencies. The serving stack must stay a pure stdlib build,
//     so this package implements the small slice of the Prometheus client
//     surface the repo actually uses rather than importing one.
//   - Hot-path instruments are lock-free. Counter.Add, Gauge.Set and
//     Histogram.Observe are single atomic operations (Observe is two: a
//     bucket increment and a sum add), so instrumenting the request path
//     adds no lock that the sharded answer cache just removed. The
//     Registry mutex guards registration and scrape walks only.
//   - Histograms are fixed-bucket with exponential bounds
//     (ExponentialBounds), the standard shape for service latency: the
//     bucket layout is chosen at construction and never reallocated, so
//     Observe is an index computation plus two atomic adds. Quantile
//     estimates (p50/p95/p99) interpolate linearly inside the bucket that
//     spans the requested rank — the same estimate Prometheus's
//     histogram_quantile computes server-side — which is what the
//     Retry-After derivation and the load harness report use.
//
// Dynamic label sets (one series per registered scheme, where schemes
// come and go at runtime via the admin endpoints) are bridged with
// CounterFunc/GaugeFunc: the callback produces the current samples at
// scrape time, so the metrics surface never holds its own copy of state
// the Registry or cache already owns.
package metrics
