package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name=value pair attached to a series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Sample is one dynamically produced series: its labels and current
// value. CounterFunc/GaugeFunc callbacks return these at scrape time.
type Sample struct {
	Labels []Label
	Value  float64
}

// HistogramSample is one dynamically produced histogram series: its
// labels and the live *Histogram whose buckets are rendered at scrape
// time. HistogramFunc callbacks return these — the bridge for
// histograms whose owner comes and goes at runtime (per-scheme planner
// instruments owned by each core.Service).
type HistogramSample struct {
	Labels []Label
	H      *Histogram
}

// Registry collects instruments and renders them in the Prometheus text
// exposition format. Metric families keep registration order so scrapes
// are deterministic; series within a family render in label order. All
// methods are safe for concurrent use — the registry lock guards the
// family tables only, never an instrument's hot path.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// family is every series sharing one metric name, with its HELP/TYPE
// header. Exactly one of the instrument maps or the sample callback is
// populated, according to typ and how the family was registered.
type family struct {
	name, help, typ string
	order           []string // series registration order, by label signature
	counters        map[string]*Counter
	gauges          map[string]*Gauge
	histograms      map[string]*Histogram
	labels          map[string][]Label
	sampler         func() []Sample
	hsampler        func() []HistogramSample
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyFor returns (creating if needed) the family for name, enforcing
// one TYPE per name. Registering the same name with a different type is a
// programming error and panics — silently rendering a malformed exposition
// would fail every scraper downstream.
func (r *Registry) familyFor(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, typ: typ,
			counters:   map[string]*Counter{},
			gauges:     map[string]*Gauge{},
			histograms: map[string]*Histogram{},
			labels:     map[string][]Label{},
		}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.typ, typ))
	}
	if f.sampler != nil || f.hsampler != nil {
		panic(fmt.Sprintf("metrics: %s is a sampler family; cannot add static series", name))
	}
	return f
}

// signature renders labels canonically (sorted by name) for use as the
// series key within a family.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

// Counter returns the counter series name{labels…}, creating it on first
// use. Repeat calls with the same name and label set return the same
// *Counter, so callers may resolve lazily on a hot path.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "counter")
	sig := signature(labels)
	if c, ok := f.counters[sig]; ok {
		return c
	}
	c := &Counter{}
	f.counters[sig] = c
	f.labels[sig] = append([]Label(nil), labels...)
	f.order = append(f.order, sig)
	return c
}

// Gauge returns the gauge series name{labels…}, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "gauge")
	sig := signature(labels)
	if g, ok := f.gauges[sig]; ok {
		return g
	}
	g := &Gauge{}
	f.gauges[sig] = g
	f.labels[sig] = append([]Label(nil), labels...)
	f.order = append(f.order, sig)
	return g
}

// Histogram returns the histogram series name{labels…} over bounds
// (seconds), creating it on first use; bounds are ignored on repeat calls
// for an existing series (the first registration wins — bucket layouts
// are immutable).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "histogram")
	sig := signature(labels)
	if h, ok := f.histograms[sig]; ok {
		return h
	}
	h := NewHistogram(bounds)
	f.histograms[sig] = h
	f.labels[sig] = append([]Label(nil), labels...)
	f.order = append(f.order, sig)
	return h
}

// CounterFunc registers a whole counter family produced by f at scrape
// time — the bridge for counters whose source of truth lives elsewhere
// (cache stats per scheme, where schemes come and go at runtime). The
// name must not collide with a static family.
func (r *Registry) CounterFunc(name, help string, f func() []Sample) {
	r.registerSampler(name, help, "counter", f)
}

// GaugeFunc registers a whole gauge family produced by f at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() []Sample) {
	r.registerSampler(name, help, "gauge", f)
}

func (r *Registry) registerSampler(name, help, typ string, f func() []Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("metrics: %s registered twice", name))
	}
	r.families[name] = &family{name: name, help: help, typ: typ, sampler: f}
	r.order = append(r.order, name)
}

// HistogramFunc registers a whole histogram family produced by f at
// scrape time. Each returned HistogramSample renders its live histogram
// (buckets, sum, count, exemplar) under the family name with the
// sample's labels. The name must not collide with any other family.
func (r *Registry) HistogramFunc(name, help string, f func() []HistogramSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("metrics: %s registered twice", name))
	}
	r.families[name] = &family{name: name, help: help, typ: "histogram", hsampler: f}
	r.order = append(r.order, name)
}

// WritePrometheus renders every registered family in the text exposition
// format (version 0.0.4): a # HELP and # TYPE header per family, then one
// line per series. Sampler families run their callback; histogram series
// render cumulative _bucket{le=…} lines plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Snapshot the family and series structure under the lock; instrument
	// values load atomically off the instruments themselves, and sampler
	// callbacks run outside the lock (they may read other locked state).
	type series struct {
		labels []Label
		c      *Counter
		g      *Gauge
		h      *Histogram
	}
	type famSnap struct {
		name, help, typ string
		sampler         func() []Sample
		hsampler        func() []HistogramSample
		series          []series
	}
	r.mu.Lock()
	snaps := make([]famSnap, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		fs := famSnap{name: f.name, help: f.help, typ: f.typ, sampler: f.sampler, hsampler: f.hsampler}
		for _, sig := range f.order {
			fs.series = append(fs.series, series{
				labels: f.labels[sig],
				c:      f.counters[sig],
				g:      f.gauges[sig],
				h:      f.histograms[sig],
			})
		}
		snaps = append(snaps, fs)
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range snaps {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		if f.sampler != nil {
			for _, s := range f.sampler() {
				writeSeries(&b, f.name, s.Labels, nil, s.Value)
			}
		}
		if f.hsampler != nil {
			for _, s := range f.hsampler() {
				if s.H != nil {
					writeHistogram(&b, f.name, s.Labels, s.H)
				}
			}
		}
		for _, s := range f.series {
			switch {
			case s.c != nil:
				writeSeries(&b, f.name, s.labels, nil, float64(s.c.Value()))
			case s.g != nil:
				writeSeries(&b, f.name, s.labels, nil, float64(s.g.Value()))
			case s.h != nil:
				writeHistogram(&b, f.name, s.labels, s.h)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative buckets, sum,
// count.
func writeHistogram(b *strings.Builder, name string, labels []Label, h *Histogram) {
	counts, total := h.snapshot()
	cum := uint64(0)
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		writeSeries(b, name+"_bucket", labels, &le, float64(cum))
	}
	writeSeries(b, name+"_sum", labels, nil, h.Sum())
	writeSeries(b, name+"_count", labels, nil, float64(total))
	if traceID, v, ok := h.Exemplar(); ok {
		// The 0.0.4 text format has no native exemplar syntax, so the
		// slowest-observation linkage rides in a comment: invisible to
		// strict parsers, greppable by humans chasing a tail latency.
		b.WriteString("# exemplar ")
		b.WriteString(name)
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteByte('=')
			b.WriteString(strconv.Quote(l.Value))
		}
		b.WriteString("} trace_id=")
		b.WriteString(traceID)
		b.WriteString(" value=")
		b.WriteString(formatFloat(v))
		b.WriteByte('\n')
	}
}

// writeSeries renders one sample line; le, when non-nil, is appended as
// the bucket bound label.
func writeSeries(b *strings.Builder, name string, labels []Label, le *string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 || le != nil {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteByte('=')
			b.WriteString(strconv.Quote(l.Value))
		}
		if le != nil {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`le=`)
			b.WriteString(strconv.Quote(*le))
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// formatFloat renders a value the way Prometheus expects: shortest
// round-trip representation, +Inf spelled out.
func formatFloat(v float64) string {
	if v == inf {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
