package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value. The zero value is ready to
// use; all methods are safe for concurrent use and lock-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use and lock-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative-count latency histogram.
// Observations are in seconds (the Prometheus convention); bucket bounds
// are chosen at construction and never change, so Observe is one bucket
// search plus two atomic adds — no locks, no allocation. Construct with
// NewHistogram; the zero value is not usable.
type Histogram struct {
	// bounds are the inclusive upper bounds of the finite buckets, sorted
	// ascending; counts has one extra slot for the implicit +Inf bucket.
	bounds []float64
	counts []atomic.Uint64
	count  atomic.Uint64
	// sumNanos accumulates the observation sum in integer nanoseconds so
	// it can be a plain atomic add; rendered as seconds. Latencies far
	// beyond histogram range would need ~292 years of observed time to
	// overflow int64 nanoseconds.
	sumNanos atomic.Int64

	// Exemplar state: the slowest observation seen so far and the trace
	// that produced it, linking the histogram's tail back to /v1/traces.
	// Kept off the plain Observe path — only ObserveWithExemplar takes
	// the mutex, and only for observations that carry a trace id.
	exMu  sync.Mutex
	exID  string
	exVal float64
	exSet bool
}

// NewHistogram returns a Histogram over the given finite upper bounds
// (seconds). Bounds are copied, sorted and deduplicated; an implicit +Inf
// bucket is always appended. Panics when no bounds are given — a
// histogram with only +Inf cannot estimate anything.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: NewHistogram needs at least one finite bucket bound")
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	uniq := bs[:1]
	for _, b := range bs[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{
		bounds: uniq,
		counts: make([]atomic.Uint64, len(uniq)+1),
	}
}

// ExponentialBounds returns n upper bounds starting at start and growing
// by factor: start, start·factor, start·factor², … — the standard layout
// for service latency, where useful resolution is relative, not absolute.
// Panics unless start > 0, factor > 1 and n ≥ 1.
func ExponentialBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExponentialBounds needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// DefLatencyBounds is the default latency bucket layout: 100µs to ~105s
// in 21 exponential steps of factor 2 — wide enough to span a warm cache
// hit (tens of µs) and an exact Dreyfus–Wagner solve running into a
// 30-second deadline, with ~2× relative resolution everywhere between.
func DefLatencyBounds() []float64 { return ExponentialBounds(100e-6, 2, 21) }

// Observe records one observation (seconds).
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the +Inf bucket is the
	// fallthrough index len(bounds).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(v * 1e9))
}

// ObserveDuration records one observed duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveWithExemplar records one observation and, when traceID is
// non-empty, offers it as the histogram's exemplar. The slowest
// observation wins: the exemplar always points at the trace of the worst
// latency the histogram has absorbed, which is the one worth reading.
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	h.exMu.Lock()
	if !h.exSet || v >= h.exVal {
		h.exSet = true
		h.exVal = v
		h.exID = traceID
	}
	h.exMu.Unlock()
}

// Exemplar returns the trace id and value of the slowest exemplar-carrying
// observation, with ok=false when none has been offered yet.
func (h *Histogram) Exemplar() (traceID string, v float64, ok bool) {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	return h.exID, h.exVal, h.exSet
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations, in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNanos.Load()) / 1e9 }

// snapshot loads every bucket count once. Loads are individually atomic
// but not mutually consistent under concurrent writes — the usual (and
// fine) monitoring trade-off.
func (h *Histogram) snapshot() (counts []uint64, total uint64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return counts, total
}

// Quantile estimates the q-quantile (0 < q < 1, e.g. 0.5 for p50, 0.99
// for p99) in seconds by linear interpolation inside the bucket that
// spans the requested rank — the same estimate Prometheus's
// histogram_quantile produces. Returns 0 when the histogram is empty.
// Observations in the +Inf bucket are reported as the largest finite
// bound (the estimate cannot exceed what the layout can resolve).
func (h *Histogram) Quantile(q float64) float64 {
	counts, total := h.snapshot()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(h.bounds) { // +Inf bucket: clamp to the largest finite bound
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		return lo + (hi-lo)*((rank-prev)/float64(c))
	}
	return h.bounds[len(h.bounds)-1]
}

// inf is the +Inf bound rendered for the cumulative bucket.
var inf = math.Inf(1)
