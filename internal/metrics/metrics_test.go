package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestExponentialBounds(t *testing.T) {
	got := ExponentialBounds(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(got) != len(want) {
		t.Fatalf("bounds = %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bounds[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExponentialBounds(0, 2, 3) },
		func() { ExponentialBounds(1, 1, 3) },
		func() { ExponentialBounds(1, 2, 0) },
		func() { NewHistogram(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid construction did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestHistogramCountsAndSum(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	h.Observe(0.005)                         // bucket 0
	h.Observe(0.05)                          // bucket 1
	h.Observe(0.5)                           // bucket 2
	h.Observe(5)                             // +Inf bucket
	h.ObserveDuration(10 * time.Millisecond) // exactly on a bound: cumulative in bucket 0
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got, want := h.Sum(), 5.565; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	counts, total := h.snapshot()
	if total != 5 {
		t.Fatalf("snapshot total = %d", total)
	}
	wantCounts := []uint64{2, 1, 1, 1}
	for i, c := range counts {
		if c != wantCounts[i] {
			t.Fatalf("bucket counts = %v, want %v", counts, wantCounts)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExponentialBounds(0.001, 2, 12))
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %g, want 0", got)
	}
	// 100 observations uniform in (0.001, 0.002]: all land in the second
	// bucket, so p50 interpolates to its midpoint.
	for i := 1; i <= 100; i++ {
		h.Observe(0.001 + 0.001*float64(i)/100)
	}
	if got := h.Quantile(0.5); math.Abs(got-0.0015) > 1e-9 {
		t.Fatalf("p50 = %g, want 0.0015 (bucket midpoint)", got)
	}
	if p99, p50 := h.Quantile(0.99), h.Quantile(0.5); p99 < p50 {
		t.Fatalf("p99 %g < p50 %g", p99, p50)
	}
	// Observations beyond every finite bound clamp to the largest bound.
	over := NewHistogram([]float64{0.01, 0.1})
	over.Observe(50)
	if got := over.Quantile(0.99); got != 0.1 {
		t.Fatalf("overflow p99 = %g, want 0.1 (largest finite bound)", got)
	}
}

// TestHistogramQuantileMonotone drives a realistic latency mix and checks
// the estimator's ordering property plus bracketing by the bucket layout.
func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(DefLatencyBounds())
	lat := []float64{0.0002, 0.0003, 0.0005, 0.001, 0.002, 0.004, 0.030, 0.250}
	for i := 0; i < 1000; i++ {
		h.Observe(lat[i%len(lat)])
	}
	last := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		v := h.Quantile(q)
		if v < last {
			t.Fatalf("quantiles not monotone: q=%g -> %g after %g", q, v, last)
		}
		last = v
	}
	if p50 := h.Quantile(0.5); p50 < 0.0002 || p50 > 0.030 {
		t.Fatalf("p50 = %g outside plausible range of the input mix", p50)
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("chordal_test_requests_total", "Requests served.", L("endpoint", "/v1/connect"))
	c.Add(3)
	r.Counter("chordal_test_requests_total", "Requests served.", L("endpoint", "/v1/batch")).Add(1)
	g := r.Gauge("chordal_test_inflight", "In-flight requests.")
	g.Set(2)
	h := r.Histogram("chordal_test_latency_seconds", "Latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	r.GaugeFunc("chordal_test_epoch", "Current epoch per scheme.", func() []Sample {
		return []Sample{{Labels: []Label{L("scheme", "lib")}, Value: 4}}
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP chordal_test_requests_total Requests served.\n# TYPE chordal_test_requests_total counter\n",
		`chordal_test_requests_total{endpoint="/v1/connect"} 3`,
		`chordal_test_requests_total{endpoint="/v1/batch"} 1`,
		"# TYPE chordal_test_inflight gauge",
		"chordal_test_inflight 2",
		"# TYPE chordal_test_latency_seconds histogram",
		`chordal_test_latency_seconds_bucket{le="0.01"} 1`,
		`chordal_test_latency_seconds_bucket{le="0.1"} 2`,
		`chordal_test_latency_seconds_bucket{le="+Inf"} 3`,
		"chordal_test_latency_seconds_sum 5.055",
		"chordal_test_latency_seconds_count 3",
		`chordal_test_epoch{scheme="lib"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Same name+labels must return the same instrument.
	if again := r.Counter("chordal_test_requests_total", "Requests served.", L("endpoint", "/v1/connect")); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Same name, different type must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("type collision did not panic")
			}
		}()
		r.Gauge("chordal_test_requests_total", "oops")
	}()
}

// TestRegistryConcurrentScrape hammers instruments while scraping; run
// under -race this pins the lock-free hot path against the snapshot walk.
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("chordal_test_total", "t")
	h := r.Histogram("chordal_test_lat_seconds", "t", DefLatencyBounds())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Error(err)
		}
		if i%10 == 9 { // registration may race scrapes too
			r.Counter("chordal_test_total", "t", L("i", string(rune('a'+i))))
		}
	}
	wg.Wait()
	if got := c.Value(); got != 4*2000 {
		t.Fatalf("counter = %d, want %d", got, 4*2000)
	}
	if got := h.Count(); got != 4*2000 {
		t.Fatalf("histogram count = %d, want %d", got, 4*2000)
	}
}
