package intset

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a sorted, duplicate-free slice of ints. The zero value is the
// empty set and is ready to use.
type Set []int

// New returns a Set containing the given elements (deduplicated, sorted).
func New(elems ...int) Set {
	return FromSlice(elems)
}

// FromSlice returns a Set with the elements of s (deduplicated, sorted).
// The input slice is not modified.
func FromSlice(s []int) Set {
	if len(s) == 0 {
		return nil
	}
	out := make([]int, len(s))
	copy(out, s)
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return Set(out[:w])
}

// FromMap returns a Set with the keys of m.
func FromMap(m map[int]bool) Set {
	out := make([]int, 0, len(m))
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return Set(out)
}

// Len returns the number of elements.
func (s Set) Len() int { return len(s) }

// Empty reports whether the set has no elements.
func (s Set) Empty() bool { return len(s) == 0 }

// Contains reports whether x is an element of s.
func (s Set) Contains(x int) bool {
	i := sort.SearchInts(s, x)
	return i < len(s) && s[i] == x
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Add returns a set containing the elements of s plus x.
// s itself is not modified.
func (s Set) Add(x int) Set {
	i := sort.SearchInts(s, x)
	if i < len(s) && s[i] == x {
		return s
	}
	out := make(Set, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, x)
	out = append(out, s[i:]...)
	return out
}

// Remove returns a set containing the elements of s minus x.
// s itself is not modified.
func (s Set) Remove(x int) Set {
	i := sort.SearchInts(s, x)
	if i >= len(s) || s[i] != x {
		return s
	}
	out := make(Set, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

// Union returns the union of s and t.
func (s Set) Union(t Set) Set {
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Inter returns the intersection of s and t.
func (s Set) Inter(t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Diff returns the set difference s − t.
func (s Set) Diff(t Set) Set {
	var out Set
	j := 0
	for _, x := range s {
		for j < len(t) && t[j] < x {
			j++
		}
		if j < len(t) && t[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// SubsetOf reports whether every element of s is in t.
func (s Set) SubsetOf(t Set) bool {
	j := 0
	for _, x := range s {
		for j < len(t) && t[j] < x {
			j++
		}
		if j >= len(t) || t[j] != x {
			return false
		}
		j++
	}
	return true
}

// ProperSubsetOf reports whether s ⊊ t.
func (s Set) ProperSubsetOf(t Set) bool {
	return len(s) < len(t) && s.SubsetOf(t)
}

// Equal reports whether s and t contain the same elements.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share at least one element.
func (s Set) Intersects(t Set) bool {
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// InterLen returns |s ∩ t| without allocating.
func (s Set) InterLen(t Set) int {
	n := 0
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Key returns a canonical string usable as a map key.
func (s Set) Key() string {
	var b strings.Builder
	for i, x := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	return b.String()
}

// String renders the set as "{a, b, c}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte('}')
	return b.String()
}
