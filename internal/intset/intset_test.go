package intset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromSlice(t *testing.T) {
	tests := []struct {
		name string
		in   []int
		want Set
	}{
		{"empty", nil, nil},
		{"single", []int{3}, Set{3}},
		{"sorted", []int{1, 2, 3}, Set{1, 2, 3}},
		{"unsorted", []int{3, 1, 2}, Set{1, 2, 3}},
		{"dups", []int{2, 1, 2, 1, 1}, Set{1, 2}},
		{"negatives", []int{0, -5, 5}, Set{-5, 0, 5}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := FromSlice(tc.in); !got.Equal(tc.want) {
				t.Errorf("FromSlice(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestFromSliceDoesNotMutateInput(t *testing.T) {
	in := []int{3, 1, 2}
	FromSlice(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestFromMap(t *testing.T) {
	got := FromMap(map[int]bool{1: true, 5: true, 3: false, 2: true})
	if !got.Equal(New(1, 2, 5)) {
		t.Errorf("FromMap = %v, want {1,2,5}", got)
	}
}

func TestContains(t *testing.T) {
	s := New(1, 3, 5)
	for _, x := range []int{1, 3, 5} {
		if !s.Contains(x) {
			t.Errorf("Contains(%d) = false, want true", x)
		}
	}
	for _, x := range []int{0, 2, 4, 6} {
		if s.Contains(x) {
			t.Errorf("Contains(%d) = true, want false", x)
		}
	}
	if Set(nil).Contains(0) {
		t.Error("empty set Contains(0) = true")
	}
}

func TestAddRemove(t *testing.T) {
	s := New(1, 3)
	s2 := s.Add(2)
	if !s2.Equal(New(1, 2, 3)) {
		t.Errorf("Add(2) = %v", s2)
	}
	if !s.Equal(New(1, 3)) {
		t.Errorf("Add mutated receiver: %v", s)
	}
	if got := s.Add(3); !got.Equal(s) {
		t.Errorf("Add existing = %v", got)
	}
	if got := s2.Remove(2); !got.Equal(s) {
		t.Errorf("Remove(2) = %v", got)
	}
	if got := s.Remove(7); !got.Equal(s) {
		t.Errorf("Remove absent = %v", got)
	}
}

func TestUnionInterDiff(t *testing.T) {
	a := New(1, 2, 3, 5)
	b := New(2, 4, 5, 6)
	if got := a.Union(b); !got.Equal(New(1, 2, 3, 4, 5, 6)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Inter(b); !got.Equal(New(2, 5)) {
		t.Errorf("Inter = %v", got)
	}
	if got := a.Diff(b); !got.Equal(New(1, 3)) {
		t.Errorf("Diff = %v", got)
	}
	if got := b.Diff(a); !got.Equal(New(4, 6)) {
		t.Errorf("Diff = %v", got)
	}
	if got := a.InterLen(b); got != 2 {
		t.Errorf("InterLen = %d, want 2", got)
	}
}

func TestSubset(t *testing.T) {
	if !New(1, 3).SubsetOf(New(1, 2, 3)) {
		t.Error("subset false negative")
	}
	if New(1, 4).SubsetOf(New(1, 2, 3)) {
		t.Error("subset false positive")
	}
	if !Set(nil).SubsetOf(New(1)) {
		t.Error("empty not subset")
	}
	if !New(1).SubsetOf(New(1)) {
		t.Error("set not subset of itself")
	}
	if New(1).ProperSubsetOf(New(1)) {
		t.Error("proper subset of itself")
	}
	if !New(1).ProperSubsetOf(New(1, 2)) {
		t.Error("proper subset false negative")
	}
}

func TestIntersects(t *testing.T) {
	if !New(1, 5).Intersects(New(5, 9)) {
		t.Error("Intersects false negative")
	}
	if New(1, 5).Intersects(New(2, 9)) {
		t.Error("Intersects false positive")
	}
	if Set(nil).Intersects(New(1)) {
		t.Error("empty intersects")
	}
}

func TestKeyString(t *testing.T) {
	s := New(3, 1, 2)
	if got := s.Key(); got != "1,2,3" {
		t.Errorf("Key = %q", got)
	}
	if got := s.String(); got != "{1, 2, 3}" {
		t.Errorf("String = %q", got)
	}
	if got := Set(nil).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestClone(t *testing.T) {
	s := New(1, 2)
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Error("Clone shares backing array")
	}
	if Set(nil).Clone() != nil {
		t.Error("Clone(nil) != nil")
	}
}

// Property-based tests over random sets.

func randSet(r *rand.Rand) Set {
	n := r.Intn(12)
	m := map[int]bool{}
	for i := 0; i < n; i++ {
		m[r.Intn(20)] = true
	}
	return FromMap(m)
}

func TestQuickSetAlgebra(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// Union is commutative, intersection distributes, De Morgan-ish identities.
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randSet(r), randSet(r), randSet(r)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Inter(b).Equal(b.Inter(a)) {
			return false
		}
		if !a.Inter(b.Union(c)).Equal(a.Inter(b).Union(a.Inter(c))) {
			return false
		}
		if !a.Diff(b).Union(a.Inter(b)).Equal(a) {
			return false
		}
		if a.Inter(b).Len() != a.InterLen(b) {
			return false
		}
		if a.Intersects(b) != (a.InterLen(b) > 0) {
			return false
		}
		if !a.Inter(b).SubsetOf(a) || !a.SubsetOf(a.Union(b)) {
			return false
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestQuickSorted(t *testing.T) {
	err := quick.Check(func(xs []int) bool {
		s := FromSlice(xs)
		for i := 1; i < len(s); i++ {
			if s[i-1] >= s[i] {
				return false
			}
		}
		for _, x := range xs {
			if !s.Contains(x) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}
