// Package intset provides a compact sorted-slice set of ints.
//
// Hypergraph edges, node neighbourhoods and cover node-sets throughout the
// library are represented as intset.Set values: sorted, duplicate-free
// []int slices. The representation is deterministic (iteration order is
// value order), cheap to hash into strings for map keys, and supports the
// set algebra (union, intersection, difference, subset) that the paper's
// hypergraph definitions are written in.
package intset
