package httpd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/trace"
)

// doTrace is do plus an inbound traceparent header.
func doTrace(t *testing.T, h http.Handler, method, path, body, traceparent string) *httptest.ResponseRecorder {
	t.Helper()
	r := httptest.NewRequest(method, path, strings.NewReader(body))
	if traceparent != "" {
		r.Header.Set("traceparent", traceparent)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// findTrace returns the retained trace with the given id, if any.
func findTrace(tr *trace.Tracer, id string) *trace.Recorded {
	for _, rec := range tr.Recent() {
		if rec.TraceID == id {
			return rec
		}
	}
	return nil
}

func TestTracesEndpointWithoutTracer(t *testing.T) {
	h := New(testRegistry())
	w := do(t, h, "GET", "/v1/traces", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	// Empty list, not null: probes need not know the tracing config.
	if body := strings.TrimSpace(w.Body.String()); body != `{"traces":[]}` {
		t.Fatalf("body = %s, want empty traces list", body)
	}
}

// TestTraceparentAdoption checks the W3C header contract: a sampled
// inbound traceparent forces retention under that trace id with the
// remote span as parent; an unsampled one is adopted but not retained.
func TestTraceparentAdoption(t *testing.T) {
	tracer := trace.New(trace.Config{}) // SampleProb 0: only forced traces kept
	h := New(testRegistry(), WithTracer(tracer))

	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	const psid = "00f067aa0ba902b7"
	w := doTrace(t, h, "POST", "/v1/connect",
		`{"scheme":"lib","labels":["A","C"]}`, "00-"+tid+"-"+psid+"-01")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	rec := findTrace(tracer, tid)
	if rec == nil {
		t.Fatalf("sampled traceparent not retained; ring: %+v", tracer.Recent())
	}
	if rec.ParentSpan != psid {
		t.Fatalf("parent span = %q, want %q", rec.ParentSpan, psid)
	}
	if rec.Reason != "sampled" {
		t.Fatalf("reason = %q, want sampled", rec.Reason)
	}
	if rec.Name != "/v1/connect" {
		t.Fatalf("name = %q, want /v1/connect", rec.Name)
	}
	if got := rec.Spans[0].Attrs["scheme"]; got != "lib" {
		t.Fatalf("root scheme attr = %v, want lib", got)
	}

	// The same trace must come back on the wire via GET /v1/traces.
	var resp TracesResponse
	if err := json.Unmarshal(do(t, h, "GET", "/v1/traces", "").Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range resp.Traces {
		found = found || r.TraceID == tid
	}
	if !found {
		t.Fatalf("trace %s missing from /v1/traces response", tid)
	}

	// Unsampled flags: the id is adopted but the trace is dropped.
	const tid2 = "aaaabbbbccccddddeeeeffff00001111"
	doTrace(t, h, "POST", "/v1/connect",
		`{"scheme":"lib","labels":["A","C"]}`, "00-"+tid2+"-"+psid+"-00")
	if findTrace(tracer, tid2) != nil {
		t.Fatalf("unsampled traceparent was retained")
	}
}

// TestSlowQueryForensics is the PR's acceptance scenario: a deliberately
// slow exact-DP query must yield a /v1/traces entry whose phase spans
// account for the request wall time, with the same trace id in the
// slow-query log, the access log, and the solve-histogram exemplar.
func TestSlowQueryForensics(t *testing.T) {
	reg := testRegistry()
	reg.Set("grid", gen.GridBipartite(10, 10))

	var logBuf bytes.Buffer
	var mu sync.Mutex // slog handler vs. direct reads below
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{w: &logBuf, mu: &mu}, nil))
	tracer := trace.New(trace.Config{SlowQuery: 5 * time.Millisecond, Logger: logger})
	h := New(reg, WithTracer(tracer), WithAccessLog(logger))

	// 12 spread-out terminals on a 10x10 grid force ~tens of ms of
	// Dreyfus–Wagner DP — far above the 5ms slow threshold, and large
	// enough that the phase spans dominate the request wall time.
	labels := make([]string, 12)
	for i := range labels {
		labels[i] = fmt.Sprintf("g%d_%d", (i*10)/12, (i*7)%10)
	}
	body, _ := json.Marshal(map[string]any{
		"scheme": "grid", "labels": labels, "method": "exact",
	})
	start := time.Now()
	w := do(t, h, "POST", "/v1/connect", string(body))
	wall := time.Since(start)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}

	recent := tracer.Recent()
	if len(recent) != 1 {
		t.Fatalf("retained %d traces, want 1", len(recent))
	}
	rec := recent[0]
	if rec.Reason != "slow" {
		t.Fatalf("reason = %q, want slow", rec.Reason)
	}
	if got := rec.Spans[0].Attrs["scheme"]; got != "grid" {
		t.Fatalf("root scheme attr = %v, want grid", got)
	}

	// Top-level phase spans (limiter, decode, cache, planner, solve,
	// render — not the nested solve.* phases) must tile the request:
	// their sum within 10% of the measured wall time.
	var phaseSum float64
	solveAttrs := map[string]any{}
	for _, sp := range rec.Spans[1:] {
		if strings.HasPrefix(sp.Name, "solve.") {
			continue
		}
		phaseSum += sp.DurationMS
		if sp.Name == "solve" {
			solveAttrs = sp.Attrs
		}
	}
	wallMS := float64(wall) / float64(time.Millisecond)
	if phaseSum < 0.9*wallMS || phaseSum > 1.1*wallMS {
		t.Errorf("phase spans sum to %.2fms, want within 10%% of wall %.2fms (trace %+v)",
			phaseSum, wallMS, rec)
	}
	if solveAttrs["method"] != "exact" {
		t.Errorf("solve span method attr = %v, want exact", solveAttrs["method"])
	}

	// The same trace id must appear in the slow-query log line and in
	// the access log line for the request.
	mu.Lock()
	logs := logBuf.String()
	mu.Unlock()
	var slowLine, requestLine map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logs), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		switch m["msg"] {
		case "slow query":
			slowLine = m
		case "request":
			requestLine = m
		}
	}
	if slowLine == nil {
		t.Fatalf("no slow-query log line in %s", logs)
	}
	if slowLine["trace_id"] != rec.TraceID {
		t.Errorf("slow-query log trace_id = %v, want %s", slowLine["trace_id"], rec.TraceID)
	}
	if _, ok := slowLine["phase_solve_ms"]; !ok {
		t.Errorf("slow-query log has no phase_solve_ms breakdown: %v", slowLine)
	}
	if requestLine == nil || requestLine["trace_id"] != rec.TraceID {
		t.Errorf("access log line = %v, want trace_id %s", requestLine, rec.TraceID)
	}

	// The solve-duration histogram's exemplar must link back to the
	// retained trace, and the /metrics exposition must render it.
	if id, _, ok := h.solveDur.Exemplar(); !ok || id != rec.TraceID {
		t.Errorf("solve histogram exemplar = %q/%v, want %s", id, ok, rec.TraceID)
	}
	scrape := do(t, h, "GET", "/metrics", "").Body.String()
	exemplar := "# exemplar " + MetricSolveDuration
	found := false
	for _, line := range strings.Split(scrape, "\n") {
		if strings.HasPrefix(line, exemplar) && strings.Contains(line, "trace_id="+rec.TraceID) {
			found = true
		}
	}
	if !found {
		t.Errorf("no %s line carrying trace_id=%s in /metrics scrape", exemplar, rec.TraceID)
	}
}

// lockedWriter serializes writes so the test can read the buffer while
// handler goroutines may still be logging.
type lockedWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestTracesAndMetricsDuringRegistryChurn hammers the monitoring GETs
// while the registry swaps and drops schemes under query traffic. It
// checks nothing panics and that every retained trace attributes the
// exact scheme epoch its response was computed against — no stale-epoch
// attribution across pool reuse or concurrent swaps.
func TestTracesAndMetricsDuringRegistryChurn(t *testing.T) {
	reg := testRegistry()
	tracer := trace.New(trace.Config{RingSize: 4096})
	h := New(reg, WithTracer(tracer))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/v1/traces"} {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := httptest.NewRecorder()
				h.ServeHTTP(w, httptest.NewRequest("GET", p, nil))
				if w.Code != http.StatusOK {
					t.Errorf("GET %s = %d during churn", p, w.Code)
					return
				}
			}
		}(path)
	}
	// Churn: re-install "lib" (epoch climbs) and add/drop a transient
	// scheme so the scrape bridges see schemes vanish mid-walk.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			reg.Set("lib", fig3c())
			if i%2 == 0 {
				reg.Set("churn", payroll())
			} else {
				reg.Drop("churn")
			}
		}
	}()

	// Every query carries a unique forced-sampled traceparent, so each
	// retained trace can be paired with the response it produced.
	queries := []string{`["A","C"]`, `["A","B"]`, `["B","C"]`}
	wantEpoch := make(map[string]uint64)
	for i := 0; i < 300; i++ {
		tid := fmt.Sprintf("%032x", i+1)
		w := doTrace(t, h, "POST", "/v1/connect",
			`{"scheme":"lib","labels":`+queries[i%len(queries)]+`}`,
			fmt.Sprintf("00-%s-00f067aa0ba902b7-01", tid))
		if w.Code != http.StatusOK {
			t.Fatalf("connect %d = %d: %s", i, w.Code, w.Body.String())
		}
		var resp ConnectResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		wantEpoch[tid] = resp.Epoch
	}
	close(stop)
	wg.Wait()

	checked := 0
	for _, rec := range tracer.Recent() {
		epoch, ok := wantEpoch[rec.TraceID]
		if !ok {
			continue
		}
		attrs := rec.Spans[0].Attrs
		if attrs["scheme"] != "lib" {
			t.Errorf("trace %s scheme attr = %v, want lib", rec.TraceID, attrs["scheme"])
		}
		if got, _ := attrs["epoch"].(int64); uint64(got) != epoch {
			t.Errorf("trace %s epoch attr = %v, response epoch %d", rec.TraceID, attrs["epoch"], epoch)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("paired only %d traces with responses, want >= 100", checked)
	}

	// A final scrape after the churn settles must still render the
	// planner histograms for every surviving scheme.
	scrape := do(t, h, "GET", "/metrics", "").Body.String()
	if !strings.Contains(scrape, MetricPlannerGroupSize+"_count{scheme=\"lib\"}") {
		t.Errorf("planner group-size series for lib missing from scrape")
	}
	if !strings.Contains(scrape, MetricPlannerSharedBuild) {
		t.Errorf("planner shared-build series missing from scrape")
	}
}
