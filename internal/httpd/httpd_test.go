package httpd

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/core"
)

// fig3c is the paper's Figure 3(c) scheme plus the single chord: labels
// A,B,C on V1, relations 1,2,3 on V2.
func fig3c() *bipartite.Graph {
	b := bipartite.New()
	a := b.AddV1("A")
	bb := b.AddV1("B")
	c := b.AddV1("C")
	r1 := b.AddV2("1")
	r2 := b.AddV2("2")
	r3 := b.AddV2("3")
	for _, e := range [][2]int{{a, r1}, {bb, r1}, {bb, r2}, {c, r2}, {c, r3}, {a, r3}, {c, r1}} {
		b.AddEdge(e[0], e[1])
	}
	return b
}

// payroll is a small tree scheme: ename—works—floor.
func payroll() *bipartite.Graph {
	b := bipartite.New()
	e := b.AddV1("ename")
	f := b.AddV1("floor")
	w := b.AddV2("works")
	b.AddEdge(e, w)
	b.AddEdge(f, w)
	return b
}

func testRegistry() *core.Registry {
	reg := core.NewRegistry()
	reg.Set("lib", fig3c())
	reg.Set("payroll", payroll())
	return reg
}

// do posts body (or GETs when body is empty) and returns the recorder.
func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// decodeError fails the test unless the response carries status with the
// given wire code.
func decodeError(t *testing.T, w *httptest.ResponseRecorder, status int, code string) {
	t.Helper()
	if w.Code != status {
		t.Fatalf("status = %d, want %d (body %s)", w.Code, status, w.Body.String())
	}
	var eb ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	if eb.Code != code || eb.Status != status {
		t.Fatalf("error = %+v, want code %q status %d", eb, code, status)
	}
}

func TestConnectByLabels(t *testing.T) {
	reg := testRegistry()
	h := New(reg)
	w := do(t, h, "POST", "/v1/connect", `{"scheme":"lib","labels":["A","C"]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var resp ConnectResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Scheme != "lib" || resp.Epoch != 1 {
		t.Fatalf("scheme/epoch = %q/%d", resp.Scheme, resp.Epoch)
	}
	// The wire answer must be the in-process answer, bit for bit.
	svc, _ := reg.Get("lib")
	g := svc.Connector().Graph().G()
	a, _ := g.ID("A")
	c, _ := g.ID("C")
	conn, err := svc.Connect(context.Background(), []int{a, c})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Method != conn.Method.String() {
		t.Fatalf("method = %q, want %q", resp.Method, conn.Method)
	}
	if len(resp.Nodes) != conn.Tree.Nodes.Len() {
		t.Fatalf("nodes = %v, want %v", resp.Nodes, conn.Tree.Nodes)
	}
	for i, v := range conn.Tree.Nodes {
		if resp.Nodes[i] != v {
			t.Fatalf("nodes = %v, want %v", resp.Nodes, conn.Tree.Nodes)
		}
	}
	if len(resp.Edges) != len(conn.Tree.Edges) {
		t.Fatalf("edges = %v, want %v", resp.Edges, conn.Tree.Edges)
	}
	if len(resp.Labels) != len(resp.Nodes) {
		t.Fatalf("labels/nodes length mismatch: %v vs %v", resp.Labels, resp.Nodes)
	}
}

func TestConnectDefaultsToSoleScheme(t *testing.T) {
	reg := core.NewRegistry()
	reg.Set("only", payroll())
	h := New(reg)
	w := do(t, h, "POST", "/v1/connect", `{"labels":["ename","floor"]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp ConnectResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Scheme != "only" {
		t.Fatalf("scheme = %q, want %q", resp.Scheme, "only")
	}
}

func TestErrorTaxonomyMapping(t *testing.T) {
	reg := testRegistry()
	reg.Set("tiny", payroll(), core.WithMaxTerminals(1))
	h := New(reg)
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"unknown scheme", `{"scheme":"nope","terminals":[0]}`, 404, CodeUnknownScheme},
		{"no scheme, several registered", `{"terminals":[0]}`, 404, CodeUnknownScheme},
		{"empty query", `{"scheme":"lib","terminals":[]}`, 422, CodeEmptyQuery},
		{"out of range", `{"scheme":"lib","terminals":[99]}`, 422, CodeInvalidTerm},
		{"duplicate", `{"scheme":"lib","terminals":[0,0]}`, 422, CodeInvalidTerm},
		{"over budget sheds", `{"scheme":"tiny","terminals":[0,1]}`, 429, CodeTooManyTerms},
		{"unknown label", `{"scheme":"lib","labels":["zzz"]}`, 422, CodeUnknownLabel},
		{"labels and terminals", `{"scheme":"lib","terminals":[0],"labels":["A"]}`, 400, CodeBadRequest},
		{"bad method", `{"scheme":"lib","terminals":[0],"method":"magic"}`, 400, CodeBadRequest},
		{"negative exact limit", `{"scheme":"lib","terminals":[0],"exact_limit":-1}`, 400, CodeBadRequest},
		{"negative timeout", `{"scheme":"lib","terminals":[0],"timeout_ms":-5}`, 400, CodeBadRequest},
		{"negative interp", `{"scheme":"lib","terminals":[0],"interpretations":{"max_aux":-1,"limit":1}}`, 400, CodeBadRequest},
		{"not json", `{"scheme":`, 400, CodeBadRequest},
		{"unknown field", `{"scheme":"lib","terminals":[0],"bogus":1}`, 400, CodeBadRequest},
		{"trailing data", `{"scheme":"lib","terminals":[0]} garbage`, 400, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			decodeError(t, do(t, h, "POST", "/v1/connect", tc.body), tc.status, tc.code)
		})
	}
}

func TestDeadlineMapsTo504(t *testing.T) {
	// A 1ns server-side cap expires every request context before the
	// solver starts; the typed context error must surface as 504.
	h := New(testRegistry(), WithMaxTimeout(time.Nanosecond))
	w := do(t, h, "POST", "/v1/connect", `{"scheme":"lib","labels":["A","C"]}`)
	decodeError(t, w, http.StatusGatewayTimeout, CodeDeadline)
}

func TestInFlightLimiterSheds(t *testing.T) {
	h := New(testRegistry(), WithMaxInFlight(1))
	h.sem <- struct{}{} // occupy the only slot
	w := do(t, h, "POST", "/v1/connect", `{"scheme":"lib","terminals":[0]}`)
	// Retry-After derives from the observed p50 solve latency; with no
	// traffic observed yet it must fall back to the 1-second floor.
	if got := w.Header().Get("Retry-After"); got != "1" {
		t.Errorf("idle Retry-After = %q, want \"1\"", got)
	}
	decodeError(t, w, http.StatusTooManyRequests, CodeOverloaded)
	// Monitoring GETs are exempt: they must answer during overload.
	if w := do(t, h, "GET", "/v1/schemes", ""); w.Code != http.StatusOK {
		t.Fatalf("GET /v1/schemes during overload: status = %d", w.Code)
	}
	if w := do(t, h, "GET", "/v1/stats", ""); w.Code != http.StatusOK {
		t.Fatalf("GET /v1/stats during overload: status = %d", w.Code)
	}
	if w := do(t, h, "GET", "/metrics", ""); w.Code != http.StatusOK {
		t.Fatalf("GET /metrics during overload: status = %d", w.Code)
	}
	<-h.sem
	if w := do(t, h, "POST", "/v1/connect", `{"scheme":"lib","terminals":[0]}`); w.Code != http.StatusOK {
		t.Fatalf("after release: status = %d", w.Code)
	}
}

// TestRetryAfterTracksServiceTime pins the derivation rule: the header is
// the observed p50 solve latency rounded up to whole seconds, floored at
// one. Observations are injected straight into the handler's histogram —
// the test pins the derivation, not the solver's speed.
func TestRetryAfterTracksServiceTime(t *testing.T) {
	h := New(testRegistry(), WithMaxInFlight(1))
	for i := 0; i < 100; i++ {
		h.solveDur.Observe(2.2)
	}
	h.sem <- struct{}{}
	w := do(t, h, "POST", "/v1/connect", `{"scheme":"lib","terminals":[0]}`)
	decodeError(t, w, http.StatusTooManyRequests, CodeOverloaded)
	got := w.Header().Get("Retry-After")
	secs, err := strconv.Atoi(got)
	if err != nil {
		t.Fatalf("Retry-After = %q, want integer seconds", got)
	}
	// p50 lands in the histogram bucket containing 2.2s; ceil of any
	// point in that bucket is 2..4 depending on interpolation, and must
	// certainly exceed the idle floor of 1.
	if secs < 2 || secs > 4 {
		t.Fatalf("Retry-After = %d, want ceil(p50≈2.2s) in [2,4]", secs)
	}
	// Sub-second service times stay floored at 1 second.
	h2 := New(testRegistry(), WithMaxInFlight(1))
	for i := 0; i < 100; i++ {
		h2.solveDur.Observe(0.003)
	}
	h2.sem <- struct{}{}
	w = do(t, h2, "POST", "/v1/connect", `{"scheme":"lib","terminals":[0]}`)
	if got := w.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("fast-path Retry-After = %q, want \"1\" (floor)", got)
	}
}

func TestBodyTooLarge(t *testing.T) {
	h := New(testRegistry(), WithMaxBodyBytes(32))
	body := `{"scheme":"lib","terminals":[` + strings.Repeat("0,", 100) + `0]}`
	w := do(t, h, "POST", "/v1/connect", body)
	decodeError(t, w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge)
}

func TestBatchMixedResults(t *testing.T) {
	reg := testRegistry()
	h := New(reg)
	w := do(t, h, "POST", "/v1/batch", `{"scheme":"lib","queries":[[0,2],[99],[0,2]]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 || resp.Failed != 1 {
		t.Fatalf("results = %d, failed = %d; body %s", len(resp.Results), resp.Failed, w.Body.String())
	}
	if resp.Results[0].Answer == nil || resp.Results[2].Answer == nil {
		t.Fatal("valid queries should carry answers")
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Code != CodeInvalidTerm {
		t.Fatalf("invalid query error = %+v", resp.Results[1].Error)
	}
	// Identical queries in one batch must produce identical answers.
	if a, b := resp.Results[0].Answer, resp.Results[2].Answer; len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("duplicate queries disagree: %v vs %v", a.Nodes, b.Nodes)
	}
}

func TestInterpretationsEndpoint(t *testing.T) {
	reg := testRegistry()
	h := New(reg)
	w := do(t, h, "POST", "/v1/interpretations", `{"scheme":"lib","labels":["A","C"],"max_aux":2,"limit":4}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp InterpretationsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Interpretations) == 0 {
		t.Fatal("expected at least one interpretation")
	}
	// Parity with the in-process enumeration, including the ranking.
	svc, _ := reg.Get("lib")
	g := svc.Connector().Graph().G()
	a, _ := g.ID("A")
	c, _ := g.ID("C")
	want, err := svc.Connector().Interpretations(context.Background(), []int{a, c}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Interpretations) != len(want) {
		t.Fatalf("got %d interpretations, want %d", len(resp.Interpretations), len(want))
	}
	for i := range want {
		got := resp.Interpretations[i]
		if len(got.Nodes) != want[i].Nodes.Len() || len(got.Auxiliary) != want[i].Auxiliary.Len() {
			t.Fatalf("interpretation %d: got %+v, want %+v", i, got, want[i])
		}
	}
}

func TestSchemesAndStats(t *testing.T) {
	reg := testRegistry()
	h := New(reg)
	w := do(t, h, "GET", "/v1/schemes", "")
	if w.Code != http.StatusOK {
		t.Fatalf("schemes status = %d", w.Code)
	}
	var schemes SchemesResponse
	if err := json.Unmarshal(w.Body.Bytes(), &schemes); err != nil {
		t.Fatal(err)
	}
	if len(schemes.Schemes) != 2 || schemes.Schemes[0].Name != "lib" || schemes.Schemes[1].Name != "payroll" {
		t.Fatalf("schemes = %+v", schemes.Schemes)
	}
	if schemes.Schemes[1].Arcs != 2 || schemes.Schemes[1].V1Nodes != 2 || schemes.Schemes[1].V2Nodes != 1 {
		t.Fatalf("payroll info = %+v", schemes.Schemes[1])
	}

	// Two identical queries: one miss, one hit, visible in /v1/stats.
	for i := 0; i < 2; i++ {
		if w := do(t, h, "POST", "/v1/connect", `{"scheme":"payroll","labels":["ename","floor"]}`); w.Code != 200 {
			t.Fatalf("connect status = %d", w.Code)
		}
	}
	w = do(t, h, "GET", "/v1/stats", "")
	if w.Code != http.StatusOK {
		t.Fatalf("stats status = %d", w.Code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	st, ok := stats.Schemes["payroll"]
	if !ok {
		t.Fatalf("stats = %+v", stats.Schemes)
	}
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("payroll stats = %+v, want 1 miss / 1 hit / 1 entry", st)
	}
	// Sharded-cache geometry travels the wire: a power-of-two shard
	// count, effective capacity ≥ the default, and per-shard occupancy
	// that sums to the entry count.
	if st.Shards < 1 || st.Shards&(st.Shards-1) != 0 {
		t.Fatalf("wire shards = %d, want a power of two", st.Shards)
	}
	if st.Capacity < core.DefaultCacheSize {
		t.Fatalf("wire capacity = %d, want ≥ default %d", st.Capacity, core.DefaultCacheSize)
	}
	if len(st.ShardEntries) != st.Shards {
		t.Fatalf("shard_entries has %d slots for %d shards", len(st.ShardEntries), st.Shards)
	}
	sum := 0
	for _, n := range st.ShardEntries {
		sum += n
	}
	if sum != st.Entries {
		t.Fatalf("shard_entries sums to %d, entries = %d", sum, st.Entries)
	}
	// Counter reconciliation on the wire: entry count and the recompute-
	// cost ledger both balance. A live compile has no warm fills, the one
	// miss banked a nonzero solve cost, and the one hit saved it again.
	if got, want := uint64(st.Entries), st.Misses+st.WarmFills-st.Evictions-st.Removals; got != want {
		t.Fatalf("entries = %d, misses+warm_fills-evictions-removals = %d", got, want)
	}
	if st.WarmFills != 0 {
		t.Fatalf("warm_fills = %d on a live-compiled scheme, want 0", st.WarmFills)
	}
	if st.CostAdded == 0 {
		t.Fatalf("cost_added_nanos = 0 after a miss, want > 0")
	}
	if st.CostResident != st.CostAdded-st.CostEvicted-st.CostRemoved {
		t.Fatalf("cost ledger out of balance: %+v", st)
	}
	if st.CostSaved == 0 {
		t.Fatalf("cost_saved_nanos = 0 after a hit, want > 0")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := New(testRegistry())
	if w := do(t, h, "GET", "/v1/connect", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/connect status = %d", w.Code)
	}
	if w := do(t, h, "POST", "/v1/schemes", `{}`); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/schemes status = %d", w.Code)
	}
	if w := do(t, h, "GET", "/nope", ""); w.Code != http.StatusNotFound {
		t.Fatalf("GET /nope status = %d", w.Code)
	}
}
