package httpd

import (
	"context"
	"errors"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/steiner"
)

// The wire format of the v1 HTTP API. Every request body is a single JSON
// object (unknown fields rejected), every response is JSON. Failures carry
// an ErrorBody whose Code is machine-readable and whose HTTP status comes
// from the typed error taxonomy of internal/core — see errorStatus.

// ConnectRequest is the body of POST /v1/connect.
type ConnectRequest struct {
	// Scheme names the registry entry to query. It may be omitted when
	// exactly one scheme is registered.
	Scheme string `json:"scheme,omitempty"`
	// Terminals lists query terminals by node id; Labels lists them by
	// node label. Exactly one of the two must be set.
	Terminals []int    `json:"terminals,omitempty"`
	Labels    []string `json:"labels,omitempty"`
	// Method forces a solver: "auto" (default), "algorithm-1",
	// "algorithm-2", "exact", "heuristic".
	Method string `json:"method,omitempty"`
	// ExactLimit overrides the exact/heuristic dispatch threshold for this
	// query (WithQueryExactLimit); 0 keeps the scheme's default.
	ExactLimit int `json:"exact_limit,omitempty"`
	// Interpretations also enumerates ranked alternative readings into the
	// answer (WithInterpretations).
	Interpretations *InterpSpec `json:"interpretations,omitempty"`
	// CacheBypass answers around the Service cache (WithCacheBypass).
	CacheBypass bool `json:"cache_bypass,omitempty"`
	// TimeoutMS bounds this query; it is clamped to the server's limit.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// InterpSpec asks for up to Limit ranked interpretations with at most
// MaxAux auxiliary nodes each.
type InterpSpec struct {
	MaxAux int `json:"max_aux"`
	Limit  int `json:"limit"`
}

// Answer is one solved connection query as it travels the wire.
type Answer struct {
	Method    string   `json:"method"`
	Optimal   bool     `json:"optimal"`
	V2Optimal bool     `json:"v2_optimal"`
	Rationale string   `json:"rationale,omitempty"`
	Nodes     []int    `json:"nodes"`
	Labels    []string `json:"labels"`
	Edges     [][2]int `json:"edges"`
	// Interpretations is present when the request asked for them.
	Interpretations []InterpretationBody `json:"interpretations,omitempty"`
}

// InterpretationBody is one ranked alternative reading of a query.
type InterpretationBody struct {
	Nodes     []int    `json:"nodes"`
	Labels    []string `json:"labels"`
	Auxiliary []int    `json:"auxiliary"`
}

// ConnectResponse is the body of a successful POST /v1/connect.
type ConnectResponse struct {
	Scheme string `json:"scheme"`
	Epoch  uint64 `json:"epoch"`
	Answer
}

// BatchRequest is the body of POST /v1/batch: many terminal-id queries
// against one scheme, sharing the same options.
type BatchRequest struct {
	Scheme      string  `json:"scheme,omitempty"`
	Queries     [][]int `json:"queries"`
	Method      string  `json:"method,omitempty"`
	ExactLimit  int     `json:"exact_limit,omitempty"`
	CacheBypass bool    `json:"cache_bypass,omitempty"`
	TimeoutMS   int64   `json:"timeout_ms,omitempty"`
}

// BatchResponse answers POST /v1/batch in query order. The HTTP status is
// 200 as long as the batch itself was well-formed; per-query failures are
// reported inline so one bad query does not discard its siblings' answers.
type BatchResponse struct {
	Scheme  string      `json:"scheme"`
	Epoch   uint64      `json:"epoch"`
	Results []BatchItem `json:"results"`
	Failed  int         `json:"failed"`
}

// BatchItem is one batch answer: exactly one of Answer and Error is set.
type BatchItem struct {
	Terminals []int      `json:"terminals"`
	Answer    *Answer    `json:"answer,omitempty"`
	Error     *ErrorBody `json:"error,omitempty"`
}

// InterpretationsRequest is the body of POST /v1/interpretations.
type InterpretationsRequest struct {
	Scheme    string   `json:"scheme,omitempty"`
	Terminals []int    `json:"terminals,omitempty"`
	Labels    []string `json:"labels,omitempty"`
	// MaxAux bounds auxiliary nodes per interpretation (0 is meaningful:
	// terminal-only covers). Limit caps the list; 0 selects
	// DefaultInterpLimit.
	MaxAux    int   `json:"max_aux"`
	Limit     int   `json:"limit,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// InterpretationsResponse is the body of a successful
// POST /v1/interpretations, ranked smallest-auxiliary-set first.
type InterpretationsResponse struct {
	Scheme          string               `json:"scheme"`
	Epoch           uint64               `json:"epoch"`
	Interpretations []InterpretationBody `json:"interpretations"`
}

// SchemeInfo describes one registry entry in GET /v1/schemes. Source is
// present only for epochs revived from a persisted snapshot
// ("snapshot-v<N>", the format version); live compiles omit it.
type SchemeInfo struct {
	Name      string    `json:"name"`
	Epoch     uint64    `json:"epoch"`
	Source    string    `json:"source,omitempty"`
	V1Nodes   int       `json:"v1_nodes"`
	V2Nodes   int       `json:"v2_nodes"`
	Arcs      int       `json:"arcs"`
	Class     ClassBody `json:"class"`
	Guarantee string    `json:"guarantee"`
}

// UploadResponse answers PUT /v1/schemes/{name}: the installed epoch and
// how it was produced ("compiled" for a text-scheme body, "snapshot-v<N>"
// for a binary snapshot).
type UploadResponse struct {
	Scheme string `json:"scheme"`
	Epoch  uint64 `json:"epoch"`
	Source string `json:"source"`
}

// DeleteResponse answers DELETE /v1/schemes/{name}.
type DeleteResponse struct {
	Scheme  string `json:"scheme"`
	Dropped bool   `json:"dropped"`
}

// ClassBody is the chordality classification on the wire.
type ClassBody struct {
	Chordal41   bool `json:"chordal_4_1"`
	Chordal62   bool `json:"chordal_6_2"`
	Chordal61   bool `json:"chordal_6_1"`
	V1Chordal   bool `json:"v1_chordal"`
	V1Conformal bool `json:"v1_conformal"`
	V2Chordal   bool `json:"v2_chordal"`
	V2Conformal bool `json:"v2_conformal"`
}

// SchemesResponse is the body of GET /v1/schemes.
type SchemesResponse struct {
	Schemes []SchemeInfo `json:"schemes"`
}

// SchemeStats is one scheme's cache counters in GET /v1/stats. Counter
// totals (hits/misses/evictions/bypasses/removals/warm_fills) aggregate
// atomically across the cache's lock shards and satisfy the
// reconciliation algebra documented on core.CacheStats
// (hits+misses+bypasses == requests; entries == misses + warm_fills −
// evictions − removals); shard_entries is the per-shard resident-entry
// occupancy, in shard order, summing to entries. capacity is the
// effective answer-cache capacity — the configured size rounded up to a
// multiple of the shard count (minimum one entry per shard). warm_fills
// counts entries installed without a miss: restored from a snapshot's
// warmup section at boot or carried across a scheme epoch swap. The
// cost_*_nanos fields are the recompute-cost ledger in nanoseconds of
// solver wall time, satisfying cost_resident == cost_added −
// cost_evicted − cost_removed; cost_saved accumulates the recorded cost
// of every hit.
type SchemeStats struct {
	Epoch        uint64 `json:"epoch"`
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Evictions    uint64 `json:"evictions"`
	Bypasses     uint64 `json:"bypasses"`
	Removals     uint64 `json:"removals"`
	WarmFills    uint64 `json:"warm_fills"`
	Entries      int    `json:"entries"`
	Shards       int    `json:"shards"`
	Capacity     int    `json:"capacity"`
	ShardEntries []int  `json:"shard_entries"`
	CostAdded    uint64 `json:"cost_added_nanos"`
	CostEvicted  uint64 `json:"cost_evicted_nanos"`
	CostRemoved  uint64 `json:"cost_removed_nanos"`
	CostResident uint64 `json:"cost_resident_nanos"`
	CostSaved    uint64 `json:"cost_saved_nanos"`
}

// StatsResponse is the body of GET /v1/stats, keyed by scheme name.
type StatsResponse struct {
	Schemes map[string]SchemeStats `json:"schemes"`
}

// ErrorBody is the JSON shape of every failure response.
type ErrorBody struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"error"`
}

// Machine-readable error codes. Each maps to exactly one HTTP status — the
// documented contract tests and fuzzers hold the handler to.
const (
	CodeBadRequest    = "bad_request"    // 400: malformed body or fields
	CodeUnknownScheme = "unknown_scheme" // 404: scheme not registered
	CodeBodyTooLarge  = "body_too_large" // 413: body over the server limit
	CodeBadSnapshot   = "bad_snapshot"   // 422: upload is not a decodable snapshot
	CodeBadScheme     = "bad_scheme"     // 422: upload is not a parsable text scheme
	CodeEmptyQuery    = "empty_query"    // 422
	CodeInvalidTerm   = "invalid_terminal"
	CodeUnknownLabel  = "unknown_label"
	CodeDisconnected  = "disconnected_terminals"
	CodeNotAlpha      = "not_alpha_acyclic"
	CodeTooManyTerms  = "too_many_terminals" // 429: load shed (WithMaxTerminals)
	CodeOverloaded    = "overloaded"         // 429: in-flight limiter full
	CodeDeadline      = "deadline_exceeded"  // 504
	CodeCanceled      = "canceled"           // 504
	CodeInternal      = "internal"           // 500
)

// errorStatus maps a typed query error to its HTTP status and wire code:
//
//	ErrUnknownScheme                          → 404
//	ErrEmptyQuery / ErrInvalidTerminal /
//	ErrDisconnectedTerminals / ErrNotAlphaAcyclic → 422
//	ErrTooManyTerminals                       → 429 (load shedding)
//	context.DeadlineExceeded / Canceled       → 504
//	anything else                             → 500
func errorStatus(err error) (int, string) {
	switch {
	case errors.Is(err, core.ErrUnknownScheme):
		return http.StatusNotFound, CodeUnknownScheme
	case errors.Is(err, core.ErrTooManyTerminals):
		return http.StatusTooManyRequests, CodeTooManyTerms
	case errors.Is(err, core.ErrEmptyQuery):
		return http.StatusUnprocessableEntity, CodeEmptyQuery
	case errors.Is(err, core.ErrInvalidTerminal):
		return http.StatusUnprocessableEntity, CodeInvalidTerm
	case errors.Is(err, steiner.ErrDisconnectedTerminals):
		return http.StatusUnprocessableEntity, CodeDisconnected
	case errors.Is(err, steiner.ErrNotAlphaAcyclic):
		return http.StatusUnprocessableEntity, CodeNotAlpha
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeDeadline
	case errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, CodeCanceled
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

// parseMethod maps the wire method name to a core.Method; the empty string
// selects dispatch-by-classification.
func parseMethod(s string) (core.Method, bool) {
	switch strings.ToLower(s) {
	case "", "auto":
		return core.MethodAuto, true
	case "algorithm-2", "algorithm2":
		return core.MethodAlgorithm2, true
	case "algorithm-1", "algorithm1":
		return core.MethodAlgorithm1, true
	case "exact":
		return core.MethodExact, true
	case "heuristic":
		return core.MethodHeuristic, true
	}
	return 0, false
}
