package httpd

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// fuzzStatuses is the complete documented status set of the API; a fuzzed
// request producing anything else is a contract violation.
var fuzzStatuses = map[int]bool{
	http.StatusOK:                    true,
	http.StatusBadRequest:            true,
	http.StatusNotFound:              true,
	http.StatusRequestEntityTooLarge: true,
	http.StatusUnprocessableEntity:   true,
	http.StatusTooManyRequests:       true,
	http.StatusGatewayTimeout:        true,
	http.StatusInternalServerError:   true,
}

// FuzzHandleConnect throws arbitrary bodies at POST /v1/connect: malformed
// JSON, out-of-range/duplicate/huge terminal lists, bogus options. The
// handler must never panic, must always answer JSON, and must stay inside
// the documented status set; 200s must parse as ConnectResponse with
// consistent node/label lengths.
func FuzzHandleConnect(f *testing.F) {
	reg := core.NewRegistry()
	reg.Set("lib", fig3c(), core.WithMaxTerminals(4))
	reg.Set("payroll", payroll())
	h := New(reg, WithMaxBodyBytes(1<<16), WithMaxTimeout(200*time.Millisecond))

	seeds := []string{
		`{"scheme":"lib","terminals":[0,2]}`,
		`{"scheme":"lib","labels":["A","C"],"method":"exact"}`,
		`{"labels":["ename","floor"]}`,
		`{"scheme":"lib","terminals":[]}`,
		`{"scheme":"lib","terminals":[0,0,0]}`,
		`{"scheme":"lib","terminals":[0,1,2,3,4,5,6,7,8,9]}`,
		`{"scheme":"lib","terminals":[-1,99999999]}`,
		`{"scheme":"nope","terminals":[0]}`,
		`{"scheme":"lib","terminals":[0],"timeout_ms":-5}`,
		`{"scheme":"lib","terminals":[0],"interpretations":{"max_aux":2,"limit":3}}`,
		`{"scheme":"lib","terminals":[0],"method":"algorithm-1","cache_bypass":true}`,
		`{"scheme":"lib",`,
		`[1,2,3]`,
		`{"scheme":"lib","terminals":[0]} trailing`,
		`{"scheme":"lib","terminals":[0],"unknown_field":true}`,
		"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		r := httptest.NewRequest("POST", "/v1/connect", strings.NewReader(string(body)))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if !fuzzStatuses[w.Code] {
			t.Fatalf("undocumented status %d for body %q (response %s)", w.Code, body, w.Body.String())
		}
		if w.Code == http.StatusInternalServerError {
			t.Fatalf("500 for body %q: %s", body, w.Body.String())
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content-type %q for body %q", ct, body)
		}
		if w.Code == http.StatusOK {
			var resp ConnectResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 body not a ConnectResponse for %q: %v", body, err)
			}
			if len(resp.Nodes) == 0 || len(resp.Nodes) != len(resp.Labels) {
				t.Fatalf("inconsistent answer for %q: %+v", body, resp)
			}
		} else {
			var eb ErrorBody
			if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
				t.Fatalf("error body not JSON for %q: %v", body, err)
			}
			if eb.Status != w.Code || eb.Code == "" {
				t.Fatalf("error body %+v disagrees with status %d", eb, w.Code)
			}
		}
	})
}
