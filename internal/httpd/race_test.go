package httpd

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// TestServeDuringRecompile hammers the HTTP surface while the Registry
// atomically recompiles and swaps the scheme under it: every response must
// be a well-formed answer from *some* epoch (all epochs keep the same node
// count, so valid queries stay valid), never a torn read, a 500, or a
// hung request. Run under -race in CI, this also checks the handler and
// the stats endpoint for data races against Set.
func TestServeDuringRecompile(t *testing.T) {
	const (
		readers    = 6
		perReader  = 40
		recompiles = 30
		n1, n2     = 5, 4
	)
	reg := core.NewRegistry()
	newEpoch := func(seed int64) {
		r := rand.New(rand.NewSource(seed))
		reg.Set("hot", gen.RandomConnectedBipartite(r, n1, n2, 0.4))
	}
	newEpoch(0)
	ts := httptest.NewServer(New(reg, WithMaxInFlight(0)))
	defer ts.Close()

	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perReader; i++ {
				var resp *http.Response
				var err error
				switch i % 3 {
				case 0:
					body, _ := json.Marshal(ConnectRequest{Scheme: "hot", Terminals: randomTerminals(r, n1+n2)})
					resp, err = ts.Client().Post(ts.URL+"/v1/connect", "application/json", bytes.NewReader(body))
				case 1:
					resp, err = ts.Client().Get(ts.URL + "/v1/stats")
				default:
					resp, err = ts.Client().Get(ts.URL + "/v1/schemes")
				}
				if err != nil {
					t.Errorf("reader %d: %v", w, err)
					return
				}
				var payload json.RawMessage
				decErr := json.NewDecoder(resp.Body).Decode(&payload)
				resp.Body.Close()
				if decErr != nil {
					t.Errorf("reader %d: response not JSON: %v", w, decErr)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK, http.StatusUnprocessableEntity, http.StatusGatewayTimeout:
					// answered, or a valid typed failure (e.g. disconnected
					// terminals on some epoch's topology)
				default:
					t.Errorf("reader %d: unexpected status %d: %s", w, resp.StatusCode, payload)
					return
				}
			}
		}(w)
	}

	for i := 1; i <= recompiles; i++ {
		newEpoch(int64(i))
	}
	wg.Wait()

	if got := reg.Epoch("hot"); got != uint64(recompiles)+1 {
		t.Fatalf("epoch = %d, want %d", got, recompiles+1)
	}
	// Post-hammer sanity: the final epoch still answers.
	body, _ := json.Marshal(ConnectRequest{Scheme: "hot", Terminals: []int{0, 1}})
	resp, err := ts.Client().Post(ts.URL+"/v1/connect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("final epoch: status %d", resp.StatusCode)
	}
}
