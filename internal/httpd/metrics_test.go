package httpd

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

// scrape GETs /metrics and parses the exposition into a map from the full
// series line prefix (name plus label block, exactly as rendered) to its
// value.
func scrape(t *testing.T, h http.Handler) map[string]float64 {
	t.Helper()
	w := do(t, h, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(w.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// series formats the key scrape produces for name{labels…}; labels are
// name=value pairs in registration order (the order the handler passes
// them).
func series(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// TestMetricsEndpoint drives representative traffic through every
// instrument class and asserts the exported series carry the values the
// traffic implies: request counts by endpoint/method/code, solve-latency
// observations, per-scheme cache counters bridged from CacheStats, the
// epoch gauge, the swap counter and the limiter series.
func TestMetricsEndpoint(t *testing.T) {
	reg := testRegistry()
	h := New(reg, WithMaxInFlight(1))

	// Two identical queries: one miss then one hit on scheme lib.
	for i := 0; i < 2; i++ {
		if w := do(t, h, "POST", "/v1/connect", `{"scheme":"lib","terminals":[0,2]}`); w.Code != 200 {
			t.Fatalf("connect status = %d", w.Code)
		}
	}
	// One bypass.
	if w := do(t, h, "POST", "/v1/connect", `{"scheme":"lib","terminals":[0,2],"cache_bypass":true}`); w.Code != 200 {
		t.Fatalf("bypass status = %d", w.Code)
	}
	// One bad request (422: terminal out of range).
	if w := do(t, h, "POST", "/v1/connect", `{"scheme":"lib","terminals":[99]}`); w.Code != 422 {
		t.Fatalf("invalid status = %d", w.Code)
	}
	// One shed while the only slot is held.
	h.sem <- struct{}{}
	if w := do(t, h, "POST", "/v1/connect", `{"scheme":"lib","terminals":[0]}`); w.Code != 429 {
		t.Fatalf("shed status = %d", w.Code)
	}
	<-h.sem
	// One admin install (live compile through PUT).
	if w := do(t, h, "PUT", "/v1/schemes/uploaded", "v1 A\nv1 B\nv2 r\nedge A r\nedge B r\n"); w.Code != 200 {
		t.Fatalf("upload status = %d: %s", w.Code, w.Body.String())
	}

	m := scrape(t, h)
	for key, want := range map[string]float64{
		series(MetricRequestsTotal, "endpoint", "/v1/connect", "method", "POST", "code", "200"):       3,
		series(MetricRequestsTotal, "endpoint", "/v1/connect", "method", "POST", "code", "422"):       1,
		series(MetricRequestsTotal, "endpoint", "/v1/connect", "method", "POST", "code", "429"):       1,
		series(MetricRequestsTotal, "endpoint", "/v1/schemes/{name}", "method", "PUT", "code", "200"): 1,
		MetricSolveDuration + "_count": 4, // sheds do no routed work and stay out
		series(MetricRequestDuration+"_count", "endpoint", "/v1/connect", "method", "POST"): 4,
		MetricLimiterSheds:  1,
		MetricRegistrySwaps: 1,
		MetricInflight:      0,
		MetricInflightLimit: 1,
		series(MetricInstallDuration+"_count", "source", "compiled"): 1,
		series(MetricSchemeEpoch, "scheme", "lib"):                   1,
		series(MetricSchemeEpoch, "scheme", "uploaded"):              1,
		series(MetricCacheHits, "scheme", "lib"):                     1,
		series(MetricCacheMisses, "scheme", "lib"):                   1,
		series(MetricCacheBypasses, "scheme", "lib"):                 1,
		series(MetricCacheRemovals, "scheme", "lib"):                 0,
		series(MetricCacheEntries, "scheme", "lib"):                  1,
	} {
		if got, ok := m[key]; !ok {
			t.Errorf("scrape missing series %s", key)
		} else if got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}

	// The per-shard decomposition must sum to the per-scheme totals.
	svc, _ := reg.Get("lib")
	st := svc.Stats()
	var shardHits, shardMisses float64
	for i := 0; i < st.Shards; i++ {
		shardHits += m[series(MetricShardHits, "scheme", "lib", "shard", strconv.Itoa(i))]
		shardMisses += m[series(MetricShardMisses, "scheme", "lib", "shard", strconv.Itoa(i))]
	}
	if shardHits != float64(st.Hits) || shardMisses != float64(st.Misses) {
		t.Errorf("shard sums %g hits / %g misses, Stats says %d / %d",
			shardHits, shardMisses, st.Hits, st.Misses)
	}

	// Capacity gauge matches the wire stats value.
	if got := m[series(MetricCacheCapacity, "scheme", "lib")]; got != float64(st.Capacity) {
		t.Errorf("capacity gauge = %g, Stats says %d", got, st.Capacity)
	}
}

// TestMetricsReconcileWithStats asserts the reconciliation algebra on the
// values a scraper actually sees — including the cancellation path, which
// removes its poisoned entry and must export the removal. The /metrics
// bridge and /v1/stats read the same atomics, so with no concurrent
// traffic the two surfaces must agree exactly.
func TestMetricsReconcileWithStats(t *testing.T) {
	reg := testRegistry()
	// A scheme with no polynomial guarantee: the exact DP on this grid
	// runs far past the request deadline below (same instance the core
	// cancellation tests rely on).
	reg.Set("grid", gen.GridBipartite(8, 8), core.WithExactLimit(20))
	h := New(reg)

	var terms []string
	for v := 0; v < 32; v += 2 {
		terms = append(terms, strconv.Itoa(v))
	}
	body := fmt.Sprintf(`{"scheme":"grid","terminals":[%s],"timeout_ms":30}`, strings.Join(terms, ","))
	w := do(t, h, "POST", "/v1/connect", body)
	decodeError(t, w, http.StatusGatewayTimeout, CodeDeadline)

	// Mixed healthy traffic on another scheme.
	for i := 0; i < 3; i++ {
		if w := do(t, h, "POST", "/v1/connect", `{"scheme":"payroll","labels":["ename","floor"]}`); w.Code != 200 {
			t.Fatalf("payroll connect status = %d", w.Code)
		}
	}

	m := scrape(t, h)
	for _, name := range reg.Names() {
		svc, _ := reg.Get(name)
		st := svc.Stats()
		get := func(metric string) float64 { return m[series(metric, "scheme", name)] }
		hits, misses := get(MetricCacheHits), get(MetricCacheMisses)
		evictions, bypasses := get(MetricCacheEvictions), get(MetricCacheBypasses)
		removals, entries := get(MetricCacheRemovals), get(MetricCacheEntries)
		if hits != float64(st.Hits) || misses != float64(st.Misses) ||
			evictions != float64(st.Evictions) || bypasses != float64(st.Bypasses) ||
			removals != float64(st.Removals) || entries != float64(st.Entries) {
			t.Errorf("scheme %s: /metrics and Stats() disagree: scrape %g/%g/%g/%g/%g/%g vs %+v",
				name, hits, misses, evictions, bypasses, removals, entries, st)
		}
		if entries != misses-evictions-removals {
			t.Errorf("scheme %s: exported residency off: entries %g != misses %g - evictions %g - removals %g",
				name, entries, misses, evictions, removals)
		}
	}

	// The cancellation left exactly one exported removal on grid.
	if got := m[series(MetricCacheRemovals, "scheme", "grid")]; got != 1 {
		t.Errorf("grid removals = %g, want 1", got)
	}
}
