package httpd

import (
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/metrics"
)

// Metric names exported on GET /metrics. Kept as constants so the e2e
// smoke, the tests and the docs cannot drift from the handler.
const (
	MetricRequestsTotal   = "chordal_http_requests_total"
	MetricRequestDuration = "chordal_http_request_duration_seconds"
	MetricSolveDuration   = "chordal_solve_duration_seconds"
	MetricInflight        = "chordal_http_inflight_requests"
	MetricInflightLimit   = "chordal_http_inflight_limit"
	MetricLimiterSheds    = "chordal_http_limiter_sheds_total"
	MetricRegistrySwaps   = "chordal_registry_swaps_total"
	MetricInstallDuration = "chordal_scheme_install_duration_seconds"
	MetricSchemeEpoch     = "chordal_scheme_epoch"
	MetricCacheHits       = "chordal_cache_hits_total"
	MetricCacheMisses     = "chordal_cache_misses_total"
	MetricCacheEvictions  = "chordal_cache_evictions_total"
	MetricCacheBypasses   = "chordal_cache_bypasses_total"
	MetricCacheRemovals   = "chordal_cache_removals_total"
	MetricCacheWarmFills  = "chordal_cache_warm_fills_total"
	MetricCacheCostSaved  = "chordal_cache_cost_saved_seconds_total"
	MetricCacheCostRes    = "chordal_cache_cost_resident_seconds"
	MetricCacheEntries    = "chordal_cache_entries"
	MetricCacheCapacity   = "chordal_cache_capacity"
	MetricShardHits       = "chordal_cache_shard_hits_total"
	MetricShardMisses     = "chordal_cache_shard_misses_total"
	MetricShardEvictions  = "chordal_cache_shard_evictions_total"
	MetricShardEntries    = "chordal_cache_shard_entries"
)

// initMetrics builds the handler's metrics registry: the static request-
// path instruments plus the scrape-time bridges onto state the Registry
// and the per-scheme caches already own (per-scheme counters, per-shard
// occupancy, epochs, limiter depth). Called once from New — sampler
// families panic on double registration, so each Handler owns its own
// metrics.Registry.
func (h *Handler) initMetrics() {
	m := metrics.NewRegistry()
	h.met = m
	h.solveDur = m.Histogram(MetricSolveDuration,
		"End-to-end latency of query endpoints (/v1/connect, /v1/batch, /v1/interpretations); feeds the Retry-After estimate.",
		metrics.DefLatencyBounds())
	h.sheds = m.Counter(MetricLimiterSheds,
		"Requests rejected 429/overloaded by the in-flight limiter.")
	h.swaps = m.Counter(MetricRegistrySwaps,
		"Scheme installs through the admin surface (PUT upload-and-swap).")

	m.GaugeFunc(MetricInflight, "Requests currently holding an in-flight limiter slot.",
		func() []metrics.Sample {
			if h.sem == nil {
				return nil
			}
			return []metrics.Sample{{Value: float64(len(h.sem))}}
		})
	m.GaugeFunc(MetricInflightLimit, "Capacity of the in-flight limiter (0 = unlimited).",
		func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(cap(h.sem))}}
		})
	m.GaugeFunc(MetricSchemeEpoch, "Current compile-and-swap epoch per registered scheme.",
		func() []metrics.Sample {
			var out []metrics.Sample
			for _, name := range h.reg.Names() {
				if _, epoch, ok := h.reg.Lookup(name); ok {
					out = append(out, metrics.Sample{
						Labels: []metrics.Label{metrics.L("scheme", name)},
						Value:  float64(epoch),
					})
				}
			}
			return out
		})

	// Per-scheme answer-cache counters, bridged from core.CacheStats at
	// scrape time — the /metrics values and /v1/stats are two renderings
	// of the same atomics, which the reconciliation tests rely on.
	cacheStat := func(name, help string, f func(core.CacheStats) float64) {
		m.CounterFunc(name, help, h.cacheSamples(f))
	}
	cacheGauge := func(name, help string, f func(core.CacheStats) float64) {
		m.GaugeFunc(name, help, h.cacheSamples(f))
	}
	cacheStat(MetricCacheHits, "Answer-cache lookups that found an entry, per scheme.",
		func(st core.CacheStats) float64 { return float64(st.Hits) })
	cacheStat(MetricCacheMisses, "Answer-cache lookups that started a computation, per scheme.",
		func(st core.CacheStats) float64 { return float64(st.Misses) })
	cacheStat(MetricCacheEvictions, "Answer-cache entries dropped by LRU capacity pressure, per scheme.",
		func(st core.CacheStats) float64 { return float64(st.Evictions) })
	cacheStat(MetricCacheBypasses, "Queries answered around the cache (cache_bypass), per scheme.",
		func(st core.CacheStats) float64 { return float64(st.Bypasses) })
	cacheStat(MetricCacheRemovals, "Entries deliberately evicted (cancellation outcomes, panics), per scheme.",
		func(st core.CacheStats) float64 { return float64(st.Removals) })
	cacheStat(MetricCacheWarmFills, "Entries installed without a miss (snapshot warmup restore, epoch-swap carry-over), per scheme.",
		func(st core.CacheStats) float64 { return float64(st.WarmFills) })
	cacheStat(MetricCacheCostSaved, "Recorded recompute cost of every cache hit — solver seconds the cache turned into lookups, per scheme.",
		func(st core.CacheStats) float64 { return float64(st.CostSavedNanos) / 1e9 })
	cacheGauge(MetricCacheCostRes, "Recompute cost banked in resident entries (cost-aware eviction's ledger), per scheme.",
		func(st core.CacheStats) float64 { return float64(st.CostResidentNanos) / 1e9 })
	cacheGauge(MetricCacheEntries, "Answer-cache entries currently resident, per scheme.",
		func(st core.CacheStats) float64 { return float64(st.Entries) })
	cacheGauge(MetricCacheCapacity, "Effective answer-cache capacity, per scheme.",
		func(st core.CacheStats) float64 { return float64(st.Capacity) })

	// Per-shard series (hits/misses/evictions/occupancy) off the sharded
	// cache itself: uniform traffic should spread evenly across shards,
	// and persistent skew is a key-hashing problem worth seeing.
	shardStat := func(name, help string, gauge bool, f func(cache.ShardStat) float64) {
		sampler := h.shardSamples(f)
		if gauge {
			m.GaugeFunc(name, help, sampler)
		} else {
			m.CounterFunc(name, help, sampler)
		}
	}
	shardStat(MetricShardHits, "Answer-cache hits per scheme and lock shard.", false,
		func(ss cache.ShardStat) float64 { return float64(ss.Hits) })
	shardStat(MetricShardMisses, "Answer-cache misses per scheme and lock shard.", false,
		func(ss cache.ShardStat) float64 { return float64(ss.Misses) })
	shardStat(MetricShardEvictions, "Answer-cache capacity evictions per scheme and lock shard.", false,
		func(ss cache.ShardStat) float64 { return float64(ss.Evictions) })
	shardStat(MetricShardEntries, "Answer-cache resident entries per scheme and lock shard.", true,
		func(ss cache.ShardStat) float64 { return float64(ss.Entries) })

	// Per-scheme batch-planner histograms (trace.go) ride the same
	// scrape-time bridge pattern.
	h.initPlannerMetrics(m)
}

// cacheSamples adapts a CacheStats projection into a scrape-time sampler
// producing one sample per registered scheme.
func (h *Handler) cacheSamples(f func(core.CacheStats) float64) func() []metrics.Sample {
	return func() []metrics.Sample {
		var out []metrics.Sample
		for _, name := range h.reg.Names() {
			svc, ok := h.reg.Get(name)
			if !ok {
				continue
			}
			out = append(out, metrics.Sample{
				Labels: []metrics.Label{metrics.L("scheme", name)},
				Value:  f(svc.Stats()),
			})
		}
		return out
	}
}

// shardSamples adapts a ShardStat projection into a scrape-time sampler
// producing one sample per (scheme, shard) pair.
func (h *Handler) shardSamples(f func(cache.ShardStat) float64) func() []metrics.Sample {
	return func() []metrics.Sample {
		var out []metrics.Sample
		for _, name := range h.reg.Names() {
			svc, ok := h.reg.Get(name)
			if !ok {
				continue
			}
			for i, ss := range svc.ShardStats() {
				out = append(out, metrics.Sample{
					Labels: []metrics.Label{
						metrics.L("scheme", name),
						metrics.L("shard", strconv.Itoa(i)),
					},
					Value: f(ss),
				})
			}
		}
		return out
	}
}

// Metrics returns the handler's metrics registry — exported for tests and
// for embedding servers that want to add their own series to the same
// scrape.
func (h *Handler) Metrics() *metrics.Registry { return h.met }

// handleMetrics serves the Prometheus text exposition. Like the other
// monitoring GETs it is exempt from the in-flight limiter: a scrape must
// keep answering precisely while the limiter is shedding query traffic.
func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	// A broken connection mid-scrape has no useful recovery; the next
	// scrape gets fresh values.
	_ = h.met.WritePrometheus(w)
}

// endpointLabel maps a request to the bounded endpoint label set used on
// the HTTP metric series. Path parameters collapse to their pattern and
// unknown paths to "other", so series cardinality cannot grow with
// traffic.
func endpointLabel(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/v1/connect", "/v1/batch", "/v1/interpretations", "/v1/schemes", "/v1/stats", "/metrics", "/v1/traces":
		return p
	}
	if strings.HasPrefix(p, "/v1/schemes/") {
		if strings.HasSuffix(p, "/snapshot") {
			return "/v1/schemes/{name}/snapshot"
		}
		return "/v1/schemes/{name}"
	}
	return "other"
}

// queryEndpoint reports whether the endpoint does solver work — the
// subset whose latency feeds the solve histogram and so the Retry-After
// estimate.
func queryEndpoint(endpoint string) bool {
	switch endpoint {
	case "/v1/connect", "/v1/batch", "/v1/interpretations":
		return true
	}
	return false
}

// observeRequest records one routed request on the per-endpoint metric
// families. traceID, when non-empty, is the id of the request's retained
// trace and is offered to the solve histogram as its exemplar, linking
// the latency tail back to a trace /v1/traces can actually resolve.
func (h *Handler) observeRequest(endpoint, method string, status int, d time.Duration, traceID string) {
	h.met.Histogram(MetricRequestDuration,
		"HTTP request latency by endpoint and method.",
		metrics.DefLatencyBounds(),
		metrics.L("endpoint", endpoint), metrics.L("method", method)).ObserveDuration(d)
	h.met.Counter(MetricRequestsTotal,
		"HTTP requests by endpoint, method and status code.",
		metrics.L("endpoint", endpoint), metrics.L("method", method),
		metrics.L("code", strconv.Itoa(status))).Inc()
	if queryEndpoint(endpoint) {
		h.solveDur.ObserveWithExemplar(d.Seconds(), traceID)
	}
}

// retryAfterSeconds derives the Retry-After hint from the observed p50
// solve latency: when the server is shedding, one median service time is
// the natural backoff unit. Rounded up, floor 1s (the header is integer
// seconds, and an idle histogram must not advertise 0).
func (h *Handler) retryAfterSeconds() string {
	secs := int(math.Ceil(h.solveDur.Quantile(0.5)))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// statusWriter captures the response status for the requests_total code
// label. A handler that writes the body without an explicit WriteHeader
// implies 200, mirroring net/http.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }
