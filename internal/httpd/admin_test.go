package httpd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fixtures"
	"repro/internal/snapshot"
)

// adminServer boots a handler over a registry holding the Figure 3(c)
// library scheme.
func adminServer(t *testing.T, opts ...HandlerOption) (*httptest.Server, *core.Registry) {
	t.Helper()
	reg := core.NewRegistry()
	reg.Set("library", fixtures.Fig3c())
	ts := httptest.NewServer(New(reg, opts...))
	t.Cleanup(ts.Close)
	return ts, reg
}

func adminDo(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestSnapshotDownloadUploadCycle proves the admin trio end to end: the
// downloaded epoch is a decodable snapshot, uploading it under a new name
// installs a scheme whose answers are bit-for-bit the original's, and
// deleting it returns the catalog to its prior state.
func TestSnapshotDownloadUploadCycle(t *testing.T) {
	ts, reg := adminServer(t)

	resp, snapBytes := adminDo(t, http.MethodGet, ts.URL+"/v1/schemes/library/snapshot", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("download: status %d: %s", resp.StatusCode, snapBytes)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("download content type %q", ct)
	}
	if resp.Header.Get("X-Scheme-Epoch") != "1" {
		t.Fatalf("download epoch header %q", resp.Header.Get("X-Scheme-Epoch"))
	}
	snap, err := snapshot.Decode(snapBytes)
	if err != nil {
		t.Fatalf("downloaded bytes do not decode: %v", err)
	}
	orig, _ := reg.Get("library")
	if snap.Class != orig.Connector().Class() {
		t.Fatalf("downloaded class diverges")
	}

	resp, body := adminDo(t, http.MethodPut, ts.URL+"/v1/schemes/restored", snapBytes)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	var up UploadResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up.Scheme != "restored" || up.Epoch != 1 || up.Source != "snapshot-v1" {
		t.Fatalf("upload response %+v", up)
	}

	// The revived scheme must answer exactly like the original over the
	// wire, and must advertise its snapshot provenance in /v1/schemes.
	for _, labels := range [][]string{{"A", "C"}, {"B", "3"}, {"1", "2", "3"}} {
		q := func(scheme string) string {
			req, _ := json.Marshal(ConnectRequest{Scheme: scheme, Labels: labels})
			resp, body := adminDo(t, http.MethodPost, ts.URL+"/v1/connect", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("connect %s %v: %d %s", scheme, labels, resp.StatusCode, body)
			}
			// The scheme name differs by construction; compare the answer.
			var cr ConnectResponse
			if err := json.Unmarshal(body, &cr); err != nil {
				t.Fatal(err)
			}
			b, _ := json.Marshal(cr.Answer)
			return string(b)
		}
		if a, b := q("library"), q("restored"); a != b {
			t.Fatalf("answers diverge for %v:\n  live: %s\n  snap: %s", labels, a, b)
		}
	}
	resp, body = adminDo(t, http.MethodGet, ts.URL+"/v1/schemes", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("schemes listing failed")
	}
	var schemes SchemesResponse
	if err := json.Unmarshal(body, &schemes); err != nil {
		t.Fatal(err)
	}
	bySource := map[string]string{}
	for _, s := range schemes.Schemes {
		bySource[s.Name] = s.Source
	}
	if bySource["library"] != "" || bySource["restored"] != "snapshot-v1" {
		t.Fatalf("source attribution wrong: %v", bySource)
	}

	resp, body = adminDo(t, http.MethodDelete, ts.URL+"/v1/schemes/restored", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d: %s", resp.StatusCode, body)
	}
	var del DeleteResponse
	if err := json.Unmarshal(body, &del); err != nil {
		t.Fatal(err)
	}
	if del.Scheme != "restored" || !del.Dropped {
		t.Fatalf("delete response %+v", del)
	}
	if _, ok := reg.Get("restored"); ok {
		t.Fatalf("scheme still registered after DELETE")
	}
}

// TestWarmSnapshotUploadBootsHot: downloading a snapshot with ?warmup=1
// captures the live cache, and a scheme revived from it answers its first
// query out of the restored cache — a hit, bit-for-bit the original
// answer, with the restore visible as warm_fills in /v1/stats.
func TestWarmSnapshotUploadBootsHot(t *testing.T) {
	ts, _ := adminServer(t)

	// Populate the live cache, then capture it.
	queries := [][]string{{"A", "C"}, {"B", "3"}, {"1", "2", "3"}}
	answers := make([]string, len(queries))
	for i, labels := range queries {
		req, _ := json.Marshal(ConnectRequest{Scheme: "library", Labels: labels})
		resp, body := adminDo(t, http.MethodPost, ts.URL+"/v1/connect", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("connect %v: %d %s", labels, resp.StatusCode, body)
		}
		var cr ConnectResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(cr.Answer)
		answers[i] = string(b)
	}
	resp, snapBytes := adminDo(t, http.MethodGet, ts.URL+"/v1/schemes/library/snapshot?warmup=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm download: status %d: %s", resp.StatusCode, snapBytes)
	}
	snap, err := snapshot.Decode(snapBytes)
	if err != nil {
		t.Fatalf("warm snapshot does not decode: %v", err)
	}
	if len(snap.Warmup) != len(queries) {
		t.Fatalf("warm snapshot carries %d entries, want %d", len(snap.Warmup), len(queries))
	}

	resp, body := adminDo(t, http.MethodPut, ts.URL+"/v1/schemes/warmed", snapBytes)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm upload: status %d: %s", resp.StatusCode, body)
	}

	stats := func() SchemeStats {
		resp, body := adminDo(t, http.MethodGet, ts.URL+"/v1/stats", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats: %d %s", resp.StatusCode, body)
		}
		var sr StatsResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		return sr.Schemes["warmed"]
	}
	if st := stats(); st.WarmFills != uint64(len(queries)) || st.Entries != len(queries) {
		t.Fatalf("before any query: stats = %+v, want %d warm fills resident", st, len(queries))
	}

	// Every original query answers from the restored cache, bit-for-bit.
	for i, labels := range queries {
		req, _ := json.Marshal(ConnectRequest{Scheme: "warmed", Labels: labels})
		resp, body := adminDo(t, http.MethodPost, ts.URL+"/v1/connect", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warmed connect %v: %d %s", labels, resp.StatusCode, body)
		}
		var cr ConnectResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		if b, _ := json.Marshal(cr.Answer); string(b) != answers[i] {
			t.Fatalf("warmed answer diverges for %v:\n  live: %s\n  warm: %s", labels, answers[i], b)
		}
	}
	st := stats()
	if st.Misses != 0 || st.Hits != uint64(len(queries)) {
		t.Fatalf("after replay: stats = %+v, want %d hits / 0 misses", st, len(queries))
	}
	if got, want := uint64(st.Entries), st.Misses+st.WarmFills-st.Evictions-st.Removals; got != want {
		t.Fatalf("warm algebra: entries = %d, misses+warm_fills-evictions-removals = %d", got, want)
	}
	if st.CostResident != st.CostAdded-st.CostEvicted-st.CostRemoved {
		t.Fatalf("warm cost ledger out of balance: %+v", st)
	}
}

// TestUploadTextScheme compiles a textual scheme body live.
func TestUploadTextScheme(t *testing.T) {
	ts, reg := adminServer(t)
	text := "v1 x\nv1 y\nv2 r\nedge x r\nedge y r\n"
	resp, body := adminDo(t, http.MethodPut, ts.URL+"/v1/schemes/tiny", []byte(text))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var up UploadResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up.Source != core.SourceCompiled || up.Epoch != 1 {
		t.Fatalf("upload response %+v", up)
	}
	svc, ok := reg.Get("tiny")
	if !ok || svc.Connector().Graph().N() != 3 {
		t.Fatalf("uploaded scheme not installed correctly")
	}

	// Replacing bumps the epoch atomically.
	resp, body = adminDo(t, http.MethodPut, ts.URL+"/v1/schemes/tiny", []byte(text))
	if resp.StatusCode != http.StatusOK {
		t.Fatal("re-upload failed")
	}
	_ = json.Unmarshal(body, &up)
	if up.Epoch != 2 {
		t.Fatalf("re-upload epoch %d, want 2: %s", up.Epoch, body)
	}
}

// TestUploadRespectsSchemeOptions: WithSchemeOptions budgets apply to
// uploaded schemes exactly like boot-time ones.
func TestUploadRespectsSchemeOptions(t *testing.T) {
	ts, _ := adminServer(t, WithSchemeOptions(core.WithMaxTerminals(2)))
	text := "v1 x\nv1 y\nv1 z\nv2 r\nedge x r\nedge y r\nedge z r\n"
	if resp, body := adminDo(t, http.MethodPut, ts.URL+"/v1/schemes/tiny", []byte(text)); resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	req, _ := json.Marshal(ConnectRequest{Scheme: "tiny", Terminals: []int{0, 1, 2}})
	resp, body := adminDo(t, http.MethodPost, ts.URL+"/v1/connect", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("3-terminal query against WithMaxTerminals(2) scheme: %d %s", resp.StatusCode, body)
	}
}

func TestAdminErrors(t *testing.T) {
	ts, reg := adminServer(t, WithMaxSnapshotBytes(512))

	valid := func() []byte {
		var buf bytes.Buffer
		if err := reg.SaveSnapshot("library", &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := []struct {
		name, method, path string
		body               []byte
		status             int
		code               string
	}{
		{"download-unknown", http.MethodGet, "/v1/schemes/ghost/snapshot", nil, 404, CodeUnknownScheme},
		{"delete-unknown", http.MethodDelete, "/v1/schemes/ghost", nil, 404, CodeUnknownScheme},
		{"put-empty", http.MethodPut, "/v1/schemes/x", []byte{}, 400, CodeBadRequest},
		{"put-bad-text", http.MethodPut, "/v1/schemes/x", []byte("edge a b\n"), 422, CodeBadScheme},
		{"put-truncated-snapshot", http.MethodPut, "/v1/schemes/x", valid[:len(valid)-3], 422, CodeBadSnapshot},
		{"put-corrupt-snapshot", http.MethodPut, "/v1/schemes/x", func() []byte {
			d := append([]byte(nil), valid...)
			d[len(d)-1] ^= 0xFF
			return d
		}(), 422, CodeBadSnapshot},
		{"put-oversized", http.MethodPut, "/v1/schemes/x", bytes.Repeat([]byte("v1 aaaaaa\n"), 200), 413, CodeBodyTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := adminDo(t, tc.method, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			var eb ErrorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error body is not JSON: %s", body)
			}
			if eb.Code != tc.code {
				t.Fatalf("code %q, want %q (%s)", eb.Code, tc.code, body)
			}
		})
	}

	// A failed upload must not disturb the existing catalog entry.
	if _, ok := reg.Get("x"); ok {
		t.Fatalf("a rejected upload registered a scheme")
	}
	if names := reg.Names(); !(len(names) == 1 && names[0] == "library") {
		t.Fatalf("catalog disturbed: %v", names)
	}
}

// TestDeleteDuringQueries: in-flight queries on a dropped scheme finish
// cleanly on their epoch while new lookups 404.
func TestDeleteDuringQueries(t *testing.T) {
	ts, reg := adminServer(t)
	svc, _ := reg.Get("library")

	done := make(chan error, 32)
	for i := 0; i < 32; i++ {
		go func(i int) {
			req, _ := json.Marshal(ConnectRequest{Scheme: "library", Labels: []string{"A", "C"}, CacheBypass: i%2 == 0})
			resp, body := adminDo2(ts.URL+"/v1/connect", req)
			if resp == nil {
				done <- fmt.Errorf("request error")
				return
			}
			// Either the query resolved the scheme before the drop (200) or
			// after (404); both are clean outcomes, anything else is not.
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
				done <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			done <- nil
		}(i)
	}
	resp, body := adminDo(t, http.MethodDelete, ts.URL+"/v1/schemes/library", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, body)
	}
	for i := 0; i < 32; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// The old epoch object itself keeps answering for holders.
	if _, err := svc.Connect(t.Context(), []int{0, 2}); err != nil {
		t.Fatalf("held Service died after Drop: %v", err)
	}
}

// adminDo2 is adminDo without the testing.T (for goroutines).
func adminDo2(url string, body []byte) (*http.Response, string) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, ""
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, ""
	}
	defer resp.Body.Close()
	var sb strings.Builder
	_, _ = io.Copy(&sb, resp.Body)
	return resp, sb.String()
}
