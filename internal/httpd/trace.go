package httpd

// Request tracing on the HTTP boundary. The handler owns the only
// trace.Tracer in the process: ServeHTTP opens the request trace
// (adopting an inbound W3C traceparent when present), threads it through
// the request context so core and the solvers can hang phase spans off
// it, and closes it when the response is written. Retained traces are
// served back on GET /v1/traces; every routed request can additionally
// be access-logged with its trace id for cross-correlation with the
// slow-query log.

import (
	"log/slog"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// WithTracer wires a request tracer into the handler. Nil (the default)
// disables tracing entirely — the request path then does no tracing work
// at all, preserving the zero-allocation serving benchmarks.
func WithTracer(t *trace.Tracer) HandlerOption {
	return func(h *Handler) { h.tracer = t }
}

// WithAccessLog emits one structured log line per routed request (and
// per limiter shed) on l, stamped with the request's trace id when a
// tracer is configured. Nil disables request logging.
func WithAccessLog(l *slog.Logger) HandlerOption {
	return func(h *Handler) { h.accessLog = l }
}

// startTrace opens the request trace and rebinds the request to a
// context carrying it. A nil tracer returns the request untouched.
func (h *Handler) startTrace(r *http.Request, endpoint string) (*trace.Trace, *http.Request) {
	if h.tracer == nil {
		return nil, r
	}
	tp := trace.ParseTraceparent(r.Header.Get("traceparent"))
	tr := h.tracer.StartRequest(endpoint, tp)
	return tr, r.WithContext(trace.NewContext(r.Context(), tr))
}

// finishRequest closes the request trace (retaining it when sampled,
// errored or slow) and emits the access-log line. It returns the trace
// id when the trace was retained — the id a reader can actually resolve
// on /v1/traces, which is what the latency-histogram exemplar links to.
func (h *Handler) finishRequest(tr *trace.Trace, r *http.Request, endpoint string, status int, d time.Duration) string {
	var tid, kept string
	if tr != nil {
		// Capture the id before Finish recycles the trace; skip the hex
		// rendering entirely when nothing will log it.
		if h.accessLog != nil {
			tid = tr.ID().String()
		}
		if rec := h.tracer.Finish(tr, status >= http.StatusInternalServerError); rec != nil {
			kept = rec.TraceID
		}
	}
	if h.accessLog != nil {
		h.accessLog.Info("request",
			"trace_id", tid,
			"method", r.Method,
			"path", r.URL.Path,
			"endpoint", endpoint,
			"status", status,
			"duration_ms", float64(d)/float64(time.Millisecond))
	}
	return kept
}

// annotateScheme stamps the resolved scheme name and epoch onto the
// request's root span, so every retained trace names the compile that
// answered it. No-ops on untraced requests.
func annotateScheme(r *http.Request, name string, epoch uint64) {
	root := trace.FromContext(r.Context()).Root()
	root.Annotate("scheme", name)
	root.AnnotateInt("epoch", int64(epoch))
}

// TracesResponse is the body of GET /v1/traces: recently retained
// request traces, newest first.
type TracesResponse struct {
	Traces []*trace.Recorded `json:"traces"`
}

// handleTraces serves the bounded ring of retained traces. Like the
// other monitoring GETs it is exempt from the in-flight limiter, and it
// answers an empty list (not an error) when no tracer is configured so
// probes need not know the server's tracing config.
func (h *Handler) handleTraces(w http.ResponseWriter, r *http.Request) {
	resp := TracesResponse{Traces: []*trace.Recorded{}}
	if h.tracer != nil {
		if recent := h.tracer.Recent(); len(recent) > 0 {
			resp.Traces = recent
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// Planner metric names exported on GET /metrics.
const (
	MetricPlannerGroupSize   = "chordal_planner_group_size"
	MetricPlannerSharedBuild = "chordal_planner_shared_build_seconds"
)

// initPlannerMetrics bridges the per-scheme planner histograms each
// core.Service owns onto the scrape, one labelled series per registered
// scheme. Schemes dropped between Names and Get simply contribute no
// sample — same copy-on-write race discipline as the cache bridges.
func (h *Handler) initPlannerMetrics(m *metrics.Registry) {
	plannerHist := func(name, help string, f func(*core.Service) *metrics.Histogram) {
		m.HistogramFunc(name, help, func() []metrics.HistogramSample {
			var out []metrics.HistogramSample
			for _, name := range h.reg.Names() {
				svc, ok := h.reg.Get(name)
				if !ok {
					continue
				}
				out = append(out, metrics.HistogramSample{
					Labels: []metrics.Label{metrics.L("scheme", name)},
					H:      f(svc),
				})
			}
			return out
		})
	}
	plannerHist(MetricPlannerGroupSize,
		"Batch-planner group sizes (queries per shared-work group), per scheme.",
		func(svc *core.Service) *metrics.Histogram {
			gs, _ := svc.PlannerStats()
			return gs
		})
	plannerHist(MetricPlannerSharedBuild,
		"Wall time to build one planner group's shared precomputation, per scheme.",
		func(svc *core.Service) *metrics.Histogram {
			_, sb := svc.PlannerStats()
			return sb
		})
}
