package httpd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/steiner"
)

// TestRandomizedEquivalence is the property harness of this package: over
// ≥200 random schemes spanning the taxonomy (trees, complete bipartite,
// α-acyclic incidence graphs, unconstrained random graphs — acyclic and
// cyclic alike), every wire answer must be bit-for-bit the answer of
//
//	(1) the cached frozen Service the handler actually calls,
//	(2) an independent uncached frozen Connector, and
//	(3) the mutable v1 solver the dispatched method names,
//
// and every wire failure must carry exactly the status/code the in-process
// typed error maps to. Any divergence is a silent-corruption bug at the
// network boundary.
func TestRandomizedEquivalence(t *testing.T) {
	const schemeCount = 200
	r := rand.New(rand.NewSource(1985))
	reg := core.NewRegistry()
	ts := httptest.NewServer(New(reg, WithMaxInFlight(0)))
	defer ts.Close()

	for i := 0; i < schemeCount; i++ {
		b := randomScheme(r, i)
		if b.N() == 0 {
			continue
		}
		name := fmt.Sprintf("s%d", i)
		svc := reg.Set(name, b)
		fresh := core.New(b) // recompiled independently, no cache

		for q := 0; q < 4; q++ {
			terms := randomTerminals(r, b.N())
			req := ConnectRequest{Scheme: name, Terminals: terms}
			switch q {
			case 1:
				req.Method = "heuristic"
			case 2:
				req.CacheBypass = true
			case 3:
				req.ExactLimit = 1 + r.Intn(6)
			}
			assertEquivalent(t, ts, b, svc, fresh, req)
		}

		// Error taxonomy parity on queries that must fail validation.
		for _, terms := range [][]int{{}, {0, 0}, {b.N() + 7}, {-1}} {
			assertEquivalent(t, ts, b, svc, fresh, ConnectRequest{Scheme: name, Terminals: terms})
		}

		if !reg.Drop(name) {
			t.Fatalf("scheme %s vanished", name)
		}
	}
}

// randomScheme rotates through scheme families so every dispatch arm —
// Algorithm 2, Algorithm 1, exact, heuristic — and the disconnected case
// come up across the sweep.
func randomScheme(r *rand.Rand, i int) *bipartite.Graph {
	switch i % 4 {
	case 0:
		// Cyclic, connected: exact/heuristic territory.
		return gen.RandomConnectedBipartite(r, 3+r.Intn(5), 2+r.Intn(4), 0.2+0.4*r.Float64())
	case 1:
		// α-acyclic H¹ incidence graphs: Algorithm 1 territory; may be
		// disconnected, exercising ErrDisconnectedTerminals parity.
		return bipartite.FromHypergraph(gen.AlphaAcyclic(r, 3+r.Intn(4), 2, 2)).B
	case 2:
		// Trees are (6,2)-chordal: Algorithm 2 with full guarantees.
		return gen.RandomTree(r, 4+r.Intn(9))
	default:
		// Complete bipartite: (6,2)-chordal with dense adjacency.
		return gen.CompleteBipartite(2+r.Intn(3), 2+r.Intn(3))
	}
}

// randomTerminals picks 1–4 distinct node ids (either side).
func randomTerminals(r *rand.Rand, n int) []int {
	k := 1 + r.Intn(4)
	if k > n {
		k = n
	}
	return r.Perm(n)[:k]
}

// queryOpts mirrors the wire fields of req as in-process query options.
func queryOpts(req ConnectRequest) []core.QueryOption {
	var opts []core.QueryOption
	if req.Method != "" {
		m, ok := parseMethod(req.Method)
		if !ok {
			panic("test built an invalid method")
		}
		opts = append(opts, core.WithMethod(m))
	}
	if req.ExactLimit > 0 {
		opts = append(opts, core.WithQueryExactLimit(req.ExactLimit))
	}
	if req.CacheBypass {
		opts = append(opts, core.WithCacheBypass())
	}
	return opts
}

// mutableAnswer reruns the query on the v1 mutable solver that the
// dispatched method names.
func mutableAnswer(b *bipartite.Graph, method string, terms []int) (steiner.Tree, error) {
	switch method {
	case "algorithm-2":
		return steiner.Algorithm2(b.G(), terms)
	case "algorithm-1":
		return steiner.Algorithm1(b, terms)
	case "exact":
		return steiner.Exact(b.G(), terms)
	case "heuristic":
		return steiner.Approximate(b.G(), terms)
	}
	return steiner.Tree{}, fmt.Errorf("unknown method %q", method)
}

func assertEquivalent(t *testing.T, ts *httptest.Server, b *bipartite.Graph, svc *core.Service, fresh *core.Connector, req ConnectRequest) {
	t.Helper()
	ctx := context.Background()
	opts := queryOpts(req)
	wantConn, wantErr := fresh.Connect(ctx, req.Terminals, opts...)
	svcConn, svcErr := svc.Connect(ctx, req.Terminals, opts...)

	// Frozen paths agree with each other (cached or not).
	if (wantErr == nil) != (svcErr == nil) {
		t.Fatalf("%s %v: connector err %v, service err %v", req.Scheme, req.Terminals, wantErr, svcErr)
	}
	if wantErr == nil && !sameConnection(wantConn, svcConn) {
		t.Fatalf("%s %v: connector %v != service %v", req.Scheme, req.Terminals, wantConn.Tree, svcConn.Tree)
	}

	// The wire answer.
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/connect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	if wantErr != nil {
		wantStatus, wantCode := errorStatus(wantErr)
		var eb ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("%s %v: error body: %v", req.Scheme, req.Terminals, err)
		}
		if resp.StatusCode != wantStatus || eb.Code != wantCode {
			t.Fatalf("%s %v: wire %d/%s, in-process %d/%s (%v)",
				req.Scheme, req.Terminals, resp.StatusCode, eb.Code, wantStatus, wantCode, wantErr)
		}
		return
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %v: wire status %d but in-process answered", req.Scheme, req.Terminals, resp.StatusCode)
	}
	var wire ConnectResponse
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.Method != wantConn.Method.String() ||
		wire.Optimal != wantConn.Optimal || wire.V2Optimal != wantConn.V2Optimal {
		t.Fatalf("%s %v: wire %s/%v/%v, in-process %s/%v/%v", req.Scheme, req.Terminals,
			wire.Method, wire.Optimal, wire.V2Optimal,
			wantConn.Method, wantConn.Optimal, wantConn.V2Optimal)
	}
	if !sameTreeWire(wire.Answer, wantConn.Tree) {
		t.Fatalf("%s %v: wire tree %v/%v != in-process %v",
			req.Scheme, req.Terminals, wire.Nodes, wire.Edges, wantConn.Tree)
	}

	// The mutable v1 solver must produce the identical tree.
	mt, merr := mutableAnswer(b, wire.Method, req.Terminals)
	if merr != nil {
		t.Fatalf("%s %v: mutable %s failed (%v) where frozen answered", req.Scheme, req.Terminals, wire.Method, merr)
	}
	if !sameTreeWire(wire.Answer, mt) {
		t.Fatalf("%s %v: wire tree %v/%v != mutable %v", req.Scheme, req.Terminals, wire.Nodes, wire.Edges, mt)
	}
}

// sameConnection compares two in-process answers bit for bit.
func sameConnection(a, b core.Connection) bool {
	if a.Method != b.Method || a.Optimal != b.Optimal || a.V2Optimal != b.V2Optimal {
		return false
	}
	if !a.Tree.Nodes.Equal(b.Tree.Nodes) || len(a.Tree.Edges) != len(b.Tree.Edges) {
		return false
	}
	for i := range a.Tree.Edges {
		if a.Tree.Edges[i] != b.Tree.Edges[i] {
			return false
		}
	}
	return true
}

// sameTreeWire compares a wire answer against an in-process tree bit for
// bit: same node sequence, same edge sequence.
func sameTreeWire(a Answer, tr steiner.Tree) bool {
	if len(a.Nodes) != tr.Nodes.Len() || len(a.Edges) != len(tr.Edges) {
		return false
	}
	for i, v := range tr.Nodes {
		if a.Nodes[i] != v {
			return false
		}
	}
	for i, e := range tr.Edges {
		if a.Edges[i] != [2]int{e.U, e.V} {
			return false
		}
	}
	return true
}

// TestBatchEquivalence drives /v1/batch against ConnectBatch on a few
// random schemes: same order, same answers, same per-query errors.
func TestBatchEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	reg := core.NewRegistry()
	ts := httptest.NewServer(New(reg))
	defer ts.Close()

	for i := 0; i < 20; i++ {
		b := randomScheme(r, i)
		if b.N() == 0 {
			continue
		}
		name := fmt.Sprintf("b%d", i)
		svc := reg.Set(name, b)
		queries := make([][]int, 6)
		for q := range queries {
			queries[q] = randomTerminals(r, b.N())
		}
		queries = append(queries, []int{}, []int{b.N() + 1}) // error parity

		want := svc.ConnectBatch(context.Background(), queries, core.WithCacheBypass())
		body, _ := json.Marshal(BatchRequest{Scheme: name, Queries: queries, CacheBypass: true})
		resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var wire BatchResponse
		err = json.NewDecoder(resp.Body).Decode(&wire)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("batch: status %d err %v", resp.StatusCode, err)
		}
		if len(wire.Results) != len(want) {
			t.Fatalf("batch: %d wire results, want %d", len(wire.Results), len(want))
		}
		for j, w := range want {
			item := wire.Results[j]
			if w.Err != nil {
				wantStatus, wantCode := errorStatus(w.Err)
				if item.Error == nil || item.Error.Code != wantCode || item.Error.Status != wantStatus {
					t.Fatalf("batch %s query %d: wire error %+v, want %d/%s", name, j, item.Error, wantStatus, wantCode)
				}
				continue
			}
			if item.Answer == nil || !sameTreeWire(*item.Answer, w.Conn.Tree) {
				t.Fatalf("batch %s query %d: wire %+v != in-process %v", name, j, item.Answer, w.Conn.Tree)
			}
		}
		reg.Drop(name)
	}
}
