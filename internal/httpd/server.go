package httpd

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// DefaultShutdownGrace is how long Serve waits for in-flight requests
// after its context is canceled before forcing connections closed.
const DefaultShutdownGrace = 5 * time.Second

// Serve serves h on l until ctx is canceled, then shuts down gracefully:
// the listener closes immediately (no new connections) and in-flight query
// contexts are canceled — a request mid-solve answers 504/canceled rather
// than burning the shutdown window on a doomed search. The grace period
// bounds how long connections may take to flush those responses before
// being force-closed. A non-positive grace selects DefaultShutdownGrace.
// It returns nil on a clean shutdown and the serve or shutdown error
// otherwise; the listener is closed in every case.
func Serve(ctx context.Context, l net.Listener, h http.Handler, grace time.Duration) error {
	if grace <= 0 {
		grace = DefaultShutdownGrace
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		// BaseContext ties every request context to ctx, so canceling the
		// serve context also cancels queries still inside a solver — the
		// grace period is for writing responses, not for unbounded work.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		// Serve only returns before a Shutdown on a real listener error.
		return err
	case <-ctx.Done():
	}
	// WithoutCancel: the shutdown deadline must outlive ctx, which has
	// just been canceled, while keeping its values for logging hooks.
	sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), grace)
	defer cancel()
	err := srv.Shutdown(sctx)
	if errors.Is(err, context.DeadlineExceeded) {
		err = srv.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed by now
	return err
}
