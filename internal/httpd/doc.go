// Package httpd serves the core.Registry over HTTP: the first
// multi-process surface of the repository. The handler speaks a small JSON
// protocol that reuses the v2 query contract end to end — per-request
// deadlines (a timeout_ms field on top of the request context),
// load-shedding through the schemes' WithMaxTerminals budget and a bounded
// in-flight limiter, and the typed error taxonomy of internal/core mapped
// onto HTTP status codes (see errorStatus in wire.go).
//
// Endpoints:
//
//	POST   /v1/connect                  one minimal-connection query
//	POST   /v1/batch                    many queries against one scheme, in order
//	POST   /v1/interpretations          ranked alternative readings of a query
//	GET    /v1/schemes                  the registered schemes and their classes
//	GET    /v1/stats                    per-scheme answer-cache counters
//	GET    /v1/schemes/{name}/snapshot  download the compiled epoch (binary)
//	PUT    /v1/schemes/{name}           upload-and-swap a scheme (snapshot or text)
//	DELETE /v1/schemes/{name}           drop a scheme from the catalog
//
// The last three are the live admin trio: a Registry can be populated,
// snapshotted and pruned over the wire without restarting the process.
// Uploads are atomic compile-and-swap (Registry semantics): in-flight
// queries finish on the old epoch. A snapshot body (sniffed by its
// "CHRDSNAP" magic) installs with zero recompilation; any other body is
// parsed as the graphio bipartite text format and compiled live.
//
// Because every answer is produced by the same Service/Connector stack the
// in-process API uses, a wire answer is bit-for-bit the in-process answer;
// equivalence_test.go holds the handler to that over randomized schemes.
package httpd
