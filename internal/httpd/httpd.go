package httpd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graphio"
	"repro/internal/metrics"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// Defaults for the handler knobs; override with the With… options.
const (
	DefaultMaxInFlight      = 256
	DefaultMaxBodyBytes     = 1 << 20 // 1 MiB
	DefaultMaxSnapshotBytes = 64 << 20
	DefaultMaxTimeout       = 30 * time.Second
	DefaultInterpLimit      = 5
)

// Handler serves the v1 HTTP API over a Registry. It is an http.Handler;
// all methods are safe for concurrent use (the Registry may be updated —
// Set/Drop or the PUT/DELETE admin endpoints — while the handler is
// serving).
type Handler struct {
	reg         *core.Registry
	mux         *http.ServeMux
	sem         chan struct{} // nil: unlimited
	maxBody     int64
	maxSnapshot int64
	maxTimeout  time.Duration
	schemeOpts  []core.Option

	// Observability (metrics.go). met is the scrape registry behind
	// GET /metrics; the named instruments are the ones the request path
	// touches directly.
	met      *metrics.Registry
	solveDur *metrics.Histogram // query-endpoint latency; drives Retry-After
	sheds    *metrics.Counter
	swaps    *metrics.Counter

	// Tracing (trace.go). Both nil by default: an untraced, unlogged
	// handler does no per-request tracing work whatsoever.
	tracer    *trace.Tracer
	accessLog *slog.Logger
}

// HandlerOption configures New.
type HandlerOption func(*Handler)

// WithMaxInFlight bounds concurrently-served requests; excess requests are
// shed immediately with 429/overloaded and a Retry-After header rather
// than queued. Non-positive means unlimited.
func WithMaxInFlight(n int) HandlerOption {
	return func(h *Handler) {
		if n > 0 {
			h.sem = make(chan struct{}, n)
		} else {
			h.sem = nil
		}
	}
}

// WithMaxBodyBytes bounds request body size (413 beyond it).
func WithMaxBodyBytes(n int64) HandlerOption {
	return func(h *Handler) { h.maxBody = n }
}

// WithMaxSnapshotBytes bounds PUT /v1/schemes/{name} upload size — scheme
// uploads are binary catalogs, legitimately much larger than query bodies,
// so they get their own cap (413 beyond it).
func WithMaxSnapshotBytes(n int64) HandlerOption {
	return func(h *Handler) { h.maxSnapshot = n }
}

// WithSchemeOptions sets the construction options (WithMaxTerminals,
// WithWorkers, …) applied to every scheme installed through the PUT admin
// endpoint, so uploaded schemes get the same budgets as the ones the
// server booted with.
func WithSchemeOptions(opts ...core.Option) HandlerOption {
	return func(h *Handler) { h.schemeOpts = opts }
}

// WithMaxTimeout caps the per-request deadline. Requests without a
// timeout_ms get exactly this deadline; larger timeout_ms values are
// clamped to it. Non-positive disables the cap (requests then run on the
// connection's context alone).
func WithMaxTimeout(d time.Duration) HandlerOption {
	return func(h *Handler) { h.maxTimeout = d }
}

// New returns a Handler serving reg.
func New(reg *core.Registry, opts ...HandlerOption) *Handler {
	h := &Handler{
		reg:         reg,
		maxBody:     DefaultMaxBodyBytes,
		maxSnapshot: DefaultMaxSnapshotBytes,
		maxTimeout:  DefaultMaxTimeout,
		sem:         make(chan struct{}, DefaultMaxInFlight),
	}
	for _, o := range opts {
		o(h)
	}
	h.initMetrics()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/connect", h.handleConnect)
	mux.HandleFunc("POST /v1/batch", h.handleBatch)
	mux.HandleFunc("POST /v1/interpretations", h.handleInterpretations)
	mux.HandleFunc("GET /v1/schemes", h.handleSchemes)
	mux.HandleFunc("GET /v1/stats", h.handleStats)
	mux.HandleFunc("GET /metrics", h.handleMetrics)
	mux.HandleFunc("GET /v1/traces", h.handleTraces)
	mux.HandleFunc("GET /v1/schemes/{name}/snapshot", h.handleSnapshotDownload)
	mux.HandleFunc("PUT /v1/schemes/{name}", h.handleSchemeUpload)
	mux.HandleFunc("DELETE /v1/schemes/{name}", h.handleSchemeDelete)
	h.mux = mux
	return h
}

// ServeHTTP applies the in-flight limiter, then routes. Shedding happens
// before routing so an overloaded server does even less work per rejected
// request. Read-only GETs (/v1/schemes, /v1/stats, /metrics) are exempt:
// they do no solver work, and monitoring must keep answering precisely
// when the limiter is rejecting query traffic. Snapshot downloads are the
// exception among GETs — each one buffers a full encoded epoch, so they
// take a limiter slot like any other expensive request.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	endpoint := endpointLabel(r)
	start := time.Now()
	tr, r := h.startTrace(r, endpoint)
	if h.sem != nil && (r.Method != http.MethodGet || strings.HasSuffix(r.URL.Path, "/snapshot")) {
		lsp := tr.StartSpan("limiter")
		select {
		case h.sem <- struct{}{}:
			lsp.End()
			defer func() { <-h.sem }()
		default:
			// Sheds count on requests_total (code 429) but not the duration
			// histogram: no routed work happened, and a flood of free
			// rejections would drag the latency distribution toward zero.
			lsp.Annotate("outcome", "shed")
			lsp.End()
			h.sheds.Inc()
			h.met.Counter(MetricRequestsTotal,
				"HTTP requests by endpoint, method and status code.",
				metrics.L("endpoint", endpoint), metrics.L("method", r.Method),
				metrics.L("code", strconv.Itoa(http.StatusTooManyRequests))).Inc()
			w.Header().Set("Retry-After", h.retryAfterSeconds())
			writeError(w, http.StatusTooManyRequests, CodeOverloaded,
				"server is at its in-flight request limit")
			h.finishRequest(tr, r, endpoint, http.StatusTooManyRequests, time.Since(start))
			return
		}
	}
	sw := &statusWriter{ResponseWriter: w}
	h.mux.ServeHTTP(sw, r)
	status := sw.status
	if status == 0 { // handler never wrote; net/http implies 200
		status = http.StatusOK
	}
	d := time.Since(start)
	traceID := h.finishRequest(tr, r, endpoint, status, d)
	h.observeRequest(endpoint, r.Method, status, d, traceID)
}

// resolveScheme looks the scheme up, defaulting to the sole registered
// scheme when the request leaves the name empty. The returned epoch is
// read atomically with the Service, so the response attributes the answer
// to the compile that actually produced it even if a concurrent Set swaps
// the scheme mid-query.
func (h *Handler) resolveScheme(name string) (*core.Service, string, uint64, error) {
	if name == "" {
		if names := h.reg.Names(); len(names) == 1 {
			name = names[0]
		} else {
			return nil, "", 0, fmt.Errorf("%w: request names no scheme and %d are registered",
				core.ErrUnknownScheme, len(names))
		}
	}
	svc, epoch, ok := h.reg.Lookup(name)
	if !ok {
		return nil, "", 0, fmt.Errorf("%w: %q", core.ErrUnknownScheme, name)
	}
	return svc, name, epoch, nil
}

// resolveTerminals returns the query's terminal ids, translating labels
// when the request used them. Validation proper (range, duplicates,
// budget) stays in core — this only rejects the ambiguous both-set case
// and unknown labels.
func resolveTerminals(svc *core.Service, terminals []int, labels []string) ([]int, *ErrorBody) {
	if len(labels) == 0 {
		return terminals, nil
	}
	if len(terminals) > 0 {
		return nil, &ErrorBody{
			Status: http.StatusBadRequest, Code: CodeBadRequest,
			Message: "set either terminals or labels, not both",
		}
	}
	// Resolve against the frozen view: it carries the same label index and
	// never forces a snapshot-loaded scheme to thaw its mutable graph.
	g := svc.Connector().Frozen().G()
	out := make([]int, len(labels))
	for i, l := range labels {
		id, ok := g.ID(l)
		if !ok {
			return nil, &ErrorBody{
				Status: http.StatusUnprocessableEntity, Code: CodeUnknownLabel,
				Message: fmt.Sprintf("unknown node label %q", l),
			}
		}
		out[i] = id
	}
	return out, nil
}

// requestContext derives the query context: the connection's context,
// bounded by timeout_ms clamped to the server cap (or by the cap alone
// when the request named none). Negative timeout_ms is a client bug the
// caller must reject before getting here — see checkTimeout.
func (h *Handler) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := time.Duration(timeoutMS) * time.Millisecond
	if h.maxTimeout > 0 && (d <= 0 || d > h.maxTimeout) {
		d = h.maxTimeout
	}
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

// checkTimeout rejects a negative timeout_ms: a client that computed an
// impossible deadline should fail fast, not be promoted to the server's
// full budget.
func checkTimeout(timeoutMS int64) *ErrorBody {
	if timeoutMS < 0 {
		return &ErrorBody{
			Status: http.StatusBadRequest, Code: CodeBadRequest,
			Message: "timeout_ms must be non-negative",
		}
	}
	return nil
}

// normalizeInterp validates an InterpSpec and applies the default limit —
// the single source of those rules for /v1/connect and
// /v1/interpretations alike.
func normalizeInterp(spec InterpSpec) (maxAux, limit int, eb *ErrorBody) {
	if spec.MaxAux < 0 || spec.Limit < 0 {
		return 0, 0, &ErrorBody{
			Status: http.StatusBadRequest, Code: CodeBadRequest,
			Message: "max_aux and limit must be non-negative",
		}
	}
	limit = spec.Limit
	if limit == 0 {
		limit = DefaultInterpLimit
	}
	return spec.MaxAux, limit, nil
}

// queryOptions folds the wire fields into core query options.
func queryOptions(method string, exactLimit int, interp *InterpSpec, bypass bool) ([]core.QueryOption, *ErrorBody) {
	m, ok := parseMethod(method)
	if !ok {
		return nil, &ErrorBody{
			Status: http.StatusBadRequest, Code: CodeBadRequest,
			Message: fmt.Sprintf("unknown method %q (want auto, algorithm-1, algorithm-2, exact or heuristic)", method),
		}
	}
	var opts []core.QueryOption
	if m != core.MethodAuto {
		opts = append(opts, core.WithMethod(m))
	}
	if exactLimit < 0 {
		return nil, &ErrorBody{
			Status: http.StatusBadRequest, Code: CodeBadRequest,
			Message: "exact_limit must be non-negative",
		}
	}
	if exactLimit > 0 {
		opts = append(opts, core.WithQueryExactLimit(exactLimit))
	}
	if interp != nil {
		maxAux, limit, eb := normalizeInterp(*interp)
		if eb != nil {
			return nil, eb
		}
		opts = append(opts, core.WithInterpretations(maxAux, limit))
	}
	if bypass {
		opts = append(opts, core.WithCacheBypass())
	}
	return opts, nil
}

func (h *Handler) handleConnect(w http.ResponseWriter, r *http.Request) {
	var req ConnectRequest
	if !h.decode(w, r, &req) {
		return
	}
	svc, name, epoch, err := h.resolveScheme(req.Scheme)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	annotateScheme(r, name, epoch)
	terms, eb := resolveTerminals(svc, req.Terminals, req.Labels)
	if eb != nil {
		writeErrorBody(w, eb)
		return
	}
	opts, eb := queryOptions(req.Method, req.ExactLimit, req.Interpretations, req.CacheBypass)
	if eb != nil {
		writeErrorBody(w, eb)
		return
	}
	if eb := checkTimeout(req.TimeoutMS); eb != nil {
		writeErrorBody(w, eb)
		return
	}
	ctx, cancel := h.requestContext(r, req.TimeoutMS)
	defer cancel()
	conn, err := svc.Connect(ctx, terms, opts...)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	rsp := trace.FromContext(r.Context()).StartSpan("render")
	resp := ConnectResponse{
		Scheme: name,
		Epoch:  epoch,
		Answer: answerOf(svc, conn),
	}
	rsp.End()
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !h.decode(w, r, &req) {
		return
	}
	svc, name, epoch, err := h.resolveScheme(req.Scheme)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	annotateScheme(r, name, epoch)
	opts, eb := queryOptions(req.Method, req.ExactLimit, nil, req.CacheBypass)
	if eb != nil {
		writeErrorBody(w, eb)
		return
	}
	if eb := checkTimeout(req.TimeoutMS); eb != nil {
		writeErrorBody(w, eb)
		return
	}
	ctx, cancel := h.requestContext(r, req.TimeoutMS)
	defer cancel()
	results := svc.ConnectBatch(ctx, req.Queries, opts...)
	rsp := trace.FromContext(r.Context()).StartSpan("render")
	resp := BatchResponse{
		Scheme:  name,
		Epoch:   epoch,
		Results: make([]BatchItem, len(results)),
	}
	for i, res := range results {
		item := BatchItem{Terminals: nonNilInts(res.Terminals)}
		if res.Err != nil {
			status, code := errorStatus(res.Err)
			item.Error = &ErrorBody{Status: status, Code: code, Message: res.Err.Error()}
			resp.Failed++
		} else {
			a := answerOf(svc, res.Conn)
			item.Answer = &a
		}
		resp.Results[i] = item
	}
	rsp.End()
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) handleInterpretations(w http.ResponseWriter, r *http.Request) {
	var req InterpretationsRequest
	if !h.decode(w, r, &req) {
		return
	}
	svc, name, epoch, err := h.resolveScheme(req.Scheme)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	annotateScheme(r, name, epoch)
	terms, eb := resolveTerminals(svc, req.Terminals, req.Labels)
	if eb != nil {
		writeErrorBody(w, eb)
		return
	}
	maxAux, limit, eb := normalizeInterp(InterpSpec{MaxAux: req.MaxAux, Limit: req.Limit})
	if eb != nil {
		writeErrorBody(w, eb)
		return
	}
	if eb := checkTimeout(req.TimeoutMS); eb != nil {
		writeErrorBody(w, eb)
		return
	}
	ctx, cancel := h.requestContext(r, req.TimeoutMS)
	defer cancel()
	interps, err := svc.Connector().Interpretations(ctx, terms, maxAux, limit)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, InterpretationsResponse{
		Scheme:          name,
		Epoch:           epoch,
		Interpretations: interpBodies(svc, interps),
	})
}

func (h *Handler) handleSchemes(w http.ResponseWriter, r *http.Request) {
	resp := SchemesResponse{Schemes: []SchemeInfo{}}
	for _, name := range h.reg.Names() {
		// Entry reads service, epoch and source atomically, so a listing
		// taken during a swap never pairs one epoch with another's source.
		svc, epoch, source, ok := h.reg.Entry(name)
		if !ok { // dropped between Names and Entry
			continue
		}
		c := svc.Connector()
		fb := c.Frozen()
		cl := c.Class()
		guarantee := "none"
		switch {
		case cl.Chordal62:
			guarantee = "optimal-steiner (Theorem 5)"
		case cl.AlphaV1():
			guarantee = "v2-minimal (Theorem 3)"
		}
		// Only a non-default provenance travels the wire: live compiles
		// stay implicit so the field flags snapshot-booted epochs.
		if source == core.SourceCompiled {
			source = ""
		}
		resp.Schemes = append(resp.Schemes, SchemeInfo{
			Name:    name,
			Epoch:   epoch,
			Source:  source,
			V1Nodes: len(fb.V1()),
			V2Nodes: len(fb.V2()),
			Arcs:    fb.M(),
			Class: ClassBody{
				Chordal41:   cl.Chordal41,
				Chordal62:   cl.Chordal62,
				Chordal61:   cl.Chordal61,
				V1Chordal:   cl.V1Chordal,
				V1Conformal: cl.V1Conformal,
				V2Chordal:   cl.V2Chordal,
				V2Conformal: cl.V2Conformal,
			},
			Guarantee: guarantee,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{Schemes: map[string]SchemeStats{}}
	for _, name := range h.reg.Names() {
		svc, epoch, ok := h.reg.Lookup(name)
		if !ok {
			continue
		}
		st := svc.Stats()
		resp.Schemes[name] = SchemeStats{
			Epoch:        epoch,
			Hits:         st.Hits,
			Misses:       st.Misses,
			Evictions:    st.Evictions,
			Bypasses:     st.Bypasses,
			Removals:     st.Removals,
			WarmFills:    st.WarmFills,
			Entries:      st.Entries,
			Shards:       st.Shards,
			Capacity:     st.Capacity,
			ShardEntries: st.ShardEntries,
			CostAdded:    st.CostAddedNanos,
			CostEvicted:  st.CostEvictedNanos,
			CostRemoved:  st.CostRemovedNanos,
			CostResident: st.CostResidentNanos,
			CostSaved:    st.CostSavedNanos,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSnapshotDownload streams the named scheme's compiled epoch in the
// internal/snapshot binary format: what a client PUTs back (here or to
// another server) boots with zero recompilation. The epoch header
// attributes the bytes to the compile that produced them. With
// ?warmup=1 the file also carries the scheme's current settled answer
// cache as the optional warmup section, so the process booting from it
// starts with those answers resident (first queries are cache hits).
func (h *Handler) handleSnapshotDownload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	svc, epoch, ok := h.reg.Lookup(name)
	if !ok {
		writeQueryError(w, fmt.Errorf("%w: %q", core.ErrUnknownScheme, name))
		return
	}
	save := svc.SaveSnapshot
	if r.URL.Query().Get("warmup") == "1" {
		save = svc.SaveWarmSnapshot
	}
	var buf bytes.Buffer
	if err := save(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Header().Set("X-Scheme-Epoch", strconv.FormatUint(epoch, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// handleSchemeUpload installs (or replaces) a scheme from the request
// body: a snapshot (sniffed by magic) revives with zero rework, anything
// else is parsed as the graphio bipartite text format and compiled live.
// Either way the swap is atomic — in-flight queries on the old epoch
// finish cleanly.
func (h *Handler) handleSchemeUpload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, h.maxSnapshot))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				fmt.Sprintf("scheme upload exceeds %d bytes", h.maxSnapshot))
			return
		}
		writeError(w, http.StatusBadRequest, CodeBadRequest, "reading body: "+err.Error())
		return
	}
	if len(data) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"empty body (want a snapshot or a bipartite scheme in text form)")
		return
	}
	// Build the Service first, install with Registry.Swap second: the swap
	// returns this install's own epoch, so concurrent admin calls racing on
	// the same name can never misattribute the response (a readback via
	// Epoch/Source could observe a later install).
	start := time.Now()
	var svc *core.Service
	var source, kind string
	if snapshot.IsSnapshot(data) {
		snap, err := snapshot.Decode(data)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, CodeBadSnapshot, err.Error())
			return
		}
		svc = core.OpenSnapshot(snap, h.schemeOpts...)
		source = core.SourceSnapshot(snap.Version)
		kind = "snapshot"
	} else {
		b, err := graphio.ReadBipartite(bytes.NewReader(data))
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, CodeBadScheme, err.Error())
			return
		}
		svc = core.Open(b, h.schemeOpts...)
		source = core.SourceCompiled
		kind = "compiled"
	}
	epoch := h.reg.Swap(name, svc, source)
	h.swaps.Inc()
	h.met.Histogram(MetricInstallDuration,
		"Time to decode/compile and atomically install an uploaded scheme.",
		metrics.DefLatencyBounds(), metrics.L("source", kind)).
		ObserveDuration(time.Since(start))
	writeJSON(w, http.StatusOK, UploadResponse{
		Scheme: name,
		Epoch:  epoch,
		Source: source,
	})
}

// handleSchemeDelete drops the named scheme: 404 when unknown, otherwise
// the catalog entry is gone for new lookups while queries already holding
// the old epoch finish cleanly (copy-on-write Registry semantics).
func (h *Handler) handleSchemeDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !h.reg.Drop(name) {
		writeQueryError(w, fmt.Errorf("%w: %q", core.ErrUnknownScheme, name))
		return
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Scheme: name, Dropped: true})
}

// answerOf renders a solved Connection for the wire. Slices are always
// non-nil so clients (and golden files) see [] rather than null. Labels
// come off the frozen view, keeping the render path thaw-free.
func answerOf(svc *core.Service, conn core.Connection) Answer {
	g := svc.Connector().Frozen().G()
	edges := make([][2]int, len(conn.Tree.Edges))
	for i, e := range conn.Tree.Edges {
		edges[i] = [2]int{e.U, e.V}
	}
	return Answer{
		Method:          conn.Method.String(),
		Optimal:         conn.Optimal,
		V2Optimal:       conn.V2Optimal,
		Rationale:       conn.Rationale,
		Nodes:           nonNilInts(conn.Tree.Nodes),
		Labels:          g.Labels(conn.Tree.Nodes),
		Edges:           edges,
		Interpretations: interpBodies(svc, conn.Interps),
	}
}

// interpBodies renders ranked interpretations; nil in, nil out (the field
// is omitempty — absence means "not requested").
func interpBodies(svc *core.Service, interps []core.Interpretation) []InterpretationBody {
	if interps == nil {
		return nil
	}
	g := svc.Connector().Frozen().G()
	out := make([]InterpretationBody, len(interps))
	for i, ip := range interps {
		out[i] = InterpretationBody{
			Nodes:     nonNilInts(ip.Nodes),
			Labels:    g.Labels(ip.Nodes),
			Auxiliary: nonNilInts(ip.Auxiliary),
		}
	}
	return out
}

// nonNilInts copies s so JSON renders [] for empty and the response does
// not alias solver-owned memory.
func nonNilInts(s []int) []int {
	out := make([]int, len(s))
	copy(out, s)
	return out
}

// decode parses the single-JSON-object request body with unknown fields
// rejected and the configured size cap applied; on failure it writes the
// error response and returns false.
func (h *Handler) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dsp := trace.FromContext(r.Context()).StartSpan("decode")
	r.Body = http.MaxBytesReader(w, r.Body, h.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		dsp.End()
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", h.maxBody))
			return false
		}
		writeError(w, http.StatusBadRequest, CodeBadRequest, "invalid JSON body: "+err.Error())
		return false
	}
	if dec.More() {
		dsp.End()
		writeError(w, http.StatusBadRequest, CodeBadRequest, "trailing data after JSON body")
		return false
	}
	dsp.End()
	return true
}

// writeQueryError maps a typed query error to its HTTP response.
func writeQueryError(w http.ResponseWriter, err error) {
	status, code := errorStatus(err)
	writeError(w, status, code, err.Error())
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeErrorBody(w, &ErrorBody{Status: status, Code: code, Message: msg})
}

func writeErrorBody(w http.ResponseWriter, eb *ErrorBody) {
	writeJSON(w, eb.Status, eb)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// Encoding a value built from already-valid data cannot fail except on
	// a broken connection, which has no useful recovery.
	_ = enc.Encode(v)
}
