package gen

import (
	"math/rand"
	"testing"

	"repro/internal/chordality"
	"repro/internal/reference"
)

func TestAlphaAcyclicFamily(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		h := AlphaAcyclic(r, 1+r.Intn(8), 1+r.Intn(4), 1+r.Intn(3))
		if !h.AlphaAcyclic() {
			t.Fatalf("AlphaAcyclic generator produced cyclic %v", h)
		}
	}
}

func TestGammaAcyclicFamily(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		h := GammaAcyclic(r, 1+r.Intn(8), 1+r.Intn(3), 1+r.Intn(3))
		if !h.GammaAcyclic() {
			t.Fatalf("GammaAcyclic generator produced non-gamma %v", h)
		}
	}
}

func TestNestedChainGamma(t *testing.T) {
	for m := 1; m <= 6; m++ {
		h := NestedChain(m, 2)
		if !h.GammaAcyclic() {
			t.Fatalf("NestedChain(%d, 2) not gamma-acyclic", m)
		}
	}
}

func TestBergeForestFamily(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		h := BergeForest(r, 1+r.Intn(8), 1+r.Intn(3))
		if !h.BergeAcyclic() {
			t.Fatalf("BergeForest generator produced Berge-cyclic %v", h)
		}
	}
}

func TestCompleteBipartite62(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {3, 3}, {4, 3}, {5, 2}} {
		b := CompleteBipartite(dims[0], dims[1])
		if !chordality.Is62Chordal(b) {
			t.Errorf("K_{%d,%d} should be (6,2)-chordal", dims[0], dims[1])
		}
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		b := RandomTree(r, 1+r.Intn(15))
		if !b.G().IsForest() || !b.G().IsConnected() {
			t.Fatal("RandomTree not a tree")
		}
		if !chordality.Is41Chordal(b) {
			t.Fatal("tree not (4,1)-chordal")
		}
	}
}

func TestGridIsCyclicControl(t *testing.T) {
	b := GridBipartite(3, 4)
	if b.N() != 12 || !b.G().IsConnected() {
		t.Fatalf("grid shape wrong: N=%d", b.N())
	}
	cl := chordality.Classify(b)
	if cl.Chordal61 {
		t.Error("3x4 grid should not be (6,1)-chordal")
	}
	if cl.V1Chordal && cl.V1Conformal {
		t.Error("3x4 grid should not have alpha-acyclic H1")
	}
}

func TestRandomChordalGraph(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		g := RandomChordalGraph(r, 2+r.Intn(8), 1+r.Intn(4))
		if !chordality.IsChordal(g) {
			t.Fatalf("RandomChordalGraph produced non-chordal %v", g)
		}
		if g.N() <= 8 && !reference.IsChordalGraph(g) {
			t.Fatalf("reference disagrees on %v", g)
		}
	}
}

func TestRandomConnectedBipartite(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 80; i++ {
		b := RandomConnectedBipartite(r, 1+r.Intn(6), 1+r.Intn(6), r.Float64()*0.5)
		if !b.G().IsConnected() {
			t.Fatal("RandomConnectedBipartite produced disconnected graph")
		}
	}
}

func TestRandomX3CPlanted(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		q := 1 + r.Intn(3)
		triples := RandomX3C(r, q, q+r.Intn(4), true)
		if len(triples) < q {
			t.Fatal("too few triples")
		}
		for _, tr := range triples {
			for _, e := range tr {
				if e < 0 || e >= 3*q {
					t.Fatal("element out of range")
				}
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := AlphaAcyclic(rand.New(rand.NewSource(9)), 6, 3, 2)
	b := AlphaAcyclic(rand.New(rand.NewSource(9)), 6, 3, 2)
	if !a.Equal(b) {
		t.Error("AlphaAcyclic not deterministic for a fixed seed")
	}
}
