// Package gen provides the workload generators used by tests, experiments
// and benchmarks: seeded random graphs/hypergraphs, constructive families
// with a known acyclicity degree (with the argument for the degree given in
// the doc comment — these are the scalable benchmark inputs), rejection
// samplers for exact class targeting on small sizes, random chordal graphs
// for the CSPC reduction, and X3C instances with or without planted
// solutions.
//
// Every generator takes an explicit *rand.Rand so callers control seeds and
// determinism.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/bipartite"
	"repro/internal/graph"
	"repro/internal/hypergraph"
)

// nodeLabel produces distinct labels n0, n1, … .
func nodeLabel(prefix string, i int) string {
	return fmt.Sprintf("%s%d", prefix, i)
}

// RandomGraph returns an Erdős–Rényi graph on n nodes with edge
// probability p.
func RandomGraph(r *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(nodeLabel("v", i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// RandomBipartite returns a random bipartite graph with n1 + n2 nodes and
// arc probability p.
func RandomBipartite(r *rand.Rand, n1, n2 int, p float64) *bipartite.Graph {
	b := bipartite.New()
	var v1, v2 []int
	for i := 0; i < n1; i++ {
		v1 = append(v1, b.AddV1(nodeLabel("a", i)))
	}
	for i := 0; i < n2; i++ {
		v2 = append(v2, b.AddV2(nodeLabel("r", i)))
	}
	for _, u := range v1 {
		for _, w := range v2 {
			if r.Float64() < p {
				b.AddEdge(u, w)
			}
		}
	}
	return b
}

// RandomConnectedBipartite returns a random bipartite graph made connected
// by wiring every stray component to anchor nodes (the first node of each
// side). Requires n1, n2 ≥ 1.
func RandomConnectedBipartite(r *rand.Rand, n1, n2 int, p float64) *bipartite.Graph {
	if n1 < 1 || n2 < 1 {
		panic("gen: RandomConnectedBipartite needs at least one node per side")
	}
	b := RandomBipartite(r, n1, n2, p)
	a1 := b.V1()[0]
	a2 := b.V2()[0]
	b.AddEdge(a1, a2)
	for _, comp := range b.G().Components() {
		inComp := false
		for _, v := range comp {
			if v == a1 {
				inComp = true
				break
			}
		}
		if inComp {
			continue
		}
		x := comp[r.Intn(len(comp))]
		if b.Side(x) == graph.Side1 {
			b.AddEdge(x, a2)
		} else {
			b.AddEdge(x, a1)
		}
	}
	return b
}

// RandomHypergraph returns a hypergraph with n nodes and m random edges of
// size 1 … maxSize.
func RandomHypergraph(r *rand.Rand, n, m, maxSize int) *hypergraph.Hypergraph {
	h := hypergraph.New()
	for i := 0; i < n; i++ {
		h.AddNode(nodeLabel("n", i))
	}
	if maxSize > n {
		maxSize = n
	}
	for i := 0; i < m; i++ {
		sz := 1 + r.Intn(maxSize)
		perm := r.Perm(n)
		h.AddEdge(nodeLabel("e", i), perm[:sz]...)
	}
	return h
}

// AlphaAcyclic returns a random α-acyclic hypergraph with m edges built by
// growing a join tree: each new edge takes a random subset of a random
// earlier edge plus fresh nodes, so the running intersection property holds
// by construction.
func AlphaAcyclic(r *rand.Rand, m, maxShared, maxFresh int) *hypergraph.Hypergraph {
	h := hypergraph.New()
	next := 0
	fresh := func(k int) []int {
		out := make([]int, k)
		for i := range out {
			out[i] = h.AddNode(nodeLabel("n", next))
			next++
		}
		return out
	}
	var edges [][]int
	for i := 0; i < m; i++ {
		var nodes []int
		if i > 0 && maxShared > 0 {
			parent := edges[r.Intn(len(edges))]
			k := r.Intn(min(maxShared, len(parent)) + 1)
			perm := r.Perm(len(parent))
			for _, idx := range perm[:k] {
				nodes = append(nodes, parent[idx])
			}
		}
		nodes = append(nodes, fresh(1+r.Intn(maxFresh))...)
		h.AddEdge(nodeLabel("e", i), nodes...)
		edges = append(edges, nodes)
	}
	return h
}

// WithSubsetEdges adds k edges to h, each a random nonempty subset of a
// random existing edge. Subset edges are absorbed by GYO's containment
// rule, so α-acyclicity is preserved — but they create parallel connection
// routes, the workload feature that separates good from bad elimination
// orderings (experiment E-ABL1).
func WithSubsetEdges(r *rand.Rand, h *hypergraph.Hypergraph, k int) *hypergraph.Hypergraph {
	out := h.Clone()
	base := h.M()
	if base == 0 {
		return out
	}
	for i := 0; i < k; i++ {
		e := out.Edge(r.Intn(base))
		sz := 1 + r.Intn(len(e))
		perm := r.Perm(len(e))
		nodes := make([]int, sz)
		for j := 0; j < sz; j++ {
			nodes[j] = e[perm[j]]
		}
		out.AddEdge(nodeLabel("s", i), nodes...)
	}
	return out
}

// GammaAcyclic returns a random γ-acyclic hypergraph with m edges built as
// a hierarchy: edges form a tree; each child edge overlaps only its parent,
// the overlap avoids the parent's own overlap with the grandparent, and
// sibling overlaps are pairwise disjoint.
//
// Why γ-acyclic: only parent-child pairs intersect, so the
// edge-intersection structure is a forest — no β-cycle (a β-cycle needs a
// cyclic chain of ≥ 3 pairwise-intersecting edges). A special triangle
// needs all three pairwise intersections nonempty, i.e. a triangle in the
// intersection forest — impossible. (Berge 2-cycles do occur when overlaps
// have size ≥ 2, so the family genuinely separates Berge from γ.)
func GammaAcyclic(r *rand.Rand, m, maxOverlap, maxFresh int) *hypergraph.Hypergraph {
	h := hypergraph.New()
	next := 0
	fresh := func(k int) []int {
		out := make([]int, k)
		for i := range out {
			out[i] = h.AddNode(nodeLabel("n", next))
			next++
		}
		return out
	}
	// available[i] lists nodes of edge i a child may still overlap with.
	var available [][]int
	for i := 0; i < m; i++ {
		var nodes []int
		if i > 0 && maxOverlap > 0 {
			parent := r.Intn(i)
			avail := available[parent]
			if len(avail) > 0 {
				k := 1 + r.Intn(min(maxOverlap, len(avail)))
				nodes = append(nodes, avail[:k]...)
				available[parent] = avail[k:]
			}
		}
		own := fresh(1 + r.Intn(maxFresh))
		nodes = append(nodes, own...)
		h.AddEdge(nodeLabel("e", i), nodes...)
		// Children may overlap only with this edge's fresh nodes.
		available = append(available, own)
	}
	return h
}

// NestedChain returns the nested-edge hypergraph e_1 ⊆ e_2 ⊆ … ⊆ e_m with
// |e_i| = i·width. Nested families are γ-acyclic: every node is a nest
// point, and a special triangle needs n2 ∈ e2∩e3 ∖ e1 with e1 ⊆ e2 ⊆ e3,
// whose pairwise intersections collapse into the smallest edge.
func NestedChain(m, width int) *hypergraph.Hypergraph {
	h := hypergraph.New()
	var nodes []int
	for i := 1; i <= m; i++ {
		for len(nodes) < i*width {
			nodes = append(nodes, h.AddNode(nodeLabel("n", len(nodes))))
		}
		h.AddEdge(nodeLabel("e", i-1), nodes...)
	}
	return h
}

// BergeForest returns a Berge-acyclic hypergraph: edges arranged in a tree
// where each child shares exactly one node with its parent (the incidence
// graph is then a tree).
func BergeForest(r *rand.Rand, m, maxFresh int) *hypergraph.Hypergraph {
	h := hypergraph.New()
	next := 0
	fresh := func(k int) []int {
		out := make([]int, k)
		for i := range out {
			out[i] = h.AddNode(nodeLabel("n", next))
			next++
		}
		return out
	}
	var edges [][]int
	for i := 0; i < m; i++ {
		var nodes []int
		if i > 0 {
			parent := edges[r.Intn(len(edges))]
			nodes = append(nodes, parent[r.Intn(len(parent))])
		}
		nodes = append(nodes, fresh(1+r.Intn(maxFresh))...)
		h.AddEdge(nodeLabel("e", i), nodes...)
		edges = append(edges, nodes)
	}
	return h
}

// CompleteBipartite returns K_{a,b} as a bipartite graph. Complete
// bipartite graphs are (6,2)-chordal: any 6-cycle u1-w1-u2-w2-u3-w3 has
// all three "opposite" chords present.
func CompleteBipartite(a, b int) *bipartite.Graph {
	g := bipartite.New()
	var v1, v2 []int
	for i := 0; i < a; i++ {
		v1 = append(v1, g.AddV1(nodeLabel("a", i)))
	}
	for i := 0; i < b; i++ {
		v2 = append(v2, g.AddV2(nodeLabel("r", i)))
	}
	for _, u := range v1 {
		for _, w := range v2 {
			g.AddEdge(u, w)
		}
	}
	return g
}

// RandomTree returns a random bipartite tree on n nodes (alternating sides
// along every path, so each node attaches to a parent of the other side).
func RandomTree(r *rand.Rand, n int) *bipartite.Graph {
	b := bipartite.New()
	if n == 0 {
		return b
	}
	b.AddV1(nodeLabel("t", 0))
	for i := 1; i < n; i++ {
		parent := r.Intn(i)
		var id int
		if b.Side(parent) == graph.Side1 {
			id = b.AddV2(nodeLabel("t", i))
		} else {
			id = b.AddV1(nodeLabel("t", i))
		}
		b.AddEdge(parent, id)
	}
	return b
}

// GridBipartite returns the rows×cols grid graph (bipartite by chessboard
// colouring) — a cyclic control workload: grids of either side ≥ 2 have
// chordless 8-cycles... (every 4-cycle of the grid is chordless but short;
// 8-cycles around four faces are chordless), so they satisfy none of the
// chordality classes beyond bipartiteness.
func GridBipartite(rows, cols int) *bipartite.Graph {
	b := bipartite.New()
	ids := make([][]int, rows)
	for i := range ids {
		ids[i] = make([]int, cols)
		for j := range ids[i] {
			if (i+j)%2 == 0 {
				ids[i][j] = b.AddV1(fmt.Sprintf("g%d_%d", i, j))
			} else {
				ids[i][j] = b.AddV2(fmt.Sprintf("g%d_%d", i, j))
			}
		}
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if i+1 < rows {
				b.AddEdge(ids[i][j], ids[i+1][j])
			}
			if j+1 < cols {
				b.AddEdge(ids[i][j], ids[i][j+1])
			}
		}
	}
	return b
}

// RandomChordalGraph returns a random chordal graph on n nodes: each new
// node is attached to a random clique drawn from the closed neighbourhood
// of a random earlier node, so the insertion order reversed is a perfect
// elimination ordering.
func RandomChordalGraph(r *rand.Rand, n int, attach int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(nodeLabel("v", i))
		if i == 0 {
			continue
		}
		u := r.Intn(i)
		// Build a clique candidate: u plus those of u's neighbours that are
		// pairwise adjacent (greedy filter keeps it a clique).
		clique := []int{u}
		for _, w := range g.Neighbors(u) {
			if len(clique) >= attach {
				break
			}
			ok := true
			for _, c := range clique {
				if c != u && !g.HasEdge(c, w) && c != w {
					ok = false
					break
				}
			}
			if ok && w != u {
				clique = append(clique, w)
			}
		}
		k := 1 + r.Intn(len(clique))
		perm := r.Perm(len(clique))
		for _, idx := range perm[:k] {
			g.AddEdge(i, clique[idx])
		}
	}
	return g
}

// RandomX3C returns the triples of a random X3C instance over 3q elements
// with k triples (pass them to steiner.X3CInstance). When planted is true a
// random partition of X into q triples is included, so the instance is
// guaranteed solvable.
func RandomX3C(r *rand.Rand, q, k int, planted bool) [][3]int {
	var triples [][3]int
	n := 3 * q
	if planted {
		perm := r.Perm(n)
		for i := 0; i < q; i++ {
			triples = append(triples, [3]int{perm[3*i], perm[3*i+1], perm[3*i+2]})
		}
	}
	for len(triples) < k {
		perm := r.Perm(n)
		triples = append(triples, [3]int{perm[0], perm[1], perm[2]})
	}
	// Shuffle so planted triples are not a prefix.
	r.Shuffle(len(triples), func(i, j int) {
		triples[i], triples[j] = triples[j], triples[i]
	})
	return triples
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
