package bipartite

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/hypergraph"
)

// Frozen is an immutable compiled view of a bipartite Graph: the frozen CSR
// graph plus the (V1, V2) partition. Like graph.Frozen it never changes
// after Freeze returns and is safe for unsynchronized concurrent readers;
// it is the scheme representation core.Connector compiles once and serves
// queries from.
type Frozen struct {
	g    *graph.Frozen
	side []graph.Side
	v1   []int
	v2   []int
}

// Freeze compiles b into its immutable view. The snapshot is deep: later
// mutation of b does not affect the Frozen.
func (b *Graph) Freeze() *Frozen {
	f := &Frozen{
		g:    b.g.Freeze(),
		side: append([]graph.Side(nil), b.side...),
	}
	for v, s := range f.side {
		if s == graph.Side1 {
			f.v1 = append(f.v1, v)
		} else {
			f.v2 = append(f.v2, v)
		}
	}
	return f
}

// RestoreFrozen assembles a Frozen from a restored graph and its side
// assignment — the serialization inverse of Freeze, used by
// internal/snapshot to revive a compiled epoch. side is adopted, not
// copied, and must not be modified afterwards. The bipartite invariants are
// verified: one side per node, every side either Side1 or Side2, every edge
// crossing sides.
func RestoreFrozen(g *graph.Frozen, side []graph.Side) (*Frozen, error) {
	if len(side) != g.N() {
		return nil, fmt.Errorf("bipartite: restore: %d side entries for %d nodes", len(side), g.N())
	}
	f := &Frozen{g: g, side: side}
	for v, s := range side {
		switch s {
		case graph.Side1:
			f.v1 = append(f.v1, v)
		case graph.Side2:
			f.v2 = append(f.v2, v)
		default:
			return nil, fmt.Errorf("bipartite: restore: node %d has invalid side %d", v, s)
		}
		for _, w := range g.Neighbors(v) {
			if side[w] == s {
				return nil, fmt.Errorf("bipartite: restore: edge %d-%d inside one side", v, w)
			}
		}
	}
	return f, nil
}

// G returns the underlying frozen graph.
func (f *Frozen) G() *graph.Frozen { return f.g }

// Sides returns the side of every node, indexed by id. The slice is shared
// and must not be modified.
func (f *Frozen) Sides() []graph.Side { return f.side }

// N returns the number of nodes.
func (f *Frozen) N() int { return f.g.N() }

// M returns the number of arcs.
func (f *Frozen) M() int { return f.g.M() }

// Side returns which side node v is on.
func (f *Frozen) Side(v int) graph.Side { return f.side[v] }

// V1 returns the ids of the V1 nodes in increasing order. The slice is
// shared and must not be modified.
func (f *Frozen) V1() []int { return f.v1 }

// V2 returns the ids of the V2 nodes in increasing order. The slice is
// shared and must not be modified.
func (f *Frozen) V2() []int { return f.v2 }

// Thaw reconstructs a mutable bipartite Graph equal to the snapshot.
func (f *Frozen) Thaw() *Graph {
	return &Graph{g: f.g.Thaw(), side: append([]graph.Side(nil), f.side...)}
}

// HypergraphV1 builds H¹G (Definition 2) straight off the CSR arrays:
// nodes correspond to V1, and every V2 node with at least one neighbour
// contributes an edge holding its V1-neighbourhood. Matches
// Graph.HypergraphV1 exactly.
func (f *Frozen) HypergraphV1() Correspondence {
	return f.hypergraphSide(graph.Side1, nil)
}

// HypergraphV2 builds H²G symmetrically: nodes correspond to V2, edges to
// V1 neighbourhoods.
func (f *Frozen) HypergraphV2() Correspondence {
	return f.hypergraphSide(graph.Side2, nil)
}

// HypergraphV1Alive is HypergraphV1 restricted to the alive nodes: only
// alive V1 nodes become hypergraph nodes, only alive V2 nodes with at least
// one alive neighbour contribute edges. alive == nil means all nodes. For a
// connected-component mask this equals Induced(component).HypergraphV1() up
// to the id mapping, without building the induced copy.
func (f *Frozen) HypergraphV1Alive(alive []bool) Correspondence {
	if alive == nil {
		return f.hypergraphSide(graph.Side1, nil)
	}
	return f.hypergraphSide(graph.Side1, func(v int) bool { return alive[v] })
}

// HypergraphV1AliveBits is HypergraphV1Alive over a packed graph.Bits
// alive mask — the representation the word-parallel solver kernels
// (internal/steiner) keep their masks in, so Algorithm 1's frozen path
// never expands a mask back into []bool. alive == nil means all nodes.
// Results are identical to HypergraphV1Alive on the unpacked mask.
func (f *Frozen) HypergraphV1AliveBits(alive graph.Bits) Correspondence {
	if alive == nil {
		return f.hypergraphSide(graph.Side1, nil)
	}
	return f.hypergraphSide(graph.Side1, alive.Has)
}

// hypergraphSide builds the Definition 2 hypergraph whose nodes are the
// (alive) nodes of side s and whose edges are the (alive) neighbourhoods of
// the other side's nodes (alive == nil: every node). EdgeToV2 then holds
// other-side node ids.
func (f *Frozen) hypergraphSide(s graph.Side, alive func(int) bool) Correspondence {
	nodes, edges := f.v1, f.v2
	if s == graph.Side2 {
		nodes, edges = f.v2, f.v1
	}
	h := hypergraph.New()
	v1ToNode := map[int]int{}
	var nodeToV1 []int
	for _, v := range nodes {
		if alive != nil && !alive(v) {
			continue
		}
		v1ToNode[v] = h.AddNode(f.g.Label(v))
		nodeToV1 = append(nodeToV1, v)
	}
	var edgeToV2 []int
	members := make([]int, 0, 16)
	for _, w := range edges {
		if alive != nil && !alive(w) {
			continue
		}
		members = members[:0]
		for _, v := range f.g.Neighbors(w) {
			if alive != nil && !alive(int(v)) {
				continue
			}
			members = append(members, v1ToNode[int(v)])
		}
		if len(members) == 0 {
			continue
		}
		h.AddEdge(f.g.Label(w), members...)
		edgeToV2 = append(edgeToV2, w)
	}
	return Correspondence{H: h, EdgeToV2: edgeToV2, NodeToV1: nodeToV1, V1ToNode: v1ToNode}
}
