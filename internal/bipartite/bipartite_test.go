package bipartite

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/hypergraph"
)

// fig2Style builds the running example used across the tests: V1 =
// {A, B, C}, V2 = {1 = {A,B}, 2 = {B,C}, 3 = {A,C}, 0 = {A,B,C}}. Its H¹ is
// α-acyclic while its H² is not — the paper's Fig 2 phenomenon.
func fig2Style() *Graph {
	b := New()
	a := b.AddV1("A")
	bb := b.AddV1("B")
	c := b.AddV1("C")
	for _, spec := range []struct {
		name string
		nbrs []int
	}{
		{"1", []int{a, bb}},
		{"2", []int{bb, c}},
		{"3", []int{a, c}},
		{"0", []int{a, bb, c}},
	} {
		w := b.AddV2(spec.name)
		for _, v := range spec.nbrs {
			b.AddEdge(v, w)
		}
	}
	return b
}

func TestSidesAndEdges(t *testing.T) {
	b := fig2Style()
	if got := len(b.V1()); got != 3 {
		t.Errorf("|V1| = %d", got)
	}
	if got := len(b.V2()); got != 4 {
		t.Errorf("|V2| = %d", got)
	}
	if b.N() != 7 || b.M() != 9 {
		t.Errorf("N=%d M=%d", b.N(), b.M())
	}
	if b.Side(0) != graph.Side1 || b.Side(3) != graph.Side2 {
		t.Error("sides wrong")
	}
}

func TestAddEdgeSameSidePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on same-side edge")
		}
	}()
	b := New()
	u := b.AddV1("u")
	v := b.AddV1("v")
	b.AddEdge(u, v)
}

func TestSwap(t *testing.T) {
	b := fig2Style()
	s := b.Swap()
	if len(s.V1()) != 4 || len(s.V2()) != 3 {
		t.Error("Swap did not exchange sides")
	}
	if s.G() != b.G() {
		t.Error("Swap should share the underlying graph")
	}
}

func TestHypergraphV1(t *testing.T) {
	b := fig2Style()
	c := b.HypergraphV1()
	if c.H.N() != 3 || c.H.M() != 4 {
		t.Fatalf("H1: n=%d m=%d", c.H.N(), c.H.M())
	}
	if !c.H.AlphaAcyclic() {
		t.Error("H1 of fig2Style should be alpha-acyclic")
	}
	if c.H.BetaAcyclic() {
		t.Error("H1 of fig2Style should not be beta-acyclic (triangle inside)")
	}
	// Edge i corresponds to V2 node EdgeToV2[i] and carries its label.
	for i, w := range c.EdgeToV2 {
		if c.H.EdgeName(i) != b.G().Label(w) {
			t.Errorf("edge %d name %q != V2 label %q", i, c.H.EdgeName(i), b.G().Label(w))
		}
		if c.H.Edge(i).Len() != b.G().Degree(w) {
			t.Errorf("edge %d size mismatch", i)
		}
	}
}

func TestHypergraphV2NotAcyclic(t *testing.T) {
	b := fig2Style()
	c := b.HypergraphV2()
	if c.H.N() != 4 || c.H.M() != 3 {
		t.Fatalf("H2: n=%d m=%d", c.H.N(), c.H.M())
	}
	if c.H.AlphaAcyclic() {
		t.Error("H2 of fig2Style should NOT be alpha-acyclic (alpha is not self-dual)")
	}
}

func TestIsolatedV2Skipped(t *testing.T) {
	b := New()
	b.AddV1("a")
	b.AddV2("lonely")
	w := b.AddV2("e")
	b.AddEdge(0, w)
	c := b.HypergraphV1()
	if c.H.M() != 1 {
		t.Errorf("M = %d, want 1 (isolated V2 skipped)", c.H.M())
	}
}

func TestFromHypergraphRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		h := hypergraph.New()
		n := 2 + r.Intn(6)
		for i := 0; i < n; i++ {
			h.AddNode(string(rune('a' + i)))
		}
		m := 1 + r.Intn(5)
		for i := 0; i < m; i++ {
			sz := 1 + r.Intn(n)
			perm := r.Perm(n)
			h.AddEdge("", perm[:sz]...)
		}
		inc := FromHypergraph(h)
		// Round trip: H¹ of the incidence graph equals h.
		back := inc.B.HypergraphV1()
		if !back.H.Equal(h) {
			t.Fatalf("round trip failed:\n h = %v\n back = %v", h, back.H)
		}
	}
}

func TestGraphHypergraphGraphRoundTrip(t *testing.T) {
	b := fig2Style()
	c := b.HypergraphV1()
	inc := FromHypergraph(c.H)
	g2 := inc.B
	if g2.N() != b.N() || g2.M() != b.M() {
		t.Fatalf("round trip sizes: N=%d M=%d want N=%d M=%d", g2.N(), g2.M(), b.N(), b.M())
	}
	// Same adjacency by label.
	for _, e := range b.G().Edges() {
		u := g2.G().MustID(b.G().Label(e.U))
		v := g2.G().MustID(b.G().Label(e.V))
		if !g2.G().HasEdge(u, v) {
			t.Errorf("edge %s-%s lost", b.G().Label(e.U), b.G().Label(e.V))
		}
	}
}

func TestFromGraphValidation(t *testing.T) {
	g := graph.NewWithNodes("a", "b")
	g.AddEdge(0, 1)
	if _, err := FromGraph(g, []graph.Side{graph.Side1, graph.Side1}); err == nil {
		t.Error("same-side edge accepted")
	}
	if _, err := FromGraph(g, []graph.Side{graph.Side1}); err == nil {
		t.Error("short side slice accepted")
	}
	if _, err := FromGraph(g, []graph.Side{graph.Side1, graph.Side2}); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
}

func TestDetect(t *testing.T) {
	g := graph.NewWithNodes("a", "b", "c", "d")
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	b, err := Detect(g)
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	if len(b.V1()) != 2 || len(b.V2()) != 2 {
		t.Errorf("V1=%v V2=%v", b.V1(), b.V2())
	}
	odd := graph.NewWithNodes("a", "b", "c")
	odd.AddEdge(0, 1)
	odd.AddEdge(1, 2)
	odd.AddEdge(2, 0)
	if _, err := Detect(odd); err == nil {
		t.Error("odd cycle accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	b := fig2Style()
	c := b.Clone()
	c.AddV1("Z")
	if b.N() != 7 {
		t.Error("Clone not independent")
	}
}
